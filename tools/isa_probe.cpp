// Host ISA probe for the forced-ISA test matrix (scripts/run_with_isa.sh).
//
//   isa_probe                   print detected / compiled / active levels
//   isa_probe --list            one line per level: name, compiled, supported
//   isa_probe --supports <isa>  exit 0 when the host runs <isa>, 1 when not
//
// `--supports` is the machine interface: the ctest wrappers consult it
// before forcing CHIPLET_ISA, and skip (exit 77) on hosts that cannot
// execute the level instead of failing.
#include <cstdio>
#include <cstring>
#include <exception>

#include "kernels/isa.h"

namespace {

constexpr chiplet::kernels::Isa kLevels[] = {
    chiplet::kernels::Isa::scalar,
    chiplet::kernels::Isa::sse2,
    chiplet::kernels::Isa::avx2,
};

}  // namespace

int main(int argc, char** argv) try {
    using namespace chiplet::kernels;
    if (argc == 3 && std::strcmp(argv[1], "--supports") == 0) {
        return isa_supported(isa_from_string(argv[2])) ? 0 : 1;
    }
    if (argc == 2 && std::strcmp(argv[1], "--list") == 0) {
        for (Isa isa : kLevels) {
            std::printf("%s compiled=%d supported=%d\n", to_string(isa),
                        isa_compiled(isa) ? 1 : 0, isa_supported(isa) ? 1 : 0);
        }
        return 0;
    }
    if (argc != 1) {
        std::fprintf(stderr,
                     "usage: isa_probe [--list | --supports <scalar|sse2|avx2>]\n");
        return 2;
    }
    std::printf("detected: %s\n", to_string(detect_isa()));
    std::printf("active:   %s\n", to_string(active_isa()));
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "isa_probe: %s\n", e.what());
    return 2;
}
