// What-if explorer for the paper's three chiplet-reuse schemes
// (Sec. 5): SCMS, OCME and FSMC, each compared against its monolithic
// SoC reference and printed with full cost structure.
//
// Usage: reuse_explorer [scms|ocme|fsmc] [quantity_each]
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/actuary.h"
#include "report/table.h"
#include "reuse/fsmc.h"
#include "reuse/ocme.h"
#include "reuse/scms.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_family(const core::ChipletActuary& actuary,
                  const design::SystemFamily& multi,
                  const design::SystemFamily& soc, const std::string& title) {
    const core::FamilyCost multi_cost = actuary.evaluate(multi);
    const core::FamilyCost soc_cost = actuary.evaluate(soc);

    report::TextTable table;
    table.add_column("system");
    table.add_column("dies", report::Align::right);
    table.add_column("multi RE", report::Align::right);
    table.add_column("multi NRE", report::Align::right);
    table.add_column("multi total", report::Align::right);
    table.add_column("SoC total", report::Align::right);
    table.add_column("multi/SoC", report::Align::right);

    for (std::size_t i = 0; i < multi_cost.systems.size(); ++i) {
        const core::SystemCost& m = multi_cost.systems[i];
        const core::SystemCost& s = soc_cost.systems[i];
        table.add_row({m.system_name,
                       std::to_string(multi.systems()[i].die_count()),
                       format_money(m.re.total()), format_money(m.nre.total()),
                       format_money(m.total_per_unit()),
                       format_money(s.total_per_unit()),
                       format_fixed(m.total_per_unit() / s.total_per_unit(), 2)});
    }
    std::cout << title << "\n\n" << table.render() << "\n";
    std::cout << "family NRE totals (multi-chip): modules "
              << format_money(multi_cost.nre_modules_total) << ", chips "
              << format_money(multi_cost.nre_chips_total) << ", packages "
              << format_money(multi_cost.nre_packages_total) << ", D2D "
              << format_money(multi_cost.nre_d2d_total) << "\n";
    std::cout << "family NRE totals (SoC):        modules "
              << format_money(soc_cost.nre_modules_total) << ", chips "
              << format_money(soc_cost.nre_chips_total) << ", packages "
              << format_money(soc_cost.nre_packages_total) << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
    const std::string scheme = argc > 1 ? argv[1] : "scms";
    const double quantity = argc > 2 ? std::atof(argv[2]) : 500'000.0;

    core::ChipletActuary actuary;

    if (scheme == "scms") {
        reuse::ScmsConfig config;
        config.quantity_each = quantity;
        print_family(actuary, reuse::make_scms_family(config),
                     reuse::make_scms_soc_family(config),
                     "SCMS: one 7 nm 200 mm^2 chiplet -> 1X/2X/4X systems (MCM)");
    } else if (scheme == "ocme") {
        reuse::OcmeConfig config;
        config.quantity_each = quantity;
        print_family(actuary, reuse::make_ocme_family(config),
                     reuse::make_ocme_soc_family(config),
                     "OCME: center die + X/Y extensions, 4 sockets x 160 mm^2 "
                     "(MCM)");
        reuse::OcmeConfig het = config;
        het.center_node = "14nm";
        het.center_unscalable = true;
        print_family(actuary, reuse::make_ocme_family(het),
                     reuse::make_ocme_soc_family(het),
                     "OCME heterogeneous: the center die moves to 14 nm "
                     "(unscalable modules)");
    } else if (scheme == "fsmc") {
        reuse::FsmcConfig config;
        config.quantity_each = quantity;
        print_family(actuary, reuse::make_fsmc_family(config),
                     reuse::make_fsmc_soc_family(config),
                     "FSMC: 4 chiplet types x 4 sockets -> " +
                         std::to_string(
                             reuse::enumerate_collocations(4, 4).size()) +
                         " systems (MCM)");
    } else {
        std::cerr << "unknown scheme '" << scheme << "' (use scms|ocme|fsmc)\n";
        return 1;
    }
    return 0;
}
