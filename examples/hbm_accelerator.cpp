// Domain scenario: an AI training accelerator with HBM on a 2.5D
// silicon interposer — the workload class that motivates CoWoS in the
// paper's Fig. 1.  Compares a monolithic-compute + HBM package against
// a compute-split variant, and shows the interposer's reticle-stitching
// penalty at large total area.
#include <iostream>

#include "core/actuary.h"
#include "design/builder.h"
#include "report/table.h"
#include "util/strings.h"
#include "wafer/reticle.h"

int main() {
    using namespace chiplet;
    core::ChipletActuary actuary;

    // HBM stacks modelled as mature-node memory dies bought as KGD
    // (non-scaling area, the memory vendor's node).
    const design::Chip hbm = design::ChipBuilder("hbm3_stack", "14nm")
                                 .module("dram_stack", 110.0, "14nm", false)
                                 .d2d(0.05)
                                 .build();

    const design::Chip big_compute = design::ChipBuilder("xpu_mono", "5nm")
                                         .module("xpu_logic", 600.0)
                                         .d2d(0.08)
                                         .build();
    const design::Chip half_compute = design::ChipBuilder("xpu_half", "5nm")
                                          .module("xpu_half_logic", 300.0)
                                          .d2d(0.10)
                                          .build();

    const double quantity = 3e5;  // accelerator-class volume
    const design::System mono_hbm =
        design::SystemBuilder("xpu_mono_4hbm", "2.5D")
            .chip(big_compute)
            .chips(hbm, 4)
            .quantity(quantity)
            .build();
    const design::System split_hbm =
        design::SystemBuilder("xpu_split_4hbm", "2.5D")
            .chips(half_compute, 2)
            .chips(hbm, 4)
            .quantity(quantity)
            .build();

    report::TextTable table;
    table.add_column("variant");
    table.add_column("interposer", report::Align::right);
    table.add_column("stitch fields", report::Align::right);
    table.add_column("RE/unit", report::Align::right);
    table.add_column("packaging share", report::Align::right);
    table.add_column("total/unit", report::Align::right);

    const wafer::ReticleSpec reticle;
    for (const design::System* system : {&mono_hbm, &split_hbm}) {
        const core::SystemCost cost = actuary.evaluate(*system);
        table.add_row(
            {system->name(),
             format_fixed(cost.interposer_area_mm2, 0) + " mm2",
             std::to_string(wafer::stitch_count(reticle, cost.interposer_area_mm2)),
             format_money(cost.re.total()),
             format_pct(cost.re.packaging_total() / cost.re.total()),
             format_money(cost.total_per_unit())});
    }

    std::cout << "AI accelerator + 4x HBM on a 2.5D silicon interposer ("
              << format_quantity(quantity) << " units)\n\n"
              << table.render() << "\n"
              << "Both variants carry a >1000 mm^2 interposer (reticle-\n"
                 "stitched); splitting the compute die trades better 5 nm\n"
                 "yield against a second mask set and more bonding risk —\n"
                 "run it at your volume before committing.\n";
    return 0;
}
