// Command-line front end.  The primary surface is the Study API: a JSON
// file of declarative studies in, JSON results / an HTML report out,
// with every exploration engine reachable through one format.  Legacy
// subcommands for single evaluations are kept for convenience.
//
// Usage:
//   actuary_cli [--threads N] <command> ...
//
//   actuary_cli --version   # model schema + fingerprint stamp
//   actuary_cli study     <studies.json> [--out results.json] [--html report.html]
//                         [--plan]   # print the compiled execution graph only
//   actuary_cli serve     [--port N] [--cache-mb M] [--cache-dir D]
//                         [--dispatch H:P,...]
//   actuary_cli client    <studies.json> [--port N] [--host H] [--out results.json]
//   actuary_cli evaluate  <family.json> [tech.json]
//   actuary_cli explain   <family.json> [tech.json]  # itemised cost ledger
//   actuary_cli recommend <node> <module_area_mm2> <quantity>
//   actuary_cli breakeven <node> <module_area_mm2> <chiplets> <packaging>
//   actuary_cli template  <family.json>     # write an example family file
//   actuary_cli techdump  <tech.json>       # export the built-in catalogue
//   actuary_cli diff      <a.json> <b.json> [--tol 1e-6]   # float-tolerant
//
// Exit codes: 0 success, 1 difference found (diff) or unexpected model
// failure, 2 usage error, 3 model error (bad parameter / unknown name),
// 4 malformed input file.  A study batch with bad entries runs every
// good study, reports *all* failures by study name, and exits 4 when
// any failure is a parse failure, else 3.
#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "core/actuary.h"
#include "core/version.h"
#include "design/builder.h"
#include "design/json_io.h"
#include "explore/breakeven.h"
#include "explore/cell_store.h"
#include "explore/optimizer.h"
#include "explore/study.h"
#include "explore/study_graph.h"
#include "explore/study_json.h"
#include "report/study_view.h"
#include "report/table.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "tech/json_io.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace {

using namespace chiplet;

constexpr int kExitOk = 0;
constexpr int kExitFailure = 1;  ///< diff mismatch / unexpected error
constexpr int kExitUsage = 2;
constexpr int kExitModelError = 3;  ///< ParameterError / LookupError
constexpr int kExitParseError = 4;  ///< malformed input file

int usage() {
    std::cerr
        << "usage: actuary_cli [--threads N] <command> ...\n"
           "       actuary_cli --version   (model schema + fingerprint)\n"
           "\n"
           "  study     <studies.json> [--out results.json] [--html report.html]\n"
           "            [--plan]  (print the compiled execution graph —\n"
           "             per-study cell counts, unique cells, dedup ratio —\n"
           "             without evaluating)\n"
           "  serve     [--port N] [--cache-mb M] [--cache-dir D]\n"
           "            [--dispatch H:P,...]\n"
           "            (--port 0 binds an ephemeral port and prints it;\n"
           "             --cache-dir persists the result cache across\n"
           "             restarts, keyed by the model fingerprint;\n"
           "             --dispatch shards design_space studies across\n"
           "             the listed worker actuaryds)\n"
           "  client    <studies.json> [--port N] [--host H] [--out results.json]\n"
           "  evaluate  <family.json> [tech.json]\n"
           "  explain   <family.json> [tech.json]\n"
           "  recommend <node> <module_area_mm2> <quantity>\n"
           "  breakeven <node> <module_area_mm2> <chiplets> <packaging>\n"
           "  template  <family.json>\n"
           "  techdump  <tech.json>\n"
           "  diff      <a.json> <b.json> [--tol 1e-6]\n"
           "\n"
           "exit codes: 0 ok, 1 diff mismatch/unexpected error, 2 usage,\n"
           "            3 model error, 4 malformed input\n";
    return kExitUsage;
}

/// Prints every study failure with its name and document position; used
/// by both the local and the client-served study paths.
void report_failures(const std::vector<explore::StudyFailure>& failures) {
    for (const explore::StudyFailure& f : failures) {
        std::cerr << "study '" << f.name << "' (studies[" << f.index << "], "
                  << f.stage << " error): " << f.message << "\n";
    }
}

/// Batch exit policy: parse failures dominate model failures so a
/// malformed document is distinguishable from a bad parameter even when
/// both occur in one batch.
int failure_exit_code(const std::vector<explore::StudyFailure>& failures) {
    if (failures.empty()) return kExitOk;
    for (const explore::StudyFailure& f : failures) {
        if (f.stage == "parse") return kExitParseError;
    }
    return kExitModelError;
}

int cmd_study(const std::string& studies_path, const std::string& out_path,
              const std::string& html_path) {
    // Collect failures instead of aborting on the first one: a batch
    // with several bad studies reports every one of them by name, and
    // every good study still runs.
    std::vector<explore::StudyFailure> parse_failures;
    std::vector<std::size_t> kept;
    const std::vector<explore::StudySpec> specs =
        explore::load_studies_collecting(studies_path, parse_failures, &kept);
    const core::ChipletActuary actuary;
    explore::StudyBatchOutcome outcome =
        explore::run_studies_collecting(actuary, specs);
    const std::vector<explore::StudyFailure> failures =
        explore::merge_failures(std::move(parse_failures),
                                std::move(outcome.failures), kept);

    for (const explore::StudyResult& result : outcome.results) {
        std::cout << result.name << " (" << explore::to_string(result.kind)
                  << "): " << result.table.rows.size() << " rows in "
                  << format_fixed(result.run.wall_seconds * 1e3, 1) << " ms\n";
        if (out_path.empty() && html_path.empty()) {
            std::cout << report::study_table(result).render() << "\n";
        }
    }
    report_failures(failures);
    if (!out_path.empty()) {
        explore::save_results(outcome.results, out_path);
        std::cout << "wrote " << out_path << "\n";
    }
    if (!html_path.empty()) {
        report::HtmlReport html("Chiplet Actuary — study report");
        for (const explore::StudyResult& result : outcome.results) {
            report::add_study(html, result);
        }
        html.save(html_path);
        std::cout << "wrote " << html_path << "\n";
    }
    return failure_exit_code(failures);
}

int cmd_study_plan(const std::string& studies_path) {
    // Dry run: compile the batch into its execution graph and print what
    // would be shared — per-study cell counts, unique cells, the dedup
    // ratio — without evaluating a single cost cell.
    std::vector<explore::StudyFailure> parse_failures;
    std::vector<std::size_t> kept;
    const std::vector<explore::StudySpec> specs =
        explore::load_studies_collecting(studies_path, parse_failures, &kept);
    const core::ChipletActuary actuary;
    // A fresh CLI process starts with an empty cross-study cell store;
    // passing one anyway keeps the planning surface identical to the
    // server's (store_hits/misses are reported either way).
    explore::CellStore cell_store;
    const explore::StudyPlan plan =
        explore::plan_studies(actuary, specs, &cell_store);

    std::vector<std::vector<std::string>> rows;
    for (const explore::StudyPlanEntry& entry : plan.studies) {
        std::string note;
        if (entry.duplicate_spec) {
            note = "duplicate of '" + plan.studies[entry.duplicate_of].name +
                   "'";
        } else if (!entry.enumerable) {
            note = "opaque";
        } else if (entry.cell_refs > entry.new_cells) {
            note = std::to_string(entry.cell_refs - entry.new_cells) +
                   " cells shared";
        }
        rows.push_back({entry.name, explore::to_string(entry.kind),
                        std::to_string(entry.cell_refs),
                        std::to_string(entry.new_cells), std::move(note)});
    }
    std::cout << report::TextTable::from_columns(
                     {"study", "kind", "cells", "new", "note"}, rows)
                     .render();
    const explore::StudyGraphStats& stats = plan.stats;
    std::cout << "plan: " << stats.studies << " studies, " << stats.tech_groups
              << " tech groups, " << stats.spec_dedups
              << " identical-spec dedups\n"
              << "cells: " << stats.cell_refs << " refs -> "
              << stats.unique_cells << " unique (" << stats.deduped_cells
              << " deduped, " << format_pct(stats.dedup_ratio())
              << " dedup ratio)\n"
              << "store: " << stats.store_hits << " of " << stats.unique_cells
              << " unique cells already priced by the cross-study cell "
                 "store (" << format_pct(stats.store_hit_rate())
              << " warm)\n";
    report_failures(parse_failures);
    return failure_exit_code(parse_failures);
}

int cmd_serve(unsigned short port, std::size_t cache_mb,
              const std::string& cache_dir,
              const std::string& dispatch_workers) {
    const core::ChipletActuary actuary;
    serve::ServerConfig config;
    config.port = port;
    config.cache_bytes = cache_mb << 20;
    config.cache_dir = cache_dir;  // un-creatable directories throw here
    config.dispatch = dispatch_workers;  // bad lists throw ParseError here
    serve::StudyServer server(actuary, config);
    server.start();
    // The bound port (the ephemeral one under --port 0) goes to stdout
    // first and flushed, so wrappers can scrape it before connecting.
    std::cout << "actuaryd: serving on 127.0.0.1:" << server.port()
              << " (cache " << cache_mb << " MB, threads "
              << util::ThreadPool::global().size() << ", "
              << core::model_version_string() << ")\n";
    if (!cache_dir.empty()) {
        const serve::MetricsSnapshot m = server.metrics();
        std::cout << "actuaryd: persistent cache at " << cache_dir << " ("
                  << m.disk.loaded << " loaded, " << m.disk.stale
                  << " stale, " << m.disk.corrupt << " corrupt)\n";
    }
    if (!dispatch_workers.empty()) {
        std::cout << "actuaryd: dispatching design_space studies to "
                  << dispatch_workers << "\n";
    }
    std::cout << "actuaryd: send {\"op\":\"shutdown\"} to stop\n" << std::flush;
    server.wait();
    server.stop();
    const serve::StudyServer::Stats stats = server.stats();
    const explore::StudyCache::Stats cache = server.cache().stats();
    const explore::CellStore::Stats cells = server.cell_store().stats();
    std::cout << "actuaryd: stopped after " << stats.requests
              << " requests on " << stats.connections << " connections ("
              << cache.hits << " cache hits, " << cache.misses
              << " misses; " << cells.hits << " cross-study cell hits)\n";
    if (!cache_dir.empty()) {
        const serve::MetricsSnapshot m = server.metrics();
        std::cout << "actuaryd: persisted " << m.disk.writes
                  << " cache entries (" << m.disk.write_failures
                  << " write failures)\n";
    }
    return kExitOk;
}

int cmd_client(const std::string& studies_path, const std::string& host,
               unsigned short port, const std::string& out_path) {
    // Send the document as-is (validated locally as JSON): the server's
    // loader is the source of truth for per-study parse failures.  No
    // read timeout — a heavy cold batch may legitimately take minutes,
    // and a wedged server is Ctrl-C territory anyway — but the TCP
    // handshake is bounded so a black-holed --host fails in seconds.
    const JsonValue doc = JsonValue::load_file(studies_path);
    JsonValue response;
    try {
        serve::ClientConfig client_config;
        client_config.connect_timeout_ms = 5000;
        serve::StudyClient client(host, port, client_config);
        response = client.call(doc.dump());
    } catch (const serve::ClientError& e) {
        // Transport-level failure, typed: a bad --host is a usage
        // mistake; refused/timed-out/broken connections are the
        // "unexpected failure" exit of the PR-wide scheme.
        std::cerr << "client error [" << serve::to_string(e.code())
                  << "]: " << e.what() << "\n";
        return e.code() == serve::ClientErrorCode::bad_address ? kExitUsage
                                                               : kExitFailure;
    }

    const std::string unknown = "?";
    if (response.is_object() && response.contains("error")) {
        const JsonValue& error = response.at("error");
        const std::string code = error.get_or("code", unknown);
        std::cerr << "server error [" << code << "]: "
                  << error.get_or("message", std::string()) << "\n";
        if (code == "parse") return kExitParseError;
        if (code == "model") return kExitModelError;
        return kExitFailure;
    }

    std::vector<explore::StudyFailure> failures;
    for (const JsonValue& result : response.at("results").as_array()) {
        const bool cached =
            result.at("meta").get_or("from_cache", false);
        std::cout << result.get_or("name", unknown) << " ("
                  << result.get_or("kind", unknown) << "): "
                  << result.at("table").at("rows").as_array().size()
                  << " rows" << (cached ? " [cached]" : "") << "\n";
    }
    for (const JsonValue& f : response.at("failures").as_array()) {
        failures.push_back(explore::StudyFailure{
            static_cast<std::size_t>(f.get_or("index", 0.0)),
            f.get_or("name", unknown), f.get_or("stage", unknown),
            f.get_or("message", std::string())});
    }
    report_failures(failures);
    const JsonValue& meta = response.at("meta");
    std::cout << "served in " << format_fixed(meta.get_or("wall_ms", 0.0), 1)
              << " ms, " << meta.get_or("served_from_cache", 0.0)
              << " result(s) from cache\n";
    if (!out_path.empty()) {
        // Same document shape as `study --out`, so the two are directly
        // comparable with `diff` (failures/meta stay on the terminal).
        JsonValue out_doc = JsonValue::object();
        out_doc.set("results", response.at("results"));
        out_doc.save_file(out_path);
        std::cout << "wrote " << out_path << "\n";
    }
    return failure_exit_code(failures);
}

int cmd_evaluate(const std::string& family_path, const std::string& tech_path) {
    const core::ChipletActuary actuary(
        tech_path.empty() ? tech::TechLibrary::builtin()
                          : tech::load_tech_library(tech_path));
    const design::SystemFamily family = design::load_family(family_path);
    const core::FamilyCost cost = actuary.evaluate(family);

    report::TextTable table;
    table.add_column("system");
    table.add_column("dies", report::Align::right);
    table.add_column("RE/unit", report::Align::right);
    table.add_column("NRE/unit", report::Align::right);
    table.add_column("total/unit", report::Align::right);
    table.add_column("RE share", report::Align::right);
    for (std::size_t i = 0; i < cost.systems.size(); ++i) {
        const core::SystemCost& s = cost.systems[i];
        table.add_row({s.system_name,
                       std::to_string(family.systems()[i].die_count()),
                       format_money(s.re.total()), format_money(s.nre.total()),
                       format_money(s.total_per_unit()),
                       format_pct(s.re_share())});
    }
    std::cout << table.render() << "\n"
              << "family NRE: modules " << format_money(cost.nre_modules_total)
              << ", chips " << format_money(cost.nre_chips_total)
              << ", packages " << format_money(cost.nre_packages_total)
              << ", D2D " << format_money(cost.nre_d2d_total) << "\n";
    return kExitOk;
}

int cmd_explain(const std::string& family_path, const std::string& tech_path) {
    const core::ChipletActuary actuary(
        tech_path.empty() ? tech::TechLibrary::builtin()
                          : tech::load_tech_library(tech_path));
    const design::SystemFamily family = design::load_family(family_path);
    const core::FamilyCost cost = actuary.explain(family);

    for (const core::SystemCost& s : cost.systems) {
        std::cout << s.system_name << " — itemised cost per unit ("
                  << format_quantity(s.quantity) << " units)\n"
                  << report::ledger_table(s.ledger).render() << "\n";
    }
    std::cout << "every term is tagged with its paper equation (docs/model.md);"
                 " fold totals are bit-identical to `evaluate`\n";
    return kExitOk;
}

int cmd_recommend(const std::string& node, double area, double quantity) {
    const core::ChipletActuary actuary;
    explore::StudySpec spec;
    spec.name = "recommend";
    explore::DecisionQuery query;
    query.node = node;
    query.module_area_mm2 = area;
    query.quantity = quantity;
    spec.config = query;
    const explore::StudyResult result = explore::run_study(actuary, spec);
    const auto& rec = std::get<explore::Recommendation>(result.payload);
    std::cout << report::study_table(result).render() << "best: "
              << rec.best().packaging << " (" << rec.best().chiplets
              << " chiplets)\n";
    return kExitOk;
}

int cmd_breakeven(const std::string& node, double area, unsigned chiplets,
                  const std::string& packaging) {
    const core::ChipletActuary actuary;
    explore::BreakevenQuery query;
    query.node = node;
    query.module_area_mm2 = area;
    query.chiplets = chiplets;
    query.packaging = packaging;
    const explore::Breakeven result = explore::breakeven_search(actuary, query);
    if (!result.found) {
        std::cout << "no break-even in [10k, 1B] units — the "
                  << (chiplets > 1 ? "multi-chip" : "SoC")
                  << " option never catches up\n";
    } else {
        std::cout << packaging << " x" << chiplets << " matches the SoC at "
                  << format_quantity(result.value) << " units ("
                  << format_money(result.soc_cost) << "/unit)\n";
    }
    return kExitOk;
}

int cmd_template(const std::string& path) {
    const design::Chip compute = design::ChipBuilder("compute", "5nm")
                                     .module("cores", 300.0)
                                     .d2d(0.10)
                                     .build();
    const design::Chip io = design::ChipBuilder("io", "12nm")
                                .module("phy", 150.0, "12nm", false)
                                .d2d(0.08)
                                .build();
    design::SystemFamily family;
    family.add(design::SystemBuilder("product_a", "MCM")
                   .chips(compute, 2).chip(io).quantity(1e6).build());
    family.add(design::SystemBuilder("product_b", "MCM")
                   .chip(compute).chip(io).quantity(5e5).build());
    design::save_family(family, path);
    std::cout << "wrote example family to " << path << "\n";
    return kExitOk;
}

int cmd_techdump(const std::string& path) {
    tech::save_tech_library(tech::TechLibrary::builtin(), path);
    std::cout << "wrote built-in technology catalogue to " << path << "\n";
    return kExitOk;
}

int cmd_diff(const std::string& a_path, const std::string& b_path,
             double tolerance) {
    JsonDiffOptions options;
    options.tolerance = tolerance;
    options.ignore_keys = {"meta"};  // run metadata varies per machine
    const std::string diff = json_diff(JsonValue::load_file(a_path),
                                       JsonValue::load_file(b_path), options);
    if (diff.empty()) {
        std::cout << "match (tolerance " << tolerance << ", 'meta' ignored)\n";
        return kExitOk;
    }
    std::cerr << "difference: " << diff << "\n";
    return kExitFailure;
}

/// Pulls a bare "--flag" out of args; false when absent.
bool take_flag(std::vector<std::string>& args, const std::string& flag) {
    const auto it = std::find(args.begin(), args.end(), flag);
    if (it == args.end()) return false;
    args.erase(it);
    return true;
}

/// Pulls "--flag value" out of args; empty string when absent.
std::string take_option(std::vector<std::string>& args, const std::string& flag,
                        bool& ok) {
    for (std::size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == flag) {
            std::string value = args[i + 1];
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                       args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
            return value;
        }
    }
    if (!args.empty() && args.back() == flag) ok = false;  // flag without value
    return "";
}

int dispatch(std::vector<std::string> args) {
    bool ok = true;

    // --version: the model-version stamp persisted cache entries carry
    // (core/version.h) — schema number + fingerprint of the equation
    // constants, ledger schema, and built-in tech catalogue.
    if (take_flag(args, "--version")) {
        std::cout << "actuary_cli " << core::model_version_string() << "\n";
        return kExitOk;
    }

    // Global --threads: explicit pool size, overriding CHIPLET_THREADS.
    const std::string threads = take_option(args, "--threads", ok);
    if (!ok) return usage();
    if (!threads.empty()) {
        char* end = nullptr;
        errno = 0;
        const long long n = std::strtoll(threads.c_str(), &end, 10);
        if (errno != 0 || end != threads.c_str() + threads.size() || n < 0 ||
            n > std::numeric_limits<unsigned>::max()) {
            return usage();
        }
        util::ThreadPool::set_global_threads(static_cast<unsigned>(n));
    }

    if (args.empty()) return usage();
    const std::string command = args.front();
    args.erase(args.begin());

    if (command == "study") {
        const bool plan = take_flag(args, "--plan");
        const std::string out = take_option(args, "--out", ok);
        const std::string html = take_option(args, "--html", ok);
        if (!ok || args.size() != 1) return usage();
        if (plan) return cmd_study_plan(args[0]);
        return cmd_study(args[0], out, html);
    }
    if (command == "serve" || command == "client") {
        const std::string port_text = take_option(args, "--port", ok);
        unsigned short port = serve::kDefaultPort;
        if (!port_text.empty()) {
            double parsed = 0.0;
            // 0 is legal for serve (bind an ephemeral port, print it);
            // the client side rejects it below since there is nothing
            // to connect to on port 0.
            if (!parse_full_number(port_text, parsed) || parsed < 0 ||
                parsed > 65535 || parsed != static_cast<unsigned>(parsed)) {
                return usage();
            }
            port = static_cast<unsigned short>(parsed);
        }
        if (command == "serve") {
            const std::string cache_text = take_option(args, "--cache-mb", ok);
            const std::string cache_dir = take_option(args, "--cache-dir", ok);
            const std::string dispatch_workers =
                take_option(args, "--dispatch", ok);
            if (!ok || !args.empty()) return usage();
            double cache_mb = 64.0;
            // Integral and bounded (1 MB .. 1 TB): the value is shifted
            // into bytes, so an unchecked huge input would wrap.
            if (!cache_text.empty() &&
                (!parse_full_number(cache_text, cache_mb) || cache_mb < 1 ||
                 cache_mb > 1048576.0 ||
                 cache_mb != static_cast<double>(
                                 static_cast<std::size_t>(cache_mb)))) {
                return usage();
            }
            return cmd_serve(port, static_cast<std::size_t>(cache_mb),
                             cache_dir, dispatch_workers);
        }
        if (port == 0) return usage();  // client needs a real port
        const std::string host = take_option(args, "--host", ok);
        const std::string out = take_option(args, "--out", ok);
        if (!ok || args.size() != 1) return usage();
        return cmd_client(args[0], host.empty() ? "127.0.0.1" : host, port,
                          out);
    }
    if (command == "evaluate" && (args.size() == 1 || args.size() == 2)) {
        return cmd_evaluate(args[0], args.size() > 1 ? args[1] : "");
    }
    if (command == "explain" && (args.size() == 1 || args.size() == 2)) {
        return cmd_explain(args[0], args.size() > 1 ? args[1] : "");
    }
    if (command == "recommend" && args.size() == 3) {
        return cmd_recommend(args[0], std::atof(args[1].c_str()),
                             std::atof(args[2].c_str()));
    }
    if (command == "breakeven" && args.size() == 4) {
        return cmd_breakeven(args[0], std::atof(args[1].c_str()),
                             static_cast<unsigned>(std::atoi(args[2].c_str())),
                             args[3]);
    }
    if (command == "template" && args.size() == 1) return cmd_template(args[0]);
    if (command == "techdump" && args.size() == 1) return cmd_techdump(args[0]);
    if (command == "diff") {
        const std::string tol = take_option(args, "--tol", ok);
        if (!ok || args.size() != 2) return usage();
        double tolerance = 1e-6;
        if (!tol.empty() && (!parse_full_number(tol, tolerance) || tolerance < 0)) {
            return usage();  // a typo must not silently mean exact compare
        }
        return cmd_diff(args[0], args[1], tolerance);
    }
    return usage();
}

}  // namespace

int main(int argc, char** argv) {
    try {
        return dispatch(std::vector<std::string>(argv + 1, argv + argc));
    } catch (const chiplet::ParseError& e) {
        std::cerr << "parse error: " << e.what() << "\n";
        return kExitParseError;
    } catch (const chiplet::ParameterError& e) {
        std::cerr << "model error: " << e.what() << "\n";
        return kExitModelError;
    } catch (const chiplet::LookupError& e) {
        std::cerr << "model error: " << e.what() << "\n";
        return kExitModelError;
    } catch (const chiplet::Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return kExitFailure;
    } catch (const std::exception& e) {
        // e.g. std::system_error from an oversized --threads request, or
        // bad_alloc on huge inputs — fail with an exit code, not a core.
        std::cerr << "error: " << e.what() << "\n";
        return kExitFailure;
    }
}
