// Command-line front end: evaluate system families described in JSON,
// with optional custom technology libraries.
//
// Usage:
//   actuary_cli evaluate  <family.json> [tech.json]
//   actuary_cli recommend <node> <module_area_mm2> <quantity>
//   actuary_cli breakeven <node> <module_area_mm2> <chiplets> <packaging>
//   actuary_cli template  <family.json>     # write an example family file
//   actuary_cli techdump  <tech.json>       # export the built-in catalogue
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/actuary.h"
#include "design/builder.h"
#include "design/json_io.h"
#include "explore/breakeven.h"
#include "explore/optimizer.h"
#include "report/table.h"
#include "tech/json_io.h"
#include "util/error.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

int usage() {
    std::cerr
        << "usage:\n"
           "  actuary_cli evaluate  <family.json> [tech.json]\n"
           "  actuary_cli recommend <node> <module_area_mm2> <quantity>\n"
           "  actuary_cli breakeven <node> <module_area_mm2> <chiplets> "
           "<packaging>\n"
           "  actuary_cli template  <family.json>\n"
           "  actuary_cli techdump  <tech.json>\n";
    return 2;
}

int cmd_evaluate(const std::string& family_path, const std::string& tech_path) {
    const core::ChipletActuary actuary(
        tech_path.empty() ? tech::TechLibrary::builtin()
                          : tech::load_tech_library(tech_path));
    const design::SystemFamily family = design::load_family(family_path);
    const core::FamilyCost cost = actuary.evaluate(family);

    report::TextTable table;
    table.add_column("system");
    table.add_column("dies", report::Align::right);
    table.add_column("RE/unit", report::Align::right);
    table.add_column("NRE/unit", report::Align::right);
    table.add_column("total/unit", report::Align::right);
    table.add_column("RE share", report::Align::right);
    for (std::size_t i = 0; i < cost.systems.size(); ++i) {
        const core::SystemCost& s = cost.systems[i];
        table.add_row({s.system_name,
                       std::to_string(family.systems()[i].die_count()),
                       format_money(s.re.total()), format_money(s.nre.total()),
                       format_money(s.total_per_unit()),
                       format_pct(s.re_share())});
    }
    std::cout << table.render() << "\n"
              << "family NRE: modules " << format_money(cost.nre_modules_total)
              << ", chips " << format_money(cost.nre_chips_total)
              << ", packages " << format_money(cost.nre_packages_total)
              << ", D2D " << format_money(cost.nre_d2d_total) << "\n";
    return 0;
}

int cmd_recommend(const std::string& node, double area, double quantity) {
    const core::ChipletActuary actuary;
    explore::DecisionQuery query;
    query.node = node;
    query.module_area_mm2 = area;
    query.quantity = quantity;
    const explore::Recommendation rec = explore::recommend(actuary, query);
    report::TextTable table;
    table.add_column("scheme");
    table.add_column("chiplets", report::Align::right);
    table.add_column("total/unit", report::Align::right);
    for (const explore::DesignOption& option : rec.options) {
        table.add_row({option.packaging, std::to_string(option.chiplets),
                       format_money(option.total_per_unit())});
    }
    std::cout << table.render() << "best: " << rec.best().packaging << " ("
              << rec.best().chiplets << " chiplets)\n";
    return 0;
}

int cmd_breakeven(const std::string& node, double area, unsigned chiplets,
                  const std::string& packaging) {
    const core::ChipletActuary actuary;
    const explore::Breakeven result =
        explore::breakeven_quantity(actuary, node, area, chiplets, packaging, 0.10);
    if (!result.found) {
        std::cout << "no break-even in [10k, 1B] units — the "
                  << (chiplets > 1 ? "multi-chip" : "SoC")
                  << " option never catches up\n";
    } else {
        std::cout << packaging << " x" << chiplets << " matches the SoC at "
                  << format_quantity(result.value) << " units ("
                  << format_money(result.soc_cost) << "/unit)\n";
    }
    return 0;
}

int cmd_template(const std::string& path) {
    const design::Chip compute = design::ChipBuilder("compute", "5nm")
                                     .module("cores", 300.0)
                                     .d2d(0.10)
                                     .build();
    const design::Chip io = design::ChipBuilder("io", "12nm")
                                .module("phy", 150.0, "12nm", false)
                                .d2d(0.08)
                                .build();
    design::SystemFamily family;
    family.add(design::SystemBuilder("product_a", "MCM")
                   .chips(compute, 2).chip(io).quantity(1e6).build());
    family.add(design::SystemBuilder("product_b", "MCM")
                   .chip(compute).chip(io).quantity(5e5).build());
    design::save_family(family, path);
    std::cout << "wrote example family to " << path << "\n";
    return 0;
}

int cmd_techdump(const std::string& path) {
    tech::save_tech_library(tech::TechLibrary::builtin(), path);
    std::cout << "wrote built-in technology catalogue to " << path << "\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    try {
        if (command == "evaluate" && argc >= 3) {
            return cmd_evaluate(argv[2], argc > 3 ? argv[3] : "");
        }
        if (command == "recommend" && argc == 5) {
            return cmd_recommend(argv[2], std::atof(argv[3]), std::atof(argv[4]));
        }
        if (command == "breakeven" && argc == 6) {
            return cmd_breakeven(argv[2], std::atof(argv[3]),
                                 static_cast<unsigned>(std::atoi(argv[4])),
                                 argv[5]);
        }
        if (command == "template" && argc == 3) return cmd_template(argv[2]);
        if (command == "techdump" && argc == 3) return cmd_techdump(argv[2]);
    } catch (const chiplet::Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return usage();
}
