// Quickstart: is a big 5 nm design cheaper as a monolithic SoC or as two
// chiplets on an organic substrate (MCM)?
//
// Demonstrates both layers of the API:
//   1. the scalar core — build systems, evaluate them, read the five-way
//      RE breakdown and the amortised NRE;
//   2. the Study API — the same question as one declarative StudySpec
//      run through explore::run_study, the JSON-service surface every
//      exploration engine is reachable from (actuary_cli study).
#include <iostream>
#include <variant>

#include "core/actuary.h"
#include "core/scenarios.h"
#include "explore/optimizer.h"
#include "explore/study.h"
#include "explore/study_json.h"
#include "report/study_view.h"
#include "report/table.h"
#include "util/strings.h"

int main() {
    using namespace chiplet;

    core::ChipletActuary actuary;  // built-in technology catalogue

    constexpr double module_area = 800.0;  // mm^2 of logic
    constexpr double quantity = 2e6;       // units to manufacture

    // ---- layer 1: scalar evaluation -----------------------------------------
    const design::System soc =
        core::monolithic_soc("soc800", "5nm", module_area, quantity);
    const design::System mcm = core::split_system(
        "mcm800", "5nm", "MCM", module_area, /*k=*/2, /*d2d=*/0.10, quantity);

    const core::SystemCost soc_cost = actuary.evaluate(soc);
    const core::SystemCost mcm_cost = actuary.evaluate(mcm);

    report::TextTable table;
    table.add_column("component");
    table.add_column("SoC", report::Align::right);
    table.add_column("2-chiplet MCM", report::Align::right);
    const auto row = [&](const std::string& label, double a, double b) {
        table.add_row({label, format_money(a), format_money(b)});
    };
    row("RE: raw chips", soc_cost.re.raw_chips, mcm_cost.re.raw_chips);
    row("RE: chip defects", soc_cost.re.chip_defects, mcm_cost.re.chip_defects);
    row("RE: raw package", soc_cost.re.raw_package, mcm_cost.re.raw_package);
    row("RE: package defects", soc_cost.re.package_defects,
        mcm_cost.re.package_defects);
    row("RE: wasted KGD", soc_cost.re.wasted_kgd, mcm_cost.re.wasted_kgd);
    table.add_rule();
    row("NRE/unit", soc_cost.nre.total(), mcm_cost.nre.total());
    table.add_rule();
    row("total per unit", soc_cost.total_per_unit(), mcm_cost.total_per_unit());

    std::cout << "800 mm^2 of 5 nm logic, " << format_quantity(quantity)
              << " units, D2D overhead 10%\n\n"
              << table.render() << "\n";

    // ---- layer 2: the same decision as one declarative study ----------------
    explore::StudySpec spec;
    spec.name = "quickstart_decision";
    explore::DecisionQuery query;
    query.node = "5nm";
    query.module_area_mm2 = module_area;
    query.quantity = quantity;
    query.max_chiplets = 4;
    spec.config = query;

    std::cout << "the same question as a study file entry:\n"
              << explore::to_json(spec).dump(2) << "\n\n";

    const explore::StudyResult result = explore::run_study(actuary, spec);
    std::cout << report::study_table(result).render();

    const auto& rec = std::get<explore::Recommendation>(result.payload);
    std::cout << "best: " << rec.best().packaging << " with "
              << rec.best().chiplets << " chiplets, "
              << format_pct(rec.savings_vs_soc()) << " cheaper than the SoC\n";
    return 0;
}
