// Quickstart: is a big 5 nm design cheaper as a monolithic SoC or as two
// chiplets on an organic substrate (MCM)?
//
// Demonstrates the three-step API:
//   1. build systems (core::monolithic_soc / split_system or the builders),
//   2. evaluate them with core::ChipletActuary,
//   3. read the five-way RE breakdown and the amortised NRE.
#include <iostream>

#include "core/actuary.h"
#include "core/scenarios.h"
#include "report/table.h"
#include "util/strings.h"

int main() {
    using namespace chiplet;

    core::ChipletActuary actuary;  // built-in technology catalogue

    constexpr double module_area = 800.0;  // mm^2 of logic
    constexpr double quantity = 2e6;       // units to manufacture

    const design::System soc =
        core::monolithic_soc("soc800", "5nm", module_area, quantity);
    const design::System mcm = core::split_system(
        "mcm800", "5nm", "MCM", module_area, /*k=*/2, /*d2d=*/0.10, quantity);

    const core::SystemCost soc_cost = actuary.evaluate(soc);
    const core::SystemCost mcm_cost = actuary.evaluate(mcm);

    report::TextTable table;
    table.add_column("component");
    table.add_column("SoC", report::Align::right);
    table.add_column("2-chiplet MCM", report::Align::right);
    const auto row = [&](const std::string& label, double a, double b) {
        table.add_row({label, format_money(a), format_money(b)});
    };
    row("RE: raw chips", soc_cost.re.raw_chips, mcm_cost.re.raw_chips);
    row("RE: chip defects", soc_cost.re.chip_defects, mcm_cost.re.chip_defects);
    row("RE: raw package", soc_cost.re.raw_package, mcm_cost.re.raw_package);
    row("RE: package defects", soc_cost.re.package_defects,
        mcm_cost.re.package_defects);
    row("RE: wasted KGD", soc_cost.re.wasted_kgd, mcm_cost.re.wasted_kgd);
    table.add_rule();
    row("NRE/unit: modules", soc_cost.nre.modules, mcm_cost.nre.modules);
    row("NRE/unit: chips", soc_cost.nre.chips, mcm_cost.nre.chips);
    row("NRE/unit: packages", soc_cost.nre.packages, mcm_cost.nre.packages);
    row("NRE/unit: D2D", soc_cost.nre.d2d, mcm_cost.nre.d2d);
    table.add_rule();
    row("total per unit", soc_cost.total_per_unit(), mcm_cost.total_per_unit());

    std::cout << "800 mm^2 of 5 nm logic, " << format_quantity(quantity)
              << " units, D2D overhead 10%\n\n"
              << table.render() << "\n";

    const double die_yield_soc = soc_cost.dies.front().yield;
    const double die_yield_mcm = mcm_cost.dies.front().yield;
    std::cout << "die yield: SoC " << format_pct(die_yield_soc) << " vs chiplet "
              << format_pct(die_yield_mcm) << "\n";

    const double delta =
        soc_cost.total_per_unit() - mcm_cost.total_per_unit();
    if (delta > 0) {
        std::cout << "MCM wins by " << format_money(delta) << " per unit ("
                  << format_pct(delta / soc_cost.total_per_unit()) << ")\n";
    } else {
        std::cout << "SoC wins by " << format_money(-delta) << " per unit ("
                  << format_pct(-delta / soc_cost.total_per_unit()) << ")\n";
    }
    return 0;
}
