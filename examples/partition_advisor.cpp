// Decision tool: given a module area, process node and production
// quantity, rank every (integration scheme x chiplet count) option by
// per-unit total cost — the paper's Sec. 6 "analytical method for
// decision-making" as a command-line utility.
//
// Usage: partition_advisor [node] [module_area_mm2] [quantity]
//   e.g. partition_advisor 5nm 600 2e6
#include <cstdlib>
#include <iostream>
#include <string>

#include "explore/optimizer.h"
#include "report/table.h"
#include "util/strings.h"

int main(int argc, char** argv) {
    using namespace chiplet;

    explore::DecisionQuery query;
    query.node = argc > 1 ? argv[1] : "7nm";
    query.module_area_mm2 = argc > 2 ? std::atof(argv[2]) : 600.0;
    query.quantity = argc > 3 ? std::atof(argv[3]) : 2e6;

    core::ChipletActuary actuary;
    if (!actuary.library().has_node(query.node)) {
        std::cerr << "unknown node '" << query.node << "'; available:";
        for (const auto& name : actuary.library().node_names()) {
            std::cerr << " " << name;
        }
        std::cerr << "\n";
        return 1;
    }

    const explore::Recommendation rec = explore::recommend(actuary, query);

    std::cout << "Workload: " << format_fixed(query.module_area_mm2, 0)
              << " mm^2 of modules at " << query.node << ", "
              << format_quantity(query.quantity) << " units, "
              << format_pct(query.d2d_fraction, 0) << " D2D overhead\n\n";

    report::TextTable table;
    table.add_column("rank", report::Align::right);
    table.add_column("scheme");
    table.add_column("chiplets", report::Align::right);
    table.add_column("RE/unit", report::Align::right);
    table.add_column("NRE/unit", report::Align::right);
    table.add_column("total/unit", report::Align::right);

    unsigned rank = 1;
    for (const explore::DesignOption& option : rec.options) {
        table.add_row({std::to_string(rank++), option.packaging,
                       std::to_string(option.chiplets),
                       format_money(option.re_per_unit),
                       format_money(option.nre_per_unit),
                       format_money(option.total_per_unit())});
    }
    std::cout << table.render() << "\n";

    const explore::DesignOption& best = rec.best();
    std::cout << "Recommendation: " << best.packaging;
    if (best.packaging != "SoC") {
        std::cout << " with " << best.chiplets << " chiplets";
    }
    const double savings = rec.savings_vs_soc();
    if (savings > 0.0) {
        std::cout << ", saving " << format_pct(savings)
                  << " over the monolithic SoC\n";
    } else {
        std::cout << " (multi-chip does not pay off at this quantity)\n";
    }
    return 0;
}
