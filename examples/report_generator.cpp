// Generates a standalone HTML report for the paper's headline analyses
// through the Study API: every section is one declarative StudySpec run
// by explore::run_studies on the thread pool and rendered generically —
// the same pipeline `actuary_cli study --html` uses, plus one custom
// SVG chart section to show the two layers compose.
//
// Usage: report_generator [output.html]
#include <iostream>
#include <string>
#include <vector>

#include "core/actuary.h"
#include "explore/study.h"
#include "report/html.h"
#include "report/study_view.h"
#include "report/svg.h"
#include "tech/tech_library.h"
#include "util/strings.h"
#include "wafer/die_cost.h"
#include "yield/models.h"

int main(int argc, char** argv) {
    using namespace chiplet;
    const std::string path = argc > 1 ? argv[1] : "chiplet_report.html";

    const core::ChipletActuary actuary;

    // ---- declarative sections: one StudySpec each -----------------------------
    std::vector<explore::StudySpec> specs;

    explore::StudySpec fig6;
    fig6.name = "Fig. 6 — total cost vs quantity (800 mm^2, 5 nm)";
    fig6.config = explore::QuantitySweepConfig{};  // defaults are the Fig. 6 axes
    specs.push_back(fig6);

    explore::StudySpec decide;
    decide.name = "Decision — 400 mm^2 at 7 nm, 1M units";
    decide.config = explore::DecisionQuery{};
    specs.push_back(decide);

    explore::StudySpec breakeven;
    breakeven.name = "Break-even quantity — 2x MCM vs SoC";
    breakeven.config = explore::BreakevenQuery{};
    specs.push_back(breakeven);

    explore::StudySpec hetero;
    hetero.name = "Design space — 800 mm^2, per-chiplet 5/7 nm assignment";
    explore::DesignSpaceConfig ds;
    ds.module_area_mm2 = 800.0;
    ds.reference_node = "5nm";
    ds.nodes = {"5nm", "7nm"};
    ds.chiplet_counts = {1, 2, 3, 4};
    ds.quantities = {2e6};
    ds.top_k = 8;
    hetero.config = ds;
    specs.push_back(hetero);

    explore::StudySpec tornado;
    tornado.name = "Tornado — which calibration inputs matter";
    explore::TornadoStudyConfig tc;
    tc.scenario.node = "5nm";
    tc.scenario.packaging = "MCM";
    tc.scenario.module_area_mm2 = 800.0;
    tc.scenario.chiplets = 2;
    tc.scenario.quantity = 2e6;
    tornado.config = tc;
    specs.push_back(tornado);

    const std::vector<explore::StudyResult> results =
        explore::run_studies(actuary, specs);

    report::HtmlReport html("Chiplet Actuary — cost model report");
    for (const explore::StudyResult& result : results) {
        report::add_study(html, result);
    }

    // ---- custom section: Fig. 2 yield/cost curves (SVG charts) ----------------
    html.add_heading("Yield and normalised cost vs die area (paper Fig. 2)");
    report::SvgLineChart yield_chart(760, 360);
    report::SvgLineChart cost_chart(760, 360);
    yield_chart.set_axis_labels("die area (mm^2)", "yield (%)");
    cost_chart.set_axis_labels("die area (mm^2)", "cost per area (normalised)");
    for (const char* node : {"3nm", "5nm", "7nm", "14nm", "rdl", "si_interposer"}) {
        const tech::ProcessNode& n = actuary.library().node(node);
        const wafer::DieCostModel model(
            n.wafer_spec(), n.defect_density_cm2,
            std::make_unique<yield::SeedsNegativeBinomial>(n.cluster_param));
        std::vector<std::pair<double, double>> yields;
        std::vector<std::pair<double, double>> costs;
        for (double area = 50.0; area <= 900.0; area += 25.0) {
            yields.emplace_back(area, model.die_yield(area) * 100.0);
            costs.emplace_back(area,
                               model.evaluate(area).normalized_cost_per_area);
        }
        yield_chart.add_series(node, std::move(yields));
        cost_chart.add_series(node, std::move(costs));
    }
    html.add_svg(yield_chart.render());
    html.add_svg(cost_chart.render());

    html.save(path);
    std::cout << "wrote " << path << " (" << results.size()
              << " study sections)\n";
    return 0;
}
