// Generates a standalone HTML report (tables + SVG charts) for the
// paper's two headline figures — the Fig. 2 yield/cost curves and the
// Fig. 6 total-cost structure — demonstrating the report toolkit.
//
// Usage: report_generator [output.html]
#include <iostream>
#include <string>

#include "core/actuary.h"
#include "core/scenarios.h"
#include "explore/sweep.h"
#include "report/html.h"
#include "report/svg.h"
#include "tech/tech_library.h"
#include "util/strings.h"
#include "wafer/die_cost.h"
#include "yield/models.h"

int main(int argc, char** argv) {
    using namespace chiplet;
    const std::string path = argc > 1 ? argv[1] : "chiplet_report.html";

    report::HtmlReport html("Chiplet Actuary — cost model report");
    const core::ChipletActuary actuary;

    // ---- Fig. 2: yield and normalised cost vs area -----------------------------
    html.add_heading("Yield and normalised cost vs die area (paper Fig. 2)");
    report::SvgLineChart yield_chart(760, 360);
    report::SvgLineChart cost_chart(760, 360);
    yield_chart.set_axis_labels("die area (mm^2)", "yield (%)");
    cost_chart.set_axis_labels("die area (mm^2)", "cost per area (normalised)");
    for (const char* node : {"3nm", "5nm", "7nm", "14nm", "rdl", "si_interposer"}) {
        const tech::ProcessNode& n = actuary.library().node(node);
        const wafer::DieCostModel model(
            n.wafer_spec(), n.defect_density_cm2,
            std::make_unique<yield::SeedsNegativeBinomial>(n.cluster_param));
        std::vector<std::pair<double, double>> yields;
        std::vector<std::pair<double, double>> costs;
        for (double area = 50.0; area <= 900.0; area += 25.0) {
            yields.emplace_back(area, model.die_yield(area) * 100.0);
            costs.emplace_back(area,
                               model.evaluate(area).normalized_cost_per_area);
        }
        yield_chart.add_series(node, std::move(yields));
        cost_chart.add_series(node, std::move(costs));
    }
    html.add_svg(yield_chart.render());
    html.add_svg(cost_chart.render());

    // ---- Fig. 6: total cost structure -----------------------------------------------
    html.add_heading("Total cost of one 800 mm^2 5nm system (paper Fig. 6)");
    html.add_paragraph(
        "RE plus amortised NRE per unit, two chiplets, normalised to the "
        "SoC RE cost; quantities 500k / 2M / 10M.");
    const double soc_re =
        actuary.evaluate_re_only(core::monolithic_soc("n", "5nm", 800.0, 1e6))
            .re.total();
    const auto points = explore::sweep_total_vs_quantity(
        actuary, "5nm", 800.0, 2, 0.10, {"SoC", "MCM", "InFO", "2.5D"},
        {5e5, 2e6, 1e7});
    report::SvgStackedBarChart bars(760);
    bars.set_segments({"RE", "NRE modules", "NRE chips", "NRE pkg+D2D"});
    std::vector<std::vector<std::string>> rows;
    for (const auto& p : points) {
        const auto& c = p.cost;
        bars.add_bar(format_quantity(p.quantity) + " " + p.packaging,
                     {c.re.total() / soc_re, c.nre.modules / soc_re,
                      c.nre.chips / soc_re,
                      (c.nre.packages + c.nre.d2d) / soc_re});
        rows.push_back({format_quantity(p.quantity), p.packaging,
                        format_fixed(c.total_per_unit() / soc_re, 2),
                        format_pct(c.re_share())});
    }
    html.add_svg(bars.render());
    html.add_table({"quantity", "scheme", "total (norm.)", "RE share"}, rows);

    html.save(path);
    std::cout << "wrote " << path << "\n";
    return 0;
}
