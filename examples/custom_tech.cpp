// Loading a custom technology library from JSON: export the built-in
// catalogue, tweak it on disk (here: simulate a mature 5 nm process with
// halved defect density), reload and compare.
//
// Usage: custom_tech [path.json]
#include <iostream>
#include <string>

#include "core/actuary.h"
#include "core/scenarios.h"
#include "tech/json_io.h"
#include "util/strings.h"

int main(int argc, char** argv) {
    using namespace chiplet;
    const std::string path = argc > 1 ? argv[1] : "custom_tech.json";

    // 1. Export the built-in catalogue so users have a template to edit.
    tech::TechLibrary builtin = tech::TechLibrary::builtin();
    tech::save_tech_library(builtin, path);
    std::cout << "wrote built-in technology catalogue to " << path << "\n";

    // 2. Simulate the user editing the file: mature 5 nm defect density.
    JsonValue doc = JsonValue::load_file(path);
    for (JsonValue& node : doc.at("nodes").as_array()) {
        if (node.at("name").as_string() == "5nm") {
            node.set("defect_density_cm2", 0.055);  // half of the paper value
        }
    }
    doc.save_file(path);

    // 3. Reload and evaluate the same system under both calibrations.
    tech::TechLibrary custom = tech::load_tech_library(path);
    const design::System soc = core::monolithic_soc("big", "5nm", 800.0, 2e6);

    const core::ChipletActuary before{tech::TechLibrary::builtin()};
    const core::ChipletActuary after{std::move(custom)};

    const double cost_before = before.evaluate(soc).total_per_unit();
    const double cost_after = after.evaluate(soc).total_per_unit();

    std::cout << "800 mm^2 5 nm SoC, 2M units\n"
              << "  built-in defect density (0.11): "
              << format_money(cost_before) << " per unit\n"
              << "  mature process (0.055):         "
              << format_money(cost_after) << " per unit\n"
              << "  yield learning saves "
              << format_pct((cost_before - cost_after) / cost_before)
              << " — and shrinks the chiplet advantage accordingly\n";
    return 0;
}
