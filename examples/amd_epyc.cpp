// The paper's Fig. 5 scenario as an application: AMD EPYC-class chiplet
// architecture (7 nm compute dies + 12 nm IO die on MCM) versus a
// hypothetical monolithic 7 nm SoC, across core counts.
//
// Defect densities follow the paper's Zen3-era speculation: 0.13 /cm^2
// for 7 nm and 0.12 /cm^2 for 12 nm.
#include <iostream>
#include <vector>

#include "core/actuary.h"
#include "design/builder.h"
#include "report/table.h"
#include "util/strings.h"

namespace {

/// One EPYC-like product point.
struct EpycConfig {
    unsigned cores;
    unsigned ccds;  // 8 cores per CCD
};

}  // namespace

int main() {
    using namespace chiplet;

    core::ChipletActuary actuary;
    // Paper Sec. 4.1: early-production defect densities.
    actuary.library().set_defect_density("7nm", 0.13);
    actuary.library().set_defect_density("12nm", 0.12);

    constexpr double ccd_core_area = 66.0;   // 8-core compute logic, mm^2 at 7nm
    constexpr double iod_logic_area = 166.0; // scalable share of the IO die
    constexpr double iod_analog_area = 250.0;  // PHY/analog, does not shrink
    constexpr double quantity = 1e6;

    const design::Chip ccd = design::ChipBuilder("ccd", "7nm")
                                 .module("ccd_cores", ccd_core_area)
                                 .d2d(0.10)
                                 .build();
    const design::Chip iod =
        design::ChipBuilder("iod", "12nm")
            .module("iod_logic", iod_logic_area)
            .module("iod_analog", iod_analog_area, "12nm", /*scalable=*/false)
            .d2d(0.06)
            .build();

    const std::vector<EpycConfig> configs = {
        {16, 2}, {24, 3}, {32, 4}, {48, 6}, {64, 8}};

    report::TextTable table;
    table.add_column("cores");
    table.add_column("MCM dies", report::Align::right);
    table.add_column("MCM cost", report::Align::right);
    table.add_column("packaging share", report::Align::right);
    table.add_column("mono area", report::Align::right);
    table.add_column("mono cost", report::Align::right);
    table.add_column("MCM / mono", report::Align::right);

    for (const EpycConfig& config : configs) {
        const design::System mcm =
            design::SystemBuilder("epyc" + std::to_string(config.cores), "MCM")
                .chips(ccd, config.ccds)
                .chip(iod)
                .quantity(quantity)
                .build();

        // Hypothetical monolithic 7 nm: cores plus the IO content on one die
        // (analog does not scale with the node change).
        const design::Chip mono_die =
            design::ChipBuilder("mono" + std::to_string(config.cores) + "_die",
                                "7nm")
                .module("mono_cores" + std::to_string(config.cores),
                        ccd_core_area * config.ccds)
                .module("mono_io_logic", iod_logic_area, "12nm", true)
                .module("mono_io_analog", iod_analog_area, "12nm", false)
                .build();
        const design::System mono =
            design::SystemBuilder("mono" + std::to_string(config.cores), "SoC")
                .chip(mono_die)
                .quantity(quantity)
                .build();

        const core::SystemCost mcm_cost = actuary.evaluate_re_only(mcm);
        const core::SystemCost mono_cost = actuary.evaluate_re_only(mono);

        table.add_row(
            {std::to_string(config.cores),
             std::to_string(config.ccds) + "+1",
             format_money(mcm_cost.re.total()),
             format_pct(mcm_cost.re.packaging_total() / mcm_cost.re.total()),
             format_fixed(mono_cost.dies.front().area_mm2, 0) + " mm2",
             format_money(mono_cost.re.total()),
             format_fixed(mcm_cost.re.total() / mono_cost.re.total(), 2)});
    }

    std::cout << "EPYC-class chiplet architecture vs hypothetical monolithic "
                 "7 nm (RE cost only)\n\n"
              << table.render() << "\n"
              << "Expected shape (paper Fig. 5): the chiplet advantage grows\n"
                 "with core count; packaging adds the visible overhead that\n"
                 "AMD's die-cost-only comparison leaves out.\n";
    return 0;
}
