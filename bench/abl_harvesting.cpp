// Ablation: die harvesting (core binning) — the monolithic SoC's
// counterweight to the paper's yield argument.  Selling partially
// defective dies in lower bins recovers much of the defect loss that
// Eq. 1 charges the big die, narrowing the chiplet advantage.
#include "bench_common.h"
#include "core/actuary.h"
#include "core/scenarios.h"
#include "report/table.h"
#include "util/strings.h"
#include "yield/harvest.h"
#include "yield/models.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("ablation — die harvesting (binning)");
    const core::ChipletActuary actuary;
    const tech::ProcessNode& n5 = actuary.library().node("5nm");
    const yield::SeedsNegativeBinomial model(n5.cluster_param);

    // A 64-core 5nm server die: 200 mm^2 base + 64 x 9.4 mm^2 cores.
    yield::HarvestSpec spec;
    spec.base_area_mm2 = 200.0;
    spec.unit_area_mm2 = 9.4;
    spec.unit_count = 64;
    const double die_area =
        spec.base_area_mm2 + spec.unit_area_mm2 * spec.unit_count;

    report::TextTable table;
    table.add_column("selling strategy");
    table.add_column("effective yield", report::Align::right);
    table.add_column("eff. KGD cost", report::Align::right);

    const auto soc =
        actuary.evaluate_re_only(core::monolithic_soc("s", "5nm", die_area, 1e6));
    const double raw = soc.re.raw_chips;

    const auto row = [&](const std::string& label, double eff_yield) {
        table.add_row({label, format_pct(eff_yield), format_money(raw / eff_yield)});
    };
    const double perfect = model.yield(n5.defect_density_cm2, die_area);
    row("perfect dies only (paper Eq. 1)", perfect);
    row("64-of-64 bin (base+units model)",
        yield::harvested_yield(model, n5.defect_density_cm2, spec, 64));
    row("single 60-core bin",
        yield::harvested_yield(model, n5.defect_density_cm2, spec, 60));
    row("bins 64/62/60 @ 1.0/0.85/0.7",
        yield::effective_yield(model, n5.defect_density_cm2, spec,
                               {{64, 1.0}, {62, 0.85}, {60, 0.70}}));
    row("bins 64/60/56/48 @ 1.0/0.8/0.65/0.5",
        yield::effective_yield(
            model, n5.defect_density_cm2, spec,
            {{64, 1.0}, {60, 0.80}, {56, 0.65}, {48, 0.50}}));
    std::cout << table.render() << "\n";

    // How much of the chiplet advantage survives harvesting?
    const auto mcm = actuary.evaluate_re_only(
        core::split_system("m", "5nm", "MCM", die_area, 2, 0.10, 1e6));
    const double harvested_yield_value = yield::effective_yield(
        model, n5.defect_density_cm2, spec,
        {{64, 1.0}, {60, 0.80}, {56, 0.65}, {48, 0.50}});
    const double soc_harvested =
        raw / harvested_yield_value + soc.re.packaging_total();
    std::cout << "SoC (no harvest):  " << format_money(soc.re.total())
              << "\nSoC (harvested):   " << format_money(soc_harvested)
              << "\n2-chiplet MCM:     " << format_money(mcm.re.total()) << "\n\n";

    bench::print_claim(
        "(extension beyond the paper) the paper's Eq. 1 treats every "
        "defective die as scrap; real products bin-harvest large dies",
        "harvesting recovers a large share of the defect loss and "
        "narrows — but in this configuration does not eliminate — the "
        "chiplet advantage at reticle-class sizes");
}

void BM_EffectiveYield(benchmark::State& state) {
    const yield::SeedsNegativeBinomial model(10.0);
    yield::HarvestSpec spec;
    spec.base_area_mm2 = 200.0;
    spec.unit_area_mm2 = 9.4;
    spec.unit_count = 64;
    for (auto _ : state) {
        benchmark::DoNotOptimize(yield::effective_yield(
            model, 0.11, spec, {{64, 1.0}, {60, 0.80}, {56, 0.65}, {48, 0.50}}));
    }
}
BENCHMARK(BM_EffectiveYield);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
