// Study-compiler probe: a batch of heavily overlapping studies run once
// through the compiled execution graph (explore/study_graph.h) and once
// as independent run_study calls — the sum-of-parts cost the compiler
// exists to beat.  Results are checked bit-identical (json_diff over the
// payloads, run metadata ignored) before any timing is reported, and the
// plan's dedup accounting lands in the artifact next to the wall times.
// Like the other bench_* probes this has no Google-Benchmark dependency;
// it is run by bench/run_benches.sh, emitting BENCH_study_graph.json.
//
//   bench_study_graph [output.json]
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/actuary.h"
#include "explore/study.h"
#include "explore/study_graph.h"
#include "explore/study_json.h"
#include "util/thread_pool.h"
#include "wafer/die_cost_cache.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The overlapping-batch shape the compiler targets — one frame built
/// from several merged client requests: the full RE grid asked for
/// repeatedly (byte-identical specs, served as copies of one
/// evaluation) plus a coarser sweep whose every cell is a subset of the
/// full grid (cell-level sharing, zero new evaluations).
std::vector<chiplet::explore::StudySpec> build_batch() {
    using namespace chiplet::explore;
    ReSweepConfig full;
    full.nodes = {"14nm", "7nm", "5nm"};
    full.chiplet_counts = {2, 3, 4, 5, 6};
    full.areas_mm2.clear();
    for (double area = 60.0; area <= 900.0; area += 20.0) {
        full.areas_mm2.push_back(area);
    }
    ReSweepConfig coarse = full;  // every second area: all cells shared
    coarse.areas_mm2.clear();
    for (double area = 60.0; area <= 900.0; area += 40.0) {
        coarse.areas_mm2.push_back(area);
    }

    std::vector<StudySpec> specs;
    StudySpec grid;
    grid.name = "grid_full";
    grid.config = full;
    for (int i = 0; i < 5; ++i) specs.push_back(grid);
    StudySpec subset;
    subset.name = "grid_coarse";
    subset.config = coarse;
    for (int i = 0; i < 3; ++i) specs.push_back(subset);
    return specs;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace chiplet;
    using util::ThreadPool;

    const std::string out_path =
        argc > 1 ? argv[1] : std::string("BENCH_study_graph.json");
    const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
    unsigned threads = hardware;
    if (const char* env = std::getenv("CHIPLET_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0) threads = static_cast<unsigned>(parsed);
    }
    const int repeats = 3;

    const core::ChipletActuary actuary;
    const std::vector<explore::StudySpec> specs = build_batch();
    const explore::StudyPlan plan = explore::plan_studies(actuary, specs);

    // Time raw evaluation throughput: the die-cost cache would hide the
    // repeated work the independent path performs.
    wafer::DieCostCache::global().set_enabled(false);
    ThreadPool::set_global_threads(threads);

    // Sum of parts: each study priced in isolation, as before the
    // compiler existed (and as a client issuing one request per study
    // still experiences it).
    std::vector<explore::StudyResult> independent;
    double independent_s = 1e300;
    for (int r = 0; r < repeats; ++r) {
        independent.clear();
        const auto start = Clock::now();
        for (const explore::StudySpec& spec : specs) {
            independent.push_back(explore::run_study(actuary, spec));
        }
        independent_s = std::min(independent_s, seconds_since(start));
    }

    // The compiled batch: unique cells evaluated once, shared everywhere.
    std::vector<explore::StudyResult> batch =
        explore::run_studies(actuary, specs);
    double batch_s = 1e300;
    for (int r = 0; r < repeats; ++r) {
        const auto start = Clock::now();
        batch = explore::run_studies(actuary, specs);
        batch_s = std::min(batch_s, seconds_since(start));
    }
    wafer::DieCostCache::global().set_enabled(true);

    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    exact.ignore_keys = {"meta"};
    const std::string diff =
        json_diff(explore::results_to_json(batch),
                  explore::results_to_json(independent), exact);
    const bool identical = diff.empty();
    const double speedup = batch_s > 0.0 ? independent_s / batch_s : 0.0;

    std::ofstream json(out_path);
    if (!json) {
        std::cerr << "error: cannot open '" << out_path << "' for writing\n";
        return 2;
    }
    json << "{\n"
         << "  \"bench\": \"study_graph\",\n"
         << "  \"hardware_concurrency\": " << hardware << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"repeats\": " << repeats << ",\n"
         << "  \"studies\": " << specs.size() << ",\n"
         << "  \"spec_dedups\": " << plan.stats.spec_dedups << ",\n"
         << "  \"cell_refs\": " << plan.stats.cell_refs << ",\n"
         << "  \"unique_cells\": " << plan.stats.unique_cells << ",\n"
         << "  \"deduped_cells\": " << plan.stats.deduped_cells << ",\n"
         << "  \"dedup_ratio\": " << plan.stats.dedup_ratio() << ",\n"
         << "  \"independent_wall_s\": " << independent_s << ",\n"
         << "  \"batch_wall_s\": " << batch_s << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
         << "}\n";
    json.close();
    if (!json) {
        std::cerr << "error: failed writing '" << out_path << "'\n";
        return 2;
    }

    std::cout << "study graph: " << specs.size() << " studies, "
              << plan.stats.cell_refs << " cell refs -> "
              << plan.stats.unique_cells << " unique, independent "
              << independent_s << " s, batch " << batch_s << " s, speedup "
              << speedup
              << (identical ? "" : "  [RESULTS DIVERGE: " + diff + "]") << "\n"
              << "wrote " << out_path << "\n";
    return identical ? 0 : 1;
}
