// Paper Fig. 9: the OCME reuse scheme — one reused center die C plus
// same-footprint extensions X/Y in a 4-socket 160 mm^2 package, built
// as SoC, plain MCM, package-reused MCM, and package-reused MCM with a
// heterogeneous 14 nm center.  500k units per system; costs normalised
// to the RE cost of the largest MCM system.
#include "bench_common.h"
#include "core/actuary.h"
#include "report/chart.h"
#include "report/table.h"
#include "reuse/ocme.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("Fig. 9 — OCME: one center, multiple extensions");
    const core::ChipletActuary actuary;

    reuse::OcmeConfig plain;  // paper defaults
    reuse::OcmeConfig pkg_reused = plain;
    pkg_reused.reuse_package = true;
    reuse::OcmeConfig hetero = pkg_reused;
    hetero.center_node = "14nm";
    hetero.center_unscalable = true;

    const auto soc = actuary.evaluate(reuse::make_ocme_soc_family(plain));
    const auto mcm = actuary.evaluate(reuse::make_ocme_family(plain));
    const auto mcm_pkg = actuary.evaluate(reuse::make_ocme_family(pkg_reused));
    const auto mcm_het = actuary.evaluate(reuse::make_ocme_family(hetero));

    const double norm = mcm.systems.back().re.total();  // largest MCM RE

    report::TextTable table;
    table.add_column("system");
    table.add_column("SoC", report::Align::right);
    table.add_column("MCM", report::Align::right);
    table.add_column("MCM+pkg reuse", report::Align::right);
    table.add_column("+heter. center", report::Align::right);
    for (std::size_t i = 0; i < mcm.systems.size(); ++i) {
        table.add_row({mcm.systems[i].system_name,
                       format_fixed(soc.systems[i].total_per_unit() / norm, 2),
                       format_fixed(mcm.systems[i].total_per_unit() / norm, 2),
                       format_fixed(mcm_pkg.systems[i].total_per_unit() / norm, 2),
                       format_fixed(mcm_het.systems[i].total_per_unit() / norm, 2)});
    }
    std::cout << table.render() << "\n";

    report::StackedBarChart chart(48);
    chart.set_segments({"RE", "NRE chips+modules", "NRE packages+D2D"});
    for (const auto& family : {&mcm, &mcm_het}) {
        for (const auto& s : family->systems) {
            const std::string tag = family == &mcm ? " (7nm C)" : " (14nm C)";
            chart.add_bar(pad_right(s.system_name, 8) + tag,
                          {s.re.total() / norm,
                           (s.nre.chips + s.nre.modules) / norm,
                           (s.nre.packages + s.nre.d2d) / norm});
        }
    }
    std::cout << chart.render() << "\n";

    const double hetero_gain =
        1.0 - mcm_het.grand_total() / mcm_pkg.grand_total();
    const double c_only_gain =
        1.0 - mcm_het.systems[0].total_per_unit() /
                  mcm_pkg.systems[0].total_per_unit();
    bench::print_claim(
        "OCME reuse saves less than SCMS (<50% NRE saving); heterogeneous "
        "integration cuts totals by >10% more, almost half for the "
        "single-C system",
        "heterogeneous family saving " + format_pct(hetero_gain) +
            ", single-C saving " + format_pct(c_only_gain));
}

void BM_OcmeFamilyEvaluation(benchmark::State& state) {
    const core::ChipletActuary actuary;
    const auto family = reuse::make_ocme_family(reuse::OcmeConfig{});
    for (auto _ : state) {
        benchmark::DoNotOptimize(actuary.evaluate(family));
    }
}
BENCHMARK(BM_OcmeFamilyEvaluation);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
