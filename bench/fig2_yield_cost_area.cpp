// Paper Fig. 2: yield-area and cost-area relation under different
// technologies (3/5/7/14 nm logic, RDL, silicon interposer) with the
// negative-binomial model (Eq. 1).  Costs are normalised to the cost per
// area of the raw wafer, exactly as in the paper.
#include <utility>
#include <vector>

#include "bench_common.h"
#include "report/chart.h"
#include "report/table.h"
#include "tech/tech_library.h"
#include "util/strings.h"
#include "wafer/die_cost.h"
#include "yield/models.h"

namespace {

using namespace chiplet;

struct Technology {
    const char* label;
    const char* node;
};

constexpr Technology kTechnologies[] = {
    {"3nm  (D=0.20 c=10)", "3nm"},   {"5nm  (D=0.11 c=10)", "5nm"},
    {"7nm  (D=0.09 c=10)", "7nm"},   {"14nm (D=0.08 c=10)", "14nm"},
    {"RDL  (D=0.05 c=3)", "rdl"},    {"SI   (D=0.06 c=6)", "si_interposer"},
};

wafer::DieCostModel model_for(const tech::TechLibrary& lib, const char* node) {
    const tech::ProcessNode& n = lib.node(node);
    return wafer::DieCostModel(
        n.wafer_spec(), n.defect_density_cm2,
        std::make_unique<yield::SeedsNegativeBinomial>(n.cluster_param));
}

void print_figure() {
    bench::print_header("Fig. 2 — yield / normalised cost-per-area vs die area");
    const tech::TechLibrary lib = tech::TechLibrary::builtin();

    report::TextTable table;
    table.add_column("technology");
    for (double area : {100.0, 200.0, 400.0, 600.0, 800.0}) {
        table.add_column("Y@" + format_fixed(area, 0), report::Align::right);
    }
    table.add_column("cost/area@800", report::Align::right);

    report::LineChart yield_chart(72, 18);
    report::LineChart cost_chart(72, 18);
    CsvWriter csv;
    csv.set_header({"technology", "area_mm2", "yield", "normalized_cost_per_area"});
    for (const Technology& tech : kTechnologies) {
        const wafer::DieCostModel model = model_for(lib, tech.node);
        std::vector<std::string> row{tech.label};
        for (double area : {100.0, 200.0, 400.0, 600.0, 800.0}) {
            row.push_back(format_pct(model.die_yield(area), 1));
        }
        row.push_back(
            format_fixed(model.evaluate(800.0).normalized_cost_per_area, 2));
        table.add_row(std::move(row));

        std::vector<std::pair<double, double>> yield_points;
        std::vector<std::pair<double, double>> cost_points;
        for (double area = 50.0; area <= 900.0; area += 25.0) {
            yield_points.emplace_back(area, model.die_yield(area) * 100.0);
            cost_points.emplace_back(
                area, model.evaluate(area).normalized_cost_per_area);
            csv.add_row({tech.node, format_fixed(area, 0),
                         format_fixed(model.die_yield(area), 6),
                         format_fixed(
                             model.evaluate(area).normalized_cost_per_area, 6)});
        }
        yield_chart.add_series(tech.label, std::move(yield_points));
        cost_chart.add_series(tech.label, std::move(cost_points));
    }
    bench::maybe_export_csv(csv, "fig2_yield_cost_area.csv");

    std::cout << table.render() << "\n";
    std::cout << "Yield (%) vs area (mm^2):\n" << yield_chart.render() << "\n";
    std::cout << "Normalised cost/area vs area (mm^2):\n"
              << cost_chart.render() << "\n";

    bench::print_claim(
        "yield falls with area, faster for advanced nodes; normalised "
        "cost/area rises to ~4-8x at 800-900 mm^2 for 3nm",
        "curves above reproduce the ordering; 3nm reaches " +
            format_fixed(
                model_for(lib, "3nm").evaluate(900.0).normalized_cost_per_area,
                1) +
            "x at 900 mm^2");
}

void BM_DieCostEvaluate(benchmark::State& state) {
    const tech::TechLibrary lib = tech::TechLibrary::builtin();
    const wafer::DieCostModel model = model_for(lib, "5nm");
    double area = 100.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.evaluate(area));
        area = area >= 900.0 ? 100.0 : area + 1.0;
    }
}
BENCHMARK(BM_DieCostEvaluate);

void BM_YieldQuery(benchmark::State& state) {
    const yield::SeedsNegativeBinomial model(10.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.yield(0.11, 800.0));
    }
}
BENCHMARK(BM_YieldQuery);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
