// Ablation: chip-first vs chip-last packaging flows (paper Eq. 5).  The
// paper asserts chip-last is the priority selection for multi-chip
// systems because chip-first scraps known good dies whenever the RDL /
// interposer fails; this bench quantifies that premium.
#include "bench_common.h"
#include "core/actuary.h"
#include "core/scenarios.h"
#include "report/table.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("ablation — chip-first vs chip-last (Eq. 5)");

    core::ChipletActuary chip_last;
    core::ChipletActuary chip_first;
    chip_first.assumptions().flow = tech::PackagingFlow::chip_first;

    report::TextTable table;
    table.add_column("packaging");
    table.add_column("chiplets", report::Align::right);
    table.add_column("area", report::Align::right);
    table.add_column("chip-last RE", report::Align::right);
    table.add_column("chip-first RE", report::Align::right);
    table.add_column("premium", report::Align::right);
    table.add_column("KGD waste ratio", report::Align::right);

    for (const std::string packaging : {"MCM", "InFO", "2.5D"}) {
        for (unsigned k : {2u, 4u}) {
            for (double area : {400.0, 800.0}) {
                const auto system = core::split_system("s", "7nm", packaging,
                                                       area, k, 0.10, 1e6);
                const auto last = chip_last.evaluate_re_only(system);
                const auto first = chip_first.evaluate_re_only(system);
                table.add_row(
                    {packaging, std::to_string(k), format_fixed(area, 0),
                     format_money(last.re.total()),
                     format_money(first.re.total()),
                     format_pct(first.re.total() / last.re.total() - 1.0),
                     format_fixed(first.re.wasted_kgd /
                                      std::max(last.re.wasted_kgd, 1e-12),
                                  2)});
            }
        }
    }
    std::cout << table.render() << "\n";

    bench::print_claim(
        "though chip-first packaging flow is simpler, the poor yield of "
        "packaging would result in a huge waste on KGDs; chip-last is the "
        "priority for multi-chip systems",
        "chip-first carries a cost premium on every interposer scheme and "
        "multiplies KGD waste (identical for MCM, where no interposer "
        "manufacturing yield exists)");
}

void BM_ChipFirstEvaluation(benchmark::State& state) {
    core::ChipletActuary actuary;
    actuary.assumptions().flow = tech::PackagingFlow::chip_first;
    const auto system = core::split_system("s", "7nm", "InFO", 800.0, 4, 0.10, 1e6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(actuary.evaluate_re_only(system));
    }
}
BENCHMARK(BM_ChipFirstEvaluation);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
