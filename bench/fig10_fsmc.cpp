// Paper Fig. 10: the FSMC reuse scheme — k-socket packages populated by
// all multisets of n chiplet types, (k, n) in {(2,2), (2,4), (3,4),
// (4,4), (4,6)}, 500k units per system, SoC vs MCM vs 2.5D by average
// normalised total cost.  Also reports the enumeration count, including
// the paper's 119-vs-209 discrepancy for (k=4, n=6).
#include "bench_common.h"
#include "core/actuary.h"
#include "report/table.h"
#include "reuse/fsmc.h"
#include "util/math.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("Fig. 10 — FSMC: a few sockets, multiple collocations");
    const core::ChipletActuary actuary;

    struct KnConfig {
        unsigned k;
        unsigned n;
    };
    const std::vector<KnConfig> configs = {{2, 2}, {2, 4}, {3, 4}, {4, 4}, {4, 6}};

    report::TextTable table;
    table.add_column("config");
    table.add_column("#systems", report::Align::right);
    table.add_column("SoC avg", report::Align::right);
    table.add_column("MCM avg", report::Align::right);
    table.add_column("2.5D avg", report::Align::right);
    table.add_column("MCM NRE share", report::Align::right);

    double norm = 0.0;
    for (const KnConfig& kn : configs) {
        reuse::FsmcConfig config;
        config.sockets = kn.k;
        config.chiplet_types = kn.n;

        const auto soc = actuary.evaluate(reuse::make_fsmc_soc_family(config));
        config.packaging = "MCM";
        const auto mcm = actuary.evaluate(reuse::make_fsmc_family(config));
        config.packaging = "2.5D";
        const auto d25 = actuary.evaluate(reuse::make_fsmc_family(config));

        if (norm == 0.0) norm = soc.average_unit_cost();  // first config SoC

        double nre = 0.0;
        double total = 0.0;
        for (const auto& s : mcm.systems) {
            nre += s.nre.total() * s.quantity;
            total += s.total_per_unit() * s.quantity;
        }
        table.add_row(
            {"k=" + std::to_string(kn.k) + " n=" + std::to_string(kn.n),
             std::to_string(mcm.systems.size()),
             format_fixed(soc.average_unit_cost() / norm, 2),
             format_fixed(mcm.average_unit_cost() / norm, 2),
             format_fixed(d25.average_unit_cost() / norm, 2),
             format_pct(nre / total)});
    }
    std::cout << table.render() << "\n";

    bench::print_claim(
        "the more chiplets are reused, the more benefits from NRE "
        "amortization; with full reuse the amortized NRE is negligible",
        "MCM NRE share falls monotonically down the table");
    bench::print_claim(
        "six chiplets and one 4-socket package build up to 119 systems",
        "sum_{i=1..4} C(6+i-1, i) = " +
            std::to_string(fsmc_system_count(6, 4)) +
            " by the paper's own formula (and exact enumeration); the "
            "119 in the text appears to be a typo — see EXPERIMENTS.md");
}

void BM_FsmcEnumeration(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(reuse::enumerate_collocations(6, 4));
    }
}
BENCHMARK(BM_FsmcEnumeration);

void BM_FsmcLargestFamily(benchmark::State& state) {
    const core::ChipletActuary actuary;
    reuse::FsmcConfig config;
    config.sockets = 4;
    config.chiplet_types = 6;
    const auto family = reuse::make_fsmc_family(config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(actuary.evaluate(family));
    }
}
BENCHMARK(BM_FsmcLargestFamily)->Unit(benchmark::kMillisecond);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
