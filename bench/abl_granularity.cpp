// Ablation: chiplet granularity (paper Sec. 4.1 / Sec. 6 takeaway —
// "splitting a single system into two or three chiplets is usually
// sufficient").  Sweeps k = 1..8 and reports the marginal RE saving of
// each additional split, plus the NRE-laden total at a finite quantity.
#include "bench_common.h"
#include "core/actuary.h"
#include "core/scenarios.h"
#include "report/table.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("ablation — chiplet count (granularity)");
    const core::ChipletActuary actuary;

    for (const std::string node : {"7nm", "5nm"}) {
        std::cout << "--- " << node << ", 800 mm^2, MCM, 2M units ---\n";
        report::TextTable table;
        table.add_column("k", report::Align::right);
        table.add_column("die yield", report::Align::right);
        table.add_column("RE/unit", report::Align::right);
        table.add_column("marginal RE saving", report::Align::right);
        table.add_column("total/unit @2M", report::Align::right);

        double previous_re = 0.0;
        double best_total = 1e300;
        unsigned best_k = 0;
        for (unsigned k = 1; k <= 8; ++k) {
            const auto system =
                k == 1 ? core::monolithic_soc("soc", node, 800.0, 2e6)
                       : core::split_system("mcm", node, "MCM", 800.0, k, 0.10,
                                            2e6);
            const auto cost = actuary.evaluate(system);
            const double re = cost.re.total();
            const double total = cost.total_per_unit();
            table.add_row({std::to_string(k),
                           format_pct(cost.dies.front().yield),
                           format_money(re),
                           k == 1 ? "-" : format_money(previous_re - re),
                           format_money(total)});
            if (total < best_total) {
                best_total = total;
                best_k = k;
            }
            previous_re = re;
        }
        std::cout << table.render();
        std::cout << "cheapest total at k = " << best_k << "\n\n";
    }

    bench::print_claim(
        "RE benefits of smaller granularity have marginal utility; two or "
        "three chiplets are usually sufficient once NRE is counted",
        "marginal RE savings shrink monotonically with k and the "
        "total-cost optimum sits at small k (see tables)");
}

void BM_EightWaySplit(benchmark::State& state) {
    const core::ChipletActuary actuary;
    const auto system = core::split_system("s", "5nm", "MCM", 800.0, 8, 0.10, 2e6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(actuary.evaluate(system));
    }
}
BENCHMARK(BM_EightWaySplit);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
