// Paper Fig. 1: the multi-chip integration technology landscape —
// organic substrate (MCM) vs integrated fan-out (InFO) vs silicon
// interposer (2.5D), ordered by cost & complexity against interconnect
// capability.  Regenerated from the built-in catalogue descriptors plus
// a measured packaging-cost index on a reference workload.
#include "bench_common.h"
#include "core/actuary.h"
#include "core/scenarios.h"
#include "report/table.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("Fig. 1 — integration technology landscape");

    const core::ChipletActuary actuary;
    // Packaging-cost index: packaging share of a 600 mm^2 7nm 2-chiplet
    // system, normalised to MCM.
    const auto packaging_cost = [&](const std::string& packaging) {
        const auto system =
            core::split_system("ref", "7nm", packaging, 600.0, 2, 0.10, 1e6);
        return actuary.evaluate_re_only(system).re.packaging_total();
    };
    const double mcm_cost = packaging_cost("MCM");

    report::TextTable table;
    table.add_column("technology");
    table.add_column("data rate (Gbps)", report::Align::right);
    table.add_column("line space (um)", report::Align::right);
    table.add_column("pin count", report::Align::right);
    table.add_column("packaging cost idx", report::Align::right);
    for (const std::string name : {"MCM", "InFO", "2.5D"}) {
        const tech::PackagingTech& t = actuary.library().packaging(name);
        table.add_row({name, format_fixed(t.max_data_rate_gbps, 1),
                       format_fixed(t.min_line_space_um, 1),
                       format_fixed(t.max_pin_count, 0),
                       format_fixed(packaging_cost(name) / mcm_cost, 2)});
    }
    std::cout << table.render() << "\n";
    bench::print_claim(
        "cost & complexity grow MCM -> InFO -> 2.5D while line space "
        "shrinks and pin count grows",
        "packaging cost index is monotone increasing down the table and "
        "line space / pin count follow Fig. 1's values");
}

void BM_TechLibraryBuild(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(tech::TechLibrary::builtin());
    }
}
BENCHMARK(BM_TechLibraryBuild);

void BM_PackagingLookup(benchmark::State& state) {
    const auto lib = tech::TechLibrary::builtin();
    for (auto _ : state) {
        benchmark::DoNotOptimize(&lib.packaging("2.5D"));
    }
}
BENCHMARK(BM_PackagingLookup);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
