// Ablation: design-space Pareto study.  Per-unit total cost is not the
// only objective — every distinct chip design needs a team and a mask
// set.  This bench maps the full (packaging x chiplet count) space and
// extracts the cost-vs-design-count Pareto front for the paper's
// headline workload.
#include "bench_common.h"
#include "core/actuary.h"
#include "core/scenarios.h"
#include "explore/pareto.h"
#include "report/table.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

struct Candidate {
    std::string packaging;
    unsigned chiplets = 1;
    double total = 0.0;
    unsigned designs = 1;  // distinct chip designs to staff
};

void print_figure() {
    bench::print_header("ablation — cost vs design-count Pareto front");
    const core::ChipletActuary actuary;
    constexpr double kArea = 800.0;
    constexpr double kQuantity = 2e6;

    std::vector<Candidate> candidates;
    candidates.push_back(
        {"SoC", 1,
         actuary.evaluate(core::monolithic_soc("s", "5nm", kArea, kQuantity))
             .total_per_unit(),
         1});
    for (const std::string pkg : {"MCM", "InFO", "2.5D", "3D"}) {
        for (unsigned k = 2; k <= 6; ++k) {
            const double d2d = pkg == "3D" ? 0.03 : 0.10;
            candidates.push_back(
                {pkg, k,
                 actuary
                     .evaluate(core::split_system("s", "5nm", pkg, kArea, k,
                                                  d2d, kQuantity))
                     .total_per_unit(),
                 k});  // homogeneous split: every slice is a distinct design
        }
    }

    std::vector<explore::ParetoPoint> points;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        points.push_back({static_cast<double>(candidates[i].designs),
                          candidates[i].total, i});
    }
    const auto front = explore::pareto_front(points);

    report::TextTable table;
    table.add_column("packaging");
    table.add_column("chiplets", report::Align::right);
    table.add_column("chip designs", report::Align::right);
    table.add_column("total/unit", report::Align::right);
    table.add_column("Pareto");
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const bool on_front = std::any_of(
            front.begin(), front.end(),
            [&](const explore::ParetoPoint& p) { return p.index == i; });
        table.add_row({candidates[i].packaging,
                       std::to_string(candidates[i].chiplets),
                       std::to_string(candidates[i].designs),
                       format_money(candidates[i].total),
                       on_front ? "*" : ""});
    }
    std::cout << "800 mm^2 at 5nm, 2M units (NRE included):\n"
              << table.render() << "\n";

    bench::print_claim(
        "splitting a single system into two or three chiplets is usually "
        "sufficient (Sec. 6) — beyond that, extra designs buy little",
        std::to_string(front.size()) +
            " points on the cost-vs-designs front; the marginal saving "
            "per added design collapses after k=3");
}

void BM_ParetoExtraction(benchmark::State& state) {
    std::vector<explore::ParetoPoint> points;
    for (std::size_t i = 0; i < 200; ++i) {
        points.push_back({static_cast<double>(i % 17),
                          static_cast<double>((i * 7919) % 101), i});
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(explore::pareto_front(points));
    }
}
BENCHMARK(BM_ParetoExtraction);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
