// Ablation: 3D stacking vs planar integration.  The paper's conclusion
// notes Moore's Law is not fundamentally extended by 2D/2.5D packaging;
// vertical stacking is the next step, trading a much smaller footprint
// and near-free D2D against TSV cost and per-interface stack-bond loss.
#include "bench_common.h"
#include "core/actuary.h"
#include "core/scenarios.h"
#include "report/table.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("ablation — 3D stacking vs planar integration");
    const core::ChipletActuary actuary;

    for (const std::string node : {"7nm", "5nm"}) {
        std::cout << "--- " << node << ", 800 mm^2 module area, RE only ---\n";
        report::TextTable table;
        table.add_column("scheme");
        table.add_column("k", report::Align::right);
        table.add_column("substrate area", report::Align::right);
        table.add_column("RE/unit", report::Align::right);
        table.add_column("packaging share", report::Align::right);
        table.add_column("KGD waste", report::Align::right);

        const auto add = [&](const std::string& packaging, unsigned k,
                             double d2d) {
            const auto system =
                k == 1 ? core::monolithic_soc("soc", node, 800.0, 1e6)
                       : core::split_system("s", node, packaging, 800.0, k, d2d,
                                            1e6);
            const auto cost = actuary.evaluate_re_only(system);
            table.add_row(
                {packaging, std::to_string(k),
                 format_fixed(cost.package_design_area_mm2, 0) + " mm2",
                 format_money(cost.re.total()),
                 format_pct(cost.re.packaging_total() / cost.re.total()),
                 format_money(cost.re.wasted_kgd)});
        };
        add("SoC", 1, 0.0);
        add("MCM", 2, 0.10);
        add("MCM", 4, 0.10);
        add("3D", 2, 0.03);   // TSV D2D needs far less area
        add("3D", 4, 0.03);
        add("3D", 8, 0.03);
        std::cout << table.render() << "\n";
    }

    bench::print_claim(
        "(extension beyond the paper) vertical stacking should cut the "
        "substrate/footprint cost and D2D overhead but pay in stack-bond "
        "yield as the stack deepens",
        "3D substrate area is a fraction of MCM's; 2-high stacks compete "
        "with 2-chip MCM, while 8-high stacks drown in KGD waste");
}

void BM_StackEvaluation(benchmark::State& state) {
    const core::ChipletActuary actuary;
    const auto system = core::split_system("s", "5nm", "3D", 800.0,
                                           static_cast<unsigned>(state.range(0)),
                                           0.03, 1e6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(actuary.evaluate_re_only(system));
    }
}
BENCHMARK(BM_StackEvaluation)->Arg(2)->Arg(8);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
