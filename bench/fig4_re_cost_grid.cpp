// Paper Fig. 4: normalised RE cost comparison among SoC/MCM/InFO/2.5D
// across {14, 7, 5} nm, {2, 3, 5} chiplets and 100-900 mm^2 total module
// area, with the five-way RE breakdown and all costs normalised to the
// 100 mm^2 SoC of the same node.  10% D2D overhead, no reuse, chip-last.
#include <map>

#include "bench_common.h"
#include "core/actuary.h"
#include "core/scenarios.h"
#include "explore/sweep.h"
#include "report/chart.h"
#include "report/table.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("Fig. 4 — normalised RE cost grid");
    const core::ChipletActuary actuary;
    const explore::ReSweepConfig config;  // defaults are the paper's axes
    const auto points = explore::sweep_re_grid(actuary, config);

    // Index for direct lookup.
    std::map<std::tuple<std::string, std::string, unsigned, double>,
             const explore::ReSweepPoint*>
        index;
    for (const auto& p : points) {
        index[{p.node, p.packaging, p.chiplets, p.area_mm2}] = &p;
    }
    const auto at = [&](const std::string& node, const std::string& pkg,
                        unsigned k, double area) {
        return index.at({node, pkg, k, area});
    };

    for (const std::string& node : config.nodes) {
        for (unsigned k : config.chiplet_counts) {
            std::cout << "--- " << node << ", " << k << " chiplets ---\n";
            report::TextTable table;
            table.add_column("area", report::Align::right);
            for (const auto& pkg : config.packagings) {
                table.add_column(pkg, report::Align::right);
            }
            table.add_column("best", report::Align::left);
            for (double area : config.areas_mm2) {
                std::vector<std::string> row{format_fixed(area, 0)};
                double best_value = 1e300;
                std::string best_name;
                for (const auto& pkg : config.packagings) {
                    const unsigned count = pkg == "SoC" ? 1 : k;
                    const double value = at(node, pkg, count, area)->normalized;
                    row.push_back(format_fixed(value, 2));
                    if (value < best_value) {
                        best_value = value;
                        best_name = pkg;
                    }
                }
                row.push_back(best_name);
                table.add_row(std::move(row));
            }
            std::cout << table.render() << "\n";
        }

        // Breakdown chart at the 800 mm^2 anchor, 2 chiplets.
        report::StackedBarChart chart(56);
        chart.set_segments({"raw chips", "chip defects", "raw package",
                            "package defects", "wasted KGD"});
        for (const auto& pkg : config.packagings) {
            const unsigned count = pkg == "SoC" ? 1u : 2u;
            const auto* p = at(node, pkg, count, 800.0);
            const double base = p->re.total() / p->normalized;  // per-node norm
            chart.add_bar(pad_right(pkg, 4) + " 800mm2",
                          {p->re.raw_chips / base, p->re.chip_defects / base,
                           p->re.raw_package / base, p->re.package_defects / base,
                           p->re.wasted_kgd / base});
        }
        std::cout << "breakdown at 800 mm^2, 2 chiplets (" << node << "):\n"
                  << chart.render() << "\n";
    }

    CsvWriter csv;
    csv.set_header({"node", "packaging", "chiplets", "area_mm2", "raw_chips",
                    "chip_defects", "raw_package", "package_defects",
                    "wasted_kgd", "normalized_total"});
    for (const auto& p : points) {
        csv.add_row({p.node, p.packaging, std::to_string(p.chiplets),
                     format_fixed(p.area_mm2, 0),
                     format_fixed(p.re.raw_chips, 4),
                     format_fixed(p.re.chip_defects, 4),
                     format_fixed(p.re.raw_package, 4),
                     format_fixed(p.re.package_defects, 4),
                     format_fixed(p.re.wasted_kgd, 4),
                     format_fixed(p.normalized, 6)});
    }
    bench::maybe_export_csv(csv, "fig4_re_cost_grid.csv");

    const double soc5 = at("5nm", "SoC", 1, 800.0)->re.total();
    const double defects5 = at("5nm", "SoC", 1, 800.0)->re.chip_defects;
    bench::print_claim(
        "die defects account for >50% of the monolithic 5nm SoC cost at "
        "800 mm^2; advanced packaging only pays at advanced nodes",
        "defect share measured " + format_pct(defects5 / soc5) +
            "; see per-node winner columns above");
}

void BM_SweepCell(benchmark::State& state) {
    const core::ChipletActuary actuary;
    for (auto _ : state) {
        benchmark::DoNotOptimize(actuary.evaluate_re_only(
            core::split_system("s", "5nm", "MCM", 800.0, 3, 0.10, 1e6)));
    }
}
BENCHMARK(BM_SweepCell);

void BM_FullGrid(benchmark::State& state) {
    const core::ChipletActuary actuary;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            explore::sweep_re_grid(actuary, explore::ReSweepConfig{}));
    }
}
BENCHMARK(BM_FullGrid)->Unit(benchmark::kMillisecond);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
