// Paper Fig. 6: total (RE + amortised NRE) cost structure of a single
// 800 mm^2 system built as SoC / 2-chiplet MCM / InFO / 2.5D at 14 nm
// and 5 nm, across production quantities 500k / 2M / 10M.  All costs
// normalised to the RE cost of the SoC at the same node.
#include "bench_common.h"
#include "core/actuary.h"
#include "core/scenarios.h"
#include "explore/sweep.h"
#include "report/chart.h"
#include "report/table.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("Fig. 6 — total cost structure of a single system");
    const core::ChipletActuary actuary;
    const std::vector<std::string> packagings = {"SoC", "MCM", "InFO", "2.5D"};
    const std::vector<double> quantities = {5e5, 2e6, 1e7};

    for (const std::string node : {"14nm", "5nm"}) {
        const double soc_re =
            actuary.evaluate_re_only(core::monolithic_soc("n", node, 800.0, 1e6))
                .re.total();
        std::cout << "--- " << node
                  << ", 800 mm^2 module area, 2 chiplets, normalised to SoC RE ("
                  << format_money(soc_re) << ") ---\n";

        const auto points = explore::sweep_total_vs_quantity(
            actuary, node, 800.0, 2, 0.10, packagings, quantities);

        report::TextTable table;
        table.add_column("quantity", report::Align::right);
        table.add_column("scheme");
        table.add_column("RE", report::Align::right);
        table.add_column("NRE mod", report::Align::right);
        table.add_column("NRE chip", report::Align::right);
        table.add_column("NRE pkg", report::Align::right);
        table.add_column("NRE D2D", report::Align::right);
        table.add_column("total", report::Align::right);
        table.add_column("RE share", report::Align::right);

        report::StackedBarChart chart(48);
        chart.set_segments({"RE", "NRE modules", "NRE chips", "NRE pkg+D2D"});
        for (const auto& p : points) {
            const auto& c = p.cost;
            table.add_row({format_quantity(p.quantity), p.packaging,
                           format_fixed(c.re.total() / soc_re, 2),
                           format_fixed(c.nre.modules / soc_re, 2),
                           format_fixed(c.nre.chips / soc_re, 2),
                           format_fixed(c.nre.packages / soc_re, 2),
                           format_fixed(c.nre.d2d / soc_re, 2),
                           format_fixed(c.total_per_unit() / soc_re, 2),
                           format_pct(c.re_share())});
            chart.add_bar(
                format_quantity(p.quantity) + " " + pad_right(p.packaging, 4),
                {c.re.total() / soc_re, c.nre.modules / soc_re,
                 c.nre.chips / soc_re,
                 (c.nre.packages + c.nre.d2d) / soc_re});
        }
        std::cout << table.render() << "\n" << chart.render() << "\n";
    }

    bench::print_claim(
        "packaging and D2D NRE stay minor (<= ~2% and ~9%); the extra chip "
        "NRE (masks per chiplet) makes multi-chip lose at 500k; at 5nm the "
        "2-chiplet MCM starts to pay back around 2M units",
        "see RE-share column: the MCM line crosses the SoC line between "
        "500k and 2M in this calibration (tab_breakeven_quantity prints "
        "the exact crossover)");
}

void BM_Figure6Sweep(benchmark::State& state) {
    const core::ChipletActuary actuary;
    for (auto _ : state) {
        benchmark::DoNotOptimize(explore::sweep_total_vs_quantity(
            actuary, "5nm", 800.0, 2, 0.10, {"SoC", "MCM", "InFO", "2.5D"},
            {5e5, 2e6, 1e7}));
    }
}
BENCHMARK(BM_Figure6Sweep)->Unit(benchmark::kMillisecond);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
