// Design-space explorer throughput probe: a few-hundred-thousand-candidate
// heterogeneous space (per-chiplet node assignment over three nodes, four
// packagings, up to ten chiplets) is enumerated, pruned and evaluated three
// ways — the scalar per-candidate reference path, the SoA kernel path forced
// to each CPU level the host supports, and the kernel path parallel — with
// every ranking checked bit-identical against the reference before any
// timing is reported.  Like the other bench_* probes this has no
// Google-Benchmark dependency; bench/run_benches.sh runs it and collects
// BENCH_design_space.json.
//
//   bench_design_space [output.json]
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/actuary.h"
#include "explore/design_space.h"
#include "explore/study_json.h"
#include "kernels/isa.h"
#include "util/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A deliberately oversized workload: 2,000 mm^2 of 5 nm-equivalent
/// logic.  Coarse-node assignments inflate slice areas past the reticle
/// field, so a healthy share of the space is pruned before evaluation —
/// the realistic shape of heterogeneous exploration.
chiplet::explore::DesignSpaceConfig build_space() {
    chiplet::explore::DesignSpaceConfig config;
    config.module_area_mm2 = 2000.0;
    config.reference_node = "5nm";
    config.nodes = {"5nm", "7nm", "14nm"};
    config.chiplet_counts = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    config.packagings = {"SoC", "MCM", "InFO", "2.5D"};
    config.quantities = {2e6};
    config.d2d_fraction = 0.10;
    config.top_k = 16;
    return config;
}

/// The determinism contract measured at the surface: identical space
/// accounting and a bit-identical top-K ranking, whatever the path, ISA
/// or pool size.
bool identical_results(const chiplet::explore::DesignSpaceResult& a,
                       const chiplet::explore::DesignSpaceResult& b) {
    bool same = a.total_candidates == b.total_candidates &&
                a.pruned == b.pruned && a.evaluated == b.evaluated &&
                a.best.size() == b.best.size();
    for (std::size_t i = 0; same && i < a.best.size(); ++i) {
        same = a.best[i].index == b.best[i].index &&
               a.best[i].re_per_unit == b.best[i].re_per_unit &&
               a.best[i].nre_per_unit == b.best[i].nre_per_unit;
    }
    return same;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace chiplet;
    using util::ThreadPool;

    const std::string out_path =
        argc > 1 ? argv[1] : std::string("BENCH_design_space.json");
    const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
    unsigned threads = hardware;
    if (const char* env = std::getenv("CHIPLET_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0) threads = static_cast<unsigned>(parsed);
    }

    const core::ChipletActuary actuary;
    const explore::DesignSpaceConfig config = build_space();
    const std::uint64_t space = explore::design_space_size(actuary, config);

    // Scalar per-candidate reference: the pre-kernel evaluation path the
    // SoA lowering must reproduce bit-for-bit and outrun.
    ThreadPool::set_global_threads(1);
    auto start = Clock::now();
    const explore::DesignSpaceResult reference =
        explore::explore_design_space_reference(actuary, config);
    const double reference_s = seconds_since(start);
    const double reference_cps =
        reference_s > 0.0 ? static_cast<double>(space) / reference_s : 0.0;

    // Kernel path forced to each CPU level the host supports, serial.
    bool identical = true;
    struct IsaRun {
        kernels::Isa isa;
        double wall_s = 0.0;
        double cps = 0.0;
    };
    std::vector<IsaRun> isa_runs;
    for (kernels::Isa isa : kernels::supported_isas()) {
        kernels::force_isa(isa);
        start = Clock::now();
        const explore::DesignSpaceResult forced =
            explore::explore_design_space(actuary, config);
        IsaRun run;
        run.isa = isa;
        run.wall_s = seconds_since(start);
        run.cps = run.wall_s > 0.0 ? static_cast<double>(space) / run.wall_s
                                   : 0.0;
        isa_runs.push_back(run);
        if (!identical_results(reference, forced)) {
            identical = false;
            std::cerr << "error: kernel path at "
                      << kernels::to_string(isa)
                      << " diverges from the scalar reference\n";
        }
    }
    kernels::clear_forced_isa();
    const kernels::Isa active = kernels::active_isa();

    // Kernel path at the natively-dispatched level: serial, then parallel.
    ThreadPool::set_global_threads(1);
    start = Clock::now();
    const explore::DesignSpaceResult serial =
        explore::explore_design_space(actuary, config);
    const double serial_s = seconds_since(start);

    ThreadPool::set_global_threads(threads);
    start = Clock::now();
    const explore::DesignSpaceResult parallel =
        explore::explore_design_space(actuary, config);
    const double parallel_s = seconds_since(start);

    if (!identical_results(reference, serial) ||
        !identical_results(reference, parallel)) {
        identical = false;
        std::cerr << "error: natively-dispatched kernel path diverges from "
                     "the scalar reference\n";
    }

    const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
    const double serial_cps =
        serial_s > 0.0 ? static_cast<double>(space) / serial_s : 0.0;
    const double parallel_cps =
        parallel_s > 0.0 ? static_cast<double>(space) / parallel_s : 0.0;
    const double kernel_over_reference =
        reference_cps > 0.0 ? serial_cps / reference_cps : 0.0;

    std::ostringstream isa_json;
    for (const IsaRun& run : isa_runs) {
        isa_json << "  \"isa_" << kernels::to_string(run.isa)
                 << "_candidates_per_s\": " << run.cps << ",\n";
    }

    std::ofstream json(out_path);
    if (!json) {
        std::cerr << "error: cannot open '" << out_path << "' for writing\n";
        return 2;
    }
    json << "{\n"
         << "  \"bench\": \"design_space\",\n"
         << "  \"hardware_concurrency\": " << hardware << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"active_isa\": \"" << kernels::to_string(active) << "\",\n"
         << "  \"total_candidates\": " << space << ",\n"
         << "  \"pruned\": " << serial.pruned << ",\n"
         << "  \"pruned_fraction\": " << serial.pruned_fraction() << ",\n"
         << "  \"evaluated\": " << serial.evaluated << ",\n"
         << "  \"top_k\": " << serial.best.size() << ",\n"
         << "  \"reference_wall_s\": " << reference_s << ",\n"
         << "  \"reference_candidates_per_s\": " << reference_cps << ",\n"
         << isa_json.str()
         << "  \"serial_wall_s\": " << serial_s << ",\n"
         << "  \"parallel_wall_s\": " << parallel_s << ",\n"
         << "  \"serial_candidates_per_s\": " << serial_cps << ",\n"
         << "  \"parallel_candidates_per_s\": " << parallel_cps << ",\n"
         << "  \"kernel_over_reference\": " << kernel_over_reference << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
         << "}\n";
    json.close();
    if (!json) {
        std::cerr << "error: failed writing '" << out_path << "'\n";
        return 2;
    }

    std::cout << "design space: " << space << " candidates ("
              << serial.pruned << " pruned, "
              << serial.evaluated << " evaluated)\n"
              << "reference " << reference_s << " s (" << reference_cps
              << " cand/s)\n";
    for (const IsaRun& run : isa_runs) {
        std::cout << "kernel[" << kernels::to_string(run.isa) << "] "
                  << run.wall_s << " s (" << run.cps << " cand/s)\n";
    }
    std::cout << "kernel[" << kernels::to_string(active) << "] serial "
              << serial_s << " s, parallel(" << threads << ") " << parallel_s
              << " s, speedup " << speedup << ", kernel/reference "
              << kernel_over_reference
              << (identical ? "" : "  [RESULTS DIVERGE]") << "\n"
              << "wrote " << out_path << "\n";
    return identical ? 0 : 1;
}
