// Design-space explorer throughput probe: a few-hundred-thousand-candidate
// heterogeneous space (per-chiplet node assignment over three nodes, four
// packagings, up to ten chiplets) is enumerated, pruned and evaluated
// serial (1-thread pool) vs parallel, with the top-K rankings checked
// bit-identical before any timing is reported.  Like the other bench_*
// probes this has no Google-Benchmark dependency; bench/run_benches.sh
// runs it and collects BENCH_design_space.json.
//
//   bench_design_space [output.json]
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "core/actuary.h"
#include "explore/design_space.h"
#include "explore/study_json.h"
#include "util/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A deliberately oversized workload: 2,000 mm^2 of 5 nm-equivalent
/// logic.  Coarse-node assignments inflate slice areas past the reticle
/// field, so a healthy share of the space is pruned before evaluation —
/// the realistic shape of heterogeneous exploration.
chiplet::explore::DesignSpaceConfig build_space() {
    chiplet::explore::DesignSpaceConfig config;
    config.module_area_mm2 = 2000.0;
    config.reference_node = "5nm";
    config.nodes = {"5nm", "7nm", "14nm"};
    config.chiplet_counts = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    config.packagings = {"SoC", "MCM", "InFO", "2.5D"};
    config.quantities = {2e6};
    config.d2d_fraction = 0.10;
    config.top_k = 16;
    return config;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace chiplet;
    using util::ThreadPool;

    const std::string out_path =
        argc > 1 ? argv[1] : std::string("BENCH_design_space.json");
    const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
    unsigned threads = hardware;
    if (const char* env = std::getenv("CHIPLET_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0) threads = static_cast<unsigned>(parsed);
    }

    const core::ChipletActuary actuary;
    const explore::DesignSpaceConfig config = build_space();
    const std::uint64_t space = explore::design_space_size(actuary, config);

    ThreadPool::set_global_threads(1);
    auto start = Clock::now();
    const explore::DesignSpaceResult serial =
        explore::explore_design_space(actuary, config);
    const double serial_s = seconds_since(start);

    ThreadPool::set_global_threads(threads);
    start = Clock::now();
    const explore::DesignSpaceResult parallel =
        explore::explore_design_space(actuary, config);
    const double parallel_s = seconds_since(start);

    // The determinism contract measured at the surface: identical space
    // accounting and a bit-identical top-K for any pool size.
    bool identical = serial.total_candidates == parallel.total_candidates &&
                     serial.pruned == parallel.pruned &&
                     serial.best.size() == parallel.best.size();
    for (std::size_t i = 0; identical && i < serial.best.size(); ++i) {
        identical = serial.best[i].index == parallel.best[i].index &&
                    serial.best[i].re_per_unit == parallel.best[i].re_per_unit &&
                    serial.best[i].nre_per_unit == parallel.best[i].nre_per_unit;
    }

    const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
    const double serial_cps =
        serial_s > 0.0 ? static_cast<double>(space) / serial_s : 0.0;
    const double parallel_cps =
        parallel_s > 0.0 ? static_cast<double>(space) / parallel_s : 0.0;

    std::ofstream json(out_path);
    if (!json) {
        std::cerr << "error: cannot open '" << out_path << "' for writing\n";
        return 2;
    }
    json << "{\n"
         << "  \"bench\": \"design_space\",\n"
         << "  \"hardware_concurrency\": " << hardware << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"total_candidates\": " << space << ",\n"
         << "  \"pruned\": " << serial.pruned << ",\n"
         << "  \"pruned_fraction\": " << serial.pruned_fraction() << ",\n"
         << "  \"evaluated\": " << serial.evaluated << ",\n"
         << "  \"top_k\": " << serial.best.size() << ",\n"
         << "  \"serial_wall_s\": " << serial_s << ",\n"
         << "  \"parallel_wall_s\": " << parallel_s << ",\n"
         << "  \"serial_candidates_per_s\": " << serial_cps << ",\n"
         << "  \"parallel_candidates_per_s\": " << parallel_cps << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
         << "}\n";
    json.close();
    if (!json) {
        std::cerr << "error: failed writing '" << out_path << "'\n";
        return 2;
    }

    std::cout << "design space: " << space << " candidates ("
              << serial.pruned << " pruned, "
              << serial.evaluated << " evaluated), serial " << serial_s
              << " s, parallel(" << threads << ") " << parallel_s
              << " s, speedup " << speedup
              << (identical ? "" : "  [RESULTS DIVERGE]") << "\n"
              << "wrote " << out_path << "\n";
    return identical ? 0 : 1;
}
