// Cache-layer probe: the two warm paths PR'd on top of the study
// compiler, each gated bit-identical against cold evaluation before any
// timing is reported.
//
//   warm-start    a server restart with --cache-dir: the batch is priced
//                 cold through a StudyCache with a persistent store
//                 attached, then a brand-new cache is loaded from the
//                 same directory and must answer every spec from disk —
//                 byte-identical payloads, >= 5x faster than re-pricing.
//   cross-study   two heavily overlapping batches with disjoint spec
//                 bytes (the study cache can never help): priced
//                 independently versus through one shared cross-study
//                 CellStore, which re-uses batch A's priced cells for
//                 batch B — >= 1.5x over the sum of parts.
//
// Like the other bench_* probes this has no Google-Benchmark dependency;
// it is run by bench/run_benches.sh, emitting BENCH_cache.json.
//
//   bench_cache [output.json]
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/actuary.h"
#include "explore/cache_store.h"
#include "explore/cell_store.h"
#include "explore/montecarlo.h"
#include "explore/study.h"
#include "explore/study_cache.h"
#include "explore/study_graph.h"
#include "explore/study_json.h"
#include "util/thread_pool.h"
#include "wafer/die_cost_cache.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

chiplet::explore::StudySpec grid_spec(const std::string& name,
                                      double area_step) {
    using namespace chiplet::explore;
    ReSweepConfig config;
    config.nodes = {"14nm", "7nm", "5nm"};
    config.packagings = {"SoC", "MCM"};
    config.chiplet_counts = {2, 3, 4, 5};
    config.areas_mm2.clear();
    for (double area = 100.0; area <= 900.0; area += area_step) {
        config.areas_mm2.push_back(area);
    }
    StudySpec spec;
    spec.name = name;
    spec.config = config;
    return spec;
}

/// The restart working set: the sweep grids plus a Monte-Carlo study —
/// heavy to price (thousands of draws), light to load back (one small
/// summary + samples), the shape that makes warm starts worthwhile.
std::vector<chiplet::explore::StudySpec> warm_batch() {
    using namespace chiplet::explore;
    McStudyConfig mc;
    mc.scenario.node = "7nm";
    mc.scenario.packaging = "MCM";
    mc.scenario.module_area_mm2 = 600.0;
    mc.scenario.chiplets = 4;
    mc.draws = 4000;
    mc.seed = 42;
    StudySpec mc_spec;
    mc_spec.name = "fig_mc";
    mc_spec.config = mc;
    return {grid_spec("fig_fine", 20.0), grid_spec("fig_mid", 40.0),
            grid_spec("fig_coarse", 80.0), mc_spec};
}

std::vector<chiplet::explore::StudyResult> flatten(
    const chiplet::explore::StudyGraphRun& run) {
    std::vector<chiplet::explore::StudyResult> out;
    for (const std::optional<chiplet::explore::StudyResult>& result :
         run.results) {
        if (result.has_value()) out.push_back(*result);
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace chiplet;
    using util::ThreadPool;

    const std::string out_path =
        argc > 1 ? argv[1] : std::string("BENCH_cache.json");
    const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
    unsigned threads = hardware;
    if (const char* env = std::getenv("CHIPLET_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0) threads = static_cast<unsigned>(parsed);
    }
    const int repeats = 3;

    const core::ChipletActuary actuary;
    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    exact.ignore_keys = {"meta"};

    // The die-cost cache would let cold repeats warm each other up and
    // understate the work the persistent layers actually save.
    wafer::DieCostCache::global().set_enabled(false);
    ThreadPool::set_global_threads(threads);

    // ---- workload A: restart warm-start from --cache-dir ----------------
    const std::vector<explore::StudySpec> specs = warm_batch();
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("chiplet_bench_cache_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(dir);

    // Cold: a fresh, storeless cache prices everything from scratch.
    std::vector<explore::StudyResult> cold;
    double cold_s = 1e300;
    for (int r = 0; r < repeats; ++r) {
        explore::StudyCache cache;
        cold.clear();
        const auto start = Clock::now();
        for (const explore::StudySpec& spec : specs) {
            cold.push_back(explore::run_study_cached(actuary, spec, cache));
        }
        cold_s = std::min(cold_s, seconds_since(start));
    }

    // Populate the directory once (write-through), untimed.
    {
        explore::StudyCacheStore store({dir, 0});
        explore::StudyCache cache;
        cache.attach_store(&store);
        for (const explore::StudySpec& spec : specs) {
            (void)explore::run_study_cached(actuary, spec, cache);
        }
    }

    // Warm: the whole restart path — open the store, replay the
    // directory into an empty cache, answer the batch from it.
    std::vector<explore::StudyResult> warm;
    std::uint64_t loaded = 0;
    double warm_s = 1e300;
    bool warm_complete = true;
    for (int r = 0; r < repeats; ++r) {
        warm.clear();
        const auto start = Clock::now();
        explore::StudyCacheStore store({dir, 0});
        explore::StudyCache cache;
        store.load_into(cache);
        for (const explore::StudySpec& spec : specs) {
            std::optional<explore::StudyResult> hit = cache.lookup(spec);
            if (!hit.has_value()) {
                warm_complete = false;
                break;
            }
            warm.push_back(*hit);
        }
        warm_s = std::min(warm_s, seconds_since(start));
        loaded = store.stats().loaded;
    }
    std::filesystem::remove_all(dir);

    const std::string warm_diff =
        warm.size() == cold.size()
            ? json_diff(explore::results_to_json(warm),
                        explore::results_to_json(cold), exact)
            : std::string("warm lookups incomplete");
    const bool warm_identical = warm_complete && warm_diff.empty();
    const double warm_speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;

    // ---- workload B: cross-study cell reuse ------------------------------
    // Two "frames" of merged client requests — the batch shape
    // bench_study_graph models — with identical grids but disjoint spec
    // bytes across frames, so the whole-result study cache is blind
    // between them and only the cell layer can carry work across.
    // Sum of parts is the pre-compiler experience: every request priced
    // by an independent run_study call, one frame after the other.
    const auto frame = [](const std::string& tag) {
        std::vector<explore::StudySpec> specs;
        for (int i = 0; i < 5; ++i) {
            specs.push_back(grid_spec(tag + "_fine", 20.0));
        }
        for (int i = 0; i < 3; ++i) {
            specs.push_back(grid_spec(tag + "_coarse", 40.0));
        }
        return specs;
    };
    const std::vector<explore::StudySpec> batch_a = frame("frame_a");
    const std::vector<explore::StudySpec> batch_b = frame("frame_b");

    double parts_s = 1e300;
    std::vector<explore::StudyResult> parts_b;
    for (int r = 0; r < repeats; ++r) {
        const auto start = Clock::now();
        for (const explore::StudySpec& spec : batch_a) {
            (void)explore::run_study(actuary, spec);
        }
        std::vector<explore::StudyResult> b;
        for (const explore::StudySpec& spec : batch_b) {
            b.push_back(explore::run_study(actuary, spec));
        }
        parts_s = std::min(parts_s, seconds_since(start));
        parts_b = std::move(b);
    }

    // Compiled frames without a store: what the graph alone buys.  The
    // store's marginal gain over this lands ungated in the artifact.
    double nostore_s = 1e300;
    for (int r = 0; r < repeats; ++r) {
        const auto start = Clock::now();
        (void)explore::run_study_graph(actuary, batch_a);
        (void)explore::run_study_graph(actuary, batch_b);
        nostore_s = std::min(nostore_s, seconds_since(start));
    }

    double shared_s = 1e300;
    std::vector<explore::StudyResult> shared_b;
    std::uint64_t store_hits = 0;
    std::uint64_t b_unique = 0;
    for (int r = 0; r < repeats; ++r) {
        const auto start = Clock::now();
        explore::CellStore store;
        (void)explore::run_study_graph(actuary, batch_a, nullptr, &store);
        const explore::StudyGraphRun b =
            explore::run_study_graph(actuary, batch_b, nullptr, &store);
        shared_s = std::min(shared_s, seconds_since(start));
        shared_b = flatten(b);
        store_hits = b.stats.store_hits;
        b_unique = b.stats.unique_cells;
    }
    wafer::DieCostCache::global().set_enabled(true);

    const std::string cross_diff =
        json_diff(explore::results_to_json(shared_b),
                  explore::results_to_json(parts_b), exact);
    const bool cross_identical = cross_diff.empty();
    const double cross_speedup = shared_s > 0.0 ? parts_s / shared_s : 0.0;
    const double store_gain = shared_s > 0.0 ? nostore_s / shared_s : 0.0;

    const bool identical = warm_identical && cross_identical;

    std::ofstream json(out_path);
    if (!json) {
        std::cerr << "error: cannot open '" << out_path << "' for writing\n";
        return 2;
    }
    json << "{\n"
         << "  \"bench\": \"cache\",\n"
         << "  \"hardware_concurrency\": " << hardware << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"repeats\": " << repeats << ",\n"
         << "  \"warm_studies\": " << specs.size() << ",\n"
         << "  \"warm_entries_loaded\": " << loaded << ",\n"
         << "  \"cold_wall_s\": " << cold_s << ",\n"
         << "  \"warm_wall_s\": " << warm_s << ",\n"
         << "  \"warm_speedup\": " << warm_speedup << ",\n"
         << "  \"warm_bit_identical\": " << (warm_identical ? "true" : "false")
         << ",\n"
         << "  \"cross_store_hits\": " << store_hits << ",\n"
         << "  \"cross_unique_cells\": " << b_unique << ",\n"
         << "  \"parts_wall_s\": " << parts_s << ",\n"
         << "  \"nostore_wall_s\": " << nostore_s << ",\n"
         << "  \"shared_wall_s\": " << shared_s << ",\n"
         << "  \"cross_speedup\": " << cross_speedup << ",\n"
         << "  \"cross_store_gain\": " << store_gain << ",\n"
         << "  \"cross_bit_identical\": "
         << (cross_identical ? "true" : "false") << ",\n"
         << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
         << "}\n";
    json.close();
    if (!json) {
        std::cerr << "error: failed writing '" << out_path << "'\n";
        return 2;
    }

    std::cout << "cache: warm-start " << cold_s << " s cold -> " << warm_s
              << " s warm (speedup " << warm_speedup << "), cross-study "
              << parts_s << " s parts -> " << shared_s
              << " s shared (speedup " << cross_speedup << ")"
              << (identical ? ""
                            : "  [RESULTS DIVERGE: " + warm_diff + cross_diff +
                                  "]")
              << "\n"
              << "wrote " << out_path << "\n";
    return identical ? 0 : 1;
}
