// Baseline comparator for the BENCH_*.json perf-trajectory artifacts.
// A committed baseline (bench/baselines/BENCH_<name>.json) declares the
// contract for one bench output:
//
//   {
//     "bench": "design_space",
//     "max_regression": 0.20,
//     "require_true": ["bit_identical"],
//     "throughput": { "parallel_candidates_per_s": 52000.0 }
//   }
//
// `require_true` fields are hard gates: they must be boolean true in the
// fresh output (paths may cross arrays with '*': "workloads.*.bit_identical").
// `throughput` fields are higher-is-better numbers: the fresh value must
// be at least (1 - max_regression) x the baseline value.  CI runs this
// via bench/run_benches.sh after every bench, so a >20% throughput
// regression — or any lost bit_identical flag — fails the bench job.
//
//   bench_compare check <fresh.json> <baseline.json>   exit 1 on regression
//   bench_compare init  <fresh.json> <baseline.json>   refresh baseline values
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "util/json.h"

namespace {

using chiplet::JsonValue;

/// Collects the values at a dotted path; '*' fans out over an array.
void resolve(const JsonValue& node, const std::vector<std::string>& parts,
             std::size_t depth, const std::string& path,
             std::vector<const JsonValue*>& out, std::string& error) {
    if (!error.empty()) return;
    if (depth == parts.size()) {
        out.push_back(&node);
        return;
    }
    const std::string& part = parts[depth];
    if (part == "*") {
        if (!node.is_array()) {
            error = "path '" + path + "': '*' applied to a non-array";
            return;
        }
        for (const JsonValue& element : node.as_array()) {
            resolve(element, parts, depth + 1, path, out, error);
        }
        return;
    }
    if (!node.is_object() || !node.contains(part)) {
        error = "path '" + path + "': key '" + part + "' not found";
        return;
    }
    resolve(node.at(part), parts, depth + 1, path, out, error);
}

std::vector<std::string> split_path(const std::string& path) {
    std::vector<std::string> parts;
    std::string current;
    for (const char c : path) {
        if (c == '.') {
            parts.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    parts.push_back(current);
    return parts;
}

std::vector<const JsonValue*> values_at(const JsonValue& doc,
                                        const std::string& path,
                                        std::string& error) {
    std::vector<const JsonValue*> out;
    resolve(doc, split_path(path), 0, path, out, error);
    if (error.empty() && out.empty()) error = "path '" + path + "': no matches";
    return out;
}

int usage() {
    std::cerr << "usage: bench_compare check <fresh.json> <baseline.json>\n"
                 "       bench_compare init  <fresh.json> <baseline.json>\n";
    return 2;
}

int check(const JsonValue& fresh, const JsonValue& baseline,
          const std::string& baseline_path) {
    bool ok = true;
    const double max_regression = baseline.get_or("max_regression", 0.20);

    if (baseline.contains("require_true")) {
        for (const JsonValue& entry : baseline.at("require_true").as_array()) {
            const std::string path = entry.as_string();
            std::string error;
            for (const JsonValue* v : values_at(fresh, path, error)) {
                if (!v->is_bool() || !v->as_bool()) {
                    std::cerr << "FAIL hard gate '" << path
                              << "': expected true, got " << v->dump() << "\n";
                    ok = false;
                }
            }
            if (!error.empty()) {
                std::cerr << "FAIL hard gate: " << error << "\n";
                ok = false;
            }
        }
    }

    if (baseline.contains("throughput")) {
        const JsonValue& throughput = baseline.at("throughput");
        for (const std::string& key : throughput.keys()) {
            const double base = throughput.at(key).as_number();
            const double floor = base * (1.0 - max_regression);
            // Same path syntax as require_true, so nested per-workload
            // numbers ("workloads.*.speedup") are gated too; every
            // match must clear the floor.
            std::string error;
            for (const JsonValue* v : values_at(fresh, key, error)) {
                if (!v->is_number()) {
                    std::cerr << "FAIL throughput '" << key
                              << "': not a number in fresh output\n";
                    ok = false;
                } else if (v->as_number() < floor) {
                    std::cerr << "FAIL throughput '" << key << "': "
                              << v->as_number() << " < " << floor
                              << " (baseline " << base << ", max regression "
                              << max_regression * 100.0 << "%)\n";
                    ok = false;
                } else {
                    std::cout << "ok   " << key << ": " << v->as_number()
                              << " vs baseline " << base << "\n";
                }
            }
            if (!error.empty()) {
                std::cerr << "FAIL throughput: " << error << "\n";
                ok = false;
            }
        }
    }

    if (!ok) {
        std::cerr << "baseline check failed against " << baseline_path << "\n"
                  << "(rerun with BENCH_WRITE_BASELINES=1 to refresh the "
                     "baselines on an intentional change)\n";
        return 1;
    }
    std::cout << "baseline check passed (" << baseline_path << ")\n";
    return 0;
}

int init(const JsonValue& fresh, JsonValue baseline,
         const std::string& baseline_path) {
    if (baseline.contains("throughput")) {
        JsonValue& throughput = baseline.at("throughput");
        const std::vector<std::string> keys = throughput.keys();
        for (const std::string& key : keys) {
            // A wildcard path matches several numbers; the slowest one
            // becomes the baseline so every match clears it afterwards.
            std::string error;
            double slowest = 0.0;
            bool found = false;
            for (const JsonValue* v : values_at(fresh, key, error)) {
                if (!v->is_number()) continue;
                slowest = found ? std::min(slowest, v->as_number())
                                : v->as_number();
                found = true;
            }
            if (found) {
                throughput.set(key, slowest);
            } else {
                std::cerr << "warning: throughput '" << key
                          << "' missing from fresh output; kept old value\n";
            }
        }
    }
    baseline.save_file(baseline_path);
    std::cout << "wrote " << baseline_path << "\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc != 4) return usage();
    const std::string mode = argv[1];
    if (mode != "check" && mode != "init") return usage();
    try {
        const JsonValue fresh = JsonValue::load_file(argv[2]);
        const JsonValue baseline = JsonValue::load_file(argv[3]);
        return mode == "check" ? check(fresh, baseline, argv[3])
                               : init(fresh, baseline, argv[3]);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
