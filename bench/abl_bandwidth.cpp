// Ablation: bandwidth-driven D2D sizing.  Replaces the paper's flat 10%
// D2D assumption with a physical beachfront model and sweeps the
// inter-chiplet bandwidth requirement — quantifying the paper's closing
// takeaway that organic substrates cannot carry ultra-high-performance
// interconnect.
#include "bench_common.h"
#include "core/actuary.h"
#include "core/scenarios.h"
#include "report/table.h"
#include "tech/d2d.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("ablation — bandwidth-driven D2D sizing");
    const core::ChipletActuary actuary;
    constexpr double kModuleArea = 800.0;
    constexpr unsigned kChiplets = 2;
    const double die_area = kModuleArea / kChiplets;  // pre-D2D estimate

    report::TextTable table;
    table.add_column("BW per chiplet", report::Align::right);
    for (const char* pkg : {"MCM", "InFO", "2.5D", "3D"}) {
        table.add_column(std::string(pkg) + " d2d%", report::Align::right);
        table.add_column(std::string(pkg) + " RE", report::Align::right);
    }

    for (double bw_gbps : {1'000.0, 4'000.0, 8'000.0, 16'000.0, 32'000.0}) {
        std::vector<std::string> row{format_fixed(bw_gbps / 1000.0, 0) + " Tbps"};
        for (const std::string pkg : {"MCM", "InFO", "2.5D", "3D"}) {
            const tech::PackagingTech& tech = actuary.library().packaging(pkg);
            const tech::D2dSizing sizing =
                tech::size_d2d(tech, die_area, bw_gbps);
            if (!sizing.feasible) {
                row.push_back("infeasible");
                row.push_back("-");
                continue;
            }
            const auto system =
                core::split_system("s", "5nm", pkg, kModuleArea, kChiplets,
                                   sizing.area_fraction, 1e6);
            row.push_back(format_pct(sizing.area_fraction));
            row.push_back(
                format_money(actuary.evaluate_re_only(system).re.total()));
        }
        table.add_row(std::move(row));
    }
    std::cout << "5nm, 800 mm^2 split in two; D2D area derived from the "
                 "bandwidth requirement:\n"
              << table.render() << "\n";

    const double mcm_limit = tech::max_escape_bandwidth_gbps(
        actuary.library().packaging("MCM"), die_area);
    bench::print_claim(
        "for ultra-high performance systems the interconnection "
        "requirements are too high to be supported by the organic "
        "substrate, so advanced packaging is necessary (Sec. 6)",
        "the organic MCM tops out at " +
            format_fixed(mcm_limit / 1000.0, 1) +
            " Tbps per 400 mm^2 chiplet and its D2D share explodes well "
            "before that; InFO/2.5D/3D stay in single-digit percent");
}

void BM_D2dSizing(benchmark::State& state) {
    const tech::TechLibrary lib = tech::TechLibrary::builtin();
    const tech::PackagingTech& tech = lib.packaging("2.5D");
    for (auto _ : state) {
        benchmark::DoNotOptimize(tech::size_d2d(tech, 400.0, 8'000.0));
    }
}
BENCHMARK(BM_D2dSizing);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
