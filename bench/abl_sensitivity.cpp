// Ablation: local sensitivity of the headline comparison (800 mm^2 5nm,
// SoC vs 2-chiplet MCM) to every calibration parameter, reported as
// elasticities.  Identifies which inputs the paper's conclusions
// actually depend on.
#include "bench_common.h"
#include "core/actuary.h"
#include "core/scenarios.h"
#include "explore/sensitivity.h"
#include "report/table.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("ablation — parameter sensitivities (elasticities)");
    const core::ChipletActuary actuary;

    const auto soc = core::monolithic_soc("soc", "5nm", 800.0, 2e6);
    const auto mcm = core::split_system("mcm", "5nm", "MCM", 800.0, 2, 0.10, 2e6);

    const auto soc_entries = explore::sensitivity_analysis(
        actuary, soc, explore::default_parameters("5nm", "SoC"));
    const auto mcm_entries = explore::sensitivity_analysis(
        actuary, mcm, explore::default_parameters("5nm", "MCM"));

    report::TextTable table;
    table.add_column("parameter");
    table.add_column("base value", report::Align::right);
    table.add_column("SoC elasticity", report::Align::right);
    table.add_column("MCM elasticity", report::Align::right);
    for (std::size_t i = 0; i < soc_entries.size(); ++i) {
        // Parameter sets differ only in the packaging prefix; align by
        // suffix so the defect/wafer rows pair up.
        const auto suffix = [](const std::string& s) {
            return s.substr(s.find('.'));
        };
        std::string mcm_value = "-";
        for (const auto& entry : mcm_entries) {
            if (suffix(entry.parameter) == suffix(soc_entries[i].parameter)) {
                mcm_value = format_fixed(entry.elasticity, 3);
            }
        }
        table.add_row({soc_entries[i].parameter,
                       format_fixed(soc_entries[i].base_value, 4),
                       format_fixed(soc_entries[i].elasticity, 3), mcm_value});
    }
    std::cout << table.render() << "\n";

    bench::print_claim(
        "the multi-chip advantage stems from yield: defect density should "
        "dominate the SoC cost and matter far less for chiplets",
        "the defect-density elasticity of the SoC exceeds the MCM's; "
        "wafer price moves both roughly equally; bonding yields only "
        "touch the MCM");
}

void BM_SensitivityAnalysis(benchmark::State& state) {
    const core::ChipletActuary actuary;
    const auto system = core::monolithic_soc("soc", "5nm", 800.0, 2e6);
    const auto params = explore::default_parameters("5nm", "SoC");
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            explore::sensitivity_analysis(actuary, system, params));
    }
}
BENCHMARK(BM_SensitivityAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
