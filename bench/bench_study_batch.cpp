// Study-API throughput probe: a batch of heterogeneous studies run
// through explore::run_studies, serial (1-thread pool) vs parallel,
// results checked bit-identical (json_diff over the payloads, run
// metadata ignored) before any timing is reported.  Like
// bench_parallel_sweep this has no Google-Benchmark dependency; it is
// run by bench/run_benches.sh, emitting BENCH_study_batch.json.
//
//   bench_study_batch [output.json]
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/actuary.h"
#include "explore/study.h"
#include "explore/study_json.h"
#include "util/thread_pool.h"
#include "wafer/die_cost_cache.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A mixed batch heavy enough to time: dense grids, a Monte-Carlo
/// study, break-evens, sensitivity and a timeline.
std::vector<chiplet::explore::StudySpec> build_batch() {
    using namespace chiplet::explore;
    std::vector<StudySpec> specs;

    for (const char* node : {"14nm", "7nm", "5nm"}) {
        StudySpec grid;
        grid.name = std::string("grid_") + node;
        ReSweepConfig config;
        config.nodes = {node};
        config.chiplet_counts = {2, 3, 4, 5, 6};
        config.areas_mm2.clear();
        for (double area = 60.0; area <= 900.0; area += 20.0) {
            config.areas_mm2.push_back(area);
        }
        grid.config = config;
        specs.push_back(grid);
    }

    StudySpec mc;
    mc.name = "mc";
    McStudyConfig mcc;
    mcc.scenario.node = "5nm";
    mcc.scenario.packaging = "2.5D";
    mcc.scenario.module_area_mm2 = 700.0;
    mcc.scenario.chiplets = 4;
    mcc.draws = 1000;
    mc.config = mcc;
    specs.push_back(mc);

    StudySpec brk;
    brk.name = "breakeven";
    brk.config = BreakevenQuery{};
    specs.push_back(brk);

    StudySpec sens;
    sens.name = "sensitivity";
    SensitivityStudyConfig sc;
    sc.scenario.node = "5nm";
    sc.scenario.packaging = "MCM";
    sc.scenario.module_area_mm2 = 800.0;
    sc.scenario.chiplets = 2;
    sens.config = sc;
    specs.push_back(sens);

    StudySpec tl;
    tl.name = "timeline";
    TimelineStudyConfig tlc;
    tlc.scenario.node = "7nm";
    tlc.scenario.packaging = "MCM";
    tlc.scenario.module_area_mm2 = 600.0;
    tlc.scenario.chiplets = 2;
    tlc.months = 48.0;
    tlc.step_months = 0.5;
    tl.config = tlc;
    specs.push_back(tl);

    return specs;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace chiplet;
    using util::ThreadPool;

    const std::string out_path =
        argc > 1 ? argv[1] : std::string("BENCH_study_batch.json");
    const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
    unsigned threads = hardware;
    if (const char* env = std::getenv("CHIPLET_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0) threads = static_cast<unsigned>(parsed);
    }
    const int repeats = 3;

    const core::ChipletActuary actuary;
    const std::vector<explore::StudySpec> specs = build_batch();

    // Time raw evaluation throughput, not cache lookups.
    wafer::DieCostCache::global().set_enabled(false);

    ThreadPool::set_global_threads(1);
    std::vector<explore::StudyResult> serial =
        explore::run_studies(actuary, specs);
    double serial_s = 1e300;
    for (int r = 0; r < repeats; ++r) {
        const auto start = Clock::now();
        serial = explore::run_studies(actuary, specs);
        serial_s = std::min(serial_s, seconds_since(start));
    }

    ThreadPool::set_global_threads(threads);
    std::vector<explore::StudyResult> parallel =
        explore::run_studies(actuary, specs);
    double parallel_s = 1e300;
    for (int r = 0; r < repeats; ++r) {
        const auto start = Clock::now();
        parallel = explore::run_studies(actuary, specs);
        parallel_s = std::min(parallel_s, seconds_since(start));
    }
    wafer::DieCostCache::global().set_enabled(true);

    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    exact.ignore_keys = {"meta"};
    const std::string diff = json_diff(explore::results_to_json(serial),
                                       explore::results_to_json(parallel), exact);
    const bool identical = diff.empty();
    const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;

    std::ofstream json(out_path);
    if (!json) {
        std::cerr << "error: cannot open '" << out_path << "' for writing\n";
        return 2;
    }
    json << "{\n"
         << "  \"bench\": \"study_batch\",\n"
         << "  \"hardware_concurrency\": " << hardware << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"repeats\": " << repeats << ",\n"
         << "  \"studies\": " << specs.size() << ",\n"
         << "  \"serial_wall_s\": " << serial_s << ",\n"
         << "  \"parallel_wall_s\": " << parallel_s << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
         << "}\n";
    json.close();
    if (!json) {
        std::cerr << "error: failed writing '" << out_path << "'\n";
        return 2;
    }

    std::cout << "study batch: " << specs.size() << " studies, serial "
              << serial_s << " s, parallel(" << threads << ") " << parallel_s
              << " s, speedup " << speedup
              << (identical ? "" : "  [RESULTS DIVERGE: " + diff + "]") << "\n"
              << "wrote " << out_path << "\n";
    return identical ? 0 : 1;
}
