// Ablation: Monte-Carlo uncertainty propagation.  The calibration data
// (defect densities, wafer prices, bonding yields) carries estimation
// error; this bench reports cost bands and the probability that the
// paper's winner survives +/-30% parameter uncertainty, across
// quantities around the break-even point.
#include "bench_common.h"
#include "core/actuary.h"
#include "core/scenarios.h"
#include "explore/montecarlo.h"
#include "report/table.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

constexpr unsigned kDraws = 300;

void print_figure() {
    bench::print_header("ablation — Monte-Carlo parameter uncertainty");
    const core::ChipletActuary actuary;
    const auto sampler = explore::default_sampler("5nm", "MCM", 0.3);

    report::TextTable table;
    table.add_column("quantity", report::Align::right);
    table.add_column("SoC p50", report::Align::right);
    table.add_column("MCM p50", report::Align::right);
    table.add_column("MCM p05..p95", report::Align::right);
    table.add_column("P[MCM wins]", report::Align::right);

    for (double quantity : {5e5, 1e6, 2e6, 5e6, 2e7}) {
        const auto soc = core::monolithic_soc("soc", "5nm", 800.0, quantity);
        const auto mcm =
            core::split_system("mcm", "5nm", "MCM", 800.0, 2, 0.10, quantity);
        const explore::McResult soc_mc =
            explore::monte_carlo(actuary, soc, sampler, kDraws);
        const explore::McResult mcm_mc =
            explore::monte_carlo(actuary, mcm, sampler, kDraws);
        const double p_win =
            explore::win_rate(actuary, mcm, soc, sampler, kDraws);
        table.add_row({format_quantity(quantity), format_money(soc_mc.p50),
                       format_money(mcm_mc.p50),
                       format_money(mcm_mc.p05) + ".." + format_money(mcm_mc.p95),
                       format_pct(p_win, 0)});
    }
    std::cout << table.render() << "\n";

    bench::print_claim(
        "the multi-chip advantage near the break-even quantity is "
        "calibration-sensitive; far above it the winner is robust",
        "P[MCM wins] crosses 50% near the deterministic break-even and "
        "approaches 100% at high quantity despite +/-30% parameter "
        "uncertainty");
}

void BM_MonteCarloDraw(benchmark::State& state) {
    const core::ChipletActuary actuary;
    const auto system = core::split_system("m", "5nm", "MCM", 800.0, 2, 0.10, 2e6);
    const auto sampler = explore::default_sampler("5nm", "MCM", 0.3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            explore::monte_carlo(actuary, system, sampler, 10));
    }
}
BENCHMARK(BM_MonteCarloDraw)->Unit(benchmark::kMillisecond);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
