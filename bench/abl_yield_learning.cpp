// Ablation: process maturity.  The paper remarks that its Zen3-era
// chiplet advantage "is further smaller" once 7 nm defect density
// matured; this bench walks a defect-density learning curve and shows
// the advantage eroding month by month.
#include "bench_common.h"
#include "core/actuary.h"
#include "core/scenarios.h"
#include "explore/timeline.h"
#include "report/table.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("ablation — yield learning over process maturity");
    const core::ChipletActuary actuary;
    // 7 nm ramp: 0.13 /cm^2 at volume start, maturing towards 0.05.
    const yield::DefectLearningCurve curve(0.13, 0.05, 12.0);

    const auto soc = core::monolithic_soc("soc", "7nm", 800.0, 1e8);
    const auto mcm = core::split_system("mcm", "7nm", "MCM", 800.0, 2, 0.10, 1e8);

    const auto soc_traj =
        explore::cost_trajectory(actuary, soc, "7nm", curve, 36.0, 6.0);
    const auto mcm_traj =
        explore::cost_trajectory(actuary, mcm, "7nm", curve, 36.0, 6.0);

    report::TextTable table;
    table.add_column("month", report::Align::right);
    table.add_column("D (/cm^2)", report::Align::right);
    table.add_column("SoC cost", report::Align::right);
    table.add_column("MCM cost", report::Align::right);
    table.add_column("MCM saving", report::Align::right);
    for (std::size_t i = 0; i < soc_traj.size(); ++i) {
        table.add_row({format_fixed(soc_traj[i].month, 0),
                       format_fixed(soc_traj[i].defect_density, 3),
                       format_money(soc_traj[i].unit_cost),
                       format_money(mcm_traj[i].unit_cost),
                       format_pct(1.0 - mcm_traj[i].unit_cost /
                                            soc_traj[i].unit_cost)});
    }
    std::cout << "800 mm^2 7nm, 2-chiplet MCM vs SoC at 100M units "
                 "(NRE negligible):\n"
              << table.render() << "\n";

    bench::print_claim(
        "as the yield of 7nm technology improves in recent years, the "
        "advantage is further smaller (Sec. 4.1)",
        "the MCM saving column decays monotonically along the learning "
        "curve while both absolute costs fall");
}

void BM_Trajectory(benchmark::State& state) {
    const core::ChipletActuary actuary;
    const yield::DefectLearningCurve curve(0.13, 0.05, 12.0);
    const auto system = core::monolithic_soc("soc", "7nm", 800.0, 1e8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            explore::cost_trajectory(actuary, system, "7nm", curve, 36.0, 6.0));
    }
}
BENCHMARK(BM_Trajectory)->Unit(benchmark::kMillisecond);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
