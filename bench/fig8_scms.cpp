// Paper Fig. 8: the SCMS reuse scheme — one 7 nm chiplet with 200 mm^2
// of modules builds 1X / 2X / 4X systems (MCM and 2.5D), 500k units
// each, with and without package reuse.  Costs normalised to the RE
// cost of the 4X MCM system, as in the paper.
#include "bench_common.h"
#include "core/actuary.h"
#include "report/chart.h"
#include "report/table.h"
#include "reuse/scms.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("Fig. 8 — SCMS: single chiplet, multiple systems");
    const core::ChipletActuary actuary;

    reuse::ScmsConfig base;  // paper defaults: 7nm, 200 mm^2, MCM, 500k
    const core::FamilyCost mcm_plain =
        actuary.evaluate(reuse::make_scms_family(base));
    const double norm = mcm_plain.systems.back().re.total();  // 4X MCM RE

    const auto soc = actuary.evaluate(reuse::make_scms_soc_family(base));

    for (const std::string packaging : {"MCM", "2.5D"}) {
        reuse::ScmsConfig config = base;
        config.packaging = packaging;
        const auto plain = actuary.evaluate(reuse::make_scms_family(config));
        config.reuse_package = true;
        const auto reused = actuary.evaluate(reuse::make_scms_family(config));

        std::cout << "--- " << packaging
                  << " (normalised to 4X MCM RE cost) ---\n";
        report::TextTable table;
        table.add_column("system");
        table.add_column("SoC total", report::Align::right);
        table.add_column("multi total", report::Align::right);
        table.add_column("multi, pkg reuse", report::Align::right);
        table.add_column("pkg-reuse delta", report::Align::right);
        for (std::size_t i = 0; i < plain.systems.size(); ++i) {
            const double t_plain = plain.systems[i].total_per_unit() / norm;
            const double t_reused = reused.systems[i].total_per_unit() / norm;
            table.add_row(
                {plain.systems[i].system_name,
                 format_fixed(soc.systems[i].total_per_unit() / norm, 2),
                 format_fixed(t_plain, 2), format_fixed(t_reused, 2),
                 format_pct(t_reused / t_plain - 1.0)});
        }
        std::cout << table.render() << "\n";

        report::StackedBarChart chart(48);
        chart.set_segments({"RE", "NRE chips+modules", "NRE packages+D2D"});
        for (const auto& s : plain.systems) {
            chart.add_bar(s.system_name,
                          {s.re.total() / norm,
                           (s.nre.chips + s.nre.modules) / norm,
                           (s.nre.packages + s.nre.d2d) / norm});
        }
        std::cout << chart.render() << "\n";
    }

    const double chip_nre_saving =
        1.0 - mcm_plain.nre_chips_total / soc.nre_chips_total;
    bench::print_claim(
        "chiplet reuse saves nearly three quarters of chip NRE for the 4X "
        "system; package reuse helps big systems but raises the 1X total "
        "by >20%; interposer reuse is uneconomic for 2.5D",
        "chip-NRE saving measured " + format_pct(chip_nre_saving) +
            "; per-system package-reuse deltas in the tables above");
}

void BM_ScmsFamilyEvaluation(benchmark::State& state) {
    const core::ChipletActuary actuary;
    const auto family = reuse::make_scms_family(reuse::ScmsConfig{});
    for (auto _ : state) {
        benchmark::DoNotOptimize(actuary.evaluate(family));
    }
}
BENCHMARK(BM_ScmsFamilyEvaluation);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
