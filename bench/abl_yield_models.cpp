// Ablation: does the choice of yield model change the paper's
// conclusions?  Re-runs the Fig. 4 anchor cells under Poisson, Murphy,
// Seeds-exponential and the default negative-binomial model and checks
// whether the SoC-vs-MCM winner flips.
#include "bench_common.h"
#include "core/actuary.h"
#include "core/scenarios.h"
#include "report/table.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("ablation — yield model choice");

    const std::vector<std::string> models = {
        "seeds_negative_binomial", "murphy", "seeds_exponential", "poisson"};

    report::TextTable table;
    table.add_column("model");
    table.add_column("SoC yield@800 5nm", report::Align::right);
    table.add_column("SoC RE", report::Align::right);
    table.add_column("MCM k=2 RE", report::Align::right);
    table.add_column("MCM/SoC", report::Align::right);
    table.add_column("winner");

    for (const std::string& model : models) {
        core::ChipletActuary actuary;
        actuary.assumptions().yield_model = model;
        const auto soc =
            actuary.evaluate_re_only(core::monolithic_soc("s", "5nm", 800.0, 1e6));
        const auto mcm = actuary.evaluate_re_only(
            core::split_system("m", "5nm", "MCM", 800.0, 2, 0.10, 1e6));
        const double ratio = mcm.re.total() / soc.re.total();
        table.add_row({model, format_pct(soc.dies.front().yield),
                       format_money(soc.re.total()),
                       format_money(mcm.re.total()), format_fixed(ratio, 3),
                       ratio < 1.0 ? "MCM" : "SoC"});
    }
    std::cout << table.render() << "\n";

    // Small-die sanity cell: all models must agree the SoC wins there.
    report::TextTable small;
    small.add_column("model");
    small.add_column("MCM/SoC @200mm2 14nm", report::Align::right);
    for (const std::string& model : models) {
        core::ChipletActuary actuary;
        actuary.assumptions().yield_model = model;
        const auto soc = actuary.evaluate_re_only(
            core::monolithic_soc("s", "14nm", 200.0, 1e6));
        const auto mcm = actuary.evaluate_re_only(
            core::split_system("m", "14nm", "MCM", 200.0, 2, 0.10, 1e6));
        small.add_row({model, format_fixed(mcm.re.total() / soc.re.total(), 3)});
    }
    std::cout << small.render() << "\n";

    bench::print_claim(
        "the paper's conclusions rest on Eq. 1 (negative binomial); a "
        "robust model should not owe its winners to the clustering "
        "assumption",
        "the large-die/advanced-node winner (MCM) and the small-die/mature "
        "winner (SoC) are stable across all four classical yield models; "
        "only the margin moves (Poisson widens it, exponential narrows it)");
}

void BM_PoissonEvaluation(benchmark::State& state) {
    core::ChipletActuary actuary;
    actuary.assumptions().yield_model = "poisson";
    const auto system = core::split_system("m", "5nm", "MCM", 800.0, 2, 0.10, 1e6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(actuary.evaluate_re_only(system));
    }
}
BENCHMARK(BM_PoissonEvaluation);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
