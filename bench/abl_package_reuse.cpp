// Ablation: the package-reuse decision boundary (paper Sec. 5.1/5.2 —
// "whether to reuse packaging depends on whether the RE or the
// amortized NRE cost is dominant").  Sweeps production quantity and
// reports when sharing one oversized package design beats private
// packages, for both SCMS and OCME, on MCM and 2.5D.
#include "bench_common.h"
#include "core/actuary.h"
#include "report/table.h"
#include "reuse/ocme.h"
#include "reuse/scms.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("ablation — package reuse decision boundary");
    const core::ChipletActuary actuary;

    for (const std::string packaging : {"MCM", "2.5D"}) {
        std::cout << "--- SCMS on " << packaging
                  << ": family grand total, reuse vs private packages ---\n";
        report::TextTable table;
        table.add_column("quantity/system", report::Align::right);
        table.add_column("private pkgs", report::Align::right);
        table.add_column("reused pkg", report::Align::right);
        table.add_column("reuse delta", report::Align::right);
        table.add_column("verdict");
        for (double quantity : {5e4, 2e5, 5e5, 2e6, 1e7}) {
            reuse::ScmsConfig config;
            config.packaging = packaging;
            config.quantity_each = quantity;
            const double plain =
                actuary.evaluate(reuse::make_scms_family(config)).grand_total();
            config.reuse_package = true;
            const double reused =
                actuary.evaluate(reuse::make_scms_family(config)).grand_total();
            table.add_row({format_quantity(quantity), format_money(plain),
                           format_money(reused),
                           format_pct(reused / plain - 1.0),
                           reused < plain ? "reuse" : "private"});
        }
        std::cout << table.render() << "\n";
    }

    std::cout << "--- OCME on MCM: same sweep ---\n";
    report::TextTable ocme_table;
    ocme_table.add_column("quantity/system", report::Align::right);
    ocme_table.add_column("private pkgs", report::Align::right);
    ocme_table.add_column("reused pkg", report::Align::right);
    ocme_table.add_column("verdict");
    for (double quantity : {5e4, 2e5, 5e5, 2e6, 1e7}) {
        reuse::OcmeConfig config;
        config.quantity_each = quantity;
        const double plain =
            actuary.evaluate(reuse::make_ocme_family(config)).grand_total();
        config.reuse_package = true;
        const double reused =
            actuary.evaluate(reuse::make_ocme_family(config)).grand_total();
        ocme_table.add_row({format_quantity(quantity), format_money(plain),
                            format_money(reused),
                            reused < plain ? "reuse" : "private"});
    }
    std::cout << ocme_table.render() << "\n";

    bench::print_claim(
        "package reuse saves amortized package NRE for larger systems but "
        "wastes RE on smaller ones; it is uneconomic for high-cost 2.5D",
        "reuse wins at low quantities (NRE-dominant) and loses at high "
        "quantities (RE-dominant); the flip sits at far lower quantity on "
        "2.5D than on MCM");
}

void BM_ReusedFamilyEvaluation(benchmark::State& state) {
    const core::ChipletActuary actuary;
    reuse::ScmsConfig config;
    config.reuse_package = true;
    const auto family = reuse::make_scms_family(config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(actuary.evaluate(family));
    }
}
BENCHMARK(BM_ReusedFamilyEvaluation);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
