// Ablation: D2D interface area overhead.  The paper assumes 10% of each
// chiplet's area; this bench sweeps 0-25% and reports where the
// multi-chip RE advantage disappears — the design-space boundary the
// assumption sits on.
#include "bench_common.h"
#include "core/actuary.h"
#include "core/scenarios.h"
#include "report/table.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("ablation — D2D area overhead sweep");
    const core::ChipletActuary actuary;

    for (const std::string node : {"7nm", "5nm"}) {
        const double soc_re =
            actuary.evaluate_re_only(core::monolithic_soc("s", node, 800.0, 1e6))
                .re.total();

        std::cout << "--- " << node
                  << ", 800 mm^2, RE cost relative to SoC ---\n";
        report::TextTable table;
        table.add_column("D2D overhead", report::Align::right);
        table.add_column("MCM k=2", report::Align::right);
        table.add_column("MCM k=3", report::Align::right);
        table.add_column("MCM k=5", report::Align::right);
        double flip_fraction = -1.0;
        for (double d2d = 0.0; d2d <= 0.25 + 1e-9; d2d += 0.05) {
            std::vector<std::string> row{format_pct(d2d, 0)};
            for (unsigned k : {2u, 3u, 5u}) {
                const auto system =
                    core::split_system("m", node, "MCM", 800.0, k, d2d, 1e6);
                const double ratio =
                    actuary.evaluate_re_only(system).re.total() / soc_re;
                row.push_back(format_fixed(ratio, 3));
                if (k == 2 && ratio >= 1.0 && flip_fraction < 0.0) {
                    flip_fraction = d2d;
                }
            }
            table.add_row(std::move(row));
        }
        std::cout << table.render();
        if (flip_fraction >= 0.0) {
            std::cout << "2-chiplet advantage vanishes at ~"
                      << format_pct(flip_fraction, 0) << " D2D overhead\n\n";
        } else {
            std::cout << "2-chiplet MCM stays cheaper up to 25% overhead\n\n";
        }
    }

    bench::print_claim(
        "the cost advantage of a multi-chip system is not easy to achieve "
        "due to the overhead of packaging and the D2D interface",
        "higher D2D fractions monotonically erode the advantage; the flip "
        "points above quantify the sensitivity of the 10% assumption");
}

void BM_D2dSweepPoint(benchmark::State& state) {
    const core::ChipletActuary actuary;
    for (auto _ : state) {
        benchmark::DoNotOptimize(actuary.evaluate_re_only(
            core::split_system("m", "5nm", "MCM", 800.0, 3, 0.15, 1e6)));
    }
}
BENCHMARK(BM_D2dSweepPoint);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
