#!/usr/bin/env bash
# Runs the bench binaries from a finished build tree and collects the
# perf-trajectory JSON.
#
#   bench/run_benches.sh [build-dir] [output-dir]
#
# build-dir  defaults to ./build
# output-dir defaults to the build dir; receives BENCH_parallel_sweep.json
#
# Every fresh BENCH_*.json is additionally diffed against the committed
# baseline in bench/baselines/ (when present): boolean gates like
# bit_identical must hold and throughput fields must stay within the
# baseline's max_regression (20% by default) — see bench/bench_compare.cpp.
# The committed absolute-throughput values are deliberately conservative
# (well below a healthy dev machine) so shared CI runners gate real
# collapses, not scheduler noise; ratio gates (speedup) are tight.
#   BENCH_SKIP_BASELINES=1   skip the comparison (e.g. unrelated hardware)
#   BENCH_WRITE_BASELINES=1  refresh the committed baselines instead
#
# The figure benches (fig*/abl_*/tab_*) reproduce paper data and are run
# with --benchmark_min_time to keep total wall time reasonable; they are
# skipped unless RUN_FIGURE_BENCHES=1 (they need Google Benchmark and
# take minutes).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-${BUILD_DIR}}"
BASELINE_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)/baselines"

if [[ ! -d "${BUILD_DIR}" ]]; then
    echo "error: build directory '${BUILD_DIR}' not found (run cmake first)" >&2
    exit 1
fi
mkdir -p "${OUT_DIR}"

# Compares (or, with BENCH_WRITE_BASELINES=1, refreshes) one bench
# artifact against its committed baseline.  A missing baseline file or
# bench_compare binary is not an error — only committed contracts gate.
compare_baseline() {
    local artifact="$1"
    local baseline="${BASELINE_DIR}/$(basename "${artifact}")"
    [[ "${BENCH_SKIP_BASELINES:-0}" == "1" ]] && return 0
    [[ -x "${BUILD_DIR}/bench_compare" && -f "${baseline}" ]] || return 0
    if [[ "${BENCH_WRITE_BASELINES:-0}" == "1" ]]; then
        "${BUILD_DIR}/bench_compare" init "${artifact}" "${baseline}"
    else
        "${BUILD_DIR}/bench_compare" check "${artifact}" "${baseline}"
    fi
}

# ---- perf trajectory: serial vs parallel batch evaluation -------------------
if [[ -x "${BUILD_DIR}/bench_parallel_sweep" ]]; then
    echo "== bench_parallel_sweep =="
    "${BUILD_DIR}/bench_parallel_sweep" "${OUT_DIR}/BENCH_parallel_sweep.json"
    compare_baseline "${OUT_DIR}/BENCH_parallel_sweep.json"
else
    echo "error: ${BUILD_DIR}/bench_parallel_sweep not built" >&2
    exit 1
fi

# ---- perf trajectory: Study-API batch throughput ----------------------------
if [[ -x "${BUILD_DIR}/bench_study_batch" ]]; then
    echo "== bench_study_batch =="
    "${BUILD_DIR}/bench_study_batch" "${OUT_DIR}/BENCH_study_batch.json"
    compare_baseline "${OUT_DIR}/BENCH_study_batch.json"
else
    echo "error: ${BUILD_DIR}/bench_study_batch not built" >&2
    exit 1
fi

# ---- perf trajectory: study-compiler shared-work execution graph -----------
if [[ -x "${BUILD_DIR}/bench_study_graph" ]]; then
    echo "== bench_study_graph =="
    "${BUILD_DIR}/bench_study_graph" "${OUT_DIR}/BENCH_study_graph.json"
    compare_baseline "${OUT_DIR}/BENCH_study_graph.json"
else
    echo "error: ${BUILD_DIR}/bench_study_graph not built" >&2
    exit 1
fi

# ---- perf trajectory: heterogeneous design-space exploration ----------------
if [[ -x "${BUILD_DIR}/bench_design_space" ]]; then
    echo "== bench_design_space =="
    "${BUILD_DIR}/bench_design_space" "${OUT_DIR}/BENCH_design_space.json"
    compare_baseline "${OUT_DIR}/BENCH_design_space.json"
else
    echo "error: ${BUILD_DIR}/bench_design_space not built" >&2
    exit 1
fi

# ---- perf trajectory: actuaryd serving, cold vs warm cache ------------------
if [[ -x "${BUILD_DIR}/bench_serve" ]]; then
    echo "== bench_serve =="
    "${BUILD_DIR}/bench_serve" "${OUT_DIR}/BENCH_serve.json"
    compare_baseline "${OUT_DIR}/BENCH_serve.json"
else
    echo "error: ${BUILD_DIR}/bench_serve not built" >&2
    exit 1
fi

# ---- perf trajectory: persistent + cross-study cache layers -----------------
if [[ -x "${BUILD_DIR}/bench_cache" ]]; then
    echo "== bench_cache =="
    "${BUILD_DIR}/bench_cache" "${OUT_DIR}/BENCH_cache.json"
    compare_baseline "${OUT_DIR}/BENCH_cache.json"
else
    echo "error: ${BUILD_DIR}/bench_cache not built" >&2
    exit 1
fi

# ---- paper figure benches (optional, Google Benchmark) ----------------------
if [[ "${RUN_FIGURE_BENCHES:-0}" == "1" ]]; then
    for bench in "${BUILD_DIR}"/fig* "${BUILD_DIR}"/abl_* "${BUILD_DIR}"/tab_*; do
        [[ -x "${bench}" && ! -d "${bench}" ]] || continue
        name="$(basename "${bench}")"
        echo "== ${name} =="
        "${bench}" --benchmark_min_time=0.05s \
            --benchmark_out="${OUT_DIR}/BENCH_${name}.json" \
            --benchmark_out_format=json
    done
fi

echo "bench outputs in ${OUT_DIR}"
