// Serial-vs-parallel wall times of the batch-evaluation engine.  Unlike
// the figure benches this binary has no Google-Benchmark dependency: it
// is the perf-trajectory probe run by bench/run_benches.sh on every
// machine, emitting BENCH_parallel_sweep.json.
//
//   bench_parallel_sweep [output.json]
//
// Workloads: a dense RE sweep grid (many distinct die areas, so the
// die-cost cache cannot collapse the work) and a Monte-Carlo study.
// Each runs on a 1-thread pool (inline serial loop, no pool overhead)
// and on an N-thread pool; results are checked bit-identical before any
// timing is reported.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/scenarios.h"
#include "explore/montecarlo.h"
#include "explore/sweep.h"
#include "util/thread_pool.h"
#include "wafer/die_cost_cache.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

chiplet::explore::ReSweepConfig dense_grid() {
    chiplet::explore::ReSweepConfig config;
    config.nodes = {"14nm", "7nm", "5nm"};
    config.chiplet_counts = {2, 3, 4, 5, 6, 7, 8};
    config.areas_mm2.clear();
    for (double area = 60.0; area <= 900.0; area += 10.0) {
        config.areas_mm2.push_back(area);
    }
    return config;
}

struct Measurement {
    std::string name;
    std::size_t work_items = 0;
    double serial_s = 0.0;
    double parallel_s = 0.0;
    bool identical = false;

    [[nodiscard]] double speedup() const {
        return parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
    }
};

/// Times `run()` serially (1-thread pool) and in parallel (`threads`),
/// re-running each mode `repeats` times and keeping the best wall time.
template <typename Run, typename Same>
Measurement measure(const std::string& name, unsigned threads, int repeats,
                    const Run& run, const Same& same) {
    using chiplet::util::ThreadPool;
    Measurement m;
    m.name = name;

    // Time raw evaluation throughput: with the memo table on, every
    // repeat after the first would measure cache lookups, not the model.
    chiplet::wafer::DieCostCache::global().set_enabled(false);

    ThreadPool::set_global_threads(1);
    auto serial_result = run();
    m.work_items = serial_result.size();
    m.serial_s = 1e300;
    for (int r = 0; r < repeats; ++r) {
        const auto start = Clock::now();
        serial_result = run();
        m.serial_s = std::min(m.serial_s, seconds_since(start));
    }

    ThreadPool::set_global_threads(threads);
    auto parallel_result = run();
    m.parallel_s = 1e300;
    for (int r = 0; r < repeats; ++r) {
        const auto start = Clock::now();
        parallel_result = run();
        m.parallel_s = std::min(m.parallel_s, seconds_since(start));
    }

    m.identical = same(serial_result, parallel_result);
    chiplet::wafer::DieCostCache::global().set_enabled(true);
    return m;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace chiplet;

    const std::string out_path =
        argc > 1 ? argv[1] : std::string("BENCH_parallel_sweep.json");
    const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
    // CHIPLET_THREADS overrides the parallel-mode width, like everywhere else.
    unsigned threads = hardware;
    if (const char* env = std::getenv("CHIPLET_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0) threads = static_cast<unsigned>(parsed);
    }
    const int repeats = 3;

    const core::ChipletActuary actuary;
    std::vector<Measurement> measurements;

    {
        const auto config = dense_grid();
        measurements.push_back(measure(
            "sweep_re_grid", threads, repeats,
            [&] { return explore::sweep_re_grid(actuary, config); },
            [](const auto& a, const auto& b) {
                if (a.size() != b.size()) return false;
                for (std::size_t i = 0; i < a.size(); ++i) {
                    if (a[i].re.total() != b[i].re.total() ||
                        a[i].normalized != b[i].normalized) {
                        return false;
                    }
                }
                return true;
            }));
    }

    {
        const auto system = core::split_system("s", "5nm", "2.5D", 700.0, 4,
                                               0.10, 1e6);
        const auto sampler = explore::default_sampler("5nm", "2.5D");
        measurements.push_back(measure(
            "monte_carlo", threads, repeats,
            [&] {
                return explore::monte_carlo(actuary, system, sampler, 2000, 42)
                    .samples;
            },
            [](const auto& a, const auto& b) { return a == b; }));
    }

    // Cache effectiveness on the grid workload: one cold + one warm run.
    auto& cache = wafer::DieCostCache::global();
    cache.clear();
    const auto grid_config = dense_grid();
    const auto cold_start = Clock::now();
    (void)explore::sweep_re_grid(actuary, grid_config);
    const double cache_cold_s = seconds_since(cold_start);
    const auto warm_start = Clock::now();
    (void)explore::sweep_re_grid(actuary, grid_config);
    const double cache_warm_s = seconds_since(warm_start);
    const auto cache_stats = cache.stats();

    std::ofstream json(out_path);
    if (!json) {
        std::cerr << "error: cannot open '" << out_path << "' for writing\n";
        return 2;
    }
    json << "{\n"
         << "  \"bench\": \"parallel_sweep\",\n"
         << "  \"hardware_concurrency\": " << hardware << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"repeats\": " << repeats << ",\n"
         << "  \"die_cost_cache\": {\"hits\": " << cache_stats.hits
         << ", \"misses\": " << cache_stats.misses
         << ", \"grid_cold_wall_s\": " << cache_cold_s
         << ", \"grid_warm_wall_s\": " << cache_warm_s << "},\n"
         << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < measurements.size(); ++i) {
        const Measurement& m = measurements[i];
        char line[512];
        std::snprintf(line, sizeof(line),
                      "    {\"name\": \"%s\", \"work_items\": %zu, "
                      "\"serial_wall_s\": %.6f, \"parallel_wall_s\": %.6f, "
                      "\"speedup\": %.3f, \"bit_identical\": %s}%s\n",
                      m.name.c_str(), m.work_items, m.serial_s, m.parallel_s,
                      m.speedup(), m.identical ? "true" : "false",
                      i + 1 < measurements.size() ? "," : "");
        json << line;
    }
    json << "  ]\n}\n";
    json.close();
    if (!json) {
        std::cerr << "error: failed writing '" << out_path << "'\n";
        return 2;
    }

    bool all_identical = true;
    for (const Measurement& m : measurements) {
        std::cout << m.name << ": " << m.work_items << " items, serial "
                  << m.serial_s << " s, parallel(" << threads << ") "
                  << m.parallel_s << " s, speedup " << m.speedup()
                  << (m.identical ? "" : "  [RESULTS DIVERGE]") << "\n";
        all_identical = all_identical && m.identical;
    }
    std::cout << "wrote " << out_path << "\n";
    return all_identical ? 0 : 1;
}
