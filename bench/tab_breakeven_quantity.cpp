// Paper Sec. 4.2's decision table: the production quantity at which a
// multi-chip architecture starts to pay back against the monolithic
// SoC, across node, module area and chiplet count; plus the Sec. 4.1
// RE-only area turning points.
#include "bench_common.h"
#include "explore/breakeven.h"
#include "report/table.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

void print_figure() {
    bench::print_header("break-even quantities and area turning points");
    const core::ChipletActuary actuary;

    report::TextTable quantity_table;
    quantity_table.add_column("node");
    quantity_table.add_column("area", report::Align::right);
    quantity_table.add_column("chiplets", report::Align::right);
    quantity_table.add_column("break-even qty", report::Align::right);
    quantity_table.add_column("cost there", report::Align::right);

    for (const std::string node : {"14nm", "7nm", "5nm"}) {
        for (double area : {400.0, 600.0, 800.0}) {
            for (unsigned k : {2u, 3u}) {
                const explore::Breakeven result = explore::breakeven_quantity(
                    actuary, node, area, k, "MCM", 0.10);
                quantity_table.add_row(
                    {node, format_fixed(area, 0), std::to_string(k),
                     result.found ? format_quantity(result.value) : "never",
                     result.found ? format_money(result.soc_cost) : "-"});
            }
        }
    }
    std::cout << "quantity where k-chiplet MCM matches the SoC total cost:\n"
              << quantity_table.render() << "\n";

    report::TextTable area_table;
    area_table.add_column("node");
    area_table.add_column("packaging");
    area_table.add_column("RE turning area", report::Align::right);
    for (const std::string node : {"14nm", "7nm", "5nm"}) {
        for (const std::string packaging : {"MCM", "InFO", "2.5D"}) {
            const explore::Breakeven result =
                explore::breakeven_area(actuary, node, 2, packaging, 0.10);
            area_table.add_row(
                {node, packaging,
                 result.found ? format_fixed(result.value, 0) + " mm2"
                              : "none in [50, 900]"});
        }
    }
    std::cout << "module area where the 2-chiplet RE cost matches the SoC:\n"
              << area_table.render() << "\n";

    const explore::Breakeven anchor =
        explore::breakeven_quantity(actuary, "5nm", 800.0, 2, "MCM", 0.10);
    bench::print_claim(
        "for 5nm systems (800 mm^2, 2 chiplets) multi-chip pays back around "
        "2M units; smaller systems turn later; advanced nodes turn at "
        "smaller areas",
        "5nm/800mm2/2-chiplet break-even measured at " +
            (anchor.found ? format_quantity(anchor.value) : "none") +
            "; both monotonicities visible in the tables");
}

void BM_BreakevenQuantity(benchmark::State& state) {
    const core::ChipletActuary actuary;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            explore::breakeven_quantity(actuary, "5nm", 800.0, 2, "MCM", 0.10));
    }
}
BENCHMARK(BM_BreakevenQuantity)->Unit(benchmark::kMillisecond);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
