// Shared scaffolding for the figure benches: every bench binary prints
// its paper figure's data first (tables / ASCII charts on stdout), then
// runs its registered Google-Benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "util/csv.h"

namespace chiplet::bench {

/// Prints a prominent section header for figure output.
inline void print_header(const std::string& title) {
    const std::string rule(title.size() + 4, '=');
    std::cout << "\n" << rule << "\n= " << title << " =\n" << rule << "\n\n";
}

/// Prints a paper-claim vs measured line (collected into EXPERIMENTS.md).
inline void print_claim(const std::string& claim, const std::string& measured) {
    std::cout << "paper: " << claim << "\n  ours: " << measured << "\n";
}

/// Writes a figure's data series as CSV when the CHIPLET_CSV_DIR
/// environment variable names a directory; silent no-op otherwise.
/// Lets users post-process figure data with their own plotting stack.
inline void maybe_export_csv(const CsvWriter& csv, const std::string& filename) {
    const char* dir = std::getenv("CHIPLET_CSV_DIR");
    if (dir == nullptr || *dir == '\0') return;
    const std::string path = std::string(dir) + "/" + filename;
    csv.save(path);
    std::cout << "[csv] wrote " << path << "\n";
}

}  // namespace chiplet::bench

/// Standard main: figure output first, then benchmark timings.
#define CHIPLET_BENCH_MAIN(print_figure)                      \
    int main(int argc, char** argv) {                        \
        print_figure();                                      \
        ::benchmark::Initialize(&argc, argv);                \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
        ::benchmark::RunSpecifiedBenchmarks();               \
        ::benchmark::Shutdown();                             \
        return 0;                                            \
    }
