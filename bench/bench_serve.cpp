// Serving-layer throughput probe: an in-process actuaryd instance
// (serve/server.h) driven over real loopback TCP, cold (every request a
// distinct spec, cache miss) vs warm (one spec repeated, cache hit).
// Before any timing is reported a warm response is checked bit-identical
// to a serial run_study of the same spec.  Like the other bench_*
// probes this has no Google-Benchmark dependency; run_benches.sh runs
// it and collects BENCH_serve.json.
//
//   bench_serve [output.json]
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/actuary.h"
#include "explore/study.h"
#include "explore/study_json.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/math.h"
#include "util/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/// Heavy enough per evaluation that a cache hit is decisively cheaper,
/// small enough in result bytes that serialisation does not dominate.
chiplet::explore::StudySpec mc_spec(const std::string& name,
                                    std::uint64_t seed) {
    chiplet::explore::StudySpec spec;
    spec.name = name;
    chiplet::explore::McStudyConfig config;
    config.scenario.node = "5nm";
    config.scenario.packaging = "2.5D";
    config.scenario.module_area_mm2 = 700.0;
    config.scenario.chiplets = 4;
    config.draws = 500;
    config.seed = seed;
    spec.config = config;
    return spec;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace chiplet;

    const std::string out_path =
        argc > 1 ? argv[1] : std::string("BENCH_serve.json");
    const unsigned threads = util::ThreadPool::global().size();

    const core::ChipletActuary actuary;
    serve::ServerConfig config;
    config.port = 0;  // ephemeral
    serve::StudyServer server(actuary, config);
    server.start();
    serve::StudyClient client("127.0.0.1", server.port());

    // ---- cold: every request a never-seen spec (cache miss) -----------------
    constexpr int kCold = 30;
    std::vector<double> cold_ms;
    const auto cold_start = Clock::now();
    for (int i = 0; i < kCold; ++i) {
        const std::vector<explore::StudySpec> batch{
            mc_spec("cold_" + std::to_string(i),
                    1000 + static_cast<std::uint64_t>(i))};
        const auto start = Clock::now();
        const JsonValue response = client.run(batch);
        cold_ms.push_back(ms_since(start));
        if (!response.contains("results") ||
            response.at("results").as_array().size() != 1) {
            std::cerr << "error: cold request " << i << " failed\n";
            return 2;
        }
    }
    const double cold_wall_ms = ms_since(cold_start);

    // ---- warm: one spec repeated (cache hit after the first) ----------------
    const std::vector<explore::StudySpec> repeated{mc_spec("warm", 42)};
    (void)client.run(repeated);  // populate the cache
    constexpr int kWarm = 200;
    std::vector<double> warm_ms;
    JsonValue warm_response;
    const auto warm_start = Clock::now();
    for (int i = 0; i < kWarm; ++i) {
        const auto start = Clock::now();
        warm_response = client.run(repeated);
        warm_ms.push_back(ms_since(start));
    }
    const double warm_wall_ms = ms_since(warm_start);

    // ---- correctness gate: warm response == serial run_study ----------------
    std::vector<explore::StudyResult> serial{run_study(actuary, repeated[0])};
    const JsonValue reference =
        JsonValue::parse(explore::results_to_json(serial).dump());
    JsonValue served = JsonValue::object();
    served.set("results", warm_response.at("results"));
    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    exact.ignore_keys = {"meta"};
    const std::string diff = json_diff(served, reference, exact);
    const bool identical = diff.empty();
    const bool all_cached =
        warm_response.at("meta").at("served_from_cache").as_number() == 1.0;

    (void)client.shutdown();
    server.wait();
    server.stop();

    const double cold_rps = cold_wall_ms > 0.0 ? kCold * 1e3 / cold_wall_ms : 0.0;
    const double warm_rps = warm_wall_ms > 0.0 ? kWarm * 1e3 / warm_wall_ms : 0.0;
    const double ratio = cold_rps > 0.0 ? warm_rps / cold_rps : 0.0;

    std::ofstream json(out_path);
    if (!json) {
        std::cerr << "error: cannot open '" << out_path << "' for writing\n";
        return 2;
    }
    json << "{\n"
         << "  \"bench\": \"serve\",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"cold_requests\": " << kCold << ",\n"
         << "  \"warm_requests\": " << kWarm << ",\n"
         << "  \"cold_rps\": " << cold_rps << ",\n"
         << "  \"warm_rps\": " << warm_rps << ",\n"
         << "  \"warm_over_cold\": " << ratio << ",\n"
         << "  \"cold_p50_ms\": " << percentile(cold_ms, 50.0) << ",\n"
         << "  \"cold_p99_ms\": " << percentile(cold_ms, 99.0) << ",\n"
         << "  \"warm_p50_ms\": " << percentile(warm_ms, 50.0) << ",\n"
         << "  \"warm_p99_ms\": " << percentile(warm_ms, 99.0) << ",\n"
         << "  \"served_from_cache\": " << (all_cached ? "true" : "false")
         << ",\n"
         << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
         << "}\n";
    json.close();
    if (!json) {
        std::cerr << "error: failed writing '" << out_path << "'\n";
        return 2;
    }

    std::cout << "serve: cold " << cold_rps << " req/s (p50 "
              << percentile(cold_ms, 50.0) << " ms), warm " << warm_rps
              << " req/s (p50 " << percentile(warm_ms, 50.0) << " ms), "
              << ratio << "x"
              << (identical ? "" : "  [RESULTS DIVERGE: " + diff + "]") << "\n"
              << "wrote " << out_path << "\n";

    // The warm path must actually hit the cache, match serial output
    // bit for bit, and clear the 5x throughput bar (it clears it by
    // orders of magnitude on any healthy build).
    return (identical && all_cached && ratio >= 5.0) ? 0 : 1;
}
