// Serving-layer throughput probe for the event-driven actuaryd
// (serve/server.h).  Three sections:
//
//   1. cold/warm evaluation: an in-process server driven over real
//      loopback TCP, every request a distinct spec (cache miss) vs one
//      spec repeated (cache hit); a warm response is checked
//      bit-identical to a serial run_study before timing is reported.
//   2. transport sweep: connections x pipeline-depth grid of ping
//      round-trips against the epoll event loop AND the legacy
//      thread-per-connection transport, p50/p99 per cell.
//   3. the headline: at 64 connections x 64-deep pipelines the event
//      loop must clear 4x the thread-per-connection throughput
//      (epoll_4x_threaded_c64 gates in bench/baselines/BENCH_serve.json).
//      The gap is structural, not tuned for: the event loop corks a
//      burst and answers it with one send(2), while the threaded
//      transport writes one small segment per response — under a
//      batching client that stops piggybacking ACKs, those per-response
//      writes stall on Nagle + delayed-ACK, which is exactly the
//      pathology write coalescing exists to avoid.
//
// Like the other bench_* probes this has no Google-Benchmark
// dependency; run_benches.sh runs it and collects BENCH_serve.json.
//
//   bench_serve [output.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/actuary.h"
#include "explore/study.h"
#include "explore/study_json.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/math.h"
#include "util/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/// Heavy enough per evaluation that a cache hit is decisively cheaper,
/// small enough in result bytes that serialisation does not dominate.
chiplet::explore::StudySpec mc_spec(const std::string& name,
                                    std::uint64_t seed) {
    chiplet::explore::StudySpec spec;
    spec.name = name;
    chiplet::explore::McStudyConfig config;
    config.scenario.node = "5nm";
    config.scenario.packaging = "2.5D";
    config.scenario.module_area_mm2 = 700.0;
    config.scenario.chiplets = 4;
    config.draws = 500;
    config.seed = seed;
    spec.config = config;
    return spec;
}

/// One sweep cell: `conns` concurrent connections, each keeping `depth`
/// ping frames in flight for `seconds`.  At depth > 1 the driver refills
/// in half-window batches written with a single send, so the client's
/// own syscall rate never caps the measurement.  Latency is
/// send-to-response of each frame, queueing included — the pipelined
/// latency a batching client actually observes.
struct CellResult {
    std::uint64_t requests = 0;
    double rps = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
};

CellResult run_cell(unsigned short port, int conns, int depth,
                    double seconds) {
    using namespace chiplet;
    std::atomic<bool> stop{false};
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(conns), 0);
    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(conns));
    const std::string ping = serve::encode_verb_request(serve::Verb::ping);

    std::vector<std::thread> drivers;
    drivers.reserve(static_cast<std::size_t>(conns));
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    for (int c = 0; c < conns; ++c) {
        drivers.emplace_back([&, c] {
            serve::StudyClient client("127.0.0.1", port);
            const int batch = std::max(1, depth / 2);
            std::string burst;
            burst.reserve((ping.size() + 1) *
                          static_cast<std::size_t>(batch));
            for (int d = 0; d < batch; ++d) {
                burst += ping;
                burst += '\n';
            }
            ++ready;
            while (!go.load(std::memory_order_acquire)) {
                std::this_thread::yield();
            }
            std::deque<Clock::time_point> sent;
            const auto send_batch = [&] {
                client.send_bytes(burst);
                const auto now = Clock::now();
                for (int d = 0; d < batch; ++d) sent.push_back(now);
            };
            while (static_cast<int>(sent.size()) < depth) send_batch();
            const auto finish_one = [&] {
                (void)client.read_line();
                latencies[static_cast<std::size_t>(c)].push_back(
                    ms_since(sent.front()));
                sent.pop_front();
                ++counts[static_cast<std::size_t>(c)];
            };
            while (!stop.load(std::memory_order_acquire)) {
                for (int d = 0; d < batch; ++d) finish_one();
                send_batch();
            }
            while (!sent.empty()) finish_one();  // drain the window
        });
    }
    while (ready.load() < conns) std::this_thread::yield();
    const auto start = Clock::now();
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds));
    stop.store(true, std::memory_order_release);
    for (std::thread& t : drivers) t.join();
    const double elapsed_s =
        std::chrono::duration<double>(Clock::now() - start).count();

    CellResult cell;
    std::vector<double> all;
    for (int c = 0; c < conns; ++c) {
        cell.requests += counts[static_cast<std::size_t>(c)];
        all.insert(all.end(), latencies[static_cast<std::size_t>(c)].begin(),
                   latencies[static_cast<std::size_t>(c)].end());
    }
    cell.rps = elapsed_s > 0.0
                   ? static_cast<double>(cell.requests) / elapsed_s
                   : 0.0;
    cell.p50_ms = chiplet::percentile(all, 50.0);
    cell.p99_ms = chiplet::percentile(all, 99.0);
    return cell;
}

const char* mode_name(chiplet::serve::ServerMode mode) {
    return mode == chiplet::serve::ServerMode::event_loop
               ? "event_loop"
               : "thread_per_connection";
}

}  // namespace

int main(int argc, char** argv) {
    using namespace chiplet;

    const std::string out_path =
        argc > 1 ? argv[1] : std::string("BENCH_serve.json");
    const unsigned threads = util::ThreadPool::global().size();

    const core::ChipletActuary actuary;

    // ---- cold/warm evaluation (event-loop transport, the default) -----------
    serve::ServerConfig config;
    config.port = 0;  // ephemeral
    serve::StudyServer server(actuary, config);
    server.start();

    constexpr int kCold = 30;
    std::vector<double> cold_ms;
    JsonValue warm_response;
    std::vector<double> warm_ms;
    constexpr int kWarm = 200;
    double cold_wall_ms = 0.0;
    double warm_wall_ms = 0.0;
    {
        serve::StudyClient client("127.0.0.1", server.port());
        const auto cold_start = Clock::now();
        for (int i = 0; i < kCold; ++i) {
            const std::vector<explore::StudySpec> batch{
                mc_spec("cold_" + std::to_string(i),
                        1000 + static_cast<std::uint64_t>(i))};
            const auto start = Clock::now();
            const JsonValue response = client.run(batch);
            cold_ms.push_back(ms_since(start));
            if (!response.contains("results") ||
                response.at("results").as_array().size() != 1) {
                std::cerr << "error: cold request " << i << " failed\n";
                return 2;
            }
        }
        cold_wall_ms = ms_since(cold_start);

        const std::vector<explore::StudySpec> repeated{mc_spec("warm", 42)};
        (void)client.run(repeated);  // populate the cache
        const auto warm_start = Clock::now();
        for (int i = 0; i < kWarm; ++i) {
            const auto start = Clock::now();
            warm_response = client.run(repeated);
            warm_ms.push_back(ms_since(start));
        }
        warm_wall_ms = ms_since(warm_start);
    }

    // ---- correctness gate: warm response == serial run_study ----------------
    const std::vector<explore::StudySpec> repeated{mc_spec("warm", 42)};
    std::vector<explore::StudyResult> serial{run_study(actuary, repeated[0])};
    const JsonValue reference =
        JsonValue::parse(explore::results_to_json(serial).dump());
    JsonValue served = JsonValue::object();
    served.set("results", warm_response.at("results"));
    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    exact.ignore_keys = {"meta"};
    const std::string diff = json_diff(served, reference, exact);
    const bool identical = diff.empty();
    const bool all_cached =
        warm_response.at("meta").at("served_from_cache").as_number() == 1.0;
    server.stop();

    // ---- transport sweep: connections x pipeline depth ----------------------
    const std::vector<int> kConns = {1, 8, 64};
    const std::vector<int> kDepths = {1, 16, 64};
    constexpr double kCellSeconds = 0.4;
    struct SweepRow {
        const char* mode;
        int conns;
        int depth;
        CellResult cell;
    };
    std::vector<SweepRow> sweep;
    double epoll_rps_c64 = 0.0;
    double threaded_rps_c64 = 0.0;
    for (const serve::ServerMode mode :
         {serve::ServerMode::event_loop,
          serve::ServerMode::thread_per_connection}) {
        serve::ServerConfig sweep_config;
        sweep_config.port = 0;
        sweep_config.mode = mode;
        serve::StudyServer sweep_server(actuary, sweep_config);
        sweep_server.start();
        for (const int conns : kConns) {
            for (const int depth : kDepths) {
                const CellResult cell =
                    run_cell(sweep_server.port(), conns, depth, kCellSeconds);
                if (conns == 64 && depth == 64) {
                    (mode == serve::ServerMode::event_loop ? epoll_rps_c64
                                                           : threaded_rps_c64) =
                        cell.rps;
                }
                sweep.push_back(SweepRow{mode_name(mode), conns, depth, cell});
                std::cout << "serve sweep: " << mode_name(mode) << " c="
                          << conns << " d=" << depth << ": " << cell.rps
                          << " req/s (p50 " << cell.p50_ms << " ms, p99 "
                          << cell.p99_ms << " ms)\n";
            }
        }
        sweep_server.stop();
    }
    const double epoll_over_threaded_c64 =
        threaded_rps_c64 > 0.0 ? epoll_rps_c64 / threaded_rps_c64 : 0.0;
    const bool epoll_4x = epoll_over_threaded_c64 >= 4.0;

    const double cold_rps =
        cold_wall_ms > 0.0 ? kCold * 1e3 / cold_wall_ms : 0.0;
    const double warm_rps =
        warm_wall_ms > 0.0 ? kWarm * 1e3 / warm_wall_ms : 0.0;
    const double ratio = cold_rps > 0.0 ? warm_rps / cold_rps : 0.0;

    std::ofstream json(out_path);
    if (!json) {
        std::cerr << "error: cannot open '" << out_path << "' for writing\n";
        return 2;
    }
    json << "{\n"
         << "  \"bench\": \"serve\",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"cold_requests\": " << kCold << ",\n"
         << "  \"warm_requests\": " << kWarm << ",\n"
         << "  \"cold_rps\": " << cold_rps << ",\n"
         << "  \"warm_rps\": " << warm_rps << ",\n"
         << "  \"warm_over_cold\": " << ratio << ",\n"
         << "  \"cold_p50_ms\": " << percentile(cold_ms, 50.0) << ",\n"
         << "  \"cold_p99_ms\": " << percentile(cold_ms, 99.0) << ",\n"
         << "  \"warm_p50_ms\": " << percentile(warm_ms, 50.0) << ",\n"
         << "  \"warm_p99_ms\": " << percentile(warm_ms, 99.0) << ",\n"
         << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const SweepRow& row = sweep[i];
        json << "    {\"mode\": \"" << row.mode
             << "\", \"connections\": " << row.conns
             << ", \"depth\": " << row.depth
             << ", \"requests\": " << row.cell.requests
             << ", \"rps\": " << row.cell.rps
             << ", \"p50_ms\": " << row.cell.p50_ms
             << ", \"p99_ms\": " << row.cell.p99_ms << "}"
             << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"epoll_rps_c64\": " << epoll_rps_c64 << ",\n"
         << "  \"threaded_rps_c64\": " << threaded_rps_c64 << ",\n"
         << "  \"epoll_over_threaded_c64\": " << epoll_over_threaded_c64
         << ",\n"
         << "  \"epoll_4x_threaded_c64\": " << (epoll_4x ? "true" : "false")
         << ",\n"
         << "  \"served_from_cache\": " << (all_cached ? "true" : "false")
         << ",\n"
         << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
         << "}\n";
    json.close();
    if (!json) {
        std::cerr << "error: failed writing '" << out_path << "'\n";
        return 2;
    }

    std::cout << "serve: cold " << cold_rps << " req/s, warm " << warm_rps
              << " req/s (" << ratio << "x), epoll c64d64 " << epoll_rps_c64
              << " req/s vs threaded " << threaded_rps_c64 << " req/s ("
              << epoll_over_threaded_c64 << "x)"
              << (identical ? "" : "  [RESULTS DIVERGE: " + diff + "]") << "\n"
              << "wrote " << out_path << "\n";

    // The warm path must hit the cache and match serial output bit for
    // bit; the cache speedup must clear 5x; and the event loop must
    // clear 4x the thread-per-connection transport at 64 pipelined
    // connections — the tentpole claim this bench exists to keep honest.
    return (identical && all_cached && ratio >= 5.0 && epoll_4x) ? 0 : 1;
}
