// Paper Fig. 5: model validation on AMD's EPYC chiplet architecture —
// 7 nm CCDs + 12 nm IOD on MCM vs a hypothetical monolithic 7 nm SoC,
// with the Zen3-era defect densities the paper speculates (0.13 and
// 0.12 /cm^2).  AMD's published comparison counts die cost only; the
// paper's point is that packaging narrows the advantage.
#include <vector>

#include "bench_common.h"
#include "core/actuary.h"
#include "design/builder.h"
#include "report/chart.h"
#include "report/table.h"
#include "util/strings.h"

namespace {

using namespace chiplet;

constexpr double kCcdCoreArea = 66.0;
constexpr double kIodLogicArea = 166.0;
constexpr double kIodAnalogArea = 250.0;

core::ChipletActuary make_actuary() {
    core::ChipletActuary actuary;
    actuary.library().set_defect_density("7nm", 0.13);
    actuary.library().set_defect_density("12nm", 0.12);
    return actuary;
}

design::System make_epyc(unsigned ccds, const design::Chip& ccd,
                         const design::Chip& iod) {
    return design::SystemBuilder("epyc" + std::to_string(ccds * 8), "MCM")
        .chips(ccd, ccds)
        .chip(iod)
        .quantity(1e6)
        .build();
}

design::System make_mono(unsigned ccds) {
    const design::Chip die =
        design::ChipBuilder("mono" + std::to_string(ccds * 8) + "_die", "7nm")
            .module("cores" + std::to_string(ccds * 8), kCcdCoreArea * ccds)
            .module("io_logic", kIodLogicArea, "12nm", true)
            .module("io_analog", kIodAnalogArea, "12nm", false)
            .build();
    return design::SystemBuilder("mono" + std::to_string(ccds * 8), "SoC")
        .chip(die)
        .quantity(1e6)
        .build();
}

void print_figure() {
    bench::print_header("Fig. 5 — AMD EPYC chiplet architecture validation");
    const core::ChipletActuary actuary = make_actuary();

    const design::Chip ccd = design::ChipBuilder("ccd", "7nm")
                                 .module("ccd_cores", kCcdCoreArea)
                                 .d2d(0.10)
                                 .build();
    const design::Chip iod =
        design::ChipBuilder("iod", "12nm")
            .module("iod_logic", kIodLogicArea)
            .module("iod_analog", kIodAnalogArea, "12nm", false)
            .d2d(0.06)
            .build();

    report::TextTable table;
    table.add_column("cores", report::Align::right);
    table.add_column("MCM/mono", report::Align::right);
    table.add_column("MCM pkg share", report::Align::right);
    table.add_column("mono pkg share", report::Align::right);
    table.add_column("die-only MCM/mono", report::Align::right);

    report::StackedBarChart chart(50);
    chart.set_segments({"raw chips", "chip defects", "packaging"});
    const double base =
        actuary.evaluate_re_only(make_mono(2)).re.total();  // 16-core mono

    for (unsigned ccds : {2, 3, 4, 6, 8}) {
        const auto mcm = actuary.evaluate_re_only(make_epyc(ccds, ccd, iod));
        const auto mono = actuary.evaluate_re_only(make_mono(ccds));
        const double die_mcm = mcm.re.raw_chips + mcm.re.chip_defects;
        const double die_mono = mono.re.raw_chips + mono.re.chip_defects;
        table.add_row({std::to_string(ccds * 8),
                       format_fixed(mcm.re.total() / mono.re.total(), 2),
                       format_pct(mcm.re.packaging_total() / mcm.re.total()),
                       format_pct(mono.re.packaging_total() / mono.re.total()),
                       format_fixed(die_mcm / die_mono, 2)});
        const std::string label = pad_left(std::to_string(ccds * 8), 2) + "c";
        chart.add_bar(label + " MCM ",
                      {mcm.re.raw_chips / base, mcm.re.chip_defects / base,
                       mcm.re.packaging_total() / base});
        chart.add_bar(label + " mono",
                      {mono.re.raw_chips / base, mono.re.chip_defects / base,
                       mono.re.packaging_total() / base});
    }
    std::cout << table.render() << "\n"
              << "normalised RE cost (base = 16-core monolithic):\n"
              << chart.render() << "\n";

    bench::print_claim(
        "multi-chip saves up to 50% of the *die* cost at high core counts "
        "(AMD's claim), but packaging takes 24-30% of the chiplet product's "
        "cost, shrinking the advantage AMD advertises",
        "die-only ratio reaches ~0.5 at 64 cores; MCM packaging share and "
        "full-cost ratios in the table above");
}

void BM_EpycEvaluation(benchmark::State& state) {
    const core::ChipletActuary actuary = make_actuary();
    const design::Chip ccd = design::ChipBuilder("ccd", "7nm")
                                 .module("ccd_cores", kCcdCoreArea)
                                 .d2d(0.10)
                                 .build();
    const design::Chip iod =
        design::ChipBuilder("iod", "12nm")
            .module("iod_logic", kIodLogicArea)
            .module("iod_analog", kIodAnalogArea, "12nm", false)
            .d2d(0.06)
            .build();
    const design::System epyc = make_epyc(8, ccd, iod);
    for (auto _ : state) {
        benchmark::DoNotOptimize(actuary.evaluate_re_only(epyc));
    }
}
BENCHMARK(BM_EpycEvaluation);

}  // namespace

CHIPLET_BENCH_MAIN(print_figure)
