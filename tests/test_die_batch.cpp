// The per-technology batch-setup hoist: a batch evaluation performs ONE
// die-pricing setup per distinct process technology — wafer validation,
// yield-model construction, rate folding — no matter how many candidate
// systems share it (the tentpole's "hoist per-technology setup out of
// the per-candidate loop").  Also pins the DieBatch accelerator contract:
// kernel-priced dies are bit-identical to the scalar price_die path and
// never silently take it over (fallbacks stay visible in the stats).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/actuary.h"
#include "core/scenarios.h"
#include "kernels/die_batch.h"
#include "kernels/kernels.h"
#include "tech/tech_library.h"
#include "wafer/die_cost.h"
#include "wafer/die_cost_cache.h"
#include "yield/models.h"

namespace chiplet {
namespace {

/// The distinct process technologies a batch of systems prices dies on:
/// every placement's node plus the interposer node of any interposer
/// packaging (the DieBatch registers exactly these).
std::set<std::string> distinct_pricing_nodes(
    const std::vector<design::System>& systems, const tech::TechLibrary& lib) {
    std::set<std::string> nodes;
    for (const design::System& system : systems) {
        for (const design::ChipPlacement& p : system.placements()) {
            nodes.insert(p.chip.node());
        }
        const tech::PackagingTech& pkg = lib.packaging(system.packaging());
        if (pkg.has_interposer()) nodes.insert(pkg.interposer_node);
    }
    return nodes;
}

TEST(DieBatchHoisting, OneTechSetupPerTechnologyPerBatch) {
    const core::ChipletActuary actuary;
    // 120 candidates over two logic nodes: the per-candidate loop must
    // not multiply setup work.
    std::vector<design::System> systems;
    for (int i = 0; i < 60; ++i) {
        systems.push_back(core::split_system("a" + std::to_string(i), "7nm",
                                             "MCM", 500.0 + i, 2, 0.10, 1e6));
        systems.push_back(core::split_system("b" + std::to_string(i), "12nm",
                                             "MCM", 400.0 + i, 3, 0.10, 1e6));
    }
    const std::size_t distinct =
        distinct_pricing_nodes(systems, actuary.library()).size();
    ASSERT_EQ(distinct, 2u);

    core::ChipletActuary::BatchStats stats;
    const auto costs = actuary.evaluate_batch(systems, stats);
    ASSERT_EQ(costs.size(), systems.size());
    EXPECT_EQ(stats.tech_setups, distinct)
        << "batch setup must scale with technologies, not candidates";
    EXPECT_EQ(stats.scalar_fallbacks, 0u)
        << "well-formed dies must be priced by the kernel batch";
    EXPECT_GT(stats.kernel_hits, 0u);
    // Each (node, area) pair occupies one deduped slot; 120 systems with
    // per-system unique areas keep the query count well under the die
    // count but far above the tech count.
    EXPECT_GE(stats.unique_die_queries, 120u);

    // A second batch is a fresh per-batch context: one setup per tech
    // again (not zero — the hoist is per batch, not a process-wide cache).
    core::ChipletActuary::BatchStats again;
    (void)actuary.evaluate_batch(systems, again);
    EXPECT_EQ(again.tech_setups, distinct);
}

TEST(DieBatchHoisting, InterposerNodeCountsAsOneMoreTechnology) {
    const core::ChipletActuary actuary;
    std::vector<design::System> systems;
    for (int i = 0; i < 40; ++i) {
        systems.push_back(core::split_system("c" + std::to_string(i), "7nm",
                                             "2.5D", 450.0 + i, 4, 0.10, 1e6));
    }
    const std::size_t distinct =
        distinct_pricing_nodes(systems, actuary.library()).size();
    ASSERT_EQ(distinct, 2u) << "7nm plus the 2.5D interposer node";

    core::ChipletActuary::BatchStats stats;
    (void)actuary.evaluate_batch(systems, stats);
    EXPECT_EQ(stats.tech_setups, distinct);
    EXPECT_EQ(stats.scalar_fallbacks, 0u);
}

TEST(DieBatchHoisting, BatchPathLeavesScalarModelSetupsUntouched) {
    const core::ChipletActuary actuary;
    std::vector<design::System> systems;
    for (int i = 0; i < 50; ++i) {
        systems.push_back(core::split_system("d" + std::to_string(i), "7nm",
                                             "MCM", 300.0 + i, 2, 0.10, 1e6));
    }
    // Batch-served dies never reach the scalar DieCostCache compute
    // path, so its model-construction counter must not move with the
    // candidate count.
    const std::uint64_t before =
        wafer::DieCostCache::global().stats().model_setups;
    core::ChipletActuary::BatchStats stats;
    (void)actuary.evaluate_batch(systems, stats);
    const std::uint64_t after =
        wafer::DieCostCache::global().stats().model_setups;
    EXPECT_EQ(stats.scalar_fallbacks, 0u);
    EXPECT_EQ(after, before)
        << "batch evaluation leaked die pricing into the scalar cache path";
}

TEST(DieBatch, FindIsBitIdenticalToScalarPriceDie) {
    const core::ChipletActuary actuary;
    const tech::TechLibrary& lib = actuary.library();
    const tech::ProcessNode& node = lib.node("7nm");
    const std::string yield_model = actuary.assumptions().yield_model;

    kernels::DieBatch batch(yield_model);
    const double areas[] = {12.5, 100.0, 300.0, 599.25, 820.0};
    for (double area : areas) batch.add(node, area);
    batch.add(node, areas[0]);  // duplicate dedups to the same slot
    batch.evaluate(kernels::active_table());

    const kernels::DieBatch::Stats stats = batch.stats();
    EXPECT_EQ(stats.tech_setups, 1u);
    EXPECT_EQ(stats.unique_queries, std::size(areas));

    const wafer::DieCostModel model(
        node.wafer_spec(), node.defect_density_cm2,
        yield::make_yield_model(yield_model, node.cluster_param));
    for (double area : areas) {
        const auto priced = batch.find(node, area);
        ASSERT_TRUE(priced.has_value()) << "area " << area;
        const wafer::DieCostBreakdown oracle = model.evaluate(area);
        const double oracle_raw =
            oracle.raw_cost_usd +
            (node.bump_cost_per_mm2 + node.test_cost_per_mm2) * area;
        EXPECT_EQ(priced->raw_usd, oracle_raw) << "area " << area;
        EXPECT_EQ(priced->yield, oracle.yield) << "area " << area;
    }
}

TEST(DieBatch, NonFittingAndUnknownQueriesFallBack) {
    const core::ChipletActuary actuary;
    const tech::ProcessNode& node = actuary.library().node("7nm");
    kernels::DieBatch batch(actuary.assumptions().yield_model);
    batch.add(node, 1.0e6);  // cannot fit any wafer
    batch.evaluate(kernels::active_table());
    EXPECT_FALSE(batch.find(node, 1.0e6).has_value())
        << "non-fitting dies defer to the scalar path's diagnostic";
    EXPECT_FALSE(batch.find(node, 123.0).has_value())
        << "unregistered queries are misses, not recomputations";
    EXPECT_GE(batch.stats().fallbacks, 2u);
}

}  // namespace
}  // namespace chiplet
