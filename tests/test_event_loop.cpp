// The event-driven actuaryd transport (serve/event_loop.h via
// serve/server.h): pipelined framing in both directions, protocol v1
// envelopes with id echo, the metrics/health verbs, bounded write
// backpressure against a slow reader, and idle-timeout disconnects.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/actuary.h"
#include "explore/pareto.h"
#include "explore/study.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/error.h"
#include "util/json.h"

namespace chiplet::serve {
namespace {

using namespace std::chrono_literals;

class EventLoopServerTest : public ::testing::Test {
protected:
    void start(ServerConfig config) {
        config.port = 0;  // ephemeral: parallel test runs never clash
        server_ = std::make_unique<StudyServer>(actuary_, config);
        server_->start();
    }

    void TearDown() override {
        if (server_) server_->stop();
    }

    [[nodiscard]] StudyClient connect(unsigned timeout_seconds = 30) const {
        return StudyClient("127.0.0.1", server_->port(), timeout_seconds);
    }

    const core::ChipletActuary actuary_;
    std::unique_ptr<StudyServer> server_;
};

TEST_F(EventLoopServerTest, ManyFramesInOneSegmentAnswerInOrder) {
    start({});
    StudyClient client = connect();
    // One write syscall carrying a whole burst: every frame must be
    // answered, in order, with its own id echoed back.
    constexpr int kBurst = 50;
    std::string burst;
    for (int i = 0; i < kBurst; ++i) {
        burst += R"({"v":1,"id":)" + std::to_string(i) + R"(,"verb":"ping"})";
        burst += kFrameDelimiter;
    }
    client.send_bytes(burst);
    for (int i = 0; i < kBurst; ++i) {
        const JsonValue response = JsonValue::parse(client.read_line());
        EXPECT_EQ(response.at("v").as_number(), 1.0);
        EXPECT_EQ(response.at("id").as_number(), static_cast<double>(i));
        EXPECT_TRUE(response.at("ok").as_bool());
    }

    // The loop saw the burst as pipelined frames, not 50 separate reads.
    const JsonValue metrics = client.metrics();
    EXPECT_GE(metrics.at("loop").at("pipelined_frames").as_number(), 1.0);
}

TEST_F(EventLoopServerTest, OneFrameAcrossManySegmentsStillParses) {
    start({});
    StudyClient client = connect();
    const std::string frame = R"({"v":1,"id":"sliced","verb":"ping"})";
    // Trickle the frame a few bytes per write; the server must buffer
    // across reads and answer exactly once at the delimiter.
    for (std::size_t i = 0; i < frame.size(); i += 5) {
        client.send_bytes(frame.substr(i, 5));
        std::this_thread::sleep_for(2ms);
    }
    client.send_bytes(std::string(1, kFrameDelimiter));
    const JsonValue response = JsonValue::parse(client.read_line());
    EXPECT_EQ(response.at("id").as_string(), "sliced");
    EXPECT_TRUE(response.at("ok").as_bool());
}

TEST_F(EventLoopServerTest, V0FramesStayUnversionedAndV1EchoesAnyIdType) {
    start({});
    StudyClient client = connect();

    // v0: byte-compatible — no "v", no "id" in the response.
    const JsonValue v0 = client.ping();
    EXPECT_FALSE(v0.contains("v"));
    EXPECT_FALSE(v0.contains("id"));

    // v1 with a string id; "op" spelling is accepted at v1 too.
    const JsonValue v1 =
        client.call(R"({"v":1,"id":"abc-123","op":"ping"})");
    EXPECT_EQ(v1.at("v").as_number(), 1.0);
    EXPECT_EQ(v1.at("id").as_string(), "abc-123");

    // v1 without an id is legal; the response then carries none.
    const JsonValue bare = client.call(R"({"v":1,"verb":"ping"})");
    EXPECT_EQ(bare.at("v").as_number(), 1.0);
    EXPECT_FALSE(bare.contains("id"));
}

TEST_F(EventLoopServerTest, UnknownVerbListsTheValidOnesAndEchoesTheId) {
    start({});
    StudyClient client = connect();
    const JsonValue response =
        client.call(R"({"v":1,"id":7,"verb":"explode"})");
    // The error still carries the envelope, so pipelined v1 clients can
    // match it to the request that caused it.
    EXPECT_EQ(response.at("id").as_number(), 7.0);
    EXPECT_EQ(response.at("error").at("code").as_string(), "parse");
    const std::string message =
        response.at("error").at("message").as_string();
    EXPECT_NE(message.find("explode"), std::string::npos);
    for (const char* verb :
         {"run", "ping", "stats", "metrics", "health", "shutdown"}) {
        EXPECT_NE(message.find(verb), std::string::npos) << verb;
    }

    const JsonValue version = client.call(R"({"v":2,"verb":"ping"})");
    EXPECT_EQ(version.at("error").at("code").as_string(), "parse");
    // An unsupported version cannot claim to be v1, so no envelope.
    EXPECT_FALSE(version.contains("v"));

    // The connection survives both errors.
    EXPECT_TRUE(client.ping().at("ok").as_bool());
}

TEST_F(EventLoopServerTest, MetricsAndHealthVerbsReportTheLoop) {
    start({});
    StudyClient client = connect();
    (void)client.ping();

    const JsonValue health = client.health();
    EXPECT_EQ(health.at("status").as_string(), "serving");
    EXPECT_GE(health.at("connections").as_number(), 1.0);

    const JsonValue metrics = client.metrics();
    EXPECT_GE(metrics.at("server").at("connections").as_number(), 1.0);
    const JsonValue& loop = metrics.at("loop");
    EXPECT_GE(loop.at("connections_live").as_number(), 1.0);
    EXPECT_EQ(loop.at("idle_disconnects").as_number(), 0.0);
    EXPECT_TRUE(metrics.at("cache").is_object());

    // In-process snapshot matches the verb's view of lifetime counters.
    const MetricsSnapshot snapshot = server_->metrics();
    EXPECT_GE(snapshot.connections, 1u);
    EXPECT_EQ(snapshot.idle_disconnects, 0u);
}

TEST_F(EventLoopServerTest, SlowReaderIsBoundedByWriteBackpressure) {
    ServerConfig config;
    config.max_output_bytes = 64 * 1024;
    start(config);

    // A response fat enough that a pipelined burst of them must exceed
    // the socket buffers plus the output bound many times over.
    explore::ParetoConfig pareto;
    for (int i = 0; i < 4000; ++i) {
        pareto.points.push_back(explore::ParetoPoint{
            static_cast<double>(i), static_cast<double>(8000 - i),
            static_cast<std::size_t>(i)});
    }
    explore::StudySpec spec;
    spec.name = "fat";
    spec.config = pareto;
    JsonValue request = JsonValue::parse(encode_run_request({&spec, 1}));
    constexpr int kBurst = 24;

    StudyClient slow = connect();
    std::string burst;
    for (int i = 0; i < kBurst; ++i) {
        request.set("v", 1);
        request.set("id", static_cast<double>(i));
        burst += request.dump();
        burst += kFrameDelimiter;
    }
    // Send from a helper thread: once the server pauses reading at the
    // output bound the kernel buffers fill and send_bytes blocks — the
    // main thread must be free to observe and later drain.
    std::thread sender([&] { slow.send_bytes(burst); });

    // Watch from a second connection until the slow reader's queue hits
    // the bound and the loop stops reading from it.
    StudyClient observer = connect();
    double stalls = 0.0;
    const auto deadline = std::chrono::steady_clock::now() + 20s;
    while (std::chrono::steady_clock::now() < deadline) {
        const JsonValue metrics = observer.metrics();
        stalls = metrics.at("loop").at("backpressure_stalls").as_number();
        if (stalls >= 1.0) break;
        std::this_thread::sleep_for(10ms);
    }
    EXPECT_GE(stalls, 1.0);

    // Drain everything: every response arrives, in order, and the worst
    // unsent backlog never exceeded the bound plus one in-flight
    // response (the one completion that may land while paused).
    std::size_t response_bytes = 0;
    for (int i = 0; i < kBurst; ++i) {
        const std::string line = slow.read_line();
        response_bytes = std::max(response_bytes, line.size() + 1);
        const JsonValue response = JsonValue::parse(line);
        EXPECT_EQ(response.at("id").as_number(), static_cast<double>(i));
        EXPECT_EQ(
            response.at("results").as_array().front().at("name").as_string(),
            "fat");
    }
    sender.join();
    const JsonValue metrics = observer.metrics();
    const double peak =
        metrics.at("loop").at("peak_output_queue_bytes").as_number();
    EXPECT_GE(peak, static_cast<double>(config.max_output_bytes));
    EXPECT_LE(peak, static_cast<double>(config.max_output_bytes +
                                        response_bytes));
}

TEST_F(EventLoopServerTest, IdleConnectionsAreDisconnected) {
    ServerConfig config;
    config.idle_timeout_ms = 100;
    start(config);

    StudyClient idle = connect();
    EXPECT_TRUE(idle.ping().at("ok").as_bool());
    // Silence past the timeout: the server must close the connection.
    EXPECT_THROW((void)idle.read_line(), Error);

    StudyClient busy = connect();
    double reaped = 0.0;
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (std::chrono::steady_clock::now() < deadline) {
        // This connection keeps itself alive by talking.
        const JsonValue metrics = busy.metrics();
        reaped = metrics.at("loop").at("idle_disconnects").as_number();
        if (reaped >= 1.0) break;
        std::this_thread::sleep_for(10ms);
    }
    EXPECT_GE(reaped, 1.0);
    EXPECT_TRUE(busy.ping().at("ok").as_bool());
}

TEST_F(EventLoopServerTest, HalfCloseAfterCompleteFramesStillAnswers) {
    start({});
    StudyClient client = connect();
    // Pipeline frames and immediately half-close: the server owes the
    // answers and must deliver them before dropping the connection.
    client.send_bytes(std::string(R"({"v":1,"id":1,"verb":"ping"})") +
                      kFrameDelimiter + R"({"v":1,"id":2,"verb":"ping"})" +
                      kFrameDelimiter);
    client.shutdown_write();
    EXPECT_EQ(JsonValue::parse(client.read_line()).at("id").as_number(), 1.0);
    EXPECT_EQ(JsonValue::parse(client.read_line()).at("id").as_number(), 2.0);
    EXPECT_THROW((void)client.read_line(), Error);  // then EOF
}

TEST_F(EventLoopServerTest, ClientTimeoutsAreTypedErrors) {
    start({});
    // A deadline on a silent connection surfaces as a typed timeout.
    StudyClient quiet("127.0.0.1", server_->port(),
                      ClientConfig{1000, 50, 0});
    try {
        (void)quiet.read_line();
        FAIL() << "read_line should have timed out";
    } catch (const ClientError& e) {
        EXPECT_EQ(e.code(), ClientErrorCode::timeout);
    }

    // A refused port surfaces as connect_failed, not a generic Error.
    server_->stop();
    const unsigned short dead_port = server_->port();
    try {
        StudyClient refused("127.0.0.1", dead_port, ClientConfig{1000, 0, 0});
        FAIL() << "connect should have been refused";
    } catch (const ClientError& e) {
        EXPECT_EQ(e.code(), ClientErrorCode::connect_failed);
    }
}

}  // namespace
}  // namespace chiplet::serve
