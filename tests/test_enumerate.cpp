#include "reuse/enumerate.h"

#include <gtest/gtest.h>

#include <set>

#include "util/error.h"
#include "util/math.h"

namespace chiplet::reuse {
namespace {

TEST(Enumerate, TwoTypesTwoSockets) {
    // size 1: {1,0},{0,1}; size 2: {2,0},{1,1},{0,2} -> 5 collocations.
    const auto all = enumerate_collocations(2, 2);
    EXPECT_EQ(all.size(), 5u);
    const std::set<Collocation> unique(all.begin(), all.end());
    EXPECT_EQ(unique.size(), all.size());
    EXPECT_TRUE(unique.count({1, 0}));
    EXPECT_TRUE(unique.count({1, 1}));
    EXPECT_TRUE(unique.count({0, 2}));
}

TEST(Enumerate, CountMatchesFormulaAcrossConfigs) {
    for (unsigned n = 1; n <= 6; ++n) {
        for (unsigned k = 1; k <= 4; ++k) {
            EXPECT_EQ(enumerate_collocations(n, k).size(), fsmc_system_count(n, k))
                << "n=" << n << " k=" << k;
        }
    }
}

TEST(Enumerate, PaperFig10LargestConfig) {
    // k=4 sockets, n=6 chiplets: the formula gives 209 (the paper text
    // says 119; see EXPERIMENTS.md).
    EXPECT_EQ(enumerate_collocations(6, 4).size(), 209u);
}

TEST(Enumerate, AllCollocationsWithinSocketBudget) {
    for (const Collocation& c : enumerate_collocations(4, 3)) {
        EXPECT_GE(occupied_sockets(c), 1u);
        EXPECT_LE(occupied_sockets(c), 3u);
        EXPECT_EQ(c.size(), 4u);  // counts vector covers all types
    }
}

TEST(Enumerate, NoDuplicates) {
    const auto all = enumerate_collocations(5, 4);
    const std::set<Collocation> unique(all.begin(), all.end());
    EXPECT_EQ(unique.size(), all.size());
}

TEST(Enumerate, DeterministicOrder) {
    EXPECT_EQ(enumerate_collocations(3, 2), enumerate_collocations(3, 2));
}

TEST(Enumerate, InvalidInputsThrow) {
    EXPECT_THROW((void)enumerate_collocations(0, 2), ParameterError);
    EXPECT_THROW((void)enumerate_collocations(2, 0), ParameterError);
}

TEST(OccupiedSockets, SumsCounts) {
    EXPECT_EQ(occupied_sockets({2, 0, 1}), 3u);
    EXPECT_EQ(occupied_sockets({0, 0, 0}), 0u);
}

TEST(CollocationName, Readable) {
    EXPECT_EQ(collocation_name({2, 0, 1}), "2xT1+1xT3");
    EXPECT_EQ(collocation_name({1, 0}), "1xT1");
    EXPECT_EQ(collocation_name({0, 0}), "empty");
}

}  // namespace
}  // namespace chiplet::reuse
