// Canonical spec identity (explore/spec_hash.h): the hash must be
// invariant to JSON field order and omitted defaults, distinct across
// study kinds and across differing configs, and stable across runs
// (documented FNV-1a vectors).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "explore/spec_hash.h"
#include "explore/study.h"
#include "explore/study_json.h"
#include "util/json.h"

namespace chiplet::explore {
namespace {

/// One default-config spec per StudyKind, all ten kinds.
std::vector<StudySpec> default_spec_per_kind() {
    std::vector<StudySpec> specs(10);
    specs[0].config = ReSweepConfig{};
    specs[1].config = QuantitySweepConfig{};
    specs[2].config = McStudyConfig{};
    specs[3].config = SensitivityStudyConfig{};
    specs[4].config = TornadoStudyConfig{};
    specs[5].config = BreakevenQuery{};
    specs[6].config = ParetoConfig{};
    specs[7].config = DecisionQuery{};
    specs[8].config = TimelineStudyConfig{};
    specs[9].config = DesignSpaceConfig{};
    for (std::size_t i = 0; i < specs.size(); ++i) {
        specs[i].name = "same_name";  // identity must come from the kind
    }
    return specs;
}

TEST(SpecHash, Fnv1a64MatchesReferenceVectors) {
    // Published FNV-1a 64-bit test vectors; a silent change to the hash
    // function would invalidate every persisted/wire identity.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(SpecHash, StableAcrossFieldOrderPermutations) {
    // The same study written with keys in three different orders, with
    // a tech override object also permuted.
    const char* variants[] = {
        R"({"name":"s","kind":"breakeven",
            "tech":{"nodes":[{"name":"7nm","defect_density_cm2":0.08,"wafer_cost_usd":9000}]},
            "config":{"axis":"area","node":"7nm","chiplets":2,"lo":50,"hi":900}})",
        R"({"kind":"breakeven","name":"s",
            "config":{"hi":900,"lo":50,"chiplets":2,"node":"7nm","axis":"area"},
            "tech":{"nodes":[{"name":"7nm","wafer_cost_usd":9000,"defect_density_cm2":0.08}]}})",
        R"({"config":{"chiplets":2,"axis":"area","hi":900,"node":"7nm","lo":50},
            "kind":"breakeven",
            "tech":{"nodes":[{"defect_density_cm2":0.08,"name":"7nm","wafer_cost_usd":9000}]},
            "name":"s"})",
    };
    std::set<std::string> canonicals;
    std::set<std::uint64_t> hashes;
    for (const char* text : variants) {
        const StudySpec spec =
            study_spec_from_json(JsonValue::parse(text), "perm");
        canonicals.insert(canonical_spec_json(spec));
        hashes.insert(spec_hash(spec));
    }
    EXPECT_EQ(canonicals.size(), 1u)
        << "field order leaked into the canonical form";
    EXPECT_EQ(hashes.size(), 1u);
}

TEST(SpecHash, OmittedDefaultsHashLikeExplicitDefaults) {
    // canonical form materialises every config field, so spelling a
    // default out must not create a second identity.
    const StudySpec terse = study_spec_from_json(
        JsonValue::parse(R"({"name":"q","kind":"quantity_sweep","config":{}})"),
        "terse");
    StudySpec expanded;
    expanded.name = "q";
    expanded.config = QuantitySweepConfig{};
    EXPECT_EQ(canonical_spec_json(terse), canonical_spec_json(expanded));
    EXPECT_EQ(spec_hash(terse), spec_hash(expanded));
}

TEST(SpecHash, DistinctAcrossAllTenKinds) {
    const std::vector<StudySpec> specs = default_spec_per_kind();
    ASSERT_EQ(specs.size(), 10u);
    std::set<std::uint64_t> hashes;
    for (const StudySpec& spec : specs) hashes.insert(spec_hash(spec));
    EXPECT_EQ(hashes.size(), specs.size())
        << "two study kinds collapsed onto one spec hash";
}

TEST(SpecHash, SensitiveToEveryIdentityComponent) {
    StudySpec base;
    base.name = "base";
    BreakevenQuery query;
    query.module_area_mm2 = 400.0;
    base.config = query;
    const std::uint64_t h0 = spec_hash(base);

    StudySpec renamed = base;
    renamed.name = "renamed";
    EXPECT_NE(spec_hash(renamed), h0);

    StudySpec retuned = base;
    query.module_area_mm2 = 401.0;
    retuned.config = query;
    EXPECT_NE(spec_hash(retuned), h0);

    StudySpec patched = base;
    patched.tech_overrides = JsonValue::parse(
        R"({"nodes":[{"name":"7nm","defect_density_cm2":0.05}]})");
    EXPECT_NE(spec_hash(patched), h0);
}

TEST(SpecHash, StableAcrossJsonRoundTrip) {
    // load -> save -> load must preserve identity for every kind.
    for (const StudySpec& spec : default_spec_per_kind()) {
        const StudySpec reloaded =
            study_spec_from_json(to_json(spec), "roundtrip");
        EXPECT_EQ(spec_hash(reloaded), spec_hash(spec))
            << to_string(spec.kind());
    }
}

}  // namespace
}  // namespace chiplet::explore
