// The study compiler (explore/study_graph.h): compiled batches are
// bit-identical to independent run_study calls for every study kind,
// under any thread count; cell and spec dedup counters are exact;
// cell identity is canonical (tech-override key order is irrelevant);
// one failing study never disturbs the rest of its batch.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "core/actuary.h"
#include "core/scenarios.h"
#include "explore/cell.h"
#include "explore/pareto.h"
#include "explore/spec_hash.h"
#include "explore/study.h"
#include "explore/study_cache.h"
#include "explore/study_graph.h"
#include "explore/study_json.h"
#include "explore/sweep.h"
#include "util/error.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace chiplet::explore {
namespace {

JsonDiffOptions exact_options() {
    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    exact.ignore_keys = {"meta"};  // run metadata varies run to run
    return exact;
}

ScenarioSpec mcm_scenario() {
    ScenarioSpec s;
    s.node = "5nm";
    s.packaging = "MCM";
    s.module_area_mm2 = 800.0;
    s.chiplets = 2;
    s.d2d_fraction = 0.10;
    s.quantity = 2e6;
    return s;
}

ReSweepConfig small_grid() {
    ReSweepConfig c;
    c.nodes = {"7nm", "5nm"};
    c.packagings = {"SoC", "MCM"};
    c.chiplet_counts = {2, 3};
    c.areas_mm2 = {200.0, 500.0};
    return c;
}

StudySpec quantity_spec(const std::string& name,
                        std::vector<double> quantities) {
    StudySpec spec;
    spec.name = name;
    QuantitySweepConfig c;
    c.packagings = {"SoC", "MCM"};
    c.quantities = std::move(quantities);
    spec.config = c;
    return spec;
}

/// A batch covering every kind, with deliberate cell overlap between
/// the enumerable entries and a windowed design_space shard.
std::vector<StudySpec> every_kind_batch() {
    std::vector<StudySpec> specs;

    StudySpec re;
    re.name = "re";
    re.config = small_grid();
    specs.push_back(re);

    // Overlaps "re": same grid minus one area, different study name.
    StudySpec re2 = re;
    re2.name = "re_overlap";
    ReSweepConfig narrow = small_grid();
    narrow.areas_mm2 = {200.0};
    re2.config = narrow;
    specs.push_back(re2);

    specs.push_back(quantity_spec("qty", {5e5, 2e6}));
    specs.push_back(quantity_spec("qty_overlap", {2e6, 1e7}));

    StudySpec mc;
    mc.name = "mc";
    McStudyConfig mcc;
    mcc.scenario = mcm_scenario();
    mcc.draws = 32;
    mcc.seed = 7;
    mc.config = mcc;
    specs.push_back(mc);

    StudySpec sens;
    sens.name = "sens";
    SensitivityStudyConfig sc;
    sc.scenario = mcm_scenario();
    sens.config = sc;
    specs.push_back(sens);

    StudySpec tor;
    tor.name = "tor";
    TornadoStudyConfig tc;
    tc.scenario = mcm_scenario();
    tor.config = tc;
    specs.push_back(tor);

    StudySpec brk;
    brk.name = "brk";
    brk.config = BreakevenQuery{};
    specs.push_back(brk);

    StudySpec par;
    par.name = "par";
    ParetoConfig pc;
    pc.points = {{1, 3, 0}, {2, 2, 1}, {3, 4, 2}};
    par.config = pc;
    specs.push_back(par);

    StudySpec rec;
    rec.name = "rec";
    DecisionQuery dq;
    dq.max_chiplets = 3;
    rec.config = dq;
    specs.push_back(rec);

    StudySpec tl;
    tl.name = "tl";
    TimelineStudyConfig tlc;
    tlc.scenario = mcm_scenario();
    tlc.months = 12.0;
    tlc.step_months = 3.0;
    tl.config = tlc;
    specs.push_back(tl);

    StudySpec ds;
    ds.name = "ds";
    DesignSpaceConfig dsc;
    dsc.module_area_mm2 = 600.0;
    dsc.nodes = {"7nm", "12nm"};
    dsc.chiplet_counts = {1, 2};
    dsc.packagings = {"SoC", "MCM"};
    dsc.top_k = 4;
    ds.config = dsc;
    specs.push_back(ds);

    // A dispatcher-style shard of the same space: window applied, so
    // the compiler must enumerate exactly the windowed systems.
    StudySpec ds_win = ds;
    ds_win.name = "ds_window";
    DesignSpaceConfig windowed = dsc;
    windowed.index_begin = 2;
    windowed.index_end = 7;
    ds_win.config = windowed;
    specs.push_back(ds_win);

    return specs;
}

class StudyGraphTest : public ::testing::Test {
protected:
    const core::ChipletActuary actuary_;
};

// ---- bit-identity -----------------------------------------------------------

TEST_F(StudyGraphTest, BatchMatchesIndependentRunsForEveryKind) {
    const std::vector<StudySpec> specs = every_kind_batch();
    const std::vector<StudyResult> batch = run_studies(actuary_, specs);
    ASSERT_EQ(batch.size(), specs.size());
    const JsonDiffOptions exact = exact_options();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(batch[i].name, specs[i].name);
        const StudyResult independent = run_study(actuary_, specs[i]);
        EXPECT_EQ(json_diff(to_json(batch[i]), to_json(independent), exact), "")
            << specs[i].name;
    }
}

TEST_F(StudyGraphTest, BatchIsThreadCountInvariant) {
    const std::vector<StudySpec> specs = every_kind_batch();
    util::ThreadPool::set_global_threads(1);
    const std::vector<StudyResult> serial = run_studies(actuary_, specs);
    util::ThreadPool::set_global_threads(4);
    const std::vector<StudyResult> parallel = run_studies(actuary_, specs);
    ASSERT_EQ(serial.size(), parallel.size());
    const JsonDiffOptions exact = exact_options();
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(json_diff(to_json(serial[i]), to_json(parallel[i]), exact),
                  "")
            << specs[i].name;
    }
}

// ---- counters ---------------------------------------------------------------

TEST_F(StudyGraphTest, CellAndSpecDedupCountersAreExact) {
    // qa and qb overlap in the 2e6 column (2 shared cells of 4 each);
    // the third spec is byte-identical to qa and must run zero cells.
    std::vector<StudySpec> specs;
    specs.push_back(quantity_spec("qa", {1e6, 2e6}));
    specs.push_back(quantity_spec("qb", {2e6, 4e6}));
    specs.push_back(quantity_spec("qa", {1e6, 2e6}));

    const StudyBatchOutcome outcome = run_studies_collecting(actuary_, specs);
    ASSERT_EQ(outcome.results.size(), 3u);
    EXPECT_TRUE(outcome.failures.empty());

    EXPECT_EQ(outcome.graph.studies, 3u);
    EXPECT_EQ(outcome.graph.spec_dedups, 1u);
    EXPECT_EQ(outcome.graph.tech_groups, 1u);
    EXPECT_EQ(outcome.graph.cell_refs, 8u);       // 4 + 4, alias adds none
    EXPECT_EQ(outcome.graph.unique_cells, 6u);    // 2e6 column shared
    EXPECT_EQ(outcome.graph.deduped_cells, 2u);
    EXPECT_DOUBLE_EQ(outcome.graph.dedup_ratio(), 2.0 / 8.0);

    // Every single-system evaluation of a fully enumerated sweep is a
    // memo hit; nothing is priced twice.
    EXPECT_EQ(outcome.results[0].run.cell_hits, 4u);
    EXPECT_EQ(outcome.results[0].run.cell_misses, 0u);
    EXPECT_EQ(outcome.results[1].run.cell_hits, 4u);
    EXPECT_EQ(outcome.results[1].run.cell_misses, 0u);

    // The duplicate is a copy of its primary, flagged as such.
    EXPECT_FALSE(outcome.results[0].run.from_batch_dedup);
    EXPECT_TRUE(outcome.results[2].run.from_batch_dedup);
    const JsonDiffOptions exact = exact_options();
    EXPECT_EQ(json_diff(to_json(outcome.results[2]),
                        to_json(outcome.results[0]), exact),
              "");
}

TEST_F(StudyGraphTest, ReSweepBaselineSharesTheNormalizationCell) {
    // A grid that contains the normalisation area re-uses the per-node
    // SoC baseline cell instead of pricing it twice.
    StudySpec spec;
    spec.name = "norm_overlap";
    ReSweepConfig c;
    c.nodes = {"7nm"};
    c.packagings = {"SoC"};
    c.chiplet_counts = {2};
    c.areas_mm2 = {c.normalization_area_mm2};
    spec.config = c;

    const StudyPlan plan = plan_studies(actuary_, {&spec, 1});
    ASSERT_EQ(plan.studies.size(), 1u);
    EXPECT_TRUE(plan.studies[0].enumerable);
    // 1 baseline + 1 grid cell enumerated, 1 unique after interning.
    EXPECT_EQ(plan.studies[0].cell_refs, 2u);
    EXPECT_EQ(plan.studies[0].new_cells, 1u);
    EXPECT_EQ(plan.stats.unique_cells, 1u);
    EXPECT_EQ(plan.stats.deduped_cells, 1u);
}

// ---- canonical identity -----------------------------------------------------

TEST_F(StudyGraphTest, TechOverrideKeyOrderDoesNotSplitGroups) {
    // Same override values, different JSON key order: one tech group,
    // full cell sharing, and payloads identical to independent runs.
    StudySpec a;
    a.name = "ta";
    a.config = small_grid();
    a.tech_overrides = JsonValue::parse(
        R"({"nodes":[{"name":"7nm","defect_density_cm2":0.05}]})");
    StudySpec b = a;
    b.name = "tb";
    b.tech_overrides = JsonValue::parse(
        R"({"nodes":[{"defect_density_cm2":0.05,"name":"7nm"}]})");
    const std::vector<StudySpec> specs = {a, b};

    const StudyPlan plan = plan_studies(actuary_, specs);
    ASSERT_EQ(plan.studies.size(), 2u);
    EXPECT_EQ(plan.stats.tech_groups, 1u);
    EXPECT_EQ(plan.stats.spec_dedups, 0u);  // names differ, specs do not
    EXPECT_NE(plan.studies[0].spec_hash, plan.studies[1].spec_hash);
    EXPECT_GT(plan.studies[0].new_cells, 0u);
    EXPECT_EQ(plan.studies[1].new_cells, 0u);  // every cell already interned
    EXPECT_EQ(plan.studies[1].cell_refs, plan.studies[0].cell_refs);

    const std::vector<StudyResult> batch = run_studies(actuary_, specs);
    const JsonDiffOptions exact = exact_options();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(json_diff(to_json(batch[i]),
                            to_json(run_study(actuary_, specs[i])), exact),
                  "")
            << specs[i].name;
    }
}

TEST_F(StudyGraphTest, CellHashIsStructuralIdentity) {
    const design::System a =
        core::split_system("cell", "5nm", "MCM", 800.0, 2, 0.10, 2e6);
    const design::System b =
        core::split_system("cell", "5nm", "MCM", 800.0, 2, 0.10, 2e6);
    EXPECT_EQ(cell_hash(CellEval::full, a), cell_hash(CellEval::full, b));
    // The eval entry point is part of the identity...
    EXPECT_NE(cell_hash(CellEval::full, a), cell_hash(CellEval::re_only, a));
    // ...and so is every result-determining field, names included
    // (SystemCost embeds them).
    const design::System qty =
        core::split_system("cell", "5nm", "MCM", 800.0, 2, 0.10, 4e6);
    EXPECT_NE(cell_hash(CellEval::full, a), cell_hash(CellEval::full, qty));
    const design::System renamed =
        core::split_system("other", "5nm", "MCM", 800.0, 2, 0.10, 2e6);
    EXPECT_NE(cell_hash(CellEval::full, a),
              cell_hash(CellEval::full, renamed));
}

// ---- planning ---------------------------------------------------------------

TEST_F(StudyGraphTest, PlanReportsDuplicatesAndOpaqueKinds) {
    std::vector<StudySpec> specs;
    StudySpec re;
    re.name = "re";
    re.config = small_grid();
    specs.push_back(re);
    specs.push_back(re);  // byte-identical duplicate

    StudySpec par;
    par.name = "par";
    ParetoConfig pc;
    pc.points = {{1, 3, 0}, {2, 2, 1}};
    par.config = pc;
    specs.push_back(par);

    const StudyPlan plan = plan_studies(actuary_, specs);
    ASSERT_EQ(plan.studies.size(), 3u);
    EXPECT_EQ(plan.stats.studies, 3u);
    EXPECT_EQ(plan.stats.spec_dedups, 1u);

    EXPECT_EQ(plan.studies[0].index, 0u);
    EXPECT_EQ(plan.studies[0].kind, StudyKind::re_sweep);
    EXPECT_EQ(plan.studies[0].spec_hash, spec_hash(re));
    EXPECT_FALSE(plan.studies[0].duplicate_spec);
    EXPECT_TRUE(plan.studies[0].enumerable);
    EXPECT_GT(plan.studies[0].cell_refs, 0u);

    EXPECT_TRUE(plan.studies[1].duplicate_spec);
    EXPECT_EQ(plan.studies[1].duplicate_of, 0u);
    EXPECT_EQ(plan.studies[1].spec_hash, plan.studies[0].spec_hash);
    EXPECT_EQ(plan.studies[1].cell_refs, 0u);  // served as a copy

    EXPECT_FALSE(plan.studies[2].enumerable);  // pareto runs no cost model
    EXPECT_EQ(plan.studies[2].cell_refs, 0u);

    // The plan's totals match the sum over entries.
    EXPECT_EQ(plan.stats.cell_refs, plan.studies[0].cell_refs);
    EXPECT_EQ(plan.stats.deduped_cells,
              plan.stats.cell_refs - plan.stats.unique_cells);
}

// ---- failure isolation ------------------------------------------------------

TEST_F(StudyGraphTest, OneBadStudyLeavesTheRestOfTheBatchIntact) {
    std::vector<StudySpec> specs;
    StudySpec good;
    good.name = "good";
    good.config = small_grid();
    specs.push_back(good);

    // Enumerates fine (the node is just a string in the system) but
    // every evaluation of it throws; the error must surface from this
    // study alone, with the engine's own message.
    StudySpec bad = good;
    bad.name = "bad";
    ReSweepConfig bad_grid = small_grid();
    bad_grid.nodes = {"not_a_node"};
    bad.config = bad_grid;
    specs.push_back(bad);

    StudySpec brk;
    brk.name = "brk";
    brk.config = BreakevenQuery{};
    specs.push_back(brk);

    const StudyBatchOutcome outcome = run_studies_collecting(actuary_, specs);
    ASSERT_EQ(outcome.results.size(), 2u);
    EXPECT_EQ(outcome.indices, (std::vector<std::size_t>{0, 2}));
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].index, 1u);
    EXPECT_EQ(outcome.failures[0].name, "bad");
    EXPECT_EQ(outcome.failures[0].stage, "model");
    EXPECT_NE(outcome.failures[0].message.find("not_a_node"),
              std::string::npos)
        << outcome.failures[0].message;

    const JsonDiffOptions exact = exact_options();
    EXPECT_EQ(json_diff(to_json(outcome.results[0]),
                        to_json(run_study(actuary_, good)), exact),
              "");
    EXPECT_EQ(json_diff(to_json(outcome.results[1]),
                        to_json(run_study(actuary_, brk)), exact),
              "");

    // The throwing wrapper preserves the original exception type.
    EXPECT_THROW((void)run_studies(actuary_, specs), LookupError);
}

// ---- cache interaction ------------------------------------------------------

TEST_F(StudyGraphTest, CacheHitsContributeNoCells) {
    std::vector<StudySpec> specs;
    specs.push_back(quantity_spec("qa", {1e6, 2e6}));
    StudyCache cache;

    const StudyBatchOutcome cold =
        run_studies_collecting(actuary_, specs, &cache);
    ASSERT_EQ(cold.results.size(), 1u);
    EXPECT_FALSE(cold.results[0].run.from_cache);
    EXPECT_EQ(cold.graph.cell_refs, 4u);

    const StudyBatchOutcome warm =
        run_studies_collecting(actuary_, specs, &cache);
    ASSERT_EQ(warm.results.size(), 1u);
    EXPECT_TRUE(warm.results[0].run.from_cache);
    // A cache hit skips compilation for that study entirely.
    EXPECT_EQ(warm.graph.cell_refs, 0u);
    EXPECT_EQ(warm.graph.unique_cells, 0u);

    const JsonDiffOptions exact = exact_options();
    EXPECT_EQ(json_diff(to_json(warm.results[0]), to_json(cold.results[0]),
                        exact),
              "");
}

}  // namespace
}  // namespace chiplet::explore
