// Metamorphic invariants of the cost model: relations between evaluations
// under controlled parameter transformations.  These pin the *structure*
// of the model, independent of any calibration values.
#include <gtest/gtest.h>

#include "core/actuary.h"
#include "core/scenarios.h"
#include "design/builder.h"

namespace chiplet {
namespace {

using core::ChipletActuary;
using core::monolithic_soc;
using core::split_system;

TEST(Metamorphic, WaferPriceScalesSiliconLinearly) {
    ChipletActuary base;
    ChipletActuary doubled;
    doubled.library().set_wafer_price(
        "7nm", 2.0 * base.library().node("7nm").wafer_price_usd);
    const auto system = split_system("s", "7nm", "MCM", 600.0, 2, 0.10, 1e6);
    const auto b = base.evaluate_re_only(system).re;
    const auto d = doubled.evaluate_re_only(system).re;
    // Silicon components scale by the wafer share (bump/test per-area
    // costs stay fixed), packaging unchanged.
    EXPECT_GT(d.raw_chips, 1.8 * b.raw_chips);
    EXPECT_LT(d.raw_chips, 2.0 * b.raw_chips);
    EXPECT_NEAR(d.raw_package, b.raw_package, 1e-9);
}

TEST(Metamorphic, ZeroDefectsKillDefectCosts) {
    ChipletActuary perfect;
    perfect.library().set_defect_density("7nm", 0.0);
    const auto soc = monolithic_soc("s", "7nm", 800.0, 1e6);
    const auto cost = perfect.evaluate_re_only(soc).re;
    EXPECT_DOUBLE_EQ(cost.chip_defects, 0.0);
    // With no die defects, a split can only add cost.
    const auto mcm = split_system("m", "7nm", "MCM", 800.0, 2, 0.10, 1e6);
    EXPECT_GT(perfect.evaluate_re_only(mcm).re.total(), cost.total());
}

TEST(Metamorphic, SplitWithoutOverheadApproachesPureYieldGain) {
    // With zero D2D, k small chiplets carry the same logic area but pack
    // *better* on the wafer (the classical DPW edge-loss term scales with
    // sqrt(die area)), so raw silicon gets cheaper — never pricier — and
    // stays within the edge-effect band.
    const ChipletActuary actuary;
    const auto soc = monolithic_soc("s", "7nm", 800.0, 1e6);
    const auto split = split_system("m", "7nm", "MCM", 800.0, 4, 0.0, 1e6);
    const double soc_raw = actuary.evaluate_re_only(soc).re.raw_chips;
    const double split_raw = actuary.evaluate_re_only(split).re.raw_chips;
    EXPECT_LE(split_raw, soc_raw);
    EXPECT_GT(split_raw, 0.8 * soc_raw);
    // And chip defects strictly improve.
    EXPECT_LT(actuary.evaluate_re_only(split).re.chip_defects,
              actuary.evaluate_re_only(soc).re.chip_defects);
}

TEST(Metamorphic, FamilyNreNeverExceedsSingletonSum) {
    // Evaluating systems together (shared designs) can only reduce total
    // NRE relative to evaluating each alone.
    const ChipletActuary actuary;
    const design::Chip chiplet =
        design::ChipBuilder("x", "7nm").module("xm", 200.0).d2d(0.1).build();
    const auto s1 =
        design::SystemBuilder("s1", "MCM").chips(chiplet, 2).quantity(5e5).build();
    const auto s2 =
        design::SystemBuilder("s2", "MCM").chips(chiplet, 4).quantity(5e5).build();

    design::SystemFamily together;
    together.add(s1);
    together.add(s2);
    const double joint = actuary.evaluate(together).nre_total();

    design::SystemFamily alone1;
    alone1.add(s1);
    design::SystemFamily alone2;
    alone2.add(s2);
    const double separate = actuary.evaluate(alone1).nre_total() +
                            actuary.evaluate(alone2).nre_total();
    EXPECT_LT(joint, separate);
}

TEST(Metamorphic, QuantityOnlyRescalesNre) {
    // total(q) = RE + NRE_family/q for a single-system family; verify the
    // hyperbola through three points.
    const ChipletActuary actuary;
    const auto at = [&](double q) {
        return actuary.evaluate(split_system("s", "5nm", "MCM", 800.0, 2, 0.10, q))
            .total_per_unit();
    };
    const double c1 = at(1e6);
    const double c2 = at(2e6);
    const double c4 = at(4e6);
    // (c1 - c2) should be twice (c2 - c4).
    EXPECT_NEAR((c1 - c2) / (c2 - c4), 2.0, 1e-6);
}

TEST(Metamorphic, PackageReuseLeavesLargestSystemReUnchanged) {
    const ChipletActuary actuary;
    const design::Chip chiplet =
        design::ChipBuilder("x", "7nm").module("xm", 200.0).d2d(0.1).build();
    const auto make = [&](bool reuse) {
        design::SystemFamily family;
        auto small = design::SystemBuilder("small", "MCM")
                         .chips(chiplet, 1).quantity(5e5);
        auto large = design::SystemBuilder("large", "MCM")
                         .chips(chiplet, 4).quantity(5e5);
        if (reuse) {
            small.package_design("pkg:shared");
            large.package_design("pkg:shared");
        }
        family.add(small.build());
        family.add(large.build());
        return actuary.evaluate(family);
    };
    const auto without = make(false);
    const auto with = make(true);
    // The largest member defines the shared package: its RE is identical.
    EXPECT_NEAR(with.systems[1].re.total(), without.systems[1].re.total(), 1e-9);
    // The small member pays for the oversized package.
    EXPECT_GT(with.systems[0].re.total(), without.systems[0].re.total());
}

TEST(Metamorphic, BondYieldOneKillsPackagingWaste) {
    ChipletActuary actuary;
    tech::PackagingTech mcm = actuary.library().packaging("MCM");
    mcm.chip_bond_yield = 1.0;
    mcm.substrate_bond_yield = 1.0;
    actuary.library().add_packaging(mcm);
    const auto system = split_system("s", "7nm", "MCM", 600.0, 3, 0.10, 1e6);
    const auto cost = actuary.evaluate_re_only(system).re;
    EXPECT_DOUBLE_EQ(cost.wasted_kgd, 0.0);
    EXPECT_DOUBLE_EQ(cost.package_defects, 0.0);
}

TEST(Metamorphic, DensityFactorConservesRetargetedCost) {
    // A module moved from 7nm to a hypothetical node with identical
    // parameters but double density: half the area at the same per-mm2
    // economics -> cheaper chip.
    ChipletActuary actuary;
    tech::ProcessNode dense = actuary.library().node("7nm");
    dense.name = "7nm_dense";
    dense.density_factor *= 2.0;
    actuary.library().add_node(dense);

    const design::Chip original =
        design::ChipBuilder("a", "7nm").module("m", 300.0, "7nm", true).build();
    const design::Chip retargeted = design::ChipBuilder("b", "7nm_dense")
                                        .module("m", 300.0, "7nm", true)
                                        .build();
    EXPECT_NEAR(retargeted.area(actuary.library()),
                original.area(actuary.library()) / 2.0, 1e-9);
    const auto sys_a = design::SystemBuilder("sa", "SoC").chip(original)
                           .quantity(1e6).build();
    const auto sys_b = design::SystemBuilder("sb", "SoC").chip(retargeted)
                           .quantity(1e6).build();
    EXPECT_LT(actuary.evaluate_re_only(sys_b).re.total(),
              actuary.evaluate_re_only(sys_a).re.total());
}

TEST(Metamorphic, SubstrateCostScalesPackageLinearly) {
    ChipletActuary base;
    ChipletActuary doubled;
    tech::PackagingTech mcm = doubled.library().packaging("MCM");
    const double base_substrate = mcm.substrate_cost_per_mm2;
    mcm.substrate_cost_per_mm2 = 2.0 * base_substrate;
    doubled.library().add_packaging(mcm);
    const auto system = split_system("s", "7nm", "MCM", 600.0, 2, 0.10, 1e6);
    const auto b = base.evaluate_re_only(system).re;
    const auto d = doubled.evaluate_re_only(system).re;
    // Substrate is part of raw_package alongside fixed bond/test costs:
    // the delta equals the substrate cost itself.
    const double substrate_cost = d.raw_package - b.raw_package;
    const tech::PackagingTech& tech = base.library().packaging("MCM");
    const double expected = system.total_die_area(base.library()) *
                            tech.package_area_factor * base_substrate *
                            tech.substrate_layer_factor;
    EXPECT_NEAR(substrate_cost, expected, expected * 1e-9);
    EXPECT_NEAR(d.raw_chips, b.raw_chips, 1e-9);
}

}  // namespace
}  // namespace chiplet
