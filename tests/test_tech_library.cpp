#include "tech/tech_library.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace chiplet::tech {
namespace {

TEST(Builtin, ContainsPaperTechnologies) {
    const TechLibrary lib = TechLibrary::builtin();
    for (const char* node : {"3nm", "5nm", "7nm", "10nm", "12nm", "14nm", "28nm",
                             "rdl", "si_interposer"}) {
        EXPECT_TRUE(lib.has_node(node)) << node;
    }
    for (const char* pkg : {"SoC", "MCM", "InFO", "2.5D"}) {
        EXPECT_TRUE(lib.has_packaging(pkg)) << pkg;
    }
}

TEST(Builtin, PaperFigure2DefectParameters) {
    const TechLibrary lib = TechLibrary::builtin();
    EXPECT_DOUBLE_EQ(lib.node("3nm").defect_density_cm2, 0.20);
    EXPECT_DOUBLE_EQ(lib.node("5nm").defect_density_cm2, 0.11);
    EXPECT_DOUBLE_EQ(lib.node("7nm").defect_density_cm2, 0.09);
    EXPECT_DOUBLE_EQ(lib.node("14nm").defect_density_cm2, 0.08);
    EXPECT_DOUBLE_EQ(lib.node("rdl").defect_density_cm2, 0.05);
    EXPECT_DOUBLE_EQ(lib.node("rdl").cluster_param, 3.0);
    EXPECT_DOUBLE_EQ(lib.node("si_interposer").defect_density_cm2, 0.06);
    EXPECT_DOUBLE_EQ(lib.node("si_interposer").cluster_param, 6.0);
}

TEST(Builtin, EconomicOrderingAcrossNodes) {
    const TechLibrary lib = TechLibrary::builtin();
    // Newer nodes: pricier wafers, pricier masks, denser transistors,
    // higher design cost.
    const auto& n14 = lib.node("14nm");
    const auto& n7 = lib.node("7nm");
    const auto& n5 = lib.node("5nm");
    EXPECT_LT(n14.wafer_price_usd, n7.wafer_price_usd);
    EXPECT_LT(n7.wafer_price_usd, n5.wafer_price_usd);
    EXPECT_LT(n14.mask_set_cost_usd, n7.mask_set_cost_usd);
    EXPECT_LT(n7.mask_set_cost_usd, n5.mask_set_cost_usd);
    EXPECT_LT(n14.density_factor, n7.density_factor);
    EXPECT_LT(n7.density_factor, n5.density_factor);
    EXPECT_LT(n14.module_nre_per_mm2, n7.module_nre_per_mm2);
    EXPECT_LT(n7.chip_nre_per_mm2, n5.chip_nre_per_mm2);
}

TEST(Builtin, PackagingOrderingMatchesFigure1) {
    const TechLibrary lib = TechLibrary::builtin();
    const auto& mcm = lib.packaging("MCM");
    const auto& info = lib.packaging("InFO");
    const auto& d25 = lib.packaging("2.5D");
    // Fig. 1: finer line space and more pins as we move MCM -> InFO -> 2.5D.
    EXPECT_GT(mcm.min_line_space_um, info.min_line_space_um);
    EXPECT_GT(info.min_line_space_um, d25.min_line_space_um);
    EXPECT_LT(mcm.max_pin_count, info.max_pin_count);
    EXPECT_LT(info.max_pin_count, d25.max_pin_count);
    // Interposer presence.
    EXPECT_FALSE(mcm.has_interposer());
    EXPECT_TRUE(info.has_interposer());
    EXPECT_TRUE(d25.has_interposer());
    EXPECT_EQ(info.interposer_node, "rdl");
    EXPECT_EQ(d25.interposer_node, "si_interposer");
}

TEST(Builtin, AllEntriesValidate) {
    const TechLibrary lib = TechLibrary::builtin();
    for (const auto& name : lib.node_names()) {
        EXPECT_NO_THROW(lib.node(name).validate()) << name;
    }
    for (const auto& name : lib.packaging_names()) {
        EXPECT_NO_THROW(lib.packaging(name).validate()) << name;
    }
}

TEST(TechLibrary, LookupUnknownThrows) {
    const TechLibrary lib = TechLibrary::builtin();
    EXPECT_THROW((void)lib.node("1nm"), LookupError);
    EXPECT_THROW((void)lib.packaging("4D"), LookupError);
}

TEST(TechLibrary, AddReplacesAndPreservesOrder) {
    TechLibrary lib = TechLibrary::builtin();
    const auto order_before = lib.node_names();
    ProcessNode n7 = lib.node("7nm");
    n7.wafer_price_usd = 7000.0;
    lib.add_node(n7);
    EXPECT_EQ(lib.node_names(), order_before);  // replaced, not appended
    EXPECT_DOUBLE_EQ(lib.node("7nm").wafer_price_usd, 7000.0);
}

TEST(TechLibrary, SettersMutate) {
    TechLibrary lib = TechLibrary::builtin();
    lib.set_defect_density("7nm", 0.13);
    EXPECT_DOUBLE_EQ(lib.node("7nm").defect_density_cm2, 0.13);
    lib.set_wafer_price("7nm", 8000.0);
    EXPECT_DOUBLE_EQ(lib.node("7nm").wafer_price_usd, 8000.0);
    lib.set_d2d_fraction("MCM", 0.15);
    EXPECT_DOUBLE_EQ(lib.packaging("MCM").d2d_area_fraction, 0.15);
}

TEST(TechLibrary, SettersValidate) {
    TechLibrary lib = TechLibrary::builtin();
    EXPECT_THROW(lib.set_defect_density("7nm", -0.1), ParameterError);
    EXPECT_THROW(lib.set_defect_density("1nm", 0.1), LookupError);
    EXPECT_THROW(lib.set_d2d_fraction("MCM", 1.0), ParameterError);
    EXPECT_THROW(lib.set_wafer_price("nope", 1.0), LookupError);
}

TEST(ProcessNode, RetargetAreaByDensity) {
    const TechLibrary lib = TechLibrary::builtin();
    const ProcessNode& n7 = lib.node("7nm");
    const ProcessNode& n14 = lib.node("14nm");
    // 7nm -> 14nm: area grows by density ratio (1.0 / 0.44).
    const double grown = n14.retarget_area(100.0, n7, true);
    EXPECT_NEAR(grown, 100.0 / 0.44, 1e-9);
    // Unscalable modules keep their area.
    EXPECT_DOUBLE_EQ(n14.retarget_area(100.0, n7, false), 100.0);
    // Same node: no change.
    EXPECT_DOUBLE_EQ(n7.retarget_area(100.0, n7, true), 100.0);
}

TEST(ProcessNode, FixedChipNre) {
    const TechLibrary lib = TechLibrary::builtin();
    const ProcessNode& n5 = lib.node("5nm");
    EXPECT_DOUBLE_EQ(n5.fixed_chip_nre_usd(),
                     n5.mask_set_cost_usd + n5.ip_fixed_cost_usd);
}

TEST(IntegrationType, StringRoundtrip) {
    for (const char* name : {"SoC", "MCM", "InFO", "2.5D", "3D"}) {
        EXPECT_EQ(to_string(integration_type_from_string(name)), name);
    }
    EXPECT_EQ(integration_type_from_string("cowos"), IntegrationType::interposer);
    EXPECT_EQ(integration_type_from_string("SOC"), IntegrationType::soc);
    EXPECT_EQ(integration_type_from_string("soic"), IntegrationType::stacked_3d);
    EXPECT_THROW((void)integration_type_from_string("4D"), LookupError);
}

TEST(IntegrationType, UnknownTypeNamesTokenAndChoices) {
    try {
        (void)integration_type_from_string("4D");
        FAIL() << "expected LookupError";
    } catch (const LookupError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("'4D'"), std::string::npos) << what;
        for (const char* choice : {"SoC", "MCM", "InFO", "2.5D", "3D"}) {
            EXPECT_NE(what.find(choice), std::string::npos) << what;
        }
    }
    try {
        (void)packaging_flow_from_string("sideways");
        FAIL() << "expected LookupError";
    } catch (const LookupError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("'sideways'"), std::string::npos) << what;
        EXPECT_NE(what.find("chip_first"), std::string::npos) << what;
        EXPECT_NE(what.find("chip_last"), std::string::npos) << what;
    }
}

TEST(PackagingFlow, StringRoundtrip) {
    EXPECT_EQ(packaging_flow_from_string("chip_first"), PackagingFlow::chip_first);
    EXPECT_EQ(packaging_flow_from_string("chip-last"), PackagingFlow::chip_last);
    EXPECT_EQ(to_string(PackagingFlow::chip_last), "chip_last");
    EXPECT_THROW((void)packaging_flow_from_string("die-first"), LookupError);
}

TEST(PackagingTech, ValidationRules) {
    const TechLibrary lib = TechLibrary::builtin();
    PackagingTech bad = lib.packaging("MCM");
    bad.chip_bond_yield = 1.5;
    EXPECT_THROW(bad.validate(), ParameterError);
    bad = lib.packaging("MCM");
    bad.d2d_area_fraction = 1.0;
    EXPECT_THROW(bad.validate(), ParameterError);
    bad = lib.packaging("2.5D");
    bad.interposer_node.clear();
    EXPECT_THROW(bad.validate(), ParameterError);
    bad = lib.packaging("SoC");
    bad.interposer_node = "rdl";
    EXPECT_THROW(bad.validate(), ParameterError);
    bad = lib.packaging("SoC");
    bad.d2d_area_fraction = 0.1;
    EXPECT_THROW(bad.validate(), ParameterError);
}

}  // namespace
}  // namespace chiplet::tech
