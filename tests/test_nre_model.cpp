#include "core/nre_model.h"

#include <gtest/gtest.h>

#include "core/scenarios.h"
#include "design/builder.h"
#include "util/error.h"

namespace chiplet::core {
namespace {

class NreModelTest : public ::testing::Test {
protected:
    tech::TechLibrary lib_ = tech::TechLibrary::builtin();
    Assumptions assumptions_;
    NreModel model_{lib_, assumptions_};
};

TEST_F(NreModelTest, ChipDesignCostIsEquationSix) {
    const design::Chip chip("c", "5nm",
                            {design::Module{"m", 720.0, "5nm", true}}, 0.10);
    const tech::ProcessNode& node = lib_.node("5nm");
    const double expected =
        node.chip_nre_per_mm2 * (720.0 / 0.9) + node.fixed_chip_nre_usd();
    EXPECT_NEAR(model_.chip_design_cost(chip), expected, 1e-6);
}

TEST_F(NreModelTest, ModuleDesignCostUsesOwnNode) {
    const design::Module m{"m", 100.0, "14nm", true};
    EXPECT_DOUBLE_EQ(model_.module_design_cost(m),
                     lib_.node("14nm").module_nre_per_mm2 * 100.0);
}

TEST_F(NreModelTest, PackageDesignCostIncludesInterposerMasks) {
    const double organic = model_.package_design_cost("MCM", 500.0);
    const double d25 = model_.package_design_cost("2.5D", 500.0);
    const tech::PackagingTech& mcm = lib_.packaging("MCM");
    EXPECT_NEAR(organic,
                mcm.package_nre_per_mm2 * mcm.package_area_factor * 500.0 +
                    mcm.package_fixed_nre_usd,
                1e-6);
    // 2.5D additionally carries the interposer mask set.
    const tech::PackagingTech& pkg25 = lib_.packaging("2.5D");
    EXPECT_NEAR(d25,
                pkg25.package_nre_per_mm2 * pkg25.package_area_factor * 500.0 +
                    pkg25.package_fixed_nre_usd +
                    lib_.node("si_interposer").mask_set_cost_usd,
                1e-6);
}

TEST_F(NreModelTest, AmortisationConservesTotals) {
    // Sum over systems of per-unit NRE * quantity == family NRE totals.
    design::SystemFamily family;
    family.add(split_system("a", "7nm", "MCM", 400.0, 2, 0.10, 5e5));
    family.add(split_system("b", "7nm", "MCM", 600.0, 3, 0.10, 2e6));
    const NreResult result = model_.evaluate(family);
    double modules = 0.0;
    double chips = 0.0;
    double packages = 0.0;
    double d2d = 0.0;
    for (std::size_t i = 0; i < family.systems().size(); ++i) {
        const double q = family.systems()[i].quantity();
        modules += result.per_system[i].modules * q;
        chips += result.per_system[i].chips * q;
        packages += result.per_system[i].packages * q;
        d2d += result.per_system[i].d2d * q;
    }
    EXPECT_NEAR(modules, result.modules_total, result.modules_total * 1e-9);
    EXPECT_NEAR(chips, result.chips_total, result.chips_total * 1e-9);
    EXPECT_NEAR(packages, result.packages_total, result.packages_total * 1e-9);
    EXPECT_NEAR(d2d, result.d2d_total, result.d2d_total * 1e-9);
}

TEST_F(NreModelTest, ChipReuseSharesDesignCost) {
    // Two systems placing the same chiplet: chip NRE counted once.
    const design::Chip chiplet =
        design::ChipBuilder("x", "7nm").module("xm", 200.0).d2d(0.1).build();
    design::SystemFamily reusing;
    reusing.add(design::SystemBuilder("s1", "MCM").chips(chiplet, 1).quantity(5e5).build());
    reusing.add(design::SystemBuilder("s2", "MCM").chips(chiplet, 4).quantity(5e5).build());

    const design::Chip other =
        design::ChipBuilder("y", "7nm").module("ym", 200.0).d2d(0.1).build();
    design::SystemFamily separate;
    separate.add(design::SystemBuilder("s1", "MCM").chips(chiplet, 1).quantity(5e5).build());
    separate.add(design::SystemBuilder("s2", "MCM").chips(other, 4).quantity(5e5).build());

    const NreResult shared = model_.evaluate(reusing);
    const NreResult unshared = model_.evaluate(separate);
    EXPECT_LT(shared.chips_total, unshared.chips_total);
    EXPECT_LT(shared.modules_total, unshared.modules_total);
}

TEST_F(NreModelTest, AmortisationProportionalToInstanceCount) {
    // s2 places 4 chiplets, s1 places 1; per-unit chip NRE share of s2
    // must be 4x that of s1 (same quantity).
    const design::Chip chiplet =
        design::ChipBuilder("x", "7nm").module("xm", 200.0).d2d(0.1).build();
    design::SystemFamily family;
    family.add(design::SystemBuilder("s1", "MCM").chips(chiplet, 1).quantity(5e5).build());
    family.add(design::SystemBuilder("s2", "MCM").chips(chiplet, 4).quantity(5e5).build());
    const NreResult result = model_.evaluate(family);
    EXPECT_NEAR(result.per_system[1].chips, 4.0 * result.per_system[0].chips,
                1e-9);
    EXPECT_NEAR(result.per_system[1].d2d, 4.0 * result.per_system[0].d2d, 1e-9);
}

TEST_F(NreModelTest, D2dNreOncePerNode) {
    // Chiplets at two nodes: two D2D designs; at one node: one design.
    const design::Chip a =
        design::ChipBuilder("a", "7nm").module("am", 100.0).d2d(0.1).build();
    const design::Chip b =
        design::ChipBuilder("b", "7nm").module("bm", 100.0).d2d(0.1).build();
    const design::Chip c =
        design::ChipBuilder("c", "14nm").module("cm", 100.0).d2d(0.1).build();

    design::SystemFamily same_node;
    same_node.add(design::SystemBuilder("s", "MCM").chip(a).chip(b).quantity(1e6).build());
    design::SystemFamily two_nodes;
    two_nodes.add(design::SystemBuilder("s", "MCM").chip(a).chip(c).quantity(1e6).build());

    EXPECT_DOUBLE_EQ(model_.evaluate(same_node).d2d_total,
                     lib_.node("7nm").d2d_nre_usd);
    EXPECT_DOUBLE_EQ(model_.evaluate(two_nodes).d2d_total,
                     lib_.node("7nm").d2d_nre_usd + lib_.node("14nm").d2d_nre_usd);
}

TEST_F(NreModelTest, SocHasNoD2dNre) {
    design::SystemFamily family;
    family.add(monolithic_soc("s", "7nm", 500.0, 1e6));
    EXPECT_DOUBLE_EQ(model_.evaluate(family).d2d_total, 0.0);
}

TEST_F(NreModelTest, PackageReuseSharesPackageNre) {
    const design::Chip chiplet =
        design::ChipBuilder("x", "7nm").module("xm", 200.0).d2d(0.1).build();
    design::SystemFamily shared;
    shared.add(design::SystemBuilder("s1", "MCM").chips(chiplet, 1).quantity(5e5)
                   .package_design("pkg:shared").build());
    shared.add(design::SystemBuilder("s2", "MCM").chips(chiplet, 4).quantity(5e5)
                   .package_design("pkg:shared").build());
    design::SystemFamily private_pkgs;
    private_pkgs.add(design::SystemBuilder("s1", "MCM").chips(chiplet, 1).quantity(5e5).build());
    private_pkgs.add(design::SystemBuilder("s2", "MCM").chips(chiplet, 4).quantity(5e5).build());

    const NreResult shared_result = model_.evaluate(shared);
    const NreResult private_result = model_.evaluate(private_pkgs);
    EXPECT_LT(shared_result.packages_total, private_result.packages_total);
    // The shared package is sized for the larger (4x) system.
    EXPECT_NEAR(shared_result.packages_total,
                model_.package_design_cost(
                    "MCM", 4.0 * 200.0 / 0.9),
                1.0);
}

TEST_F(NreModelTest, PackageDesignAcrossTechnologiesThrows) {
    const design::Chip chiplet =
        design::ChipBuilder("x", "7nm").module("xm", 200.0).d2d(0.1).build();
    design::SystemFamily family;
    family.add(design::SystemBuilder("s1", "MCM").chips(chiplet, 2).quantity(5e5)
                   .package_design("pkg:conflict").build());
    family.add(design::SystemBuilder("s2", "2.5D").chips(chiplet, 2).quantity(5e5)
                   .package_design("pkg:conflict").build());
    EXPECT_THROW((void)resolve_package_design_areas(family, lib_), ParameterError);
}

TEST_F(NreModelTest, EmptyFamilyThrows) {
    EXPECT_THROW((void)model_.evaluate(design::SystemFamily{}), ParameterError);
}

TEST_F(NreModelTest, ResolveDesignAreasTakesMax) {
    const design::Chip chiplet =
        design::ChipBuilder("x", "7nm").module("xm", 200.0).d2d(0.1).build();
    design::SystemFamily family;
    family.add(design::SystemBuilder("s1", "MCM").chips(chiplet, 1).quantity(5e5)
                   .package_design("pkg:shared").build());
    family.add(design::SystemBuilder("s2", "MCM").chips(chiplet, 4).quantity(5e5)
                   .package_design("pkg:shared").build());
    const auto areas = resolve_package_design_areas(family, lib_);
    EXPECT_NEAR(areas.at("pkg:shared"), 4.0 * 200.0 / 0.9, 1e-9);
}

}  // namespace
}  // namespace chiplet::core
