#include "tech/json_io.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace chiplet::tech {
namespace {

TEST(TechJson, NodeRoundtrip) {
    const TechLibrary lib = TechLibrary::builtin();
    const ProcessNode& original = lib.node("5nm");
    const ProcessNode restored = process_node_from_json(to_json(original));
    EXPECT_EQ(restored.name, original.name);
    EXPECT_DOUBLE_EQ(restored.defect_density_cm2, original.defect_density_cm2);
    EXPECT_DOUBLE_EQ(restored.cluster_param, original.cluster_param);
    EXPECT_DOUBLE_EQ(restored.wafer_price_usd, original.wafer_price_usd);
    EXPECT_DOUBLE_EQ(restored.density_factor, original.density_factor);
    EXPECT_DOUBLE_EQ(restored.mask_set_cost_usd, original.mask_set_cost_usd);
    EXPECT_DOUBLE_EQ(restored.module_nre_per_mm2, original.module_nre_per_mm2);
    EXPECT_DOUBLE_EQ(restored.chip_nre_per_mm2, original.chip_nre_per_mm2);
    EXPECT_DOUBLE_EQ(restored.d2d_nre_usd, original.d2d_nre_usd);
}

TEST(TechJson, PackagingRoundtrip) {
    const TechLibrary lib = TechLibrary::builtin();
    for (const auto& name : lib.packaging_names()) {
        const PackagingTech& original = lib.packaging(name);
        const PackagingTech restored = packaging_tech_from_json(to_json(original));
        EXPECT_EQ(restored.name, original.name);
        EXPECT_EQ(restored.type, original.type);
        EXPECT_DOUBLE_EQ(restored.chip_bond_yield, original.chip_bond_yield);
        EXPECT_DOUBLE_EQ(restored.substrate_bond_yield,
                         original.substrate_bond_yield);
        EXPECT_EQ(restored.interposer_node, original.interposer_node);
        EXPECT_DOUBLE_EQ(restored.package_base_cost_usd,
                         original.package_base_cost_usd);
        EXPECT_DOUBLE_EQ(restored.d2d_area_fraction, original.d2d_area_fraction);
    }
}

TEST(TechJson, LibraryRoundtripPreservesCatalogue) {
    const TechLibrary lib = TechLibrary::builtin();
    const TechLibrary restored = tech_library_from_json(to_json(lib));
    EXPECT_EQ(restored.node_names(), lib.node_names());
    EXPECT_EQ(restored.packaging_names(), lib.packaging_names());
    EXPECT_DOUBLE_EQ(restored.node("7nm").wafer_price_usd,
                     lib.node("7nm").wafer_price_usd);
}

TEST(TechJson, MissingFieldsDefault) {
    const ProcessNode n = process_node_from_json(
        JsonValue::parse(R"({"name":"x","defect_density_cm2":0.1})"));
    EXPECT_EQ(n.name, "x");
    EXPECT_DOUBLE_EQ(n.defect_density_cm2, 0.1);
    EXPECT_DOUBLE_EQ(n.cluster_param, 10.0);        // struct default
    EXPECT_DOUBLE_EQ(n.wafer_diameter_mm, 300.0);   // struct default
}

TEST(TechJson, MissingNameThrows) {
    // The JsonReader error format names the offending key and context.
    try {
        (void)process_node_from_json(JsonValue::parse("{}"));
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("'name'"), std::string::npos);
    }
}

TEST(TechJson, OutOfDomainValueThrows) {
    EXPECT_THROW((void)process_node_from_json(JsonValue::parse(
                     R"({"name":"x","defect_density_cm2":-1})")),
                 ParameterError);
    EXPECT_THROW((void)packaging_tech_from_json(JsonValue::parse(
                     R"({"name":"x","type":"mcm","chip_bond_yield":2})")),
                 ParameterError);
}

TEST(TechJson, FileRoundtrip) {
    const std::string path = testing::TempDir() + "chiplet_tech_test.json";
    save_tech_library(TechLibrary::builtin(), path);
    const TechLibrary loaded = load_tech_library(path);
    EXPECT_TRUE(loaded.has_node("5nm"));
    EXPECT_TRUE(loaded.has_packaging("2.5D"));
    EXPECT_DOUBLE_EQ(loaded.packaging("2.5D").substrate_bond_yield,
                     TechLibrary::builtin().packaging("2.5D").substrate_bond_yield);
}

TEST(TechJson, EmptyDocumentGivesEmptyLibrary) {
    const TechLibrary lib = tech_library_from_json(JsonValue::parse("{}"));
    EXPECT_TRUE(lib.node_names().empty());
    EXPECT_TRUE(lib.packaging_names().empty());
}

}  // namespace
}  // namespace chiplet::tech
