// The batch-evaluation engine's core promise: running the exploration
// layer on the thread pool changes wall time, never results.  Every
// comparison here is bitwise (EXPECT_EQ on doubles), not approximate.
#include <gtest/gtest.h>

#include "core/scenarios.h"
#include "explore/breakeven.h"
#include "explore/montecarlo.h"
#include "explore/optimizer.h"
#include "explore/pareto.h"
#include "explore/rng.h"
#include "explore/sensitivity.h"
#include "explore/sweep.h"
#include "util/thread_pool.h"
#include "wafer/die_cost_cache.h"

namespace chiplet::explore {
namespace {

/// Runs `fn` with a serial global pool, then with a 4-way pool, and
/// returns both results for comparison.
template <typename Fn>
auto serial_and_parallel(Fn&& fn) {
    util::ThreadPool::set_global_threads(1);
    auto serial = fn();
    util::ThreadPool::set_global_threads(4);
    auto parallel = fn();
    return std::make_pair(std::move(serial), std::move(parallel));
}

TEST(ParallelDeterminism, MonteCarloSamplesBitIdentical) {
    const core::ChipletActuary actuary;
    const auto system = core::monolithic_soc("s", "5nm", 600.0, 1e6);
    const auto sampler = default_sampler("5nm", "SoC");
    const auto [serial, parallel] = serial_and_parallel(
        [&] { return monte_carlo(actuary, system, sampler, 200, 1234); });
    EXPECT_EQ(serial.samples, parallel.samples);
    EXPECT_EQ(serial.mean, parallel.mean);
    EXPECT_EQ(serial.p05, parallel.p05);
    EXPECT_EQ(serial.p95, parallel.p95);
}

TEST(ParallelDeterminism, WinRateBitIdentical) {
    const core::ChipletActuary actuary;
    const auto soc = core::monolithic_soc("soc", "5nm", 400.0, 1e6);
    const auto mcm = core::split_system("mcm", "5nm", "MCM", 400.0, 2, 0.10, 1e6);
    const auto sampler = default_sampler("5nm", "MCM");
    const auto [serial, parallel] = serial_and_parallel(
        [&] { return win_rate(actuary, mcm, soc, sampler, 200, 7); });
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelDeterminism, ReSweepGridBitIdentical) {
    const core::ChipletActuary actuary;
    const auto [serial, parallel] =
        serial_and_parallel([&] { return sweep_re_grid(actuary); });
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].node, parallel[i].node);
        EXPECT_EQ(serial[i].packaging, parallel[i].packaging);
        EXPECT_EQ(serial[i].chiplets, parallel[i].chiplets);
        EXPECT_EQ(serial[i].area_mm2, parallel[i].area_mm2);
        EXPECT_EQ(serial[i].re.total(), parallel[i].re.total());
        EXPECT_EQ(serial[i].normalized, parallel[i].normalized);
    }
}

TEST(ParallelDeterminism, QuantitySweepBitIdentical) {
    const core::ChipletActuary actuary;
    const auto [serial, parallel] = serial_and_parallel([&] {
        return sweep_total_vs_quantity(actuary, "7nm", 600.0, 3, 0.10,
                                       {"SoC", "MCM", "2.5D"}, {5e5, 2e6, 1e7});
    });
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].packaging, parallel[i].packaging);
        EXPECT_EQ(serial[i].cost.total_per_unit(), parallel[i].cost.total_per_unit());
    }
}

TEST(ParallelDeterminism, EvaluateBatchMatchesScalarLoop) {
    util::ThreadPool::set_global_threads(4);
    const core::ChipletActuary actuary;
    std::vector<design::System> systems;
    for (double area : {100.0, 300.0, 500.0, 700.0}) {
        systems.push_back(core::monolithic_soc("soc", "7nm", area, 1e6));
        systems.push_back(
            core::split_system("mcm", "7nm", "MCM", area, 3, 0.10, 1e6));
    }
    const auto batch = actuary.evaluate_batch(systems);
    ASSERT_EQ(batch.size(), systems.size());
    for (std::size_t i = 0; i < systems.size(); ++i) {
        const auto scalar = actuary.evaluate(systems[i]);
        EXPECT_EQ(batch[i].total_per_unit(), scalar.total_per_unit());
        EXPECT_EQ(batch[i].re.total(), scalar.re.total());
        EXPECT_EQ(batch[i].nre.total(), scalar.nre.total());
    }
}

TEST(ParallelDeterminism, RecommendationBitIdentical) {
    const core::ChipletActuary actuary;
    const auto [serial, parallel] =
        serial_and_parallel([&] { return recommend(actuary, DecisionQuery{}); });
    ASSERT_EQ(serial.options.size(), parallel.options.size());
    for (std::size_t i = 0; i < serial.options.size(); ++i) {
        EXPECT_EQ(serial.options[i].packaging, parallel.options[i].packaging);
        EXPECT_EQ(serial.options[i].chiplets, parallel.options[i].chiplets);
        EXPECT_EQ(serial.options[i].total_per_unit(),
                  parallel.options[i].total_per_unit());
    }
}

TEST(ParallelDeterminism, SensitivityAndTornadoBitIdentical) {
    const core::ChipletActuary actuary;
    const auto system = core::split_system("s", "7nm", "2.5D", 500.0, 3, 0.10, 1e6);
    const auto params = default_parameters("7nm", "2.5D");
    {
        const auto [serial, parallel] = serial_and_parallel(
            [&] { return sensitivity_analysis(actuary, system, params); });
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].parameter, parallel[i].parameter);
            EXPECT_EQ(serial[i].elasticity, parallel[i].elasticity);
        }
    }
    {
        const auto [serial, parallel] = serial_and_parallel(
            [&] { return tornado_analysis(actuary, system, params); });
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].parameter, parallel[i].parameter);
            EXPECT_EQ(serial[i].cost_low, parallel[i].cost_low);
            EXPECT_EQ(serial[i].cost_high, parallel[i].cost_high);
        }
    }
}

TEST(ParallelDeterminism, BreakevenBitIdentical) {
    const core::ChipletActuary actuary;
    const auto [serial, parallel] = serial_and_parallel([&] {
        return breakeven_quantity(actuary, "5nm", 800.0, 2, "MCM", 0.10);
    });
    EXPECT_EQ(serial.found, parallel.found);
    EXPECT_EQ(serial.value, parallel.value);
    EXPECT_EQ(serial.soc_cost, parallel.soc_cost);
    EXPECT_EQ(serial.alt_cost, parallel.alt_cost);
}

TEST(ParallelDeterminism, ParetoFrontChunkedMatchesSerial) {
    // Enough points to cross the parallel threshold inside pareto_front.
    std::vector<ParetoPoint> points;
    Rng rng(2024);
    for (std::size_t i = 0; i < 50000; ++i) {
        points.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0), i});
    }
    const auto [serial, parallel] =
        serial_and_parallel([&] { return pareto_front(points); });
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].x, parallel[i].x);
        EXPECT_EQ(serial[i].y, parallel[i].y);
        EXPECT_EQ(serial[i].index, parallel[i].index);
    }
}

TEST(ParallelDeterminism, RngStreamsIndependentOfEachOther) {
    // Stream i must not depend on how many values stream j consumed.
    Rng a0 = Rng::stream(99, 0);
    for (int i = 0; i < 100; ++i) (void)a0.uniform();
    Rng a1 = Rng::stream(99, 1);
    Rng b1 = Rng::stream(99, 1);
    EXPECT_EQ(a1.next(), b1.next());
    // And different streams diverge.
    Rng c0 = Rng::stream(99, 0);
    Rng c1 = Rng::stream(99, 1);
    EXPECT_NE(c0.next(), c1.next());
}

TEST(DieCostCache, HitReturnsIdenticalBreakdown) {
    auto& cache = wafer::DieCostCache::global();
    cache.clear();
    wafer::DieCostQuery query;
    query.wafer = {300.0, 3.0, 0.1, 17000.0};
    query.defects_per_cm2 = 0.1;
    query.yield_model = "seeds_negative_binomial";
    query.cluster_param = 10.0;
    query.die_area_mm2 = 123.0;

    const auto before = cache.stats();
    const auto first = cache.evaluate(query);
    const auto second = cache.evaluate(query);
    const auto after = cache.stats();
    EXPECT_EQ(first.good_cost_usd, second.good_cost_usd);
    EXPECT_EQ(first.yield, second.yield);
    EXPECT_GE(after.hits, before.hits + 1);
    EXPECT_GE(after.entries, 1u);

    // Bypassing the cache computes the same numbers.
    cache.set_enabled(false);
    const auto direct = cache.evaluate(query);
    cache.set_enabled(true);
    EXPECT_EQ(first.good_cost_usd, direct.good_cost_usd);
    EXPECT_EQ(first.raw_cost_usd, direct.raw_cost_usd);
    EXPECT_EQ(first.dies_per_wafer, direct.dies_per_wafer);
}

TEST(DieCostCache, CachedSweepMatchesUncachedSweep) {
    const core::ChipletActuary actuary;
    auto& cache = wafer::DieCostCache::global();
    cache.clear();
    cache.set_enabled(false);
    const auto uncached = sweep_re_grid(actuary);
    cache.set_enabled(true);
    const auto cached = sweep_re_grid(actuary);
    ASSERT_EQ(uncached.size(), cached.size());
    for (std::size_t i = 0; i < uncached.size(); ++i) {
        EXPECT_EQ(uncached[i].re.total(), cached[i].re.total());
        EXPECT_EQ(uncached[i].normalized, cached[i].normalized);
    }
    // The grid revisits (node, area) pairs across packagings: the memo
    // table must actually be hit.
    EXPECT_GT(cache.stats().hits, 0u);
}

}  // namespace
}  // namespace chiplet::explore
