#include "util/math.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace chiplet {
namespace {

TEST(Binomial, BaseCases) {
    EXPECT_EQ(binomial(0, 0), 1u);
    EXPECT_EQ(binomial(5, 0), 1u);
    EXPECT_EQ(binomial(5, 5), 1u);
    EXPECT_EQ(binomial(5, 1), 5u);
}

TEST(Binomial, KnownValues) {
    EXPECT_EQ(binomial(6, 2), 15u);
    EXPECT_EQ(binomial(9, 4), 126u);
    EXPECT_EQ(binomial(10, 5), 252u);
    EXPECT_EQ(binomial(52, 5), 2'598'960u);
}

TEST(Binomial, KGreaterThanNIsZero) {
    EXPECT_EQ(binomial(3, 4), 0u);
    EXPECT_EQ(binomial(0, 1), 0u);
}

TEST(Binomial, SymmetryProperty) {
    for (unsigned n = 1; n <= 20; ++n) {
        for (unsigned k = 0; k <= n; ++k) {
            EXPECT_EQ(binomial(n, k), binomial(n, n - k)) << n << " " << k;
        }
    }
}

TEST(Binomial, PascalRecurrence) {
    for (unsigned n = 2; n <= 25; ++n) {
        for (unsigned k = 1; k < n; ++k) {
            EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
        }
    }
}

TEST(Binomial, LargeValueNoOverflow) {
    EXPECT_EQ(binomial(60, 30), 118'264'581'564'861'424ull);
}

TEST(Binomial, OverflowThrows) {
    EXPECT_THROW(binomial(200, 100), ParameterError);
}

TEST(Multichoose, KnownValues) {
    EXPECT_EQ(multichoose(2, 2), 3u);   // {aa, ab, bb}
    EXPECT_EQ(multichoose(4, 4), 35u);  // C(7,4)
    EXPECT_EQ(multichoose(6, 4), 126u); // C(9,4)
}

TEST(Multichoose, SizeZeroIsOne) { EXPECT_EQ(multichoose(5, 0), 1u); }

TEST(FsmcSystemCount, PaperFig10Configs) {
    EXPECT_EQ(fsmc_system_count(2, 2), 2u + 3u);
    EXPECT_EQ(fsmc_system_count(4, 2), 4u + 10u);
    EXPECT_EQ(fsmc_system_count(4, 3), 4u + 10u + 20u);
    EXPECT_EQ(fsmc_system_count(4, 4), 4u + 10u + 20u + 35u);
    EXPECT_EQ(fsmc_system_count(6, 4), 6u + 21u + 56u + 126u);
}

TEST(FsmcSystemCount, PaperDiscrepancyDocumented) {
    // The paper claims "six chiplets and one 4-sockets package" yield up
    // to 119 systems; the formula it cites gives 209.  We implement the
    // formula (and the enumeration module agrees with it).
    EXPECT_EQ(fsmc_system_count(6, 4), 209u);
    EXPECT_NE(fsmc_system_count(6, 4), 119u);
}

TEST(FsmcSystemCount, ZeroChipletsThrows) {
    EXPECT_THROW(fsmc_system_count(0, 3), ParameterError);
}

TEST(AlmostEqual, ExactAndNear) {
    EXPECT_TRUE(almost_equal(1.0, 1.0));
    EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(almost_equal(1.0, 1.001));
    EXPECT_TRUE(almost_equal(0.0, 0.0));
    EXPECT_TRUE(almost_equal(1e9, 1e9 * (1.0 + 1e-10)));
}

TEST(Lerp, EndpointsAndMidpoint) {
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 2.0), 6.0);  // extrapolation
}

TEST(Mean, Basic) {
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
    EXPECT_THROW(mean({}), ParameterError);
}

TEST(Stddev, KnownValue) {
    // population stddev of {2,4,4,4,5,5,7,9} is 2
    EXPECT_DOUBLE_EQ(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0);
    EXPECT_DOUBLE_EQ(stddev({3.0}), 0.0);
}

TEST(Percentile, InterpolatesSorted) {
    std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
    EXPECT_THROW(percentile(xs, 101.0), ParameterError);
    EXPECT_THROW(percentile({}, 50.0), ParameterError);
}

TEST(Percentile, SingleElement) {
    EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 50.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
}

}  // namespace
}  // namespace chiplet
