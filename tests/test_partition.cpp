#include "design/partition.h"

#include <gtest/gtest.h>

#include <numeric>

#include "tech/tech_library.h"
#include "util/error.h"

namespace chiplet::design {
namespace {

std::vector<Module> make_modules(const std::vector<double>& areas) {
    std::vector<Module> out;
    for (std::size_t i = 0; i < areas.size(); ++i) {
        out.push_back(Module{"m" + std::to_string(i), areas[i], "7nm", true});
    }
    return out;
}

double total_area(const std::vector<Module>& modules) {
    return std::accumulate(modules.begin(), modules.end(), 0.0,
                           [](double acc, const Module& m) {
                               return acc + m.area_mm2;
                           });
}

TEST(SplitHomogeneous, EqualSlicesWithD2d) {
    const auto chips = split_homogeneous("sys", "7nm", 800.0, 4, 0.10);
    ASSERT_EQ(chips.size(), 4u);
    const auto lib = tech::TechLibrary::builtin();
    for (const Chip& chip : chips) {
        EXPECT_DOUBLE_EQ(chip.module_area(lib), 200.0);
        EXPECT_NEAR(chip.area(lib), 200.0 / 0.9, 1e-12);
    }
    // Distinct names so each slice is a distinct design.
    EXPECT_NE(chips[0].name(), chips[1].name());
}

TEST(SplitHomogeneous, SingleSliceKeepsArea) {
    const auto chips = split_homogeneous("sys", "7nm", 640.0, 1, 0.0);
    ASSERT_EQ(chips.size(), 1u);
    EXPECT_DOUBLE_EQ(chips[0].module_area(tech::TechLibrary::builtin()), 640.0);
}

TEST(SplitHomogeneous, InvalidInputsThrow) {
    EXPECT_THROW((void)split_homogeneous("s", "7nm", 0.0, 2, 0.1), ParameterError);
    EXPECT_THROW((void)split_homogeneous("s", "7nm", 100.0, 0, 0.1),
                 ParameterError);
}

TEST(PartitionModules, PreservesEveryModuleExactlyOnce) {
    const auto modules = make_modules({90, 70, 50, 30, 20, 10, 5});
    const Partition p = partition_modules(modules, 3);
    ASSERT_EQ(p.bins.size(), 3u);
    std::size_t count = 0;
    double area = 0.0;
    for (const auto& bin : p.bins) {
        EXPECT_FALSE(bin.empty());
        count += bin.size();
        for (const Module& m : bin) area += m.area_mm2;
    }
    EXPECT_EQ(count, modules.size());
    EXPECT_NEAR(area, total_area(modules), 1e-9);
}

TEST(PartitionModules, PerfectSplitFound) {
    // {4,3,3,2,2,2} into 2 bins: ideal 8/8 achievable (4+2+2 / 3+3+2).
    const auto modules = make_modules({4, 3, 3, 2, 2, 2});
    const Partition p = partition_modules(modules, 2);
    EXPECT_NEAR(p.max_bin_area, 8.0, 1e-9);
    EXPECT_NEAR(p.imbalance, 0.0, 1e-9);
}

TEST(PartitionModules, SingleBinTakesAll) {
    const auto modules = make_modules({5, 7, 9});
    const Partition p = partition_modules(modules, 1);
    EXPECT_EQ(p.bins[0].size(), 3u);
    EXPECT_NEAR(p.max_bin_area, 21.0, 1e-9);
}

TEST(PartitionModules, OneModulePerBinWhenKEqualsN) {
    const auto modules = make_modules({5, 7, 9});
    const Partition p = partition_modules(modules, 3);
    for (const auto& bin : p.bins) EXPECT_EQ(bin.size(), 1u);
    EXPECT_NEAR(p.max_bin_area, 9.0, 1e-9);
}

TEST(PartitionModules, ImbalanceBoundedForUniformModules) {
    // 12 equal modules into 4 bins must balance perfectly.
    const auto modules = make_modules(std::vector<double>(12, 10.0));
    const Partition p = partition_modules(modules, 4);
    EXPECT_NEAR(p.imbalance, 0.0, 1e-9);
    EXPECT_NEAR(p.max_bin_area, 30.0, 1e-9);
}

TEST(PartitionModules, LptQualityBound) {
    // LPT + refinement guarantees max bin <= 4/3 * ideal (classic bound).
    const auto modules = make_modules({83, 71, 62, 54, 49, 38, 31, 27, 16, 9});
    for (unsigned k = 2; k <= 5; ++k) {
        const Partition p = partition_modules(modules, k);
        const double ideal = total_area(modules) / k;
        EXPECT_LE(p.max_bin_area, ideal * 4.0 / 3.0 + 1e-9) << "k=" << k;
    }
}

TEST(PartitionModules, InvalidInputsThrow) {
    const auto modules = make_modules({5, 7});
    EXPECT_THROW((void)partition_modules(modules, 0), ParameterError);
    EXPECT_THROW((void)partition_modules(modules, 3), ParameterError);
    EXPECT_THROW((void)partition_modules(make_modules({-1.0}), 1), ParameterError);
}

TEST(ChipsFromPartition, BuildsOneChipPerBin) {
    const auto modules = make_modules({90, 70, 50, 30});
    const Partition p = partition_modules(modules, 2);
    const auto chips = chips_from_partition(p, "part", "7nm", 0.10);
    ASSERT_EQ(chips.size(), 2u);
    const auto lib = tech::TechLibrary::builtin();
    double area = 0.0;
    for (const Chip& chip : chips) {
        EXPECT_EQ(chip.node(), "7nm");
        EXPECT_DOUBLE_EQ(chip.d2d_fraction(), 0.10);
        area += chip.module_area(lib);
    }
    EXPECT_NEAR(area, 240.0, 1e-9);
}

TEST(ChipsFromPartition, EmptyPartitionThrows) {
    EXPECT_THROW((void)chips_from_partition(Partition{}, "p", "7nm", 0.1),
                 ParameterError);
}

TEST(ChipsFromPartition, PerBinNodesAssignHeterogeneously) {
    const auto modules = make_modules({90, 70, 50, 30});
    const Partition p = partition_modules(modules, 2);
    const std::vector<std::string> nodes = {"7nm", "12nm"};
    const auto chips = chips_from_partition(p, "part", nodes, 0.10);
    ASSERT_EQ(chips.size(), 2u);
    EXPECT_EQ(chips[0].node(), "7nm");
    EXPECT_EQ(chips[1].node(), "12nm");
    // One node per bin, enforced.
    const std::vector<std::string> short_list = {"7nm"};
    EXPECT_THROW((void)chips_from_partition(p, "part", short_list, 0.10),
                 ParameterError);
}

}  // namespace
}  // namespace chiplet::design
