// Range-sharded dispatch (serve/dispatcher.h): --dispatch worker-list
// parsing, merged design_space results bit-identical to a single-process
// run (uneven splits, bounded and unbounded top-K), dead workers turning
// into structured stage-"dispatch" failures while the rest of the batch
// still evaluates, and explain studies staying local.
#include "serve/dispatcher.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/actuary.h"
#include "explore/design_space.h"
#include "explore/study.h"
#include "explore/study_json.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/error.h"
#include "util/json.h"

namespace chiplet::serve {
namespace {

using explore::StudySpec;

TEST(ParseWorkerList, HostPortAndBarePortEntries) {
    const std::vector<WorkerAddress> workers =
        parse_worker_list("9001, 10.0.0.7:9002 ,localhost:9003");
    ASSERT_EQ(workers.size(), 3u);
    EXPECT_EQ(workers[0].label(), "127.0.0.1:9001");  // host defaulted
    EXPECT_EQ(workers[1].label(), "10.0.0.7:9002");
    EXPECT_EQ(workers[2].label(), "localhost:9003");
}

TEST(ParseWorkerList, RejectsMalformedLists) {
    EXPECT_THROW((void)parse_worker_list(""), ParseError);
    EXPECT_THROW((void)parse_worker_list("  "), ParseError);
    EXPECT_THROW((void)parse_worker_list("9001,,9002"), ParseError);
    EXPECT_THROW((void)parse_worker_list("9001,"), ParseError);
    EXPECT_THROW((void)parse_worker_list("host:port"), ParseError);
    EXPECT_THROW((void)parse_worker_list("host:"), ParseError);
    EXPECT_THROW((void)parse_worker_list("0"), ParseError);
    EXPECT_THROW((void)parse_worker_list("70000"), ParseError);
    EXPECT_THROW((void)parse_worker_list("9001.5"), ParseError);

    // A bad list aborts server construction, not the first request.
    const core::ChipletActuary actuary;
    ServerConfig config;
    config.dispatch = "not-a-port";
    EXPECT_THROW(StudyServer(actuary, config), ParseError);
}

TEST(DispatcherCanShard, OnlyPlainDesignSpaceStudies) {
    StudySpec ds;
    ds.config = explore::DesignSpaceConfig{};
    EXPECT_TRUE(Dispatcher::can_shard(ds));
    ds.explain = true;  // ledgers need the whole-space winner locally
    EXPECT_FALSE(Dispatcher::can_shard(ds));
    StudySpec qty;
    qty.config = explore::QuantitySweepConfig{};
    EXPECT_FALSE(Dispatcher::can_shard(qty));
}

/// The 32-candidate space from test_design_space, small enough that a
/// 3-way split is uneven (11/11/10) and a sharded run stays fast.
StudySpec design_space_study(std::size_t top_k) {
    explore::DesignSpaceConfig config;
    config.module_area_mm2 = 600.0;
    config.reference_node = "7nm";
    config.nodes = {"7nm", "12nm"};
    config.chiplet_counts = {1, 2, 3};
    config.packagings = {"SoC", "MCM"};
    config.quantities = {5e5, 2e6};
    config.top_k = top_k;
    StudySpec spec;
    spec.name = "space";
    spec.config = config;
    return spec;
}

/// Wire-precision single-process reference for one spec: the envelope
/// explore::to_json produces, normalised through a dump/parse cycle.
JsonValue serial_envelope(const core::ChipletActuary& actuary,
                          const StudySpec& spec) {
    return JsonValue::parse(
        explore::to_json(explore::run_study(actuary, spec)).dump());
}

/// Bit-identical comparison of one served result envelope against the
/// serial reference, run metadata ignored.
std::string diff_envelope(const JsonValue& served, const JsonValue& reference) {
    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    exact.ignore_keys = {"meta"};
    return json_diff(served, reference, exact);
}

/// Three worker actuaryds plus one dispatching actuaryd wired to them,
/// all on ephemeral loopback ports.
class DispatcherTest : public ::testing::Test {
protected:
    void SetUp() override {
        std::string list;
        for (int i = 0; i < 3; ++i) {
            workers_.push_back(
                std::make_unique<StudyServer>(actuary_, ServerConfig{}));
            workers_.back()->start();
            if (!list.empty()) list += ',';
            list += "127.0.0.1:" + std::to_string(workers_.back()->port());
        }
        ServerConfig config;
        config.dispatch = list;
        dispatcher_ = std::make_unique<StudyServer>(actuary_, config);
        dispatcher_->start();
    }

    void TearDown() override {
        if (dispatcher_) dispatcher_->stop();
        for (auto& worker : workers_) worker->stop();
    }

    [[nodiscard]] StudyClient connect() const {
        return StudyClient("127.0.0.1", dispatcher_->port());
    }

    const core::ChipletActuary actuary_;
    std::vector<std::unique_ptr<StudyServer>> workers_;
    std::unique_ptr<StudyServer> dispatcher_;
};

TEST_F(DispatcherTest, MergedRankingIsBitIdenticalToSingleProcess) {
    const StudySpec spec = design_space_study(5);
    StudyClient client = connect();
    const JsonValue response = client.run({&spec, 1});
    ASSERT_EQ(response.at("failures").as_array().size(), 0u);
    const JsonValue& served = response.at("results").as_array().front();
    EXPECT_EQ(diff_envelope(served, serial_envelope(actuary_, spec)), "");

    // The study really was farmed out, and to every worker: 32
    // candidates over 3 workers is an uneven 11/11/10 split.
    EXPECT_EQ(served.at("meta").at("threads").as_number(), 3.0);
    EXPECT_EQ(client.metrics().at("server").at("dispatched").as_number(), 1.0);
    for (const auto& worker : workers_) {
        EXPECT_EQ(worker->stats().requests, 1u) << worker->port();
    }
}

TEST_F(DispatcherTest, UnboundedTopKMergesEveryCandidate) {
    // top_k = 0 keeps the full ranking: the merge must interleave all
    // three shards' entries, not just their heads.
    const StudySpec spec = design_space_study(0);
    StudyClient client = connect();
    const JsonValue response = client.run({&spec, 1});
    ASSERT_EQ(response.at("failures").as_array().size(), 0u);
    const JsonValue& served = response.at("results").as_array().front();
    const JsonValue reference = serial_envelope(actuary_, spec);
    EXPECT_GT(
        reference.at("result").at("best").as_array().size(), 20u);
    EXPECT_EQ(diff_envelope(served, reference), "");
}

TEST_F(DispatcherTest, MixedBatchDispatchesOnlyTheDesignSpaceStudy) {
    StudySpec qty;
    qty.name = "qty";
    explore::QuantitySweepConfig qc;
    qc.quantities = {5e5, 2e6};
    qty.config = qc;

    StudySpec explain = design_space_study(3);
    explain.name = "explain";
    explain.explain = true;

    const std::vector<StudySpec> batch = {qty, design_space_study(5), explain};
    StudyClient client = connect();
    const JsonValue response = client.run(batch);
    ASSERT_EQ(response.at("failures").as_array().size(), 0u);
    const JsonArray& results = response.at("results").as_array();
    ASSERT_EQ(results.size(), 3u);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(diff_envelope(results[i],
                                serial_envelope(actuary_, batch[i])),
                  "")
            << batch[i].name;
    }

    // The explain study stayed local — it carries its ledgers, and only
    // the plain design_space study was dispatched.
    EXPECT_TRUE(results[2].contains("ledgers"));
    EXPECT_EQ(client.metrics().at("server").at("dispatched").as_number(), 1.0);
}

TEST_F(DispatcherTest, DeadWorkerIsAStructuredFailureNotAHang) {
    // Replace one live worker with a port nothing listens on.
    const unsigned short dead_port = workers_.back()->port();
    workers_.back()->stop();
    workers_.pop_back();

    ServerConfig config;
    config.dispatch = "127.0.0.1:" + std::to_string(workers_[0]->port()) +
                      ",127.0.0.1:" + std::to_string(workers_[1]->port()) +
                      ",127.0.0.1:" + std::to_string(dead_port);
    StudyServer broken(actuary_, config);
    broken.start();

    StudySpec qty;
    qty.name = "qty";
    explore::QuantitySweepConfig qc;
    qc.quantities = {5e5};
    qty.config = qc;
    const std::vector<StudySpec> batch = {design_space_study(5), qty};

    StudyClient client("127.0.0.1", broken.port());
    const JsonValue response = client.run(batch);

    // The sharded study fails loudly — no silent partial ranking — and
    // names the worker; the rest of the batch still evaluated.
    const JsonArray& failures = response.at("failures").as_array();
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures.front().at("index").as_number(), 0.0);
    EXPECT_EQ(failures.front().at("name").as_string(), "space");
    EXPECT_EQ(failures.front().at("stage").as_string(), "dispatch");
    const std::string message = failures.front().at("message").as_string();
    EXPECT_NE(message.find(std::to_string(dead_port)), std::string::npos)
        << message;

    const JsonArray& results = response.at("results").as_array();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(diff_envelope(results.front(), serial_envelope(actuary_, qty)),
              "");
    broken.stop();
}

}  // namespace
}  // namespace chiplet::serve
