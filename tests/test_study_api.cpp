// The unified Study API: JSON round-trip for every study kind,
// bit-for-bit equivalence between run_study and the legacy typed entry
// points, slot-ordered batch execution, and loader error reporting.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "core/actuary.h"
#include "core/scenarios.h"
#include "explore/breakeven.h"
#include "explore/montecarlo.h"
#include "explore/optimizer.h"
#include "explore/pareto.h"
#include "explore/sensitivity.h"
#include "explore/study.h"
#include "explore/study_json.h"
#include "explore/sweep.h"
#include "explore/timeline.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace chiplet::explore {
namespace {

ScenarioSpec mcm_scenario() {
    ScenarioSpec s;
    s.node = "5nm";
    s.packaging = "MCM";
    s.module_area_mm2 = 800.0;
    s.chiplets = 2;
    s.d2d_fraction = 0.10;
    s.quantity = 2e6;
    return s;
}

ScenarioSpec soc_scenario() {
    ScenarioSpec s;
    s.node = "5nm";
    s.packaging = "SoC";
    s.module_area_mm2 = 800.0;
    s.quantity = 2e6;
    return s;
}

ReSweepConfig small_grid() {
    ReSweepConfig c;
    c.nodes = {"7nm", "5nm"};
    c.packagings = {"SoC", "MCM"};
    c.chiplet_counts = {2, 3};
    c.areas_mm2 = {200.0, 500.0, 800.0};
    return c;
}

/// Builds one representative spec for every kind; `all_optionals` adds
/// the compare scenarios and tech overrides.
std::vector<StudySpec> one_spec_per_kind(bool all_optionals) {
    std::vector<StudySpec> specs;

    StudySpec re;
    re.name = "re";
    re.config = small_grid();
    if (all_optionals) {
        re.tech_overrides = JsonValue::parse(
            R"({"nodes":[{"name":"7nm","defect_density_cm2":0.05}]})");
    }
    specs.push_back(re);

    StudySpec qty;
    qty.name = "qty";
    QuantitySweepConfig qc;
    qc.quantities = {5e5, 2e6};
    qty.config = qc;
    specs.push_back(qty);

    StudySpec mc;
    mc.name = "mc";
    McStudyConfig mcc;
    mcc.scenario = mcm_scenario();
    if (all_optionals) mcc.compare = soc_scenario();
    mcc.draws = 64;
    mcc.seed = 7;
    mc.config = mcc;
    specs.push_back(mc);

    StudySpec sens;
    sens.name = "sens";
    SensitivityStudyConfig sc;
    sc.scenario = mcm_scenario();
    sc.rel_step = 0.02;
    sens.config = sc;
    specs.push_back(sens);

    StudySpec tor;
    tor.name = "tor";
    TornadoStudyConfig tc;
    tc.scenario = mcm_scenario();
    tc.rel_range = 0.15;
    tor.config = tc;
    specs.push_back(tor);

    StudySpec brk;
    brk.name = "brk";
    BreakevenQuery bq;
    bq.axis = all_optionals ? BreakevenQuery::Axis::area
                            : BreakevenQuery::Axis::quantity;
    brk.config = bq;
    specs.push_back(brk);

    StudySpec par;
    par.name = "par";
    ParetoConfig pc;
    pc.points = {{1, 3, 0}, {2, 2, 1}, {3, 4, 2}};
    pc.x_label = "designs";
    pc.y_label = "cost";
    par.config = pc;
    specs.push_back(par);

    StudySpec rec;
    rec.name = "rec";
    DecisionQuery dq;
    dq.max_chiplets = 3;
    rec.config = dq;
    specs.push_back(rec);

    StudySpec tl;
    tl.name = "tl";
    TimelineStudyConfig tlc;
    tlc.scenario = mcm_scenario();
    if (all_optionals) tlc.compare = soc_scenario();
    tlc.months = 12.0;
    tlc.step_months = 3.0;
    tl.config = tlc;
    specs.push_back(tl);

    StudySpec ds;
    ds.name = "ds";
    DesignSpaceConfig dsc;
    dsc.module_area_mm2 = 600.0;
    dsc.nodes = {"7nm", "12nm"};
    dsc.chiplet_counts = {1, 2, 3};
    dsc.packagings = {"SoC", "MCM"};
    dsc.quantities = {1e6};
    dsc.top_k = 4;
    if (all_optionals) {
        dsc.modules = {design::Module{"cores", 300.0, "7nm", true},
                       design::Module{"phy", 80.0, "12nm", false}};
        dsc.uniform_nodes = true;
        dsc.max_die_area_mm2 = 700.0;
    }
    ds.config = dsc;
    specs.push_back(ds);

    return specs;
}

TEST(StudyKindStrings, RoundTrip) {
    for (int i = 0; i <= static_cast<int>(StudyKind::design_space); ++i) {
        const StudyKind kind = static_cast<StudyKind>(i);
        EXPECT_EQ(study_kind_from_string(to_string(kind)), kind);
    }
    EXPECT_THROW((void)study_kind_from_string("warp_drive"), ParseError);
}

TEST(StudyKindStrings, UnknownKindNamesTokenAndChoices) {
    try {
        (void)study_kind_from_string("warp_drive");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("'warp_drive'"), std::string::npos) << what;
        // The message enumerates every valid choice.
        for (int i = 0; i <= static_cast<int>(StudyKind::design_space); ++i) {
            EXPECT_NE(what.find(to_string(static_cast<StudyKind>(i))),
                      std::string::npos)
                << what;
        }
    }
}

TEST(StudyJson, SpecRoundTripEveryKind) {
    for (const bool optionals : {false, true}) {
        for (const StudySpec& spec : one_spec_per_kind(optionals)) {
            const JsonValue doc = to_json(spec);
            const StudySpec restored = study_spec_from_json(doc);
            EXPECT_EQ(restored.kind(), spec.kind()) << spec.name;
            EXPECT_EQ(restored.name, spec.name);
            // Canonical form is a fixed point: spec -> json -> spec -> json.
            EXPECT_EQ(to_json(restored).dump(), doc.dump()) << spec.name;
        }
    }
}

TEST(StudyJson, HugeSeedsRoundTripLosslessly) {
    // Seeds above 2^53 cannot live in a JSON double; they serialise as
    // decimal strings and must come back exactly.
    StudySpec spec;
    spec.name = "seed";
    McStudyConfig config;
    config.scenario = mcm_scenario();
    config.draws = 2;
    config.seed = 18446744073709551615ull;  // UINT64_MAX
    spec.config = config;
    const StudySpec restored =
        study_spec_from_json(JsonValue::parse(to_json(spec).dump()));
    EXPECT_EQ(std::get<McStudyConfig>(restored.config).seed,
              18446744073709551615ull);
    EXPECT_EQ(to_json(restored).dump(), to_json(spec).dump());
}

TEST(StudyJson, DocumentRoundTrip) {
    const std::vector<StudySpec> specs = one_spec_per_kind(true);
    const JsonValue doc = studies_to_json(specs);
    const std::vector<StudySpec> restored =
        studies_from_json(JsonValue::parse(doc.dump()));
    ASSERT_EQ(restored.size(), specs.size());
    EXPECT_EQ(studies_to_json(restored).dump(), doc.dump());
}

TEST(StudyJson, DefaultsFillMissingConfig) {
    const StudySpec spec = study_spec_from_json(
        JsonValue::parse(R"({"name":"d","kind":"recommend"})"));
    const auto& query = std::get<DecisionQuery>(spec.config);
    EXPECT_EQ(query.node, DecisionQuery{}.node);
    EXPECT_EQ(query.max_chiplets, DecisionQuery{}.max_chiplets);
}

TEST(StudyJson, LoaderErrorsNameKeyAndContext) {
    try {
        (void)study_spec_from_json(JsonValue::parse(R"({"kind":"recommend"})"),
                                   "studies.json: studies[0]");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("'name'"), std::string::npos) << what;
        EXPECT_NE(what.find("studies.json"), std::string::npos) << what;
    }
    EXPECT_THROW((void)study_spec_from_json(
                     JsonValue::parse(R"({"name":"x","kind":"nope"})")),
                 ParseError);
    // pareto is the one kind with a required config field.
    EXPECT_THROW((void)study_spec_from_json(JsonValue::parse(
                     R"({"name":"x","kind":"pareto","config":{}})")),
                 ParseError);
    // Scenario-based kinds default their scenario like everything else.
    EXPECT_EQ(study_spec_from_json(
                  JsonValue::parse(R"({"name":"x","kind":"monte_carlo"})"))
                  .kind(),
              StudyKind::monte_carlo);
    // Mistyped optional field.
    EXPECT_THROW((void)study_spec_from_json(JsonValue::parse(
                     R"({"name":"x","kind":"recommend","config":{"node":3}})")),
                 ParseError);
}

// ---- equivalence with the legacy typed entry points -------------------------

class StudyEquivalence : public ::testing::Test {
protected:
    core::ChipletActuary actuary_;
};

TEST_F(StudyEquivalence, ReSweep) {
    StudySpec spec;
    spec.name = "re";
    spec.config = small_grid();
    const StudyResult result = run_study(actuary_, spec);
    const auto& points = std::get<std::vector<ReSweepPoint>>(result.payload);
    const std::vector<ReSweepPoint> legacy = sweep_re_grid(actuary_, small_grid());
    ASSERT_EQ(points.size(), legacy.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].re.total(), legacy[i].re.total());
        EXPECT_EQ(points[i].normalized, legacy[i].normalized);
    }
}

TEST_F(StudyEquivalence, QuantitySweep) {
    QuantitySweepConfig config;
    StudySpec spec;
    spec.name = "qty";
    spec.config = config;
    const StudyResult result = run_study(actuary_, spec);
    const auto& points =
        std::get<std::vector<QuantitySweepPoint>>(result.payload);
    const auto legacy = sweep_total_vs_quantity(
        actuary_, config.node, config.module_area_mm2, config.chiplets,
        config.d2d_fraction, config.packagings, config.quantities);
    ASSERT_EQ(points.size(), legacy.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].cost.total_per_unit(), legacy[i].cost.total_per_unit());
    }
}

TEST_F(StudyEquivalence, MonteCarloWithWinRate) {
    McStudyConfig config;
    config.scenario = mcm_scenario();
    config.compare = soc_scenario();
    config.draws = 64;
    config.seed = 7;
    StudySpec spec;
    spec.name = "mc";
    spec.config = config;
    const StudyResult result = run_study(actuary_, spec);
    const auto& outcome = std::get<McStudyOutcome>(result.payload);

    const design::System mcm =
        core::split_system("mc", "5nm", "MCM", 800.0, 2, 0.10, 2e6);
    const design::System soc = core::monolithic_soc("mc_compare", "5nm", 800.0, 2e6);
    const LibrarySampler sampler = default_sampler("5nm", "MCM", 0.3);
    const McResult legacy = monte_carlo(actuary_, mcm, sampler, 64, 7);
    ASSERT_EQ(outcome.mc.samples.size(), legacy.samples.size());
    EXPECT_EQ(outcome.mc.samples, legacy.samples);  // bit-identical
    EXPECT_EQ(outcome.mc.mean, legacy.mean);
    EXPECT_TRUE(outcome.has_compare);
    EXPECT_EQ(outcome.win_rate, win_rate(actuary_, mcm, soc, sampler, 64, 7));
}

TEST_F(StudyEquivalence, SensitivityAndTornado) {
    SensitivityStudyConfig sens;
    sens.scenario = mcm_scenario();
    StudySpec spec;
    spec.name = "sens";
    spec.config = sens;
    const StudyResult sens_result = run_study(actuary_, spec);
    const auto& entries =
        std::get<std::vector<SensitivityEntry>>(sens_result.payload);

    const design::System system =
        core::split_system("sensitivity", "5nm", "MCM", 800.0, 2, 0.10, 2e6);
    const auto legacy = sensitivity_analysis(
        actuary_, system, default_parameters("5nm", "MCM"), 0.01);
    ASSERT_EQ(entries.size(), legacy.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(entries[i].parameter, legacy[i].parameter);
        EXPECT_EQ(entries[i].elasticity, legacy[i].elasticity);
    }

    TornadoStudyConfig tor;
    tor.scenario = mcm_scenario();
    spec.config = tor;
    const StudyResult tor_result = run_study(actuary_, spec);
    const auto& bars = std::get<std::vector<TornadoEntry>>(tor_result.payload);
    const auto legacy_bars = tornado_analysis(
        actuary_, core::split_system("tornado", "5nm", "MCM", 800.0, 2, 0.10, 2e6),
        default_parameters("5nm", "MCM"), 0.20);
    ASSERT_EQ(bars.size(), legacy_bars.size());
    for (std::size_t i = 0; i < bars.size(); ++i) {
        EXPECT_EQ(bars[i].swing(), legacy_bars[i].swing());
    }
}

TEST_F(StudyEquivalence, BreakevenBothAxes) {
    BreakevenQuery query;  // quantity axis defaults
    StudySpec spec;
    spec.name = "brk";
    spec.config = query;
    const StudyResult qty_result = run_study(actuary_, spec);
    const auto& b = std::get<Breakeven>(qty_result.payload);
    const Breakeven legacy =
        breakeven_quantity(actuary_, "5nm", 800.0, 2, "MCM", 0.10);
    EXPECT_EQ(b.found, legacy.found);
    EXPECT_EQ(b.value, legacy.value);
    EXPECT_EQ(b.soc_cost, legacy.soc_cost);

    query.axis = BreakevenQuery::Axis::area;
    query.node = "7nm";
    spec.config = query;
    const StudyResult area_result = run_study(actuary_, spec);
    const auto& area = std::get<Breakeven>(area_result.payload);
    const Breakeven legacy_area =
        breakeven_area(actuary_, "7nm", 2, "MCM", 0.10);
    EXPECT_EQ(area.found, legacy_area.found);
    EXPECT_EQ(area.value, legacy_area.value);
}

TEST_F(StudyEquivalence, ParetoAndRecommend) {
    ParetoConfig pareto;
    pareto.points = {{1, 3, 0}, {2, 2, 1}, {3, 4, 2}, {2, 2, 3}};
    StudySpec spec;
    spec.name = "par";
    spec.config = pareto;
    const StudyResult par_result = run_study(actuary_, spec);
    const auto& front = std::get<std::vector<ParetoPoint>>(par_result.payload);
    const auto legacy = pareto_front(pareto.points);
    ASSERT_EQ(front.size(), legacy.size());
    for (std::size_t i = 0; i < front.size(); ++i) {
        EXPECT_EQ(front[i].index, legacy[i].index);
    }

    DecisionQuery query;
    spec.config = query;
    const StudyResult rec_result = run_study(actuary_, spec);
    const auto& rec = std::get<Recommendation>(rec_result.payload);
    const Recommendation legacy_rec = recommend(actuary_, query);
    ASSERT_EQ(rec.options.size(), legacy_rec.options.size());
    EXPECT_EQ(rec.best().packaging, legacy_rec.best().packaging);
    EXPECT_EQ(rec.best().total_per_unit(), legacy_rec.best().total_per_unit());
}

TEST_F(StudyEquivalence, Timeline) {
    TimelineStudyConfig config;
    config.scenario = mcm_scenario();
    config.scenario.node = "7nm";
    config.compare = soc_scenario();
    config.compare->node = "7nm";
    config.months = 12.0;
    config.step_months = 3.0;
    StudySpec spec;
    spec.name = "tl";
    spec.config = config;
    const StudyResult result = run_study(actuary_, spec);
    const auto& outcome = std::get<TimelineOutcome>(result.payload);

    const yield::DefectLearningCurve curve(0.2, 0.05, 12.0);
    const design::System mcm =
        core::split_system("timeline", "7nm", "MCM", 800.0, 2, 0.10, 2e6);
    const design::System soc =
        core::monolithic_soc("timeline_compare", "7nm", 800.0, 2e6);
    const auto legacy = cost_trajectory(actuary_, mcm, "7nm", curve, 12.0, 3.0);
    ASSERT_EQ(outcome.trajectory.size(), legacy.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
        EXPECT_EQ(outcome.trajectory[i].unit_cost, legacy[i].unit_cost);
    }
    EXPECT_EQ(outcome.crossover_month,
              crossover_month(actuary_, mcm, soc, "7nm", curve, 12.0, 3.0));
}

// ---- envelope, batching, overrides ------------------------------------------

TEST(StudyRun, TableMatchesPayloadShape) {
    const core::ChipletActuary actuary;
    for (const StudySpec& spec : one_spec_per_kind(true)) {
        const StudyResult result = run_study(actuary, spec);
        EXPECT_FALSE(result.table.columns.empty()) << spec.name;
        EXPECT_FALSE(result.table.rows.empty()) << spec.name;
        for (const auto& row : result.table.rows) {
            EXPECT_EQ(row.size(), result.table.columns.size()) << spec.name;
        }
        EXPECT_EQ(result.name, spec.name);
        EXPECT_EQ(result.kind, spec.kind());
        EXPECT_GT(result.run.threads, 0u);
    }
}

TEST(StudyRun, BatchIsSlotOrderedAndBitIdenticalToSerial) {
    const core::ChipletActuary actuary;
    const std::vector<StudySpec> specs = one_spec_per_kind(true);
    const std::vector<StudyResult> batch = run_studies(actuary, specs);
    ASSERT_EQ(batch.size(), specs.size());
    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    exact.ignore_keys = {"meta"};
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(batch[i].name, specs[i].name);
        const StudyResult serial = run_study(actuary, specs[i]);
        EXPECT_EQ(json_diff(to_json(batch[i]), to_json(serial), exact), "")
            << specs[i].name;
    }
}

TEST(StudyRun, TechOverridesPatchACopy) {
    const core::ChipletActuary actuary;
    StudySpec spec;
    spec.name = "override";
    ReSweepConfig config = ReSweepConfig{};
    config.nodes = {"7nm"};
    config.packagings = {"SoC"};
    config.areas_mm2 = {500.0};
    spec.config = config;
    spec.tech_overrides =
        JsonValue::parse(R"({"nodes":[{"name":"7nm","defect_density_cm2":0.05}]})");
    const StudyResult override_result = run_study(actuary, spec);
    const auto& overridden =
        std::get<std::vector<ReSweepPoint>>(override_result.payload);

    core::ChipletActuary patched(actuary.library(), actuary.assumptions());
    patched.library().set_defect_density("7nm", 0.05);
    const auto legacy = sweep_re_grid(patched, config);
    ASSERT_EQ(overridden.size(), legacy.size());
    EXPECT_EQ(overridden[0].re.total(), legacy[0].re.total());
    // Other fields of the node survive the merge.
    EXPECT_EQ(actuary.library().node("7nm").wafer_price_usd,
              patched.library().node("7nm").wafer_price_usd);

    // The caller's actuary is untouched.
    spec.tech_overrides = JsonValue();
    const StudyResult baseline_result = run_study(actuary, spec);
    const auto& baseline =
        std::get<std::vector<ReSweepPoint>>(baseline_result.payload);
    EXPECT_NE(baseline[0].re.total(), overridden[0].re.total());
}

TEST(StudyRun, UnknownScenarioNamesThrowLookupError) {
    const core::ChipletActuary actuary;
    StudySpec spec;
    spec.name = "bad";
    McStudyConfig config;
    config.scenario = mcm_scenario();
    config.scenario.packaging = "vapor_phase";
    config.draws = 2;
    spec.config = config;
    EXPECT_THROW((void)run_study(actuary, spec), LookupError);
}

TEST(StudyRun, ResultJsonCarriesEnvelope) {
    const core::ChipletActuary actuary;
    StudySpec spec;
    spec.name = "env";
    BreakevenQuery query;
    spec.config = query;
    const JsonValue v = to_json(run_study(actuary, spec));
    EXPECT_EQ(v.at("name").as_string(), "env");
    EXPECT_EQ(v.at("kind").as_string(), "breakeven");
    EXPECT_TRUE(v.contains("meta"));
    EXPECT_TRUE(v.at("table").contains("columns"));
    EXPECT_TRUE(v.at("result").contains("found"));
}

// ---- multi-failure batches (regression: first error used to win) ------------

TEST(StudyFailures, CollectingLoaderReportsEveryBadStudy) {
    // Three broken entries and two good ones in one document; before
    // the collecting loader the first parse error aborted the batch and
    // the remaining failures were silently dropped.
    const JsonValue doc = JsonValue::parse(R"({"studies":[
        {"name":"good_a","kind":"breakeven","config":{}},
        {"name":"bad_kind","kind":"wat","config":{}},
        {"kind":"pareto","config":{"points":[]}},
        {"name":"bad_type","kind":"monte_carlo","config":{"draws":"many"}},
        {"name":"good_b","kind":"pareto","config":{"points":[{"x":1,"y":2}]}}
    ]})");
    std::vector<StudyFailure> failures;
    std::vector<std::size_t> kept;
    const std::vector<StudySpec> specs =
        studies_from_json_collecting(doc, "doc", failures, &kept);

    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].name, "good_a");
    EXPECT_EQ(specs[1].name, "good_b");
    EXPECT_EQ(kept, (std::vector<std::size_t>{0, 4}));

    ASSERT_EQ(failures.size(), 3u);
    EXPECT_EQ(failures[0].index, 1u);
    EXPECT_EQ(failures[0].name, "bad_kind");
    EXPECT_EQ(failures[0].stage, "parse");
    EXPECT_NE(failures[0].message.find("wat"), std::string::npos);
    // The nameless entry is reported by its document path instead.
    EXPECT_EQ(failures[1].index, 2u);
    EXPECT_EQ(failures[1].name, "doc.studies[2]");
    EXPECT_EQ(failures[2].index, 3u);
    EXPECT_EQ(failures[2].name, "bad_type");
}

TEST(StudyFailures, DocumentLevelProblemsStillThrow) {
    std::vector<StudyFailure> failures;
    EXPECT_THROW((void)studies_from_json_collecting(
                     JsonValue::parse("[1,2]"), "doc", failures),
                 ParseError);
    EXPECT_THROW((void)studies_from_json_collecting(
                     JsonValue::parse("{}"), "doc", failures),
                 ParseError);
    EXPECT_TRUE(failures.empty());
}

TEST(StudyFailures, RunCollectingReportsEveryModelFailure) {
    const core::ChipletActuary actuary;
    std::vector<StudySpec> specs;

    StudySpec good;
    good.name = "good";
    good.config = BreakevenQuery{};
    specs.push_back(good);

    StudySpec bad_node = good;
    bad_node.name = "bad_node";
    BreakevenQuery q1;
    q1.node = "not_a_node";
    bad_node.config = q1;
    specs.push_back(bad_node);

    StudySpec bad_tech = good;
    bad_tech.name = "bad_tech";
    bad_tech.tech_overrides = JsonValue::parse(R"({"nodes":[{"oops":1}]})");
    specs.push_back(bad_tech);

    const StudyBatchOutcome outcome = run_studies_collecting(actuary, specs);
    ASSERT_EQ(outcome.results.size(), 1u);
    EXPECT_EQ(outcome.results[0].name, "good");
    EXPECT_EQ(outcome.indices, (std::vector<std::size_t>{0}));

    ASSERT_EQ(outcome.failures.size(), 2u);
    EXPECT_EQ(outcome.failures[0].name, "bad_node");
    EXPECT_EQ(outcome.failures[0].stage, "model");
    EXPECT_EQ(outcome.failures[1].name, "bad_tech");
    EXPECT_EQ(outcome.failures[1].stage, "parse");

    // The successful payload is bit-identical to an undisturbed run.
    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    exact.ignore_keys = {"meta"};
    EXPECT_EQ(json_diff(to_json(outcome.results[0]),
                        to_json(run_study(actuary, good)), exact),
              "");
}

TEST(StudyFailures, CollectingMatchesThrowingPathOnCleanBatches) {
    const core::ChipletActuary actuary;
    const std::vector<StudySpec> specs = one_spec_per_kind(false);
    const StudyBatchOutcome outcome = run_studies_collecting(actuary, specs);
    const std::vector<StudyResult> plain = run_studies(actuary, specs);
    ASSERT_EQ(outcome.results.size(), plain.size());
    EXPECT_TRUE(outcome.failures.empty());
    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    exact.ignore_keys = {"meta"};
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(outcome.indices[i], i);
        EXPECT_EQ(json_diff(to_json(outcome.results[i]), to_json(plain[i]),
                            exact),
                  "")
            << specs[i].name;
    }
}

}  // namespace
}  // namespace chiplet::explore
