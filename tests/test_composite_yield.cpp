#include "yield/composite.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace chiplet::yield {
namespace {

TEST(SerialYield, PaperEquationTwo) {
    // Y_overall = Y_wafer * Y_die * Y_packaging * Y_test
    EXPECT_DOUBLE_EQ(serial_yield({0.99, 0.80, 0.98, 0.995}),
                     0.99 * 0.80 * 0.98 * 0.995);
}

TEST(SerialYield, EmptyFlowIsPerfect) { EXPECT_DOUBLE_EQ(serial_yield({}), 1.0); }

TEST(SerialYield, InvalidStageThrows) {
    EXPECT_THROW((void)serial_yield({0.9, 0.0}), ParameterError);
    EXPECT_THROW((void)serial_yield({1.2}), ParameterError);
    EXPECT_THROW((void)serial_yield({-0.5}), ParameterError);
}

TEST(RepeatedYield, PowerLaw) {
    EXPECT_DOUBLE_EQ(repeated_yield(0.99, 0), 1.0);
    EXPECT_DOUBLE_EQ(repeated_yield(0.99, 1), 0.99);
    EXPECT_NEAR(repeated_yield(0.99, 8), std::pow(0.99, 8), 1e-15);
}

TEST(RepeatedYield, MoreChipsLowerYield) {
    double previous = 1.1;
    for (unsigned n = 0; n <= 10; ++n) {
        const double y = repeated_yield(0.98, n);
        EXPECT_LT(y, previous);
        previous = y;
    }
}

TEST(AttemptsPerGood, Inverse) {
    EXPECT_DOUBLE_EQ(attempts_per_good(0.5), 2.0);
    EXPECT_DOUBLE_EQ(attempts_per_good(1.0), 1.0);
    EXPECT_THROW((void)attempts_per_good(0.0), ParameterError);
}

TEST(ScrapFactor, PaperCostMultiplier) {
    // cost_of_defects = component_cost * (1/y - 1)
    EXPECT_DOUBLE_EQ(scrap_factor(1.0), 0.0);
    EXPECT_DOUBLE_EQ(scrap_factor(0.5), 1.0);
    EXPECT_NEAR(scrap_factor(0.8), 0.25, 1e-15);
    EXPECT_THROW((void)scrap_factor(1.0001), ParameterError);
}

TEST(ScrapFactor, ConsistentWithAttempts) {
    for (double y = 0.1; y <= 1.0; y += 0.1) {
        EXPECT_NEAR(scrap_factor(y), attempts_per_good(y) - 1.0, 1e-12);
    }
}

}  // namespace
}  // namespace chiplet::yield
