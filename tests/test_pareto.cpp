#include "explore/pareto.h"

#include <gtest/gtest.h>

namespace chiplet::explore {
namespace {

TEST(Dominates, StrictAndEqual) {
    EXPECT_TRUE(dominates({1, 1, 0}, {2, 2, 1}));
    EXPECT_TRUE(dominates({1, 2, 0}, {2, 2, 1}));   // equal in y
    EXPECT_FALSE(dominates({1, 3, 0}, {2, 2, 1}));  // trade-off
    EXPECT_FALSE(dominates({2, 2, 0}, {2, 2, 1}));  // identical
}

TEST(ParetoFront, ExtractsNonDominated) {
    const auto front = pareto_front({
        {1.0, 5.0, 0},  // front
        {2.0, 3.0, 1},  // front
        {3.0, 4.0, 2},  // dominated by 1
        {4.0, 1.0, 3},  // front
        {5.0, 2.0, 4},  // dominated by 3
    });
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(front[0].index, 0u);
    EXPECT_EQ(front[1].index, 1u);
    EXPECT_EQ(front[2].index, 3u);
}

TEST(ParetoFront, SortedByX) {
    const auto front = pareto_front({{3, 1, 0}, {1, 3, 1}, {2, 2, 2}});
    for (std::size_t i = 1; i < front.size(); ++i) {
        EXPECT_LE(front[i - 1].x, front[i].x);
        EXPECT_GE(front[i - 1].y, front[i].y);  // front is monotone
    }
}

TEST(ParetoFront, SinglePointIsFront) {
    const auto front = pareto_front({{1, 1, 42}});
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0].index, 42u);
}

TEST(ParetoFront, EmptyInputEmptyFront) {
    EXPECT_TRUE(pareto_front({}).empty());
}

TEST(ParetoFront, DuplicatePointsKeepOne) {
    const auto front = pareto_front({{1, 1, 0}, {1, 1, 1}});
    EXPECT_EQ(front.size(), 1u);
}

TEST(ParetoFront, AllOnFrontWhenNoDomination) {
    const auto front = pareto_front({{1, 4, 0}, {2, 3, 1}, {3, 2, 2}, {4, 1, 3}});
    EXPECT_EQ(front.size(), 4u);
}

}  // namespace
}  // namespace chiplet::explore
