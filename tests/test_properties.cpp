// Cross-module property tests: model invariants that must hold for every
// combination of node, packaging, chiplet count and area.  These guard
// the cost engine against calibration edits breaking its structure.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/actuary.h"
#include "core/scenarios.h"

namespace chiplet {
namespace {

using core::ChipletActuary;
using core::SystemCost;
using core::split_system;

/// (node, packaging, chiplets, module area)
using Config = std::tuple<std::string, std::string, unsigned, double>;

class CostModelProperty : public ::testing::TestWithParam<Config> {
protected:
    static const ChipletActuary& actuary() {
        static const ChipletActuary instance;
        return instance;
    }

    design::System make_system(double quantity = 1e6) const {
        const auto& [node, packaging, chiplets, area] = GetParam();
        return split_system("sys", node, packaging, area, chiplets, 0.10,
                            quantity);
    }
};

TEST_P(CostModelProperty, BreakdownNonNegativeAndAdditive) {
    const SystemCost cost = actuary().evaluate(make_system());
    EXPECT_GE(cost.re.raw_chips, 0.0);
    EXPECT_GE(cost.re.chip_defects, 0.0);
    EXPECT_GE(cost.re.raw_package, 0.0);
    EXPECT_GE(cost.re.package_defects, 0.0);
    EXPECT_GE(cost.re.wasted_kgd, 0.0);
    EXPECT_GE(cost.nre.modules, 0.0);
    EXPECT_GE(cost.nre.chips, 0.0);
    EXPECT_GE(cost.nre.packages, 0.0);
    EXPECT_GE(cost.nre.d2d, 0.0);
    EXPECT_NEAR(cost.total_per_unit(), cost.re.total() + cost.nre.total(), 1e-9);
}

TEST_P(CostModelProperty, DieYieldsWithinUnitInterval) {
    const SystemCost cost = actuary().evaluate(make_system());
    for (const auto& die : cost.dies) {
        EXPECT_GT(die.yield, 0.0);
        EXPECT_LE(die.yield, 1.0);
        EXPECT_GE(die.kgd_cost_usd, die.raw_cost_usd);
    }
}

TEST_P(CostModelProperty, CostDecreasesWithQuantity) {
    const double at_1m = actuary().evaluate(make_system(1e6)).total_per_unit();
    const double at_10m = actuary().evaluate(make_system(1e7)).total_per_unit();
    const double at_100m = actuary().evaluate(make_system(1e8)).total_per_unit();
    EXPECT_GT(at_1m, at_10m);
    EXPECT_GT(at_10m, at_100m);
}

TEST_P(CostModelProperty, CostIncreasesWithDefectDensity) {
    const auto& [node, packaging, chiplets, area] = GetParam();
    ChipletActuary degraded;
    degraded.library().set_defect_density(
        node, actuary().library().node(node).defect_density_cm2 * 2.0);
    EXPECT_GT(degraded.evaluate(make_system()).re.total(),
              actuary().evaluate(make_system()).re.total());
}

TEST_P(CostModelProperty, CostIncreasesWithD2dOverhead) {
    const auto& [node, packaging, chiplets, area] = GetParam();
    if (chiplets == 1) GTEST_SKIP() << "D2D only applies to multi-die systems";
    const auto lean =
        split_system("lean", node, packaging, area, chiplets, 0.02, 1e6);
    const auto heavy =
        split_system("heavy", node, packaging, area, chiplets, 0.20, 1e6);
    EXPECT_GT(actuary().evaluate_re_only(heavy).re.total(),
              actuary().evaluate_re_only(lean).re.total());
}

TEST_P(CostModelProperty, PoissonNeverCheaperThanNegativeBinomial) {
    // Poisson ignores clustering and is the pessimistic bound, so the
    // cost under Poisson must be >= the default negative-binomial cost.
    ChipletActuary pessimistic;
    pessimistic.assumptions().yield_model = "poisson";
    EXPECT_GE(pessimistic.evaluate_re_only(make_system()).re.total(),
              actuary().evaluate_re_only(make_system()).re.total() * 0.999);
}

TEST_P(CostModelProperty, ChipFirstNeverCheaperThanChipLast) {
    ChipletActuary chip_first;
    chip_first.assumptions().flow = tech::PackagingFlow::chip_first;
    EXPECT_GE(chip_first.evaluate_re_only(make_system()).re.total(),
              actuary().evaluate_re_only(make_system()).re.total() * 0.999);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CostModelProperty,
    ::testing::Combine(::testing::Values("14nm", "7nm", "5nm"),
                       ::testing::Values("MCM", "InFO", "2.5D"),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(200.0, 600.0)),
    [](const ::testing::TestParamInfo<Config>& info) {
        std::string name = std::get<0>(info.param) + "_" +
                           std::get<1>(info.param) + "_k" +
                           std::to_string(std::get<2>(info.param)) + "_a" +
                           std::to_string(static_cast<int>(std::get<3>(info.param)));
        for (char& c : name) {
            if (c == '.') c = 'p';
        }
        return name;
    });

/// Area-monotonicity sweep at fixed scheme: per-area cost must rise with
/// area for the monolithic SoC (the paper's core premise).
class SocAreaProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(SocAreaProperty, PerAreaCostRisesWithArea) {
    const ChipletActuary actuary;
    const auto per_area = [&](double area) {
        return actuary
                   .evaluate_re_only(
                       core::monolithic_soc("s", GetParam(), area, 1e6))
                   .re.total() /
               area;
    };
    // Below ~500 mm^2 the fixed package overhead can dominate the trend
    // on cheap mature nodes; from 500 mm^2 up the defect cost must drive
    // per-area cost strictly upward on every node.
    double previous = 0.0;
    for (double area = 500.0; area <= 900.0; area += 100.0) {
        EXPECT_GT(per_area(area), previous) << "area " << area;
        previous = per_area(area);
    }
    EXPECT_GT(per_area(900.0), per_area(400.0));
}

TEST_P(SocAreaProperty, TotalCostSuperlinearInArea) {
    const ChipletActuary actuary;
    const double at300 =
        actuary.evaluate_re_only(core::monolithic_soc("s", GetParam(), 300.0, 1e6))
            .re.total();
    const double at900 =
        actuary.evaluate_re_only(core::monolithic_soc("s", GetParam(), 900.0, 1e6))
            .re.total();
    EXPECT_GT(at900, 3.0 * at300);
}

INSTANTIATE_TEST_SUITE_P(Nodes, SocAreaProperty,
                         ::testing::Values("28nm", "14nm", "12nm", "10nm", "7nm",
                                           "5nm", "3nm"));

}  // namespace
}  // namespace chiplet
