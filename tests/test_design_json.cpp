#include "design/json_io.h"

#include <gtest/gtest.h>

#include "design/builder.h"
#include "reuse/scms.h"
#include "util/error.h"

namespace chiplet::design {
namespace {

SystemFamily sample_family() {
    const Chip ccd =
        ChipBuilder("ccd", "7nm").module("cores", 66.0).d2d(0.10).build();
    const Chip iod = ChipBuilder("iod", "12nm")
                         .module("io_logic", 166.0)
                         .module("io_analog", 250.0, "12nm", false)
                         .d2d(0.06)
                         .build();
    SystemFamily family;
    family.add(SystemBuilder("epyc16", "MCM").chips(ccd, 2).chip(iod).quantity(5e5).build());
    family.add(SystemBuilder("epyc64", "MCM")
                   .chips(ccd, 8).chip(iod).quantity(1e6)
                   .package_design("pkg:shared").build());
    return family;
}

TEST(DesignJson, ModuleRoundtrip) {
    const Module original{"io_analog", 250.0, "12nm", false};
    const Module restored = module_from_json(to_json(original));
    EXPECT_EQ(restored, original);
}

TEST(DesignJson, ChipRoundtrip) {
    const Chip original = ChipBuilder("ccd", "7nm")
                              .module("cores", 66.0)
                              .module("l3", 30.0)
                              .d2d(0.10)
                              .build();
    const Chip restored = chip_from_json(to_json(original));
    EXPECT_EQ(restored, original);
}

TEST(DesignJson, FamilyRoundtripPreservesEverything) {
    const SystemFamily original = sample_family();
    const SystemFamily restored = family_from_json(to_json(original));
    ASSERT_EQ(restored.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(restored.systems()[i], original.systems()[i]) << i;
    }
    EXPECT_EQ(restored.unique_chips().size(), original.unique_chips().size());
}

TEST(DesignJson, ReuseSchemesRoundtrip) {
    const SystemFamily original = reuse::make_scms_family(reuse::ScmsConfig{});
    const SystemFamily restored = family_from_json(to_json(original));
    ASSERT_EQ(restored.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(restored.systems()[i], original.systems()[i]);
    }
}

TEST(DesignJson, DefaultPackageDesignOmittedAndRestored) {
    const JsonValue doc = to_json(sample_family());
    const auto& systems = doc.at("systems").as_array();
    EXPECT_FALSE(systems[0].contains("package_design"));  // default id
    EXPECT_TRUE(systems[1].contains("package_design"));   // explicit id
}

TEST(DesignJson, DanglingChipReferenceThrows) {
    const JsonValue doc = JsonValue::parse(R"({
        "chips": [],
        "systems": [{"name":"s","packaging":"MCM","quantity":1000,
                     "placements":[{"chip":"ghost","count":1}]}]
    })");
    EXPECT_THROW((void)family_from_json(doc), LookupError);
}

TEST(DesignJson, DuplicateChipDefinitionThrows) {
    const JsonValue doc = JsonValue::parse(R"({
        "chips": [
          {"name":"c","node":"7nm","modules":[{"name":"m","area_mm2":10,"node":"7nm"}]},
          {"name":"c","node":"7nm","modules":[{"name":"m","area_mm2":20,"node":"7nm"}]}
        ],
        "systems": []
    })");
    EXPECT_THROW((void)family_from_json(doc), ParseError);
}

TEST(DesignJson, NonIntegerCountThrows) {
    const JsonValue doc = JsonValue::parse(R"({
        "chips": [{"name":"c","node":"7nm",
                   "modules":[{"name":"m","area_mm2":10,"node":"7nm"}]}],
        "systems": [{"name":"s","packaging":"MCM","quantity":1000,
                     "placements":[{"chip":"c","count":1.5}]}]
    })");
    EXPECT_THROW((void)family_from_json(doc), ParameterError);
}

TEST(DesignJson, FileRoundtrip) {
    const std::string path = testing::TempDir() + "chiplet_family_test.json";
    save_family(sample_family(), path);
    const SystemFamily loaded = load_family(path);
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.systems()[1].package_design(), "pkg:shared");
}

TEST(DesignJson, EmptyDocumentGivesEmptyFamily) {
    EXPECT_TRUE(family_from_json(JsonValue::parse("{}")).empty());
}

}  // namespace
}  // namespace chiplet::design
