// Tests of the 3D-stacking extension of the RE model.
#include <gtest/gtest.h>

#include "core/actuary.h"
#include "core/scenarios.h"
#include "design/builder.h"
#include "util/error.h"

namespace chiplet::core {
namespace {

TEST(Stacking, BuiltinCatalogueHas3d) {
    const tech::TechLibrary lib = tech::TechLibrary::builtin();
    ASSERT_TRUE(lib.has_packaging("3D"));
    const tech::PackagingTech& d3 = lib.packaging("3D");
    EXPECT_EQ(d3.type, tech::IntegrationType::stacked_3d);
    EXPECT_TRUE(d3.stacked());
    EXPECT_FALSE(d3.has_interposer());
    EXPECT_GT(d3.tsv_cost_per_mm2, 0.0);
}

TEST(Stacking, IntegrationTypeStrings) {
    EXPECT_EQ(tech::to_string(tech::IntegrationType::stacked_3d), "3D");
    EXPECT_EQ(tech::integration_type_from_string("3d"),
              tech::IntegrationType::stacked_3d);
    EXPECT_EQ(tech::integration_type_from_string("soic"),
              tech::IntegrationType::stacked_3d);
}

TEST(Stacking, FootprintIsLargestDieNotSum) {
    const ChipletActuary actuary;
    const auto lib = actuary.library();
    const auto stack = split_system("stack", "7nm", "3D", 600.0, 3, 0.03, 1e6);
    const auto mcm = split_system("mcm", "7nm", "MCM", 600.0, 3, 0.03, 1e6);
    EXPECT_NEAR(package_sizing_area(stack, lib),
                stack.placements().front().chip.area(lib), 1e-9);
    EXPECT_NEAR(package_sizing_area(mcm, lib), mcm.total_die_area(lib), 1e-9);
    // The stacked package substrate is therefore much smaller.
    const auto stack_cost = actuary.evaluate_re_only(stack);
    const auto mcm_cost = actuary.evaluate_re_only(mcm);
    EXPECT_LT(stack_cost.package_design_area_mm2,
              mcm_cost.package_design_area_mm2 / 2.0);
}

TEST(Stacking, SingleDieStackHasNoBondLoss) {
    const ChipletActuary actuary;
    const auto one = split_system("one", "7nm", "3D", 300.0, 1, 0.0, 1e6);
    const auto cost = actuary.evaluate_re_only(one);
    // No stack interfaces: KGD waste only from the substrate attach.
    const tech::PackagingTech& d3 = actuary.library().packaging("3D");
    const double kgd = cost.dies.front().kgd_cost_usd;
    EXPECT_NEAR(cost.re.wasted_kgd, kgd * (1.0 / d3.substrate_bond_yield - 1.0),
                1e-9);
}

TEST(Stacking, DeeperStacksLoseMoreKgd) {
    const ChipletActuary actuary;
    double previous_ratio = 0.0;
    for (unsigned k : {2u, 4u, 8u}) {
        const auto stack =
            split_system("s", "7nm", "3D", 640.0, k, 0.03, 1e6);
        const auto cost = actuary.evaluate_re_only(stack);
        const double kgd_value = cost.re.raw_chips + cost.re.chip_defects;
        const double ratio = cost.re.wasted_kgd / kgd_value;
        EXPECT_GT(ratio, previous_ratio) << "k=" << k;
        previous_ratio = ratio;
    }
}

TEST(Stacking, TsvCostChargedToAllButTopDie) {
    tech::TechLibrary lib = tech::TechLibrary::builtin();
    tech::PackagingTech free_tsv = lib.packaging("3D");
    // Compare a zero-TSV variant against the default catalogue.
    free_tsv.name = "3D_free";
    free_tsv.tsv_cost_per_mm2 = 0.0;
    lib.add_packaging(free_tsv);
    const ChipletActuary actuary(std::move(lib));

    const auto paid = split_system("p", "7nm", "3D", 400.0, 2, 0.0, 1e6);
    const auto free = split_system("f", "7nm", "3D_free", 400.0, 2, 0.0, 1e6);
    const auto paid_cost = actuary.evaluate_re_only(paid);
    const auto free_cost = actuary.evaluate_re_only(free);
    // Exactly one of the two dies pays TSV processing; the difference in
    // raw chips is tsv_cost * area (one die), before yield scaling.
    const double area = paid.placements().front().chip.area(actuary.library());
    const double expected =
        actuary.library().packaging("3D").tsv_cost_per_mm2 * area;
    EXPECT_NEAR(paid_cost.re.raw_chips - free_cost.re.raw_chips, expected,
                expected * 1e-9);
}

TEST(Stacking, BeatsMcmOnSubstrateLosesOnDeepStackYield) {
    // 3D's trade-off: smaller substrate and tiny D2D overhead, but per-
    // interface bond yield is worse; with many dies the waste dominates.
    const ChipletActuary actuary;
    const auto re = [&](const std::string& packaging, unsigned k, double d2d) {
        return actuary
            .evaluate_re_only(
                split_system("s", "5nm", packaging, 800.0, k, d2d, 1e6))
            .re;
    };
    // Two-high stack: packaging total below MCM's (smaller substrate).
    EXPECT_LT(re("3D", 2, 0.03).raw_package, re("MCM", 2, 0.10).raw_package);
    // Eight-high: KGD waste exceeds the 2-high stack's by far.
    EXPECT_GT(re("3D", 8, 0.03).wasted_kgd, 3.0 * re("3D", 2, 0.03).wasted_kgd);
}

TEST(Stacking, ActiveInterposerCostsMoreThanPassive) {
    // The built-in "2.5D-active" variant manufactures the interposer on a
    // 28nm logic process (paper ref [12]) — more capable, pricier.
    const ChipletActuary actuary;
    ASSERT_TRUE(actuary.library().has_packaging("2.5D-active"));
    const auto passive = split_system("p", "7nm", "2.5D", 600.0, 3, 0.10, 1e6);
    const auto active =
        split_system("a", "7nm", "2.5D-active", 600.0, 3, 0.10, 1e6);
    const auto passive_cost = actuary.evaluate(passive);
    const auto active_cost = actuary.evaluate(active);
    EXPECT_GT(active_cost.re.packaging_total(),
              passive_cost.re.packaging_total());
    EXPECT_GT(active_cost.nre.packages, passive_cost.nre.packages);
}

TEST(Stacking, HeterogeneousStackEvaluates) {
    // Cache-on-logic: SRAM die at mature node under a 5nm compute die.
    const ChipletActuary actuary;
    const design::Chip compute = design::ChipBuilder("compute", "5nm")
                                     .module("cores", 150.0)
                                     .d2d(0.03)
                                     .build();
    const design::Chip cache = design::ChipBuilder("cache", "7nm")
                                   .module("sram", 140.0)
                                   .d2d(0.03)
                                   .build();
    const auto stack = design::SystemBuilder("vcache", "3D")
                           .chip(cache)
                           .chip(compute)  // last placement = top die
                           .quantity(1e6)
                           .build();
    const SystemCost cost = actuary.evaluate(stack);
    EXPECT_EQ(cost.dies.size(), 2u);
    EXPECT_GT(cost.total_per_unit(), 0.0);
    EXPECT_GT(cost.nre.d2d, 0.0);  // two nodes -> two D2D designs amortised
}

}  // namespace
}  // namespace chiplet::core
