// The heterogeneous design-space explorer: space counting, lazy
// enumeration order, geometry pruning (and that pruned candidates never
// reach the cost engines), bounded top-K ranking, bit-for-bit legacy
// recommend equivalence, thread-count invariance, and the design_space
// study-kind JSON round-trip.
#include "explore/design_space.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/actuary.h"
#include "core/scenarios.h"
#include "explore/optimizer.h"
#include "explore/study.h"
#include "explore/study_json.h"
#include "util/error.h"
#include "util/thread_pool.h"
#include "wafer/die_cost_cache.h"

namespace chiplet::explore {
namespace {

DesignSpaceConfig small_space() {
    DesignSpaceConfig config;
    config.module_area_mm2 = 600.0;
    config.reference_node = "7nm";
    config.nodes = {"7nm", "12nm"};
    config.chiplet_counts = {1, 2, 3};
    config.packagings = {"SoC", "MCM"};
    config.quantities = {5e5, 2e6};
    config.top_k = 5;
    return config;
}

TEST(DesignSpaceSize, CountsTheCartesianBlocks) {
    const core::ChipletActuary actuary;
    DesignSpaceConfig config = small_space();
    // SoC: 1 monolithic candidate per (node, quantity) = 2*2 = 4.
    // MCM: k=1 -> 2 combos, k=2 -> 4, k=3 -> 8; times 2 quantities = 28.
    EXPECT_EQ(design_space_size(actuary, config), 32u);

    config.uniform_nodes = true;  // every k collapses to |nodes| combos
    EXPECT_EQ(design_space_size(actuary, config), 2u * 2u * 4u);

    config.nodes = {"7nm"};
    config.quantities = {1e6};
    EXPECT_EQ(design_space_size(actuary, config), 4u);
}

TEST(DesignSpaceSize, EmptyAxesThrow) {
    const core::ChipletActuary actuary;
    DesignSpaceConfig config = small_space();
    config.packagings.clear();
    EXPECT_THROW((void)design_space_size(actuary, config), ParameterError);
    config = small_space();
    config.nodes.clear();
    EXPECT_THROW((void)design_space_size(actuary, config), ParameterError);
    config = small_space();
    config.quantities.clear();
    EXPECT_THROW((void)design_space_size(actuary, config), ParameterError);
    config = small_space();
    config.chiplet_counts = {0};
    EXPECT_THROW((void)design_space_size(actuary, config), ParameterError);
    config = small_space();
    config.quantities = {1e6, 0.0};  // rejected up front, not mid-scan
    EXPECT_THROW((void)design_space_size(actuary, config), ParameterError);
}

TEST(DesignSpace, RankingIsSortedAndBounded) {
    const core::ChipletActuary actuary;
    DesignSpaceConfig config = small_space();
    const DesignSpaceResult result = explore_design_space(actuary, config);
    EXPECT_EQ(result.total_candidates, 32u);
    EXPECT_EQ(result.pruned + result.evaluated, result.total_candidates);
    ASSERT_EQ(result.best.size(), 5u);
    for (std::size_t i = 1; i < result.best.size(); ++i) {
        EXPECT_LE(result.best[i - 1].total_per_unit(),
                  result.best[i].total_per_unit());
    }

    // The bounded heap keeps exactly the prefix of the full ranking.
    config.top_k = 0;
    const DesignSpaceResult full = explore_design_space(actuary, config);
    EXPECT_EQ(full.best.size(), full.evaluated);
    for (std::size_t i = 0; i < result.best.size(); ++i) {
        EXPECT_EQ(result.best[i].index, full.best[i].index);
        EXPECT_EQ(result.best[i].total_per_unit(),
                  full.best[i].total_per_unit());
    }
}

TEST(DesignSpace, TinyChunksMatchOneBigBatch) {
    const core::ChipletActuary actuary;
    DesignSpaceConfig config = small_space();
    config.top_k = 0;
    const DesignSpaceResult big = explore_design_space(actuary, config);
    config.chunk = 1;  // forces a flush per surviving candidate
    const DesignSpaceResult tiny = explore_design_space(actuary, config);
    ASSERT_EQ(big.best.size(), tiny.best.size());
    for (std::size_t i = 0; i < big.best.size(); ++i) {
        EXPECT_EQ(big.best[i].index, tiny.best[i].index);
        EXPECT_EQ(big.best[i].re_per_unit, tiny.best[i].re_per_unit);
        EXPECT_EQ(big.best[i].nre_per_unit, tiny.best[i].nre_per_unit);
    }
}

TEST(DesignSpace, PrunedCandidatesNeverReachEvaluation) {
    const core::ChipletActuary actuary;
    DesignSpaceConfig config;
    // 2000 mm^2 monolithic and two-way dies exceed the 858 mm^2 reticle
    // field; only the 4-way split fits.
    config.module_area_mm2 = 2000.0;
    config.nodes = {"7nm"};
    config.chiplet_counts = {1, 2, 4};
    config.packagings = {"SoC", "MCM"};
    config.quantities = {1e6};
    config.top_k = 0;
    const DesignSpaceResult result = explore_design_space(actuary, config);
    EXPECT_EQ(result.total_candidates, 4u);  // SoC + MCM x {1,2,4}
    EXPECT_EQ(result.pruned, 3u);
    EXPECT_EQ(result.evaluated, 1u);
    ASSERT_EQ(result.best.size(), 1u);
    EXPECT_EQ(result.best.front().packaging, "MCM");
    EXPECT_EQ(result.best.front().chiplets, 4u);

    // An all-infeasible space must not touch the cost engines at all:
    // the die-cost cache sees neither a hit nor a miss.
    config.chiplet_counts = {1, 2};
    const wafer::DieCostCache::Stats before =
        wafer::DieCostCache::global().stats();
    const DesignSpaceResult none = explore_design_space(actuary, config);
    const wafer::DieCostCache::Stats after =
        wafer::DieCostCache::global().stats();
    EXPECT_EQ(none.evaluated, 0u);
    EXPECT_EQ(none.pruned, none.total_candidates);
    EXPECT_TRUE(none.best.empty());
    EXPECT_EQ(after.hits, before.hits);
    EXPECT_EQ(after.misses, before.misses);
}

TEST(DesignSpace, ModulesModePartitionsHeterogeneously) {
    const core::ChipletActuary actuary;
    DesignSpaceConfig config;
    config.modules = {
        design::Module{"cores", 300.0, "7nm", true},
        design::Module{"cache", 150.0, "7nm", true},
        design::Module{"phy", 80.0, "12nm", false},  // IO does not shrink
    };
    config.nodes = {"7nm", "12nm"};
    config.chiplet_counts = {2, 3, 5};  // 5 > |modules|, silently skipped
    config.packagings = {"SoC", "MCM"};
    config.quantities = {1e6};
    config.top_k = 0;
    // SoC: 2 nodes.  MCM: k=2 -> 4 combos, k=3 -> 8 combos.
    EXPECT_EQ(design_space_size(actuary, config), 14u);
    const DesignSpaceResult result = explore_design_space(actuary, config);
    EXPECT_EQ(result.total_candidates, 14u);
    for (const DesignCandidate& c : result.best) {
        EXPECT_EQ(c.nodes.size(), c.chiplets);
        EXPECT_EQ(c.die_areas_mm2.size(), c.chiplets);
    }
    // Some candidate must actually mix nodes across chiplets.
    const bool mixed = std::any_of(
        result.best.begin(), result.best.end(), [](const DesignCandidate& c) {
            return std::adjacent_find(c.nodes.begin(), c.nodes.end(),
                                      std::not_equal_to<>()) != c.nodes.end();
        });
    EXPECT_TRUE(mixed);
}

TEST(DesignSpace, RestrictedSubspaceReproducesLegacyRecommendBitForBit) {
    const core::ChipletActuary actuary;
    DecisionQuery query;
    query.node = "7nm";
    query.module_area_mm2 = 400.0;
    query.quantity = 1e6;
    query.max_chiplets = 5;

    // The retired hand-rolled implementation, reconstructed verbatim:
    // packaging-major enumeration, equal-area splits, one batch, stable
    // sort by per-unit total.
    std::vector<design::System> systems;
    std::vector<DesignOption> legacy;
    for (const std::string& packaging : query.packagings) {
        const bool is_soc = actuary.library().packaging(packaging).type ==
                            tech::IntegrationType::soc;
        std::vector<unsigned> counts;
        if (is_soc) {
            counts = {1};
        } else {
            for (unsigned k = 2; k <= query.max_chiplets; ++k) counts.push_back(k);
        }
        for (unsigned k : counts) {
            systems.push_back(
                is_soc ? core::monolithic_soc("soc", query.node,
                                              query.module_area_mm2,
                                              query.quantity)
                       : core::split_system("alt", query.node, packaging,
                                            query.module_area_mm2, k,
                                            query.d2d_fraction, query.quantity));
            legacy.push_back(DesignOption{packaging, k, 0.0, 0.0});
        }
    }
    const std::vector<core::SystemCost> costs = actuary.evaluate_batch(systems);
    for (std::size_t i = 0; i < legacy.size(); ++i) {
        legacy[i].re_per_unit = costs[i].re.total();
        legacy[i].nre_per_unit = costs[i].nre.total();
    }
    std::stable_sort(legacy.begin(), legacy.end(),
                     [](const DesignOption& a, const DesignOption& b) {
                         return a.total_per_unit() < b.total_per_unit();
                     });

    const Recommendation rec = recommend(actuary, query);
    ASSERT_EQ(rec.options.size(), legacy.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
        EXPECT_EQ(rec.options[i].packaging, legacy[i].packaging) << i;
        EXPECT_EQ(rec.options[i].chiplets, legacy[i].chiplets) << i;
        // Bit-for-bit: exact double equality, not a tolerance.
        EXPECT_EQ(rec.options[i].re_per_unit, legacy[i].re_per_unit) << i;
        EXPECT_EQ(rec.options[i].nre_per_unit, legacy[i].nre_per_unit) << i;
    }
}

TEST(DesignSpace, RankingIsInvariantUnderPoolSize) {
    const core::ChipletActuary actuary;
    DesignSpaceConfig config = small_space();
    config.nodes = {"7nm", "12nm", "14nm"};
    config.chiplet_counts = {1, 2, 3, 4};
    config.chunk = 8;  // several flushes per run

    StudySpec spec;
    spec.name = "ds";
    spec.config = config;

    util::ThreadPool::set_global_threads(1);
    const JsonValue serial =
        to_json(run_study(actuary, spec)).at("result");
    util::ThreadPool::set_global_threads(4);
    const JsonValue parallel =
        to_json(run_study(actuary, spec)).at("result");
    util::ThreadPool::set_global_threads(0);  // restore hardware default

    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    EXPECT_EQ(json_diff(serial, parallel, exact), "");
}

TEST(DesignSpaceStudy, JsonRoundTripAndTableShape) {
    StudySpec spec;
    spec.name = "ds";
    DesignSpaceConfig config = small_space();
    config.modules = {design::Module{"cores", 300.0, "7nm", true},
                      design::Module{"phy", 80.0, "12nm", false}};
    config.uniform_nodes = true;
    config.max_die_area_mm2 = 700.0;
    spec.config = config;

    const JsonValue doc = to_json(spec);
    const StudySpec restored = study_spec_from_json(doc);
    EXPECT_EQ(restored.kind(), StudyKind::design_space);
    const auto& rc = std::get<DesignSpaceConfig>(restored.config);
    EXPECT_EQ(rc.modules, config.modules);
    EXPECT_EQ(rc.nodes, config.nodes);
    EXPECT_EQ(rc.uniform_nodes, config.uniform_nodes);
    EXPECT_EQ(rc.top_k, config.top_k);
    EXPECT_EQ(rc.max_die_area_mm2, config.max_die_area_mm2);
    // Canonical form is a fixed point.
    EXPECT_EQ(to_json(restored).dump(), doc.dump());

    const core::ChipletActuary actuary;
    const StudyResult result = run_study(actuary, spec);
    EXPECT_EQ(result.kind, StudyKind::design_space);
    const auto& payload = std::get<DesignSpaceResult>(result.payload);
    EXPECT_EQ(result.table.rows.size(), payload.best.size());
    ASSERT_FALSE(result.table.columns.empty());
    EXPECT_EQ(result.table.columns.front(), "rank");
}

TEST(DesignSpaceStudy, KindStringRoundTrips) {
    EXPECT_EQ(to_string(StudyKind::design_space), "design_space");
    EXPECT_EQ(study_kind_from_string("design_space"), StudyKind::design_space);
}

TEST(DesignSpaceRange, WindowCountsSumToTheWholeSpace) {
    const core::ChipletActuary actuary;
    DesignSpaceConfig config = small_space();
    config.top_k = 0;  // keep every candidate so windows are comparable
    const DesignSpaceResult whole = explore_design_space(actuary, config);
    const std::uint64_t size = design_space_size(actuary, config);

    // Three deliberately uneven windows covering the space exactly once.
    const std::uint64_t cuts[] = {0, size / 3, size / 3 + 1, size};
    std::uint64_t total = 0;
    std::uint64_t pruned = 0;
    std::uint64_t evaluated = 0;
    std::vector<DesignCandidate> merged;
    for (std::size_t i = 0; i + 1 < std::size(cuts); ++i) {
        config.index_begin = cuts[i];
        config.index_end = cuts[i + 1];
        const DesignSpaceResult window = explore_design_space(actuary, config);
        EXPECT_EQ(window.total_candidates, cuts[i + 1] - cuts[i]);
        total += window.total_candidates;
        pruned += window.pruned;
        evaluated += window.evaluated;
        merged.insert(merged.end(), window.best.begin(), window.best.end());
    }
    EXPECT_EQ(total, whole.total_candidates);
    EXPECT_EQ(pruned, whole.pruned);
    EXPECT_EQ(evaluated, whole.evaluated);

    // Candidate indices stay global, so the merged windows re-rank into
    // exactly the whole-space ordering.
    std::sort(merged.begin(), merged.end(),
              [](const DesignCandidate& a, const DesignCandidate& b) {
                  return a.total_per_unit() != b.total_per_unit()
                             ? a.total_per_unit() < b.total_per_unit()
                             : a.index < b.index;
              });
    ASSERT_EQ(merged.size(), whole.best.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(merged[i].index, whole.best[i].index);
        EXPECT_EQ(merged[i].total_per_unit(), whole.best[i].total_per_unit());
    }
}

TEST(DesignSpaceRange, IndexEndZeroMeansWholeSpaceAndBoundsAreChecked) {
    const core::ChipletActuary actuary;
    DesignSpaceConfig config = small_space();
    const DesignSpaceResult whole = explore_design_space(actuary, config);

    config.index_begin = 0;
    config.index_end = 0;
    const DesignSpaceResult defaulted = explore_design_space(actuary, config);
    EXPECT_EQ(defaulted.total_candidates, whole.total_candidates);
    ASSERT_EQ(defaulted.best.size(), whole.best.size());
    EXPECT_EQ(defaulted.best.front().index, whole.best.front().index);

    config.index_end = design_space_size(actuary, config) + 1;
    EXPECT_THROW((void)explore_design_space(actuary, config), ParameterError);
    config.index_begin = 5;
    config.index_end = 4;
    EXPECT_THROW((void)explore_design_space(actuary, config), ParameterError);
}

TEST(DesignSpaceRange, WindowFieldsSerialiseOnlyWhenSet) {
    StudySpec spec;
    spec.name = "ds";
    DesignSpaceConfig config = small_space();
    spec.config = config;

    // Whole-space specs keep the pre-window canonical JSON byte for
    // byte — and with it their spec_hash / cache identity.
    const JsonValue whole = to_json(spec);
    EXPECT_FALSE(whole.at("config").contains("index_begin"));
    EXPECT_FALSE(whole.at("config").contains("index_end"));

    config.index_begin = 3;
    config.index_end = 17;
    spec.config = config;
    const JsonValue window = to_json(spec);
    EXPECT_EQ(window.at("config").at("index_begin").as_number(), 3.0);
    EXPECT_EQ(window.at("config").at("index_end").as_number(), 17.0);
    const StudySpec restored = study_spec_from_json(window);
    const auto& rc = std::get<DesignSpaceConfig>(restored.config);
    EXPECT_EQ(rc.index_begin, 3u);
    EXPECT_EQ(rc.index_end, 17u);
    EXPECT_EQ(to_json(restored).dump(), window.dump());
}

// ---- kernel fast path vs scalar reference -----------------------------------
// explore_design_space lowers memo-free spaces onto the SoA kernel path;
// its contract is BIT identity with explore_design_space_reference — the
// ranking, every reported double, and the accounting fields.

void expect_identical_results(const DesignSpaceResult& fast,
                              const DesignSpaceResult& ref) {
    EXPECT_EQ(fast.total_candidates, ref.total_candidates);
    EXPECT_EQ(fast.pruned, ref.pruned);
    EXPECT_EQ(fast.evaluated, ref.evaluated);
    EXPECT_EQ(fast.windowed, ref.windowed);
    ASSERT_EQ(fast.best.size(), ref.best.size());
    for (std::size_t i = 0; i < fast.best.size(); ++i) {
        const DesignCandidate& a = fast.best[i];
        const DesignCandidate& b = ref.best[i];
        EXPECT_EQ(a.index, b.index) << "rank " << i;
        EXPECT_EQ(a.packaging, b.packaging) << "rank " << i;
        EXPECT_EQ(a.chiplets, b.chiplets) << "rank " << i;
        EXPECT_EQ(a.nodes, b.nodes) << "rank " << i;
        EXPECT_EQ(a.die_areas_mm2, b.die_areas_mm2) << "rank " << i;
        EXPECT_EQ(a.quantity, b.quantity) << "rank " << i;
        // EXPECT_EQ on doubles is exact comparison — bit identity for
        // every value either path can produce here (no NaNs survive a
        // ranking fold).
        EXPECT_EQ(a.re_per_unit, b.re_per_unit) << "rank " << i;
        EXPECT_EQ(a.nre_per_unit, b.nre_per_unit) << "rank " << i;
    }
}

TEST(DesignSpaceKernelPath, MatchesReferenceBitForBitAcrossPackagings) {
    const core::ChipletActuary actuary;
    DesignSpaceConfig config;
    config.module_area_mm2 = 700.0;
    config.reference_node = "7nm";
    config.nodes = {"7nm", "12nm"};  // heterogeneous per-chiplet assignment
    config.chiplet_counts = {1, 2, 3, 4};
    // All four integration schemes: direct-attach, fan-out, silicon
    // interposer (stitching + second bump side), and the 3D stack (TSV
    // adders + footprint-max package sizing).
    config.packagings = {"SoC", "MCM", "InFO", "2.5D", "3D"};
    config.quantities = {1e5, 1e6, 1e7};
    config.top_k = 0;  // compare the ENTIRE ranking, not just the podium
    expect_identical_results(explore_design_space(actuary, config),
                             explore_design_space_reference(actuary, config));
}

TEST(DesignSpaceKernelPath, ModulesModeMatchesReference) {
    const core::ChipletActuary actuary;
    DesignSpaceConfig config;
    config.modules = {
        design::Module{"cores", 320.0, "7nm", true},
        design::Module{"cache", 160.0, "7nm", true},
        design::Module{"phy", 90.0, "12nm", false},
        design::Module{"io", 60.0, "12nm", false},
    };
    config.nodes = {"7nm", "12nm"};
    config.chiplet_counts = {1, 2, 3, 4};
    config.packagings = {"SoC", "MCM", "2.5D"};
    config.quantities = {5e5, 2e6};
    config.top_k = 0;
    expect_identical_results(explore_design_space(actuary, config),
                             explore_design_space_reference(actuary, config));
}

TEST(DesignSpaceKernelPath, WindowsMatchReferenceIncludingAccounting) {
    const core::ChipletActuary actuary;
    DesignSpaceConfig config;
    config.module_area_mm2 = 900.0;  // monolithic candidates get pruned
    config.nodes = {"7nm", "12nm"};
    config.chiplet_counts = {1, 2, 4};
    config.packagings = {"SoC", "MCM", "2.5D"};
    config.quantities = {1e6, 5e6};
    config.top_k = 0;
    const std::uint64_t total = design_space_size(actuary, config);
    ASSERT_GT(total, 10u);
    // Windows that split blocks mid-combo and mid-quantity, plus the
    // degenerate empty window.
    const std::pair<std::uint64_t, std::uint64_t> windows[] = {
        {0, total},     {0, total / 2},          {total / 2, total},
        {1, total - 1}, {total / 3, total / 2},  {5, 5},
    };
    for (const auto& [b, e] : windows) {
        DesignSpaceConfig w = config;
        w.index_begin = b;
        w.index_end = e;
        expect_identical_results(explore_design_space(actuary, w),
                                 explore_design_space_reference(actuary, w));
    }
}

TEST(DesignSpaceKernelPath, UniformNodesAndTopKMatchReference) {
    const core::ChipletActuary actuary;
    DesignSpaceConfig config;
    config.module_area_mm2 = 600.0;
    config.nodes = {"7nm", "12nm"};
    config.uniform_nodes = true;
    config.chiplet_counts = {1, 2, 3, 4, 5};
    config.packagings = {"SoC", "MCM", "InFO"};
    config.quantities = {1e6};
    config.top_k = 7;
    expect_identical_results(explore_design_space(actuary, config),
                             explore_design_space_reference(actuary, config));
}

TEST(DesignSpaceKernelPath, ValidationErrorsStillSurfaceThroughDispatch) {
    const core::ChipletActuary actuary;
    DesignSpaceConfig config;
    config.nodes = {"7nm"};
    config.index_begin = 7;
    config.index_end = 3;
    EXPECT_THROW((void)explore_design_space(actuary, config), ParameterError);
    config.index_begin = 0;
    config.index_end = 1u << 20;  // far outside the space
    EXPECT_THROW((void)explore_design_space(actuary, config), ParameterError);
}

}  // namespace
}  // namespace chiplet::explore
