#include "core/audit.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/scenarios.h"

namespace chiplet::core {
namespace {

bool has_code(const std::vector<AuditFinding>& findings, const std::string& code) {
    return std::any_of(findings.begin(), findings.end(),
                       [&](const AuditFinding& f) { return f.code == code; });
}

TEST(Audit, CleanDesignPassesQuietly) {
    const ChipletActuary actuary;
    // Modest die, healthy yield, high volume: nothing to flag.
    const auto system = monolithic_soc("ok", "7nm", 200.0, 1e8);
    const auto findings = audit_system(actuary, system);
    EXPECT_TRUE(audit_passes(findings));
    EXPECT_FALSE(has_code(findings, "yield.low"));
    EXPECT_FALSE(has_code(findings, "reticle.exceeded"));
}

TEST(Audit, ReticleViolationIsCritical) {
    const ChipletActuary actuary;
    const auto monster = monolithic_soc("monster", "5nm", 900.0, 1e8);
    const auto findings = audit_system(actuary, monster);
    EXPECT_TRUE(has_code(findings, "reticle.exceeded"));
    EXPECT_FALSE(audit_passes(findings));
    // Criticals sort first.
    EXPECT_EQ(findings.front().severity, Severity::critical);
}

TEST(Audit, GeometryPreScreenAgreesWithReticleFinding) {
    const ChipletActuary actuary;
    // The pre-screen (used by the design-space explorer to prune before
    // evaluation) must mirror audit_system's reticle.exceeded critical.
    for (const double area : {200.0, 700.0, 900.0, 1200.0}) {
        const auto system = monolithic_soc("die", "5nm", area, 1e8);
        const double die_area = system.placements().front().chip.area(
            actuary.library());
        const auto findings = audit_system(actuary, system);
        EXPECT_EQ(audit_dies_feasible(std::vector<double>{die_area}),
                  !has_code(findings, "reticle.exceeded"))
            << area;
    }
    EXPECT_TRUE(audit_dies_feasible({}));  // no dies, nothing to violate
}

TEST(Audit, LowYieldFlagged) {
    ChipletActuary actuary;
    actuary.library().set_defect_density("5nm", 0.30);
    const auto risky = monolithic_soc("risky", "5nm", 800.0, 1e8);
    const auto findings = audit_system(actuary, risky);
    EXPECT_TRUE(has_code(findings, "yield.low"));
}

TEST(Audit, PackagingDominanceFlaggedOnMatureNode25d) {
    const ChipletActuary actuary;
    // 14nm small split on 2.5D: packaging overhead swamps the yield gain.
    const auto system = split_system("p", "14nm", "2.5D", 200.0, 2, 0.10, 1e8);
    const auto findings = audit_system(actuary, system);
    EXPECT_TRUE(has_code(findings, "packaging.dominant"));
    EXPECT_TRUE(audit_passes(findings));  // warning, not critical
}

TEST(Audit, NreDominanceAtLowVolume) {
    const ChipletActuary actuary;
    const auto boutique = split_system("b", "5nm", "MCM", 600.0, 3, 0.10, 5e4);
    const auto findings = audit_system(actuary, boutique);
    EXPECT_TRUE(has_code(findings, "nre.dominant"));
}

TEST(Audit, HeavyD2dFlagged) {
    const ChipletActuary actuary;
    const auto heavy = split_system("h", "7nm", "MCM", 600.0, 2, 0.25, 1e8);
    EXPECT_TRUE(has_code(audit_system(actuary, heavy), "d2d.heavy"));
}

TEST(Audit, DeepAssemblyFlagged) {
    const ChipletActuary actuary;
    const auto deep = split_system("d", "7nm", "MCM", 900.0, 9, 0.10, 1e8);
    EXPECT_TRUE(has_code(audit_system(actuary, deep), "assembly.deep"));
}

TEST(Audit, StitchedInterposerReported) {
    const ChipletActuary actuary;
    const auto big25d = split_system("s", "5nm", "2.5D", 900.0, 3, 0.10, 1e8);
    EXPECT_TRUE(has_code(audit_system(actuary, big25d), "interposer.stitching"));
}

TEST(Audit, ThresholdsConfigurable) {
    const ChipletActuary actuary;
    const auto system = split_system("p", "7nm", "MCM", 600.0, 2, 0.10, 1e8);
    AuditConfig strict;
    strict.packaging_share_warn = 0.01;  // flag everything
    EXPECT_TRUE(has_code(audit_system(actuary, system, strict),
                         "packaging.dominant"));
    AuditConfig lax;
    lax.packaging_share_warn = 0.99;
    EXPECT_FALSE(has_code(audit_system(actuary, system, lax),
                          "packaging.dominant"));
}

TEST(Audit, SeverityToString) {
    EXPECT_EQ(to_string(Severity::info), "info");
    EXPECT_EQ(to_string(Severity::warning), "warning");
    EXPECT_EQ(to_string(Severity::critical), "critical");
}

}  // namespace
}  // namespace chiplet::core
