#include "tech/d2d.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tech/tech_library.h"
#include "util/error.h"

namespace chiplet::tech {
namespace {

const TechLibrary kLib = TechLibrary::builtin();

TEST(D2dSizing, AreaMatchesClosedForm) {
    const PackagingTech& mcm = kLib.packaging("MCM");
    const D2dSizing sizing = size_d2d(mcm, 400.0, 2000.0);
    EXPECT_TRUE(sizing.feasible);
    EXPECT_NEAR(sizing.edge_mm, 2000.0 / mcm.d2d_edge_gbps_per_mm, 1e-12);
    EXPECT_NEAR(sizing.area_mm2, sizing.edge_mm * mcm.d2d_phy_depth_mm, 1e-12);
    EXPECT_NEAR(sizing.area_fraction, sizing.area_mm2 / 400.0, 1e-12);
}

TEST(D2dSizing, MaxBandwidthIsPerimeterLimited) {
    const PackagingTech& mcm = kLib.packaging("MCM");
    const double max_bw = max_escape_bandwidth_gbps(mcm, 400.0);
    EXPECT_NEAR(max_bw, 4.0 * 20.0 * mcm.d2d_edge_gbps_per_mm, 1e-9);
    EXPECT_FALSE(size_d2d(mcm, 400.0, max_bw * 1.01).feasible);
    EXPECT_TRUE(size_d2d(mcm, 400.0, max_bw * 0.5).feasible);
}

TEST(D2dSizing, AdvancedPackagingNeedsLessArea) {
    // Fig. 1's point quantified: the same bandwidth costs less silicon on
    // denser integration technologies.
    const double area = 400.0;
    const double bw = 3000.0;
    const double mcm =
        size_d2d(kLib.packaging("MCM"), area, bw).area_fraction;
    const double info =
        size_d2d(kLib.packaging("InFO"), area, bw).area_fraction;
    const double d25 =
        size_d2d(kLib.packaging("2.5D"), area, bw).area_fraction;
    const double d3 = size_d2d(kLib.packaging("3D"), area, bw).area_fraction;
    EXPECT_GT(mcm, info);
    EXPECT_GT(info, d25);
    EXPECT_GT(d25, d3);
}

TEST(D2dSizing, UltraHighBandwidthKillsOrganic) {
    // Paper Sec. 6: "the interconnection requirements are too high to be
    // supported by the organic substrate, so advanced packaging ... is
    // necessary."  A 200 mm^2 chiplet with 25 Tbps aggregate bandwidth:
    const double area = 200.0;
    const double bw = 25'000.0;
    EXPECT_FALSE(size_d2d(kLib.packaging("MCM"), area, bw).feasible);
    EXPECT_TRUE(size_d2d(kLib.packaging("2.5D"), area, bw).feasible);
}

TEST(D2dFraction, MatchesSizingAndThrowsWhenInfeasible) {
    const PackagingTech& mcm = kLib.packaging("MCM");
    EXPECT_NEAR(d2d_fraction_for_bandwidth(mcm, 400.0, 2000.0),
                size_d2d(mcm, 400.0, 2000.0).area_fraction, 1e-12);
    EXPECT_THROW((void)d2d_fraction_for_bandwidth(mcm, 100.0, 50'000.0),
                 ParameterError);
}

TEST(D2dSizing, ZeroBandwidthZeroArea) {
    const D2dSizing sizing = size_d2d(kLib.packaging("MCM"), 300.0, 0.0);
    EXPECT_TRUE(sizing.feasible);
    EXPECT_DOUBLE_EQ(sizing.area_mm2, 0.0);
}

TEST(D2dSizing, InvalidInputsThrow) {
    const PackagingTech& mcm = kLib.packaging("MCM");
    EXPECT_THROW((void)size_d2d(mcm, -1.0, 100.0), ParameterError);
    EXPECT_THROW((void)size_d2d(mcm, 100.0, -1.0), ParameterError);
    // SoC package has no published edge density.
    EXPECT_THROW((void)size_d2d(kLib.packaging("SoC"), 100.0, 100.0),
                 ParameterError);
}

/// Property sweep over die areas: fraction for a fixed bandwidth falls
/// with area (bigger dies host the PHY more easily).
class D2dAreaProperty : public ::testing::TestWithParam<double> {};

TEST_P(D2dAreaProperty, FractionFallsWithArea) {
    const PackagingTech& info = kLib.packaging("InFO");
    const double smaller = size_d2d(info, GetParam(), 1500.0).area_fraction;
    const double larger = size_d2d(info, GetParam() * 2.0, 1500.0).area_fraction;
    EXPECT_GT(smaller, larger);
}

INSTANTIATE_TEST_SUITE_P(Areas, D2dAreaProperty,
                         ::testing::Values(100.0, 200.0, 400.0, 800.0));

}  // namespace
}  // namespace chiplet::tech
