#include "explore/rng.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/math.h"

namespace chiplet::explore {
namespace {

TEST(Rng, DeterministicForSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, ZeroSeedIsValid) {
    Rng rng(0);
    EXPECT_NE(rng.next(), 0u);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf) {
    Rng rng(11);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i) xs.push_back(rng.uniform());
    EXPECT_NEAR(mean(xs), 0.5, 0.01);
    EXPECT_NEAR(stddev(xs), 1.0 / std::sqrt(12.0), 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-3.0, 5.0);
        EXPECT_GE(x, -3.0);
        EXPECT_LT(x, 5.0);
    }
    EXPECT_THROW((void)rng.uniform(1.0, 0.0), ParameterError);
}

TEST(Rng, NormalMoments) {
    Rng rng(17);
    std::vector<double> xs;
    for (int i = 0; i < 30000; ++i) xs.push_back(rng.normal());
    EXPECT_NEAR(mean(xs), 0.0, 0.02);
    EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
    Rng rng(19);
    std::vector<double> xs;
    for (int i = 0; i < 30000; ++i) xs.push_back(rng.normal(10.0, 2.0));
    EXPECT_NEAR(mean(xs), 10.0, 0.05);
    EXPECT_NEAR(stddev(xs), 2.0, 0.05);
    EXPECT_THROW((void)rng.normal(0.0, -1.0), ParameterError);
}

TEST(Rng, TriangularBoundsAndMean) {
    Rng rng(23);
    std::vector<double> xs;
    for (int i = 0; i < 30000; ++i) {
        const double x = rng.triangular(1.0, 2.0, 6.0);
        EXPECT_GE(x, 1.0);
        EXPECT_LE(x, 6.0);
        xs.push_back(x);
    }
    EXPECT_NEAR(mean(xs), (1.0 + 2.0 + 6.0) / 3.0, 0.02);  // triangular mean
    EXPECT_THROW((void)rng.triangular(2.0, 1.0, 3.0), ParameterError);
}

TEST(Rng, TriangularDegenerateReturnsPoint) {
    Rng rng(29);
    EXPECT_DOUBLE_EQ(rng.triangular(2.0, 2.0, 2.0), 2.0);
}

TEST(Rng, LognormalMedian) {
    Rng rng(31);
    std::vector<double> xs;
    for (int i = 0; i < 30000; ++i) xs.push_back(rng.lognormal(5.0, 0.25));
    EXPECT_NEAR(percentile(xs, 50.0), 5.0, 0.1);
    for (double x : xs) EXPECT_GT(x, 0.0);
    EXPECT_THROW((void)rng.lognormal(-1.0, 0.2), ParameterError);
}

}  // namespace
}  // namespace chiplet::explore
