#include "report/table.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace chiplet::report {
namespace {

TEST(TextTable, RendersAlignedColumns) {
    TextTable table;
    table.add_column("scheme");
    table.add_column("cost", Align::right);
    table.add_row({"SoC", "1.00"});
    table.add_row({"MCM", "0.85"});
    const std::string out = table.render();
    EXPECT_NE(out.find("| scheme | cost |"), std::string::npos);
    EXPECT_NE(out.find("| SoC    | 1.00 |"), std::string::npos);
    EXPECT_NE(out.find("| MCM    | 0.85 |"), std::string::npos);
    EXPECT_NE(out.find("+--------+------+"), std::string::npos);
}

TEST(TextTable, RightAlignmentPads) {
    TextTable table;
    table.add_column("v", Align::right);
    table.add_row({"1"});
    table.add_row({"1000"});
    const std::string out = table.render();
    EXPECT_NE(out.find("|    1 |"), std::string::npos);
    EXPECT_NE(out.find("| 1000 |"), std::string::npos);
}

TEST(TextTable, WideCellGrowsColumn) {
    TextTable table;
    table.add_column("x");
    table.add_row({"very-long-content"});
    EXPECT_NE(table.render().find("| very-long-content |"), std::string::npos);
}

TEST(TextTable, RuleInsertsSeparator) {
    TextTable table;
    table.add_column("x");
    table.add_row({"a"});
    table.add_rule();
    table.add_row({"b"});
    const std::string out = table.render();
    // header rule + top + between + bottom = 4 rules
    std::size_t rules = 0;
    for (std::size_t pos = out.find("+---"); pos != std::string::npos;
         pos = out.find("+---", pos + 1)) {
        ++rules;
    }
    EXPECT_EQ(rules, 4u);
    EXPECT_EQ(table.row_count(), 2u);  // rules don't count as rows
}

TEST(TextTable, MismatchedRowThrows) {
    TextTable table;
    table.add_column("a");
    table.add_column("b");
    EXPECT_THROW(table.add_row({"only-one"}), ParameterError);
}

TEST(TextTable, ColumnsAfterRowsThrow) {
    TextTable table;
    table.add_column("a");
    table.add_row({"x"});
    EXPECT_THROW(table.add_column("late"), ParameterError);
}

TEST(TextTable, EmptyTableThrowsOnRender) {
    TextTable table;
    EXPECT_THROW((void)table.render(), ParameterError);
}

}  // namespace
}  // namespace chiplet::report
