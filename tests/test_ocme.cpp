#include "reuse/ocme.h"

#include <gtest/gtest.h>

#include "core/actuary.h"
#include "util/error.h"

namespace chiplet::reuse {
namespace {

TEST(Ocme, DefaultVariantsMatchPaper) {
    const auto variants = default_ocme_variants();
    ASSERT_EQ(variants.size(), 4u);  // C, C+1X, C+1X+1Y, C+2X+2Y
    EXPECT_EQ(variants[0].x_count + variants[0].y_count, 0u);
    EXPECT_EQ(variants[3].x_count, 2u);
    EXPECT_EQ(variants[3].y_count, 2u);
}

TEST(Ocme, FamilyShape) {
    const design::SystemFamily family = make_ocme_family(OcmeConfig{});
    ASSERT_EQ(family.size(), 4u);
    EXPECT_EQ(family.systems()[0].die_count(), 1u);  // C
    EXPECT_EQ(family.systems()[1].die_count(), 2u);  // C+1X
    EXPECT_EQ(family.systems()[2].die_count(), 3u);  // C+1X+1Y
    EXPECT_EQ(family.systems()[3].die_count(), 5u);  // C+2X+2Y
    // Three chip designs: C, X, Y.
    EXPECT_EQ(family.unique_chips().size(), 3u);
}

TEST(Ocme, CenterReusedAcrossAllSystems) {
    const design::SystemFamily family = make_ocme_family(OcmeConfig{});
    for (const auto& system : family.systems()) {
        bool has_center = false;
        for (const auto& p : system.placements()) {
            if (p.chip.name() == "C") has_center = true;
        }
        EXPECT_TRUE(has_center) << system.name();
    }
}

TEST(Ocme, HeterogeneousCenterChangesNode) {
    OcmeConfig config;
    config.center_node = "14nm";
    config.center_unscalable = true;
    const design::SystemFamily family = make_ocme_family(config);
    const auto chips = family.unique_chips();
    const auto center = std::find_if(chips.begin(), chips.end(),
                                     [](const auto& c) { return c.name() == "C"; });
    ASSERT_NE(center, chips.end());
    EXPECT_EQ(center->node(), "14nm");
    // Unscalable: same silicon area as the homogeneous case.
    const auto lib = tech::TechLibrary::builtin();
    EXPECT_NEAR(center->module_area(lib), 160.0, 1e-9);
}

TEST(Ocme, HeterogeneousCenterReducesTotalCost) {
    // Paper Sec. 5.2: "with heterogeneous integration the total costs are
    // further reduced by more than 10%" for module areas that do not
    // benefit from advanced nodes.
    const core::ChipletActuary actuary;
    OcmeConfig homo;
    OcmeConfig hetero = homo;
    hetero.center_node = "14nm";
    hetero.center_unscalable = true;
    const core::FamilyCost homo_cost = actuary.evaluate(make_ocme_family(homo));
    const core::FamilyCost hetero_cost =
        actuary.evaluate(make_ocme_family(hetero));
    EXPECT_LT(hetero_cost.grand_total(), homo_cost.grand_total());
    // The center-only system benefits the most (paper: "almost half").
    EXPECT_LT(hetero_cost.systems[0].total_per_unit(),
              0.75 * homo_cost.systems[0].total_per_unit());
}

TEST(Ocme, MultiChipBeatsSocForLargerVariants) {
    const core::ChipletActuary actuary;
    const OcmeConfig config;
    const core::FamilyCost multi = actuary.evaluate(make_ocme_family(config));
    const core::FamilyCost soc = actuary.evaluate(make_ocme_soc_family(config));
    // The largest variant (C+2X+2Y, 800 mm^2 of modules) is where chiplet
    // reuse pays; the single-C system is cheaper as an SoC.
    EXPECT_LT(multi.systems[3].total_per_unit(), soc.systems[3].total_per_unit());
}

TEST(Ocme, SocReferenceSharesModulesNotChips) {
    const design::SystemFamily family = make_ocme_soc_family(OcmeConfig{});
    EXPECT_EQ(family.unique_modules().size(), 3u);  // C, X, Y modules
    EXPECT_EQ(family.unique_chips().size(), 4u);    // one die per variant
}

TEST(Ocme, PackageReuseSharesOneDesign) {
    OcmeConfig config;
    config.reuse_package = true;
    EXPECT_EQ(make_ocme_family(config).unique_package_designs().size(), 1u);
    EXPECT_EQ(make_ocme_family(OcmeConfig{}).unique_package_designs().size(), 4u);
}

TEST(Ocme, SocketBudgetEnforced) {
    OcmeConfig config;
    config.extension_sockets = 2;
    EXPECT_THROW((void)make_ocme_family(config), ParameterError);  // C+2X+2Y > 2
    const std::vector<OcmeVariant> small = {{0, 0}, {1, 1}};
    EXPECT_NO_THROW((void)make_ocme_family(config, small));
}

TEST(Ocme, InvalidConfigThrows) {
    OcmeConfig config;
    config.socket_area_mm2 = 0.0;
    EXPECT_THROW((void)make_ocme_family(config), ParameterError);
    EXPECT_THROW((void)make_ocme_family(OcmeConfig{}, {}), ParameterError);
}

}  // namespace
}  // namespace chiplet::reuse
