#include "reuse/scms.h"

#include <gtest/gtest.h>

#include "core/actuary.h"
#include "util/error.h"

namespace chiplet::reuse {
namespace {

TEST(Scms, FamilyShape) {
    const design::SystemFamily family = make_scms_family(ScmsConfig{});
    ASSERT_EQ(family.size(), 3u);  // 1X, 2X, 4X
    EXPECT_EQ(family.systems()[0].die_count(), 1u);
    EXPECT_EQ(family.systems()[1].die_count(), 2u);
    EXPECT_EQ(family.systems()[2].die_count(), 4u);
    // Single chiplet design shared by all grades.
    EXPECT_EQ(family.unique_chips().size(), 1u);
    EXPECT_EQ(family.unique_modules().size(), 1u);
}

TEST(Scms, SocReferenceShape) {
    const design::SystemFamily family = make_scms_soc_family(ScmsConfig{});
    ASSERT_EQ(family.size(), 3u);
    for (const auto& s : family.systems()) {
        EXPECT_EQ(s.die_count(), 1u);
        EXPECT_EQ(s.packaging(), "SoC");
    }
    // One module design, but one chip design per grade (paper Eq. 7).
    EXPECT_EQ(family.unique_modules().size(), 1u);
    EXPECT_EQ(family.unique_chips().size(), 3u);
}

TEST(Scms, PackageReuseSharesDesign) {
    ScmsConfig config;
    config.reuse_package = true;
    const design::SystemFamily family = make_scms_family(config);
    EXPECT_EQ(family.unique_package_designs().size(), 1u);
    const design::SystemFamily no_reuse = make_scms_family(ScmsConfig{});
    EXPECT_EQ(no_reuse.unique_package_designs().size(), 3u);
}

TEST(Scms, ChipNreSavingVsSoc) {
    // Paper Fig. 8: "nearly three quarters" chip-NRE saving for the 4X
    // system compared with monolithic SoCs.
    const core::ChipletActuary actuary;
    const ScmsConfig config;
    const core::FamilyCost multi = actuary.evaluate(make_scms_family(config));
    const core::FamilyCost soc = actuary.evaluate(make_scms_soc_family(config));
    EXPECT_LT(multi.nre_chips_total, 0.5 * soc.nre_chips_total);
}

TEST(Scms, PackageReuseHurtsSmallestGrade) {
    // Paper Sec. 5.1: reusing the 4X package in the 1X system raises the
    // 1X total cost (paper: >20%).
    const core::ChipletActuary actuary;
    ScmsConfig config;
    const core::FamilyCost without = actuary.evaluate(make_scms_family(config));
    config.reuse_package = true;
    const core::FamilyCost with = actuary.evaluate(make_scms_family(config));
    const double re_1x_without = with.systems.front().quantity > 0
                                     ? without.systems.front().re.total()
                                     : 0.0;
    const double re_1x_with = with.systems.front().re.total();
    EXPECT_GT(re_1x_with, re_1x_without);
    // ...but saves package NRE for the family.
    EXPECT_LT(with.nre_packages_total, without.nre_packages_total);
}

TEST(Scms, CustomGradesRespected) {
    ScmsConfig config;
    config.grades = {1, 8};
    const design::SystemFamily family = make_scms_family(config);
    ASSERT_EQ(family.size(), 2u);
    EXPECT_EQ(family.systems()[1].die_count(), 8u);
}

TEST(Scms, MirroredChipletsNeedSecondChipDesign) {
    // Paper footnote 3: symmetrical placement needs either a symmetrical
    // chiplet or two mirrored chip designs.
    ScmsConfig config;
    config.mirrored_chiplets = true;
    const design::SystemFamily family = make_scms_family(config);
    EXPECT_EQ(family.unique_chips().size(), 2u);   // left + right handed
    EXPECT_EQ(family.unique_modules().size(), 1u); // same module content
    // The 4X system places two of each.
    const auto& placements = family.systems()[2].placements();
    unsigned total = 0;
    for (const auto& p : placements) total += p.count;
    EXPECT_EQ(total, 4u);
    EXPECT_EQ(placements.size(), 2u);
}

TEST(Scms, MirroredChipletsCostMoreNre) {
    const core::ChipletActuary actuary;
    ScmsConfig config;
    const auto plain = actuary.evaluate(make_scms_family(config));
    config.mirrored_chiplets = true;
    const auto mirrored = actuary.evaluate(make_scms_family(config));
    // Two mask sets instead of one; module NRE unchanged.
    EXPECT_GT(mirrored.nre_chips_total, 1.5 * plain.nre_chips_total);
    EXPECT_DOUBLE_EQ(mirrored.nre_modules_total, plain.nre_modules_total);
    // RE is identical — mirroring is an NRE-only penalty.
    EXPECT_NEAR(mirrored.systems[2].re.total(), plain.systems[2].re.total(),
                1e-9);
}

TEST(Scms, InvalidConfigThrows) {
    ScmsConfig config;
    config.grades = {};
    EXPECT_THROW((void)make_scms_family(config), ParameterError);
    config.grades = {0};
    EXPECT_THROW((void)make_scms_family(config), ParameterError);
    config = ScmsConfig{};
    config.module_area_mm2 = -1.0;
    EXPECT_THROW((void)make_scms_family(config), ParameterError);
}

}  // namespace
}  // namespace chiplet::reuse
