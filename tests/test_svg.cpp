#include "report/svg.h"

#include <gtest/gtest.h>

#include <fstream>

#include "report/html.h"
#include "util/error.h"

namespace chiplet::report {
namespace {

TEST(XmlEscape, SpecialCharacters) {
    EXPECT_EQ(xml_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    EXPECT_EQ(xml_escape("plain"), "plain");
    EXPECT_EQ(xml_escape(""), "");
}

TEST(SvgLineChart, WellFormedOutput) {
    SvgLineChart chart(640, 360);
    chart.add_series("yield", {{0.0, 1.0}, {800.0, 0.4}});
    chart.add_series("cost", {{0.0, 1.0}, {800.0, 3.0}});
    chart.set_axis_labels("area (mm^2)", "value");
    const std::string svg = chart.render();
    EXPECT_NE(svg.find("<svg "), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    EXPECT_NE(svg.find("polyline"), std::string::npos);
    EXPECT_NE(svg.find("yield"), std::string::npos);
    EXPECT_NE(svg.find("cost"), std::string::npos);
    EXPECT_NE(svg.find("area (mm^2)"), std::string::npos);
    // Two polylines, one per series.
    std::size_t count = 0;
    for (std::size_t pos = svg.find("<polyline"); pos != std::string::npos;
         pos = svg.find("<polyline", pos + 1)) {
        ++count;
    }
    EXPECT_EQ(count, 2u);
}

TEST(SvgLineChart, EscapesSeriesNames) {
    SvgLineChart chart;
    chart.add_series("a<b>", {{0.0, 1.0}, {1.0, 2.0}});
    const std::string svg = chart.render();
    EXPECT_EQ(svg.find("a<b>"), std::string::npos);
    EXPECT_NE(svg.find("a&lt;b&gt;"), std::string::npos);
}

TEST(SvgLineChart, ForcedYRange) {
    SvgLineChart chart;
    chart.set_y_range(0.0, 100.0);
    chart.add_series("s", {{0.0, 50.0}, {1.0, 150.0}});  // clamped
    EXPECT_NE(chart.render().find("100"), std::string::npos);
}

TEST(SvgLineChart, Validation) {
    EXPECT_THROW(SvgLineChart(100, 50), ParameterError);
    SvgLineChart chart;
    EXPECT_THROW((void)chart.render(), ParameterError);
    EXPECT_THROW(chart.add_series("s", {}), ParameterError);
    EXPECT_THROW(chart.set_y_range(2.0, 1.0), ParameterError);
}

TEST(SvgStackedBarChart, WellFormedOutput) {
    SvgStackedBarChart chart(640);
    chart.set_segments({"RE", "NRE"});
    chart.add_bar("SoC", {1.0, 0.5});
    chart.add_bar("MCM", {0.8, 0.7});
    const std::string svg = chart.render();
    EXPECT_NE(svg.find("<svg "), std::string::npos);
    EXPECT_NE(svg.find("SoC"), std::string::npos);
    EXPECT_NE(svg.find("RE"), std::string::npos);
    // 2 legend boxes + 4 bar segments = 6 rects.
    std::size_t count = 0;
    for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
         pos = svg.find("<rect", pos + 1)) {
        ++count;
    }
    EXPECT_EQ(count, 6u);
}

TEST(SvgStackedBarChart, Validation) {
    EXPECT_THROW(SvgStackedBarChart(100), ParameterError);
    SvgStackedBarChart chart;
    EXPECT_THROW(chart.add_bar("x", {1.0}), ParameterError);
    chart.set_segments({"a"});
    EXPECT_THROW(chart.add_bar("x", {1.0, 2.0}), ParameterError);
    EXPECT_THROW(chart.add_bar("x", {-1.0}), ParameterError);
    EXPECT_THROW((void)chart.render(), ParameterError);
}

TEST(HtmlReport, AssemblesSections) {
    HtmlReport report("Chiplet Report");
    report.add_heading("Section", 2);
    report.add_paragraph("Costs & <findings>");
    report.add_table({"scheme", "cost"}, {{"SoC", "1.00"}, {"MCM", "0.85"}});
    SvgStackedBarChart chart;
    chart.set_segments({"RE"});
    chart.add_bar("SoC", {1.0});
    report.add_svg(chart.render());
    const std::string html = report.render();
    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_NE(html.find("<h1>Chiplet Report</h1>"), std::string::npos);
    EXPECT_NE(html.find("<h2>Section</h2>"), std::string::npos);
    EXPECT_NE(html.find("Costs &amp; &lt;findings&gt;"), std::string::npos);
    EXPECT_NE(html.find("<th>scheme</th>"), std::string::npos);
    EXPECT_NE(html.find("<svg "), std::string::npos);
}

TEST(HtmlReport, TableRowWidthValidated) {
    HtmlReport report("t");
    EXPECT_THROW(report.add_table({"a", "b"}, {{"1"}}), ParameterError);
    EXPECT_THROW(report.add_table({}, {}), ParameterError);
    EXPECT_THROW(report.add_heading("x", 9), ParameterError);
}

TEST(HtmlReport, SavesToFile) {
    HtmlReport report("t");
    report.add_paragraph("body");
    const std::string path = testing::TempDir() + "chiplet_report_test.html";
    report.save(path);
    std::ifstream file(path);
    EXPECT_TRUE(file.good());
    EXPECT_THROW(report.save("/nonexistent_zz/x.html"), Error);
}

}  // namespace
}  // namespace chiplet::report
