#include "core/re_model.h"

#include <gtest/gtest.h>

#include "core/scenarios.h"
#include "util/error.h"
#include "yield/composite.h"

namespace chiplet::core {
namespace {

class ReModelTest : public ::testing::Test {
protected:
    tech::TechLibrary lib_ = tech::TechLibrary::builtin();
    Assumptions assumptions_;
    ReModel model_{lib_, assumptions_};
};

TEST_F(ReModelTest, BreakdownComponentsNonNegativeAndSum) {
    const auto system = split_system("s", "7nm", "MCM", 600.0, 3, 0.10, 1e6);
    const SystemCost cost = model_.evaluate(system);
    EXPECT_GT(cost.re.raw_chips, 0.0);
    EXPECT_GT(cost.re.chip_defects, 0.0);
    EXPECT_GT(cost.re.raw_package, 0.0);
    EXPECT_GT(cost.re.package_defects, 0.0);
    EXPECT_GT(cost.re.wasted_kgd, 0.0);
    EXPECT_NEAR(cost.re.total(),
                cost.re.raw_chips + cost.re.chip_defects + cost.re.raw_package +
                    cost.re.package_defects + cost.re.wasted_kgd,
                1e-9);
    EXPECT_NEAR(cost.re.packaging_total(),
                cost.re.raw_package + cost.re.package_defects + cost.re.wasted_kgd,
                1e-9);
}

TEST_F(ReModelTest, DieReportsMatchPlacements) {
    const auto system = split_system("s", "7nm", "MCM", 600.0, 3, 0.10, 1e6);
    const SystemCost cost = model_.evaluate(system);
    ASSERT_EQ(cost.dies.size(), 3u);
    for (const DieReport& die : cost.dies) {
        EXPECT_EQ(die.node, "7nm");
        EXPECT_EQ(die.count, 1u);
        EXPECT_NEAR(die.area_mm2, 200.0 / 0.9, 1e-9);
        EXPECT_NEAR(die.kgd_cost_usd, die.raw_cost_usd / die.yield, 1e-9);
        EXPECT_GT(die.d2d_area_mm2, 0.0);
    }
}

TEST_F(ReModelTest, SplittingImprovesDieYield) {
    const auto soc = monolithic_soc("soc", "5nm", 800.0, 1e6);
    const auto mcm = split_system("mcm", "5nm", "MCM", 800.0, 2, 0.10, 1e6);
    const SystemCost soc_cost = model_.evaluate(soc);
    const SystemCost mcm_cost = model_.evaluate(mcm);
    EXPECT_GT(mcm_cost.dies.front().yield, soc_cost.dies.front().yield);
    EXPECT_LT(mcm_cost.re.chip_defects, soc_cost.re.chip_defects);
}

TEST_F(ReModelTest, D2dOverheadInflatesRawSilicon) {
    const auto thin = split_system("a", "7nm", "MCM", 600.0, 2, 0.05, 1e6);
    const auto thick = split_system("b", "7nm", "MCM", 600.0, 2, 0.20, 1e6);
    EXPECT_LT(model_.evaluate(thin).re.raw_chips,
              model_.evaluate(thick).re.raw_chips);
}

TEST_F(ReModelTest, InterposerSchemesCarryInterposerCost) {
    const auto mcm = split_system("m", "7nm", "MCM", 600.0, 2, 0.10, 1e6);
    const auto info = split_system("i", "7nm", "InFO", 600.0, 2, 0.10, 1e6);
    const auto d25 = split_system("d", "7nm", "2.5D", 600.0, 2, 0.10, 1e6);
    const SystemCost mcm_cost = model_.evaluate(mcm);
    const SystemCost info_cost = model_.evaluate(info);
    const SystemCost d25_cost = model_.evaluate(d25);
    EXPECT_DOUBLE_EQ(mcm_cost.interposer_area_mm2, 0.0);
    EXPECT_GT(info_cost.interposer_area_mm2, 0.0);
    EXPECT_GT(d25_cost.interposer_area_mm2, 0.0);
    // Paper Fig. 1: cost & complexity ordering MCM < InFO < 2.5D.
    EXPECT_LT(mcm_cost.re.packaging_total(), info_cost.re.packaging_total());
    EXPECT_LT(info_cost.re.packaging_total(), d25_cost.re.packaging_total());
}

TEST_F(ReModelTest, PaperEquation4Structure) {
    // For an interposer scheme, verify the wasted-KGD and package-defect
    // terms against a hand computation from Eq. 4.
    const auto d25 = split_system("d", "7nm", "2.5D", 400.0, 2, 0.10, 1e6);
    const SystemCost cost = model_.evaluate(d25);
    const tech::PackagingTech& pkg = lib_.packaging("2.5D");
    const double y2n = yield::repeated_yield(pkg.chip_bond_yield, 2);
    const double y3 = pkg.substrate_bond_yield;
    const double kgd_total =
        2.0 * cost.dies.front().kgd_cost_usd;  // two equal dies
    EXPECT_NEAR(cost.re.wasted_kgd, kgd_total * (1.0 / (y2n * y3) - 1.0), 1e-9);
}

TEST_F(ReModelTest, ChipFirstWastesMoreKgdThanChipLast) {
    Assumptions chip_first = assumptions_;
    chip_first.flow = tech::PackagingFlow::chip_first;
    const ReModel first_model(lib_, chip_first);
    const auto info = split_system("i", "7nm", "InFO", 600.0, 3, 0.10, 1e6);
    const SystemCost last_cost = model_.evaluate(info);
    const SystemCost first_cost = first_model.evaluate(info);
    EXPECT_GT(first_cost.re.wasted_kgd, last_cost.re.wasted_kgd);
    EXPECT_GT(first_cost.re.total(), last_cost.re.total());
    // Without an interposer, the two flows coincide (y1 == 1).
    const auto mcm = split_system("m", "7nm", "MCM", 600.0, 3, 0.10, 1e6);
    EXPECT_NEAR(first_model.evaluate(mcm).re.total(),
                model_.evaluate(mcm).re.total(), 1e-9);
}

TEST_F(ReModelTest, PackageDesignAreaOverrideInflatesSubstrate) {
    const auto system = split_system("s", "7nm", "MCM", 200.0, 1, 0.10, 1e6);
    const SystemCost natural = model_.evaluate(system);
    const SystemCost oversized = model_.evaluate(system, 4.0 * 222.2);
    EXPECT_GT(oversized.re.raw_package, natural.re.raw_package);
    EXPECT_GT(oversized.package_design_area_mm2, natural.package_design_area_mm2);
    // Dies are unchanged.
    EXPECT_NEAR(oversized.re.raw_chips, natural.re.raw_chips, 1e-9);
}

TEST_F(ReModelTest, ReticleStitchingPenalisesHugeInterposers) {
    Assumptions no_stitch = assumptions_;
    no_stitch.apply_reticle_stitching = false;
    const ReModel lenient(lib_, no_stitch);
    // 900 mm^2 of dies -> interposer ~1035 mm^2 > one reticle field.
    const auto d25 = split_system("d", "7nm", "2.5D", 900.0, 3, 0.10, 1e6);
    EXPECT_GT(model_.evaluate(d25).re.package_defects,
              lenient.evaluate(d25).re.package_defects);
}

TEST_F(ReModelTest, SocYieldQueryMatchesEquationOne) {
    const design::Chip chip("c", "5nm",
                            {design::Module{"m", 800.0, "5nm", true}}, 0.0);
    EXPECT_NEAR(model_.die_yield(chip), 0.430, 0.005);  // paper Fig. 2 anchor
    EXPECT_NEAR(model_.kgd_cost(chip),
                model_.evaluate(monolithic_soc("s", "5nm", 800.0, 1e6))
                        .dies.front()
                        .kgd_cost_usd,
                1e-9);
}

TEST_F(ReModelTest, MultiDieOnSocPackagingThrows) {
    const design::Chip chip("c", "7nm",
                            {design::Module{"m", 100.0, "7nm", true}}, 0.0);
    const design::System bad(
        "bad", "SoC",
        {design::ChipPlacement{chip, 2}}, 1e6);
    EXPECT_THROW((void)model_.evaluate(bad), ParameterError);
}

TEST_F(ReModelTest, MoreChipletsMoreBondingLoss) {
    const auto k2 = split_system("a", "7nm", "2.5D", 600.0, 2, 0.10, 1e6);
    const auto k5 = split_system("b", "7nm", "2.5D", 600.0, 5, 0.10, 1e6);
    const SystemCost c2 = model_.evaluate(k2);
    const SystemCost c5 = model_.evaluate(k5);
    // Relative KGD waste (waste / KGD value) grows with die count.
    const double kgd2 = c2.re.raw_chips + c2.re.chip_defects;
    const double kgd5 = c5.re.raw_chips + c5.re.chip_defects;
    EXPECT_GT(c5.re.wasted_kgd / kgd5, c2.re.wasted_kgd / kgd2);
}

}  // namespace
}  // namespace chiplet::core
