// Integration tests asserting the paper's headline qualitative claims
// hold under the built-in calibration.  Each test cites the section it
// reproduces; EXPERIMENTS.md records the quantitative comparison.
#include <gtest/gtest.h>

#include "core/actuary.h"
#include "core/scenarios.h"
#include "design/builder.h"
#include "explore/breakeven.h"
#include "reuse/scms.h"

namespace chiplet {
namespace {

using core::ChipletActuary;
using core::monolithic_soc;
using core::split_system;

TEST(PaperSec41, AdvancedNodeDefectShareDominates) {
    // "the cost resulting from die defects accounts for more than 50% of
    // the total manufacturing cost of the monolithic SoC at 800 mm^2
    // area" (5nm).
    const ChipletActuary actuary;
    const auto cost =
        actuary.evaluate_re_only(monolithic_soc("s", "5nm", 800.0, 1e6));
    EXPECT_GT(cost.re.chip_defects / cost.re.total(), 0.5);
}

TEST(PaperSec41, MatureNodeYieldSavingsExist) {
    // "As for mature technology (14nm), though there are also up to 35%
    // cost-savings from yield improvement..." — compare die-only costs.
    const ChipletActuary actuary;
    const auto soc =
        actuary.evaluate_re_only(monolithic_soc("s", "14nm", 900.0, 1e6));
    const auto mcm = actuary.evaluate_re_only(
        split_system("m", "14nm", "MCM", 900.0, 5, 0.0, 1e6));  // no D2D: pure yield
    const double soc_die = soc.re.raw_chips + soc.re.chip_defects;
    const double mcm_die = mcm.re.raw_chips + mcm.re.chip_defects;
    EXPECT_GT((soc_die - mcm_die) / soc_die, 0.20);
    EXPECT_LT((soc_die - mcm_die) / soc_die, 0.50);
}

TEST(PaperSec41, BenefitsIncreaseWithArea) {
    // "For any technology node, the benefits increase with the increase
    // of area."
    const ChipletActuary actuary;
    for (const char* node : {"14nm", "7nm", "5nm"}) {
        double previous_ratio = 2.0;
        for (double area : {300.0, 600.0, 900.0}) {
            const double soc =
                actuary.evaluate_re_only(monolithic_soc("s", node, area, 1e6))
                    .re.total();
            const double mcm =
                actuary
                    .evaluate_re_only(
                        split_system("m", node, "MCM", area, 2, 0.10, 1e6))
                    .re.total();
            const double ratio = mcm / soc;
            EXPECT_LT(ratio, previous_ratio) << node << " " << area;
            previous_ratio = ratio;
        }
    }
}

TEST(PaperSec41, GranularityHasMarginalUtility) {
    // "With the increase of chiplets quantity (3->5), the cost-saving of
    // die defects is more negligible (<10% at 5nm, 800mm2, MCM)".
    const ChipletActuary actuary;
    const auto re = [&](unsigned k) {
        return actuary
            .evaluate_re_only(split_system("m", "5nm", "MCM", 800.0, k, 0.10, 1e6))
            .re;
    };
    const double total2 = re(2).total();
    const double total3 = re(3).total();
    const double total5 = re(5).total();
    EXPECT_GT(total2 - total3, total3 - total5);  // diminishing returns
    // The paper's metric is the *die defect* saving ("<10%"); our
    // calibration measures ~11%, the same magnitude (see EXPERIMENTS.md).
    const double defect_saving = re(3).chip_defects - re(5).chip_defects;
    EXPECT_LT(defect_saving / total3, 0.12);
}

TEST(PaperSec41, AdvancedPackagingOnlyPaysOnAdvancedNodes) {
    // "advanced packaging technologies are only cost-effective under
    // advanced process technology": at 14nm/900mm2 2.5D loses to SoC,
    // at 5nm/900mm2 it wins.
    const ChipletActuary actuary;
    const auto ratio = [&](const char* node) {
        const double soc =
            actuary.evaluate_re_only(monolithic_soc("s", node, 900.0, 1e6))
                .re.total();
        const double d25 =
            actuary
                .evaluate_re_only(
                    split_system("d", node, "2.5D", 900.0, 3, 0.10, 1e6))
                .re.total();
        return d25 / soc;
    };
    EXPECT_GT(ratio("14nm"), 1.0);
    EXPECT_LT(ratio("5nm"), 1.0);
}

TEST(PaperSec41, PackagingCostComparableToChipCostFor25D) {
    // "the cost of packaging (50% at 7nm, 900 mm^2, 2.5D) is comparable
    // with the chip cost".
    const ChipletActuary actuary;
    const auto cost = actuary.evaluate_re_only(
        split_system("d", "7nm", "2.5D", 900.0, 3, 0.10, 1e6));
    const double packaging_share = cost.re.packaging_total() / cost.re.total();
    EXPECT_GT(packaging_share, 0.30);
    EXPECT_LT(packaging_share, 0.65);
}

TEST(PaperSec42, SingleSystemTurningPointNearTwoMillion) {
    // "For 5nm systems, when the quantity reaches two million, multi-chip
    // architecture starts to pay back" (800 mm^2, 2 chiplets).
    const ChipletActuary actuary;
    const explore::Breakeven result =
        explore::breakeven_quantity(actuary, "5nm", 800.0, 2, "MCM", 0.10);
    ASSERT_TRUE(result.found);
    EXPECT_GT(result.value, 0.5e6);
    EXPECT_LT(result.value, 5.0e6);
}

TEST(PaperSec42, SmallerSystemsTurnLater) {
    // "As for smaller systems, the turning point of production quantity
    // is further higher."
    const ChipletActuary actuary;
    const explore::Breakeven large =
        explore::breakeven_quantity(actuary, "5nm", 800.0, 2, "MCM", 0.10);
    const explore::Breakeven small =
        explore::breakeven_quantity(actuary, "5nm", 500.0, 2, "MCM", 0.10);
    ASSERT_TRUE(large.found);
    ASSERT_TRUE(small.found);
    EXPECT_GT(small.value, large.value);
}

TEST(PaperSec42, MonolithicWinsAtLowQuantity) {
    // At 500k units the SoC is the better choice for a single system.
    const ChipletActuary actuary;
    const double soc =
        actuary.evaluate(monolithic_soc("s", "5nm", 800.0, 5e5)).total_per_unit();
    const double mcm =
        actuary.evaluate(split_system("m", "5nm", "MCM", 800.0, 2, 0.10, 5e5))
            .total_per_unit();
    EXPECT_LT(soc, mcm);
}

TEST(PaperSec51, ScmsChipNreSavingNearThreeQuarters) {
    // "due to chiplet reuse, there is vast chip NRE cost-saving (nearly
    // three quarters for 4X system) compared with monolithic SoC".
    const ChipletActuary actuary;
    const reuse::ScmsConfig config;
    const auto multi = actuary.evaluate(reuse::make_scms_family(config));
    const auto soc = actuary.evaluate(reuse::make_scms_soc_family(config));
    const double saving =
        1.0 - multi.nre_chips_total / soc.nre_chips_total;
    EXPECT_GT(saving, 0.55);
    EXPECT_LT(saving, 0.90);
}

TEST(PaperSec51, PackageReuseTradeoff) {
    // "Package reuse saves amortized NRE cost of package for larger
    // systems but wastes RE cost for smaller systems" — the 1X system
    // total must rise (paper: >20%) while the family package NRE falls.
    const ChipletActuary actuary;
    reuse::ScmsConfig config;
    const auto plain = actuary.evaluate(reuse::make_scms_family(config));
    config.reuse_package = true;
    const auto reused = actuary.evaluate(reuse::make_scms_family(config));
    EXPECT_LT(reused.nre_packages_total, plain.nre_packages_total);
    const double rise = reused.systems[0].total_per_unit() /
                            plain.systems[0].total_per_unit() -
                        1.0;
    EXPECT_GT(rise, 0.05);
}

TEST(PaperSec51, InterposerReuseUneconomicFor25D) {
    // "package reuse is uneconomic for high-cost 2.5D integrations": the
    // oversized interposer hurts the 1X system far more than on MCM.
    const ChipletActuary actuary;
    reuse::ScmsConfig mcm;
    mcm.packaging = "MCM";
    reuse::ScmsConfig d25 = mcm;
    d25.packaging = "2.5D";
    const auto rise = [&](reuse::ScmsConfig config) {
        const auto plain = actuary.evaluate(reuse::make_scms_family(config));
        config.reuse_package = true;
        const auto reused = actuary.evaluate(reuse::make_scms_family(config));
        return reused.systems[0].re.total() / plain.systems[0].re.total() - 1.0;
    };
    EXPECT_GT(rise(d25), 2.0 * rise(mcm));
}

TEST(PaperSec6, MultiChipPaysWhenDefectsExceedPackaging) {
    // Takeaway 1: "Multi-chip architecture begins to pay off when the
    // cost of die defects exceeds the total cost resulting from
    // packaging."  Check the implication at the RE break-even area.
    const ChipletActuary actuary;
    const explore::Breakeven turn =
        explore::breakeven_area(actuary, "7nm", 2, "MCM", 0.10);
    ASSERT_TRUE(turn.found);
    const auto above = actuary.evaluate_re_only(
        monolithic_soc("s", "7nm", turn.value * 1.4, 1e6));
    const auto mcm_above = actuary.evaluate_re_only(
        split_system("m", "7nm", "MCM", turn.value * 1.4, 2, 0.10, 1e6));
    EXPECT_GT(above.re.chip_defects, mcm_above.re.packaging_total());
    EXPECT_LT(mcm_above.re.total(), above.re.total());
}

TEST(PaperSec6, MooreLimitYieldsHighestBenefit) {
    // "The closer to the Moore Limit (the largest area at the most
    // advanced technology) the system is, the higher cost-benefit from
    // multi-chip architecture is."
    const ChipletActuary actuary;
    const auto benefit = [&](const char* node, double area) {
        const double soc =
            actuary.evaluate_re_only(monolithic_soc("s", node, area, 1e6))
                .re.total();
        const double mcm =
            actuary
                .evaluate_re_only(
                    split_system("m", node, "MCM", area, 3, 0.10, 1e6))
                .re.total();
        return 1.0 - mcm / soc;
    };
    EXPECT_GT(benefit("5nm", 900.0), benefit("5nm", 400.0));
    EXPECT_GT(benefit("5nm", 900.0), benefit("14nm", 900.0));
}

}  // namespace
}  // namespace chiplet
