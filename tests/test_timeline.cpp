#include "explore/timeline.h"

#include <gtest/gtest.h>

#include "core/scenarios.h"
#include "util/error.h"

namespace chiplet::explore {
namespace {

const yield::DefectLearningCurve kCurve(0.13, 0.05, 12.0);  // 7nm ramp

TEST(Timeline, TrajectoryShape) {
    const core::ChipletActuary actuary;
    const auto system = core::monolithic_soc("s", "7nm", 600.0, 1e6);
    const auto traj = cost_trajectory(actuary, system, "7nm", kCurve, 24.0, 6.0);
    ASSERT_EQ(traj.size(), 5u);  // t = 0, 6, 12, 18, 24
    EXPECT_DOUBLE_EQ(traj.front().month, 0.0);
    EXPECT_DOUBLE_EQ(traj.front().defect_density, 0.13);
    for (std::size_t i = 1; i < traj.size(); ++i) {
        EXPECT_LT(traj[i].defect_density, traj[i - 1].defect_density);
        EXPECT_LT(traj[i].unit_cost, traj[i - 1].unit_cost);
    }
}

TEST(Timeline, DoesNotMutateBaseActuary) {
    const core::ChipletActuary actuary;
    const double before = actuary.library().node("7nm").defect_density_cm2;
    const auto system = core::monolithic_soc("s", "7nm", 600.0, 1e6);
    (void)cost_trajectory(actuary, system, "7nm", kCurve, 12.0, 3.0);
    EXPECT_DOUBLE_EQ(actuary.library().node("7nm").defect_density_cm2, before);
}

TEST(Timeline, MonolithicGainsMoreFromLearning) {
    // The paper's observation: maturing yield shrinks the chiplet
    // advantage, because the monolithic die benefits more from falling D.
    const core::ChipletActuary actuary;
    const auto soc = core::monolithic_soc("soc", "7nm", 800.0, 1e8);
    const auto mcm = core::split_system("mcm", "7nm", "MCM", 800.0, 2, 0.10, 1e8);
    const auto soc_traj = cost_trajectory(actuary, soc, "7nm", kCurve, 36.0, 36.0);
    const auto mcm_traj = cost_trajectory(actuary, mcm, "7nm", kCurve, 36.0, 36.0);
    const double soc_gain = soc_traj.front().unit_cost - soc_traj.back().unit_cost;
    const double mcm_gain = mcm_traj.front().unit_cost - mcm_traj.back().unit_cost;
    EXPECT_GT(soc_gain, mcm_gain);
    // Advantage at t=0 exceeds advantage at t=36.
    const double advantage_start =
        soc_traj.front().unit_cost - mcm_traj.front().unit_cost;
    const double advantage_end =
        soc_traj.back().unit_cost - mcm_traj.back().unit_cost;
    EXPECT_GT(advantage_start, advantage_end);
}

TEST(Timeline, CrossoverMonthFindsCatchUp) {
    // Construct a case where the SoC starts more expensive but catches up
    // as yield matures: large die, huge quantity (NRE negligible).
    const core::ChipletActuary actuary;
    const auto soc = core::monolithic_soc("soc", "7nm", 800.0, 1e8);
    const auto mcm = core::split_system("mcm", "7nm", "MCM", 800.0, 2, 0.10, 1e8);
    // MCM is cheaper from t=0 here, so its crossover month is 0...
    EXPECT_DOUBLE_EQ(crossover_month(actuary, mcm, soc, "7nm", kCurve, 36.0), 0.0);
    // ...and whether the SoC ever catches up depends on the curve; with a
    // very deep learning floor it should.
    const yield::DefectLearningCurve deep(0.13, 0.005, 6.0);
    const double month = crossover_month(actuary, soc, mcm, "7nm", deep, 60.0);
    EXPECT_GT(month, 0.0);  // catches up eventually (tiny defect density)
}

TEST(Timeline, NeverCatchesUpReturnsNegative) {
    const core::ChipletActuary actuary;
    // At 500k units the SoC wins the whole horizon; the MCM never catches
    // up against it under a shallow curve.
    const auto soc = core::monolithic_soc("soc", "5nm", 800.0, 5e5);
    const auto mcm = core::split_system("mcm", "5nm", "MCM", 800.0, 2, 0.10, 5e5);
    const yield::DefectLearningCurve shallow(0.11, 0.10, 24.0);
    EXPECT_LT(crossover_month(actuary, mcm, soc, "5nm", shallow, 24.0), 0.0);
}

TEST(Timeline, InvalidInputsThrow) {
    const core::ChipletActuary actuary;
    const auto system = core::monolithic_soc("s", "7nm", 600.0, 1e6);
    EXPECT_THROW(
        (void)cost_trajectory(actuary, system, "7nm", kCurve, -1.0, 1.0),
        ParameterError);
    EXPECT_THROW(
        (void)cost_trajectory(actuary, system, "7nm", kCurve, 12.0, 0.0),
        ParameterError);
}

}  // namespace
}  // namespace chiplet::explore
