// The cross-study cell store (explore/cell_store.h): cells priced by
// one compiled batch are reused by later batches bit-identically, tech
// groups never alias, the memory bound evicts from the cold end, and
// the planning surface peeks without perturbing counters or LRU order.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/actuary.h"
#include "design/builder.h"
#include "explore/cell.h"
#include "explore/cell_store.h"
#include "explore/study.h"
#include "explore/study_graph.h"
#include "explore/study_json.h"
#include "explore/sweep.h"
#include "util/json.h"

namespace chiplet::explore {
namespace {

JsonDiffOptions exact_options() {
    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    exact.ignore_keys = {"meta"};  // run metadata varies run to run
    return exact;
}

/// Sweep whose grid overlaps heavily between differently named specs,
/// so the whole-spec cache can never answer but the cell layer can.
StudySpec sweep_spec(const std::string& name, std::vector<double> areas) {
    StudySpec spec;
    spec.name = name;
    ReSweepConfig c;
    c.nodes = {"7nm", "5nm"};
    c.packagings = {"SoC", "MCM"};
    c.chiplet_counts = {2, 3};
    c.areas_mm2 = std::move(areas);
    spec.config = c;
    return spec;
}

design::System mcm_system(const std::string& name, double area) {
    const design::Chip compute = design::ChipBuilder("compute", "5nm")
                                     .module("cores", area)
                                     .d2d(0.10)
                                     .build();
    return design::SystemBuilder(name, "MCM")
        .chips(compute, 2)
        .quantity(1e6)
        .build();
}

class CellStoreTest : public ::testing::Test {
protected:
    const core::ChipletActuary actuary_;
};

TEST_F(CellStoreTest, LookupVerifiesSystemAndCountsExactly) {
    CellStore store;
    const design::System sys = mcm_system("a", 300.0);
    const std::uint64_t hash = cell_hash(CellEval::full, sys);
    const std::uint64_t tech = 11;

    std::shared_ptr<const core::SystemCost> out;
    EXPECT_FALSE(store.lookup(tech, CellEval::full, hash, sys, out));

    const core::SystemCost cost = actuary_.evaluate(sys);
    store.insert(tech, CellEval::full, hash, sys, cost);
    ASSERT_TRUE(store.lookup(tech, CellEval::full, hash, sys, out));
    EXPECT_EQ(out->re.total(), cost.re.total());
    EXPECT_EQ(out->nre.total(), cost.nre.total());
    EXPECT_EQ(out->system_name, cost.system_name);
    EXPECT_EQ(out->dies.size(), cost.dies.size());

    // A different tech group never aliases, even for the same system.
    EXPECT_FALSE(store.lookup(tech + 1, CellEval::full, hash, sys, out));
    // Neither does the other eval flavour of the same system.
    EXPECT_FALSE(store.lookup(tech, CellEval::re_only,
                              cell_hash(CellEval::re_only, sys), sys, out));

    const CellStore::Stats stats = store.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 3u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.25);
}

TEST_F(CellStoreTest, CrossBatchReuseIsBitIdentical) {
    // Batch A and batch B share most of their grid but no spec bytes,
    // so the study cache can't help — only the cell store can.  Results
    // with the store must equal a fresh storeless evaluation exactly.
    const std::vector<StudySpec> batch_a = {
        sweep_spec("a", {200.0, 500.0})};
    const std::vector<StudySpec> batch_b = {
        sweep_spec("b", {200.0, 500.0, 800.0})};

    CellStore store;
    StudyGraphRun first =
        run_study_graph(actuary_, batch_a, nullptr, &store);
    EXPECT_EQ(first.stats.store_hits, 0u);
    EXPECT_EQ(first.stats.store_misses, first.stats.unique_cells);
    EXPECT_GT(store.stats().insertions, 0u);

    StudyGraphRun second =
        run_study_graph(actuary_, batch_b, nullptr, &store);
    EXPECT_GT(second.stats.store_hits, 0u);
    EXPECT_LT(second.stats.store_misses, second.stats.unique_cells);

    const StudyGraphRun fresh = run_study_graph(actuary_, batch_b);
    const JsonDiffOptions exact = exact_options();
    ASSERT_TRUE(second.results[0].has_value());
    ASSERT_TRUE(fresh.results[0].has_value());
    EXPECT_EQ(json_diff(to_json(*second.results[0]),
                        to_json(*fresh.results[0]), exact),
              "");
}

TEST_F(CellStoreTest, FullyWarmBatchEvaluatesNothing) {
    const std::vector<StudySpec> batch = {sweep_spec("x", {200.0, 500.0})};
    CellStore store;
    (void)run_study_graph(actuary_, batch, nullptr, &store);

    // Identical grid, different spec name: every unique cell is warm.
    const std::vector<StudySpec> again = {sweep_spec("y", {200.0, 500.0})};
    const StudyGraphRun warm =
        run_study_graph(actuary_, again, nullptr, &store);
    EXPECT_EQ(warm.stats.store_hits, warm.stats.unique_cells);
    EXPECT_EQ(warm.stats.store_misses, 0u);
}

TEST_F(CellStoreTest, PlanPeeksWithoutTouchingCountersOrLru) {
    const std::vector<StudySpec> batch = {sweep_spec("x", {200.0, 500.0})};
    CellStore store;
    (void)run_study_graph(actuary_, batch, nullptr, &store);
    const CellStore::Stats before = store.stats();

    const StudyPlan plan = plan_studies(actuary_, batch, &store);
    EXPECT_EQ(plan.stats.store_hits, plan.stats.unique_cells);
    EXPECT_EQ(plan.stats.store_misses, 0u);

    const CellStore::Stats after = store.stats();
    EXPECT_EQ(after.hits, before.hits);
    EXPECT_EQ(after.misses, before.misses);
}

TEST_F(CellStoreTest, MemoryBoundEvictsFromTheColdEnd) {
    CellStore::Config config;
    config.max_bytes = 8 << 10;  // tiny: forces eviction quickly
    config.shards = 1;
    CellStore store(config);

    const std::uint64_t tech = 1;
    for (int i = 0; i < 256; ++i) {
        const design::System sys =
            mcm_system("s" + std::to_string(i), 100.0 + i);
        store.insert(tech, CellEval::full, cell_hash(CellEval::full, sys),
                     sys, actuary_.evaluate(sys));
    }
    const CellStore::Stats stats = store.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.bytes, store.max_bytes());

    // The most recent insert survives; the very first was evicted.
    std::shared_ptr<const core::SystemCost> out;
    const design::System newest = mcm_system("s255", 100.0 + 255);
    EXPECT_TRUE(store.lookup(tech, CellEval::full,
                             cell_hash(CellEval::full, newest), newest, out));
    const design::System oldest = mcm_system("s0", 100.0);
    EXPECT_FALSE(store.lookup(tech, CellEval::full,
                              cell_hash(CellEval::full, oldest), oldest, out));
}

TEST_F(CellStoreTest, ClearDropsEntriesButKeepsCounters) {
    CellStore store;
    const design::System sys = mcm_system("a", 300.0);
    const std::uint64_t hash = cell_hash(CellEval::full, sys);
    store.insert(7, CellEval::full, hash, sys, actuary_.evaluate(sys));
    std::shared_ptr<const core::SystemCost> out;
    ASSERT_TRUE(store.lookup(7, CellEval::full, hash, sys, out));
    store.clear();
    EXPECT_FALSE(store.lookup(7, CellEval::full, hash, sys, out));
    const CellStore::Stats stats = store.stats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.hits, 1u);
}

TEST_F(CellStoreTest, TechOverrideGroupsKeySeparately) {
    // The same spec with and without a (cost-changing) tech override
    // compiles into different tech groups; the store must never serve a
    // cell priced under one library to the other.
    StudySpec base = sweep_spec("base", {200.0});
    StudySpec patched = sweep_spec("patched", {200.0});
    patched.tech_overrides = JsonValue::parse(
        R"({"nodes":[{"name":"5nm","defect_density_cm2":0.05}]})");

    CellStore store;
    const std::vector<StudySpec> first = {base};
    (void)run_study_graph(actuary_, first, nullptr, &store);

    const std::vector<StudySpec> second = {patched};
    const StudyGraphRun run =
        run_study_graph(actuary_, second, nullptr, &store);
    // Same grid, different library: everything must be a store miss.
    EXPECT_EQ(run.stats.store_hits, 0u);

    const StudyGraphRun fresh = run_study_graph(actuary_, second);
    ASSERT_TRUE(run.results[0].has_value());
    ASSERT_TRUE(fresh.results[0].has_value());
    const JsonDiffOptions exact = exact_options();
    EXPECT_EQ(json_diff(to_json(*run.results[0]), to_json(*fresh.results[0]),
                        exact),
              "");
}

}  // namespace
}  // namespace chiplet::explore
