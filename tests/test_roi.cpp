#include "reuse/roi.h"

#include <gtest/gtest.h>

#include "reuse/fsmc.h"
#include "reuse/ocme.h"
#include "reuse/scms.h"
#include "util/error.h"

namespace chiplet::reuse {
namespace {

TEST(ReuseRoi, ScmsScorecard) {
    const core::ChipletActuary actuary;
    const ScmsConfig config;
    const ReuseReport report =
        reuse_report(actuary, make_scms_family(config),
                     make_scms_soc_family(config));
    EXPECT_EQ(report.systems, 3u);
    EXPECT_EQ(report.chip_designs, 1u);
    EXPECT_DOUBLE_EQ(report.systems_per_chip_design, 3.0);
    EXPECT_GT(report.nre_saving, 0.0);  // chiplet reuse saves NRE
    EXPECT_GT(report.family_nre_usd, 0.0);
    EXPECT_LT(report.cost_ratio, 1.0);  // and wins on average unit cost
}

TEST(ReuseRoi, FsmcBeatsScmsOnReuseMetric) {
    // "The basic principle is building more systems by fewer chiplets":
    // FSMC's systems-per-chip-design dwarfs SCMS's.
    const core::ChipletActuary actuary;
    const ScmsConfig scms;
    const ReuseReport scms_report = reuse_report(
        actuary, make_scms_family(scms), make_scms_soc_family(scms));
    FsmcConfig fsmc;
    fsmc.chiplet_types = 4;
    fsmc.sockets = 4;
    const ReuseReport fsmc_report = reuse_report(
        actuary, make_fsmc_family(fsmc), make_fsmc_soc_family(fsmc));
    EXPECT_GT(fsmc_report.systems_per_chip_design,
              3.0 * scms_report.systems_per_chip_design);
    EXPECT_GT(fsmc_report.nre_saving, scms_report.nre_saving);
}

TEST(ReuseRoi, OcmeScorecard) {
    const core::ChipletActuary actuary;
    const OcmeConfig config;
    const ReuseReport report = reuse_report(
        actuary, make_ocme_family(config), make_ocme_soc_family(config));
    EXPECT_EQ(report.systems, 4u);
    EXPECT_EQ(report.chip_designs, 3u);  // C, X, Y
    EXPECT_GT(report.nre_saving, 0.0);
    // OCME reuses less than SCMS (paper Sec. 5.2).
    const ScmsConfig scms;
    const ReuseReport scms_report = reuse_report(
        actuary, make_scms_family(scms), make_scms_soc_family(scms));
    EXPECT_LT(report.systems_per_chip_design,
              scms_report.systems_per_chip_design);
}

TEST(ReuseRoi, MismatchedFamiliesThrow) {
    const core::ChipletActuary actuary;
    const ScmsConfig config;
    ScmsConfig shorter = config;
    shorter.grades = {1, 2};
    EXPECT_THROW((void)reuse_report(actuary, make_scms_family(config),
                                    make_scms_soc_family(shorter)),
                 ParameterError);
    EXPECT_THROW((void)reuse_report(actuary, design::SystemFamily{},
                                    design::SystemFamily{}),
                 ParameterError);
}

}  // namespace
}  // namespace chiplet::reuse
