#include "explore/sweep.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace chiplet::explore {
namespace {

TEST(ReSweep, GridSizeMatchesAxes) {
    const core::ChipletActuary actuary;
    ReSweepConfig config;
    config.nodes = {"7nm"};
    config.areas_mm2 = {100.0, 500.0};
    config.chiplet_counts = {2, 3};
    // Per (node, area): 1 SoC point + 3 packagings x 2 counts = 7.
    const auto points = sweep_re_grid(actuary, config);
    EXPECT_EQ(points.size(), 2u * 7u);
}

TEST(ReSweep, NormalisationAnchors100mm2SocAtOne) {
    const core::ChipletActuary actuary;
    ReSweepConfig config;
    config.nodes = {"7nm"};
    config.areas_mm2 = {100.0};
    const auto points = sweep_re_grid(actuary, config);
    const auto soc = std::find_if(points.begin(), points.end(), [](const auto& p) {
        return p.packaging == "SoC";
    });
    ASSERT_NE(soc, points.end());
    EXPECT_NEAR(soc->normalized, 1.0, 1e-9);
}

TEST(ReSweep, SocCostPerAreaGrowsWithArea) {
    const core::ChipletActuary actuary;
    ReSweepConfig config;
    config.nodes = {"5nm"};
    config.packagings = {"SoC"};
    // Start at 200 mm^2: below that the fixed package overhead dominates
    // the per-area trend.
    config.areas_mm2 = {200, 300, 400, 500, 600, 700, 800, 900};
    const auto points = sweep_re_grid(actuary, config);
    // normalized/area must grow: defect cost superlinear in area.
    double previous = 0.0;
    for (const auto& p : points) {
        const double per_area = p.normalized / p.area_mm2;
        EXPECT_GT(per_area, previous) << "area " << p.area_mm2;
        previous = per_area;
    }
}

TEST(ReSweep, EmptyAxesThrow) {
    const core::ChipletActuary actuary;
    ReSweepConfig config;
    config.nodes = {};
    EXPECT_THROW((void)sweep_re_grid(actuary, config), ParameterError);
}

TEST(QuantitySweep, PointsPerAxisProduct) {
    const core::ChipletActuary actuary;
    const auto points = sweep_total_vs_quantity(actuary, "14nm", 800.0, 2, 0.10,
                                                {"SoC", "MCM"}, {5e5, 2e6, 1e7});
    EXPECT_EQ(points.size(), 6u);
}

TEST(QuantitySweep, NreShareFallsWithQuantity) {
    const core::ChipletActuary actuary;
    const auto points = sweep_total_vs_quantity(actuary, "5nm", 800.0, 2, 0.10,
                                                {"MCM"}, {5e5, 2e6, 1e7});
    ASSERT_EQ(points.size(), 3u);
    EXPECT_GT(points[0].cost.nre.total(), points[1].cost.nre.total());
    EXPECT_GT(points[1].cost.nre.total(), points[2].cost.nre.total());
    // RE component identical across quantities.
    EXPECT_NEAR(points[0].cost.re.total(), points[2].cost.re.total(), 1e-9);
}

TEST(QuantitySweep, EmptyAxesThrow) {
    const core::ChipletActuary actuary;
    EXPECT_THROW((void)sweep_total_vs_quantity(actuary, "5nm", 800.0, 2, 0.10,
                                               {}, {1e6}),
                 ParameterError);
}

}  // namespace
}  // namespace chiplet::explore
