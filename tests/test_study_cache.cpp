// The canonical-spec result cache (explore/study_cache.h): exact hits,
// LRU eviction order, memory-bound enforcement, collision fall-through
// through the hash_bits seam, counter accuracy, and thread safety.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/actuary.h"
#include "explore/spec_hash.h"
#include "explore/study.h"
#include "explore/study_cache.h"
#include "explore/study_json.h"
#include "util/json.h"

namespace chiplet::explore {
namespace {

/// Cheap deterministic study (pareto never touches the cost engines),
/// sized identically for every `name` of equal length so LRU tests can
/// reason about per-entry bytes.
StudySpec pareto_spec(const std::string& name) {
    StudySpec spec;
    spec.name = name;
    ParetoConfig config;
    config.points = {ParetoPoint{1.0, 2.0, 0}, ParetoPoint{2.0, 1.0, 1}};
    spec.config = config;
    return spec;
}

class StudyCacheTest : public ::testing::Test {
protected:
    const core::ChipletActuary actuary_;
};

TEST_F(StudyCacheTest, HitIsBitIdenticalAndFlagged) {
    StudyCache cache;
    const StudySpec spec = pareto_spec("p");
    const StudyResult fresh = run_study(actuary_, spec);
    cache.insert(spec, fresh);

    const std::optional<StudyResult> hit = cache.lookup(spec);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->run.from_cache);
    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    exact.ignore_keys = {"meta"};
    EXPECT_EQ(json_diff(to_json(*hit), to_json(fresh), exact), "");
}

TEST_F(StudyCacheTest, CountersTrackEveryTransition) {
    StudyCache cache;
    const StudySpec spec = pareto_spec("p");
    EXPECT_FALSE(cache.lookup(spec).has_value());
    cache.insert(spec, run_study(actuary_, spec));
    EXPECT_TRUE(cache.lookup(spec).has_value());
    EXPECT_TRUE(cache.lookup(spec).has_value());

    const StudyCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.collisions, 0u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_GT(stats.bytes, 0u);
}

TEST_F(StudyCacheTest, LruEvictsColdestFirst) {
    // Measure one entry's cost in an unbounded cache, then build a
    // single-shard cache that holds exactly three of them.
    const StudyResult result = run_study(actuary_, pareto_spec("a"));
    std::size_t per_entry = 0;
    {
        StudyCache probe;
        probe.insert(pareto_spec("a"), result);
        per_entry = probe.stats().bytes;
    }
    ASSERT_GT(per_entry, 0u);

    StudyCache::Config config;
    config.shards = 1;  // one LRU list, deterministic order
    config.max_bytes = per_entry * 3 + per_entry / 2;
    StudyCache cache(config);
    for (const char* name : {"a", "b", "c"}) {
        const StudySpec spec = pareto_spec(name);
        cache.insert(spec, run_study(actuary_, spec));
    }
    EXPECT_EQ(cache.stats().entries, 3u);

    // Touch "a" so "b" becomes the coldest, then overflow with "d".
    EXPECT_TRUE(cache.lookup(pareto_spec("a")).has_value());
    cache.insert(pareto_spec("d"), run_study(actuary_, pareto_spec("d")));

    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_TRUE(cache.lookup(pareto_spec("a")).has_value());
    EXPECT_FALSE(cache.lookup(pareto_spec("b")).has_value()) << "LRU order";
    EXPECT_TRUE(cache.lookup(pareto_spec("c")).has_value());
    EXPECT_TRUE(cache.lookup(pareto_spec("d")).has_value());
}

TEST_F(StudyCacheTest, MemoryBoundHoldsUnderChurn) {
    const StudyResult sample = run_study(actuary_, pareto_spec("a"));
    std::size_t per_entry = 0;
    {
        StudyCache probe;
        probe.insert(pareto_spec("a"), sample);
        per_entry = probe.stats().bytes;
    }

    StudyCache::Config config;
    config.shards = 2;
    config.max_bytes = per_entry * 6;
    StudyCache cache(config);
    for (int i = 0; i < 40; ++i) {
        const StudySpec spec = pareto_spec("s" + std::to_string(i));
        cache.insert(spec, run_study(actuary_, spec));
        EXPECT_LE(cache.stats().bytes, config.max_bytes)
            << "bound violated after insert " << i;
    }
    const StudyCache::Stats stats = cache.stats();
    EXPECT_LT(stats.entries, 40u);
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_EQ(stats.insertions, 40u);
}

TEST_F(StudyCacheTest, EntriesOverAShardBudgetAreRejected) {
    StudyCache::Config config;
    config.shards = 1;
    config.max_bytes = 64;  // smaller than any real entry
    StudyCache cache(config);
    const StudySpec spec = pareto_spec("big");
    cache.insert(spec, run_study(actuary_, spec));

    const StudyCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_FALSE(cache.lookup(spec).has_value());
}

TEST_F(StudyCacheTest, TruncatedHashCollisionsFallThrough) {
    // hash_bits = 0 masks every key to the same slot: distinct specs
    // collide by construction, and byte-equality must refuse the hit.
    StudyCache::Config config;
    config.shards = 1;
    config.hash_bits = 0;
    StudyCache cache(config);

    const StudySpec a = pareto_spec("a");
    const StudySpec b = pareto_spec("b");
    cache.insert(a, run_study(actuary_, a));

    EXPECT_FALSE(cache.lookup(b).has_value())
        << "a colliding slot must never serve a different spec";
    EXPECT_EQ(cache.stats().collisions, 1u);

    // The newest spec wins the slot; the older one now falls through.
    cache.insert(b, run_study(actuary_, b));
    const std::optional<StudyResult> hit = cache.lookup(b);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->name, "b");
    EXPECT_FALSE(cache.lookup(a).has_value());
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST_F(StudyCacheTest, ClearDropsEntriesKeepsCounters) {
    StudyCache cache;
    const StudySpec spec = pareto_spec("p");
    cache.insert(spec, run_study(actuary_, spec));
    EXPECT_TRUE(cache.lookup(spec).has_value());
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);
    EXPECT_EQ(cache.stats().hits, 1u);  // counters keep running
    EXPECT_FALSE(cache.lookup(spec).has_value());
}

TEST_F(StudyCacheTest, RunStudyCachedMissThenHit) {
    StudyCache cache;
    const StudySpec spec = pareto_spec("p");
    const StudyResult cold = run_study_cached(actuary_, spec, cache);
    EXPECT_FALSE(cold.run.from_cache);
    const StudyResult warm = run_study_cached(actuary_, spec, cache);
    EXPECT_TRUE(warm.run.from_cache);

    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    exact.ignore_keys = {"meta"};
    EXPECT_EQ(json_diff(to_json(warm), to_json(run_study(actuary_, spec)),
                        exact),
              "");
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(StudyCacheTest, CollectingBatchRecordsModelFailures) {
    StudyCache cache;
    std::vector<StudySpec> specs;
    specs.push_back(pareto_spec("good"));
    StudySpec bad;
    bad.name = "bad_node";
    BreakevenQuery query;
    query.node = "not_a_node";
    bad.config = query;
    specs.push_back(bad);
    specs.push_back(pareto_spec("good"));  // duplicate: cache hit

    const StudyBatchOutcome outcome =
        run_studies_collecting(actuary_, specs, &cache);
    ASSERT_EQ(outcome.results.size(), 2u);
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.indices, (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(outcome.failures[0].index, 1u);
    EXPECT_EQ(outcome.failures[0].name, "bad_node");
    EXPECT_EQ(outcome.failures[0].stage, "model");
    EXPECT_FALSE(outcome.failures[0].message.empty());
    // Whether the in-batch duplicate hits depends on scheduling (the
    // two copies may evaluate concurrently), so only the re-run has a
    // deterministic expectation: everything cached, failure repeated.
    const StudyBatchOutcome warm =
        run_studies_collecting(actuary_, specs, &cache);
    ASSERT_EQ(warm.results.size(), 2u);
    EXPECT_TRUE(warm.results[0].run.from_cache);
    EXPECT_TRUE(warm.results[1].run.from_cache);
    ASSERT_EQ(warm.failures.size(), 1u);
    EXPECT_EQ(warm.failures[0].name, "bad_node");
}

TEST_F(StudyCacheTest, ConcurrentLookupsAndInsertsAreSafe) {
    // Hammer one cache from several threads; correctness here is "no
    // crash/race under ASan and coherent counters", not ordering.
    StudyCache::Config config;
    config.max_bytes = 1ull << 20;
    config.shards = 4;
    StudyCache cache(config);

    std::vector<StudyResult> results;
    std::vector<StudySpec> specs;
    for (int i = 0; i < 8; ++i) {
        specs.push_back(pareto_spec("t" + std::to_string(i)));
        results.push_back(run_study(actuary_, specs.back()));
    }

    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 200; ++i) {
                const std::size_t k =
                    static_cast<std::size_t>((t + i) % 8);
                if (i % 3 == 0) {
                    cache.insert(specs[k], results[k]);
                } else if (std::optional<StudyResult> hit =
                               cache.lookup(specs[k])) {
                    EXPECT_EQ(hit->name, specs[k].name);
                }
            }
        });
    }
    for (std::thread& t : threads) t.join();

    const StudyCache::Stats stats = cache.stats();
    // 200 iterations per thread, every third an insert: 67 inserts,
    // 133 lookups each.
    EXPECT_EQ(stats.hits + stats.misses, 8u * 133u);
    EXPECT_EQ(stats.insertions, 8u * 67u);
    EXPECT_LE(stats.entries, 8u);
}

}  // namespace
}  // namespace chiplet::explore
