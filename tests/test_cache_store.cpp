// The persistent study-cache store (explore/cache_store.h) and its
// binary result codec (explore/result_codec.h): warm starts are
// bit-identical to cold evaluation, entries from a different model
// fingerprint are rejected wholesale, and any flavour of on-disk damage
// (truncation, zero-length files, junk, flipped bytes) degrades to a
// cold cache instead of a crash.  Two stores sharing one directory —
// two servers pointed at the same --cache-dir — never corrupt each
// other.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/actuary.h"
#include "core/version.h"
#include "explore/cache_store.h"
#include "explore/montecarlo.h"
#include "explore/pareto.h"
#include "explore/result_codec.h"
#include "explore/spec_hash.h"
#include "explore/study.h"
#include "explore/study_cache.h"
#include "explore/study_json.h"
#include "explore/sweep.h"
#include "util/error.h"
#include "util/json.h"

namespace chiplet::explore {
namespace {

JsonDiffOptions exact_options() {
    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    exact.ignore_keys = {"meta"};  // run metadata varies run to run
    return exact;
}

StudySpec pareto_spec(const std::string& name) {
    StudySpec spec;
    spec.name = name;
    ParetoConfig config;
    config.points = {ParetoPoint{1.0, 2.0, 0}, ParetoPoint{2.0, 1.0, 1}};
    spec.config = config;
    return spec;
}

StudySpec sweep_spec(const std::string& name) {
    StudySpec spec;
    spec.name = name;
    ReSweepConfig c;
    c.nodes = {"7nm", "5nm"};
    c.packagings = {"SoC", "MCM"};
    c.chiplet_counts = {2};
    c.areas_mm2 = {200.0};
    spec.config = c;
    return spec;
}

StudySpec mc_spec(const std::string& name) {
    StudySpec spec;
    spec.name = name;
    McStudyConfig c;
    c.scenario.node = "7nm";
    c.scenario.packaging = "MCM";
    c.scenario.module_area_mm2 = 400.0;
    c.scenario.chiplets = 2;
    c.draws = 32;
    c.seed = 7;
    spec.config = c;
    return spec;
}

/// Fresh per-test directory under the system tmp dir, removed on exit.
class CacheStoreTest : public ::testing::Test {
protected:
    void SetUp() override {
        static std::atomic<int> counter{0};
        dir_ = (std::filesystem::temp_directory_path() /
                ("chiplet_cache_store_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter.fetch_add(1))))
                   .string();
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    [[nodiscard]] std::vector<std::string> entry_files() const {
        std::vector<std::string> out;
        for (const auto& e : std::filesystem::directory_iterator(dir_)) {
            if (e.path().extension() == ".study") {
                out.push_back(e.path().string());
            }
        }
        return out;
    }

    std::string dir_;
    const core::ChipletActuary actuary_;
};

// ---- result codec ----------------------------------------------------------

TEST_F(CacheStoreTest, CodecRoundTripsEveryTestedKindBitIdentically) {
    const JsonDiffOptions exact = exact_options();
    for (const StudySpec& spec :
         {pareto_spec("p"), sweep_spec("s"), mc_spec("m")}) {
        const StudyResult fresh = run_study(actuary_, spec);
        const std::string blob = encode_result(fresh);
        StudyResult decoded;
        ASSERT_TRUE(decode_result(blob, decoded)) << spec.name;
        EXPECT_EQ(json_diff(to_json(decoded), to_json(fresh), exact), "")
            << spec.name;
        // Codec fields outside the JSON projection round-trip too: the
        // lossy to_json summarises MC samples, the codec must not.
        if (const auto* mc = std::get_if<McStudyOutcome>(&fresh.payload)) {
            const auto& back = std::get<McStudyOutcome>(decoded.payload);
            EXPECT_EQ(back.mc.samples, mc->mc.samples);
        }
        EXPECT_EQ(decoded.run.cell_hits, fresh.run.cell_hits);
        EXPECT_EQ(decoded.run.with_ledgers, fresh.run.with_ledgers);
    }
}

TEST_F(CacheStoreTest, CodecRejectsDamage) {
    const StudyResult fresh = run_study(actuary_, sweep_spec("s"));
    const std::string blob = encode_result(fresh);
    StudyResult out;
    EXPECT_FALSE(decode_result("", out));
    EXPECT_FALSE(decode_result(blob.substr(0, blob.size() / 2), out));
    EXPECT_FALSE(decode_result(blob + "x", out));  // trailing bytes
    std::string flipped = blob;
    flipped[0] ^= 0x40;  // kind byte out of range / wrong shape
    StudyResult sink;
    (void)decode_result(flipped, sink);  // must not crash; result unspecified
}

// ---- persistence round trip -------------------------------------------------

TEST_F(CacheStoreTest, WarmStartIsBitIdenticalToCold) {
    const JsonDiffOptions exact = exact_options();
    const std::vector<StudySpec> specs = {sweep_spec("a"), pareto_spec("b"),
                                          mc_spec("c")};
    std::vector<StudyResult> cold;

    {
        StudyCacheStore store({dir_, 0});
        StudyCache cache;
        cache.attach_store(&store);
        for (const StudySpec& spec : specs) {
            cold.push_back(run_study_cached(actuary_, spec, cache));
        }
        EXPECT_EQ(store.stats().writes, specs.size());
    }
    EXPECT_EQ(entry_files().size(), specs.size());

    // "Restart": a brand-new cache warmed from the same directory.
    StudyCacheStore store({dir_, 0});
    StudyCache cache;
    store.load_into(cache);
    cache.attach_store(&store);
    EXPECT_EQ(store.stats().loaded, specs.size());

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::optional<StudyResult> hit = cache.lookup(specs[i]);
        ASSERT_TRUE(hit.has_value()) << specs[i].name;
        EXPECT_TRUE(hit->run.from_cache);
        EXPECT_EQ(json_diff(to_json(*hit), to_json(cold[i]), exact), "")
            << specs[i].name;
    }
    // Loading replayed inserts through the cache, but the store was
    // attached only afterwards: no entry was rewritten.
    EXPECT_EQ(store.stats().writes, 0u);
}

TEST_F(CacheStoreTest, StaleFingerprintEntriesAreIgnoredWholesale) {
    const StudySpec spec = sweep_spec("s");
    {
        StudyCacheStore old_model({dir_, 0xDEADBEEFull});
        old_model.put(canonical_spec_json(spec),
                      fnv1a64(canonical_spec_json(spec)),
                      run_study(actuary_, spec));
    }
    StudyCacheStore store({dir_, 0});  // 0 = the real model fingerprint
    StudyCache cache;
    store.load_into(cache);
    EXPECT_EQ(store.stats().loaded, 0u);
    EXPECT_EQ(store.stats().stale, 1u);
    EXPECT_FALSE(cache.lookup(spec).has_value());
}

TEST_F(CacheStoreTest, DefaultFingerprintIsTheModelFingerprint) {
    StudyCacheStore store({dir_, 0});
    EXPECT_EQ(store.fingerprint(), core::model_fingerprint());
    EXPECT_EQ(store.dir(), dir_);
}

TEST_F(CacheStoreTest, CorruptEntriesDegradeToAColdCacheNotACrash) {
    const StudySpec spec = sweep_spec("s");
    const std::string canonical = canonical_spec_json(spec);
    {
        StudyCacheStore store({dir_, 0});
        store.put(canonical, fnv1a64(canonical), run_study(actuary_, spec));
    }
    const std::vector<std::string> files = entry_files();
    ASSERT_EQ(files.size(), 1u);
    std::string blob;
    {
        std::ifstream in(files[0], std::ios::binary);
        blob.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    }
    ASSERT_GT(blob.size(), 32u);

    const auto write_entry = [&](const std::string& name,
                                 const std::string& bytes) {
        std::ofstream out(dir_ + "/" + name, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    };
    // One damaged sibling per failure mode, alongside the good entry.
    write_entry("0000000000000000.study", "");              // zero-length
    write_entry("0000000000000001.study", "garbage bytes"); // junk, no magic
    write_entry("0000000000000002.study",
                blob.substr(0, blob.size() / 2));           // truncated
    std::string flipped = blob;
    flipped[blob.size() / 2] ^= 0x01;                       // checksum breaks
    write_entry("0000000000000003.study", flipped);

    StudyCacheStore store({dir_, 0});
    StudyCache cache;
    store.load_into(cache);
    EXPECT_EQ(store.stats().loaded, 1u);
    EXPECT_EQ(store.stats().corrupt, 4u);
    EXPECT_TRUE(cache.lookup(spec).has_value());
}

TEST_F(CacheStoreTest, TwoStoresSharingOneDirectoryStayConsistent) {
    // Two servers pointed at one --cache-dir: concurrent write-through
    // of an overlapping working set, then a third store loads the
    // directory.  Atomic temp-then-rename writes mean every file is
    // whole; last writer wins per spec, nothing is torn.
    std::vector<StudySpec> specs;
    for (int i = 0; i < 8; ++i) {
        specs.push_back(pareto_spec("shared_" + std::to_string(i)));
    }
    std::vector<StudyResult> results;
    for (const StudySpec& spec : specs) {
        results.push_back(run_study(actuary_, spec));
    }

    StudyCacheStore a({dir_, 0});
    StudyCacheStore b({dir_, 0});
    std::thread ta([&] {
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const std::string canonical = canonical_spec_json(specs[i]);
            a.put(canonical, fnv1a64(canonical), results[i]);
        }
    });
    std::thread tb([&] {
        for (std::size_t i = specs.size(); i-- > 0;) {
            const std::string canonical = canonical_spec_json(specs[i]);
            b.put(canonical, fnv1a64(canonical), results[i]);
        }
    });
    ta.join();
    tb.join();
    EXPECT_EQ(a.stats().write_failures + b.stats().write_failures, 0u);

    StudyCacheStore reader({dir_, 0});
    StudyCache cache;
    reader.load_into(cache);
    EXPECT_EQ(reader.stats().loaded, specs.size());
    EXPECT_EQ(reader.stats().corrupt, 0u);
    const JsonDiffOptions exact = exact_options();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::optional<StudyResult> hit = cache.lookup(specs[i]);
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(json_diff(to_json(*hit), to_json(results[i]), exact), "");
    }
}

TEST_F(CacheStoreTest, UncreatableDirectoryThrows) {
    const std::string blocked = dir_;
    {
        std::filesystem::create_directories(
            std::filesystem::path(blocked).parent_path());
        std::ofstream out(blocked);  // a *file* where the dir should go
        out << "x";
    }
    EXPECT_THROW((StudyCacheStore{
                     StudyCacheStore::Config{blocked + "/sub", 0}}),
                 Error);
    std::filesystem::remove(blocked);
}

}  // namespace
}  // namespace chiplet::explore
