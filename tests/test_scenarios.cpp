#include "core/scenarios.h"

#include <gtest/gtest.h>

#include "tech/tech_library.h"
#include "util/error.h"

namespace chiplet::core {
namespace {

TEST(MonolithicSoc, ShapeAndArea) {
    const design::System soc = monolithic_soc("big", "5nm", 800.0, 2e6);
    EXPECT_EQ(soc.packaging(), "SoC");
    EXPECT_EQ(soc.die_count(), 1u);
    EXPECT_TRUE(soc.is_monolithic());
    EXPECT_DOUBLE_EQ(soc.quantity(), 2e6);
    const auto lib = tech::TechLibrary::builtin();
    EXPECT_DOUBLE_EQ(soc.total_die_area(lib), 800.0);  // no D2D on SoC
}

TEST(SplitSystem, EqualChipletsWithD2d) {
    const design::System mcm = split_system("s", "5nm", "MCM", 800.0, 4, 0.10, 1e6);
    EXPECT_EQ(mcm.die_count(), 4u);
    EXPECT_EQ(mcm.placements().size(), 4u);
    const auto lib = tech::TechLibrary::builtin();
    EXPECT_NEAR(mcm.total_die_area(lib), 800.0 / 0.9, 1e-9);
    for (const auto& p : mcm.placements()) {
        EXPECT_NEAR(p.chip.module_area(lib), 200.0, 1e-9);
    }
}

TEST(SplitSystem, DistinctChipNamesPerSlice) {
    const design::System mcm = split_system("s", "7nm", "MCM", 600.0, 3, 0.10, 1e6);
    EXPECT_NE(mcm.placements()[0].chip.name(), mcm.placements()[1].chip.name());
    EXPECT_NE(mcm.placements()[1].chip.name(), mcm.placements()[2].chip.name());
}

TEST(SplitSystem, SingleChipletOnMcmAllowed) {
    const design::System one = split_system("s", "7nm", "MCM", 300.0, 1, 0.10, 1e6);
    EXPECT_EQ(one.die_count(), 1u);
    EXPECT_EQ(one.packaging(), "MCM");
}

TEST(Scenarios, InvalidInputsThrow) {
    EXPECT_THROW((void)monolithic_soc("s", "5nm", 800.0, 0.0), ParameterError);
    EXPECT_THROW((void)split_system("s", "5nm", "MCM", 0.0, 2, 0.1, 1e6),
                 ParameterError);
    EXPECT_THROW((void)split_system("s", "5nm", "MCM", 800.0, 0, 0.1, 1e6),
                 ParameterError);
}

}  // namespace
}  // namespace chiplet::core
