#include "yield/learning.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace chiplet::yield {
namespace {

TEST(DefectLearningCurve, EndpointsAndDecay) {
    const DefectLearningCurve curve(0.20, 0.05, 12.0);
    EXPECT_DOUBLE_EQ(curve.defect_density(0.0), 0.20);
    EXPECT_GT(curve.defect_density(6.0), 0.05);
    EXPECT_LT(curve.defect_density(6.0), 0.20);
    EXPECT_NEAR(curve.defect_density(1200.0), 0.05, 1e-9);
}

TEST(DefectLearningCurve, MonotoneDecreasing) {
    const DefectLearningCurve curve(0.13, 0.07, 18.0);
    double previous = 1.0;
    for (double t = 0.0; t <= 60.0; t += 3.0) {
        const double d = curve.defect_density(t);
        EXPECT_LT(d, previous);
        previous = d;
    }
}

TEST(DefectLearningCurve, MonthsToReachInverts) {
    const DefectLearningCurve curve(0.20, 0.05, 12.0);
    const double target = 0.10;
    const double months = curve.months_to_reach(target);
    EXPECT_NEAR(curve.defect_density(months), target, 1e-12);
}

TEST(DefectLearningCurve, MonthsToReachInitialIsZero) {
    const DefectLearningCurve curve(0.20, 0.05, 12.0);
    EXPECT_NEAR(curve.months_to_reach(0.20), 0.0, 1e-12);
}

TEST(DefectLearningCurve, InvalidParametersThrow) {
    EXPECT_THROW(DefectLearningCurve(0.05, 0.20, 12.0), ParameterError);  // ordered
    EXPECT_THROW(DefectLearningCurve(0.20, -0.01, 12.0), ParameterError);
    EXPECT_THROW(DefectLearningCurve(0.20, 0.05, 0.0), ParameterError);
}

TEST(DefectLearningCurve, InvalidTargetsThrow) {
    const DefectLearningCurve curve(0.20, 0.05, 12.0);
    EXPECT_THROW((void)curve.months_to_reach(0.05), ParameterError);  // never reached
    EXPECT_THROW((void)curve.months_to_reach(0.25), ParameterError);  // above initial
    EXPECT_THROW((void)curve.defect_density(-1.0), ParameterError);
}

}  // namespace
}  // namespace chiplet::yield
