// Deterministic fuzzing of the JSON parser and of the actuaryd wire
// protocol: randomly generated documents must round-trip exactly,
// random mutations of valid documents must either parse or throw
// ParseError/LookupError, and a live server fed truncated frames,
// oversized lines, interleaved garbage or mid-request disconnects must
// answer structured errors and keep serving — never crash, hang or
// corrupt memory.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "core/actuary.h"
#include "explore/rng.h"
#include "explore/study_json.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/error.h"
#include "util/json.h"

namespace chiplet {
namespace {

using explore::Rng;

/// Random JSON document generator with bounded depth/size.
JsonValue random_value(Rng& rng, unsigned depth) {
    const double pick = rng.uniform();
    if (depth == 0 || pick < 0.35) {
        const double leaf = rng.uniform();
        if (leaf < 0.2) return JsonValue(nullptr);
        if (leaf < 0.4) return JsonValue(rng.uniform() < 0.5);
        if (leaf < 0.7) {
            // Mix of integers, fractions and exponent-scale values.
            const double scale = rng.uniform() < 0.5 ? 1.0 : 1e6;
            double v = rng.uniform(-1000.0, 1000.0) * scale;
            if (rng.uniform() < 0.5) v = std::floor(v);
            return JsonValue(v);
        }
        // Strings with characters that exercise escaping.
        static const char* samples[] = {"plain", "with \"quotes\"",
                                        "tab\there", "new\nline",
                                        "back\\slash", "", "ünïcode"};
        return JsonValue(std::string(
            samples[rng.next() % (sizeof(samples) / sizeof(samples[0]))]));
    }
    if (pick < 0.65) {
        JsonValue array = JsonValue::array();
        const unsigned n = static_cast<unsigned>(rng.uniform(0.0, 5.0));
        for (unsigned i = 0; i < n; ++i) {
            array.push_back(random_value(rng, depth - 1));
        }
        return array;
    }
    JsonValue object = JsonValue::object();
    const unsigned n = static_cast<unsigned>(rng.uniform(0.0, 5.0));
    for (unsigned i = 0; i < n; ++i) {
        object.set("k" + std::to_string(i), random_value(rng, depth - 1));
    }
    return object;
}

TEST(JsonFuzz, RandomDocumentsRoundTripExactly) {
    Rng rng(2024);
    for (int i = 0; i < 300; ++i) {
        const JsonValue original = random_value(rng, 4);
        const std::string compact = original.dump();
        const std::string pretty = original.dump(2);
        const JsonValue a = JsonValue::parse(compact);
        const JsonValue b = JsonValue::parse(pretty);
        EXPECT_EQ(a.dump(), compact) << "iteration " << i;
        EXPECT_EQ(b.dump(), compact) << "iteration " << i;
    }
}

TEST(JsonFuzz, MutatedDocumentsNeverCrash) {
    Rng rng(777);
    unsigned parsed = 0;
    unsigned rejected = 0;
    for (int i = 0; i < 600; ++i) {
        std::string text = random_value(rng, 3).dump();
        if (text.empty()) continue;
        // Apply 1-3 random byte mutations: overwrite, delete or insert.
        const unsigned mutations = 1 + static_cast<unsigned>(rng.next() % 3);
        for (unsigned m = 0; m < mutations && !text.empty(); ++m) {
            const std::size_t pos = rng.next() % text.size();
            static const char noise[] = "{}[]\",:0919eE+-.tfn\\ x";
            switch (rng.next() % 3) {
                case 0:
                    text[pos] = noise[rng.next() % (sizeof(noise) - 1)];
                    break;
                case 1: text.erase(pos, 1); break;
                default:
                    text.insert(pos, 1, noise[rng.next() % (sizeof(noise) - 1)]);
            }
        }
        try {
            const JsonValue v = JsonValue::parse(text);
            // Whatever parsed must serialise and re-parse consistently.
            EXPECT_EQ(JsonValue::parse(v.dump()).dump(), v.dump());
            ++parsed;
        } catch (const Error&) {
            ++rejected;  // ParseError/LookupError are the accepted outcome
        }
    }
    // Sanity: the fuzzer actually exercised both paths.
    EXPECT_GT(parsed, 10u);
    EXPECT_GT(rejected, 100u);
}

TEST(JsonFuzz, DeeplyNestedDocumentsParse) {
    std::string open;
    std::string close;
    for (int i = 0; i < 200; ++i) {
        open += "[";
        close += "]";
    }
    const JsonValue v = JsonValue::parse(open + "1" + close);
    EXPECT_EQ(v.dump(), open + "1" + close);
}

TEST(JsonFuzz, MutatedStudyDocumentsNeverCrash) {
    // Start from a valid all-kinds study document and mutate bytes: the
    // study loader must either produce specs or throw a chiplet::Error —
    // never crash, hang or corrupt memory (CI runs this under
    // ASan/UBSan).
    const std::string seed_doc = R"({
      "studies": [
        {"name":"a","kind":"re_sweep",
         "config":{"nodes":["7nm"],"areas_mm2":[100,300],"chiplet_counts":[2]}},
        {"name":"b","kind":"monte_carlo",
         "config":{"scenario":{"node":"5nm","packaging":"MCM","chiplets":2},
                   "draws":16,"seed":1}},
        {"name":"c","kind":"breakeven","config":{"axis":"area","lo":50,"hi":900}},
        {"name":"d","kind":"pareto",
         "config":{"points":[{"x":1,"y":2},{"x":2,"y":1}]}},
        {"name":"e","kind":"timeline",
         "tech":{"nodes":[{"name":"7nm","defect_density_cm2":0.08}]},
         "config":{"scenario":{"node":"7nm"},"months":6}}
      ]
    })";
    Rng rng(4242);
    unsigned parsed = 0;
    unsigned rejected = 0;
    for (int i = 0; i < 400; ++i) {
        std::string text = seed_doc;
        const unsigned mutations = 1 + static_cast<unsigned>(rng.next() % 4);
        for (unsigned m = 0; m < mutations && !text.empty(); ++m) {
            const std::size_t pos = rng.next() % text.size();
            static const char noise[] = "{}[]\",:0919eE+-.tfn\\ x";
            switch (rng.next() % 3) {
                case 0:
                    text[pos] = noise[rng.next() % (sizeof(noise) - 1)];
                    break;
                case 1: text.erase(pos, 1); break;
                default:
                    text.insert(pos, 1, noise[rng.next() % (sizeof(noise) - 1)]);
            }
        }
        try {
            const auto specs =
                explore::studies_from_json(JsonValue::parse(text), "fuzz");
            // Whatever loaded must serialise to a loadable canonical form.
            const JsonValue doc = explore::studies_to_json(specs);
            EXPECT_EQ(explore::studies_to_json(
                          explore::studies_from_json(doc, "fuzz2"))
                          .dump(),
                      doc.dump());
            ++parsed;
        } catch (const Error&) {
            ++rejected;  // ParseError/LookupError are the accepted outcome
        }
    }
    EXPECT_GT(parsed + rejected, 0u);
    EXPECT_GT(rejected, 50u);  // the fuzzer actually broke documents
}

TEST(JsonFuzz, RandomDocumentsThroughStudyLoaderNeverCrash) {
    Rng rng(909);
    for (int i = 0; i < 200; ++i) {
        const JsonValue doc = random_value(rng, 3);
        try {
            (void)explore::studies_from_json(doc, "fuzz");
        } catch (const Error&) {
            // rejection is fine; anything else (crash, non-chiplet
            // exception) fails the test
        }
    }
}

TEST(JsonFuzz, LongStringsAndKeys) {
    const std::string big(100'000, 'x');
    JsonValue obj = JsonValue::object();
    obj.set(big, JsonValue(big));
    const JsonValue restored = JsonValue::parse(obj.dump());
    EXPECT_EQ(restored.at(big).as_string(), big);
}

// ---- wire-protocol fuzzing against a live server ----------------------------

/// Server shared by the protocol fuzz cases: every scenario must leave
/// it able to answer a fresh ping, which is the "still alive and not
/// wedged" check.
class ProtocolFuzz : public ::testing::Test {
protected:
    void SetUp() override {
        serve::ServerConfig config;
        config.port = 0;
        config.max_line_bytes = 64 * 1024;  // small enough to fuzz past
        server_ = std::make_unique<serve::StudyServer>(actuary_, config);
        server_->start();
    }

    void TearDown() override { server_->stop(); }

    [[nodiscard]] serve::StudyClient connect() const {
        return serve::StudyClient("127.0.0.1", server_->port());
    }

    void expect_alive() {
        serve::StudyClient probe = connect();
        EXPECT_TRUE(probe.ping().at("ok").as_bool()) << "server wedged";
    }

    const core::ChipletActuary actuary_;
    std::unique_ptr<serve::StudyServer> server_;
};

TEST_F(ProtocolFuzz, MalformedFramesGetStructuredErrorsAndConnectionSurvives) {
    serve::StudyClient client = connect();
    const char* bad_frames[] = {
        "not json at all",
        "{\"studies\":",            // truncated mid-document
        "[1,2,3]",                  // valid JSON, wrong shape
        "{\"op\":\"explode\"}",     // unknown verb
        "{\"op\":42}",              // mistyped verb
        "{}",                       // neither studies nor op
        "\"ping\"",                 // bare string
        "{\"studies\":{}}",         // studies not an array
    };
    for (const char* frame : bad_frames) {
        const JsonValue response = client.call(frame);
        ASSERT_TRUE(response.contains("error")) << frame;
        EXPECT_FALSE(
            response.at("error").at("message").as_string().empty())
            << frame;
        EXPECT_EQ(response.at("error").at("code").as_string(), "parse")
            << frame;
    }
    // The same connection still serves real requests.
    EXPECT_TRUE(client.ping().at("ok").as_bool());
}

TEST_F(ProtocolFuzz, InterleavedGarbageBetweenValidFrames) {
    serve::StudyClient client = connect();
    explore::Rng rng(31337);
    for (int i = 0; i < 25; ++i) {
        std::string garbage;
        const unsigned len = 1 + static_cast<unsigned>(rng.next() % 60);
        for (unsigned c = 0; c < len; ++c) {
            // Printable noise without the frame delimiter.
            garbage += static_cast<char>(' ' + rng.next() % 94);
        }
        const JsonValue error = client.call(garbage);
        EXPECT_TRUE(error.contains("error")) << garbage;
        EXPECT_TRUE(client.ping().at("ok").as_bool());
    }
}

TEST_F(ProtocolFuzz, TruncatedFrameThenDisconnectNeverWedges) {
    for (int i = 0; i < 10; ++i) {
        serve::StudyClient client = connect();
        // A frame that never completes: no delimiter, then hangup.
        client.send_bytes(R"({"studies":[{"name":"half)");
        client.close();
    }
    expect_alive();
}

TEST_F(ProtocolFuzz, MidRequestHalfCloseGetsNoAnswerButServerSurvives) {
    serve::StudyClient client = connect();
    client.send_bytes(R"({"op":"st)");  // half a verb
    client.shutdown_write();            // EOF mid-request
    EXPECT_THROW((void)client.read_line(), Error);  // no response frame
    expect_alive();
}

TEST_F(ProtocolFuzz, OversizedLineIsRejectedWithoutCrashing) {
    serve::StudyClient client = connect();
    // 96 KiB of digits with no delimiter: crosses max_line_bytes.
    const std::string huge(96 * 1024, '7');
    client.send_bytes(huge);
    const std::string response = client.read_line();
    const JsonValue error = JsonValue::parse(response);
    ASSERT_TRUE(error.contains("error"));
    EXPECT_EQ(error.at("error").at("code").as_string(), "oversized");
    // This connection is closed by contract (the frame cannot be
    // resynchronised) but the server keeps accepting.
    EXPECT_THROW((void)client.read_line(), Error);
    expect_alive();
}

TEST_F(ProtocolFuzz, CompleteOversizedFrameIsRefusedButConnectionSurvives) {
    serve::StudyClient client = connect();
    // A terminated frame just over the 64 KiB bound: the bound must be
    // exact (not soft by one recv chunk), and because the delimiter
    // arrived the stream can resynchronise — the connection lives on.
    const std::string frame(64 * 1024 + 100, '7');
    client.send_line(frame);
    const JsonValue error = JsonValue::parse(client.read_line());
    ASSERT_TRUE(error.contains("error"));
    EXPECT_EQ(error.at("error").at("code").as_string(), "oversized");
    EXPECT_TRUE(client.ping().at("ok").as_bool());
}

TEST_F(ProtocolFuzz, MutatedRunRequestsNeverCrashTheServer) {
    // Byte-mutate a valid run request; the server must answer every
    // complete frame with either results or a structured error, and the
    // next request on a fresh connection must still work.
    const std::string seed_request = R"({"studies":[
        {"name":"p","kind":"pareto","config":{"points":[{"x":1,"y":2}]}},
        {"name":"b","kind":"breakeven","config":{"lo":100000,"hi":2000000}}
    ]})";
    explore::Rng rng(20260730);
    unsigned answered = 0;
    unsigned errors = 0;
    serve::StudyClient client = connect();
    for (int i = 0; i < 60; ++i) {
        std::string text = seed_request;
        const unsigned mutations = 1 + static_cast<unsigned>(rng.next() % 4);
        for (unsigned m = 0; m < mutations && !text.empty(); ++m) {
            const std::size_t pos = rng.next() % text.size();
            static const char noise[] = "{}[]\",:0919eE+-.tfn\\ x";
            switch (rng.next() % 3) {
                case 0:
                    text[pos] = noise[rng.next() % (sizeof(noise) - 1)];
                    break;
                case 1: text.erase(pos, 1); break;
                default:
                    text.insert(pos, 1, noise[rng.next() % (sizeof(noise) - 1)]);
            }
        }
        // Newlines introduced by mutation would split the frame; keep
        // the stream one-frame-per-call so the accounting below holds.
        for (char& c : text) {
            if (c == '\n') c = ' ';
        }
        const JsonValue response = client.call(text);
        if (response.contains("error")) {
            ++errors;
        } else {
            ASSERT_TRUE(response.contains("results"));
            ++answered;
        }
    }
    EXPECT_EQ(answered + errors, 60u);
    EXPECT_GT(errors, 10u);  // the fuzzer actually broke frames
    expect_alive();
}

}  // namespace
}  // namespace chiplet
