// Deterministic fuzzing of the JSON parser: randomly generated
// documents must round-trip exactly, and random mutations of valid
// documents must either parse or throw ParseError/LookupError — never
// crash, hang or corrupt memory.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "explore/rng.h"
#include "explore/study_json.h"
#include "util/error.h"
#include "util/json.h"

namespace chiplet {
namespace {

using explore::Rng;

/// Random JSON document generator with bounded depth/size.
JsonValue random_value(Rng& rng, unsigned depth) {
    const double pick = rng.uniform();
    if (depth == 0 || pick < 0.35) {
        const double leaf = rng.uniform();
        if (leaf < 0.2) return JsonValue(nullptr);
        if (leaf < 0.4) return JsonValue(rng.uniform() < 0.5);
        if (leaf < 0.7) {
            // Mix of integers, fractions and exponent-scale values.
            const double scale = rng.uniform() < 0.5 ? 1.0 : 1e6;
            double v = rng.uniform(-1000.0, 1000.0) * scale;
            if (rng.uniform() < 0.5) v = std::floor(v);
            return JsonValue(v);
        }
        // Strings with characters that exercise escaping.
        static const char* samples[] = {"plain", "with \"quotes\"",
                                        "tab\there", "new\nline",
                                        "back\\slash", "", "ünïcode"};
        return JsonValue(std::string(
            samples[rng.next() % (sizeof(samples) / sizeof(samples[0]))]));
    }
    if (pick < 0.65) {
        JsonValue array = JsonValue::array();
        const unsigned n = static_cast<unsigned>(rng.uniform(0.0, 5.0));
        for (unsigned i = 0; i < n; ++i) {
            array.push_back(random_value(rng, depth - 1));
        }
        return array;
    }
    JsonValue object = JsonValue::object();
    const unsigned n = static_cast<unsigned>(rng.uniform(0.0, 5.0));
    for (unsigned i = 0; i < n; ++i) {
        object.set("k" + std::to_string(i), random_value(rng, depth - 1));
    }
    return object;
}

TEST(JsonFuzz, RandomDocumentsRoundTripExactly) {
    Rng rng(2024);
    for (int i = 0; i < 300; ++i) {
        const JsonValue original = random_value(rng, 4);
        const std::string compact = original.dump();
        const std::string pretty = original.dump(2);
        const JsonValue a = JsonValue::parse(compact);
        const JsonValue b = JsonValue::parse(pretty);
        EXPECT_EQ(a.dump(), compact) << "iteration " << i;
        EXPECT_EQ(b.dump(), compact) << "iteration " << i;
    }
}

TEST(JsonFuzz, MutatedDocumentsNeverCrash) {
    Rng rng(777);
    unsigned parsed = 0;
    unsigned rejected = 0;
    for (int i = 0; i < 600; ++i) {
        std::string text = random_value(rng, 3).dump();
        if (text.empty()) continue;
        // Apply 1-3 random byte mutations: overwrite, delete or insert.
        const unsigned mutations = 1 + static_cast<unsigned>(rng.next() % 3);
        for (unsigned m = 0; m < mutations && !text.empty(); ++m) {
            const std::size_t pos = rng.next() % text.size();
            static const char noise[] = "{}[]\",:0919eE+-.tfn\\ x";
            switch (rng.next() % 3) {
                case 0:
                    text[pos] = noise[rng.next() % (sizeof(noise) - 1)];
                    break;
                case 1: text.erase(pos, 1); break;
                default:
                    text.insert(pos, 1, noise[rng.next() % (sizeof(noise) - 1)]);
            }
        }
        try {
            const JsonValue v = JsonValue::parse(text);
            // Whatever parsed must serialise and re-parse consistently.
            EXPECT_EQ(JsonValue::parse(v.dump()).dump(), v.dump());
            ++parsed;
        } catch (const Error&) {
            ++rejected;  // ParseError/LookupError are the accepted outcome
        }
    }
    // Sanity: the fuzzer actually exercised both paths.
    EXPECT_GT(parsed, 10u);
    EXPECT_GT(rejected, 100u);
}

TEST(JsonFuzz, DeeplyNestedDocumentsParse) {
    std::string open;
    std::string close;
    for (int i = 0; i < 200; ++i) {
        open += "[";
        close += "]";
    }
    const JsonValue v = JsonValue::parse(open + "1" + close);
    EXPECT_EQ(v.dump(), open + "1" + close);
}

TEST(JsonFuzz, MutatedStudyDocumentsNeverCrash) {
    // Start from a valid all-kinds study document and mutate bytes: the
    // study loader must either produce specs or throw a chiplet::Error —
    // never crash, hang or corrupt memory (CI runs this under
    // ASan/UBSan).
    const std::string seed_doc = R"({
      "studies": [
        {"name":"a","kind":"re_sweep",
         "config":{"nodes":["7nm"],"areas_mm2":[100,300],"chiplet_counts":[2]}},
        {"name":"b","kind":"monte_carlo",
         "config":{"scenario":{"node":"5nm","packaging":"MCM","chiplets":2},
                   "draws":16,"seed":1}},
        {"name":"c","kind":"breakeven","config":{"axis":"area","lo":50,"hi":900}},
        {"name":"d","kind":"pareto",
         "config":{"points":[{"x":1,"y":2},{"x":2,"y":1}]}},
        {"name":"e","kind":"timeline",
         "tech":{"nodes":[{"name":"7nm","defect_density_cm2":0.08}]},
         "config":{"scenario":{"node":"7nm"},"months":6}}
      ]
    })";
    Rng rng(4242);
    unsigned parsed = 0;
    unsigned rejected = 0;
    for (int i = 0; i < 400; ++i) {
        std::string text = seed_doc;
        const unsigned mutations = 1 + static_cast<unsigned>(rng.next() % 4);
        for (unsigned m = 0; m < mutations && !text.empty(); ++m) {
            const std::size_t pos = rng.next() % text.size();
            static const char noise[] = "{}[]\",:0919eE+-.tfn\\ x";
            switch (rng.next() % 3) {
                case 0:
                    text[pos] = noise[rng.next() % (sizeof(noise) - 1)];
                    break;
                case 1: text.erase(pos, 1); break;
                default:
                    text.insert(pos, 1, noise[rng.next() % (sizeof(noise) - 1)]);
            }
        }
        try {
            const auto specs =
                explore::studies_from_json(JsonValue::parse(text), "fuzz");
            // Whatever loaded must serialise to a loadable canonical form.
            const JsonValue doc = explore::studies_to_json(specs);
            EXPECT_EQ(explore::studies_to_json(
                          explore::studies_from_json(doc, "fuzz2"))
                          .dump(),
                      doc.dump());
            ++parsed;
        } catch (const Error&) {
            ++rejected;  // ParseError/LookupError are the accepted outcome
        }
    }
    EXPECT_GT(parsed + rejected, 0u);
    EXPECT_GT(rejected, 50u);  // the fuzzer actually broke documents
}

TEST(JsonFuzz, RandomDocumentsThroughStudyLoaderNeverCrash) {
    Rng rng(909);
    for (int i = 0; i < 200; ++i) {
        const JsonValue doc = random_value(rng, 3);
        try {
            (void)explore::studies_from_json(doc, "fuzz");
        } catch (const Error&) {
            // rejection is fine; anything else (crash, non-chiplet
            // exception) fails the test
        }
    }
}

TEST(JsonFuzz, LongStringsAndKeys) {
    const std::string big(100'000, 'x');
    JsonValue obj = JsonValue::object();
    obj.set(big, JsonValue(big));
    const JsonValue restored = JsonValue::parse(obj.dump());
    EXPECT_EQ(restored.at(big).as_string(), big);
}

}  // namespace
}  // namespace chiplet
