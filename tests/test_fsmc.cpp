#include "reuse/fsmc.h"

#include <gtest/gtest.h>

#include "core/actuary.h"
#include "util/error.h"
#include "util/math.h"

namespace chiplet::reuse {
namespace {

TEST(Fsmc, FamilySizeMatchesFormula) {
    FsmcConfig config;
    config.chiplet_types = 4;
    config.sockets = 4;
    EXPECT_EQ(make_fsmc_family(config).size(), fsmc_system_count(4, 4));
    config.chiplet_types = 2;
    config.sockets = 2;
    EXPECT_EQ(make_fsmc_family(config).size(), 5u);
}

TEST(Fsmc, OnlyNChipDesignsExist) {
    FsmcConfig config;
    config.chiplet_types = 4;
    config.sockets = 3;
    const design::SystemFamily family = make_fsmc_family(config);
    EXPECT_EQ(family.unique_chips().size(), 4u);
    EXPECT_EQ(family.unique_modules().size(), 4u);
}

TEST(Fsmc, SharedPackageByDefault) {
    const design::SystemFamily family = make_fsmc_family(FsmcConfig{});
    EXPECT_EQ(family.unique_package_designs().size(), 1u);
    FsmcConfig no_reuse;
    no_reuse.reuse_package = false;
    EXPECT_EQ(make_fsmc_family(no_reuse).unique_package_designs().size(),
              make_fsmc_family(no_reuse).size());
}

TEST(Fsmc, SocReferenceNeedsOneChipPerCollocation) {
    FsmcConfig config;
    config.chiplet_types = 3;
    config.sockets = 2;
    const design::SystemFamily family = make_fsmc_soc_family(config);
    EXPECT_EQ(family.size(), fsmc_system_count(3, 2));
    EXPECT_EQ(family.unique_chips().size(), family.size());
    EXPECT_EQ(family.unique_modules().size(), 3u);
}

TEST(Fsmc, AmortisedNreBecomesNegligible) {
    // Paper Sec. 5.3: "When the reusability is taken full advantage of,
    // the amortized NRE cost is small enough to be ignored."
    const core::ChipletActuary actuary;
    FsmcConfig config;
    config.chiplet_types = 4;
    config.sockets = 4;
    const core::FamilyCost cost = actuary.evaluate(make_fsmc_family(config));
    double worst_nre_share = 0.0;
    for (const auto& s : cost.systems) {
        worst_nre_share =
            std::max(worst_nre_share, s.nre.total() / s.total_per_unit());
    }
    EXPECT_LT(worst_nre_share, 0.25);
    // And on average it is small.
    double total_nre = 0.0;
    double total = 0.0;
    for (const auto& s : cost.systems) {
        total_nre += s.nre.total() * s.quantity;
        total += s.total_per_unit() * s.quantity;
    }
    EXPECT_LT(total_nre / total, 0.12);
}

TEST(Fsmc, MoreReuseLowersAverageCost) {
    // Fig. 10's trend: configurations with more collocations amortise
    // better.  Compare the average unit cost of (k=2,n=2) vs (k=4,n=4)
    // relative to their SoC references.
    const core::ChipletActuary actuary;
    FsmcConfig small;
    small.chiplet_types = 2;
    small.sockets = 2;
    FsmcConfig large;
    large.chiplet_types = 4;
    large.sockets = 4;

    const double small_ratio =
        actuary.evaluate(make_fsmc_family(small)).average_unit_cost() /
        actuary.evaluate(make_fsmc_soc_family(small)).average_unit_cost();
    const double large_ratio =
        actuary.evaluate(make_fsmc_family(large)).average_unit_cost() /
        actuary.evaluate(make_fsmc_soc_family(large)).average_unit_cost();
    EXPECT_LT(large_ratio, small_ratio);
}

TEST(Fsmc, InvalidConfigThrows) {
    FsmcConfig config;
    config.chiplet_types = 0;
    EXPECT_THROW((void)make_fsmc_family(config), ParameterError);
    config = FsmcConfig{};
    config.sockets = 0;
    EXPECT_THROW((void)make_fsmc_family(config), ParameterError);
    config = FsmcConfig{};
    config.module_area_mm2 = 0.0;
    EXPECT_THROW((void)make_fsmc_soc_family(config), ParameterError);
}

}  // namespace
}  // namespace chiplet::reuse
