#include "wafer/reticle.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace chiplet::wafer {
namespace {

TEST(Reticle, DefaultFieldArea) {
    const ReticleSpec spec;
    EXPECT_DOUBLE_EQ(spec.area_mm2(), 26.0 * 33.0);  // 858 mm^2
}

TEST(Reticle, FitsSingleExposure) {
    const ReticleSpec spec;
    EXPECT_TRUE(fits_single_reticle(spec, 100.0));
    EXPECT_TRUE(fits_single_reticle(spec, 26.0 * 26.0));  // square of side 26
    // 800 mm^2 square has side ~28.3 > 26: does not fit as a square.
    EXPECT_FALSE(fits_single_reticle(spec, 800.0));
}

TEST(Reticle, StitchCountGrid) {
    const ReticleSpec spec;
    EXPECT_EQ(stitch_count(spec, 100.0), 1u);
    EXPECT_EQ(stitch_count(spec, 675.0), 1u);   // side 26.0, exactly one field
    EXPECT_EQ(stitch_count(spec, 800.0), 2u);   // side 28.3: 2 x 1 fields
    EXPECT_EQ(stitch_count(spec, 2000.0), 4u);  // side 44.7: 2 x 2 fields
}

TEST(Reticle, StitchCountMonotone) {
    const ReticleSpec spec;
    unsigned previous = 1;
    for (double area = 100.0; area <= 5000.0; area += 100.0) {
        const unsigned count = stitch_count(spec, area);
        EXPECT_GE(count, previous) << "area " << area;
        previous = count;
    }
}

TEST(Reticle, StitchedYieldPenalty) {
    EXPECT_DOUBLE_EQ(stitched_yield(0.8, 1, 0.95), 0.8);  // no seams
    EXPECT_NEAR(stitched_yield(0.8, 3, 0.95), 0.8 * 0.95 * 0.95, 1e-12);
    EXPECT_LT(stitched_yield(0.8, 4, 0.95), stitched_yield(0.8, 2, 0.95));
}

TEST(Reticle, InvalidInputsThrow) {
    EXPECT_THROW((void)fits_single_reticle(ReticleSpec{}, 0.0), ParameterError);
    EXPECT_THROW((void)stitch_count(ReticleSpec{}, -5.0), ParameterError);
    EXPECT_THROW((void)stitched_yield(0.0, 2, 0.95), ParameterError);
    EXPECT_THROW((void)stitched_yield(0.8, 0, 0.95), ParameterError);
    EXPECT_THROW((void)stitched_yield(0.8, 2, 1.5), ParameterError);
}

}  // namespace
}  // namespace chiplet::wafer
