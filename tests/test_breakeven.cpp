#include "explore/breakeven.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/scenarios.h"
#include "util/error.h"

namespace chiplet::explore {
namespace {

TEST(Bisection, FindsRootOfMonotoneFunction) {
    const double root =
        solve_bisection([](double x) { return x * x - 2.0; }, 0.0, 2.0, 1e-10);
    EXPECT_NEAR(root, std::sqrt(2.0), 1e-8);
}

TEST(Bisection, ExactEndpointRoots) {
    EXPECT_DOUBLE_EQ(solve_bisection([](double x) { return x; }, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(solve_bisection([](double x) { return x - 1.0; }, 0.0, 1.0),
                     1.0);
}

TEST(Bisection, NoSignChangeThrows) {
    EXPECT_THROW(
        (void)solve_bisection([](double x) { return x + 10.0; }, 0.0, 1.0),
        ParameterError);
    EXPECT_THROW((void)solve_bisection([](double) { return 1.0; }, 1.0, 0.5),
                 ParameterError);
}

TEST(BreakevenQuantity, PaperSection42Claim) {
    // 800 mm^2 at 5 nm, two chiplets on MCM: the paper's turning point is
    // ~2M units.  Accept the right order of magnitude: [0.5M, 5M].
    const core::ChipletActuary actuary;
    const Breakeven result =
        breakeven_quantity(actuary, "5nm", 800.0, 2, "MCM", 0.10);
    ASSERT_TRUE(result.found);
    EXPECT_GT(result.value, 5e5);
    EXPECT_LT(result.value, 5e6);
    EXPECT_NEAR(result.soc_cost, result.alt_cost,
                0.01 * result.soc_cost);  // costs equal at break-even
}

TEST(BreakevenQuantity, MultiChipWinsAboveBreakeven) {
    const core::ChipletActuary actuary;
    const Breakeven result =
        breakeven_quantity(actuary, "5nm", 800.0, 2, "MCM", 0.10);
    ASSERT_TRUE(result.found);
    // Evaluate both sides of the crossover.
    const auto cost = [&](const std::string& packaging, unsigned k, double q) {
        const design::System system =
            packaging == "SoC"
                ? core::monolithic_soc("s", "5nm", 800.0, q)
                : core::split_system("a", "5nm", packaging, 800.0, k, 0.10, q);
        return actuary.evaluate(system).total_per_unit();
    };
    EXPECT_GT(cost("MCM", 2, result.value / 4.0), cost("SoC", 1, result.value / 4.0));
    EXPECT_LT(cost("MCM", 2, result.value * 4.0), cost("SoC", 1, result.value * 4.0));
}

TEST(BreakevenQuantity, SmallChipNeverPaysBack) {
    // A 100 mm^2 die yields well already: splitting adds D2D + packaging
    // without a compensating yield gain, so no crossover in range.
    const core::ChipletActuary actuary;
    const Breakeven result =
        breakeven_quantity(actuary, "14nm", 100.0, 2, "2.5D", 0.10, 1e4, 1e9);
    EXPECT_FALSE(result.found);
}

TEST(BreakevenQuantity, InvalidRangeThrows) {
    const core::ChipletActuary actuary;
    EXPECT_THROW(
        (void)breakeven_quantity(actuary, "5nm", 800.0, 2, "MCM", 0.10, 1e6, 1e4),
        ParameterError);
}

TEST(BreakevenArea, AdvancedNodeTurnsEarlierThanMature) {
    // Paper Sec. 4.1: "the turning point for advanced technology comes
    // earlier than the mature technology".
    const core::ChipletActuary actuary;
    const Breakeven advanced = breakeven_area(actuary, "5nm", 2, "MCM", 0.10);
    const Breakeven mature = breakeven_area(actuary, "14nm", 2, "MCM", 0.10);
    ASSERT_TRUE(advanced.found);
    ASSERT_TRUE(mature.found);
    EXPECT_LT(advanced.value, mature.value);
}

TEST(BreakevenArea, MultiChipWinsAboveTurningPoint) {
    const core::ChipletActuary actuary;
    const Breakeven result = breakeven_area(actuary, "5nm", 2, "MCM", 0.10);
    ASSERT_TRUE(result.found);
    const auto re = [&](const std::string& packaging, double area) {
        const design::System system =
            packaging == "SoC"
                ? core::monolithic_soc("s", "5nm", area, 1e6)
                : core::split_system("a", "5nm", packaging, area, 2, 0.10, 1e6);
        return actuary.evaluate_re_only(system).re.total();
    };
    const double below = result.value * 0.7;
    const double above = result.value * 1.3;
    EXPECT_GT(re("MCM", below), re("SoC", below));
    EXPECT_LT(re("MCM", above), re("SoC", above));
}

}  // namespace
}  // namespace chiplet::explore
