#include "wafer/die_cost.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "yield/models.h"

namespace chiplet::wafer {
namespace {

WaferSpec wafer_5nm() {
    WaferSpec spec;
    spec.price_usd = 16988.0;
    return spec;
}

DieCostModel model_5nm() {
    return DieCostModel(wafer_5nm(), 0.11,
                        std::make_unique<yield::SeedsNegativeBinomial>(10.0));
}

TEST(DieCostModel, BreakdownConsistency) {
    const DieCostBreakdown b = model_5nm().evaluate(400.0);
    EXPECT_GT(b.dies_per_wafer, 0.0);
    EXPECT_GT(b.yield, 0.0);
    EXPECT_LE(b.yield, 1.0);
    EXPECT_NEAR(b.raw_cost_usd, 16988.0 / b.dies_per_wafer, 1e-9);
    EXPECT_NEAR(b.good_cost_usd, b.raw_cost_usd / b.yield, 1e-9);
    EXPECT_NEAR(b.defect_cost_usd, b.good_cost_usd - b.raw_cost_usd, 1e-9);
}

TEST(DieCostModel, PaperFigure2NormalisedCost) {
    // Fig. 2's right axis: normalised cost/area starts near 1 for small
    // dies and grows to several x at reticle-scale dies.
    const DieCostModel m = model_5nm();
    const double small = m.evaluate(10.0).normalized_cost_per_area;
    const double large = m.evaluate(800.0).normalized_cost_per_area;
    EXPECT_GT(small, 1.0);
    EXPECT_LT(small, 1.4);
    EXPECT_GT(large, 2.0);
    EXPECT_LT(large, 4.0);
    EXPECT_GT(large, small);
}

TEST(DieCostModel, NormalisedCostMonotoneInArea) {
    const DieCostModel m = model_5nm();
    double previous = 0.0;
    for (double area = 50.0; area <= 900.0; area += 50.0) {
        const double normalized = m.evaluate(area).normalized_cost_per_area;
        EXPECT_GT(normalized, previous) << "area " << area;
        previous = normalized;
    }
}

TEST(DieCostModel, YieldMatchesDirectQuery) {
    const DieCostModel m = model_5nm();
    EXPECT_DOUBLE_EQ(m.evaluate(640.0).yield, m.die_yield(640.0));
}

TEST(DieCostModel, ZeroDefectDensityMeansNoDefectCost) {
    const DieCostModel m(wafer_5nm(), 0.0,
                         std::make_unique<yield::SeedsNegativeBinomial>(10.0));
    const DieCostBreakdown b = m.evaluate(500.0);
    EXPECT_DOUBLE_EQ(b.yield, 1.0);
    EXPECT_DOUBLE_EQ(b.defect_cost_usd, 0.0);
}

TEST(DieCostModel, CopySemanticsDeep) {
    const DieCostModel original = model_5nm();
    const DieCostModel copy = original;  // copy constructor clones the model
    EXPECT_DOUBLE_EQ(copy.evaluate(300.0).good_cost_usd,
                     original.evaluate(300.0).good_cost_usd);
    DieCostModel assigned(wafer_5nm(), 0.3,
                          std::make_unique<yield::PoissonYield>());
    assigned = original;
    EXPECT_DOUBLE_EQ(assigned.evaluate(300.0).good_cost_usd,
                     original.evaluate(300.0).good_cost_usd);
}

TEST(DieCostModel, InvalidConstructionThrows) {
    EXPECT_THROW(
        DieCostModel(wafer_5nm(), -0.1,
                     std::make_unique<yield::SeedsNegativeBinomial>(10.0)),
        ParameterError);
    EXPECT_THROW(DieCostModel(wafer_5nm(), 0.1, nullptr), ParameterError);
}

TEST(DieCostModel, OversizedDieThrows) {
    EXPECT_THROW((void)model_5nm().evaluate(80000.0), ParameterError);
    EXPECT_THROW((void)model_5nm().evaluate(0.0), ParameterError);
}

TEST(DieCostModel, CheaperWaferCheaperDies) {
    WaferSpec cheap = wafer_5nm();
    cheap.price_usd = 4000.0;
    const DieCostModel expensive = model_5nm();
    const DieCostModel cheaper(
        cheap, 0.11, std::make_unique<yield::SeedsNegativeBinomial>(10.0));
    EXPECT_LT(cheaper.evaluate(400.0).good_cost_usd,
              expensive.evaluate(400.0).good_cost_usd);
    // But the *normalised* cost/area is price-independent (pure geometry
    // and yield), a useful invariant of the Fig. 2 axis.
    EXPECT_NEAR(cheaper.evaluate(400.0).normalized_cost_per_area,
                expensive.evaluate(400.0).normalized_cost_per_area, 1e-12);
}

}  // namespace
}  // namespace chiplet::wafer
