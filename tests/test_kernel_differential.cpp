// Scalar-oracle differential harness for the batch kernels
// (src/kernels/): every kernel, at every compiled ISA level the host
// executes, must reproduce the scalar reference BIT FOR BIT — that is
// the policy (kernels/kernels.h) that makes the SIMD tables
// interchangeable with core's scalar engine.  Two layers of oracle:
//
//   1. the scalar kernel table against the engine's own scalar code
//      (wafer::dpw_classical, yield::YieldModel, DieCostModel), so the
//      kernels can never drift from what they claim to accelerate;
//   2. every other compiled table against the scalar table over ~10k
//      seeded randomized cases per kernel, with denormal-area,
//      zero-defect-density, non-fitting-die and single-lane edges
//      injected, plus lengths that exercise every SIMD remainder path.
//
// On a mismatch the harness shrinks to the first failing element and
// re-runs both tables on that one input, so the failure message carries
// a standalone repro (exact input/output bit patterns, kernel, ISA).
// Seed comes from CHIPLET_FUZZ_SEED when set, so a CI failure replays
// locally.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "core/actuary.h"
#include "core/scenarios.h"
#include "kernels/isa.h"
#include "kernels/kernels.h"
#include "wafer/die_cost.h"
#include "wafer/die_per_wafer.h"
#include "wafer/wafer_spec.h"
#include "yield/models.h"

namespace chiplet::kernels {
namespace {

std::uint64_t fuzz_seed() {
    if (const char* env = std::getenv("CHIPLET_FUZZ_SEED")) {
        return std::strtoull(env, nullptr, 10);
    }
    return 0x44414332'30323236ull;  // stable default
}

std::string bits_of(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%a", v);
    return std::string(buf) + " (0x" +
           [](std::uint64_t u) {
               char hex[17];
               std::snprintf(hex, sizeof hex, "%016llx",
                             static_cast<unsigned long long>(u));
               return std::string(hex);
           }(std::bit_cast<std::uint64_t>(v)) +
           ")";
}

bool same_bits(double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Compares two kernel output arrays bitwise.  On the first mismatch,
/// shrinks: re-runs `rerun_single(i)` to confirm the one-element repro
/// and fails with the exact bit patterns.  `describe(i)` prints the
/// inputs of case i.
template <typename Describe, typename RerunSingle>
void expect_bitwise(const char* what, Isa isa, const std::vector<double>& ref,
                    const std::vector<double>& got, Describe describe,
                    RerunSingle rerun_single) {
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        if (same_bits(ref[i], got[i])) continue;
        const auto [single_ref, single_got] = rerun_single(i);
        FAIL() << what << " diverges from scalar at ISA " << to_string(isa)
               << ", case " << i << "\n  inputs: " << describe(i)
               << "\n  scalar: " << bits_of(ref[i])
               << "\n  " << to_string(isa) << ":   " << bits_of(got[i])
               << "\n  shrunk 1-element rerun -> scalar "
               << bits_of(single_ref) << " vs " << bits_of(single_got)
               << (same_bits(single_ref, single_got)
                       ? "  (single-lane agrees: divergence needs the full "
                         "vector context)"
                       : "  (reproduces standalone)");
        return;
    }
}

/// Die-area generator: log-uniform over the realistic range with the
/// edge cases the policy calls out spliced in at fixed slots.
std::vector<double> make_areas(std::mt19937_64& rng, std::size_t n) {
    std::uniform_real_distribution<double> log_area(-3.0, 3.5);
    std::vector<double> areas(n);
    for (std::size_t i = 0; i < n; ++i) {
        areas[i] = std::pow(10.0, log_area(rng));
    }
    // Edges: denormal, smallest normal, tiny, reticle-scale, dies that
    // cannot fit any wafer, and exact single-die-ish sizes.
    const double edges[] = {5e-324,  1e-310, 2.2250738585072014e-308,
                            1e-6,    858.0,  1e5,
                            1e6,     400.0,  0.015625};
    for (std::size_t i = 0; i < std::size(edges) && i < n; ++i) {
        areas[i * (n / std::size(edges))] = edges[i];
    }
    return areas;
}

std::vector<Isa> simd_levels() {
    std::vector<Isa> out;
    for (Isa isa : supported_isas()) {
        if (isa != Isa::scalar) out.push_back(isa);
    }
    return out;
}

constexpr std::size_t kCases = 10'000;

// ---- layer 1: scalar kernel table vs the engine's scalar code ---------------

TEST(KernelScalarOracle, DpwMatchesWaferDpwClassical) {
    std::mt19937_64 rng(fuzz_seed());
    const KernelTable& scalar = table_for(Isa::scalar);
    std::uniform_real_distribution<double> diameter(100.0, 450.0);
    std::uniform_real_distribution<double> scribe(0.01, 0.5);
    for (int spec_case = 0; spec_case < 8; ++spec_case) {
        wafer::WaferSpec spec;
        spec.diameter_mm = diameter(rng);
        spec.scribe_width_mm = scribe(rng);
        const std::vector<double> areas = make_areas(rng, kCases / 8);
        std::vector<double> dpw(areas.size());
        scalar.dpw_classical(spec.usable_radius_mm(), spec.scribe_width_mm,
                             areas.data(), dpw.data(), areas.size());
        for (std::size_t i = 0; i < areas.size(); ++i) {
            const double oracle = wafer::dpw_classical(spec, areas[i]);
            ASSERT_TRUE(same_bits(oracle, dpw[i]))
                << "dpw_classical scalar kernel vs wafer::dpw_classical, area="
                << bits_of(areas[i]) << " oracle=" << bits_of(oracle)
                << " kernel=" << bits_of(dpw[i]);
        }
    }
}

TEST(KernelScalarOracle, YieldPipelineMatchesYieldModels) {
    std::mt19937_64 rng(fuzz_seed() + 1);
    const KernelTable& scalar = table_for(Isa::scalar);
    const struct {
        const char* name;
        YieldKind kind;
    } kinds[] = {{"poisson", YieldKind::poisson},
                 {"seeds_negative_binomial", YieldKind::seeds_negative_binomial},
                 {"murphy", YieldKind::murphy},
                 {"seeds_exponential", YieldKind::seeds_exponential},
                 {"bose_einstein", YieldKind::bose_einstein}};
    std::uniform_real_distribution<double> density(0.0, 1.0);
    std::uniform_real_distribution<double> cluster(0.5, 20.0);
    for (const auto& k : kinds) {
        ASSERT_EQ(yield_kind_from_name(k.name), k.kind);
        for (int rep = 0; rep < 4; ++rep) {
            // Zero defect density in half the reps: yield must be exactly 1.
            const double d = rep % 2 == 0 ? density(rng) : 0.0;
            const double param = cluster(rng);
            const auto model = yield::make_yield_model(k.name, param);
            const std::vector<double> areas = make_areas(rng, kCases / 20);
            std::vector<double> defects(areas.size());
            std::vector<double> yields(areas.size());
            scalar.expected_defects(d, areas.data(), defects.data(),
                                    areas.size());
            scalar.yield_from_defects(k.kind, param, defects.data(),
                                      yields.data(), areas.size());
            for (std::size_t i = 0; i < areas.size(); ++i) {
                const double oracle = model->yield(d, areas[i]);
                ASSERT_TRUE(same_bits(oracle, yields[i]))
                    << k.name << " yield, D=" << bits_of(d)
                    << " area=" << bits_of(areas[i])
                    << " oracle=" << bits_of(oracle)
                    << " kernel=" << bits_of(yields[i]);
                if (d == 0.0) {
                    ASSERT_TRUE(same_bits(yields[i], 1.0))
                        << k.name << " must yield exactly 1.0 at D=0";
                }
            }
        }
    }
}

TEST(KernelScalarOracle, DieRawCostMatchesDieCostModel) {
    std::mt19937_64 rng(fuzz_seed() + 2);
    const KernelTable& scalar = table_for(Isa::scalar);
    wafer::WaferSpec spec;  // default 300mm geometry
    spec.price_usd = 9'000.0;
    const double defect_density = 0.09;
    const double cluster_param = 10.0;
    const double bump = 25.0e-3;
    const double test = 15.0e-3;
    const wafer::DieCostModel model(
        spec, defect_density,
        yield::make_yield_model("seeds_negative_binomial", cluster_param));

    const std::vector<double> areas = make_areas(rng, kCases);
    const std::size_t n = areas.size();
    std::vector<double> dpw(n), defects(n), yields(n), raw(n), kgd(n),
        defect_cost(n);
    scalar.dpw_classical(spec.usable_radius_mm(), spec.scribe_width_mm,
                         areas.data(), dpw.data(), n);
    scalar.expected_defects(defect_density, areas.data(), defects.data(), n);
    scalar.yield_from_defects(YieldKind::seeds_negative_binomial, cluster_param,
                              defects.data(), yields.data(), n);
    scalar.die_raw_cost(spec.price_usd, bump + test, areas.data(), dpw.data(),
                        raw.data(), n);
    scalar.kgd_split(raw.data(), yields.data(), kgd.data(), defect_cost.data(),
                     n);

    std::size_t priced = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (!(dpw[i] > 0.0)) continue;  // non-fitting die: scalar path throws
        ++priced;
        const wafer::DieCostBreakdown oracle = model.evaluate(areas[i]);
        const double oracle_raw =
            oracle.raw_cost_usd + (bump + test) * areas[i];
        const double oracle_kgd = oracle_raw / oracle.yield;
        ASSERT_TRUE(same_bits(oracle_raw, raw[i]))
            << "die_raw_cost, area=" << bits_of(areas[i])
            << " oracle=" << bits_of(oracle_raw) << " kernel=" << bits_of(raw[i]);
        ASSERT_TRUE(same_bits(oracle_kgd, kgd[i]))
            << "kgd_split kgd, area=" << bits_of(areas[i]);
        ASSERT_TRUE(same_bits(oracle_kgd - oracle_raw, defect_cost[i]))
            << "kgd_split defect share, area=" << bits_of(areas[i]);
    }
    ASSERT_GT(priced, n / 2) << "generator degenerated: most dies do not fit";
}

// ---- layer 2: every compiled SIMD table vs the scalar table ------------------

TEST(KernelDifferential, DpwBitIdenticalAcrossIsas) {
    std::mt19937_64 rng(fuzz_seed() + 3);
    const KernelTable& scalar = table_for(Isa::scalar);
    const double r = 147.0;
    const double scribe = 0.1;
    std::vector<double> areas = make_areas(rng, kCases);
    // Lengths 0..9 exercise every remainder-lane path; the bulk run
    // exercises the vector body.
    for (Isa isa : simd_levels()) {
        const KernelTable& table = table_for(isa);
        for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{3}, std::size_t{5}, std::size_t{7},
                              areas.size()}) {
            std::vector<double> ref(n), got(n);
            scalar.dpw_classical(r, scribe, areas.data(), ref.data(), n);
            table.dpw_classical(r, scribe, areas.data(), got.data(), n);
            expect_bitwise(
                "dpw_classical", isa, ref, got,
                [&](std::size_t i) { return "area=" + bits_of(areas[i]); },
                [&](std::size_t i) {
                    double a = 0.0;
                    double b = 0.0;
                    scalar.dpw_classical(r, scribe, &areas[i], &a, 1);
                    table.dpw_classical(r, scribe, &areas[i], &b, 1);
                    return std::pair<double, double>{a, b};
                });
        }
    }
}

TEST(KernelDifferential, YieldPipelineBitIdenticalAcrossIsas) {
    std::mt19937_64 rng(fuzz_seed() + 4);
    const KernelTable& scalar = table_for(Isa::scalar);
    const YieldKind kinds[] = {YieldKind::poisson,
                               YieldKind::seeds_negative_binomial,
                               YieldKind::murphy, YieldKind::seeds_exponential,
                               YieldKind::bose_einstein};
    for (Isa isa : simd_levels()) {
        const KernelTable& table = table_for(isa);
        for (YieldKind kind : kinds) {
            const double d = 0.12;
            const double param = 7.5;
            const std::vector<double> areas = make_areas(rng, kCases / 5);
            const std::size_t n = areas.size();
            std::vector<double> dref(n), dgot(n), yref(n), ygot(n);
            scalar.expected_defects(d, areas.data(), dref.data(), n);
            table.expected_defects(d, areas.data(), dgot.data(), n);
            expect_bitwise(
                "expected_defects", isa, dref, dgot,
                [&](std::size_t i) { return "area=" + bits_of(areas[i]); },
                [&](std::size_t i) {
                    double a = 0.0;
                    double b = 0.0;
                    scalar.expected_defects(d, &areas[i], &a, 1);
                    table.expected_defects(d, &areas[i], &b, 1);
                    return std::pair<double, double>{a, b};
                });
            scalar.yield_from_defects(kind, param, dref.data(), yref.data(), n);
            table.yield_from_defects(kind, param, dref.data(), ygot.data(), n);
            expect_bitwise(
                "yield_from_defects", isa, yref, ygot,
                [&](std::size_t i) { return "defects=" + bits_of(dref[i]); },
                [&](std::size_t i) {
                    double a = 0.0;
                    double b = 0.0;
                    scalar.yield_from_defects(kind, param, &dref[i], &a, 1);
                    table.yield_from_defects(kind, param, &dref[i], &b, 1);
                    return std::pair<double, double>{a, b};
                });
        }
    }
}

TEST(KernelDifferential, CostKernelsBitIdenticalAcrossIsas) {
    std::mt19937_64 rng(fuzz_seed() + 5);
    const KernelTable& scalar = table_for(Isa::scalar);
    const double r = 147.0;
    const double scribe = 0.1;
    const double price = 9'000.0;
    const double extra = 0.04;
    const double scale = 0.5;
    const std::vector<double> areas = make_areas(rng, kCases);
    const std::size_t n = areas.size();
    std::vector<double> dpw(n), yields(n);
    scalar.dpw_classical(r, scribe, areas.data(), dpw.data(), n);
    {
        std::vector<double> defects(n);
        scalar.expected_defects(0.1, areas.data(), defects.data(), n);
        scalar.yield_from_defects(YieldKind::seeds_negative_binomial, 10.0,
                                  defects.data(), yields.data(), n);
    }
    for (Isa isa : simd_levels()) {
        const KernelTable& table = table_for(isa);
        std::vector<double> rref(n), rgot(n);
        scalar.die_raw_cost(price, extra, areas.data(), dpw.data(), rref.data(),
                            n);
        table.die_raw_cost(price, extra, areas.data(), dpw.data(), rgot.data(),
                           n);
        expect_bitwise(
            "die_raw_cost", isa, rref, rgot,
            [&](std::size_t i) {
                return "area=" + bits_of(areas[i]) + " dpw=" + bits_of(dpw[i]);
            },
            [&](std::size_t i) {
                double a = 0.0;
                double b = 0.0;
                scalar.die_raw_cost(price, extra, &areas[i], &dpw[i], &a, 1);
                table.die_raw_cost(price, extra, &areas[i], &dpw[i], &b, 1);
                return std::pair<double, double>{a, b};
            });

        std::vector<double> kref(n), kgot(n), dref(n), dgot(n);
        scalar.kgd_split(rref.data(), yields.data(), kref.data(), dref.data(),
                         n);
        table.kgd_split(rref.data(), yields.data(), kgot.data(), dgot.data(),
                        n);
        expect_bitwise(
            "kgd_split (kgd)", isa, kref, kgot,
            [&](std::size_t i) {
                return "raw=" + bits_of(rref[i]) +
                       " yield=" + bits_of(yields[i]);
            },
            [&](std::size_t i) {
                double k1 = 0.0, d1 = 0.0, k2 = 0.0, d2 = 0.0;
                scalar.kgd_split(&rref[i], &yields[i], &k1, &d1, 1);
                table.kgd_split(&rref[i], &yields[i], &k2, &d2, 1);
                return std::pair<double, double>{k1, k2};
            });
        expect_bitwise(
            "kgd_split (defect)", isa, dref, dgot,
            [&](std::size_t i) {
                return "raw=" + bits_of(rref[i]) +
                       " yield=" + bits_of(yields[i]);
            },
            [&](std::size_t i) {
                double k1 = 0.0, d1 = 0.0, k2 = 0.0, d2 = 0.0;
                scalar.kgd_split(&rref[i], &yields[i], &k1, &d1, 1);
                table.kgd_split(&rref[i], &yields[i], &k2, &d2, 1);
                return std::pair<double, double>{d1, d2};
            });

        std::vector<double> sref(n), sgot(n);
        scalar.scale_add(scale, areas.data(), rref.data(), sref.data(), n);
        table.scale_add(scale, areas.data(), rref.data(), sgot.data(), n);
        expect_bitwise(
            "scale_add", isa, sref, sgot,
            [&](std::size_t i) {
                return "a=" + bits_of(areas[i]) + " b=" + bits_of(rref[i]);
            },
            [&](std::size_t i) {
                double a = 0.0;
                double b = 0.0;
                scalar.scale_add(scale, &areas[i], &rref[i], &a, 1);
                table.scale_add(scale, &areas[i], &rref[i], &b, 1);
                return std::pair<double, double>{a, b};
            });
    }
}

TEST(KernelDifferential, ReFoldBitIdenticalAcrossIsas) {
    std::mt19937_64 rng(fuzz_seed() + 6);
    std::uniform_real_distribution<double> money(0.1, 500.0);
    std::uniform_real_distribution<double> area(1.0, 800.0);
    std::uniform_real_distribution<double> yield_dist(0.35, 1.0);
    const KernelTable& scalar = table_for(Isa::scalar);
    for (const bool interposer : {false, true}) {
        for (const bool chip_first : {false, true}) {
            const std::size_t n = kCases / 4;
            std::vector<double> raw(n), defects(n), kgd(n), darea(n), iraw(n),
                iyield(n), ref(n), got(n);
            for (std::size_t i = 0; i < n; ++i) {
                raw[i] = money(rng);
                defects[i] = money(rng) * 0.1;
                kgd[i] = raw[i] + defects[i];
                darea[i] = area(rng);
                iraw[i] = money(rng);
                iyield[i] = yield_dist(rng);
            }
            ReFoldTerms terms;
            terms.raw_chips = raw.data();
            terms.chip_defects = defects.data();
            terms.kgd_total = kgd.data();
            terms.design_area = darea.data();
            terms.interposer_raw = interposer ? iraw.data() : nullptr;
            terms.interposer_yield = interposer ? iyield.data() : nullptr;
            terms.package_area_factor = 1.1;
            terms.substrate_cost_per_mm2 = 0.005;
            terms.substrate_layer_factor = 2.0;
            terms.bond_and_test = 3.25;
            terms.y2n = 0.98;
            terms.y3 = 0.99;
            terms.scrap_y2n_y3 = 1.0 / (0.98 * 0.99) - 1.0;
            terms.inv_y3_minus_1 = 1.0 / 0.99 - 1.0;
            terms.has_interposer = interposer;
            terms.chip_first = chip_first;

            terms.re_total = ref.data();
            scalar.re_fold(terms, n);
            for (Isa isa : simd_levels()) {
                const KernelTable& table = table_for(isa);
                terms.re_total = got.data();
                table.re_fold(terms, n);
                expect_bitwise(
                    "re_fold", isa, ref, got,
                    [&](std::size_t i) {
                        return "raw=" + bits_of(raw[i]) +
                               " kgd=" + bits_of(kgd[i]) +
                               " darea=" + bits_of(darea[i]) +
                               " iyield=" + bits_of(iyield[i]) +
                               (interposer ? " interposer" : "") +
                               (chip_first ? " chip_first" : "");
                    },
                    [&](std::size_t i) {
                        ReFoldTerms one = terms;
                        one.raw_chips = &raw[i];
                        one.chip_defects = &defects[i];
                        one.kgd_total = &kgd[i];
                        one.design_area = &darea[i];
                        one.interposer_raw = interposer ? &iraw[i] : nullptr;
                        one.interposer_yield =
                            interposer ? &iyield[i] : nullptr;
                        double a = 0.0;
                        double b = 0.0;
                        one.re_total = &a;
                        scalar.re_fold(one, 1);
                        one.re_total = &b;
                        table.re_fold(one, 1);
                        return std::pair<double, double>{a, b};
                    });
            }
        }
    }
}

// ---- system level: the whole batch path under every forced ISA ---------------

TEST(KernelDifferential, EvaluateBatchMatchesScalarEvaluateAtEveryIsa) {
    const core::ChipletActuary actuary;
    std::vector<design::System> systems;
    for (const char* packaging : {"MCM", "InFO", "2.5D"}) {
        for (unsigned k : {1u, 2u, 3u, 5u}) {
            systems.push_back(core::split_system(
                std::string(packaging) + std::to_string(k), "7nm", packaging,
                600.0, k, 0.10, 5e5));
        }
    }
    systems.push_back(core::monolithic_soc("soc", "7nm", 600.0, 5e5));
    systems.push_back(core::monolithic_soc("soc5", "5nm", 150.0, 2e6));

    // Scalar oracle: the single-system entry point (never touches a
    // DieBatch or a kernel-priced die).
    std::vector<core::SystemCost> oracle;
    oracle.reserve(systems.size());
    for (const design::System& s : systems) oracle.push_back(actuary.evaluate(s));

    for (Isa isa : supported_isas()) {
        force_isa(isa);
        const std::vector<core::SystemCost> batch =
            actuary.evaluate_batch(systems);
        clear_forced_isa();
        ASSERT_EQ(batch.size(), oracle.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const auto check = [&](const char* field, double want, double got) {
                EXPECT_TRUE(same_bits(want, got))
                    << systems[i].name() << " ." << field << " at ISA "
                    << to_string(isa) << ": scalar " << bits_of(want)
                    << " vs batch " << bits_of(got);
            };
            check("re.raw_chips", oracle[i].re.raw_chips, batch[i].re.raw_chips);
            check("re.chip_defects", oracle[i].re.chip_defects,
                  batch[i].re.chip_defects);
            check("re.raw_package", oracle[i].re.raw_package,
                  batch[i].re.raw_package);
            check("re.package_defects", oracle[i].re.package_defects,
                  batch[i].re.package_defects);
            check("re.wasted_kgd", oracle[i].re.wasted_kgd,
                  batch[i].re.wasted_kgd);
            check("nre.total", oracle[i].nre.total(), batch[i].nre.total());
            check("package_design_area", oracle[i].package_design_area_mm2,
                  batch[i].package_design_area_mm2);
            check("interposer_area", oracle[i].interposer_area_mm2,
                  batch[i].interposer_area_mm2);
        }
    }
}

TEST(KernelDifferential, ForcedIsaReportsActiveLevel) {
    for (Isa isa : supported_isas()) {
        force_isa(isa);
        EXPECT_EQ(active_isa(), isa);
        EXPECT_EQ(active_table().isa, isa);
        clear_forced_isa();
    }
}

}  // namespace
}  // namespace chiplet::kernels
