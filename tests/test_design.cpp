#include <gtest/gtest.h>

#include "design/builder.h"
#include "design/system.h"
#include "tech/tech_library.h"
#include "util/error.h"

namespace chiplet::design {
namespace {

tech::TechLibrary lib() { return tech::TechLibrary::builtin(); }

TEST(Chip, AreaWithD2dOverhead) {
    const Chip chip("c", "7nm", {Module{"m", 180.0, "7nm", true}}, 0.10);
    const auto library = lib();
    EXPECT_DOUBLE_EQ(chip.module_area(library), 180.0);
    EXPECT_NEAR(chip.area(library), 180.0 / 0.9, 1e-12);
    EXPECT_NEAR(chip.d2d_area(library), 180.0 / 0.9 - 180.0, 1e-12);
}

TEST(Chip, ZeroD2dMeansModuleAreaOnly) {
    const Chip chip("c", "7nm", {Module{"m", 180.0, "7nm", true}}, 0.0);
    const auto library = lib();
    EXPECT_DOUBLE_EQ(chip.area(library), 180.0);
    EXPECT_DOUBLE_EQ(chip.d2d_area(library), 0.0);
}

TEST(Chip, HeterogeneousModuleRetargets) {
    // A module specified at 7nm, manufactured on a 14nm chip: area grows.
    const Chip chip("c", "14nm", {Module{"m", 100.0, "7nm", true}}, 0.0);
    const auto library = lib();
    EXPECT_NEAR(chip.module_area(library), 100.0 / 0.44, 1e-9);
    // Unscalable version keeps 100 mm^2.
    const Chip analog("a", "14nm", {Module{"m", 100.0, "7nm", false}}, 0.0);
    EXPECT_DOUBLE_EQ(analog.module_area(library), 100.0);
}

TEST(Chip, MultipleModulesSum) {
    const Chip chip("c", "7nm",
                    {Module{"a", 50.0, "7nm", true}, Module{"b", 70.0, "7nm", true}},
                    0.0);
    EXPECT_DOUBLE_EQ(chip.module_area(lib()), 120.0);
}

TEST(Chip, InvariantsEnforced) {
    EXPECT_THROW(Chip("", "7nm", {Module{"m", 1.0, "7nm", true}}, 0.0),
                 ParameterError);
    EXPECT_THROW(Chip("c", "", {Module{"m", 1.0, "7nm", true}}, 0.0),
                 ParameterError);
    EXPECT_THROW(Chip("c", "7nm", {}, 0.0), ParameterError);
    EXPECT_THROW(Chip("c", "7nm", {Module{"m", 1.0, "7nm", true}}, 1.0),
                 ParameterError);
    EXPECT_THROW(Chip("c", "7nm", {Module{"m", -1.0, "7nm", true}}, 0.0),
                 ParameterError);
    EXPECT_THROW(Chip("c", "7nm", {Module{"", 1.0, "7nm", true}}, 0.0),
                 ParameterError);
}

TEST(Chip, UnknownNodeThrowsOnAreaQuery) {
    const Chip chip("c", "1nm", {Module{"m", 10.0, "1nm", true}}, 0.0);
    const auto library = lib();
    EXPECT_THROW((void)chip.area(library), LookupError);
}

TEST(System, DieCountAndArea) {
    const Chip a("a", "7nm", {Module{"ma", 100.0, "7nm", true}}, 0.10);
    const Chip b("b", "7nm", {Module{"mb", 50.0, "7nm", true}}, 0.10);
    const System system("s", "MCM", {ChipPlacement{a, 2}, ChipPlacement{b, 1}},
                        1e6);
    EXPECT_EQ(system.die_count(), 3u);
    const auto library = lib();
    EXPECT_NEAR(system.total_die_area(library),
                2.0 * 100.0 / 0.9 + 50.0 / 0.9, 1e-9);
    EXPECT_FALSE(system.is_monolithic());
}

TEST(System, DefaultPackageDesignIsPrivate) {
    const Chip a("a", "7nm", {Module{"ma", 100.0, "7nm", true}}, 0.0);
    System s1("s1", "SoC", {ChipPlacement{a, 1}}, 1e6);
    System s2("s2", "SoC", {ChipPlacement{a, 1}}, 1e6);
    EXPECT_NE(s1.package_design(), s2.package_design());
    s2.set_package_design(s1.package_design());
    EXPECT_EQ(s1.package_design(), s2.package_design());
    EXPECT_THROW(s2.set_package_design(""), ParameterError);
}

TEST(System, InvariantsEnforced) {
    const Chip a("a", "7nm", {Module{"ma", 100.0, "7nm", true}}, 0.0);
    EXPECT_THROW(System("s", "MCM", {}, 1e6), ParameterError);
    EXPECT_THROW(System("s", "MCM", {ChipPlacement{a, 0}}, 1e6), ParameterError);
    EXPECT_THROW(System("s", "MCM", {ChipPlacement{a, 1}}, 0.0), ParameterError);
    EXPECT_THROW(System("", "MCM", {ChipPlacement{a, 1}}, 1e6), ParameterError);
}

TEST(SystemFamily, CollectsUniqueDesigns) {
    const Chip shared("shared", "7nm", {Module{"m", 100.0, "7nm", true}}, 0.10);
    const Chip other("other", "7nm", {Module{"o", 60.0, "7nm", true}}, 0.10);
    SystemFamily family;
    family.add(System("s1", "MCM", {ChipPlacement{shared, 2}}, 1e6));
    family.add(System("s2", "MCM",
                      {ChipPlacement{shared, 1}, ChipPlacement{other, 1}}, 1e6));
    EXPECT_EQ(family.unique_chips().size(), 2u);
    EXPECT_EQ(family.unique_modules().size(), 2u);
    EXPECT_EQ(family.unique_package_designs().size(), 2u);
}

TEST(SystemFamily, RejectsConflictingChipRedefinition) {
    const Chip v1("c", "7nm", {Module{"m", 100.0, "7nm", true}}, 0.10);
    const Chip v2("c", "7nm", {Module{"m", 120.0, "7nm", true}}, 0.10);
    SystemFamily family;
    family.add(System("s1", "MCM", {ChipPlacement{v1, 1}}, 1e6));
    EXPECT_THROW(family.add(System("s2", "MCM", {ChipPlacement{v2, 1}}, 1e6)),
                 ParameterError);
}

TEST(SystemFamily, RejectsConflictingModuleRedefinition) {
    const Chip c1("c1", "7nm", {Module{"m", 100.0, "7nm", true}}, 0.10);
    const Chip c2("c2", "7nm", {Module{"m", 120.0, "7nm", true}}, 0.10);
    SystemFamily family;
    family.add(System("s1", "MCM", {ChipPlacement{c1, 1}}, 1e6));
    EXPECT_THROW(family.add(System("s2", "MCM", {ChipPlacement{c2, 1}}, 1e6)),
                 ParameterError);
}

TEST(Builders, FluentChipConstruction) {
    const Chip chip = ChipBuilder("ccd", "7nm")
                          .module("cores", 66.0)
                          .module("analog", 10.0, "14nm", false)
                          .d2d(0.10)
                          .build();
    EXPECT_EQ(chip.name(), "ccd");
    EXPECT_EQ(chip.node(), "7nm");
    EXPECT_EQ(chip.modules().size(), 2u);
    EXPECT_EQ(chip.modules()[0].node, "7nm");     // defaults to chip node
    EXPECT_EQ(chip.modules()[1].node, "14nm");
    EXPECT_FALSE(chip.modules()[1].scalable);
    EXPECT_DOUBLE_EQ(chip.d2d_fraction(), 0.10);
}

TEST(Builders, FluentSystemConstruction) {
    const Chip chip = ChipBuilder("x", "7nm").module("m", 100.0).d2d(0.1).build();
    const System system = SystemBuilder("sys", "MCM")
                              .chips(chip, 4)
                              .quantity(5e5)
                              .package_design("pkg:shared")
                              .build();
    EXPECT_EQ(system.die_count(), 4u);
    EXPECT_DOUBLE_EQ(system.quantity(), 5e5);
    EXPECT_EQ(system.package_design(), "pkg:shared");
    EXPECT_EQ(system.packaging(), "MCM");
}

TEST(Builders, InvalidArgumentsThrow) {
    EXPECT_THROW(ChipBuilder("c", "7nm").build(), ParameterError);  // no modules
    const Chip chip = ChipBuilder("x", "7nm").module("m", 100.0).build();
    EXPECT_THROW(SystemBuilder("s", "MCM").chips(chip, 0), ParameterError);
    EXPECT_THROW(SystemBuilder("s", "MCM").quantity(-1.0), ParameterError);
    EXPECT_THROW(SystemBuilder("s", "MCM").package_design(""), ParameterError);
}

}  // namespace
}  // namespace chiplet::design
