#include "util/csv.h"

#include <gtest/gtest.h>

#include <fstream>

#include "util/error.h"

namespace chiplet {
namespace {

TEST(CsvWriter, HeaderAndRows) {
    CsvWriter csv;
    csv.set_header({"a", "b"});
    csv.add_row({"1", "2"});
    csv.add_row({"3", "4"});
    EXPECT_EQ(csv.str(), "a,b\n1,2\n3,4\n");
    EXPECT_EQ(csv.row_count(), 2u);
    EXPECT_EQ(csv.column_count(), 2u);
}

TEST(CsvWriter, NoHeaderAllowed) {
    CsvWriter csv;
    csv.add_row({"x"});
    EXPECT_EQ(csv.str(), "x\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
    CsvWriter csv;
    csv.add_row({"a,b", "plain", "say \"hi\"", "line\nbreak"});
    EXPECT_EQ(csv.str(), "\"a,b\",plain,\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvWriter, WidthMismatchThrows) {
    CsvWriter csv;
    csv.set_header({"a", "b"});
    EXPECT_THROW(csv.add_row({"only-one"}), ParameterError);
}

TEST(CsvWriter, HeaderAfterRowsThrows) {
    CsvWriter csv;
    csv.add_row({"1"});
    EXPECT_THROW(csv.set_header({"a"}), ParameterError);
}

TEST(CsvWriter, NumericRowFormatting) {
    CsvWriter csv;
    csv.add_numeric_row({1.0, 2.5, 1e6});
    EXPECT_EQ(csv.str(), "1,2.5,1e+06\n");
}

TEST(CsvWriter, SaveAndSize) {
    CsvWriter csv;
    csv.set_header({"x"});
    csv.add_row({"1"});
    const std::string path = testing::TempDir() + "chiplet_csv_test.csv";
    csv.save(path);
    std::ifstream file(path);
    std::string line;
    std::getline(file, line);
    EXPECT_EQ(line, "x");
}

TEST(CsvWriter, SaveToBadPathThrows) {
    CsvWriter csv;
    csv.add_row({"1"});
    EXPECT_THROW(csv.save("/nonexistent_dir_zz/file.csv"), Error);
}

}  // namespace
}  // namespace chiplet
