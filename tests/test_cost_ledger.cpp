// Cost-ledger invariants: the itemised CostLedger emitted by the
// explain entry points folds back to the accumulated
// ReBreakdown/NreBreakdown totals bit for bit, carries a paper-equation
// tag on every term, survives the study_json round-trip losslessly, and
// is attached by every study kind that evaluates the cost model.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "core/actuary.h"
#include "core/cost_ledger.h"
#include "core/scenarios.h"
#include "explore/design_space.h"
#include "explore/montecarlo.h"
#include "explore/optimizer.h"
#include "explore/pareto.h"
#include "explore/sensitivity.h"
#include "explore/study.h"
#include "explore/study_json.h"
#include "explore/sweep.h"
#include "explore/timeline.h"
#include "util/error.h"

namespace chiplet {
namespace {

using core::ChipletActuary;
using core::CostLedger;
using core::CostTerm;
using core::SystemCost;

/// Asserts the ledger reproduces the breakdowns of `cost` bit for bit
/// and that every term carries its provenance tags.
void expect_ledger_matches(const SystemCost& cost, bool expect_nre) {
    ASSERT_FALSE(cost.ledger.empty());
    const core::ReBreakdown re = cost.ledger.fold_re();
    EXPECT_EQ(re.raw_chips, cost.re.raw_chips);
    EXPECT_EQ(re.chip_defects, cost.re.chip_defects);
    EXPECT_EQ(re.raw_package, cost.re.raw_package);
    EXPECT_EQ(re.package_defects, cost.re.package_defects);
    EXPECT_EQ(re.wasted_kgd, cost.re.wasted_kgd);
    EXPECT_EQ(re.total(), cost.re.total());

    const core::NreBreakdown nre = cost.ledger.fold_nre();
    EXPECT_EQ(nre.modules, cost.nre.modules);
    EXPECT_EQ(nre.chips, cost.nre.chips);
    EXPECT_EQ(nre.packages, cost.nre.packages);
    EXPECT_EQ(nre.d2d, cost.nre.d2d);
    EXPECT_EQ(nre.total(), cost.nre.total());
    if (expect_nre) EXPECT_GT(nre.total(), 0.0);

    for (const CostTerm& term : cost.ledger.terms) {
        EXPECT_FALSE(term.id.empty());
        EXPECT_FALSE(term.label.empty());
        EXPECT_FALSE(term.paper_eq.empty()) << term.id;
    }
}

/// Every paper scenario: the monolithic SoC plus the equal split on
/// each multi-die integration, at a few areas/counts.
std::vector<design::System> paper_scenarios() {
    std::vector<design::System> systems;
    for (const std::string& node : {"14nm", "7nm", "5nm"}) {
        systems.push_back(core::monolithic_soc("soc", node, 400.0, 1e6));
        for (const std::string& packaging : {"MCM", "InFO", "2.5D"}) {
            for (unsigned k : {1u, 2u, 5u}) {
                systems.push_back(core::split_system("split", node, packaging,
                                                     800.0, k, 0.10, 2e6));
            }
        }
    }
    return systems;
}

TEST(CostLedger, FoldsBitIdenticalForEveryScenario) {
    const ChipletActuary actuary;
    for (const design::System& system : paper_scenarios()) {
        const SystemCost evaluated = actuary.evaluate(system);
        const SystemCost explained = actuary.explain(system);

        // explain() must not perturb the numbers in any way...
        EXPECT_EQ(explained.re.total(), evaluated.re.total());
        EXPECT_EQ(explained.nre.total(), evaluated.nre.total());
        EXPECT_TRUE(evaluated.ledger.empty());  // hot path stays ledger-free

        // ...and its ledger folds to exactly the accumulated breakdown.
        expect_ledger_matches(explained, /*expect_nre=*/true);
    }
}

TEST(CostLedger, ReOnlyExplainCarriesNoNreTerms) {
    const ChipletActuary actuary;
    const SystemCost cost = actuary.explain_re_only(
        core::split_system("split", "5nm", "2.5D", 800.0, 3, 0.10, 1e6));
    expect_ledger_matches(cost, /*expect_nre=*/false);
    EXPECT_EQ(cost.ledger.fold_nre().total(), 0.0);
    for (const CostTerm& term : cost.ledger.terms) {
        EXPECT_TRUE(core::is_re_category(term.category)) << term.id;
    }
}

TEST(CostLedger, FamilyAmortisationFoldsPerSystem) {
    // A shared-chiplet family: amortised NRE differs per system, and
    // each system's ledger must reproduce its own share.
    const ChipletActuary actuary;
    design::SystemFamily family;
    family.add(core::split_system("a", "7nm", "MCM", 600.0, 2, 0.10, 1e6));
    family.add(core::monolithic_soc("b", "7nm", 400.0, 5e5));
    const core::FamilyCost evaluated = actuary.evaluate(family);
    const core::FamilyCost explained = actuary.explain(family);
    ASSERT_EQ(explained.systems.size(), evaluated.systems.size());
    for (std::size_t i = 0; i < explained.systems.size(); ++i) {
        EXPECT_EQ(explained.systems[i].total_per_unit(),
                  evaluated.systems[i].total_per_unit());
        expect_ledger_matches(explained.systems[i], /*expect_nre=*/true);
    }
}

TEST(CostLedger, ChipFirstFlowAndStackingAreItemised) {
    core::Assumptions assumptions;
    assumptions.flow = tech::PackagingFlow::chip_first;
    const ChipletActuary actuary(tech::TechLibrary::builtin(), assumptions);
    const SystemCost cost = actuary.explain(
        core::split_system("split", "5nm", "2.5D", 800.0, 2, 0.10, 1e6));
    expect_ledger_matches(cost, /*expect_nre=*/true);
    bool saw_interposer = false;
    for (const CostTerm& term : cost.ledger.terms) {
        saw_interposer = saw_interposer || term.id == "re.package.interposer";
    }
    EXPECT_TRUE(saw_interposer);
}

// ---- study-kind coverage ----------------------------------------------------

explore::ScenarioSpec mcm_scenario() {
    explore::ScenarioSpec s;
    s.node = "5nm";
    s.packaging = "MCM";
    s.module_area_mm2 = 800.0;
    s.chiplets = 2;
    s.d2d_fraction = 0.10;
    s.quantity = 2e6;
    return s;
}

/// One explain-enabled spec per study kind, small enough to run fast.
std::vector<explore::StudySpec> explained_spec_per_kind() {
    using namespace explore;
    std::vector<StudySpec> specs;

    StudySpec re;
    re.name = "re";
    ReSweepConfig rc;
    rc.nodes = {"7nm"};
    rc.packagings = {"SoC", "MCM"};
    rc.chiplet_counts = {2};
    rc.areas_mm2 = {400.0};
    re.config = rc;
    specs.push_back(re);

    StudySpec qty;
    qty.name = "qty";
    QuantitySweepConfig qc;
    qc.packagings = {"SoC", "MCM"};
    qc.quantities = {5e5, 2e6};
    qty.config = qc;
    specs.push_back(qty);

    StudySpec mc;
    mc.name = "mc";
    McStudyConfig mcc;
    mcc.scenario = mcm_scenario();
    mcc.compare = mcm_scenario();
    mcc.compare->packaging = "SoC";
    mcc.draws = 16;
    mc.config = mcc;
    specs.push_back(mc);

    StudySpec sens;
    sens.name = "sens";
    SensitivityStudyConfig sc;
    sc.scenario = mcm_scenario();
    sens.config = sc;
    specs.push_back(sens);

    StudySpec tor;
    tor.name = "tor";
    TornadoStudyConfig tc;
    tc.scenario = mcm_scenario();
    tor.config = tc;
    specs.push_back(tor);

    StudySpec brk;
    brk.name = "brk";
    brk.config = BreakevenQuery{};  // defaults cross near 2M units
    specs.push_back(brk);

    StudySpec par;
    par.name = "par";
    ParetoConfig pc;
    pc.points = {{1, 3, 0}, {2, 2, 1}};
    par.config = pc;
    specs.push_back(par);

    StudySpec rec;
    rec.name = "rec";
    DecisionQuery dq;
    dq.max_chiplets = 3;
    rec.config = dq;
    specs.push_back(rec);

    StudySpec tl;
    tl.name = "tl";
    TimelineStudyConfig tlc;
    tlc.scenario = mcm_scenario();
    tlc.months = 6.0;
    tlc.step_months = 3.0;
    tl.config = tlc;
    specs.push_back(tl);

    StudySpec ds;
    ds.name = "ds";
    DesignSpaceConfig dsc;
    dsc.module_area_mm2 = 600.0;
    dsc.nodes = {"7nm", "5nm"};
    dsc.chiplet_counts = {1, 2};
    dsc.packagings = {"SoC", "MCM"};
    dsc.top_k = 3;
    ds.config = dsc;
    specs.push_back(ds);

    for (explore::StudySpec& spec : specs) spec.explain = true;
    return specs;
}

TEST(CostLedger, EveryStudyKindAttachesFoldableLedgers) {
    const ChipletActuary actuary;
    for (const explore::StudySpec& spec : explained_spec_per_kind()) {
        const explore::StudyResult result = explore::run_study(actuary, spec);
        if (result.kind == explore::StudyKind::pareto) {
            // Pure geometry over caller-supplied points: nothing priced,
            // nothing itemised.
            EXPECT_TRUE(result.ledgers.empty());
            EXPECT_FALSE(result.run.with_ledgers);
            continue;
        }
        ASSERT_FALSE(result.ledgers.empty()) << to_string(result.kind);
        EXPECT_TRUE(result.run.with_ledgers);
        for (const explore::StudyLedger& entry : result.ledgers) {
            EXPECT_FALSE(entry.label.empty());
            ASSERT_FALSE(entry.ledger.empty()) << to_string(result.kind);
            const core::ReBreakdown re = entry.ledger.fold_re();
            EXPECT_GT(re.total(), 0.0);
            for (const CostTerm& term : entry.ledger.terms) {
                EXPECT_FALSE(term.paper_eq.empty())
                    << to_string(result.kind) << ": " << term.id;
            }
        }
    }
}

TEST(CostLedger, ExplainedPayloadsStayBitIdentical) {
    // The explain pass must not disturb the study payloads: tables of
    // an explained run match the plain run cell for cell.
    const ChipletActuary actuary;
    for (explore::StudySpec spec : explained_spec_per_kind()) {
        const explore::StudyResult explained = explore::run_study(actuary, spec);
        spec.explain = false;
        const explore::StudyResult plain = explore::run_study(actuary, spec);
        EXPECT_EQ(explained.table.columns, plain.table.columns);
        EXPECT_EQ(explained.table.rows, plain.table.rows);
        EXPECT_TRUE(plain.ledgers.empty());
    }
}

TEST(CostLedger, QuantitySweepLedgersMatchPayloadTotals) {
    // The strongest coherence check available: quantity_sweep points
    // carry full SystemCosts, and each attached ledger must fold to the
    // matching point's totals bit for bit.
    const ChipletActuary actuary;
    explore::StudySpec spec;
    spec.name = "qty";
    spec.explain = true;
    explore::QuantitySweepConfig qc;
    qc.packagings = {"SoC", "MCM", "2.5D"};
    qc.quantities = {5e5, 2e6};
    spec.config = qc;
    const explore::StudyResult result = explore::run_study(actuary, spec);
    const auto& points =
        std::get<std::vector<explore::QuantitySweepPoint>>(result.payload);
    ASSERT_EQ(result.ledgers.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(result.ledgers[i].ledger.fold_re().total(),
                  points[i].cost.re.total());
        EXPECT_EQ(result.ledgers[i].ledger.fold_nre().total(),
                  points[i].cost.nre.total());
    }
}

TEST(CostLedger, RecommendAndDesignSpaceLedgersMatchWinners) {
    const ChipletActuary actuary;
    for (explore::StudySpec spec : explained_spec_per_kind()) {
        const explore::StudyKind kind = spec.kind();
        if (kind != explore::StudyKind::recommend &&
            kind != explore::StudyKind::design_space) {
            continue;
        }
        const explore::StudyResult result = explore::run_study(actuary, spec);
        ASSERT_EQ(result.ledgers.size(), 1u);
        const CostLedger& ledger = result.ledgers.front().ledger;
        double re = 0.0;
        double nre = 0.0;
        if (kind == explore::StudyKind::recommend) {
            const auto& rec = std::get<explore::Recommendation>(result.payload);
            re = rec.best().re_per_unit;
            nre = rec.best().nre_per_unit;
        } else {
            const auto& ds = std::get<explore::DesignSpaceResult>(result.payload);
            re = ds.best.front().re_per_unit;
            nre = ds.best.front().nre_per_unit;
        }
        EXPECT_EQ(ledger.fold_re().total(), re) << to_string(kind);
        EXPECT_EQ(ledger.fold_nre().total(), nre) << to_string(kind);
    }
}

// ---- JSON round-trip --------------------------------------------------------

TEST(CostLedger, JsonRoundTripIsLossless) {
    const ChipletActuary actuary;
    for (const design::System& system : paper_scenarios()) {
        const CostLedger ledger = actuary.explain(system).ledger;
        const CostLedger back = explore::ledger_from_json(
            explore::to_json(ledger), "roundtrip");
        // Struct equality covers every field of every term bitwise
        // (double members compare with ==).
        EXPECT_EQ(back, ledger);
    }
}

TEST(CostLedger, SpecExplainFlagRoundTripsAndStaysOffByDefault) {
    explore::StudySpec spec;
    spec.name = "qty";
    spec.explain = true;
    spec.config = explore::QuantitySweepConfig{};
    const JsonValue v = explore::to_json(spec);
    EXPECT_TRUE(v.contains("explain"));
    const explore::StudySpec back =
        explore::study_spec_from_json(v, "roundtrip");
    EXPECT_TRUE(back.explain);

    // Default-off specs must serialise without the key at all — the
    // canonical spec JSON (and spec_hash) of pre-ledger studies is
    // byte-identical to before the ledger existed.
    spec.explain = false;
    EXPECT_FALSE(explore::to_json(spec).contains("explain"));
}

TEST(CostLedger, ResultEnvelopeCarriesLedgersOnlyWhenPresent) {
    const ChipletActuary actuary;
    explore::StudySpec spec;
    spec.name = "rec";
    spec.config = explore::DecisionQuery{.max_chiplets = 2};
    const JsonValue plain = explore::to_json(explore::run_study(actuary, spec));
    EXPECT_FALSE(plain.contains("ledgers"));
    EXPECT_FALSE(plain.at("meta").at("with_ledgers").as_bool());

    spec.explain = true;
    const JsonValue explained =
        explore::to_json(explore::run_study(actuary, spec));
    ASSERT_TRUE(explained.contains("ledgers"));
    EXPECT_TRUE(explained.at("meta").at("with_ledgers").as_bool());
    const JsonArray& entries = explained.at("ledgers").as_array();
    ASSERT_EQ(entries.size(), 1u);
    const CostLedger back = explore::ledger_from_json(
        entries.front().at("ledger"), "envelope");
    EXPECT_FALSE(back.empty());
}

TEST(CostLedger, CategoryAndScopeNamesRoundTripAndRejectGarbage) {
    for (int c = 0; c <= static_cast<int>(core::CostCategory::nre_d2d); ++c) {
        const auto category = static_cast<core::CostCategory>(c);
        EXPECT_EQ(core::cost_category_from_string(core::to_string(category)),
                  category);
    }
    for (int s = 0; s <= static_cast<int>(core::CostScope::per_design); ++s) {
        const auto scope = static_cast<core::CostScope>(s);
        EXPECT_EQ(core::cost_scope_from_string(core::to_string(scope)), scope);
    }
    EXPECT_THROW((void)core::cost_category_from_string("bogus"), ParseError);
    EXPECT_THROW((void)core::cost_scope_from_string("bogus"), ParseError);
    try {
        (void)core::cost_category_from_string("bogus");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bogus"), std::string::npos);
        EXPECT_NE(what.find("raw_chips"), std::string::npos);
    }
}

}  // namespace
}  // namespace chiplet
