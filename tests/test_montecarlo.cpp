#include "explore/montecarlo.h"

#include <gtest/gtest.h>

#include "core/scenarios.h"
#include "util/error.h"

namespace chiplet::explore {
namespace {

TEST(MonteCarlo, StatisticsConsistent) {
    const core::ChipletActuary actuary;
    const auto system = core::monolithic_soc("s", "5nm", 600.0, 1e6);
    const McResult result = monte_carlo(actuary, system,
                                        default_sampler("5nm", "SoC"), 200);
    EXPECT_EQ(result.samples.size(), 200u);
    EXPECT_GT(result.mean, 0.0);
    EXPECT_GT(result.stddev, 0.0);
    EXPECT_LE(result.p05, result.p50);
    EXPECT_LE(result.p50, result.p95);
    // The point estimate lies inside the 90% band.
    const double point = actuary.evaluate(system).total_per_unit();
    EXPECT_GT(point, result.p05 * 0.9);
    EXPECT_LT(point, result.p95 * 1.1);
}

TEST(MonteCarlo, DeterministicForSeed) {
    const core::ChipletActuary actuary;
    const auto system = core::monolithic_soc("s", "5nm", 600.0, 1e6);
    const auto sampler = default_sampler("5nm", "SoC");
    const McResult a = monte_carlo(actuary, system, sampler, 50, 99);
    const McResult b = monte_carlo(actuary, system, sampler, 50, 99);
    EXPECT_EQ(a.samples, b.samples);
}

TEST(MonteCarlo, WiderSpreadWiderBand) {
    const core::ChipletActuary actuary;
    const auto system = core::monolithic_soc("s", "5nm", 600.0, 1e6);
    const McResult narrow = monte_carlo(actuary, system,
                                        default_sampler("5nm", "SoC", 0.1), 300);
    const McResult wide = monte_carlo(actuary, system,
                                      default_sampler("5nm", "SoC", 0.5), 300);
    EXPECT_GT(wide.p95 - wide.p05, narrow.p95 - narrow.p05);
}

TEST(MonteCarlo, DoesNotMutateBaseActuary) {
    const core::ChipletActuary actuary;
    const double before = actuary.library().node("5nm").defect_density_cm2;
    const auto system = core::monolithic_soc("s", "5nm", 600.0, 1e6);
    (void)monte_carlo(actuary, system, default_sampler("5nm", "SoC"), 20);
    EXPECT_DOUBLE_EQ(actuary.library().node("5nm").defect_density_cm2, before);
}

TEST(WinRate, ClearWinnerNearOne) {
    // At 800 mm^2 / 5 nm / 100M units the MCM advantage is robust to
    // +/-30% parameter uncertainty.
    const core::ChipletActuary actuary;
    const auto soc = core::monolithic_soc("soc", "5nm", 800.0, 1e8);
    const auto mcm = core::split_system("mcm", "5nm", "MCM", 800.0, 3, 0.10, 1e8);
    const double rate =
        win_rate(actuary, mcm, soc, default_sampler("5nm", "MCM"), 200);
    EXPECT_GT(rate, 0.9);
}

TEST(WinRate, SymmetricComplement) {
    const core::ChipletActuary actuary;
    const auto soc = core::monolithic_soc("soc", "5nm", 400.0, 1e6);
    const auto mcm = core::split_system("mcm", "5nm", "MCM", 400.0, 2, 0.10, 1e6);
    const auto sampler = default_sampler("5nm", "MCM");
    const double ab = win_rate(actuary, mcm, soc, sampler, 200, 7);
    const double ba = win_rate(actuary, soc, mcm, sampler, 200, 7);
    EXPECT_NEAR(ab + ba, 1.0, 1e-12);  // ties are measure-zero
}

TEST(MonteCarlo, InvalidInputsThrow) {
    const core::ChipletActuary actuary;
    const auto system = core::monolithic_soc("s", "5nm", 600.0, 1e6);
    EXPECT_THROW((void)monte_carlo(actuary, system,
                                   default_sampler("5nm", "SoC"), 0),
                 ParameterError);
    EXPECT_THROW((void)default_sampler("5nm", "SoC", 0.0), ParameterError);
    EXPECT_THROW((void)default_sampler("5nm", "SoC", 1.0), ParameterError);
}

}  // namespace
}  // namespace chiplet::explore
