#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace chiplet::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, MapKeepsSlotOrder) {
    ThreadPool pool(4);
    const auto out = pool.parallel_map<std::size_t>(
        512, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 512u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], i * i);
    }
}

TEST(ThreadPool, SizeCountsSubmitter) {
    EXPECT_EQ(ThreadPool(1).size(), 1u);
    EXPECT_EQ(ThreadPool(4).size(), 4u);
}

TEST(ThreadPool, SerialPoolStillRunsEverything) {
    ThreadPool pool(1);
    std::vector<int> hits(100, 0);
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, ZeroIterationsIsANoOp) {
    ThreadPool pool(4);
    bool ran = false;
    pool.parallel_for(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesLowestIndexException) {
    ThreadPool pool(4);
    // Several indices throw; the contract picks the lowest one whatever
    // the schedule, so the message is deterministic.
    const auto body = [](std::size_t i) {
        if (i == 7 || i == 400 || i == 901) {
            throw std::runtime_error("failed at " + std::to_string(i));
        }
    };
    for (int repeat = 0; repeat < 10; ++repeat) {
        try {
            pool.parallel_for(1000, body);
            FAIL() << "expected an exception";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "failed at 7");
        }
    }
}

TEST(ThreadPool, SurvivesExceptionAndStaysUsable) {
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallel_for(100, [](std::size_t) { throw std::runtime_error("x"); }),
        std::runtime_error);
    std::atomic<int> total{0};
    pool.parallel_for(100, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, ReusableAcrossManySubmits) {
    ThreadPool pool(3);
    std::atomic<long> total{0};
    for (int round = 0; round < 50; ++round) {
        pool.parallel_for(64, [&](std::size_t i) {
            total.fetch_add(static_cast<long>(i));
        });
    }
    EXPECT_EQ(total.load(), 50l * (64l * 63l / 2l));
}

TEST(ThreadPool, NestedParallelForRunsInline) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(16 * 16);
    // The inner loop is issued from inside a worker; it must fall back
    // to an inline serial loop rather than deadlock on the same pool.
    pool.parallel_for(16, [&](std::size_t outer) {
        pool.parallel_for(16, [&](std::size_t inner) {
            hits[outer * 16 + inner].fetch_add(1);
        });
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, GlobalPoolIsResizable) {
    ThreadPool::set_global_threads(2);
    EXPECT_EQ(ThreadPool::global().size(), 2u);
    ThreadPool::set_global_threads(1);
    EXPECT_EQ(ThreadPool::global().size(), 1u);
    // Leave a small parallel pool behind for other tests in this binary.
    ThreadPool::set_global_threads(4);
    const auto out = ThreadPool::global().parallel_map<int>(
        8, [](std::size_t i) { return static_cast<int>(i); });
    for (int i = 0; i < 8; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace chiplet::util
