#include "yield/harvest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"
#include "yield/models.h"

namespace chiplet::yield {
namespace {

const SeedsNegativeBinomial kModel(10.0);
constexpr double kDefects = 0.13;  // 7nm Zen3-era

HarvestSpec epyc_like() {
    HarvestSpec spec;
    spec.base_area_mm2 = 200.0;  // IO + fabric, non-redundant
    spec.unit_area_mm2 = 8.0;    // one core
    spec.unit_count = 64;
    return spec;
}

TEST(UnitSurvival, DistributionSumsToOne) {
    const auto dist = unit_survival_distribution(kModel, kDefects, epyc_like());
    ASSERT_EQ(dist.size(), 65u);
    const double sum = std::accumulate(dist.begin(), dist.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (double p : dist) EXPECT_GE(p, 0.0);
}

TEST(UnitSurvival, MassNearExpectedCount) {
    const HarvestSpec spec = epyc_like();
    const double p = kModel.yield(kDefects, spec.unit_area_mm2);
    const auto dist = unit_survival_distribution(kModel, kDefects, spec);
    const auto mode = std::max_element(dist.begin(), dist.end()) - dist.begin();
    EXPECT_NEAR(static_cast<double>(mode), p * 64.0, 2.0);
}

TEST(HarvestedYield, RequiringAllUnitsMatchesSerialYield) {
    HarvestSpec spec;
    spec.base_area_mm2 = 0.0;
    spec.unit_area_mm2 = 10.0;
    spec.unit_count = 4;
    const double all = harvested_yield(kModel, kDefects, spec, 4);
    const double per_unit = kModel.yield(kDefects, 10.0);
    EXPECT_NEAR(all, std::pow(per_unit, 4.0), 1e-12);
}

TEST(HarvestedYield, RelaxingRequirementRaisesYield) {
    const HarvestSpec spec = epyc_like();
    double previous = 0.0;
    for (unsigned k : {64u, 56u, 48u, 32u, 16u, 0u}) {
        const double y = harvested_yield(kModel, kDefects, spec, k);
        EXPECT_GE(y, previous) << "k=" << k;
        previous = y;
    }
    // Requiring zero units leaves only the base yield.
    EXPECT_NEAR(harvested_yield(kModel, kDefects, spec, 0),
                kModel.yield(kDefects, spec.base_area_mm2), 1e-12);
}

TEST(HarvestedYield, RecoversMostOfTheMonolithicLoss) {
    // The monolithic-die counterargument: a 712 mm^2 die yields ~50% as
    // sold-perfect, but harvesting at 48-of-64 cores recovers far more.
    const HarvestSpec spec = epyc_like();
    const double full_die_area =
        spec.base_area_mm2 + spec.unit_area_mm2 * spec.unit_count;
    const double perfect = kModel.yield(kDefects, full_die_area);
    const double harvested = harvested_yield(kModel, kDefects, spec, 48);
    EXPECT_GT(harvested, perfect * 1.4);
}

TEST(ExpectedGoodUnits, ScalesWithCountAndYield) {
    const HarvestSpec spec = epyc_like();
    const double expected = expected_good_units(kModel, kDefects, spec);
    const double p = kModel.yield(kDefects, spec.unit_area_mm2);
    const double base = kModel.yield(kDefects, spec.base_area_mm2);
    EXPECT_NEAR(expected, base * p * 64.0, 1e-9);
    EXPECT_LT(expected, 64.0);
}

TEST(EffectiveYield, SingleFullBinMatchesHarvestedYield) {
    const HarvestSpec spec = epyc_like();
    const std::vector<HarvestBin> bins = {{64, 1.0}};
    EXPECT_NEAR(effective_yield(kModel, kDefects, spec, bins),
                harvested_yield(kModel, kDefects, spec, 64), 1e-12);
}

TEST(EffectiveYield, MoreBinsRecoverMoreValue) {
    // Bins must sit where the survival distribution actually has mass:
    // with p(core) ~ 0.99, a 64-core die almost always has >= 60 good
    // cores, so successive bins at 64 / 62 / 60 each add value.
    const HarvestSpec spec = epyc_like();
    const double one_bin =
        effective_yield(kModel, kDefects, spec, {{64, 1.0}});
    const double two_bins =
        effective_yield(kModel, kDefects, spec, {{64, 1.0}, {62, 0.8}});
    const double three_bins = effective_yield(
        kModel, kDefects, spec, {{64, 1.0}, {62, 0.8}, {60, 0.6}});
    EXPECT_GT(two_bins, one_bin);
    EXPECT_GT(three_bins, two_bins);
    EXPECT_LE(three_bins, 1.0);
}

TEST(EffectiveYield, ZeroPricedBinAddsNothing) {
    const HarvestSpec spec = epyc_like();
    const double base = effective_yield(kModel, kDefects, spec, {{64, 1.0}});
    const double with_zero =
        effective_yield(kModel, kDefects, spec, {{64, 1.0}, {48, 0.0}});
    EXPECT_NEAR(base, with_zero, 1e-12);
}

TEST(Harvest, InvalidInputsThrow) {
    HarvestSpec bad;
    bad.unit_area_mm2 = 0.0;
    bad.unit_count = 4;
    EXPECT_THROW((void)harvested_yield(kModel, kDefects, bad, 2), ParameterError);
    const HarvestSpec spec = epyc_like();
    EXPECT_THROW((void)harvested_yield(kModel, kDefects, spec, 65),
                 ParameterError);
    EXPECT_THROW((void)effective_yield(kModel, kDefects, spec, {}),
                 ParameterError);
    // Unsorted bins.
    EXPECT_THROW(
        (void)effective_yield(kModel, kDefects, spec, {{48, 0.7}, {64, 1.0}}),
        ParameterError);
    // Price factor out of range.
    EXPECT_THROW((void)effective_yield(kModel, kDefects, spec, {{64, 1.5}}),
                 ParameterError);
}

}  // namespace
}  // namespace chiplet::yield
