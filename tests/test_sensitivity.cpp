#include "explore/sensitivity.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/scenarios.h"
#include "util/error.h"

namespace chiplet::explore {
namespace {

TEST(Sensitivity, DefaultParameterSetCoversKeyKnobs) {
    const auto params = default_parameters("5nm", "MCM");
    ASSERT_EQ(params.size(), 5u);
    const tech::TechLibrary lib = tech::TechLibrary::builtin();
    for (const auto& p : params) {
        EXPECT_FALSE(p.name.empty());
        EXPECT_GT(p.get(lib), 0.0) << p.name;
    }
}

TEST(Sensitivity, DefectDensityElasticityPositive) {
    const core::ChipletActuary actuary;
    const auto system = core::monolithic_soc("s", "5nm", 800.0, 1e6);
    const auto entries = sensitivity_analysis(
        actuary, system, default_parameters("5nm", "SoC"));
    const auto defect = std::find_if(entries.begin(), entries.end(),
                                     [](const auto& e) {
                                         return e.parameter == "5nm.defect_density";
                                     });
    ASSERT_NE(defect, entries.end());
    EXPECT_GT(defect->elasticity, 0.0);
    // Large die: defect density is a first-order cost driver.
    EXPECT_GT(defect->elasticity, 0.1);
}

TEST(Sensitivity, BondYieldElasticityNegative) {
    // Raising a bonding *yield* lowers cost, so elasticity is negative.
    const core::ChipletActuary actuary;
    const auto system = core::split_system("s", "7nm", "2.5D", 600.0, 3, 0.1, 1e6);
    const auto entries = sensitivity_analysis(
        actuary, system, default_parameters("7nm", "2.5D"));
    const auto bond = std::find_if(
        entries.begin(), entries.end(),
        [](const auto& e) { return e.parameter == "2.5D.chip_bond_yield"; });
    ASSERT_NE(bond, entries.end());
    EXPECT_LT(bond->elasticity, 0.0);
}

TEST(Sensitivity, WaferPriceMoreElasticForBiggerDies) {
    const core::ChipletActuary actuary;
    const auto small = core::monolithic_soc("s", "5nm", 100.0, 1e8);
    const auto large = core::monolithic_soc("l", "5nm", 800.0, 1e8);
    const auto params = default_parameters("5nm", "SoC");
    const auto find_wafer = [&](const std::vector<SensitivityEntry>& entries) {
        return std::find_if(entries.begin(), entries.end(), [](const auto& e) {
                   return e.parameter == "5nm.wafer_price";
               })->elasticity;
    };
    // At very high quantity the NRE share vanishes, so the wafer-price
    // elasticity approaches the RE share of silicon; the larger die has
    // more defect-driven silicon cost, hence at least as high elasticity.
    EXPECT_GT(find_wafer(sensitivity_analysis(actuary, large, params)),
              0.8 * find_wafer(sensitivity_analysis(actuary, small, params)));
}

TEST(Sensitivity, PerturbationDoesNotMutateBaseActuary) {
    const core::ChipletActuary actuary;
    const double before = actuary.library().node("5nm").defect_density_cm2;
    const auto system = core::monolithic_soc("s", "5nm", 400.0, 1e6);
    (void)sensitivity_analysis(actuary, system, default_parameters("5nm", "SoC"));
    EXPECT_DOUBLE_EQ(actuary.library().node("5nm").defect_density_cm2, before);
}

TEST(Tornado, SortedByDescendingSwing) {
    const core::ChipletActuary actuary;
    const auto system = core::monolithic_soc("s", "5nm", 800.0, 1e8);
    const auto entries = tornado_analysis(
        actuary, system, default_parameters("5nm", "SoC"), 0.2);
    ASSERT_FALSE(entries.empty());
    for (std::size_t i = 1; i < entries.size(); ++i) {
        EXPECT_GE(entries[i - 1].swing(), entries[i].swing());
    }
    // At huge quantity, wafer price and defect density dominate the SoC.
    EXPECT_TRUE(entries.front().parameter == "5nm.wafer_price" ||
                entries.front().parameter == "5nm.defect_density");
}

TEST(Tornado, SwingBracketsBaseCost) {
    const core::ChipletActuary actuary;
    const auto system = core::monolithic_soc("s", "5nm", 800.0, 1e6);
    const double base = actuary.evaluate(system).total_per_unit();
    for (const auto& entry : tornado_analysis(
             actuary, system, default_parameters("5nm", "SoC"), 0.2)) {
        EXPECT_LE(std::min(entry.cost_low, entry.cost_high), base + 1e-9)
            << entry.parameter;
        EXPECT_GE(std::max(entry.cost_low, entry.cost_high), base - 1e-9)
            << entry.parameter;
    }
}

TEST(Tornado, InvalidRangeThrows) {
    const core::ChipletActuary actuary;
    const auto system = core::monolithic_soc("s", "5nm", 800.0, 1e6);
    EXPECT_THROW((void)tornado_analysis(actuary, system,
                                        default_parameters("5nm", "SoC"), 0.0),
                 ParameterError);
    EXPECT_THROW((void)tornado_analysis(actuary, system,
                                        default_parameters("5nm", "SoC"), 1.0),
                 ParameterError);
}

TEST(Sensitivity, InvalidStepThrows) {
    const core::ChipletActuary actuary;
    const auto system = core::monolithic_soc("s", "5nm", 400.0, 1e6);
    EXPECT_THROW((void)sensitivity_analysis(actuary, system,
                                            default_parameters("5nm", "SoC"), 0.0),
                 ParameterError);
    EXPECT_THROW((void)sensitivity_analysis(actuary, system,
                                            default_parameters("5nm", "SoC"), 1.0),
                 ParameterError);
}

}  // namespace
}  // namespace chiplet::explore
