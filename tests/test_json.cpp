#include "util/json.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace chiplet {
namespace {

TEST(JsonParse, Scalars) {
    EXPECT_TRUE(JsonValue::parse("null").is_null());
    EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
    EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
    EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_number(), 42.0);
    EXPECT_DOUBLE_EQ(JsonValue::parse("-3.5").as_number(), -3.5);
    EXPECT_DOUBLE_EQ(JsonValue::parse("1e3").as_number(), 1000.0);
    EXPECT_DOUBLE_EQ(JsonValue::parse("2.5E-2").as_number(), 0.025);
    EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, EscapeSequences) {
    EXPECT_EQ(JsonValue::parse(R"("a\"b")").as_string(), "a\"b");
    EXPECT_EQ(JsonValue::parse(R"("tab\there")").as_string(), "tab\there");
    EXPECT_EQ(JsonValue::parse(R"("nl\n")").as_string(), "nl\n");
    EXPECT_EQ(JsonValue::parse(R"("A")").as_string(), "A");
    EXPECT_EQ(JsonValue::parse(R"("é")").as_string(), "\xc3\xa9");  // é
}

TEST(JsonParse, NestedStructures) {
    const JsonValue v = JsonValue::parse(R"({
        "name": "7nm",
        "params": {"d": 0.09, "c": 10},
        "tags": ["logic", "euv"],
        "active": true
    })");
    EXPECT_EQ(v.at("name").as_string(), "7nm");
    EXPECT_DOUBLE_EQ(v.at("params").at("d").as_number(), 0.09);
    EXPECT_EQ(v.at("tags").as_array().size(), 2u);
    EXPECT_EQ(v.at("tags").as_array()[1].as_string(), "euv");
    EXPECT_TRUE(v.at("active").as_bool());
}

TEST(JsonParse, EmptyContainers) {
    EXPECT_TRUE(JsonValue::parse("{}").is_object());
    EXPECT_TRUE(JsonValue::parse("[]").as_array().empty());
    EXPECT_TRUE(JsonValue::parse(" [ ] ").as_array().empty());
}

TEST(JsonParse, MalformedInputsThrow) {
    EXPECT_THROW(JsonValue::parse(""), ParseError);
    EXPECT_THROW(JsonValue::parse("{"), ParseError);
    EXPECT_THROW(JsonValue::parse("[1,]"), ParseError);
    EXPECT_THROW(JsonValue::parse("{\"a\":}"), ParseError);
    EXPECT_THROW(JsonValue::parse("tru"), ParseError);
    EXPECT_THROW(JsonValue::parse("1.2.3"), ParseError);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), ParseError);
    EXPECT_THROW(JsonValue::parse("{} extra"), ParseError);
    EXPECT_THROW(JsonValue::parse("1.  "), ParseError);
    EXPECT_THROW(JsonValue::parse("[1 2]"), ParseError);
}

TEST(JsonParse, ErrorMessageHasLineAndColumn) {
    try {
        (void)JsonValue::parse("{\n  \"a\": oops\n}");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(JsonDump, CompactRoundtrip) {
    const std::string text = R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null}})";
    const JsonValue v = JsonValue::parse(text);
    EXPECT_EQ(JsonValue::parse(v.dump()).dump(), v.dump());
}

TEST(JsonDump, PreservesKeyOrder) {
    JsonValue v = JsonValue::object();
    v.set("zeta", 1);
    v.set("alpha", 2);
    v.set("mid", 3);
    EXPECT_EQ(v.dump(), R"({"zeta":1,"alpha":2,"mid":3})");
    EXPECT_EQ(v.keys(), (std::vector<std::string>{"zeta", "alpha", "mid"}));
}

TEST(JsonDump, PrettyPrintIndents) {
    JsonValue v = JsonValue::object();
    v.set("a", 1);
    EXPECT_EQ(v.dump(2), "{\n  \"a\": 1\n}");
}

TEST(JsonDump, EscapesControlCharacters) {
    std::string raw = "a";
    raw += '\x01';
    raw += 'b';
    const JsonValue v(raw);
    EXPECT_EQ(v.dump(), "\"a\\u0001b\"");
}

TEST(JsonDump, IntegersWithoutDecimalPoint) {
    EXPECT_EQ(JsonValue(5.0).dump(), "5");
    EXPECT_EQ(JsonValue(2.5).dump(), "2.5");
}

TEST(JsonValue, SetOverwritesWithoutDuplicatingKey) {
    JsonValue v = JsonValue::object();
    v.set("k", 1);
    v.set("k", 2);
    EXPECT_EQ(v.keys().size(), 1u);
    EXPECT_DOUBLE_EQ(v.at("k").as_number(), 2.0);
}

TEST(JsonValue, GetOrDefaults) {
    JsonValue v = JsonValue::object();
    v.set("present", 1.5);
    EXPECT_DOUBLE_EQ(v.get_or("present", 0.0), 1.5);
    EXPECT_DOUBLE_EQ(v.get_or("absent", 7.0), 7.0);
    EXPECT_EQ(v.get_or("absent", std::string("dflt")), "dflt");
    EXPECT_EQ(v.get_or("absent", true), true);
}

TEST(JsonValue, TypeMismatchThrows) {
    const JsonValue v(1.5);
    EXPECT_THROW((void)v.as_string(), ParseError);
    EXPECT_THROW((void)v.as_bool(), ParseError);
    EXPECT_THROW((void)v.as_array(), ParseError);
    EXPECT_THROW((void)v.at("k"), ParseError);
}

TEST(JsonValue, MissingKeyThrows) {
    const JsonValue v = JsonValue::object();
    EXPECT_THROW((void)v.at("nope"), LookupError);
}

TEST(JsonValue, MutableAtAllowsEditing) {
    JsonValue v = JsonValue::parse(R"({"nodes":[{"d":1}]})");
    v.at("nodes").as_array()[0].set("d", 2);
    EXPECT_DOUBLE_EQ(v.at("nodes").as_array()[0].at("d").as_number(), 2.0);
}

TEST(JsonFile, SaveLoadRoundtrip) {
    JsonValue v = JsonValue::object();
    v.set("x", 1.25);
    const std::string path = testing::TempDir() + "chiplet_json_test.json";
    v.save_file(path);
    const JsonValue loaded = JsonValue::load_file(path);
    EXPECT_DOUBLE_EQ(loaded.at("x").as_number(), 1.25);
}

TEST(JsonFile, MissingFileThrows) {
    EXPECT_THROW((void)JsonValue::load_file("/no/such/file.json"), Error);
}

TEST(JsonReader, RequiredAndOptionalFields) {
    const JsonValue v = JsonValue::parse(
        R"({"name":"x","count":3,"scale":1.5,"flag":true,
            "tags":["a","b"],"values":[1,2.5],"counts":[1,2]})");
    const JsonReader r(v, "test.json: entry");
    EXPECT_EQ(r.require_string("name"), "x");
    EXPECT_DOUBLE_EQ(r.require_number("scale"), 1.5);
    unsigned count = 0;
    r.optional("count", count);
    EXPECT_EQ(count, 3u);
    bool flag = false;
    r.optional("flag", flag);
    EXPECT_TRUE(flag);
    std::vector<std::string> tags;
    r.optional("tags", tags);
    EXPECT_EQ(tags, (std::vector<std::string>{"a", "b"}));
    std::vector<double> values;
    r.optional("values", values);
    EXPECT_EQ(values, (std::vector<double>{1.0, 2.5}));
    std::vector<unsigned> counts;
    r.optional("counts", counts);
    EXPECT_EQ(counts, (std::vector<unsigned>{1, 2}));
    // Absent optional keys leave the output untouched.
    double untouched = 7.0;
    r.optional("absent", untouched);
    EXPECT_DOUBLE_EQ(untouched, 7.0);
}

TEST(JsonReader, ErrorsNameKeyAndContext) {
    const JsonValue v = JsonValue::parse(R"({"count":1.5,"name":3})");
    const JsonReader r(v, "f.json: e[0]");
    const auto expect_message = [](const auto& fn, const std::string& needle) {
        try {
            fn();
            FAIL() << "expected ParseError containing " << needle;
        } catch (const ParseError& e) {
            const std::string what = e.what();
            EXPECT_NE(what.find(needle), std::string::npos) << what;
            EXPECT_NE(what.find("f.json: e[0]"), std::string::npos) << what;
        }
    };
    expect_message([&] { (void)r.require_string("missing"); }, "'missing'");
    expect_message([&] { (void)r.require_string("name"); }, "'name'");
    unsigned count = 0;
    expect_message([&] { r.optional("count", count); }, "'count'");
    EXPECT_THROW((void)JsonReader(JsonValue(1.0), "f.json"), ParseError);
}

TEST(JsonDiff, ToleranceAndIgnoredKeys) {
    const JsonValue a = JsonValue::parse(
        R"({"meta":{"wall":1.0},"x":1.0,"cells":["1.5","soc"],"list":[1,2]})");
    const JsonValue b = JsonValue::parse(
        R"({"meta":{"wall":9.0},"x":1.0000001,"cells":["1.5000001","soc"],"list":[1,2]})");
    JsonDiffOptions options;
    options.tolerance = 1e-6;
    options.ignore_keys = {"meta"};
    EXPECT_EQ(json_diff(a, b, options), "");

    options.tolerance = 1e-12;
    EXPECT_NE(json_diff(a, b, options), "");

    // Without the ignore list the metadata difference surfaces.
    options.tolerance = 1e-6;
    options.ignore_keys = {};
    EXPECT_NE(json_diff(a, b, options), "");
}

TEST(JsonDiff, ReportsPathOfFirstDifference) {
    const JsonValue a = JsonValue::parse(R"({"r":[{"v":1},{"v":2}]})");
    const JsonValue b = JsonValue::parse(R"({"r":[{"v":1},{"v":3}]})");
    const std::string diff = json_diff(a, b);
    EXPECT_NE(diff.find("r[1].v"), std::string::npos) << diff;
    EXPECT_NE(json_diff(JsonValue::parse("[1]"), JsonValue::parse("[1,2]")), "");
    EXPECT_NE(json_diff(JsonValue::parse(R"({"a":1})"),
                        JsonValue::parse(R"({"b":1})")),
              "");
    EXPECT_EQ(json_diff(a, a), "");
}

}  // namespace
}  // namespace chiplet
