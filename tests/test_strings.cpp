#include "util/strings.h"

#include <gtest/gtest.h>

namespace chiplet {
namespace {

TEST(FormatFixed, Decimals) {
    EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(format_fixed(3.14159, 0), "3");
    EXPECT_EQ(format_fixed(-1.5, 1), "-1.5");
    EXPECT_EQ(format_fixed(2.0, 3), "2.000");
}

TEST(FormatPct, FractionToPercent) {
    EXPECT_EQ(format_pct(0.347), "34.7%");
    EXPECT_EQ(format_pct(1.0, 0), "100%");
    EXPECT_EQ(format_pct(0.005, 1), "0.5%");
}

TEST(FormatMoney, Magnitudes) {
    EXPECT_EQ(format_money(12.34), "$12.34");
    EXPECT_EQ(format_money(1234.0), "$1.23k");
    EXPECT_EQ(format_money(1.5e6), "$1.50M");
    EXPECT_EQ(format_money(2.5e9), "$2.50B");
    EXPECT_EQ(format_money(-1234.0), "-$1.23k");
    EXPECT_EQ(format_money(150e6), "$150M");
}

TEST(FormatQuantity, Magnitudes) {
    EXPECT_EQ(format_quantity(500'000), "500k");
    EXPECT_EQ(format_quantity(2'000'000), "2M");
    EXPECT_EQ(format_quantity(1'500'000), "1.5M");
    EXPECT_EQ(format_quantity(1e9), "1B");
    EXPECT_EQ(format_quantity(42), "42");
}

TEST(Pad, LeftAndRight) {
    EXPECT_EQ(pad_left("ab", 4), "  ab");
    EXPECT_EQ(pad_right("ab", 4), "ab  ");
    EXPECT_EQ(pad_left("abcde", 3), "abcde");  // no truncation
    EXPECT_EQ(pad_right("", 2), "  ");
}

TEST(Split, KeepsEmptyFields) {
    EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Join, Roundtrip) {
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"solo"}, ","), "solo");
    EXPECT_EQ(join(split("x|y|z", '|'), "|"), "x|y|z");
}

TEST(ToLower, Ascii) {
    EXPECT_EQ(to_lower("MCM"), "mcm");
    EXPECT_EQ(to_lower("InFO 2.5D"), "info 2.5d");
}

TEST(Repeat, Basic) {
    EXPECT_EQ(repeat('-', 3), "---");
    EXPECT_EQ(repeat('x', 0), "");
}

}  // namespace
}  // namespace chiplet
