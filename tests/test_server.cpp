// actuaryd serving layer (serve/server.h): protocol verbs, concurrent
// client soak with responses bit-identical to serial run_study, cache
// behaviour across repeated specs, per-study failure reporting, and
// clean shutdown with no leaked threads (CI runs this under ASan/UBSan
// and with CHIPLET_THREADS in {1, 4}).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/actuary.h"
#include "core/version.h"
#include "explore/cell_store.h"
#include "explore/study.h"
#include "explore/study_json.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/error.h"
#include "util/json.h"

namespace chiplet::serve {
namespace {

using explore::StudySpec;

/// Small but mixed-kind batch: fast engines only, so the soak stays
/// cheap while still crossing every dispatch path it needs.
std::vector<StudySpec> mixed_batch() {
    std::vector<StudySpec> specs;

    StudySpec re;
    re.name = "re";
    explore::ReSweepConfig rc;
    rc.nodes = {"7nm"};
    rc.packagings = {"SoC", "MCM"};
    rc.chiplet_counts = {2};
    rc.areas_mm2 = {200.0, 500.0};
    re.config = rc;
    specs.push_back(re);

    StudySpec qty;
    qty.name = "qty";
    explore::QuantitySweepConfig qc;
    qc.quantities = {5e5, 2e6};
    qty.config = qc;
    specs.push_back(qty);

    StudySpec brk;
    brk.name = "brk";
    brk.config = explore::BreakevenQuery{};
    specs.push_back(brk);

    StudySpec par;
    par.name = "par";
    explore::ParetoConfig pc;
    pc.points = {explore::ParetoPoint{1.0, 3.0, 0},
                 explore::ParetoPoint{2.0, 1.0, 1},
                 explore::ParetoPoint{3.0, 2.0, 2}};
    par.config = pc;
    specs.push_back(par);

    StudySpec rec;
    rec.name = "rec";
    explore::DecisionQuery dq;
    dq.max_chiplets = 3;
    rec.config = dq;
    specs.push_back(rec);

    return specs;
}

/// "results" of a serial run_study loop, the bit-identical reference.
/// Normalised through one dump/parse cycle so both sides of the
/// comparison carry wire-precision numbers: the server's bytes must
/// then match exactly (tolerance zero).
JsonValue serial_results(const core::ChipletActuary& actuary,
                         const std::vector<StudySpec>& specs) {
    std::vector<explore::StudyResult> results;
    for (const StudySpec& spec : specs) {
        results.push_back(explore::run_study(actuary, spec));
    }
    return JsonValue::parse(explore::results_to_json(results).dump());
}

/// Structural equality of server results vs the serial reference, run
/// metadata ignored, tolerance zero (bit-identical formatted values).
std::string diff_results(const JsonValue& response,
                         const JsonValue& reference) {
    JsonValue wrapped = JsonValue::object();
    wrapped.set("results", response.at("results"));
    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    exact.ignore_keys = {"meta"};
    return json_diff(wrapped, reference, exact);
}

class ServerTest : public ::testing::Test {
protected:
    void SetUp() override {
        config_.port = 0;  // ephemeral: parallel test runs never clash
        server_ = std::make_unique<StudyServer>(actuary_, config_);
        server_->start();
    }

    void TearDown() override {
        if (server_) server_->stop();
    }

    [[nodiscard]] StudyClient connect() const {
        return StudyClient("127.0.0.1", server_->port());
    }

    const core::ChipletActuary actuary_;
    ServerConfig config_;
    std::unique_ptr<StudyServer> server_;
};

TEST_F(ServerTest, PingStatsAndReusedConnection) {
    StudyClient client = connect();
    const JsonValue pong = client.ping();
    EXPECT_TRUE(pong.at("ok").as_bool());
    EXPECT_EQ(pong.at("op").as_string(), "ping");

    // Several frames over one connection.
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(client.ping().at("ok").as_bool());
    }

    const JsonValue stats = client.stats();
    EXPECT_TRUE(stats.contains("cache"));
    EXPECT_GE(stats.at("server").at("connections").as_number(), 1.0);
    EXPECT_EQ(stats.at("server").at("ledger_results").as_number(), 0.0);
    EXPECT_GT(stats.at("threads").as_number(), 0.0);
}

TEST_F(ServerTest, ExplainStudiesCarryLedgersThroughTheProtocol) {
    StudyClient client = connect();
    std::vector<StudySpec> specs = mixed_batch();
    for (StudySpec& spec : specs) spec.explain = true;
    const JsonValue response = client.run(specs);

    // Every result except the pareto one carries a ledgers section, and
    // the run meta counts them.
    std::size_t with_ledgers = 0;
    for (const JsonValue& result : response.at("results").as_array()) {
        const bool has = result.contains("ledgers");
        EXPECT_EQ(has, result.at("kind").as_string() != "pareto");
        EXPECT_EQ(result.at("meta").at("with_ledgers").as_bool(), has);
        if (has) {
            ++with_ledgers;
            const JsonArray& entries = result.at("ledgers").as_array();
            ASSERT_FALSE(entries.empty());
            // The wire ledger parses back and folds to a positive total.
            const core::CostLedger ledger = explore::ledger_from_json(
                entries.front().at("ledger"), "wire");
            EXPECT_GT(ledger.fold_re().total(), 0.0);
        }
    }
    EXPECT_EQ(with_ledgers, specs.size() - 1);
    EXPECT_EQ(response.at("meta").at("with_ledgers").as_number(),
              static_cast<double>(with_ledgers));

    // The stats verb reports the cumulative ledger-carrying results.
    const JsonValue stats = client.stats();
    EXPECT_EQ(stats.at("server").at("ledger_results").as_number(),
              static_cast<double>(with_ledgers));
    EXPECT_EQ(server_->stats().ledger_results, with_ledgers);
}

TEST_F(ServerTest, RunMatchesSerialBitForBit) {
    const std::vector<StudySpec> specs = mixed_batch();
    const JsonValue reference = serial_results(actuary_, specs);

    StudyClient client = connect();
    const JsonValue response = client.run(specs);
    ASSERT_TRUE(response.contains("results"));
    EXPECT_EQ(response.at("failures").as_array().size(), 0u);
    EXPECT_EQ(diff_results(response, reference), "");

    // Second identical request: answered from cache, still identical.
    const JsonValue warm = client.run(specs);
    EXPECT_EQ(diff_results(warm, reference), "");
    EXPECT_EQ(warm.at("meta").at("served_from_cache").as_number(),
              static_cast<double>(specs.size()));
}

TEST_F(ServerTest, ConcurrentSoakBitIdenticalAndCached) {
    const std::vector<StudySpec> specs = mixed_batch();
    const JsonValue reference = serial_results(actuary_, specs);

    // Warm every spec once so each of the soak's study evaluations has
    // a deterministic cache expectation.
    {
        StudyClient warmup = connect();
        ASSERT_EQ(diff_results(warmup.run(specs), reference), "");
    }

    constexpr int kClients = 6;
    constexpr int kRounds = 5;
    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&] {
            try {
                StudyClient client("127.0.0.1", server_->port());
                for (int r = 0; r < kRounds; ++r) {
                    const JsonValue response = client.run(specs);
                    if (!diff_results(response, reference).empty()) {
                        ++mismatches;
                    }
                    if (!response.at("failures").as_array().empty()) {
                        ++failures;
                    }
                }
            } catch (const Error&) {
                ++failures;
            }
        });
    }
    for (std::thread& t : clients) t.join();

    EXPECT_EQ(mismatches.load(), 0)
        << "a served response diverged from serial run_study";
    EXPECT_EQ(failures.load(), 0);

    // Everything after the warmup must have been a cache hit.
    const explore::StudyCache::Stats cache = server_->cache().stats();
    EXPECT_GE(cache.hits,
              static_cast<std::uint64_t>(kClients * kRounds * specs.size()));
    const StudyServer::Stats stats = server_->stats();
    EXPECT_EQ(stats.requests,
              static_cast<std::uint64_t>(kClients * kRounds + 1));
    EXPECT_GE(stats.connections, static_cast<std::uint64_t>(kClients + 1));
}

TEST_F(ServerTest, BatchWithBadStudiesRunsGoodOnesAndReportsAll) {
    // Two broken studies mixed with good ones — the model failure
    // placed *before* the parse failure, so the wire order proves
    // failures are sorted by document index, not by stage.  One line:
    // embedded newlines would split the frame.
    const std::string request =
        R"({"studies":[)"
        R"({"name":"ok_a","kind":"pareto","config":{"points":[{"x":1,"y":2}]}},)"
        R"({"name":"bad_node","kind":"breakeven","config":{"node":"not_a_node"}},)"
        R"({"name":"ok_b","kind":"breakeven","config":{}},)"
        R"({"name":"bad_kind","kind":"wat","config":{}})"
        R"(]})";
    StudyClient client = connect();
    const JsonValue response = client.call(request);

    ASSERT_TRUE(response.contains("results"));
    const JsonArray& results = response.at("results").as_array();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].at("name").as_string(), "ok_a");
    EXPECT_EQ(results[1].at("name").as_string(), "ok_b");

    const JsonArray& failures = response.at("failures").as_array();
    ASSERT_EQ(failures.size(), 2u);
    EXPECT_EQ(failures[0].at("name").as_string(), "bad_node");
    EXPECT_EQ(failures[0].at("stage").as_string(), "model");
    EXPECT_EQ(failures[0].at("index").as_number(), 1.0);
    EXPECT_EQ(failures[1].at("name").as_string(), "bad_kind");
    EXPECT_EQ(failures[1].at("stage").as_string(), "parse");
    EXPECT_EQ(failures[1].at("index").as_number(), 3.0);
}

TEST_F(ServerTest, ShutdownVerbStopsAcceptingAndWaitReturns) {
    StudyClient client = connect();
    const JsonValue ack = client.shutdown();
    EXPECT_TRUE(ack.at("ok").as_bool());

    server_->wait();  // returns because a client requested shutdown
    server_->stop();  // joins accept + connection threads
    EXPECT_FALSE(server_->running());

    // The listener is gone: new connections must be refused.
    EXPECT_THROW(StudyClient("127.0.0.1", server_->port()), Error);
}

TEST_F(ServerTest, StopWhileClientsConnectedJoinsCleanly) {
    StudyClient a = connect();
    StudyClient b = connect();
    EXPECT_TRUE(a.ping().at("ok").as_bool());
    server_->stop();  // must unblock both connection threads
    EXPECT_FALSE(server_->running());
    EXPECT_THROW((void)a.read_line(), Error);  // server hung up
}

TEST_F(ServerTest, PortInUseFailsLoudly) {
    ServerConfig clash;
    clash.port = server_->port();
    StudyServer second(actuary_, clash);
    EXPECT_THROW(second.start(), Error);
}

TEST_F(ServerTest, StatsAndMetricsSurfaceBothCacheLayers) {
    StudyClient client = connect();
    const std::vector<StudySpec> specs = mixed_batch();
    (void)client.run(specs);
    (void)client.run(specs);  // second round: whole-spec cache hits

    const JsonValue stats = client.stats();
    // Satellite: the cache object reports a *rate*, not just counters.
    ASSERT_TRUE(stats.at("cache").contains("hit_rate"));
    EXPECT_GT(stats.at("cache").at("hit_rate").as_number(), 0.0);
    // The cross-study cell store has its own lifetime section…
    ASSERT_TRUE(stats.contains("cells"));
    EXPECT_TRUE(stats.at("cells").contains("hit_rate"));
    EXPECT_GT(stats.at("cells").at("insertions").as_number(), 0.0);
    // …and the graph section carries the per-batch store sums.
    EXPECT_TRUE(stats.at("graph").contains("store_hits"));
    EXPECT_TRUE(stats.at("graph").contains("store_hit_rate"));
    // Satellite: the model-version stamp is on the metrics surface.
    EXPECT_EQ(stats.at("model_version").as_string(),
              core::model_version_string());

    const JsonValue metrics = client.metrics();
    EXPECT_TRUE(metrics.contains("cells"));
    EXPECT_EQ(metrics.at("model_version").as_string(),
              core::model_version_string());
    ASSERT_TRUE(metrics.contains("disk"));
    EXPECT_FALSE(metrics.at("disk").at("persistent").as_bool());
    EXPECT_EQ(metrics.at("disk").at("writes").as_number(), 0.0);
}

TEST_F(ServerTest, CellsPricedByOneBatchWarmTheNextAcrossConnections) {
    // Overlapping grids under different spec names: the whole-spec
    // cache can never answer the second batch, only the cell store can
    // — and the warm batch must still match serial evaluation exactly.
    const auto grid_spec = [](const std::string& name, double extra) {
        StudySpec spec;
        spec.name = name;
        explore::ReSweepConfig c;
        c.nodes = {"7nm", "5nm"};
        c.packagings = {"SoC", "MCM"};
        c.chiplet_counts = {2};
        c.areas_mm2 = {200.0, extra};
        spec.config = c;
        return spec;
    };
    const std::vector<StudySpec> first = {grid_spec("first", 500.0)};
    const std::vector<StudySpec> second = {grid_spec("second", 500.0)};

    {
        StudyClient a = connect();
        const JsonValue cold = a.run(first);
        EXPECT_EQ(cold.at("meta").at("graph").at("store_hits").as_number(),
                  0.0);
    }
    StudyClient b = connect();  // a different connection entirely
    const JsonValue warm = b.run(second);
    EXPECT_GT(warm.at("meta").at("graph").at("store_hits").as_number(), 0.0);
    EXPECT_EQ(diff_results(warm, serial_results(actuary_, second)), "");

    const explore::CellStore::Stats cells = server_->cell_store().stats();
    EXPECT_GT(cells.hits, 0u);
}

TEST(PersistentCache, RestartedServerAnswersWarmAndByteIdentical) {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("chiplet_server_cache_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(dir);

    const core::ChipletActuary actuary;
    const std::vector<StudySpec> specs = mixed_batch();
    ServerConfig config;
    config.port = 0;
    config.cache_dir = dir;

    JsonValue cold_results;
    {
        StudyServer server(actuary, config);
        server.start();
        StudyClient client("127.0.0.1", server.port());
        const JsonValue cold = client.run(specs);
        EXPECT_EQ(cold.at("meta").at("served_from_cache").as_number(), 0.0);
        cold_results = cold.at("results");
        const JsonValue metrics = client.metrics();
        EXPECT_TRUE(metrics.at("disk").at("persistent").as_bool());
        EXPECT_EQ(metrics.at("disk").at("writes").as_number(),
                  static_cast<double>(specs.size()));
        server.stop();
    }

    // Restart: a brand-new process-equivalent server on the same dir
    // must answer the same batch from the warm cache, byte-identically.
    StudyServer server(actuary, config);
    server.start();
    StudyClient client("127.0.0.1", server.port());
    const JsonValue metrics = client.metrics();
    EXPECT_EQ(metrics.at("disk").at("loaded").as_number(),
              static_cast<double>(specs.size()));
    const JsonValue warm = client.run(specs);
    EXPECT_EQ(warm.at("meta").at("served_from_cache").as_number(),
              static_cast<double>(specs.size()));
    // Payloads and tables byte-identical to the cold run; only the
    // per-result run metadata (from_cache, wall time) may differ.
    JsonDiffOptions exact;
    exact.tolerance = 0.0;
    exact.ignore_keys = {"meta"};
    EXPECT_EQ(json_diff(warm.at("results"), cold_results, exact), "");
    server.stop();
    std::filesystem::remove_all(dir);
}

TEST(ServerLifecycle, DestructorStopsARunningServer) {
    const core::ChipletActuary actuary;
    unsigned short port = 0;
    {
        StudyServer server(actuary);
        server.start();
        port = server.port();
        StudyClient client("127.0.0.1", port);
        EXPECT_TRUE(client.ping().at("ok").as_bool());
        // ~StudyServer runs here with a live connection open.
    }
    EXPECT_THROW(StudyClient("127.0.0.1", port), Error);
}

}  // namespace
}  // namespace chiplet::serve
