#include "report/markdown.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace chiplet::report {
namespace {

TEST(MarkdownTable, BasicLayout) {
    const std::string out =
        markdown_table({"a", "b"}, {{"1", "2"}, {"3", "4"}});
    EXPECT_EQ(out, "| a | b |\n|---|---|\n| 1 | 2 |\n| 3 | 4 |\n");
}

TEST(MarkdownTable, NoRows) {
    EXPECT_EQ(markdown_table({"x"}, {}), "| x |\n|---|\n");
}

TEST(MarkdownTable, Validation) {
    EXPECT_THROW((void)markdown_table({}, {}), ParameterError);
    EXPECT_THROW((void)markdown_table({"a", "b"}, {{"1"}}), ParameterError);
}

TEST(MarkdownHeading, Levels) {
    EXPECT_EQ(markdown_heading("Title", 1), "# Title\n");
    EXPECT_EQ(markdown_heading("Sub", 3), "### Sub\n");
    EXPECT_THROW((void)markdown_heading("x", 0), ParameterError);
    EXPECT_THROW((void)markdown_heading("x", 7), ParameterError);
}

}  // namespace
}  // namespace chiplet::report
