#include "explore/optimizer.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace chiplet::explore {
namespace {

TEST(Recommend, CoversWholeSearchSpace) {
    const core::ChipletActuary actuary;
    DecisionQuery query;
    query.max_chiplets = 4;
    const Recommendation rec = recommend(actuary, query);
    // SoC(1) + 3 multi-die packagings x {2,3,4} = 10 options.
    EXPECT_EQ(rec.options.size(), 10u);
}

TEST(Recommend, SortedAscendingByTotal) {
    const core::ChipletActuary actuary;
    const Recommendation rec = recommend(actuary, DecisionQuery{});
    for (std::size_t i = 1; i < rec.options.size(); ++i) {
        EXPECT_LE(rec.options[i - 1].total_per_unit(),
                  rec.options[i].total_per_unit());
    }
    EXPECT_DOUBLE_EQ(rec.best().total_per_unit(),
                     rec.options.front().total_per_unit());
}

TEST(Recommend, SmallLowVolumeDesignPrefersSoC) {
    // Paper Sec. 4.2: "monolithic SoC is often a better choice for a
    // single system unless the area or the production quantity is large".
    const core::ChipletActuary actuary;
    DecisionQuery query;
    query.node = "14nm";
    query.module_area_mm2 = 150.0;
    query.quantity = 1e5;
    const Recommendation rec = recommend(actuary, query);
    EXPECT_EQ(rec.best().packaging, "SoC");
    EXPECT_LE(rec.savings_vs_soc(), 0.0);
}

TEST(Recommend, HugeAdvancedHighVolumePrefersMultiChip) {
    const core::ChipletActuary actuary;
    DecisionQuery query;
    query.node = "5nm";
    query.module_area_mm2 = 800.0;
    query.quantity = 1e7;
    const Recommendation rec = recommend(actuary, query);
    EXPECT_NE(rec.best().packaging, "SoC");
    EXPECT_GT(rec.savings_vs_soc(), 0.10);
}

TEST(Recommend, OptionDecompositionConsistent) {
    const core::ChipletActuary actuary;
    const Recommendation rec = recommend(actuary, DecisionQuery{});
    for (const DesignOption& option : rec.options) {
        EXPECT_GT(option.re_per_unit, 0.0);
        EXPECT_GT(option.nre_per_unit, 0.0);
        EXPECT_NEAR(option.total_per_unit(),
                    option.re_per_unit + option.nre_per_unit, 1e-12);
    }
}

TEST(Recommend, InvalidQueryThrows) {
    const core::ChipletActuary actuary;
    DecisionQuery query;
    query.packagings = {};
    EXPECT_THROW((void)recommend(actuary, query), ParameterError);
    query = DecisionQuery{};
    query.max_chiplets = 0;
    EXPECT_THROW((void)recommend(actuary, query), ParameterError);
}

TEST(Recommend, SavingsRequiresSocReference) {
    Recommendation rec;
    rec.options.push_back(DesignOption{"MCM", 2, 10.0, 5.0});
    EXPECT_THROW((void)rec.savings_vs_soc(), ParameterError);
}

}  // namespace
}  // namespace chiplet::explore
