#include "core/actuary.h"

#include <gtest/gtest.h>

#include "core/scenarios.h"
#include "design/builder.h"

namespace chiplet::core {
namespace {

TEST(ChipletActuary, SingleSystemEqualsOneMemberFamily) {
    const ChipletActuary actuary;
    const auto system = split_system("s", "7nm", "MCM", 500.0, 2, 0.10, 1e6);
    const SystemCost direct = actuary.evaluate(system);
    design::SystemFamily family;
    family.add(system);
    const FamilyCost via_family = actuary.evaluate(family);
    EXPECT_NEAR(direct.total_per_unit(),
                via_family.systems.front().total_per_unit(), 1e-9);
}

TEST(ChipletActuary, ReOnlySkipsNre) {
    const ChipletActuary actuary;
    const auto system = monolithic_soc("s", "7nm", 500.0, 1e6);
    const SystemCost re_only = actuary.evaluate_re_only(system);
    EXPECT_DOUBLE_EQ(re_only.nre.total(), 0.0);
    EXPECT_GT(re_only.re.total(), 0.0);
    const SystemCost full = actuary.evaluate(system);
    EXPECT_NEAR(full.re.total(), re_only.re.total(), 1e-9);
    EXPECT_GT(full.nre.total(), 0.0);
}

TEST(ChipletActuary, NreShareShrinksWithQuantity) {
    const ChipletActuary actuary;
    double previous_share = 1.0;
    for (double q : {1e5, 1e6, 1e7, 1e8}) {
        const SystemCost cost =
            actuary.evaluate(monolithic_soc("s", "7nm", 500.0, q));
        const double share = cost.nre.total() / cost.total_per_unit();
        EXPECT_LT(share, previous_share) << "quantity " << q;
        previous_share = share;
    }
    // Paper Sec. 2.3: NRE is negligible at very large quantity.
    EXPECT_LT(previous_share, 0.05);
}

TEST(ChipletActuary, ReIsQuantityIndependent) {
    const ChipletActuary actuary;
    const SystemCost small =
        actuary.evaluate(monolithic_soc("s", "7nm", 500.0, 1e5));
    const SystemCost large =
        actuary.evaluate(monolithic_soc("s", "7nm", 500.0, 1e8));
    EXPECT_NEAR(small.re.total(), large.re.total(), 1e-9);
}

TEST(ChipletActuary, FamilyTotalsAggregateSystems) {
    const ChipletActuary actuary;
    design::SystemFamily family;
    family.add(split_system("a", "7nm", "MCM", 400.0, 2, 0.10, 5e5));
    family.add(split_system("b", "7nm", "MCM", 800.0, 4, 0.10, 5e5));
    const FamilyCost cost = actuary.evaluate(family);
    ASSERT_EQ(cost.systems.size(), 2u);
    double expected_grand = 0.0;
    for (const SystemCost& s : cost.systems) {
        expected_grand += s.total_per_unit() * s.quantity;
    }
    EXPECT_NEAR(cost.grand_total(), expected_grand, 1e-3);
    EXPECT_NEAR(cost.average_unit_cost(), expected_grand / 1e6, 1e-9);
    EXPECT_GT(cost.nre_total(), 0.0);
}

TEST(ChipletActuary, AssumptionsArePluggable) {
    ChipletActuary actuary;
    const auto info = split_system("i", "7nm", "InFO", 600.0, 3, 0.10, 1e6);
    const double chip_last = actuary.evaluate_re_only(info).re.total();
    actuary.assumptions().flow = tech::PackagingFlow::chip_first;
    const double chip_first = actuary.evaluate_re_only(info).re.total();
    EXPECT_GT(chip_first, chip_last);

    actuary.assumptions().flow = tech::PackagingFlow::chip_last;
    actuary.assumptions().yield_model = "poisson";
    const double poisson = actuary.evaluate_re_only(info).re.total();
    EXPECT_GT(poisson, chip_last);  // Poisson is more pessimistic
}

TEST(ChipletActuary, LibraryMutationAffectsResults) {
    ChipletActuary actuary;
    const auto soc = monolithic_soc("s", "7nm", 600.0, 1e6);
    const double base = actuary.evaluate(soc).total_per_unit();
    actuary.library().set_defect_density("7nm", 0.20);
    const double degraded = actuary.evaluate(soc).total_per_unit();
    EXPECT_GT(degraded, base);
}

TEST(ChipletActuary, HeterogeneousCenterCheaperWhenUnscalable) {
    // OCME Sec. 5.2: an unscalable center die on 14 nm beats the same die
    // on 7 nm (same area, cheaper wafer).
    const ChipletActuary actuary;
    const design::Chip center7 = design::ChipBuilder("c7", "7nm")
                                     .module("cm", 160.0, "7nm", false)
                                     .d2d(0.10)
                                     .build();
    const design::Chip center14 = design::ChipBuilder("c14", "14nm")
                                      .module("cm", 160.0, "7nm", false)
                                      .d2d(0.10)
                                      .build();
    const design::Chip ext = design::ChipBuilder("x", "7nm")
                                 .module("xm", 160.0)
                                 .d2d(0.10)
                                 .build();
    const auto sys7 = design::SystemBuilder("s7", "MCM")
                          .chip(center7).chips(ext, 2).quantity(5e5).build();
    const auto sys14 = design::SystemBuilder("s14", "MCM")
                           .chip(center14).chips(ext, 2).quantity(5e5).build();
    EXPECT_LT(actuary.evaluate(sys14).total_per_unit(),
              actuary.evaluate(sys7).total_per_unit());
}

}  // namespace
}  // namespace chiplet::core
