#include "report/chart.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/strings.h"

namespace chiplet::report {
namespace {

TEST(StackedBarChart, RendersBarsAndLegend) {
    StackedBarChart chart(40);
    chart.set_segments({"raw", "defects"});
    chart.add_bar("SoC", {1.0, 1.0});
    chart.add_bar("MCM", {1.0, 0.5});
    const std::string out = chart.render();
    EXPECT_NE(out.find("SoC"), std::string::npos);
    EXPECT_NE(out.find("MCM"), std::string::npos);
    EXPECT_NE(out.find("legend:"), std::string::npos);
    EXPECT_NE(out.find("# raw"), std::string::npos);
    EXPECT_NE(out.find("= defects"), std::string::npos);
    EXPECT_NE(out.find("2.000"), std::string::npos);  // SoC total
    EXPECT_NE(out.find("1.500"), std::string::npos);  // MCM total
}

TEST(StackedBarChart, LargestBarFillsWidth) {
    StackedBarChart chart(20);
    chart.set_segments({"a"});
    chart.add_bar("big", {10.0});
    chart.add_bar("half", {5.0});
    const std::string out = chart.render();
    EXPECT_NE(out.find("|" + repeat('#', 20) + "|"), std::string::npos);
    EXPECT_NE(out.find("|" + repeat('#', 10) + repeat(' ', 10) + "|"),
              std::string::npos);
}

TEST(StackedBarChart, SegmentProportionsRespected) {
    StackedBarChart chart(30);
    chart.set_segments({"x", "y", "z"});
    chart.add_bar("b", {1.0, 1.0, 1.0});
    const std::string out = chart.render();
    EXPECT_NE(out.find("##########=========="), std::string::npos);
}

TEST(StackedBarChart, ExplicitMaxScales) {
    StackedBarChart chart(20);
    chart.set_segments({"a"});
    chart.set_max_value(20.0);
    chart.add_bar("b", {10.0});
    EXPECT_NE(chart.render().find("|##########          |"), std::string::npos);
}

TEST(StackedBarChart, Validation) {
    StackedBarChart chart(40);
    EXPECT_THROW(chart.add_bar("x", {1.0}), ParameterError);  // no segments
    chart.set_segments({"a", "b"});
    EXPECT_THROW(chart.add_bar("x", {1.0}), ParameterError);  // wrong arity
    EXPECT_THROW(chart.add_bar("x", {1.0, -1.0}), ParameterError);
    EXPECT_THROW((void)chart.render(), ParameterError);  // no bars
    EXPECT_THROW(StackedBarChart(5), ParameterError);    // too narrow
    EXPECT_THROW(chart.set_max_value(0.0), ParameterError);
}

TEST(LineChart, RendersSeriesSymbolsAndAxes) {
    LineChart chart(40, 10);
    chart.add_series("up", {{0.0, 0.0}, {100.0, 1.0}});
    chart.add_series("down", {{0.0, 1.0}, {100.0, 0.0}});
    const std::string out = chart.render();
    EXPECT_NE(out.find('A'), std::string::npos);
    EXPECT_NE(out.find('B'), std::string::npos);
    EXPECT_NE(out.find("A up"), std::string::npos);
    EXPECT_NE(out.find("B down"), std::string::npos);
    EXPECT_NE(out.find("0"), std::string::npos);
    EXPECT_NE(out.find("100"), std::string::npos);
    EXPECT_NE(out.find("1.00"), std::string::npos);  // y max label
}

TEST(LineChart, ForcedYRangeClips) {
    LineChart chart(30, 8);
    chart.set_y_range(0.0, 0.5);
    chart.add_series("s", {{0.0, 0.25}, {10.0, 5.0}});  // second point clipped
    const std::string out = chart.render();
    EXPECT_NE(out.find("0.50"), std::string::npos);
    // Only one plotted cell from the in-range point.
    std::size_t count = 0;
    for (char c : out) {
        if (c == 'A') ++count;
    }
    EXPECT_EQ(count, 2u);  // one grid cell + one legend symbol
}

TEST(LineChart, ConstantSeriesDoesNotCrash) {
    LineChart chart(30, 8);
    chart.add_series("flat", {{0.0, 2.0}, {10.0, 2.0}});
    EXPECT_NO_THROW((void)chart.render());
}

TEST(LineChart, Validation) {
    EXPECT_THROW(LineChart(4, 4), ParameterError);
    LineChart chart(30, 8);
    EXPECT_THROW((void)chart.render(), ParameterError);        // no series
    EXPECT_THROW(chart.add_series("s", {}), ParameterError);   // empty series
    EXPECT_THROW(chart.set_y_range(1.0, 1.0), ParameterError);
}

}  // namespace
}  // namespace chiplet::report
