#include "yield/models.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace chiplet::yield {
namespace {

TEST(SeedsNegativeBinomial, PaperEquationOne) {
    // Y = (1 + D S / c)^-c with D in /cm^2 and S in mm^2.
    const SeedsNegativeBinomial model(10.0);
    // 5nm at 800 mm^2: (1 + 0.11 * 8 / 10)^-10
    EXPECT_NEAR(model.yield(0.11, 800.0), std::pow(1.088, -10.0), 1e-12);
}

TEST(SeedsNegativeBinomial, PaperFigure2Anchors) {
    // Read off the paper's Fig. 2 curves at 800 mm^2.
    EXPECT_NEAR(SeedsNegativeBinomial(10).yield(0.20, 800.0), 0.226, 0.005);  // 3nm
    EXPECT_NEAR(SeedsNegativeBinomial(10).yield(0.11, 800.0), 0.430, 0.005);  // 5nm
    EXPECT_NEAR(SeedsNegativeBinomial(10).yield(0.09, 800.0), 0.500, 0.005);  // 7nm
    EXPECT_NEAR(SeedsNegativeBinomial(10).yield(0.08, 800.0), 0.539, 0.005);  // 14nm
    EXPECT_NEAR(SeedsNegativeBinomial(3).yield(0.05, 800.0), 0.687, 0.005);   // RDL
    EXPECT_NEAR(SeedsNegativeBinomial(6).yield(0.06, 800.0), 0.630, 0.005);   // SI
}

TEST(SeedsNegativeBinomial, ApproachesPoissonForLargeC) {
    const PoissonYield poisson;
    const SeedsNegativeBinomial negbin(1e7);
    EXPECT_NEAR(negbin.yield(0.1, 500.0), poisson.yield(0.1, 500.0), 1e-6);
}

TEST(SeedsNegativeBinomial, InvalidClusterThrows) {
    EXPECT_THROW(SeedsNegativeBinomial(0.0), ParameterError);
    EXPECT_THROW(SeedsNegativeBinomial(-1.0), ParameterError);
}

TEST(PoissonYield, ClosedForm) {
    const PoissonYield model;
    EXPECT_NEAR(model.yield(0.1, 100.0), std::exp(-0.1), 1e-12);
    EXPECT_DOUBLE_EQ(model.yield(0.1, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(model.yield(0.0, 500.0), 1.0);
}

TEST(MurphyYield, ClosedForm) {
    const MurphyYield model;
    const double ds = 0.1 * 100.0 / 100.0;  // = 0.1
    const double expected = std::pow((1.0 - std::exp(-ds)) / ds, 2.0);
    EXPECT_NEAR(model.yield(0.1, 100.0), expected, 1e-12);
    EXPECT_DOUBLE_EQ(model.yield(0.0, 100.0), 1.0);  // ds == 0 edge case
}

TEST(SeedsExponential, ClosedForm) {
    const SeedsExponential model;
    EXPECT_DOUBLE_EQ(model.yield(0.1, 100.0), 1.0 / 1.1);
    EXPECT_DOUBLE_EQ(model.yield(0.0, 0.0), 1.0);
}

TEST(AllModels, OrderingAtLargeDies) {
    // Classical ordering for the same D*S: Poisson (no clustering) is the
    // most pessimistic, Seeds exponential (max clustering) the most
    // optimistic, Murphy and negative-binomial in between.
    const double d = 0.15;
    const double s = 700.0;
    const double poisson = PoissonYield().yield(d, s);
    const double murphy = MurphyYield().yield(d, s);
    const double negbin = SeedsNegativeBinomial(5.0).yield(d, s);
    const double expo = SeedsExponential().yield(d, s);
    EXPECT_LT(poisson, murphy);
    EXPECT_LT(murphy, expo);
    EXPECT_LT(poisson, negbin);
    EXPECT_LT(negbin, expo);
}

TEST(AllModels, NegativeInputsThrow) {
    const SeedsNegativeBinomial model(10.0);
    EXPECT_THROW((void)model.yield(-0.1, 100.0), ParameterError);
    EXPECT_THROW((void)model.yield(0.1, -100.0), ParameterError);
}

TEST(Factory, CreatesEveryModel) {
    EXPECT_EQ(make_yield_model("poisson")->name(), "poisson");
    EXPECT_EQ(make_yield_model("murphy")->name(), "murphy");
    EXPECT_EQ(make_yield_model("seeds_exponential")->name(), "seeds_exponential");
    EXPECT_EQ(make_yield_model("bose_einstein", 4.0)->name(), "bose_einstein");
    const auto negbin = make_yield_model("seeds_negative_binomial", 6.0);
    EXPECT_EQ(negbin->name(), "seeds_negative_binomial");
    EXPECT_NEAR(negbin->yield(0.06, 800.0),
                SeedsNegativeBinomial(6.0).yield(0.06, 800.0), 1e-15);
}

TEST(BoseEinstein, ClosedFormAndLimits) {
    const BoseEinsteinYield model(4.0);
    const double ds = 0.1 * 400.0 / 100.0;  // = 0.4
    EXPECT_NEAR(model.yield(0.1, 400.0), std::pow(1.0 + ds, -4.0), 1e-12);
    // One critical layer degenerates to Seeds' exponential.
    EXPECT_NEAR(BoseEinsteinYield(1.0).yield(0.1, 400.0),
                SeedsExponential().yield(0.1, 400.0), 1e-15);
    // More critical layers -> lower yield.
    EXPECT_LT(BoseEinsteinYield(8.0).yield(0.1, 400.0),
              BoseEinsteinYield(2.0).yield(0.1, 400.0));
    EXPECT_THROW(BoseEinsteinYield(0.0), ParameterError);
}

TEST(BoseEinstein, MorePessimisticThanNegBinomialSameC) {
    // (1 + DS)^-c <= (1 + DS/c)^-c for c >= 1.
    for (double c : {2.0, 6.0, 10.0}) {
        EXPECT_LT(BoseEinsteinYield(c).yield(0.11, 800.0),
                  SeedsNegativeBinomial(c).yield(0.11, 800.0))
            << c;
    }
}

TEST(Factory, UnknownNameThrows) {
    EXPECT_THROW((void)make_yield_model("stapper_quadratic"), LookupError);
}

TEST(Factory, UnknownNameNamesTokenAndListsChoices) {
    // Same diagnostic shape as the integration_type / packaging_flow
    // parse errors: the bad token is quoted and every valid model named.
    try {
        (void)make_yield_model("stapper_quadratic");
        FAIL() << "expected LookupError";
    } catch (const chiplet::LookupError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("'stapper_quadratic'"), std::string::npos) << what;
        for (const char* name :
             {"poisson", "seeds_negative_binomial", "murphy",
              "seeds_exponential", "bose_einstein"}) {
            EXPECT_NE(what.find(name), std::string::npos) << name;
        }
    }
}

TEST(Clone, PreservesBehaviour) {
    const SeedsNegativeBinomial model(7.0);
    const auto copy = model.clone();
    EXPECT_DOUBLE_EQ(copy->yield(0.12, 333.0), model.yield(0.12, 333.0));
}

/// Property sweep: every model, monotone non-increasing in area and
/// defect density; unit yield at zero area; range (0, 1].
class YieldModelProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(YieldModelProperty, UnitYieldAtZeroArea) {
    const auto model = make_yield_model(GetParam(), 10.0);
    EXPECT_DOUBLE_EQ(model->yield(0.25, 0.0), 1.0);
}

TEST_P(YieldModelProperty, MonotoneInArea) {
    const auto model = make_yield_model(GetParam(), 10.0);
    double previous = 1.1;
    for (double area = 0.0; area <= 1000.0; area += 50.0) {
        const double y = model->yield(0.12, area);
        EXPECT_LE(y, previous) << "area " << area;
        EXPECT_GT(y, 0.0);
        EXPECT_LE(y, 1.0);
        previous = y;
    }
}

TEST_P(YieldModelProperty, MonotoneInDefectDensity) {
    const auto model = make_yield_model(GetParam(), 10.0);
    double previous = 1.1;
    for (double d = 0.0; d <= 0.5; d += 0.05) {
        const double y = model->yield(d, 400.0);
        EXPECT_LE(y, previous) << "defect density " << d;
        previous = y;
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, YieldModelProperty,
                         ::testing::Values("poisson", "seeds_negative_binomial",
                                           "murphy", "seeds_exponential",
                                           "bose_einstein"));

}  // namespace
}  // namespace chiplet::yield
