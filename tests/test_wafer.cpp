#include <gtest/gtest.h>

#include <numbers>

#include "util/error.h"
#include "wafer/die_per_wafer.h"
#include "wafer/wafer_spec.h"

namespace chiplet::wafer {
namespace {

WaferSpec standard_wafer() {
    WaferSpec spec;
    spec.diameter_mm = 300.0;
    spec.edge_exclusion_mm = 3.0;
    spec.scribe_width_mm = 0.1;
    spec.price_usd = 9346.0;
    return spec;
}

TEST(WaferSpec, Geometry) {
    const WaferSpec spec = standard_wafer();
    EXPECT_NEAR(spec.gross_area_mm2(), std::numbers::pi * 150.0 * 150.0, 1e-9);
    EXPECT_NEAR(spec.usable_radius_mm(), 147.0, 1e-12);
    EXPECT_NEAR(spec.usable_area_mm2(), std::numbers::pi * 147.0 * 147.0, 1e-9);
    EXPECT_NEAR(spec.price_per_mm2(), 9346.0 / spec.gross_area_mm2(), 1e-12);
}

TEST(WaferSpec, ValidateCatchesBadFields) {
    WaferSpec spec = standard_wafer();
    spec.diameter_mm = -1.0;
    EXPECT_THROW(spec.validate(), ParameterError);
    spec = standard_wafer();
    spec.edge_exclusion_mm = 200.0;  // exceeds radius
    EXPECT_THROW(spec.validate(), ParameterError);
    spec = standard_wafer();
    spec.scribe_width_mm = -0.1;
    EXPECT_THROW(spec.validate(), ParameterError);
    spec = standard_wafer();
    spec.price_usd = -5.0;
    EXPECT_THROW(spec.validate(), ParameterError);
    EXPECT_NO_THROW(standard_wafer().validate());
}

TEST(DpwClassical, KnownMagnitudes) {
    // A 100 mm^2 die on a 300 mm wafer: industry calculators give ~600.
    const double dpw = dpw_classical(standard_wafer(), 100.0);
    EXPECT_GT(dpw, 550.0);
    EXPECT_LT(dpw, 650.0);
}

TEST(DpwClassical, SmallerDieMoreDies) {
    const WaferSpec spec = standard_wafer();
    double previous = 1e18;
    for (double area = 25.0; area <= 900.0; area += 25.0) {
        const double dpw = dpw_classical(spec, area);
        EXPECT_LT(dpw, previous) << "area " << area;
        previous = dpw;
    }
}

TEST(DpwClassical, BelowAreaRatio) {
    const WaferSpec spec = standard_wafer();
    for (double area : {50.0, 100.0, 400.0, 800.0}) {
        EXPECT_LT(dpw_classical(spec, area), dpw_area_ratio(spec, area));
    }
}

TEST(DpwClassical, HugeDieGivesZero) {
    EXPECT_DOUBLE_EQ(dpw_classical(standard_wafer(), 60000.0), 0.0);
}

TEST(DpwAreaRatio, ScalesInversely) {
    const WaferSpec spec = standard_wafer();
    const double at100 = dpw_area_ratio(spec, 100.0);
    const double at400 = dpw_area_ratio(spec, 400.0);
    // Not exactly 4x because the scribe overhead differs, but close.
    EXPECT_NEAR(at100 / at400, 4.0, 0.1);
}

TEST(DpwExactGrid, MatchesHandCountOnTinyWafer) {
    WaferSpec tiny;
    tiny.diameter_mm = 10.0;
    tiny.edge_exclusion_mm = 0.0;
    tiny.scribe_width_mm = 0.0;
    tiny.price_usd = 1.0;
    // 2x2 dies in a radius-5 circle: a 4x4 block centred at origin fits
    // entirely (corner distance sqrt(8) < 5), plus side columns/rows:
    // exact best-known packing here is 8 with offset grids.
    const unsigned count = dpw_exact_grid(tiny, 2.0, 2.0, 16);
    EXPECT_GE(count, 8u);
    EXPECT_LE(count, 12u);
}

TEST(DpwExactGrid, DieLargerThanWaferIsZero) {
    EXPECT_EQ(dpw_exact_grid(standard_wafer(), 300.0, 300.0), 0u);
}

TEST(DpwExactGrid, WithinTenPercentOfClassical) {
    const WaferSpec spec = standard_wafer();
    for (double area : {50.0, 100.0, 200.0, 400.0}) {
        const double exact = dpw_exact_grid_square(spec, area);
        const double classical = dpw_classical(spec, area);
        EXPECT_NEAR(exact, classical, 0.10 * classical)
            << "area " << area << ": exact " << exact << " classical " << classical;
    }
}

TEST(DpwExactGrid, MoreOffsetsNeverFewer) {
    const WaferSpec spec = standard_wafer();
    const unsigned coarse = dpw_exact_grid_square(spec, 150.0, 1);
    const unsigned fine = dpw_exact_grid_square(spec, 150.0, 8);
    EXPECT_GE(fine, coarse);
}

TEST(DpwExactGrid, InvalidInputsThrow) {
    EXPECT_THROW((void)dpw_exact_grid(standard_wafer(), -1.0, 2.0), ParameterError);
    EXPECT_THROW((void)dpw_exact_grid(standard_wafer(), 2.0, 2.0, 0), ParameterError);
    EXPECT_THROW((void)dpw_exact_grid_square(standard_wafer(), 0.0), ParameterError);
}

/// Property sweep across die areas: the classical estimate must stay
/// between 60% and 100% of the area-ratio upper bound for sane sizes.
class DpwProperty : public ::testing::TestWithParam<double> {};

TEST_P(DpwProperty, ClassicalWithinSaneBand) {
    const WaferSpec spec = standard_wafer();
    const double area = GetParam();
    const double upper = dpw_area_ratio(spec, area);
    const double classical = dpw_classical(spec, area);
    EXPECT_GT(classical, 0.6 * upper) << "area " << area;
    EXPECT_LT(classical, upper) << "area " << area;
}

INSTANTIATE_TEST_SUITE_P(Areas, DpwProperty,
                         ::testing::Values(25.0, 50.0, 100.0, 200.0, 300.0,
                                           400.0, 600.0, 800.0, 900.0));

}  // namespace
}  // namespace chiplet::wafer
