#!/usr/bin/env bash
# Persistent-cache round trip against a live actuaryd: populate a fresh
# --cache-dir with the paper-figure batch, kill the server, restart it on
# the same directory, and require the warm server to (a) load every
# persisted entry, (b) answer the whole batch from cache, and (c) return
# byte-identical results (`actuary_cli diff --tol 0`, run metadata
# ignored).  CI runs this under ASan; locally:
#
#   scripts/cache_roundtrip.sh [build-dir] [studies.json]
set -euo pipefail

BUILD_DIR="${1:-build}"
STUDIES="${2:-examples/studies/paper_figures.json}"
CLI="${BUILD_DIR}/actuary_cli"

if [[ ! -x "${CLI}" ]]; then
    echo "error: ${CLI} not built (cmake --build ${BUILD_DIR} --target actuary_cli)" >&2
    exit 1
fi
if [[ ! -f "${STUDIES}" ]]; then
    echo "error: studies file '${STUDIES}' not found" >&2
    exit 1
fi

WORK="$(mktemp -d)"
CACHE_DIR="${WORK}/cache"
SERVER_PID=""

cleanup() {
    if [[ -n "${SERVER_PID}" ]]; then
        kill "${SERVER_PID}" 2>/dev/null || true
        wait "${SERVER_PID}" 2>/dev/null || true
    fi
    rm -rf "${WORK}"
}
trap cleanup EXIT

# Starts actuaryd on an ephemeral port with the shared cache dir; sets
# SERVER_PID and PORT (scraped from the banner) in the calling shell.
start_server() {
    local log="$1"
    "${CLI}" serve --port 0 --cache-dir "${CACHE_DIR}" >"${log}" 2>&1 &
    SERVER_PID=$!
    PORT=""
    for _ in $(seq 1 100); do
        PORT="$(sed -n 's/.*serving on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "${log}" | head -n 1)"
        [[ -n "${PORT}" ]] && break
        if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
            echo "error: server exited during startup" >&2
            cat "${log}" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [[ -z "${PORT}" ]]; then
        echo "error: could not scrape the server port" >&2
        cat "${log}" >&2
        exit 1
    fi
}

# Kills the current server outright — write-through persistence means a
# hard stop must lose nothing (atomic temp-then-rename per entry).
stop_server() {
    kill "${SERVER_PID}"
    wait "${SERVER_PID}" 2>/dev/null || true
    SERVER_PID=""
}

cached_count() {
    sed -n 's/.*ms, \([0-9][0-9]*\) result(s) from cache.*/\1/p' "$1"
}

# ---- cold pass: populate the directory --------------------------------------
echo "== cold server =="
start_server "${WORK}/serve_cold.log"
"${CLI}" client "${STUDIES}" --port "${PORT}" --out "${WORK}/cold.json" \
    | tee "${WORK}/client_cold.log"
stop_server

RESULTS="$(grep -c ' rows' "${WORK}/client_cold.log")"
COLD_CACHED="$(cached_count "${WORK}/client_cold.log")"
if [[ "${COLD_CACHED}" != "0" ]]; then
    echo "error: cold run served ${COLD_CACHED} results from cache, expected 0" >&2
    exit 1
fi
ENTRIES="$(find "${CACHE_DIR}" -name '*.study' | wc -l)"
if [[ "${ENTRIES}" -ne "${RESULTS}" ]]; then
    echo "error: ${RESULTS} results but ${ENTRIES} persisted entries" >&2
    exit 1
fi
echo "persisted ${ENTRIES} entries for ${RESULTS} studies"

# ---- warm pass: restart on the populated directory --------------------------
echo "== restarted server =="
start_server "${WORK}/serve_warm.log"
LOADED="$(sed -n 's/.*persistent cache at .* (\([0-9][0-9]*\) loaded.*/\1/p' "${WORK}/serve_warm.log" | head -n 1)"
if [[ "${LOADED}" != "${RESULTS}" ]]; then
    echo "error: restarted server loaded ${LOADED:-0} entries, expected ${RESULTS}" >&2
    cat "${WORK}/serve_warm.log" >&2
    exit 1
fi
"${CLI}" client "${STUDIES}" --port "${PORT}" --out "${WORK}/warm.json" \
    | tee "${WORK}/client_warm.log"
stop_server

WARM_CACHED="$(cached_count "${WORK}/client_warm.log")"
if [[ "${WARM_CACHED}" != "${RESULTS}" ]]; then
    echo "error: warm run served ${WARM_CACHED:-0} of ${RESULTS} results from cache" >&2
    exit 1
fi

# ---- byte identity ----------------------------------------------------------
"${CLI}" diff "${WORK}/cold.json" "${WORK}/warm.json" --tol 0

echo "cache round trip ok: ${RESULTS} studies, ${LOADED} loaded, ${WARM_CACHED} warm hits, results byte-identical"
