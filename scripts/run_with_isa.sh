#!/usr/bin/env bash
# Forced-ISA test wrapper: run a command with CHIPLET_ISA pinned to one
# kernel level, skipping (ctest SKIP_RETURN_CODE 77) on hosts that
# cannot execute that level — a forced run must never silently fall
# back, and must never fail just because CI got an older machine.
#
#   run_with_isa.sh <isa_probe> <isa> <command> [args...]
set -u

probe="$1"
isa="$2"
shift 2

if ! "$probe" --supports "$isa"; then
    echo "SKIP: host does not support ISA '$isa'" >&2
    exit 77
fi

CHIPLET_ISA="$isa" exec "$@"
