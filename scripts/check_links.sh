#!/usr/bin/env bash
# Checks that every relative markdown link in the documentation points
# at a file that exists.  Inline links (with or without a quoted title)
# and reference-style definitions (`[ref]: path`) are covered; external
# (http/https/mailto) links and pure in-page anchors are skipped;
# `path#anchor` links are checked for the file part only.
#
#   scripts/check_links.sh [file.md ...]     # defaults to README.md docs/*.md
#
# Exit 0 when every link resolves, 1 otherwise (each failure is printed
# as "<file>: broken link -> <target>").
set -uo pipefail

cd "$(dirname "$0")/.."

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
    files=(README.md docs/*.md)
fi

status=0
for file in "${files[@]}"; do
    if [[ ! -f "${file}" ]]; then
        echo "${file}: file not found" >&2
        status=1
        continue
    fi
    dir="$(dirname "${file}")"
    # Inline links `](target)` / `](target "title")` plus reference
    # definitions `[ref]: target`, one target per line.
    while IFS= read -r target; do
        [[ -n "${target}" ]] || continue
        case "${target}" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="${target%%#*}"
        [[ -n "${path}" ]] || continue
        if [[ ! -e "${dir}/${path}" ]]; then
            echo "${file}: broken link -> ${target}" >&2
            status=1
        fi
    done < <(
        grep -oE '\]\([^)]+\)' "${file}" |
            sed -E 's/^\]\(//; s/\)$//; s/[[:space:]]+"[^"]*"$//'
        grep -oE '^\[[^]]+\]:[[:space:]]+[^[:space:]]+' "${file}" |
            sed -E 's/^\[[^]]+\]:[[:space:]]+//'
    )
done

if [[ ${status} -eq 0 ]]; then
    echo "all markdown links resolve (${files[*]})"
fi
exit "${status}"
