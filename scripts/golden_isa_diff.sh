#!/usr/bin/env bash
# Golden paper-figure diff at one forced kernel ISA: runs every study in
# examples/studies/paper_figures.json through actuary_cli (CHIPLET_ISA
# already pinned by run_with_isa.sh) and diffs the results against the
# committed golden with the same tolerance CI's golden-studies job uses.
# The kernels claim bit-identity across ISA levels, so a forced level
# must reproduce the golden numbers exactly as the default build does.
#
#   golden_isa_diff.sh <actuary_cli> <source-dir> <scratch-dir>
set -eu

cli="$1"
src="$2"
scratch="$3"

mkdir -p "$scratch"
out="$scratch/paper_figures.${CHIPLET_ISA:-default}.json"

"$cli" study "$src/examples/studies/paper_figures.json" --out "$out"
"$cli" diff "$src/examples/studies/paper_figures.golden.json" "$out" --tol 1e-6
