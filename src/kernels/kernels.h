// Structure-of-arrays batch kernels for the hot cost path: dies per
// wafer, the yield integrand (paper Eq. 1), die cost, and the RE fold
// of Eq. 3-5 over contiguous candidate arrays.  One function-pointer
// table exists per ISA level (scalar / SSE2 / AVX2, zimg-style per-arch
// translation units); dispatch.cpp selects a table at runtime via
// kernels/isa.h.
//
// Bit-identity policy — the contract every table obeys and the
// differential harness (tests/test_kernel_differential.cpp) enforces:
//
//   * A SIMD kernel must reproduce the scalar reference BIT FOR BIT.
//     Only IEEE-exact lane operations are vectorised (+, -, *, /, sqrt
//     and compare/select — all correctly rounded per element), in the
//     scalar implementation's exact association order, with FMA
//     contraction disabled (the library builds with -ffp-contract=off
//     and the SIMD bodies use explicit non-FMA intrinsics).
//   * Transcendental steps (std::exp, std::pow in the Poisson /
//     negative-binomial / Murphy / Bose-Einstein yields) have no
//     bit-exact vector form, so every table runs them as scalar libm
//     calls per lane; only the purely arithmetic seeds_exponential
//     yield is vectorised.
//   * Accumulation orders are never reassociated — the RE fold keeps
//     the scalar engine's left-to-right term order, which is what makes
//     kernel results interchangeable with core::ReModel's.
//
// Adding a kernel: extend KernelTable (and this policy note), implement
// the element step once in kernels_scalar.cpp, mirror it with intrinsics
// in kernels_sse2.cpp / kernels_avx2.cpp only if every lane operation is
// IEEE-exact — otherwise point the SIMD tables at the scalar entry —
// and add a differential case to tests/test_kernel_differential.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "kernels/isa.h"

namespace chiplet::kernels {

/// Yield-model dispatch for the batch path; mirrors the registry in
/// yield/models.cpp (yield::make_yield_model) formula for formula.
enum class YieldKind : std::uint8_t {
    poisson,
    seeds_negative_binomial,
    murphy,
    seeds_exponential,
    bose_einstein,
};

/// Maps a yield-model factory name to its kind; unknown names throw the
/// same LookupError yield::make_yield_model raises.
[[nodiscard]] YieldKind yield_kind_from_name(const std::string& name);

/// SoA inputs/outputs of the RE package fold (paper Eq. 3-5) for one
/// group of candidates sharing a packaging technology, die count and
/// assembly flow.  Per-candidate arrays have length n; everything a
/// candidate cannot change is hoisted into group scalars, precomputed
/// with exactly the arithmetic core::ReModel::evaluate performs.
struct ReFoldTerms {
    // ---- per-candidate inputs -------------------------------------------
    const double* raw_chips = nullptr;     ///< sum of econ.raw * count, pricing order
    const double* chip_defects = nullptr;  ///< sum of (kgd - raw) * count
    const double* kgd_total = nullptr;     ///< sum of kgd * count
    const double* design_area = nullptr;   ///< package sizing area (mm^2)
    /// Interposer cost/yield per candidate; both null when the group's
    /// packaging has no interposer (folded as 0.0 / 1.0, exactly like
    /// the scalar engine's defaults).
    const double* interposer_raw = nullptr;
    const double* interposer_yield = nullptr;

    // ---- hoisted group scalars ------------------------------------------
    double package_area_factor = 0.0;
    double substrate_cost_per_mm2 = 0.0;
    double substrate_layer_factor = 0.0;
    double bond_and_test = 0.0;  ///< bond*dies + package test + base
    double y2n = 0.0;            ///< repeated_yield(chip bond yield, bond steps)
    double y3 = 0.0;             ///< substrate bond yield
    /// scrap_factor(y2n*y3), hoisted: the package-defect factor of
    /// direct-attach schemes and the chip-last KGD factor.
    double scrap_y2n_y3 = 0.0;
    double inv_y3_minus_1 = 0.0;  ///< 1/y3 - 1, hoisted substrate scrap factor
    bool has_interposer = false;
    bool chip_first = false;  ///< KGD factor includes y1 (paper Eq. 5)

    // ---- outputs ---------------------------------------------------------
    double* re_total = nullptr;  ///< ReBreakdown::total() per candidate
};

/// One ISA level's kernel set.  All arrays are caller-allocated, may be
/// unaligned, and must not alias between inputs and outputs.
struct KernelTable {
    Isa isa = Isa::scalar;

    /// Classical dies-per-wafer estimator over die areas (mm^2), exact
    /// image of wafer::dpw_classical with the wafer geometry hoisted.
    void (*dpw_classical)(double usable_radius_mm, double scribe_width_mm,
                          const double* die_area_mm2, double* dpw,
                          std::size_t n);

    /// Expected defects per die: D * S / 100 (paper Eq. 1 integrand),
    /// exact image of yield::YieldModel::expected_defects.
    void (*expected_defects)(double defects_per_cm2, const double* die_area_mm2,
                             double* defects, std::size_t n);

    /// Die yield from expected defects, per model kind.  `param` is the
    /// clustering parameter (negative binomial) or critical layer count
    /// (Bose-Einstein); ignored otherwise.
    void (*yield_from_defects)(YieldKind kind, double param,
                               const double* defects, double* yield,
                               std::size_t n);

    /// Raw die cost: wafer_price / dpw + extra_per_mm2 * area, where
    /// extra_per_mm2 is the hoisted bump + sort-test rate — the exact
    /// arithmetic of DieCostModel::evaluate plus core's price_die.
    /// Entries with dpw <= 0 (die does not fit) produce unusable values
    /// the caller must mask out before use.
    void (*die_raw_cost)(double wafer_price_usd, double extra_per_mm2,
                         const double* die_area_mm2, const double* dpw,
                         double* raw_usd, std::size_t n);

    /// Known-good-die split: kgd = raw / yield, defect = kgd - raw.
    void (*kgd_split)(const double* raw_usd, const double* yield,
                      double* kgd_usd, double* defect_usd, std::size_t n);

    /// out = b + scale * a (multiply before add, never contracted) —
    /// the second interposer bump side and the TSV cost adjustment.
    void (*scale_add)(double scale, const double* a, const double* b,
                      double* out, std::size_t n);

    /// The RE package fold, Eq. 3-5; see ReFoldTerms.
    void (*re_fold)(const ReFoldTerms& terms, std::size_t n);
};

/// The table for one compiled level; throws ParameterError when the
/// level is not compiled into this binary.
[[nodiscard]] const KernelTable& table_for(Isa isa);

/// The table of active_isa() — what the batch cost path runs.
[[nodiscard]] const KernelTable& active_table();

}  // namespace chiplet::kernels
