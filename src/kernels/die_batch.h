// Per-batch die-pricing context: hoists the per-technology setup that
// core::ReModel::price_die would otherwise repeat per candidate —
// wafer-spec validation, yield-model construction, bump/test rate
// folding — into one setup per (process node, batch), then prices every
// registered (node, area) pair with the SoA kernels in one sweep.
//
// The batch is a pure accelerator over the scalar path: a find() hit
// returns the bit-identical raw cost and yield price_die computes, and
// every case the scalar path diagnoses (die does not fit the wafer,
// invalid node parameters, unknown yield model) is left to it — find()
// just returns nothing and the caller falls back, so error messages
// come from exactly one place.
//
// Thread compatibility matches the phases: add()/evaluate() are
// single-threaded (build once, before fan-out); find() is const and
// safe to call from many threads concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernels/kernels.h"

namespace chiplet::tech {
struct ProcessNode;
}  // namespace chiplet::tech

namespace chiplet::kernels {

/// SoA die-pricing table for one evaluation batch.
class DieBatch {
public:
    /// `yield_model_name` is Assumptions::yield_model; nodes register
    /// lazily on first add().
    explicit DieBatch(std::string yield_model_name);

    DieBatch(const DieBatch&) = delete;
    DieBatch& operator=(const DieBatch&) = delete;

    /// Registers a (node, die area) query; duplicates dedup to one slot.
    /// Never throws: a node whose setup fails records a fallback group
    /// instead (the scalar path owns the diagnostics).
    void add(const tech::ProcessNode& node, double die_area_mm2);

    /// Prices every registered query with `table`'s kernels.  Call once,
    /// after the last add().
    void evaluate(const KernelTable& table);

    /// What price_die returns on the scalar path: raw die cost including
    /// the bump + sort-test adders, and die yield.
    struct Priced {
        double raw_usd = 0.0;
        double yield = 1.0;
    };

    /// The batch result for a query, or nullopt when the query is
    /// unknown, its node's setup fell back, the die does not fit, or
    /// evaluate() has not run — the caller must then take the scalar
    /// path (which also raises the canonical errors).
    [[nodiscard]] std::optional<Priced> find(const tech::ProcessNode& node,
                                             double die_area_mm2) const;

    /// Hoisting counters for the batch-setup regression test: setups
    /// must equal distinct technologies, not candidates.
    struct Stats {
        std::uint64_t tech_setups = 0;    ///< per-node setup passes performed
        std::uint64_t unique_queries = 0; ///< deduped (node, area) slots
        std::uint64_t hits = 0;           ///< find() served from the batch
        std::uint64_t fallbacks = 0;      ///< find() deferred to the scalar path
    };
    [[nodiscard]] Stats stats() const;

private:
    struct PerNode {
        const tech::ProcessNode* node = nullptr;
        bool setup_ok = false;  ///< false: every query of this node falls back
        // Hoisted scalar-path inputs (valid when setup_ok).
        double usable_radius_mm = 0.0;
        double scribe_width_mm = 0.0;
        double wafer_price_usd = 0.0;
        double extra_per_mm2 = 0.0;  ///< bump + sort-test rate
        double defects_per_cm2 = 0.0;
        double yield_param = 0.0;
        YieldKind kind = YieldKind::poisson;
        // SoA query slots.
        std::vector<double> area;
        std::vector<double> dpw;
        std::vector<double> defects;
        std::vector<double> yield;
        std::vector<double> raw;
        std::vector<std::uint8_t> usable;  ///< area > 0 and die fits
        std::unordered_map<std::uint64_t, std::uint32_t> slot_by_area_bits;
    };

    PerNode& node_group(const tech::ProcessNode& node);
    [[nodiscard]] const PerNode* find_group(const tech::ProcessNode& node) const;

    std::string yield_model_name_;
    std::vector<PerNode> groups_;  ///< few nodes: linear scan by pointer
    bool evaluated_ = false;
    std::uint64_t tech_setups_ = 0;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> fallbacks_{0};
};

}  // namespace chiplet::kernels
