// Runtime instruction-set selection for the batch cost kernels
// (src/kernels/).  One kernel table is compiled per ISA level; at
// startup the best level the host supports is picked via cpuid, and the
// environment variable CHIPLET_ISA={scalar,sse2,avx2} overrides the
// choice (the forced-ISA ctest matrix runs the whole suite at every
// level).  Selection is per process, not per call: the active table is
// resolved once and cached.
#pragma once

#include <string>
#include <vector>

namespace chiplet::kernels {

/// Kernel ISA levels, ascending.  `scalar` is the reference
/// implementation every other level must reproduce bit for bit.
enum class Isa { scalar = 0, sse2 = 1, avx2 = 2 };

[[nodiscard]] const char* to_string(Isa isa);

/// Parses "scalar" / "sse2" / "avx2"; throws LookupError naming the bad
/// token and listing the valid choices (same shape as the yield-model
/// and integration-type parsers).
[[nodiscard]] Isa isa_from_string(const std::string& name);

/// True when this binary carries a kernel table for `isa` (the SIMD
/// translation units are only built on x86).
[[nodiscard]] bool isa_compiled(Isa isa);

/// True when `isa` is compiled *and* the host CPU executes it (cpuid).
[[nodiscard]] bool isa_supported(Isa isa);

/// The best supported level, ignoring any override.
[[nodiscard]] Isa detect_isa();

/// The level the kernels run at: the CHIPLET_ISA override when set
/// (throws ParameterError if it names an unsupported level — a forced
/// run must never silently fall back), otherwise detect_isa().  Resolved
/// once on first use.
[[nodiscard]] Isa active_isa();

/// Test/bench hook: pin the active level regardless of CHIPLET_ISA, or
/// (with clear_forced_isa) return to the normal resolution.  Throws
/// ParameterError when `isa` is not supported on this host.  Not
/// thread-safe against concurrent kernel use; call between batches.
void force_isa(Isa isa);
void clear_forced_isa();

/// Every level compiled into this binary, ascending.
[[nodiscard]] std::vector<Isa> compiled_isas();

/// Every compiled level the host supports, ascending.
[[nodiscard]] std::vector<Isa> supported_isas();

}  // namespace chiplet::kernels
