// Runtime ISA selection: cpuid detection, the CHIPLET_ISA override, and
// the force_isa test hook.  See kernels/isa.h for the contract.
#include "kernels/isa.h"

#include <cstdlib>
#include <optional>

#include "util/error.h"

namespace chiplet::kernels {

namespace {

bool host_executes(Isa isa) {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__) || \
    defined(_M_IX86)
    switch (isa) {
        case Isa::scalar:
            return true;
        case Isa::sse2:
#if defined(__x86_64__) || defined(_M_X64)
            return true;  // SSE2 is baseline on x86-64
#else
            return __builtin_cpu_supports("sse2");
#endif
        case Isa::avx2:
            return __builtin_cpu_supports("avx2");
    }
    return false;
#else
    return isa == Isa::scalar;
#endif
}

Isa resolve_active() {
    if (const char* env = std::getenv("CHIPLET_ISA")) {
        const Isa forced = isa_from_string(env);
        if (!isa_supported(forced)) {
            throw ParameterError(std::string("CHIPLET_ISA=") + env +
                                 " requests an ISA level this host does not "
                                 "support; a forced run never falls back");
        }
        return forced;
    }
    return detect_isa();
}

// The force_isa hook overrides the cached resolution; std::optional so
// tests can force scalar (value 0) and still be distinguishable from
// "not forced".
std::optional<Isa>& forced_slot() {
    static std::optional<Isa> forced;
    return forced;
}

}  // namespace

const char* to_string(Isa isa) {
    switch (isa) {
        case Isa::scalar:
            return "scalar";
        case Isa::sse2:
            return "sse2";
        case Isa::avx2:
            return "avx2";
    }
    return "unknown";
}

Isa isa_from_string(const std::string& name) {
    if (name == "scalar") return Isa::scalar;
    if (name == "sse2") return Isa::sse2;
    if (name == "avx2") return Isa::avx2;
    throw LookupError("unknown kernel ISA '" + name +
                      "'; choices: scalar, sse2, avx2");
}

bool isa_supported(Isa isa) { return isa_compiled(isa) && host_executes(isa); }

Isa detect_isa() {
    Isa best = Isa::scalar;
    for (Isa isa : {Isa::sse2, Isa::avx2}) {
        if (isa_supported(isa)) best = isa;
    }
    return best;
}

Isa active_isa() {
    if (const auto& forced = forced_slot()) return *forced;
    static const Isa resolved = resolve_active();
    return resolved;
}

void force_isa(Isa isa) {
    if (!isa_supported(isa)) {
        throw ParameterError(std::string("cannot force kernel ISA '") +
                             to_string(isa) +
                             "': not supported on this host");
    }
    forced_slot() = isa;
}

void clear_forced_isa() { forced_slot().reset(); }

std::vector<Isa> compiled_isas() {
    std::vector<Isa> out;
    for (Isa isa : {Isa::scalar, Isa::sse2, Isa::avx2}) {
        if (isa_compiled(isa)) out.push_back(isa);
    }
    return out;
}

std::vector<Isa> supported_isas() {
    std::vector<Isa> out;
    for (Isa isa : {Isa::scalar, Isa::sse2, Isa::avx2}) {
        if (isa_supported(isa)) out.push_back(isa);
    }
    return out;
}

}  // namespace chiplet::kernels
