// Internal registry: each kernel translation unit exports its table
// through one of these accessors; dispatch.cpp stitches them into the
// runtime selection.  SIMD accessors return nullptr when their unit was
// compiled without the matching arch support (non-x86 hosts, or a build
// that never passed -mavx2).
#pragma once

#include "kernels/kernels.h"

namespace chiplet::kernels::detail {

[[nodiscard]] const KernelTable& scalar_table();
[[nodiscard]] const KernelTable* sse2_table();
[[nodiscard]] const KernelTable* avx2_table();

}  // namespace chiplet::kernels::detail
