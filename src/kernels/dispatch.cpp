// Stitches the per-arch kernel tables (kernels/tables.h) into the
// runtime selection declared in kernels/kernels.h.
#include "kernels/kernels.h"

#include "kernels/tables.h"
#include "util/error.h"
#include "yield/models.h"

namespace chiplet::kernels {

namespace {

const KernelTable* table_ptr(Isa isa) {
    switch (isa) {
        case Isa::scalar:
            return &detail::scalar_table();
        case Isa::sse2:
            return detail::sse2_table();
        case Isa::avx2:
            return detail::avx2_table();
    }
    return nullptr;
}

}  // namespace

bool isa_compiled(Isa isa) { return table_ptr(isa) != nullptr; }

YieldKind yield_kind_from_name(const std::string& name) {
    if (name == "poisson") return YieldKind::poisson;
    if (name == "seeds_negative_binomial")
        return YieldKind::seeds_negative_binomial;
    if (name == "murphy") return YieldKind::murphy;
    if (name == "seeds_exponential") return YieldKind::seeds_exponential;
    if (name == "bose_einstein") return YieldKind::bose_einstein;
    // Unknown name: raise the canonical factory error so batch and
    // scalar paths diagnose identically.
    (void)yield::make_yield_model(name, 1.0);
    throw LookupError("unknown yield model: '" + name + "'");  // unreachable
}

const KernelTable& table_for(Isa isa) {
    if (const KernelTable* table = table_ptr(isa)) return *table;
    throw ParameterError(std::string("kernel ISA '") + to_string(isa) +
                         "' is not compiled into this binary");
}

const KernelTable& active_table() { return table_for(active_isa()); }

}  // namespace chiplet::kernels
