// Per-element reference steps shared by every kernel translation unit:
// the scalar table loops over these, and the SIMD tables call them for
// remainder lanes (and for the transcendental yields, every lane).  Each
// step is a literal transcription of the scalar engine's expression —
// same association order, no contraction — so "same step, any unit"
// implies bit-identity.  Internal header; include kernels/kernels.h for
// the public surface.
#pragma once

#include <cmath>

#include "kernels/kernels.h"

namespace chiplet::kernels::detail {

/// wafer::dpw_classical with the geometry constants hoisted:
/// c_area = (pi * r) * r and c_edge = (pi * 2.0) * r, the exact partial
/// products of the reference expression.
inline double dpw_classical_step(double c_area, double c_edge,
                                 double scribe_width_mm, double die_area_mm2) {
    const double side = std::sqrt(die_area_mm2);
    const double grown = side + scribe_width_mm;
    const double footprint = grown * grown;
    const double area_term = c_area / footprint;
    const double edge_term = c_edge / std::sqrt(2.0 * footprint);
    const double diff = area_term - edge_term;
    // std::max(0.0, diff): keep its exact select semantics (+0.0 for
    // NaN or non-positive diff) so the SIMD compare/blend can match.
    return 0.0 < diff ? diff : 0.0;
}

/// yield::YieldModel::expected_defects: D * S / 100.
inline double expected_defects_step(double defects_per_cm2, double area_mm2) {
    constexpr double mm2_per_cm2 = 100.0;
    return defects_per_cm2 * area_mm2 / mm2_per_cm2;
}

/// The five yield formulas of yield/models.cpp, from expected defects.
inline double yield_step(YieldKind kind, double param, double defects) {
    switch (kind) {
        case YieldKind::poisson:
            return std::exp(-defects);
        case YieldKind::seeds_negative_binomial:
            return std::pow(1.0 + defects / param, -param);
        case YieldKind::murphy: {
            if (defects == 0.0) return 1.0;
            const double factor = (1.0 - std::exp(-defects)) / defects;
            return factor * factor;
        }
        case YieldKind::seeds_exponential:
            return 1.0 / (1.0 + defects);
        case YieldKind::bose_einstein:
            return std::pow(1.0 + defects, -param);
    }
    return 1.0;  // unreachable; kinds are exhaustive
}

/// DieCostModel::evaluate's raw cost plus price_die's bump + sort test.
inline double die_raw_cost_step(double wafer_price_usd, double extra_per_mm2,
                                double die_area_mm2, double dpw) {
    return wafer_price_usd / dpw + extra_per_mm2 * die_area_mm2;
}

/// Eq. 3-5 package fold for one candidate; see ReFoldTerms.
inline double re_fold_step(const ReFoldTerms& t, std::size_t i) {
    // ReModel::evaluate: package_design_area = paf * design_area, then
    // substrate = package_design_area * substrate_cost * layer_factor.
    const double package_area = t.package_area_factor * t.design_area[i];
    const double substrate =
        package_area * t.substrate_cost_per_mm2 * t.substrate_layer_factor;
    const double iraw = t.has_interposer ? t.interposer_raw[i] : 0.0;
    const double raw_package = substrate + iraw + t.bond_and_test;

    double package_defects;
    double kgd_factor;
    if (t.has_interposer) {
        const double y1 = t.interposer_yield[i];
        const double interposer_scrap =
            iraw * (1.0 / (y1 * t.y2n * t.y3) - 1.0);
        const double substrate_scrap = substrate * t.inv_y3_minus_1;
        const double bond_scrap = t.bond_and_test * t.scrap_y2n_y3;
        package_defects = interposer_scrap + substrate_scrap + bond_scrap;
        // Chip-first scraps KGDs on interposer loss too (Eq. 5); with
        // chip-last, y1 drops out and the hoisted factor applies.
        kgd_factor = t.chip_first ? 1.0 / (y1 * t.y2n * t.y3) - 1.0
                                  : t.scrap_y2n_y3;
    } else {
        package_defects = (substrate + t.bond_and_test) * t.scrap_y2n_y3;
        // Without an interposer y1 == 1.0 and 1.0 * y2n is exact, so
        // both flows reduce to the hoisted factor bit for bit.
        kgd_factor = t.scrap_y2n_y3;
    }
    const double wasted_kgd = t.kgd_total[i] * kgd_factor;
    // ReBreakdown::total(): left-to-right term order.
    return t.raw_chips[i] + t.chip_defects[i] + raw_package + package_defects +
           wasted_kgd;
}

}  // namespace chiplet::kernels::detail
