// SSE2 kernel table (2 lanes of double).  Every vector body mirrors the
// scalar element step operation for operation — only IEEE-exact
// instructions (addpd/subpd/mulpd/divpd/sqrtpd and compare/blend by
// mask), no FMA — so results are bit-identical to the scalar table.
// Transcendental yields stay scalar per the bit-identity policy
// (kernels.h).  Remainder lanes run the shared element steps.
#include "kernels/tables.h"

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__) || \
    defined(_M_IX86)
#define CHIPLET_KERNELS_SSE2 1
#else
#define CHIPLET_KERNELS_SSE2 0
#endif

#if CHIPLET_KERNELS_SSE2

#include <emmintrin.h>

#include <numbers>

#include "kernels/kernel_steps.h"

namespace chiplet::kernels {

namespace {

constexpr std::size_t kW = 2;

void dpw_classical_sse2(double usable_radius_mm, double scribe_width_mm,
                        const double* die_area_mm2, double* dpw,
                        std::size_t n) {
    const double r = usable_radius_mm;
    const double c_area = std::numbers::pi * r * r;
    const double c_edge = std::numbers::pi * 2.0 * r;
    const __m128d vc_area = _mm_set1_pd(c_area);
    const __m128d vc_edge = _mm_set1_pd(c_edge);
    const __m128d vscribe = _mm_set1_pd(scribe_width_mm);
    const __m128d vtwo = _mm_set1_pd(2.0);
    const __m128d vzero = _mm_setzero_pd();
    std::size_t i = 0;
    for (; i + kW <= n; i += kW) {
        const __m128d area = _mm_loadu_pd(die_area_mm2 + i);
        const __m128d side = _mm_sqrt_pd(area);
        const __m128d grown = _mm_add_pd(side, vscribe);
        const __m128d footprint = _mm_mul_pd(grown, grown);
        const __m128d area_term = _mm_div_pd(vc_area, footprint);
        const __m128d edge_term =
            _mm_div_pd(vc_edge, _mm_sqrt_pd(_mm_mul_pd(vtwo, footprint)));
        const __m128d diff = _mm_sub_pd(area_term, edge_term);
        // 0.0 < diff ? diff : +0.0 — exactly std::max(0.0, diff).
        const __m128d mask = _mm_cmplt_pd(vzero, diff);
        _mm_storeu_pd(dpw + i, _mm_and_pd(mask, diff));
    }
    for (; i < n; ++i) {
        dpw[i] = detail::dpw_classical_step(c_area, c_edge, scribe_width_mm,
                                            die_area_mm2[i]);
    }
}

void expected_defects_sse2(double defects_per_cm2, const double* die_area_mm2,
                           double* defects, std::size_t n) {
    const __m128d vd = _mm_set1_pd(defects_per_cm2);
    const __m128d vcm = _mm_set1_pd(100.0);
    std::size_t i = 0;
    for (; i + kW <= n; i += kW) {
        const __m128d area = _mm_loadu_pd(die_area_mm2 + i);
        _mm_storeu_pd(defects + i, _mm_div_pd(_mm_mul_pd(vd, area), vcm));
    }
    for (; i < n; ++i) {
        defects[i] = detail::expected_defects_step(defects_per_cm2,
                                                   die_area_mm2[i]);
    }
}

void yield_from_defects_sse2(YieldKind kind, double param,
                             const double* defects, double* yield,
                             std::size_t n) {
    if (kind == YieldKind::seeds_exponential) {
        // The only purely arithmetic yield: 1 / (1 + defects).
        const __m128d vone = _mm_set1_pd(1.0);
        std::size_t i = 0;
        for (; i + kW <= n; i += kW) {
            const __m128d ds = _mm_loadu_pd(defects + i);
            _mm_storeu_pd(yield + i, _mm_div_pd(vone, _mm_add_pd(vone, ds)));
        }
        for (; i < n; ++i) {
            yield[i] = detail::yield_step(kind, param, defects[i]);
        }
        return;
    }
    // exp/pow kinds: scalar libm per lane (bit-identity policy).
    for (std::size_t i = 0; i < n; ++i) {
        yield[i] = detail::yield_step(kind, param, defects[i]);
    }
}

void die_raw_cost_sse2(double wafer_price_usd, double extra_per_mm2,
                       const double* die_area_mm2, const double* dpw,
                       double* raw_usd, std::size_t n) {
    const __m128d vprice = _mm_set1_pd(wafer_price_usd);
    const __m128d vextra = _mm_set1_pd(extra_per_mm2);
    std::size_t i = 0;
    for (; i + kW <= n; i += kW) {
        const __m128d share = _mm_div_pd(vprice, _mm_loadu_pd(dpw + i));
        const __m128d extra =
            _mm_mul_pd(vextra, _mm_loadu_pd(die_area_mm2 + i));
        _mm_storeu_pd(raw_usd + i, _mm_add_pd(share, extra));
    }
    for (; i < n; ++i) {
        raw_usd[i] = detail::die_raw_cost_step(wafer_price_usd, extra_per_mm2,
                                               die_area_mm2[i], dpw[i]);
    }
}

void kgd_split_sse2(const double* raw_usd, const double* yield,
                    double* kgd_usd, double* defect_usd, std::size_t n) {
    std::size_t i = 0;
    for (; i + kW <= n; i += kW) {
        const __m128d raw = _mm_loadu_pd(raw_usd + i);
        const __m128d kgd = _mm_div_pd(raw, _mm_loadu_pd(yield + i));
        _mm_storeu_pd(kgd_usd + i, kgd);
        _mm_storeu_pd(defect_usd + i, _mm_sub_pd(kgd, raw));
    }
    for (; i < n; ++i) {
        const double kgd = raw_usd[i] / yield[i];
        kgd_usd[i] = kgd;
        defect_usd[i] = kgd - raw_usd[i];
    }
}

void scale_add_sse2(double scale, const double* a, const double* b,
                    double* out, std::size_t n) {
    const __m128d vscale = _mm_set1_pd(scale);
    std::size_t i = 0;
    for (; i + kW <= n; i += kW) {
        const __m128d product = _mm_mul_pd(vscale, _mm_loadu_pd(a + i));
        _mm_storeu_pd(out + i, _mm_add_pd(_mm_loadu_pd(b + i), product));
    }
    for (; i < n; ++i) {
        out[i] = b[i] + scale * a[i];
    }
}

void re_fold_sse2(const ReFoldTerms& t, std::size_t n) {
    const __m128d vone = _mm_set1_pd(1.0);
    const __m128d vzero = _mm_setzero_pd();
    const __m128d vpaf = _mm_set1_pd(t.package_area_factor);
    const __m128d vsub = _mm_set1_pd(t.substrate_cost_per_mm2);
    const __m128d vlayer = _mm_set1_pd(t.substrate_layer_factor);
    const __m128d vbond = _mm_set1_pd(t.bond_and_test);
    const __m128d vy2n = _mm_set1_pd(t.y2n);
    const __m128d vy3 = _mm_set1_pd(t.y3);
    const __m128d vscrap = _mm_set1_pd(t.scrap_y2n_y3);
    const __m128d vinv_y3 = _mm_set1_pd(t.inv_y3_minus_1);
    std::size_t i = 0;
    for (; i + kW <= n; i += kW) {
        const __m128d package_area =
            _mm_mul_pd(vpaf, _mm_loadu_pd(t.design_area + i));
        const __m128d substrate =
            _mm_mul_pd(_mm_mul_pd(package_area, vsub), vlayer);
        __m128d iraw = vzero;
        __m128d package_defects;
        __m128d kgd_factor;
        if (t.has_interposer) {
            iraw = _mm_loadu_pd(t.interposer_raw + i);
            const __m128d y1 = _mm_loadu_pd(t.interposer_yield + i);
            const __m128d y123 = _mm_mul_pd(_mm_mul_pd(y1, vy2n), vy3);
            const __m128d factor = _mm_sub_pd(_mm_div_pd(vone, y123), vone);
            const __m128d interposer_scrap = _mm_mul_pd(iraw, factor);
            const __m128d substrate_scrap = _mm_mul_pd(substrate, vinv_y3);
            const __m128d bond_scrap = _mm_mul_pd(vbond, vscrap);
            package_defects = _mm_add_pd(
                _mm_add_pd(interposer_scrap, substrate_scrap), bond_scrap);
            kgd_factor = t.chip_first ? factor : vscrap;
        } else {
            package_defects =
                _mm_mul_pd(_mm_add_pd(substrate, vbond), vscrap);
            kgd_factor = vscrap;
        }
        const __m128d raw_package =
            _mm_add_pd(_mm_add_pd(substrate, iraw), vbond);
        const __m128d wasted =
            _mm_mul_pd(_mm_loadu_pd(t.kgd_total + i), kgd_factor);
        const __m128d total = _mm_add_pd(
            _mm_add_pd(
                _mm_add_pd(_mm_add_pd(_mm_loadu_pd(t.raw_chips + i),
                                      _mm_loadu_pd(t.chip_defects + i)),
                           raw_package),
                package_defects),
            wasted);
        _mm_storeu_pd(t.re_total + i, total);
    }
    for (; i < n; ++i) {
        t.re_total[i] = detail::re_fold_step(t, i);
    }
}

}  // namespace

namespace detail {

const KernelTable* sse2_table() {
    static const KernelTable table{
        Isa::sse2,           dpw_classical_sse2, expected_defects_sse2,
        yield_from_defects_sse2, die_raw_cost_sse2,  kgd_split_sse2,
        scale_add_sse2,      re_fold_sse2,
    };
    return &table;
}

}  // namespace detail

}  // namespace chiplet::kernels

#else  // !CHIPLET_KERNELS_SSE2

namespace chiplet::kernels::detail {
const KernelTable* sse2_table() { return nullptr; }
}  // namespace chiplet::kernels::detail

#endif
