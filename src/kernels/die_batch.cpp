#include "kernels/die_batch.h"

#include <bit>

#include "tech/process_node.h"
#include "wafer/wafer_spec.h"
#include "yield/models.h"

namespace chiplet::kernels {

namespace {

std::uint64_t area_bits(double die_area_mm2) {
    return std::bit_cast<std::uint64_t>(die_area_mm2);
}

}  // namespace

DieBatch::DieBatch(std::string yield_model_name)
    : yield_model_name_(std::move(yield_model_name)) {}

DieBatch::PerNode& DieBatch::node_group(const tech::ProcessNode& node) {
    for (PerNode& group : groups_) {
        if (group.node == &node) return group;
    }
    PerNode& group = groups_.emplace_back();
    group.node = &node;
    ++tech_setups_;
    try {
        // The once-per-(node, batch) setup price_die repeats per call:
        // wafer-spec validation, yield-model construction (which checks
        // the clustering parameter and the model name), defect-density
        // domain check.  Any failure defers this node to the scalar
        // path, which raises the canonical error at the right site.
        const wafer::WaferSpec spec = node.wafer_spec();
        spec.validate();
        const auto model =
            yield::make_yield_model(yield_model_name_, node.cluster_param);
        (void)model->yield(node.defect_density_cm2, 0.0);  // domain check
        group.usable_radius_mm = spec.usable_radius_mm();
        group.scribe_width_mm = spec.scribe_width_mm;
        group.wafer_price_usd = spec.price_usd;
        group.extra_per_mm2 = node.bump_cost_per_mm2 + node.test_cost_per_mm2;
        group.defects_per_cm2 = node.defect_density_cm2;
        group.yield_param = node.cluster_param;
        group.kind = yield_kind_from_name(yield_model_name_);
        group.setup_ok = true;
    } catch (...) {
        group.setup_ok = false;
    }
    return group;
}

const DieBatch::PerNode* DieBatch::find_group(
    const tech::ProcessNode& node) const {
    for (const PerNode& group : groups_) {
        if (group.node == &node) return &group;
    }
    return nullptr;
}

void DieBatch::add(const tech::ProcessNode& node, double die_area_mm2) {
    PerNode& group = node_group(node);
    if (!group.setup_ok) return;
    const std::uint64_t key = area_bits(die_area_mm2);
    if (group.slot_by_area_bits.contains(key)) return;
    group.slot_by_area_bits.emplace(
        key, static_cast<std::uint32_t>(group.area.size()));
    group.area.push_back(die_area_mm2);
}

void DieBatch::evaluate(const KernelTable& table) {
    for (PerNode& group : groups_) {
        if (!group.setup_ok) continue;
        const std::size_t n = group.area.size();
        group.dpw.resize(n);
        group.defects.resize(n);
        group.yield.resize(n);
        group.raw.resize(n);
        group.usable.resize(n);
        table.dpw_classical(group.usable_radius_mm, group.scribe_width_mm,
                            group.area.data(), group.dpw.data(), n);
        table.expected_defects(group.defects_per_cm2, group.area.data(),
                               group.defects.data(), n);
        table.yield_from_defects(group.kind, group.yield_param,
                                 group.defects.data(), group.yield.data(), n);
        table.die_raw_cost(group.wafer_price_usd, group.extra_per_mm2,
                           group.area.data(), group.dpw.data(),
                           group.raw.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            // Non-positive or NaN areas and dies that do not fit are
            // scalar-path territory (it throws); their kernel outputs
            // are never served.
            group.usable[i] =
                group.area[i] > 0.0 && group.dpw[i] > 0.0 ? 1 : 0;
        }
    }
    evaluated_ = true;
}

std::optional<DieBatch::Priced> DieBatch::find(const tech::ProcessNode& node,
                                               double die_area_mm2) const {
    if (evaluated_) {
        if (const PerNode* group = find_group(node);
            group && group->setup_ok) {
            const auto it = group->slot_by_area_bits.find(area_bits(die_area_mm2));
            if (it != group->slot_by_area_bits.end() &&
                group->usable[it->second]) {
                hits_.fetch_add(1, std::memory_order_relaxed);
                return Priced{group->raw[it->second], group->yield[it->second]};
            }
        }
    }
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
}

DieBatch::Stats DieBatch::stats() const {
    Stats out;
    out.tech_setups = tech_setups_;
    for (const PerNode& group : groups_) {
        out.unique_queries += group.area.size();
    }
    out.hits = hits_.load(std::memory_order_relaxed);
    out.fallbacks = fallbacks_.load(std::memory_order_relaxed);
    return out;
}

}  // namespace chiplet::kernels
