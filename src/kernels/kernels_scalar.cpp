// Scalar kernel table: the reference implementation every SIMD level
// must reproduce bit for bit.  Plain loops over the shared element
// steps (kernel_steps.h); no arch-specific flags on this translation
// unit.
#include <numbers>

#include "kernels/kernel_steps.h"
#include "kernels/kernels.h"

namespace chiplet::kernels {

namespace {

void dpw_classical_scalar(double usable_radius_mm, double scribe_width_mm,
                          const double* die_area_mm2, double* dpw,
                          std::size_t n) {
    // Hoisted partial products of wafer::dpw_classical's expression:
    // pi * r * r and pi * 2.0 * r associate left to right.
    const double r = usable_radius_mm;
    const double c_area = std::numbers::pi * r * r;
    const double c_edge = std::numbers::pi * 2.0 * r;
    for (std::size_t i = 0; i < n; ++i) {
        dpw[i] = detail::dpw_classical_step(c_area, c_edge, scribe_width_mm,
                                            die_area_mm2[i]);
    }
}

void expected_defects_scalar(double defects_per_cm2, const double* die_area_mm2,
                             double* defects, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        defects[i] = detail::expected_defects_step(defects_per_cm2,
                                                   die_area_mm2[i]);
    }
}

void yield_from_defects_scalar(YieldKind kind, double param,
                               const double* defects, double* yield,
                               std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        yield[i] = detail::yield_step(kind, param, defects[i]);
    }
}

void die_raw_cost_scalar(double wafer_price_usd, double extra_per_mm2,
                         const double* die_area_mm2, const double* dpw,
                         double* raw_usd, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        raw_usd[i] = detail::die_raw_cost_step(wafer_price_usd, extra_per_mm2,
                                               die_area_mm2[i], dpw[i]);
    }
}

void kgd_split_scalar(const double* raw_usd, const double* yield,
                      double* kgd_usd, double* defect_usd, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const double kgd = raw_usd[i] / yield[i];
        kgd_usd[i] = kgd;
        defect_usd[i] = kgd - raw_usd[i];
    }
}

void scale_add_scalar(double scale, const double* a, const double* b,
                      double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = b[i] + scale * a[i];
    }
}

void re_fold_scalar(const ReFoldTerms& terms, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        terms.re_total[i] = detail::re_fold_step(terms, i);
    }
}

}  // namespace

namespace detail {

const KernelTable& scalar_table() {
    static const KernelTable table{
        Isa::scalar,           dpw_classical_scalar, expected_defects_scalar,
        yield_from_defects_scalar, die_raw_cost_scalar,  kgd_split_scalar,
        scale_add_scalar,      re_fold_scalar,
    };
    return table;
}

}  // namespace detail

}  // namespace chiplet::kernels
