// AVX2 kernel table (4 lanes of double).  Compiled with -mavx2 on this
// translation unit only; everything mirrors the scalar element steps
// with IEEE-exact instructions and explicit non-FMA intrinsics, so the
// results are bit-identical to the scalar table.  Transcendental yields
// stay scalar per the bit-identity policy (kernels.h).
#include "kernels/tables.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <numbers>

#include "kernels/kernel_steps.h"

namespace chiplet::kernels {

namespace {

constexpr std::size_t kW = 4;

void dpw_classical_avx2(double usable_radius_mm, double scribe_width_mm,
                        const double* die_area_mm2, double* dpw,
                        std::size_t n) {
    const double r = usable_radius_mm;
    const double c_area = std::numbers::pi * r * r;
    const double c_edge = std::numbers::pi * 2.0 * r;
    const __m256d vc_area = _mm256_set1_pd(c_area);
    const __m256d vc_edge = _mm256_set1_pd(c_edge);
    const __m256d vscribe = _mm256_set1_pd(scribe_width_mm);
    const __m256d vtwo = _mm256_set1_pd(2.0);
    const __m256d vzero = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + kW <= n; i += kW) {
        const __m256d area = _mm256_loadu_pd(die_area_mm2 + i);
        const __m256d side = _mm256_sqrt_pd(area);
        const __m256d grown = _mm256_add_pd(side, vscribe);
        const __m256d footprint = _mm256_mul_pd(grown, grown);
        const __m256d area_term = _mm256_div_pd(vc_area, footprint);
        const __m256d edge_term = _mm256_div_pd(
            vc_edge, _mm256_sqrt_pd(_mm256_mul_pd(vtwo, footprint)));
        const __m256d diff = _mm256_sub_pd(area_term, edge_term);
        // 0.0 < diff ? diff : +0.0 — exactly std::max(0.0, diff).
        const __m256d mask = _mm256_cmp_pd(vzero, diff, _CMP_LT_OQ);
        _mm256_storeu_pd(dpw + i, _mm256_and_pd(mask, diff));
    }
    for (; i < n; ++i) {
        dpw[i] = detail::dpw_classical_step(c_area, c_edge, scribe_width_mm,
                                            die_area_mm2[i]);
    }
}

void expected_defects_avx2(double defects_per_cm2, const double* die_area_mm2,
                           double* defects, std::size_t n) {
    const __m256d vd = _mm256_set1_pd(defects_per_cm2);
    const __m256d vcm = _mm256_set1_pd(100.0);
    std::size_t i = 0;
    for (; i + kW <= n; i += kW) {
        const __m256d area = _mm256_loadu_pd(die_area_mm2 + i);
        _mm256_storeu_pd(defects + i,
                         _mm256_div_pd(_mm256_mul_pd(vd, area), vcm));
    }
    for (; i < n; ++i) {
        defects[i] = detail::expected_defects_step(defects_per_cm2,
                                                   die_area_mm2[i]);
    }
}

void yield_from_defects_avx2(YieldKind kind, double param,
                             const double* defects, double* yield,
                             std::size_t n) {
    if (kind == YieldKind::seeds_exponential) {
        // The only purely arithmetic yield: 1 / (1 + defects).
        const __m256d vone = _mm256_set1_pd(1.0);
        std::size_t i = 0;
        for (; i + kW <= n; i += kW) {
            const __m256d ds = _mm256_loadu_pd(defects + i);
            _mm256_storeu_pd(yield + i,
                             _mm256_div_pd(vone, _mm256_add_pd(vone, ds)));
        }
        for (; i < n; ++i) {
            yield[i] = detail::yield_step(kind, param, defects[i]);
        }
        return;
    }
    // exp/pow kinds: scalar libm per lane (bit-identity policy).
    for (std::size_t i = 0; i < n; ++i) {
        yield[i] = detail::yield_step(kind, param, defects[i]);
    }
}

void die_raw_cost_avx2(double wafer_price_usd, double extra_per_mm2,
                       const double* die_area_mm2, const double* dpw,
                       double* raw_usd, std::size_t n) {
    const __m256d vprice = _mm256_set1_pd(wafer_price_usd);
    const __m256d vextra = _mm256_set1_pd(extra_per_mm2);
    std::size_t i = 0;
    for (; i + kW <= n; i += kW) {
        const __m256d share = _mm256_div_pd(vprice, _mm256_loadu_pd(dpw + i));
        const __m256d extra =
            _mm256_mul_pd(vextra, _mm256_loadu_pd(die_area_mm2 + i));
        _mm256_storeu_pd(raw_usd + i, _mm256_add_pd(share, extra));
    }
    for (; i < n; ++i) {
        raw_usd[i] = detail::die_raw_cost_step(wafer_price_usd, extra_per_mm2,
                                               die_area_mm2[i], dpw[i]);
    }
}

void kgd_split_avx2(const double* raw_usd, const double* yield,
                    double* kgd_usd, double* defect_usd, std::size_t n) {
    std::size_t i = 0;
    for (; i + kW <= n; i += kW) {
        const __m256d raw = _mm256_loadu_pd(raw_usd + i);
        const __m256d kgd = _mm256_div_pd(raw, _mm256_loadu_pd(yield + i));
        _mm256_storeu_pd(kgd_usd + i, kgd);
        _mm256_storeu_pd(defect_usd + i, _mm256_sub_pd(kgd, raw));
    }
    for (; i < n; ++i) {
        const double kgd = raw_usd[i] / yield[i];
        kgd_usd[i] = kgd;
        defect_usd[i] = kgd - raw_usd[i];
    }
}

void scale_add_avx2(double scale, const double* a, const double* b,
                    double* out, std::size_t n) {
    const __m256d vscale = _mm256_set1_pd(scale);
    std::size_t i = 0;
    for (; i + kW <= n; i += kW) {
        // Explicitly mul then add — never _mm256_fmadd_pd; contraction
        // would change the rounding and break bit-identity.
        const __m256d product = _mm256_mul_pd(vscale, _mm256_loadu_pd(a + i));
        _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(b + i),
                                                product));
    }
    for (; i < n; ++i) {
        out[i] = b[i] + scale * a[i];
    }
}

void re_fold_avx2(const ReFoldTerms& t, std::size_t n) {
    const __m256d vone = _mm256_set1_pd(1.0);
    const __m256d vzero = _mm256_setzero_pd();
    const __m256d vpaf = _mm256_set1_pd(t.package_area_factor);
    const __m256d vsub = _mm256_set1_pd(t.substrate_cost_per_mm2);
    const __m256d vlayer = _mm256_set1_pd(t.substrate_layer_factor);
    const __m256d vbond = _mm256_set1_pd(t.bond_and_test);
    const __m256d vy2n = _mm256_set1_pd(t.y2n);
    const __m256d vy3 = _mm256_set1_pd(t.y3);
    const __m256d vscrap = _mm256_set1_pd(t.scrap_y2n_y3);
    const __m256d vinv_y3 = _mm256_set1_pd(t.inv_y3_minus_1);
    std::size_t i = 0;
    for (; i + kW <= n; i += kW) {
        const __m256d package_area =
            _mm256_mul_pd(vpaf, _mm256_loadu_pd(t.design_area + i));
        const __m256d substrate =
            _mm256_mul_pd(_mm256_mul_pd(package_area, vsub), vlayer);
        __m256d iraw = vzero;
        __m256d package_defects;
        __m256d kgd_factor;
        if (t.has_interposer) {
            iraw = _mm256_loadu_pd(t.interposer_raw + i);
            const __m256d y1 = _mm256_loadu_pd(t.interposer_yield + i);
            const __m256d y123 = _mm256_mul_pd(_mm256_mul_pd(y1, vy2n), vy3);
            const __m256d factor =
                _mm256_sub_pd(_mm256_div_pd(vone, y123), vone);
            const __m256d interposer_scrap = _mm256_mul_pd(iraw, factor);
            const __m256d substrate_scrap = _mm256_mul_pd(substrate, vinv_y3);
            const __m256d bond_scrap = _mm256_mul_pd(vbond, vscrap);
            package_defects = _mm256_add_pd(
                _mm256_add_pd(interposer_scrap, substrate_scrap), bond_scrap);
            kgd_factor = t.chip_first ? factor : vscrap;
        } else {
            package_defects =
                _mm256_mul_pd(_mm256_add_pd(substrate, vbond), vscrap);
            kgd_factor = vscrap;
        }
        const __m256d raw_package =
            _mm256_add_pd(_mm256_add_pd(substrate, iraw), vbond);
        const __m256d wasted =
            _mm256_mul_pd(_mm256_loadu_pd(t.kgd_total + i), kgd_factor);
        const __m256d total = _mm256_add_pd(
            _mm256_add_pd(
                _mm256_add_pd(
                    _mm256_add_pd(_mm256_loadu_pd(t.raw_chips + i),
                                  _mm256_loadu_pd(t.chip_defects + i)),
                    raw_package),
                package_defects),
            wasted);
        _mm256_storeu_pd(t.re_total + i, total);
    }
    for (; i < n; ++i) {
        t.re_total[i] = detail::re_fold_step(t, i);
    }
}

}  // namespace

namespace detail {

const KernelTable* avx2_table() {
    static const KernelTable table{
        Isa::avx2,           dpw_classical_avx2, expected_defects_avx2,
        yield_from_defects_avx2, die_raw_cost_avx2,  kgd_split_avx2,
        scale_add_avx2,      re_fold_avx2,
    };
    return &table;
}

}  // namespace detail

}  // namespace chiplet::kernels

#else  // !__AVX2__

namespace chiplet::kernels::detail {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace chiplet::kernels::detail

#endif
