#include "tech/process_node.h"

#include "util/error.h"

namespace chiplet::tech {

wafer::WaferSpec ProcessNode::wafer_spec() const {
    wafer::WaferSpec spec;
    spec.diameter_mm = wafer_diameter_mm;
    spec.edge_exclusion_mm = edge_exclusion_mm;
    spec.scribe_width_mm = scribe_width_mm;
    spec.price_usd = wafer_price_usd;
    return spec;
}

double ProcessNode::retarget_area(double area_mm2, const ProcessNode& from,
                                  bool scalable) const {
    CHIPLET_EXPECTS(area_mm2 >= 0.0, "module area must be non-negative");
    if (!scalable) return area_mm2;
    CHIPLET_EXPECTS(density_factor > 0.0 && from.density_factor > 0.0,
                    "density factors must be positive for scalable modules");
    return area_mm2 * from.density_factor / density_factor;
}

void ProcessNode::validate() const {
    CHIPLET_EXPECTS(!name.empty(), "process node needs a name");
    CHIPLET_EXPECTS(defect_density_cm2 >= 0.0, "defect density must be >= 0");
    CHIPLET_EXPECTS(cluster_param > 0.0, "cluster parameter must be > 0");
    CHIPLET_EXPECTS(wafer_price_usd >= 0.0, "wafer price must be >= 0");
    CHIPLET_EXPECTS(density_factor > 0.0, "density factor must be > 0");
    CHIPLET_EXPECTS(mask_set_cost_usd >= 0.0, "mask cost must be >= 0");
    CHIPLET_EXPECTS(ip_fixed_cost_usd >= 0.0, "IP cost must be >= 0");
    CHIPLET_EXPECTS(module_nre_per_mm2 >= 0.0, "K_m must be >= 0");
    CHIPLET_EXPECTS(chip_nre_per_mm2 >= 0.0, "K_c must be >= 0");
    CHIPLET_EXPECTS(d2d_nre_usd >= 0.0, "D2D NRE must be >= 0");
    CHIPLET_EXPECTS(bump_cost_per_mm2 >= 0.0, "bump cost must be >= 0");
    CHIPLET_EXPECTS(test_cost_per_mm2 >= 0.0, "test cost must be >= 0");
    wafer_spec().validate();
}

}  // namespace chiplet::tech
