#include "tech/d2d.h"

#include <cmath>

#include "util/error.h"

namespace chiplet::tech {

namespace {
void check_inputs(const PackagingTech& tech, double die_area_mm2,
                  double bandwidth_gbps) {
    CHIPLET_EXPECTS(die_area_mm2 > 0.0, "die area must be positive");
    CHIPLET_EXPECTS(bandwidth_gbps >= 0.0, "bandwidth must be non-negative");
    CHIPLET_EXPECTS(tech.d2d_edge_gbps_per_mm > 0.0,
                    "technology '" + tech.name +
                        "' has no D2D edge density (single-die package?)");
}
}  // namespace

double max_escape_bandwidth_gbps(const PackagingTech& tech, double die_area_mm2) {
    check_inputs(tech, die_area_mm2, 0.0);
    const double perimeter = 4.0 * std::sqrt(die_area_mm2);
    return perimeter * tech.d2d_edge_gbps_per_mm;
}

D2dSizing size_d2d(const PackagingTech& tech, double die_area_mm2,
                   double bandwidth_gbps) {
    check_inputs(tech, die_area_mm2, bandwidth_gbps);
    D2dSizing out;
    out.max_bandwidth_gbps = max_escape_bandwidth_gbps(tech, die_area_mm2);
    out.edge_mm = bandwidth_gbps / tech.d2d_edge_gbps_per_mm;
    out.area_mm2 = out.edge_mm * tech.d2d_phy_depth_mm;
    out.area_fraction = out.area_mm2 / die_area_mm2;
    // Feasible when the beachfront fits the perimeter and the PHY leaves
    // room for actual logic (fraction < 1).
    out.feasible =
        bandwidth_gbps <= out.max_bandwidth_gbps && out.area_fraction < 1.0;
    return out;
}

double d2d_fraction_for_bandwidth(const PackagingTech& tech, double die_area_mm2,
                                  double bandwidth_gbps) {
    const D2dSizing sizing = size_d2d(tech, die_area_mm2, bandwidth_gbps);
    if (!sizing.feasible) {
        throw ParameterError(
            "technology '" + tech.name + "' cannot escape " +
            std::to_string(bandwidth_gbps) + " Gbps from a " +
            std::to_string(die_area_mm2) + " mm^2 die (limit " +
            std::to_string(sizing.max_bandwidth_gbps) + " Gbps)");
    }
    return sizing.area_fraction;
}

}  // namespace chiplet::tech
