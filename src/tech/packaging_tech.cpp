#include "tech/packaging_tech.h"

#include "util/error.h"
#include "util/strings.h"

namespace chiplet::tech {

std::string to_string(IntegrationType type) {
    switch (type) {
        case IntegrationType::soc: return "SoC";
        case IntegrationType::mcm: return "MCM";
        case IntegrationType::info: return "InFO";
        case IntegrationType::interposer: return "2.5D";
        case IntegrationType::stacked_3d: return "3D";
    }
    throw ParameterError("invalid IntegrationType");
}

IntegrationType integration_type_from_string(const std::string& s) {
    const std::string lower = to_lower(s);
    if (lower == "soc") return IntegrationType::soc;
    if (lower == "mcm") return IntegrationType::mcm;
    if (lower == "info") return IntegrationType::info;
    if (lower == "2.5d" || lower == "interposer" || lower == "cowos") {
        return IntegrationType::interposer;
    }
    if (lower == "3d" || lower == "stacked_3d" || lower == "soic") {
        return IntegrationType::stacked_3d;
    }
    throw LookupError("unknown integration type: '" + s +
                      "' (expected one of: SoC, MCM, InFO, "
                      "2.5D/interposer/CoWoS, 3D/stacked_3d/SoIC)");
}

std::string to_string(PackagingFlow flow) {
    return flow == PackagingFlow::chip_first ? "chip_first" : "chip_last";
}

PackagingFlow packaging_flow_from_string(const std::string& s) {
    const std::string lower = to_lower(s);
    if (lower == "chip_first" || lower == "chip-first") return PackagingFlow::chip_first;
    if (lower == "chip_last" || lower == "chip-last") return PackagingFlow::chip_last;
    throw LookupError("unknown packaging flow: '" + s +
                      "' (expected one of: chip_first, chip_last)");
}

void PackagingTech::validate() const {
    CHIPLET_EXPECTS(!name.empty(), "packaging technology needs a name");
    CHIPLET_EXPECTS(substrate_cost_per_mm2 >= 0.0, "substrate cost must be >= 0");
    CHIPLET_EXPECTS(substrate_layer_factor >= 1.0,
                    "substrate layer factor must be >= 1");
    CHIPLET_EXPECTS(package_area_factor >= 1.0, "package area factor must be >= 1");
    CHIPLET_EXPECTS(chip_bond_yield > 0.0 && chip_bond_yield <= 1.0,
                    "chip bond yield must lie in (0, 1]");
    CHIPLET_EXPECTS(substrate_bond_yield > 0.0 && substrate_bond_yield <= 1.0,
                    "substrate bond yield must lie in (0, 1]");
    CHIPLET_EXPECTS(bond_cost_per_chip_usd >= 0.0, "bond cost must be >= 0");
    CHIPLET_EXPECTS(package_test_cost_usd >= 0.0, "package test cost must be >= 0");
    CHIPLET_EXPECTS(package_base_cost_usd >= 0.0, "package base cost must be >= 0");
    CHIPLET_EXPECTS(interposer_area_factor >= 1.0,
                    "interposer area factor must be >= 1");
    CHIPLET_EXPECTS(tsv_cost_per_mm2 >= 0.0, "TSV cost must be >= 0");
    CHIPLET_EXPECTS(d2d_edge_gbps_per_mm >= 0.0, "edge bandwidth must be >= 0");
    CHIPLET_EXPECTS(d2d_phy_depth_mm > 0.0, "PHY depth must be positive");
    if (type == IntegrationType::stacked_3d) {
        CHIPLET_EXPECTS(!has_interposer(), "3D stacking does not use an interposer");
    }
    CHIPLET_EXPECTS(package_nre_per_mm2 >= 0.0, "K_p must be >= 0");
    CHIPLET_EXPECTS(package_fixed_nre_usd >= 0.0, "C_p must be >= 0");
    CHIPLET_EXPECTS(d2d_area_fraction >= 0.0 && d2d_area_fraction < 1.0,
                    "D2D area fraction must lie in [0, 1)");
    if (type == IntegrationType::info || type == IntegrationType::interposer) {
        CHIPLET_EXPECTS(has_interposer(),
                        "InFO/2.5D technologies need an interposer node");
    }
    if (type == IntegrationType::soc) {
        CHIPLET_EXPECTS(!has_interposer(), "SoC packaging cannot have an interposer");
        CHIPLET_EXPECTS(d2d_area_fraction == 0.0, "SoC has no D2D overhead");
    }
}

}  // namespace chiplet::tech
