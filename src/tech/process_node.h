// Per-process-node parameters: silicon manufacturing (defect density,
// wafer price), design NRE factors (paper Eq. 6 K-factors), and the
// transistor-density factor used to retarget module areas between nodes
// for heterogeneous integration.
#pragma once

#include <string>

#include "wafer/wafer_spec.h"

namespace chiplet::tech {

/// A manufacturing process (logic node, or an interposer/RDL process).
/// All monetary values in USD; defect density in defects/cm^2; areas in
/// mm^2.  Instances are plain data — `TechLibrary` owns the catalogue.
struct ProcessNode {
    std::string name;  ///< e.g. "7nm", "rdl", "si_interposer"

    // -- RE (manufacturing) ------------------------------------------------
    double defect_density_cm2 = 0.0;  ///< D in paper Eq. 1
    double cluster_param = 10.0;      ///< c in paper Eq. 1
    double wafer_price_usd = 0.0;     ///< processed 300 mm wafer price
    double wafer_diameter_mm = 300.0;
    double edge_exclusion_mm = 3.0;
    double scribe_width_mm = 0.1;
    double bump_cost_per_mm2 = 0.0;  ///< bumping, per die area
    double test_cost_per_mm2 = 0.0;  ///< wafer sort (KGD screen), per die area

    // -- NRE (design) --------------------------------------------------------
    double density_factor = 1.0;      ///< transistor density relative to 7nm
    double mask_set_cost_usd = 0.0;   ///< full mask-set cost (part of C in Eq. 6)
    double ip_fixed_cost_usd = 0.0;   ///< per-chip IP licensing etc. (part of C)
    double module_nre_per_mm2 = 0.0;  ///< K_m: module design + block verification
    double chip_nre_per_mm2 = 0.0;    ///< K_c: system verification + physical design
    double d2d_nre_usd = 0.0;         ///< one-time D2D interface design at this node

    /// Wafer geometry + price as a WaferSpec for the wafer library.
    [[nodiscard]] wafer::WaferSpec wafer_spec() const;

    /// Fixed per-chip NRE (C in Eq. 6): masks + IP.
    [[nodiscard]] double fixed_chip_nre_usd() const {
        return mask_set_cost_usd + ip_fixed_cost_usd;
    }

    /// Area a module of `area_mm2` designed at `from` occupies at this
    /// node: scaled by the density ratio when `scalable`, unchanged
    /// otherwise (IO/analog blocks do not shrink).
    [[nodiscard]] double retarget_area(double area_mm2, const ProcessNode& from,
                                       bool scalable) const;

    /// Throws ParameterError when any field is out of its physical domain.
    void validate() const;
};

}  // namespace chiplet::tech
