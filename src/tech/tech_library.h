// Registry of process nodes and packaging technologies.  Ships with a
// built-in catalogue calibrated to the paper's data sources; every value
// can be overridden programmatically or via a JSON file (see json_io.h).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "tech/packaging_tech.h"
#include "tech/process_node.h"

namespace chiplet::tech {

/// Owning catalogue of manufacturing/packaging technologies.  Lookup is
/// by name; references returned by `node()` / `packaging()` stay valid
/// until the entry is replaced or the library destroyed.
class TechLibrary {
public:
    TechLibrary() = default;

    /// The built-in catalogue (see builtin.cpp for data provenance):
    /// logic nodes 3/5/7/10/12/14/28 nm, interposer processes "rdl" and
    /// "si_interposer", packaging technologies SoC/MCM/InFO/2.5D.
    [[nodiscard]] static TechLibrary builtin();

    /// Inserts or replaces; validates first.
    void add_node(ProcessNode node);
    void add_packaging(PackagingTech tech);

    /// Throws LookupError when absent.
    [[nodiscard]] const ProcessNode& node(const std::string& name) const;
    [[nodiscard]] const PackagingTech& packaging(const std::string& name) const;

    [[nodiscard]] bool has_node(const std::string& name) const;
    [[nodiscard]] bool has_packaging(const std::string& name) const;

    /// Insertion-ordered names (stable for reports).
    [[nodiscard]] const std::vector<std::string>& node_names() const {
        return node_order_;
    }
    [[nodiscard]] const std::vector<std::string>& packaging_names() const {
        return packaging_order_;
    }

    /// Convenience mutators for calibration studies: replace one scalar
    /// without re-building the node by hand.  Throw LookupError when the
    /// entry is absent.
    void set_defect_density(const std::string& node_name, double defects_per_cm2);
    void set_wafer_price(const std::string& node_name, double price_usd);
    void set_d2d_fraction(const std::string& packaging_name, double fraction);

private:
    std::map<std::string, ProcessNode> nodes_;
    std::map<std::string, PackagingTech> packagings_;
    std::vector<std::string> node_order_;
    std::vector<std::string> packaging_order_;
};

}  // namespace chiplet::tech
