#include "tech/tech_library.h"

#include <algorithm>

#include "util/error.h"

namespace chiplet::tech {

void TechLibrary::add_node(ProcessNode node) {
    node.validate();
    const bool fresh = nodes_.find(node.name) == nodes_.end();
    if (fresh) node_order_.push_back(node.name);
    nodes_[node.name] = std::move(node);
}

void TechLibrary::add_packaging(PackagingTech tech) {
    tech.validate();
    const bool fresh = packagings_.find(tech.name) == packagings_.end();
    if (fresh) packaging_order_.push_back(tech.name);
    packagings_[tech.name] = std::move(tech);
}

const ProcessNode& TechLibrary::node(const std::string& name) const {
    auto it = nodes_.find(name);
    if (it == nodes_.end()) throw LookupError("unknown process node: " + name);
    return it->second;
}

const PackagingTech& TechLibrary::packaging(const std::string& name) const {
    auto it = packagings_.find(name);
    if (it == packagings_.end()) {
        throw LookupError("unknown packaging technology: " + name);
    }
    return it->second;
}

bool TechLibrary::has_node(const std::string& name) const {
    return nodes_.count(name) > 0;
}

bool TechLibrary::has_packaging(const std::string& name) const {
    return packagings_.count(name) > 0;
}

void TechLibrary::set_defect_density(const std::string& node_name,
                                     double defects_per_cm2) {
    CHIPLET_EXPECTS(defects_per_cm2 >= 0.0, "defect density must be >= 0");
    auto it = nodes_.find(node_name);
    if (it == nodes_.end()) throw LookupError("unknown process node: " + node_name);
    it->second.defect_density_cm2 = defects_per_cm2;
}

void TechLibrary::set_wafer_price(const std::string& node_name, double price_usd) {
    CHIPLET_EXPECTS(price_usd >= 0.0, "wafer price must be >= 0");
    auto it = nodes_.find(node_name);
    if (it == nodes_.end()) throw LookupError("unknown process node: " + node_name);
    it->second.wafer_price_usd = price_usd;
}

void TechLibrary::set_d2d_fraction(const std::string& packaging_name,
                                   double fraction) {
    CHIPLET_EXPECTS(fraction >= 0.0 && fraction < 1.0,
                    "D2D fraction must lie in [0, 1)");
    auto it = packagings_.find(packaging_name);
    if (it == packagings_.end()) {
        throw LookupError("unknown packaging technology: " + packaging_name);
    }
    it->second.d2d_area_fraction = fraction;
}

}  // namespace chiplet::tech
