// Packaging / integration technology description: the paper's four
// alternatives (monolithic SoC package, MCM on organic substrate, InFO
// fan-out, 2.5D silicon interposer) are instances of this one struct.
#pragma once

#include <string>

namespace chiplet::tech {

/// The integration scheme families discussed in the paper (Fig. 1),
/// plus vertical (3D) stacking as the natural extension the paper's
/// conclusion points towards.
enum class IntegrationType {
    soc,         ///< single die flipped onto a plain organic substrate
    mcm,         ///< multiple dies on a (thicker) organic substrate
    info,        ///< fan-out RDL interposer (InFO / FOWLP)
    interposer,  ///< 2.5D silicon interposer (CoWoS)
    stacked_3d,  ///< vertical die stack with TSVs on a plain substrate
};

/// Readable name ("SoC", "MCM", "InFO", "2.5D").
[[nodiscard]] std::string to_string(IntegrationType type);

/// Parse from the names above (case-insensitive); throws LookupError.
[[nodiscard]] IntegrationType integration_type_from_string(const std::string& s);

/// Assembly order for multi-die packages (paper Eq. 5).  Chip-last (aka
/// RDL-first) tests the interposer before bonding known-good dies, so a
/// bad interposer never wastes dies; chip-first embeds dies before the
/// interposer/RDL exists, so its defects scrap everything.
enum class PackagingFlow { chip_first, chip_last };

[[nodiscard]] std::string to_string(PackagingFlow flow);
[[nodiscard]] PackagingFlow packaging_flow_from_string(const std::string& s);

/// One packaging technology.  Monetary values in USD, areas in mm^2,
/// yields in (0, 1].
struct PackagingTech {
    std::string name;  ///< e.g. "MCM"
    IntegrationType type = IntegrationType::soc;

    // -- RE: substrate & assembly -------------------------------------------
    double substrate_cost_per_mm2 = 0.008;  ///< organic substrate, per package area
    double substrate_layer_factor = 1.0;    ///< MCM extra routing layers multiplier
    double package_area_factor = 4.0;       ///< package area / total die area
    double chip_bond_yield = 0.99;          ///< y2: per-chip attach
    double substrate_bond_yield = 0.99;     ///< y3: interposer/substrate attach
    double bond_cost_per_chip_usd = 1.0;    ///< per-chip placement/bond cost
    double package_test_cost_usd = 2.0;     ///< final package test, per package
    double package_base_cost_usd = 10.0;    ///< fixed per package: lid, balls, assembly

    // -- RE: interposer (InFO / 2.5D only) -----------------------------------
    std::string interposer_node;          ///< ProcessNode name; empty = none
    double interposer_area_factor = 1.1;  ///< interposer area / total die area

    // -- RE: 3D stacking only ---------------------------------------------------
    /// TSV processing cost per mm^2 of every non-top die in a stack.
    double tsv_cost_per_mm2 = 0.0;

    // -- D2D bandwidth sizing (Fig. 1 physics; see d2d.h) -------------------------
    /// Escape bandwidth per mm of die edge this technology can route
    /// (GB/s per mm of beachfront).
    double d2d_edge_gbps_per_mm = 0.0;
    /// Depth of the D2D PHY region behind the die edge (mm).
    double d2d_phy_depth_mm = 1.0;

    // -- NRE ------------------------------------------------------------------
    double package_nre_per_mm2 = 2'000.0;   ///< K_p in paper Eq. 7
    double package_fixed_nre_usd = 2.0e6;   ///< C_p in paper Eq. 7

    // -- D2D ------------------------------------------------------------------
    /// Default fraction of each chiplet's area spent on D2D interfaces
    /// when integrated with this technology (0 for monolithic SoC).  The
    /// paper's experiments assume 0.10 for all multi-die schemes.
    double d2d_area_fraction = 0.0;

    // -- Fig. 1 descriptors (informational) ------------------------------------
    double max_data_rate_gbps = 0.0;
    double min_line_space_um = 0.0;
    double max_pin_count = 0.0;

    /// True for InFO / 2.5D (has an interposer to manufacture).
    [[nodiscard]] bool has_interposer() const { return !interposer_node.empty(); }

    /// True when the scheme can host more than one die.
    [[nodiscard]] bool multi_die() const { return type != IntegrationType::soc; }

    /// True when dies stack vertically (footprint = largest die, not sum).
    [[nodiscard]] bool stacked() const { return type == IntegrationType::stacked_3d; }

    /// Throws ParameterError when any field is out of domain.
    void validate() const;
};

}  // namespace chiplet::tech
