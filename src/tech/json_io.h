// JSON (de)serialisation of the technology library so users can ship
// their own calibration files instead of the built-in catalogue.
// Schema (all numeric fields optional, defaulting to the struct
// defaults):
//   {
//     "nodes": [ { "name": "7nm", "defect_density_cm2": 0.09, ... } ],
//     "packaging": [ { "name": "MCM", "type": "mcm", ... } ]
//   }
#pragma once

#include <string>

#include "tech/tech_library.h"
#include "util/json.h"

namespace chiplet::tech {

/// Serialises one entity.
[[nodiscard]] JsonValue to_json(const ProcessNode& node);
[[nodiscard]] JsonValue to_json(const PackagingTech& tech);

/// Parses one entity; unknown keys are ignored, missing keys default.
/// Throws ParseError / ParameterError on malformed or out-of-domain data.
[[nodiscard]] ProcessNode process_node_from_json(const JsonValue& v);
[[nodiscard]] PackagingTech packaging_tech_from_json(const JsonValue& v);

/// Whole-library round trip.
[[nodiscard]] JsonValue to_json(const TechLibrary& lib);
[[nodiscard]] TechLibrary tech_library_from_json(const JsonValue& v);

/// File convenience wrappers.
void save_tech_library(const TechLibrary& lib, const std::string& path);
[[nodiscard]] TechLibrary load_tech_library(const std::string& path);

}  // namespace chiplet::tech
