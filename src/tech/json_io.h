// JSON (de)serialisation of the technology library so users can ship
// their own calibration files instead of the built-in catalogue.
// Schema (all numeric fields optional, defaulting to the struct
// defaults):
//   {
//     "nodes": [ { "name": "7nm", "defect_density_cm2": 0.09, ... } ],
//     "packaging": [ { "name": "MCM", "type": "mcm", ... } ]
//   }
#pragma once

#include <string>

#include "tech/tech_library.h"
#include "util/json.h"

namespace chiplet::tech {

/// Serialises one entity.
[[nodiscard]] JsonValue to_json(const ProcessNode& node);
[[nodiscard]] JsonValue to_json(const PackagingTech& tech);

/// Parses one entity; unknown keys are ignored, missing keys default.
/// Throws ParseError / ParameterError on malformed or out-of-domain data.
/// `context` prefixes error messages (typically the file path).
[[nodiscard]] ProcessNode process_node_from_json(const JsonValue& v,
                                                 const std::string& context = "node");
[[nodiscard]] PackagingTech packaging_tech_from_json(
    const JsonValue& v, const std::string& context = "packaging");

/// Applies the keys present in `v` onto an existing entity, leaving
/// absent fields untouched — the merge primitive behind tech overrides
/// in study files.  Does not validate; callers validate after merging.
void apply_json(ProcessNode& node, const JsonValue& v,
                const std::string& context = "node");
void apply_json(PackagingTech& tech, const JsonValue& v,
                const std::string& context = "packaging");

/// Whole-library round trip.
[[nodiscard]] JsonValue to_json(const TechLibrary& lib);
[[nodiscard]] TechLibrary tech_library_from_json(const JsonValue& v,
                                                 const std::string& context = "tech");

/// Merges a partial library document ({"nodes": [...], "packaging":
/// [...]}) onto `lib`: entries matching an existing name start from the
/// existing values, unknown names start from struct defaults.  Each
/// merged entry is re-validated.
void apply_overrides(TechLibrary& lib, const JsonValue& v,
                     const std::string& context = "tech overrides");

/// File convenience wrappers.
void save_tech_library(const TechLibrary& lib, const std::string& path);
[[nodiscard]] TechLibrary load_tech_library(const std::string& path);

}  // namespace chiplet::tech
