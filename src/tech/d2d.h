// Bandwidth-driven D2D sizing.  The paper assumes a flat 10% D2D area
// overhead; this module derives the overhead from a bandwidth
// requirement and the packaging technology's escape density (Fig. 1
// physics), quantifying the paper's final takeaway: "for ultra-high
// performance systems ... the interconnection requirements are too high
// to be supported by the organic substrate".
//
// Model: a chiplet moving B Gbps off-die needs B / edge_density mm of
// die edge ("beachfront"); the PHY occupies that edge length times the
// PHY depth.  A square die of area S offers at most its perimeter
// (4 sqrt(S)) of beachfront.
#pragma once

#include "tech/packaging_tech.h"

namespace chiplet::tech {

/// Result of sizing a chiplet's D2D region for a bandwidth requirement.
struct D2dSizing {
    bool feasible = false;      ///< the technology can route this bandwidth
    double edge_mm = 0.0;       ///< beachfront length consumed
    double area_mm2 = 0.0;      ///< PHY area (edge * depth)
    double area_fraction = 0.0; ///< PHY area / die area
    double max_bandwidth_gbps = 0.0;  ///< ceiling for this die on this tech
};

/// Sizes the D2D region of a square die of `die_area_mm2` that must
/// carry `bandwidth_gbps` of aggregate off-die bandwidth over `tech`.
/// Infeasible when the required beachfront exceeds the die perimeter or
/// the PHY would swallow the whole die; throws ParameterError when the
/// technology has no published edge density (e.g. plain SoC packages).
[[nodiscard]] D2dSizing size_d2d(const PackagingTech& tech, double die_area_mm2,
                                 double bandwidth_gbps);

/// Maximum aggregate off-die bandwidth (Gbps) a square die of the given
/// area can escape on this technology (perimeter-limited).
[[nodiscard]] double max_escape_bandwidth_gbps(const PackagingTech& tech,
                                               double die_area_mm2);

/// The D2D area fraction to plug into a Chip for the given requirement;
/// convenience wrapper that throws ParameterError when infeasible.
[[nodiscard]] double d2d_fraction_for_bandwidth(const PackagingTech& tech,
                                                double die_area_mm2,
                                                double bandwidth_gbps);

}  // namespace chiplet::tech
