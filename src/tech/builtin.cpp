// Built-in technology catalogue.
//
// Data provenance (paper Sec. 4: "Data used in the experiments is from
// commercial databases, public information, and the in-house"):
//   - defect densities & cluster parameters: paper Fig. 2 caption
//     (3nm 0.20/c10, 5nm 0.11/c10, 7nm 0.09/c10, 14nm 0.08/c10,
//      RDL 0.05/c3, silicon interposer 0.06/c6),
//   - 300 mm wafer prices: CSET "AI Chips" report (the paper's ref [3]),
//     5nm $16,988 / 7nm $9,346 / 10nm $5,992 / 14nm $3,984 / 28nm $2,971;
//     3nm, 12nm, RDL and interposer wafels are engineering estimates
//     marked (*),
//   - mask-set costs and per-mm^2 design-cost K-factors: scaled from the
//     widely cited IBS design-cost-per-node estimates,
//   - packaging descriptors (data rate / line space / pin count): paper
//     Fig. 1 (Synopsys D2D interface source),
//   - bonding yields / substrate costs: engineering estimates chosen so
//     the model reproduces the paper's packaging-share claims (see
//     EXPERIMENTS.md calibration notes).
//
// Everything here can be overridden via TechLibrary setters or a JSON
// technology file; this is deliberately the only file to edit when
// recalibrating.
#include "tech/tech_library.h"

namespace chiplet::tech {

namespace {

ProcessNode logic_node(const std::string& name, double defect, double wafer_price,
                       double density, double mask_cost, double km, double kc,
                       double ip_cost, double d2d_nre) {
    ProcessNode n;
    n.name = name;
    n.defect_density_cm2 = defect;
    n.cluster_param = 10.0;
    n.wafer_price_usd = wafer_price;
    n.density_factor = density;
    n.mask_set_cost_usd = mask_cost;
    n.module_nre_per_mm2 = km;
    n.chip_nre_per_mm2 = kc;
    n.ip_fixed_cost_usd = ip_cost;
    n.d2d_nre_usd = d2d_nre;
    n.bump_cost_per_mm2 = 0.02;
    n.test_cost_per_mm2 = 0.02;
    return n;
}

}  // namespace

TechLibrary TechLibrary::builtin() {
    TechLibrary lib;

    // ---- logic nodes -------------------------------------------------------
    // IP$ covers the per-tapeout fixed costs beyond masks (IP licensing,
    // bring-up, qualification), which is why it grows steeply with node.
    //                 name    D     wafer$   dens  mask$   K_m      K_c     IP$    D2D NRE$
    lib.add_node(logic_node("3nm", 0.20, 25'000, 2.56, 45.0e6, 750e3, 450e3, 30e6, 35e6));  // (*) wafer
    lib.add_node(logic_node("5nm", 0.11, 16'988, 1.87, 30.0e6, 500e3, 300e3, 20e6, 25e6));
    lib.add_node(logic_node("7nm", 0.09, 9'346, 1.00, 15.0e6, 280e3, 170e3, 10e6, 15e6));
    lib.add_node(logic_node("10nm", 0.08, 5'992, 0.66, 6.0e6, 180e3, 110e3, 5e6, 8e6));
    lib.add_node(logic_node("12nm", 0.08, 4'300, 0.50, 3.5e6, 120e3, 75e3, 4e6, 6e6));  // (*) wafer
    lib.add_node(logic_node("14nm", 0.08, 3'984, 0.44, 4.0e6, 100e3, 60e3, 4e6, 5e6));
    lib.add_node(logic_node("28nm", 0.07, 2'971, 0.18, 1.5e6, 50e3, 30e3, 2e6, 3e6));

    // ---- interposer processes ----------------------------------------------
    {
        ProcessNode rdl;  // InFO fan-out redistribution layers (paper: D=0.05, c=3)
        rdl.name = "rdl";
        rdl.defect_density_cm2 = 0.05;
        rdl.cluster_param = 3.0;
        rdl.wafer_price_usd = 1'200;  // (*) post-fab RDL wafer
        rdl.density_factor = 0.01;    // not a logic process; never retargeted to
        rdl.mask_set_cost_usd = 0.3e6;
        lib.add_node(rdl);

        ProcessNode si;  // passive silicon interposer (paper: D=0.06, c=6)
        si.name = "si_interposer";
        si.defect_density_cm2 = 0.06;
        si.cluster_param = 6.0;
        si.wafer_price_usd = 2'300;  // (*) mature-node passive wafer with TSVs
        si.density_factor = 0.01;
        si.mask_set_cost_usd = 0.5e6;
        lib.add_node(si);
    }

    // ---- packaging technologies ----------------------------------------------
    {
        PackagingTech soc;  // single die on a plain flip-chip substrate
        soc.name = "SoC";
        soc.type = IntegrationType::soc;
        soc.substrate_cost_per_mm2 = 0.005;
        soc.substrate_layer_factor = 1.0;
        soc.package_area_factor = 4.0;
        soc.chip_bond_yield = 0.995;
        soc.substrate_bond_yield = 1.0;  // no second attach stage
        soc.bond_cost_per_chip_usd = 1.0;
        soc.package_test_cost_usd = 2.0;
        soc.package_base_cost_usd = 10.0;
        soc.package_nre_per_mm2 = 1'000.0;
        soc.package_fixed_nre_usd = 1.5e6;
        soc.d2d_area_fraction = 0.0;
        soc.max_data_rate_gbps = 112.0;  // on-substrate SerDes class
        soc.min_line_space_um = 10.0;
        soc.max_pin_count = 1'000.0;
        lib.add_packaging(soc);

        PackagingTech mcm;  // paper Fig. 1 "organic substrate"
        mcm.name = "MCM";
        mcm.type = IntegrationType::mcm;
        mcm.substrate_cost_per_mm2 = 0.005;
        mcm.substrate_layer_factor = 1.8;  // extra routing layers for D2D nets
        mcm.package_area_factor = 4.0;
        mcm.chip_bond_yield = 0.995;
        mcm.substrate_bond_yield = 1.0;
        mcm.bond_cost_per_chip_usd = 1.0;
        mcm.package_test_cost_usd = 2.0;
        mcm.package_base_cost_usd = 15.0;
        mcm.package_nre_per_mm2 = 2'000.0;
        mcm.package_fixed_nre_usd = 2.0e6;
        mcm.d2d_area_fraction = 0.10;  // paper Sec. 4.1 assumption
        mcm.max_data_rate_gbps = 112.0;
        mcm.min_line_space_um = 10.0;
        mcm.max_pin_count = 1'000.0;
        mcm.d2d_edge_gbps_per_mm = 400.0;  // (*) organic beachfront density
        lib.add_packaging(mcm);

        PackagingTech info;  // paper Fig. 1 "integrated fan-out (InFO)"
        info.name = "InFO";
        info.type = IntegrationType::info;
        info.substrate_cost_per_mm2 = 0.005;
        info.substrate_layer_factor = 1.0;  // RDL carries the D2D routing
        info.package_area_factor = 4.0;
        info.chip_bond_yield = 0.99;
        info.substrate_bond_yield = 0.99;
        info.bond_cost_per_chip_usd = 1.5;
        info.package_test_cost_usd = 2.5;
        info.package_base_cost_usd = 20.0;
        info.interposer_node = "rdl";
        info.interposer_area_factor = 1.10;
        info.package_nre_per_mm2 = 4'000.0;
        info.package_fixed_nre_usd = 3.0e6;
        info.d2d_area_fraction = 0.10;
        info.max_data_rate_gbps = 56.0;
        info.min_line_space_um = 2.0;
        info.max_pin_count = 2'500.0;
        info.d2d_edge_gbps_per_mm = 1'300.0;  // (*) fan-out RDL beachfront
        lib.add_packaging(info);

        PackagingTech d25;  // paper Fig. 1 "silicon interposer" / CoWoS
        d25.name = "2.5D";
        d25.type = IntegrationType::interposer;
        d25.substrate_cost_per_mm2 = 0.005;
        d25.substrate_layer_factor = 1.0;
        d25.package_area_factor = 4.0;
        d25.chip_bond_yield = 0.985;      // microbump attach
        d25.substrate_bond_yield = 0.98;  // interposer-to-substrate attach
        d25.bond_cost_per_chip_usd = 2.0;
        d25.package_test_cost_usd = 3.0;
        d25.package_base_cost_usd = 25.0;
        d25.interposer_node = "si_interposer";
        d25.interposer_area_factor = 1.15;
        d25.package_nre_per_mm2 = 8'000.0;
        d25.package_fixed_nre_usd = 5.0e6;
        d25.d2d_area_fraction = 0.10;
        d25.max_data_rate_gbps = 6.4;  // wide parallel, per-pin
        d25.min_line_space_um = 0.4;
        d25.max_pin_count = 4'000.0;
        d25.d2d_edge_gbps_per_mm = 4'000.0;  // (*) microbump beachfront
        lib.add_packaging(d25);

        PackagingTech active;  // 2.5D with an *active* interposer: logic in
        active = d25;          // the interposer (Stow et al., the paper's
        active.name = "2.5D-active";  // ref [12]); pricier silicon, same flow
        active.interposer_node = "28nm";
        active.package_fixed_nre_usd = 8.0e6;  // interposer now needs design
        active.package_nre_per_mm2 = 12'000.0;
        lib.add_packaging(active);

        PackagingTech d3;  // vertical stack with TSVs (extension; SoIC class)
        d3.name = "3D";
        d3.type = IntegrationType::stacked_3d;
        d3.substrate_cost_per_mm2 = 0.005;
        d3.substrate_layer_factor = 1.0;
        d3.package_area_factor = 4.0;  // applied to the stack footprint
        d3.chip_bond_yield = 0.97;     // per stacked bond interface
        d3.substrate_bond_yield = 0.99;
        d3.bond_cost_per_chip_usd = 3.0;
        d3.package_test_cost_usd = 3.0;
        d3.package_base_cost_usd = 15.0;
        d3.tsv_cost_per_mm2 = 0.04;  // (*) TSV processing per non-top die
        d3.package_nre_per_mm2 = 3'000.0;
        d3.package_fixed_nre_usd = 4.0e6;
        d3.d2d_area_fraction = 0.03;  // TSV links are far denser than PHYs
        d3.max_data_rate_gbps = 4.0;  // per-pin, massively parallel
        d3.min_line_space_um = 0.9;   // hybrid-bond pitch class
        d3.max_pin_count = 10'000.0;
        d3.d2d_edge_gbps_per_mm = 30'000.0;  // (*) vertical, not edge-limited
        lib.add_packaging(d3);
    }

    return lib;
}

}  // namespace chiplet::tech
