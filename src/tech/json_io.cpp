#include "tech/json_io.h"

namespace chiplet::tech {

JsonValue to_json(const ProcessNode& n) {
    JsonValue v = JsonValue::object();
    v.set("name", n.name);
    v.set("defect_density_cm2", n.defect_density_cm2);
    v.set("cluster_param", n.cluster_param);
    v.set("wafer_price_usd", n.wafer_price_usd);
    v.set("wafer_diameter_mm", n.wafer_diameter_mm);
    v.set("edge_exclusion_mm", n.edge_exclusion_mm);
    v.set("scribe_width_mm", n.scribe_width_mm);
    v.set("bump_cost_per_mm2", n.bump_cost_per_mm2);
    v.set("test_cost_per_mm2", n.test_cost_per_mm2);
    v.set("density_factor", n.density_factor);
    v.set("mask_set_cost_usd", n.mask_set_cost_usd);
    v.set("ip_fixed_cost_usd", n.ip_fixed_cost_usd);
    v.set("module_nre_per_mm2", n.module_nre_per_mm2);
    v.set("chip_nre_per_mm2", n.chip_nre_per_mm2);
    v.set("d2d_nre_usd", n.d2d_nre_usd);
    return v;
}

JsonValue to_json(const PackagingTech& t) {
    JsonValue v = JsonValue::object();
    v.set("name", t.name);
    v.set("type", to_string(t.type));
    v.set("substrate_cost_per_mm2", t.substrate_cost_per_mm2);
    v.set("substrate_layer_factor", t.substrate_layer_factor);
    v.set("package_area_factor", t.package_area_factor);
    v.set("chip_bond_yield", t.chip_bond_yield);
    v.set("substrate_bond_yield", t.substrate_bond_yield);
    v.set("bond_cost_per_chip_usd", t.bond_cost_per_chip_usd);
    v.set("package_test_cost_usd", t.package_test_cost_usd);
    v.set("package_base_cost_usd", t.package_base_cost_usd);
    v.set("interposer_node", t.interposer_node);
    v.set("interposer_area_factor", t.interposer_area_factor);
    v.set("tsv_cost_per_mm2", t.tsv_cost_per_mm2);
    v.set("d2d_edge_gbps_per_mm", t.d2d_edge_gbps_per_mm);
    v.set("d2d_phy_depth_mm", t.d2d_phy_depth_mm);
    v.set("package_nre_per_mm2", t.package_nre_per_mm2);
    v.set("package_fixed_nre_usd", t.package_fixed_nre_usd);
    v.set("d2d_area_fraction", t.d2d_area_fraction);
    v.set("max_data_rate_gbps", t.max_data_rate_gbps);
    v.set("min_line_space_um", t.min_line_space_um);
    v.set("max_pin_count", t.max_pin_count);
    return v;
}

void apply_json(ProcessNode& n, const JsonValue& v, const std::string& context) {
    const JsonReader r(v, context);
    r.optional("name", n.name);
    r.optional("defect_density_cm2", n.defect_density_cm2);
    r.optional("cluster_param", n.cluster_param);
    r.optional("wafer_price_usd", n.wafer_price_usd);
    r.optional("wafer_diameter_mm", n.wafer_diameter_mm);
    r.optional("edge_exclusion_mm", n.edge_exclusion_mm);
    r.optional("scribe_width_mm", n.scribe_width_mm);
    r.optional("bump_cost_per_mm2", n.bump_cost_per_mm2);
    r.optional("test_cost_per_mm2", n.test_cost_per_mm2);
    r.optional("density_factor", n.density_factor);
    r.optional("mask_set_cost_usd", n.mask_set_cost_usd);
    r.optional("ip_fixed_cost_usd", n.ip_fixed_cost_usd);
    r.optional("module_nre_per_mm2", n.module_nre_per_mm2);
    r.optional("chip_nre_per_mm2", n.chip_nre_per_mm2);
    r.optional("d2d_nre_usd", n.d2d_nre_usd);
}

void apply_json(PackagingTech& t, const JsonValue& v, const std::string& context) {
    const JsonReader r(v, context);
    r.optional("name", t.name);
    if (r.has("type")) {
        t.type = integration_type_from_string(r.require_string("type"));
    }
    r.optional("substrate_cost_per_mm2", t.substrate_cost_per_mm2);
    r.optional("substrate_layer_factor", t.substrate_layer_factor);
    r.optional("package_area_factor", t.package_area_factor);
    r.optional("chip_bond_yield", t.chip_bond_yield);
    r.optional("substrate_bond_yield", t.substrate_bond_yield);
    r.optional("bond_cost_per_chip_usd", t.bond_cost_per_chip_usd);
    r.optional("package_test_cost_usd", t.package_test_cost_usd);
    r.optional("package_base_cost_usd", t.package_base_cost_usd);
    r.optional("interposer_node", t.interposer_node);
    r.optional("interposer_area_factor", t.interposer_area_factor);
    r.optional("tsv_cost_per_mm2", t.tsv_cost_per_mm2);
    r.optional("d2d_edge_gbps_per_mm", t.d2d_edge_gbps_per_mm);
    r.optional("d2d_phy_depth_mm", t.d2d_phy_depth_mm);
    r.optional("package_nre_per_mm2", t.package_nre_per_mm2);
    r.optional("package_fixed_nre_usd", t.package_fixed_nre_usd);
    r.optional("d2d_area_fraction", t.d2d_area_fraction);
    r.optional("max_data_rate_gbps", t.max_data_rate_gbps);
    r.optional("min_line_space_um", t.min_line_space_um);
    r.optional("max_pin_count", t.max_pin_count);
}

ProcessNode process_node_from_json(const JsonValue& v, const std::string& context) {
    const JsonReader r(v, context);
    ProcessNode n;
    n.name = r.require_string("name");
    apply_json(n, v, context);
    n.validate();
    return n;
}

PackagingTech packaging_tech_from_json(const JsonValue& v,
                                       const std::string& context) {
    const JsonReader r(v, context);
    PackagingTech t;
    t.name = r.require_string("name");
    apply_json(t, v, context);
    t.validate();
    return t;
}

JsonValue to_json(const TechLibrary& lib) {
    JsonValue nodes = JsonValue::array();
    for (const auto& name : lib.node_names()) nodes.push_back(to_json(lib.node(name)));
    JsonValue packaging = JsonValue::array();
    for (const auto& name : lib.packaging_names()) {
        packaging.push_back(to_json(lib.packaging(name)));
    }
    JsonValue v = JsonValue::object();
    v.set("nodes", std::move(nodes));
    v.set("packaging", std::move(packaging));
    return v;
}

TechLibrary tech_library_from_json(const JsonValue& v, const std::string& context) {
    const JsonReader r(v, context);
    TechLibrary lib;
    if (r.has("nodes")) {
        const JsonArray& entries = r.require_array("nodes");
        for (std::size_t i = 0; i < entries.size(); ++i) {
            lib.add_node(
                process_node_from_json(entries[i], r.element_context("nodes", i)));
        }
    }
    if (r.has("packaging")) {
        const JsonArray& entries = r.require_array("packaging");
        for (std::size_t i = 0; i < entries.size(); ++i) {
            lib.add_packaging(packaging_tech_from_json(
                entries[i], r.element_context("packaging", i)));
        }
    }
    return lib;
}

void apply_overrides(TechLibrary& lib, const JsonValue& v,
                     const std::string& context) {
    const JsonReader r(v, context);
    if (r.has("nodes")) {
        const JsonArray& entries = r.require_array("nodes");
        for (std::size_t i = 0; i < entries.size(); ++i) {
            const std::string ectx = r.element_context("nodes", i);
            const std::string name = JsonReader(entries[i], ectx).require_string("name");
            ProcessNode n = lib.has_node(name) ? lib.node(name) : ProcessNode{};
            apply_json(n, entries[i], ectx);
            n.validate();
            lib.add_node(std::move(n));
        }
    }
    if (r.has("packaging")) {
        const JsonArray& entries = r.require_array("packaging");
        for (std::size_t i = 0; i < entries.size(); ++i) {
            const std::string ectx = r.element_context("packaging", i);
            const std::string name = JsonReader(entries[i], ectx).require_string("name");
            PackagingTech t =
                lib.has_packaging(name) ? lib.packaging(name) : PackagingTech{};
            apply_json(t, entries[i], ectx);
            t.validate();
            lib.add_packaging(std::move(t));
        }
    }
}

void save_tech_library(const TechLibrary& lib, const std::string& path) {
    to_json(lib).save_file(path);
}

TechLibrary load_tech_library(const std::string& path) {
    return tech_library_from_json(JsonValue::load_file(path), path);
}

}  // namespace chiplet::tech
