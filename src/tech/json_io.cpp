#include "tech/json_io.h"

namespace chiplet::tech {

JsonValue to_json(const ProcessNode& n) {
    JsonValue v = JsonValue::object();
    v.set("name", n.name);
    v.set("defect_density_cm2", n.defect_density_cm2);
    v.set("cluster_param", n.cluster_param);
    v.set("wafer_price_usd", n.wafer_price_usd);
    v.set("wafer_diameter_mm", n.wafer_diameter_mm);
    v.set("edge_exclusion_mm", n.edge_exclusion_mm);
    v.set("scribe_width_mm", n.scribe_width_mm);
    v.set("bump_cost_per_mm2", n.bump_cost_per_mm2);
    v.set("test_cost_per_mm2", n.test_cost_per_mm2);
    v.set("density_factor", n.density_factor);
    v.set("mask_set_cost_usd", n.mask_set_cost_usd);
    v.set("ip_fixed_cost_usd", n.ip_fixed_cost_usd);
    v.set("module_nre_per_mm2", n.module_nre_per_mm2);
    v.set("chip_nre_per_mm2", n.chip_nre_per_mm2);
    v.set("d2d_nre_usd", n.d2d_nre_usd);
    return v;
}

JsonValue to_json(const PackagingTech& t) {
    JsonValue v = JsonValue::object();
    v.set("name", t.name);
    v.set("type", to_string(t.type));
    v.set("substrate_cost_per_mm2", t.substrate_cost_per_mm2);
    v.set("substrate_layer_factor", t.substrate_layer_factor);
    v.set("package_area_factor", t.package_area_factor);
    v.set("chip_bond_yield", t.chip_bond_yield);
    v.set("substrate_bond_yield", t.substrate_bond_yield);
    v.set("bond_cost_per_chip_usd", t.bond_cost_per_chip_usd);
    v.set("package_test_cost_usd", t.package_test_cost_usd);
    v.set("package_base_cost_usd", t.package_base_cost_usd);
    v.set("interposer_node", t.interposer_node);
    v.set("interposer_area_factor", t.interposer_area_factor);
    v.set("tsv_cost_per_mm2", t.tsv_cost_per_mm2);
    v.set("d2d_edge_gbps_per_mm", t.d2d_edge_gbps_per_mm);
    v.set("d2d_phy_depth_mm", t.d2d_phy_depth_mm);
    v.set("package_nre_per_mm2", t.package_nre_per_mm2);
    v.set("package_fixed_nre_usd", t.package_fixed_nre_usd);
    v.set("d2d_area_fraction", t.d2d_area_fraction);
    v.set("max_data_rate_gbps", t.max_data_rate_gbps);
    v.set("min_line_space_um", t.min_line_space_um);
    v.set("max_pin_count", t.max_pin_count);
    return v;
}

ProcessNode process_node_from_json(const JsonValue& v) {
    ProcessNode n;
    n.name = v.at("name").as_string();
    n.defect_density_cm2 = v.get_or("defect_density_cm2", n.defect_density_cm2);
    n.cluster_param = v.get_or("cluster_param", n.cluster_param);
    n.wafer_price_usd = v.get_or("wafer_price_usd", n.wafer_price_usd);
    n.wafer_diameter_mm = v.get_or("wafer_diameter_mm", n.wafer_diameter_mm);
    n.edge_exclusion_mm = v.get_or("edge_exclusion_mm", n.edge_exclusion_mm);
    n.scribe_width_mm = v.get_or("scribe_width_mm", n.scribe_width_mm);
    n.bump_cost_per_mm2 = v.get_or("bump_cost_per_mm2", n.bump_cost_per_mm2);
    n.test_cost_per_mm2 = v.get_or("test_cost_per_mm2", n.test_cost_per_mm2);
    n.density_factor = v.get_or("density_factor", n.density_factor);
    n.mask_set_cost_usd = v.get_or("mask_set_cost_usd", n.mask_set_cost_usd);
    n.ip_fixed_cost_usd = v.get_or("ip_fixed_cost_usd", n.ip_fixed_cost_usd);
    n.module_nre_per_mm2 = v.get_or("module_nre_per_mm2", n.module_nre_per_mm2);
    n.chip_nre_per_mm2 = v.get_or("chip_nre_per_mm2", n.chip_nre_per_mm2);
    n.d2d_nre_usd = v.get_or("d2d_nre_usd", n.d2d_nre_usd);
    n.validate();
    return n;
}

PackagingTech packaging_tech_from_json(const JsonValue& v) {
    PackagingTech t;
    t.name = v.at("name").as_string();
    t.type = integration_type_from_string(v.get_or("type", std::string("soc")));
    t.substrate_cost_per_mm2 =
        v.get_or("substrate_cost_per_mm2", t.substrate_cost_per_mm2);
    t.substrate_layer_factor =
        v.get_or("substrate_layer_factor", t.substrate_layer_factor);
    t.package_area_factor = v.get_or("package_area_factor", t.package_area_factor);
    t.chip_bond_yield = v.get_or("chip_bond_yield", t.chip_bond_yield);
    t.substrate_bond_yield = v.get_or("substrate_bond_yield", t.substrate_bond_yield);
    t.bond_cost_per_chip_usd =
        v.get_or("bond_cost_per_chip_usd", t.bond_cost_per_chip_usd);
    t.package_test_cost_usd =
        v.get_or("package_test_cost_usd", t.package_test_cost_usd);
    t.package_base_cost_usd =
        v.get_or("package_base_cost_usd", t.package_base_cost_usd);
    t.interposer_node = v.get_or("interposer_node", t.interposer_node);
    t.interposer_area_factor =
        v.get_or("interposer_area_factor", t.interposer_area_factor);
    t.tsv_cost_per_mm2 = v.get_or("tsv_cost_per_mm2", t.tsv_cost_per_mm2);
    t.d2d_edge_gbps_per_mm =
        v.get_or("d2d_edge_gbps_per_mm", t.d2d_edge_gbps_per_mm);
    t.d2d_phy_depth_mm = v.get_or("d2d_phy_depth_mm", t.d2d_phy_depth_mm);
    t.package_nre_per_mm2 = v.get_or("package_nre_per_mm2", t.package_nre_per_mm2);
    t.package_fixed_nre_usd =
        v.get_or("package_fixed_nre_usd", t.package_fixed_nre_usd);
    t.d2d_area_fraction = v.get_or("d2d_area_fraction", t.d2d_area_fraction);
    t.max_data_rate_gbps = v.get_or("max_data_rate_gbps", t.max_data_rate_gbps);
    t.min_line_space_um = v.get_or("min_line_space_um", t.min_line_space_um);
    t.max_pin_count = v.get_or("max_pin_count", t.max_pin_count);
    t.validate();
    return t;
}

JsonValue to_json(const TechLibrary& lib) {
    JsonValue nodes = JsonValue::array();
    for (const auto& name : lib.node_names()) nodes.push_back(to_json(lib.node(name)));
    JsonValue packaging = JsonValue::array();
    for (const auto& name : lib.packaging_names()) {
        packaging.push_back(to_json(lib.packaging(name)));
    }
    JsonValue v = JsonValue::object();
    v.set("nodes", std::move(nodes));
    v.set("packaging", std::move(packaging));
    return v;
}

TechLibrary tech_library_from_json(const JsonValue& v) {
    TechLibrary lib;
    if (v.contains("nodes")) {
        for (const auto& entry : v.at("nodes").as_array()) {
            lib.add_node(process_node_from_json(entry));
        }
    }
    if (v.contains("packaging")) {
        for (const auto& entry : v.at("packaging").as_array()) {
            lib.add_packaging(packaging_tech_from_json(entry));
        }
    }
    return lib;
}

void save_tech_library(const TechLibrary& lib, const std::string& path) {
    to_json(lib).save_file(path);
}

TechLibrary load_tech_library(const std::string& path) {
    return tech_library_from_json(JsonValue::load_file(path));
}

}  // namespace chiplet::tech
