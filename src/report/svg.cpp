#include "report/svg.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/strings.h"

namespace chiplet::report {

namespace {

// Colour-blind-safe palette (Okabe-Ito), cycled by series index.
constexpr const char* kPalette[] = {"#0072B2", "#E69F00", "#009E73", "#D55E00",
                                    "#CC79A7", "#56B4E9", "#F0E442", "#000000"};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

const char* color(std::size_t index) { return kPalette[index % kPaletteSize]; }

std::string num(double v) {
    std::string s = format_fixed(v, 2);
    // Trim trailing zeros for compact SVG.
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s.empty() ? "0" : s;
}

}  // namespace

std::string xml_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            default: out.push_back(c);
        }
    }
    return out;
}

SvgLineChart::SvgLineChart(unsigned width_px, unsigned height_px)
    : width_(width_px), height_(height_px) {
    CHIPLET_EXPECTS(width_px >= 200 && height_px >= 120, "SVG chart too small");
}

void SvgLineChart::add_series(const std::string& name,
                              std::vector<std::pair<double, double>> points) {
    CHIPLET_EXPECTS(!points.empty(), "series must have points");
    std::sort(points.begin(), points.end());
    series_.push_back(Series{name, std::move(points)});
}

void SvgLineChart::set_axis_labels(std::string x_label, std::string y_label) {
    x_label_ = std::move(x_label);
    y_label_ = std::move(y_label);
}

void SvgLineChart::set_y_range(double lo, double hi) {
    CHIPLET_EXPECTS(lo < hi, "y range must be ordered");
    y_forced_ = true;
    y_lo_ = lo;
    y_hi_ = hi;
}

std::string SvgLineChart::render() const {
    CHIPLET_EXPECTS(!series_.empty(), "line chart has no series");

    double x_lo = series_.front().points.front().first;
    double x_hi = x_lo;
    double y_lo = series_.front().points.front().second;
    double y_hi = y_lo;
    for (const Series& s : series_) {
        for (const auto& [x, y] : s.points) {
            x_lo = std::min(x_lo, x);
            x_hi = std::max(x_hi, x);
            y_lo = std::min(y_lo, y);
            y_hi = std::max(y_hi, y);
        }
    }
    if (!y_forced_) {
        const double pad = (y_hi - y_lo) * 0.05;
        y_lo -= pad;
        y_hi += pad;
    } else {
        y_lo = y_lo_;
        y_hi = y_hi_;
    }
    if (x_hi == x_lo) x_hi = x_lo + 1.0;
    if (y_hi == y_lo) y_hi = y_lo + 1.0;

    const double left = 64.0;
    const double right = 150.0;  // legend gutter
    const double top = 16.0;
    const double bottom = 48.0;
    const double plot_w = width_ - left - right;
    const double plot_h = height_ - top - bottom;

    const auto px = [&](double x) { return left + (x - x_lo) / (x_hi - x_lo) * plot_w; };
    const auto py = [&](double y) {
        return top + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h;
    };

    std::string svg = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                      std::to_string(width_) + "\" height=\"" +
                      std::to_string(height_) +
                      "\" font-family=\"sans-serif\" font-size=\"11\">\n";

    // Frame and horizontal gridlines with y labels.
    svg += "<rect x=\"" + num(left) + "\" y=\"" + num(top) + "\" width=\"" +
           num(plot_w) + "\" height=\"" + num(plot_h) +
           "\" fill=\"none\" stroke=\"#888\"/>\n";
    constexpr int kTicks = 5;
    for (int i = 0; i <= kTicks; ++i) {
        const double y = y_lo + (y_hi - y_lo) * i / kTicks;
        const double yy = py(y);
        svg += "<line x1=\"" + num(left) + "\" y1=\"" + num(yy) + "\" x2=\"" +
               num(left + plot_w) + "\" y2=\"" + num(yy) +
               "\" stroke=\"#ddd\"/>\n";
        svg += "<text x=\"" + num(left - 6) + "\" y=\"" + num(yy + 4) +
               "\" text-anchor=\"end\">" + num(y) + "</text>\n";
    }
    for (int i = 0; i <= kTicks; ++i) {
        const double x = x_lo + (x_hi - x_lo) * i / kTicks;
        svg += "<text x=\"" + num(px(x)) + "\" y=\"" +
               num(top + plot_h + 16) + "\" text-anchor=\"middle\">" + num(x) +
               "</text>\n";
    }
    if (!x_label_.empty()) {
        svg += "<text x=\"" + num(left + plot_w / 2) + "\" y=\"" +
               num(height_ - 8.0) + "\" text-anchor=\"middle\">" +
               xml_escape(x_label_) + "</text>\n";
    }
    if (!y_label_.empty()) {
        svg += "<text x=\"14\" y=\"" + num(top + plot_h / 2) +
               "\" text-anchor=\"middle\" transform=\"rotate(-90 14 " +
               num(top + plot_h / 2) + ")\">" + xml_escape(y_label_) +
               "</text>\n";
    }

    // Series polylines + legend.
    for (std::size_t si = 0; si < series_.size(); ++si) {
        std::string points;
        for (const auto& [x, y] : series_[si].points) {
            points += num(px(x)) + "," + num(py(std::clamp(y, y_lo, y_hi))) + " ";
        }
        svg += "<polyline fill=\"none\" stroke=\"" + std::string(color(si)) +
               "\" stroke-width=\"1.8\" points=\"" + points + "\"/>\n";
        const double ly = top + 14.0 * static_cast<double>(si);
        svg += "<line x1=\"" + num(left + plot_w + 10) + "\" y1=\"" + num(ly + 4) +
               "\" x2=\"" + num(left + plot_w + 28) + "\" y2=\"" + num(ly + 4) +
               "\" stroke=\"" + std::string(color(si)) +
               "\" stroke-width=\"2\"/>\n";
        svg += "<text x=\"" + num(left + plot_w + 32) + "\" y=\"" + num(ly + 8) +
               "\">" + xml_escape(series_[si].name) + "</text>\n";
    }
    svg += "</svg>\n";
    return svg;
}

SvgStackedBarChart::SvgStackedBarChart(unsigned width_px) : width_(width_px) {
    CHIPLET_EXPECTS(width_px >= 240, "SVG bar chart too narrow");
}

void SvgStackedBarChart::set_segments(std::vector<std::string> labels) {
    CHIPLET_EXPECTS(bars_.empty(), "declare segments before adding bars");
    segment_labels_ = std::move(labels);
}

void SvgStackedBarChart::add_bar(const std::string& label,
                                 const std::vector<double>& values) {
    CHIPLET_EXPECTS(!segment_labels_.empty(), "declare segments first");
    CHIPLET_EXPECTS(values.size() == segment_labels_.size(),
                    "bar segment count does not match declaration");
    for (double v : values) {
        CHIPLET_EXPECTS(v >= 0.0, "bar segment values must be non-negative");
    }
    bars_.push_back(Bar{label, values});
}

std::string SvgStackedBarChart::render() const {
    CHIPLET_EXPECTS(!bars_.empty(), "bar chart has no bars");
    double max_total = 0.0;
    for (const Bar& bar : bars_) {
        double total = 0.0;
        for (double v : bar.values) total += v;
        max_total = std::max(max_total, total);
    }
    CHIPLET_EXPECTS(max_total > 0.0, "all bars are zero");

    const double label_w = 130.0;
    const double value_w = 56.0;
    const double bar_h = 18.0;
    const double gap = 6.0;
    const double legend_h = 22.0;
    const double plot_w = width_ - label_w - value_w;
    const double height =
        legend_h + static_cast<double>(bars_.size()) * (bar_h + gap) + 8.0;

    std::string svg = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                      std::to_string(width_) + "\" height=\"" +
                      num(height) + "\" font-family=\"sans-serif\" font-size=\"11\">\n";

    // Legend.
    double lx = label_w;
    for (std::size_t s = 0; s < segment_labels_.size(); ++s) {
        svg += "<rect x=\"" + num(lx) + "\" y=\"4\" width=\"10\" height=\"10\" fill=\"" +
               std::string(color(s)) + "\"/>\n";
        svg += "<text x=\"" + num(lx + 14) + "\" y=\"13\">" +
               xml_escape(segment_labels_[s]) + "</text>\n";
        lx += 18.0 + 7.0 * static_cast<double>(segment_labels_[s].size());
    }

    // Bars.
    for (std::size_t b = 0; b < bars_.size(); ++b) {
        const double y = legend_h + static_cast<double>(b) * (bar_h + gap);
        svg += "<text x=\"" + num(label_w - 6) + "\" y=\"" + num(y + bar_h - 5) +
               "\" text-anchor=\"end\">" + xml_escape(bars_[b].label) +
               "</text>\n";
        double x = label_w;
        double total = 0.0;
        for (std::size_t s = 0; s < bars_[b].values.size(); ++s) {
            const double w = bars_[b].values[s] / max_total * plot_w;
            svg += "<rect x=\"" + num(x) + "\" y=\"" + num(y) + "\" width=\"" +
                   num(w) + "\" height=\"" + num(bar_h) + "\" fill=\"" +
                   std::string(color(s)) + "\"/>\n";
            x += w;
            total += bars_[b].values[s];
        }
        svg += "<text x=\"" + num(x + 6) + "\" y=\"" + num(y + bar_h - 5) + "\">" +
               num(total) + "</text>\n";
    }
    svg += "</svg>\n";
    return svg;
}

}  // namespace chiplet::report
