// Markdown emitters for experiment reports (EXPERIMENTS.md tables).
#pragma once

#include <string>
#include <vector>

namespace chiplet::report {

/// GitHub-flavoured markdown table.  Throws ParameterError when a row's
/// width differs from the header's.
[[nodiscard]] std::string markdown_table(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows);

/// Markdown section heading of the given level (1-6).
[[nodiscard]] std::string markdown_heading(const std::string& text, int level = 2);

}  // namespace chiplet::report
