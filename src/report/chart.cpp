#include "report/chart.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/strings.h"

namespace chiplet::report {

namespace {
// Fill characters cycled by segment / series index.
constexpr const char kSegmentFill[] = {'#', '=', ':', '.', '%', '+', '@', '*'};
constexpr std::size_t kNumFills = sizeof(kSegmentFill);

char fill_char(std::size_t index) { return kSegmentFill[index % kNumFills]; }

char series_char(std::size_t index) {
    return static_cast<char>('A' + static_cast<int>(index % 26));
}
}  // namespace

StackedBarChart::StackedBarChart(unsigned width) : width_(width) {
    CHIPLET_EXPECTS(width >= 10, "bar chart width must be at least 10");
}

void StackedBarChart::set_segments(std::vector<std::string> labels) {
    CHIPLET_EXPECTS(bars_.empty(), "declare segments before adding bars");
    segment_labels_ = std::move(labels);
}

void StackedBarChart::add_bar(const std::string& label,
                              const std::vector<double>& values) {
    CHIPLET_EXPECTS(!segment_labels_.empty(), "declare segments first");
    CHIPLET_EXPECTS(values.size() == segment_labels_.size(),
                    "bar segment count does not match declaration");
    for (double v : values) {
        CHIPLET_EXPECTS(v >= 0.0, "bar segment values must be non-negative");
    }
    bars_.push_back(Bar{label, values});
}

void StackedBarChart::set_max_value(double value) {
    CHIPLET_EXPECTS(value > 0.0, "max value must be positive");
    max_value_ = value;
}

std::string StackedBarChart::render() const {
    CHIPLET_EXPECTS(!bars_.empty(), "bar chart has no bars");
    double scale_max = max_value_;
    if (scale_max <= 0.0) {
        for (const Bar& bar : bars_) {
            double total = 0.0;
            for (double v : bar.values) total += v;
            scale_max = std::max(scale_max, total);
        }
    }
    CHIPLET_EXPECTS(scale_max > 0.0, "all bars are zero");

    std::size_t label_width = 0;
    for (const Bar& bar : bars_) label_width = std::max(label_width, bar.label.size());

    std::string out;
    for (const Bar& bar : bars_) {
        double total = 0.0;
        std::string body;
        for (std::size_t s = 0; s < bar.values.size(); ++s) {
            total += bar.values[s];
            // Cumulative rounding keeps the bar length consistent with the
            // running total instead of accumulating per-segment error.
            const auto target = static_cast<std::size_t>(
                std::round(total / scale_max * width_));
            while (body.size() < target) body.push_back(fill_char(s));
        }
        out += pad_right(bar.label, label_width) + " |" +
               pad_right(body, width_) + "| " + format_fixed(total, 3) + "\n";
    }
    out += "\n" + pad_right("legend:", label_width);
    for (std::size_t s = 0; s < segment_labels_.size(); ++s) {
        out += "  ";
        out.push_back(fill_char(s));
        out += " " + segment_labels_[s];
    }
    out += "\n";
    return out;
}

LineChart::LineChart(unsigned width, unsigned height)
    : width_(width), height_(height) {
    CHIPLET_EXPECTS(width >= 16 && height >= 4, "line chart too small");
}

void LineChart::add_series(const std::string& name,
                           std::vector<std::pair<double, double>> points) {
    CHIPLET_EXPECTS(!points.empty(), "series must have points");
    series_.push_back(Series{name, std::move(points)});
}

void LineChart::set_y_range(double lo, double hi) {
    CHIPLET_EXPECTS(lo < hi, "y range must be ordered");
    y_forced_ = true;
    y_lo_ = lo;
    y_hi_ = hi;
}

std::string LineChart::render() const {
    CHIPLET_EXPECTS(!series_.empty(), "line chart has no series");

    double x_lo = series_.front().points.front().first;
    double x_hi = x_lo;
    double y_lo = series_.front().points.front().second;
    double y_hi = y_lo;
    for (const Series& s : series_) {
        for (const auto& [x, y] : s.points) {
            x_lo = std::min(x_lo, x);
            x_hi = std::max(x_hi, x);
            y_lo = std::min(y_lo, y);
            y_hi = std::max(y_hi, y);
        }
    }
    if (y_forced_) {
        y_lo = y_lo_;
        y_hi = y_hi_;
    }
    if (x_hi == x_lo) x_hi = x_lo + 1.0;
    if (y_hi == y_lo) y_hi = y_lo + 1.0;

    std::vector<std::string> grid(height_, std::string(width_, ' '));
    for (std::size_t si = 0; si < series_.size(); ++si) {
        for (const auto& [x, y] : series_[si].points) {
            if (y < y_lo || y > y_hi) continue;
            const auto col = static_cast<std::size_t>(
                std::round((x - x_lo) / (x_hi - x_lo) * (width_ - 1)));
            const auto row_from_bottom = static_cast<std::size_t>(
                std::round((y - y_lo) / (y_hi - y_lo) * (height_ - 1)));
            const std::size_t row = height_ - 1 - row_from_bottom;
            grid[row][col] = series_char(si);
        }
    }

    const std::size_t axis_width = 9;
    std::string out;
    for (std::size_t r = 0; r < height_; ++r) {
        std::string label(axis_width, ' ');
        if (r == 0) label = pad_left(format_fixed(y_hi, 2), axis_width);
        if (r == height_ - 1) label = pad_left(format_fixed(y_lo, 2), axis_width);
        if (height_ > 2 && r == height_ / 2) {
            label = pad_left(format_fixed((y_lo + y_hi) / 2.0, 2), axis_width);
        }
        out += label + " |" + grid[r] + "\n";
    }
    out += std::string(axis_width, ' ') + " +" + repeat('-', width_) + "\n";
    const std::string x_left = format_fixed(x_lo, 0);
    const std::string x_right = format_fixed(x_hi, 0);
    std::string x_axis(axis_width + 2, ' ');
    x_axis += x_left;
    const std::size_t pad_len =
        width_ > x_left.size() + x_right.size()
            ? width_ - x_left.size() - x_right.size()
            : 1;
    x_axis += std::string(pad_len, ' ') + x_right;
    out += x_axis + "\n\nlegend:";
    for (std::size_t si = 0; si < series_.size(); ++si) {
        out += "  ";
        out.push_back(series_char(si));
        out += " " + series_[si].name;
    }
    out += "\n";
    return out;
}

}  // namespace chiplet::report
