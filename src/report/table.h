// Plain-text table renderer used by every bench and example to print
// paper-style result tables.
#pragma once

#include <string>
#include <vector>

namespace chiplet::report {

/// Column alignment.
enum class Align { left, right };

/// A bordered, column-aligned text table:
///
///   +---------+-------+
///   | scheme  |  cost |
///   +---------+-------+
///   | SoC     |  1.00 |
///   +---------+-------+
class TextTable {
public:
    /// Builds a table generically from a columns + rows view (the shape
    /// every StudyResult exposes).  Columns whose cells all parse as
    /// numbers are right-aligned.
    [[nodiscard]] static TextTable from_columns(
        const std::vector<std::string>& columns,
        const std::vector<std::vector<std::string>>& rows);

    /// Declares a column; all columns must be declared before rows.
    void add_column(std::string header, Align align = Align::left);

    /// Appends a data row; must match the declared column count.
    void add_row(std::vector<std::string> fields);

    /// Appends a horizontal rule between the surrounding rows.
    void add_rule();

    [[nodiscard]] std::size_t row_count() const;

    /// Renders with ASCII borders and a blank line at the end.
    [[nodiscard]] std::string render() const;

private:
    struct Row {
        bool is_rule = false;
        std::vector<std::string> fields;
    };

    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    std::vector<Row> rows_;
};

}  // namespace chiplet::report
