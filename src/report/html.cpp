#include "report/html.h"

#include <fstream>

#include "report/svg.h"
#include "util/error.h"

namespace chiplet::report {

HtmlReport::HtmlReport(std::string title) : title_(std::move(title)) {}

void HtmlReport::add_heading(const std::string& text, int level) {
    CHIPLET_EXPECTS(level >= 1 && level <= 6, "heading level must be 1-6");
    const std::string tag = "h" + std::to_string(level);
    body_ += "<" + tag + ">" + xml_escape(text) + "</" + tag + ">\n";
}

void HtmlReport::add_paragraph(const std::string& text) {
    body_ += "<p>" + xml_escape(text) + "</p>\n";
}

void HtmlReport::add_table(const std::vector<std::string>& headers,
                           const std::vector<std::vector<std::string>>& rows) {
    CHIPLET_EXPECTS(!headers.empty(), "table needs headers");
    body_ += "<table>\n<tr>";
    for (const std::string& h : headers) {
        body_ += "<th>" + xml_escape(h) + "</th>";
    }
    body_ += "</tr>\n";
    for (const auto& row : rows) {
        CHIPLET_EXPECTS(row.size() == headers.size(),
                        "table row width does not match header");
        body_ += "<tr>";
        for (const std::string& cell : row) {
            body_ += "<td>" + xml_escape(cell) + "</td>";
        }
        body_ += "</tr>\n";
    }
    body_ += "</table>\n";
}

void HtmlReport::add_svg(const std::string& svg) {
    body_ += "<div class=\"chart\">" + svg + "</div>\n";
}

std::string HtmlReport::render() const {
    return "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>" +
           xml_escape(title_) +
           "</title>\n<style>\n"
           "body{font-family:sans-serif;max-width:960px;margin:2em auto;"
           "padding:0 1em;color:#222}\n"
           "table{border-collapse:collapse;margin:1em 0}\n"
           "th,td{border:1px solid #bbb;padding:4px 10px;text-align:right}\n"
           "th{background:#eee}\n"
           "td:first-child,th:first-child{text-align:left}\n"
           ".chart{margin:1em 0}\n"
           "</style></head>\n<body>\n<h1>" +
           xml_escape(title_) + "</h1>\n" + body_ + "</body></html>\n";
}

void HtmlReport::save(const std::string& path) const {
    std::ofstream file(path);
    if (!file) throw Error("cannot open HTML output file: " + path);
    file << render();
    if (!file) throw Error("write failure on HTML output file: " + path);
}

}  // namespace chiplet::report
