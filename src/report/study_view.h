// Generic renderers for StudyResult: because every study flattens into
// the same columns + rows view, one function per output format covers
// all ten study kinds — text tables, markdown sections and HTML
// report sections.  Cost ledgers (attached by explain-enabled studies)
// render through the same columns + rows shape, so every format gets
// the per-term breakdown for free.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/cost_ledger.h"
#include "explore/study.h"
#include "report/html.h"
#include "report/table.h"

namespace chiplet::report {

/// Bordered text table of the study's tabular view.
[[nodiscard]] TextTable study_table(const explore::StudyResult& result);

/// The ledger's uniform columns + rows view (term, paper eq, category,
/// scope, quantity, unit cost, subtotal), shared by every renderer.
struct LedgerView {
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};
[[nodiscard]] LedgerView ledger_view(const core::CostLedger& ledger);

/// Bordered text table of one ledger, with per-category subtotal rows.
[[nodiscard]] TextTable ledger_table(const core::CostLedger& ledger);

/// Markdown section: heading ("name (kind)") + table.
[[nodiscard]] std::string study_markdown(const explore::StudyResult& result);

/// Appends a heading, a run-metadata paragraph and the table to `html`.
void add_study(HtmlReport& html, const explore::StudyResult& result);

/// One standalone HTML page for a whole result batch.
[[nodiscard]] std::string render_study_report(
    const std::string& title, std::span<const explore::StudyResult> results);

}  // namespace chiplet::report
