// Generic renderers for StudyResult: because every study flattens into
// the same columns + rows view, one function per output format covers
// all ten study kinds — text tables, markdown sections and HTML
// report sections.
#pragma once

#include <span>
#include <string>

#include "explore/study.h"
#include "report/html.h"
#include "report/table.h"

namespace chiplet::report {

/// Bordered text table of the study's tabular view.
[[nodiscard]] TextTable study_table(const explore::StudyResult& result);

/// Markdown section: heading ("name (kind)") + table.
[[nodiscard]] std::string study_markdown(const explore::StudyResult& result);

/// Appends a heading, a run-metadata paragraph and the table to `html`.
void add_study(HtmlReport& html, const explore::StudyResult& result);

/// One standalone HTML page for a whole result batch.
[[nodiscard]] std::string render_study_report(
    const std::string& title, std::span<const explore::StudyResult> results);

}  // namespace chiplet::report
