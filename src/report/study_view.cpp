#include "report/study_view.h"

#include "report/markdown.h"
#include "util/strings.h"

namespace chiplet::report {

TextTable study_table(const explore::StudyResult& result) {
    return TextTable::from_columns(result.table.columns, result.table.rows);
}

std::string study_markdown(const explore::StudyResult& result) {
    return markdown_heading(result.name + " (" + explore::to_string(result.kind) +
                            ")") +
           markdown_table(result.table.columns, result.table.rows);
}

void add_study(HtmlReport& html, const explore::StudyResult& result) {
    html.add_heading(result.name + " (" + explore::to_string(result.kind) + ")");
    html.add_paragraph(
        format_fixed(result.run.wall_seconds * 1e3, 1) + " ms on " +
        std::to_string(result.run.threads) + " threads, die-cost cache hit rate " +
        format_pct(result.run.cache_hit_rate()) +
        (result.run.from_cache ? ", served from study cache" : "") + " (" +
        std::to_string(result.table.rows.size()) + " rows)");
    html.add_table(result.table.columns, result.table.rows);
}

std::string render_study_report(const std::string& title,
                                std::span<const explore::StudyResult> results) {
    HtmlReport html(title);
    for (const explore::StudyResult& result : results) add_study(html, result);
    return html.render();
}

}  // namespace chiplet::report
