#include "report/study_view.h"

#include <cstdio>

#include "core/cost_result.h"
#include "report/markdown.h"
#include "util/strings.h"

namespace chiplet::report {

namespace {

std::string ledger_cell(double value) {
    // Same 9-significant-digit quantisation as the study tables, so
    // ledger cells survive golden-style float-tolerant comparison.
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    return buffer;
}

}  // namespace

TextTable study_table(const explore::StudyResult& result) {
    return TextTable::from_columns(result.table.columns, result.table.rows);
}

LedgerView ledger_view(const core::CostLedger& ledger) {
    LedgerView view;
    view.columns = {"term",     "paper_eq", "category",     "scope",
                    "quantity", "unit_usd", "subtotal_usd"};
    for (const core::CostTerm& term : ledger.terms) {
        view.rows.push_back({term.label, term.paper_eq,
                             core::to_string(term.category),
                             core::to_string(term.scope),
                             ledger_cell(term.quantity),
                             ledger_cell(term.unit_cost_usd),
                             ledger_cell(term.subtotal_usd)});
    }
    return view;
}

TextTable ledger_table(const core::CostLedger& ledger) {
    const LedgerView view = ledger_view(ledger);
    TextTable table = TextTable::from_columns(view.columns, view.rows);
    const core::ReBreakdown re = ledger.fold_re();
    const core::NreBreakdown nre = ledger.fold_nre();
    table.add_rule();
    table.add_row({"RE per unit (fold)", "Eq. 4-5", "", "", "", "",
                   ledger_cell(re.total())});
    if (nre.total() > 0.0) {
        table.add_row({"NRE per unit (fold)", "Eq. 6-8", "", "", "", "",
                       ledger_cell(nre.total())});
        table.add_row({"total per unit", "", "", "", "", "",
                       ledger_cell(re.total() + nre.total())});
    }
    return table;
}

std::string study_markdown(const explore::StudyResult& result) {
    std::string out =
        markdown_heading(result.name + " (" + explore::to_string(result.kind) +
                         ")") +
        markdown_table(result.table.columns, result.table.rows);
    for (const explore::StudyLedger& entry : result.ledgers) {
        const LedgerView view = ledger_view(entry.ledger);
        out += markdown_heading("Cost ledger — " + entry.label, 3) +
               markdown_table(view.columns, view.rows);
    }
    return out;
}

void add_study(HtmlReport& html, const explore::StudyResult& result) {
    html.add_heading(result.name + " (" + explore::to_string(result.kind) + ")");
    const std::uint64_t cell_total =
        result.run.cell_hits + result.run.cell_misses;
    html.add_paragraph(
        format_fixed(result.run.wall_seconds * 1e3, 1) + " ms on " +
        std::to_string(result.run.threads) + " threads, die-cost cache hit rate " +
        format_pct(result.run.cache_hit_rate()) +
        (cell_total > 0
             ? ", " + std::to_string(result.run.cell_hits) + "/" +
                   std::to_string(cell_total) + " cells from the batch graph"
             : "") +
        (result.run.from_cache ? ", served from study cache" : "") +
        (result.run.from_batch_dedup ? ", copied from an identical spec" : "") +
        " (" + std::to_string(result.table.rows.size()) + " rows)");
    html.add_table(result.table.columns, result.table.rows);
    for (const explore::StudyLedger& entry : result.ledgers) {
        html.add_heading("Cost ledger — " + entry.label, 3);
        const LedgerView view = ledger_view(entry.ledger);
        html.add_table(view.columns, view.rows);
    }
}

std::string render_study_report(const std::string& title,
                                std::span<const explore::StudyResult> results) {
    HtmlReport html(title);
    for (const explore::StudyResult& result : results) add_study(html, result);
    return html.render();
}

}  // namespace chiplet::report
