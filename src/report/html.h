// Self-contained HTML report builder: headings, paragraphs, tables and
// embedded SVG charts, with minimal inline CSS.  Produces the
// shareable-report output the original paper repo lacked.
#pragma once

#include <string>
#include <vector>

namespace chiplet::report {

/// Accumulates report sections and renders one standalone HTML page.
class HtmlReport {
public:
    explicit HtmlReport(std::string title);

    void add_heading(const std::string& text, int level = 2);
    void add_paragraph(const std::string& text);

    /// Adds an HTML table; row widths must match the header.
    void add_table(const std::vector<std::string>& headers,
                   const std::vector<std::vector<std::string>>& rows);

    /// Embeds pre-rendered SVG (from report/svg.h) verbatim.
    void add_svg(const std::string& svg);

    /// Full standalone page.
    [[nodiscard]] std::string render() const;

    /// Writes render() to a file; throws Error on I/O failure.
    void save(const std::string& path) const;

private:
    std::string title_;
    std::string body_;
};

}  // namespace chiplet::report
