// SVG chart renderers: vector versions of the ASCII charts for the HTML
// report generator.  Self-contained (no external assets); output embeds
// directly into HTML or stands alone as an .svg file.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace chiplet::report {

/// Multi-series line chart rendered as an SVG element.
class SvgLineChart {
public:
    /// Pixel dimensions of the full chart (plot area is inset for axes).
    SvgLineChart(unsigned width_px = 640, unsigned height_px = 360);

    /// Adds a named series; points need not be sorted (sorted on x
    /// internally for the polyline).
    void add_series(const std::string& name,
                    std::vector<std::pair<double, double>> points);

    /// Axis captions.
    void set_axis_labels(std::string x_label, std::string y_label);

    /// Forces the y range (default: data range padded 5%).
    void set_y_range(double lo, double hi);

    [[nodiscard]] std::string render() const;

private:
    unsigned width_;
    unsigned height_;
    std::string x_label_;
    std::string y_label_;
    bool y_forced_ = false;
    double y_lo_ = 0.0;
    double y_hi_ = 1.0;
    struct Series {
        std::string name;
        std::vector<std::pair<double, double>> points;
    };
    std::vector<Series> series_;
};

/// Horizontal stacked-bar chart rendered as an SVG element.
class SvgStackedBarChart {
public:
    explicit SvgStackedBarChart(unsigned width_px = 640);

    /// Declares the stacking categories (legend entries, stack order).
    void set_segments(std::vector<std::string> labels);

    /// Adds one bar; `values` must match the declared segment count.
    void add_bar(const std::string& label, const std::vector<double>& values);

    [[nodiscard]] std::string render() const;

private:
    unsigned width_;
    std::vector<std::string> segment_labels_;
    struct Bar {
        std::string label;
        std::vector<double> values;
    };
    std::vector<Bar> bars_;
};

/// Escapes &, <, >, " for embedding text in SVG/HTML.
[[nodiscard]] std::string xml_escape(const std::string& text);

}  // namespace chiplet::report
