// ASCII chart renderers: horizontal stacked bars (the paper's cost
// breakdown figures) and x/y line charts (the paper's yield/cost
// curves).  Purely textual so benches work on any terminal and their
// output can be diffed in CI.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace chiplet::report {

/// Horizontal stacked-bar chart:
///
///   SoC  800mm2 |####======..| 2.31
///   MCM  800mm2 |###====..   | 1.85
///   legend: # raw chips  = chip defects  . packaging
class StackedBarChart {
public:
    /// `width` is the maximum bar body width in characters.
    explicit StackedBarChart(unsigned width = 60);

    /// Declares the stacking categories (legend entries, in stack order).
    void set_segments(std::vector<std::string> labels);

    /// Adds one bar; `values` must match the declared segment count.
    void add_bar(const std::string& label, const std::vector<double>& values);

    /// Scale override: full width represents this value (auto: max bar).
    void set_max_value(double value);

    [[nodiscard]] std::string render() const;

private:
    unsigned width_;
    double max_value_ = 0.0;
    std::vector<std::string> segment_labels_;
    struct Bar {
        std::string label;
        std::vector<double> values;
    };
    std::vector<Bar> bars_;
};

/// Multi-series line chart on a character grid:
///
///   1.00 |       AA
///        |    AABB
///   0.50 | BBBB
///        +-----------
///         0        900
class LineChart {
public:
    LineChart(unsigned width = 72, unsigned height = 20);

    /// Adds a named series; points are (x, y) and need not be sorted.
    void add_series(const std::string& name,
                    std::vector<std::pair<double, double>> points);

    /// Forces the y range (auto: data range).
    void set_y_range(double lo, double hi);

    [[nodiscard]] std::string render() const;

private:
    unsigned width_;
    unsigned height_;
    bool y_forced_ = false;
    double y_lo_ = 0.0;
    double y_hi_ = 1.0;
    struct Series {
        std::string name;
        std::vector<std::pair<double, double>> points;
    };
    std::vector<Series> series_;
};

}  // namespace chiplet::report
