#include "report/markdown.h"

#include "util/error.h"

namespace chiplet::report {

std::string markdown_table(const std::vector<std::string>& headers,
                           const std::vector<std::vector<std::string>>& rows) {
    CHIPLET_EXPECTS(!headers.empty(), "markdown table needs headers");
    std::string out = "|";
    for (const std::string& h : headers) out += " " + h + " |";
    out += "\n|";
    for (std::size_t i = 0; i < headers.size(); ++i) out += "---|";
    out += "\n";
    for (const auto& row : rows) {
        CHIPLET_EXPECTS(row.size() == headers.size(),
                        "markdown row width does not match header");
        out += "|";
        for (const std::string& cell : row) out += " " + cell + " |";
        out += "\n";
    }
    return out;
}

std::string markdown_heading(const std::string& text, int level) {
    CHIPLET_EXPECTS(level >= 1 && level <= 6, "heading level must be 1-6");
    return std::string(static_cast<std::size_t>(level), '#') + " " + text + "\n";
}

}  // namespace chiplet::report
