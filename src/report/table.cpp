#include "report/table.h"

#include <algorithm>

#include "util/error.h"
#include "util/json.h"
#include "util/strings.h"

namespace chiplet::report {

namespace {

bool is_number(const std::string& s) {
    double parsed = 0.0;
    return parse_full_number(s, parsed);
}

}  // namespace

TextTable TextTable::from_columns(
    const std::vector<std::string>& columns,
    const std::vector<std::vector<std::string>>& rows) {
    TextTable table;
    for (std::size_t c = 0; c < columns.size(); ++c) {
        const bool numeric =
            !rows.empty() &&
            std::all_of(rows.begin(), rows.end(),
                        [c](const std::vector<std::string>& row) {
                            return c < row.size() && is_number(row[c]);
                        });
        table.add_column(columns[c], numeric ? Align::right : Align::left);
    }
    for (const auto& row : rows) table.add_row(row);
    return table;
}

void TextTable::add_column(std::string header, Align align) {
    CHIPLET_EXPECTS(rows_.empty(), "declare all columns before adding rows");
    headers_.push_back(std::move(header));
    aligns_.push_back(align);
}

void TextTable::add_row(std::vector<std::string> fields) {
    CHIPLET_EXPECTS(fields.size() == headers_.size(),
                    "row width does not match column count");
    rows_.push_back(Row{false, std::move(fields)});
}

void TextTable::add_rule() { rows_.push_back(Row{true, {}}); }

std::size_t TextTable::row_count() const {
    return static_cast<std::size_t>(
        std::count_if(rows_.begin(), rows_.end(),
                      [](const Row& r) { return !r.is_rule; }));
}

std::string TextTable::render() const {
    CHIPLET_EXPECTS(!headers_.empty(), "table has no columns");
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const Row& row : rows_) {
        if (row.is_rule) continue;
        for (std::size_t c = 0; c < row.fields.size(); ++c) {
            widths[c] = std::max(widths[c], row.fields[c].size());
        }
    }

    const auto rule = [&] {
        std::string out = "+";
        for (std::size_t w : widths) out += repeat('-', w + 2) + "+";
        return out + "\n";
    }();

    const auto render_row = [&](const std::vector<std::string>& fields) {
        std::string out = "|";
        for (std::size_t c = 0; c < fields.size(); ++c) {
            const std::string cell = aligns_[c] == Align::right
                                         ? pad_left(fields[c], widths[c])
                                         : pad_right(fields[c], widths[c]);
            out += " " + cell + " |";
        }
        return out + "\n";
    };

    std::string out = rule;
    out += render_row(headers_);
    out += rule;
    for (const Row& row : rows_) {
        out += row.is_rule ? rule : render_row(row.fields);
    }
    out += rule;
    return out;
}

}  // namespace chiplet::report
