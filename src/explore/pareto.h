// Pareto-front extraction for two-objective design studies (e.g.
// per-unit cost vs number of distinct chip designs a team must staff).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace chiplet::explore {

/// A candidate with two objectives, both minimised.
struct ParetoPoint {
    double x = 0.0;
    double y = 0.0;
    std::size_t index = 0;  ///< caller's identifier
};

/// Indices (into the input order) of the non-dominated points, sorted by
/// ascending x.  A point dominates another when it is <= in both
/// objectives and strictly < in at least one.
[[nodiscard]] std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points);

/// True when `a` dominates `b` (minimisation).
[[nodiscard]] bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Declarative form over explicit candidate points (axis labels are
/// carried through to reports).
struct ParetoConfig {
    std::vector<ParetoPoint> points;
    std::string x_label = "x";
    std::string y_label = "y";
};

[[nodiscard]] std::vector<ParetoPoint> run_pareto(const ParetoConfig& config);

}  // namespace chiplet::explore
