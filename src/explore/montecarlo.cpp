#include "explore/montecarlo.h"

#include <algorithm>

#include "util/error.h"
#include "util/math.h"
#include "util/thread_pool.h"

namespace chiplet::explore {

LibrarySampler default_sampler(const std::string& node,
                               const std::string& packaging, double spread) {
    CHIPLET_EXPECTS(spread > 0.0 && spread < 1.0, "spread must lie in (0, 1)");
    return [node, packaging, spread](tech::TechLibrary& lib, Rng& rng) {
        const tech::ProcessNode& n = lib.node(node);
        lib.set_defect_density(
            node, rng.triangular(n.defect_density_cm2 * (1.0 - spread),
                                 n.defect_density_cm2,
                                 n.defect_density_cm2 * (1.0 + spread)));
        lib.set_wafer_price(
            node, rng.triangular(n.wafer_price_usd * (1.0 - spread / 2.0),
                                 n.wafer_price_usd,
                                 n.wafer_price_usd * (1.0 + spread / 2.0)));
        tech::PackagingTech t = lib.packaging(packaging);
        const auto jitter_yield = [&rng](double y) {
            const double loss = 1.0 - y;
            return 1.0 - rng.triangular(loss * 0.5, loss, std::min(loss * 2.0, 0.9));
        };
        t.chip_bond_yield = jitter_yield(t.chip_bond_yield);
        if (t.substrate_bond_yield < 1.0) {
            t.substrate_bond_yield = jitter_yield(t.substrate_bond_yield);
        }
        lib.add_packaging(t);
    };
}

McResult monte_carlo(const core::ChipletActuary& actuary,
                     const design::System& system, const LibrarySampler& sampler,
                     unsigned n, std::uint64_t seed) {
    CHIPLET_EXPECTS(n > 0, "need at least one draw");
    // Draw i samples from its own RNG stream split off the master seed,
    // so the sample vector is the same whatever the pool size.
    McResult out;
    out.samples = util::ThreadPool::global().parallel_map<double>(
        n, [&](std::size_t i) {
            Rng rng = Rng::stream(seed, i);
            core::ChipletActuary draw(actuary.library(), actuary.assumptions());
            sampler(draw.library(), rng);
            return draw.evaluate(system).total_per_unit();
        });
    out.mean = mean(out.samples);
    out.stddev = stddev(out.samples);
    out.p05 = percentile(out.samples, 5.0);
    out.p50 = percentile(out.samples, 50.0);
    out.p95 = percentile(out.samples, 95.0);
    return out;
}

double win_rate(const core::ChipletActuary& actuary, const design::System& a,
                const design::System& b, const LibrarySampler& sampler,
                unsigned n, std::uint64_t seed) {
    CHIPLET_EXPECTS(n > 0, "need at least one draw");
    const std::vector<char> won = util::ThreadPool::global().parallel_map<char>(
        n, [&](std::size_t i) {
            Rng rng = Rng::stream(seed, i);
            core::ChipletActuary draw(actuary.library(), actuary.assumptions());
            sampler(draw.library(), rng);
            const double cost_a = draw.evaluate(a).total_per_unit();
            const double cost_b = draw.evaluate(b).total_per_unit();
            return static_cast<char>(cost_a < cost_b);
        });
    unsigned wins = 0;
    for (char w : won) wins += static_cast<unsigned>(w);
    return static_cast<double>(wins) / static_cast<double>(n);
}

McStudyOutcome run_monte_carlo(const core::ChipletActuary& actuary,
                               const McStudyConfig& config) {
    const LibrarySampler sampler = default_sampler(
        config.scenario.node, config.scenario.packaging, config.spread);
    const design::System system =
        config.scenario.build(actuary.library(), "mc");
    McStudyOutcome out;
    out.mc = monte_carlo(actuary, system, sampler, config.draws, config.seed);
    if (config.compare) {
        const design::System rival =
            config.compare->build(actuary.library(), "mc_compare");
        out.has_compare = true;
        out.win_rate =
            win_rate(actuary, system, rival, sampler, config.draws, config.seed);
    }
    return out;
}

}  // namespace chiplet::explore
