#include "explore/timeline.h"

#include "util/error.h"

namespace chiplet::explore {

std::vector<TimelinePoint> cost_trajectory(const core::ChipletActuary& actuary,
                                           const design::System& system,
                                           const std::string& node,
                                           const yield::DefectLearningCurve& curve,
                                           double months, double step_months) {
    CHIPLET_EXPECTS(months >= 0.0, "horizon must be non-negative");
    CHIPLET_EXPECTS(step_months > 0.0, "step must be positive");
    std::vector<TimelinePoint> out;
    for (double t = 0.0; t <= months + 1e-9; t += step_months) {
        core::ChipletActuary snapshot(actuary.library(), actuary.assumptions());
        const double d = curve.defect_density(t);
        snapshot.library().set_defect_density(node, d);
        TimelinePoint point;
        point.month = t;
        point.defect_density = d;
        point.unit_cost = snapshot.evaluate(system).total_per_unit();
        out.push_back(point);
    }
    return out;
}

double crossover_month(const core::ChipletActuary& actuary,
                       const design::System& a, const design::System& b,
                       const std::string& node,
                       const yield::DefectLearningCurve& curve, double months,
                       double step_months) {
    const auto traj_a =
        cost_trajectory(actuary, a, node, curve, months, step_months);
    const auto traj_b =
        cost_trajectory(actuary, b, node, curve, months, step_months);
    for (std::size_t i = 0; i < traj_a.size(); ++i) {
        if (traj_a[i].unit_cost <= traj_b[i].unit_cost) return traj_a[i].month;
    }
    return -1.0;
}

TimelineOutcome run_timeline(const core::ChipletActuary& actuary,
                             const TimelineStudyConfig& config) {
    const yield::DefectLearningCurve curve(config.initial_defects_per_cm2,
                                           config.mature_defects_per_cm2,
                                           config.tau_months);
    const design::System system =
        config.scenario.build(actuary.library(), "timeline");
    TimelineOutcome out;
    out.trajectory = cost_trajectory(actuary, system, config.scenario.node,
                                     curve, config.months, config.step_months);
    if (config.compare) {
        const design::System rival =
            config.compare->build(actuary.library(), "timeline_compare");
        out.has_compare = true;
        out.crossover_month =
            crossover_month(actuary, system, rival, config.scenario.node, curve,
                            config.months, config.step_months);
    }
    return out;
}

}  // namespace chiplet::explore
