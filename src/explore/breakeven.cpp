#include "explore/breakeven.h"

#include <cmath>

#include "core/scenarios.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace chiplet::explore {

double solve_bisection(const std::function<double(double)>& f, double lo,
                       double hi, double tolerance, unsigned max_iterations) {
    CHIPLET_EXPECTS(lo < hi, "bisection needs lo < hi");
    double flo = f(lo);
    const double fhi = f(hi);
    CHIPLET_EXPECTS(flo == 0.0 || fhi == 0.0 || (flo < 0.0) != (fhi < 0.0),
                    "bisection needs a sign change on [lo, hi]");
    if (flo == 0.0) return lo;
    if (fhi == 0.0) return hi;
    for (unsigned i = 0; i < max_iterations && (hi - lo) > tolerance; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double fmid = f(mid);
        if (fmid == 0.0) return mid;
        if ((fmid < 0.0) == (flo < 0.0)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

namespace {

double total_cost(const core::ChipletActuary& actuary, const std::string& node,
                  double module_area_mm2, unsigned chiplets,
                  const std::string& packaging, double d2d_fraction,
                  double quantity) {
    return actuary
        .evaluate(breakeven_candidate_system(node, packaging, module_area_mm2,
                                             chiplets, d2d_fraction, quantity))
        .total_per_unit();
}

/// Evaluates the (SoC, alternative) cost pair concurrently: the bisection
/// itself is inherently serial, but each probe's two evaluations are not.
std::pair<double, double> soc_alt_pair(const std::function<double()>& soc,
                                       const std::function<double()>& alt) {
    double costs[2] = {0.0, 0.0};
    util::ThreadPool::global().parallel_for(2, [&](std::size_t i) {
        costs[i] = i == 0 ? soc() : alt();
    });
    return {costs[0], costs[1]};
}

}  // namespace

Breakeven breakeven_quantity(const core::ChipletActuary& actuary,
                             const std::string& node, double module_area_mm2,
                             unsigned chiplets, const std::string& packaging,
                             double d2d_fraction, double qty_lo, double qty_hi) {
    CHIPLET_EXPECTS(qty_lo > 0.0 && qty_lo < qty_hi, "invalid quantity range");
    const auto costs_at = [&](double q) {
        return soc_alt_pair(
            [&] {
                return total_cost(actuary, node, module_area_mm2, 1, "SoC",
                                  d2d_fraction, q);
            },
            [&] {
                return total_cost(actuary, node, module_area_mm2, chiplets,
                                  packaging, d2d_fraction, q);
            });
    };
    const auto diff = [&](double log_q) {
        const auto [soc, alt] = costs_at(std::exp(log_q));
        return alt - soc;
    };
    Breakeven out;
    const double lo = std::log(qty_lo);
    const double hi = std::log(qty_hi);
    const double dlo = diff(lo);
    const double dhi = diff(hi);
    if (dlo == 0.0 || dhi == 0.0 || (dlo < 0.0) != (dhi < 0.0)) {
        // Search in log space: amortised NRE is monotone in quantity, so
        // at most one crossover exists in the range.
        const double log_q = solve_bisection(diff, lo, hi, 1e-9);
        out.found = true;
        out.value = std::exp(log_q);
        const auto [soc, alt] = costs_at(out.value);
        out.soc_cost = soc;
        out.alt_cost = alt;
    }
    return out;
}

design::System breakeven_candidate_system(const std::string& node,
                                          const std::string& packaging,
                                          double module_area_mm2,
                                          unsigned chiplets,
                                          double d2d_fraction,
                                          double quantity) {
    return chiplets == 1 && packaging == "SoC"
               ? core::monolithic_soc("soc", node, module_area_mm2, quantity)
               : core::split_system("alt", node, packaging, module_area_mm2,
                                    chiplets, d2d_fraction, quantity);
}

Breakeven breakeven_search(const core::ChipletActuary& actuary,
                           const BreakevenQuery& query) {
    if (query.axis == BreakevenQuery::Axis::quantity) {
        const double lo = query.lo > 0.0 ? query.lo : 1e4;
        const double hi = query.hi > 0.0 ? query.hi : 1e9;
        return breakeven_quantity(actuary, query.node, query.module_area_mm2,
                                  query.chiplets, query.packaging,
                                  query.d2d_fraction, lo, hi);
    }
    const double lo = query.lo > 0.0 ? query.lo : 50.0;
    const double hi = query.hi > 0.0 ? query.hi : 900.0;
    return breakeven_area(actuary, query.node, query.chiplets, query.packaging,
                          query.d2d_fraction, lo, hi);
}

Breakeven breakeven_area(const core::ChipletActuary& actuary,
                         const std::string& node, unsigned chiplets,
                         const std::string& packaging, double d2d_fraction,
                         double area_lo, double area_hi) {
    CHIPLET_EXPECTS(area_lo > 0.0 && area_lo < area_hi, "invalid area range");
    const auto costs_at = [&](double area) {
        return soc_alt_pair(
            [&] {
                const design::System soc =
                    core::monolithic_soc("soc", node, area, 1e6);
                return actuary.evaluate_re_only(soc).re.total();
            },
            [&] {
                const design::System alt = core::split_system(
                    "alt", node, packaging, area, chiplets, d2d_fraction, 1e6);
                return actuary.evaluate_re_only(alt).re.total();
            });
    };
    const auto diff = [&](double area) {
        const auto [soc, alt] = costs_at(area);
        return alt - soc;
    };
    Breakeven out;
    const double dlo = diff(area_lo);
    const double dhi = diff(area_hi);
    if (dlo == 0.0 || dhi == 0.0 || (dlo < 0.0) != (dhi < 0.0)) {
        out.found = true;
        out.value = solve_bisection(diff, area_lo, area_hi, 1e-3);
        const auto [soc, alt] = costs_at(out.value);
        out.soc_cost = soc;
        out.alt_cost = alt;
    }
    return out;
}

}  // namespace chiplet::explore
