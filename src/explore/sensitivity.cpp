#include "explore/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/thread_pool.h"

namespace chiplet::explore {

std::vector<ParameterHandle> default_parameters(const std::string& node,
                                                const std::string& packaging) {
    std::vector<ParameterHandle> out;
    out.push_back(
        {node + ".defect_density",
         [node](const tech::TechLibrary& lib) {
             return lib.node(node).defect_density_cm2;
         },
         [node](tech::TechLibrary& lib, double v) {
             lib.set_defect_density(node, v);
         }});
    out.push_back(
        {node + ".wafer_price",
         [node](const tech::TechLibrary& lib) {
             return lib.node(node).wafer_price_usd;
         },
         [node](tech::TechLibrary& lib, double v) { lib.set_wafer_price(node, v); }});
    // Yields saturate at 1.0: the setter clamps so a relative upward
    // perturbation of an already-high yield stays in the valid domain
    // (the elasticity then reflects the one-sided slope).
    out.push_back(
        {packaging + ".chip_bond_yield",
         [packaging](const tech::TechLibrary& lib) {
             return lib.packaging(packaging).chip_bond_yield;
         },
         [packaging](tech::TechLibrary& lib, double v) {
             tech::PackagingTech t = lib.packaging(packaging);
             t.chip_bond_yield = std::min(v, 1.0);
             lib.add_packaging(t);
         }});
    out.push_back(
        {packaging + ".substrate_bond_yield",
         [packaging](const tech::TechLibrary& lib) {
             return lib.packaging(packaging).substrate_bond_yield;
         },
         [packaging](tech::TechLibrary& lib, double v) {
             tech::PackagingTech t = lib.packaging(packaging);
             t.substrate_bond_yield = std::min(v, 1.0);
             lib.add_packaging(t);
         }});
    out.push_back(
        {packaging + ".substrate_cost",
         [packaging](const tech::TechLibrary& lib) {
             return lib.packaging(packaging).substrate_cost_per_mm2;
         },
         [packaging](tech::TechLibrary& lib, double v) {
             tech::PackagingTech t = lib.packaging(packaging);
             t.substrate_cost_per_mm2 = v;
             lib.add_packaging(t);
         }});
    return out;
}

double TornadoEntry::swing() const { return std::fabs(cost_high - cost_low); }

std::vector<TornadoEntry> tornado_analysis(
    const core::ChipletActuary& actuary, const design::System& system,
    const std::vector<ParameterHandle>& parameters, double rel_range) {
    CHIPLET_EXPECTS(rel_range > 0.0 && rel_range < 1.0,
                    "relative range must lie in (0, 1)");
    // Each parameter perturbs its own copy of the library, so the bars
    // evaluate independently on the pool.
    std::vector<TornadoEntry> out =
        util::ThreadPool::global().parallel_map<TornadoEntry>(
            parameters.size(), [&](std::size_t i) {
                const ParameterHandle& p = parameters[i];
                TornadoEntry entry;
                entry.parameter = p.name;
                entry.base_value = p.get(actuary.library());
                const auto cost_at = [&](double value) {
                    core::ChipletActuary perturbed(actuary.library(),
                                                   actuary.assumptions());
                    p.set(perturbed.library(), value);
                    return perturbed.evaluate(system).total_per_unit();
                };
                entry.cost_low = cost_at(entry.base_value * (1.0 - rel_range));
                entry.cost_high = cost_at(entry.base_value * (1.0 + rel_range));
                return entry;
            });
    std::stable_sort(out.begin(), out.end(),
                     [](const TornadoEntry& a, const TornadoEntry& b) {
                         return a.swing() > b.swing();
                     });
    return out;
}

std::vector<SensitivityEntry> sensitivity_analysis(
    const core::ChipletActuary& actuary, const design::System& system,
    const std::vector<ParameterHandle>& parameters, double rel_step) {
    CHIPLET_EXPECTS(rel_step > 0.0 && rel_step < 1.0,
                    "relative step must lie in (0, 1)");
    const double base_cost = actuary.evaluate(system).total_per_unit();

    return util::ThreadPool::global().parallel_map<SensitivityEntry>(
        parameters.size(), [&](std::size_t i) {
            const ParameterHandle& p = parameters[i];
            SensitivityEntry entry;
            entry.parameter = p.name;
            entry.base_value = p.get(actuary.library());
            entry.base_cost = base_cost;
            if (entry.base_value == 0.0) {
                return entry;  // elasticity undefined at exactly zero
            }

            const auto cost_at = [&](double value) {
                core::ChipletActuary perturbed(actuary.library(),
                                               actuary.assumptions());
                p.set(perturbed.library(), value);
                return perturbed.evaluate(system).total_per_unit();
            };
            const double up = cost_at(entry.base_value * (1.0 + rel_step));
            const double down = cost_at(entry.base_value * (1.0 - rel_step));
            entry.perturbed_cost = up;
            entry.elasticity = ((up - down) / base_cost) / (2.0 * rel_step);
            return entry;
        });
}

std::vector<SensitivityEntry> run_sensitivity(
    const core::ChipletActuary& actuary, const SensitivityStudyConfig& config) {
    const design::System system =
        config.scenario.build(actuary.library(), "sensitivity");
    return sensitivity_analysis(
        actuary, system,
        default_parameters(config.scenario.node, config.scenario.packaging),
        config.rel_step);
}

std::vector<TornadoEntry> run_tornado(const core::ChipletActuary& actuary,
                                      const TornadoStudyConfig& config) {
    const design::System system =
        config.scenario.build(actuary.library(), "tornado");
    return tornado_analysis(
        actuary, system,
        default_parameters(config.scenario.node, config.scenario.packaging),
        config.rel_range);
}

}  // namespace chiplet::explore
