#include "explore/pareto.h"

#include <algorithm>
#include <limits>

#include "util/thread_pool.h"

namespace chiplet::explore {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
    const bool no_worse = a.x <= b.x && a.y <= b.y;
    const bool strictly_better = a.x < b.x || a.y < b.y;
    return no_worse && strictly_better;
}

namespace {

// Front extraction by (x, y) stable sort + staircase scan.  The stable
// sort preserves input order among coincident points, so the first of a
// duplicate pair survives — identical to the historical behaviour.
std::vector<ParetoPoint> front_of(std::vector<ParetoPoint> points) {
    std::stable_sort(points.begin(), points.end(),
                     [](const ParetoPoint& a, const ParetoPoint& b) {
                         if (a.x != b.x) return a.x < b.x;
                         return a.y < b.y;
                     });
    std::vector<ParetoPoint> front;
    double best_y = std::numeric_limits<double>::infinity();
    for (const ParetoPoint& p : points) {
        if (p.y < best_y) {
            front.push_back(p);
            best_y = p.y;
        }
    }
    return front;
}

// Below this size the sort is too cheap for fan-out to pay off.
constexpr std::size_t kParallelThreshold = 1 << 14;

}  // namespace

std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points) {
    util::ThreadPool& pool = util::ThreadPool::global();
    if (points.size() < kParallelThreshold || pool.size() <= 1) {
        return front_of(std::move(points));
    }

    // Divide and conquer: per-chunk fronts in parallel, then one front
    // over the union.  Points dropped inside a chunk are dominated there,
    // hence dominated globally, so the union still contains the full
    // global front; and chunks concatenate in input order, keeping the
    // duplicate-handling of the stable sort identical to the serial scan.
    const std::size_t chunks = pool.size();
    const std::size_t chunk_size = (points.size() + chunks - 1) / chunks;
    const std::vector<std::vector<ParetoPoint>> partial =
        pool.parallel_map<std::vector<ParetoPoint>>(chunks, [&](std::size_t c) {
            const std::size_t begin = c * chunk_size;
            const std::size_t end = std::min(begin + chunk_size, points.size());
            if (begin >= end) return std::vector<ParetoPoint>{};
            return front_of(std::vector<ParetoPoint>(points.begin() + begin,
                                                     points.begin() + end));
        });

    std::vector<ParetoPoint> merged;
    for (const auto& part : partial) {
        merged.insert(merged.end(), part.begin(), part.end());
    }
    return front_of(std::move(merged));
}

std::vector<ParetoPoint> run_pareto(const ParetoConfig& config) {
    return pareto_front(config.points);
}

}  // namespace chiplet::explore
