#include "explore/pareto.h"

#include <algorithm>
#include <limits>

namespace chiplet::explore {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
    const bool no_worse = a.x <= b.x && a.y <= b.y;
    const bool strictly_better = a.x < b.x || a.y < b.y;
    return no_worse && strictly_better;
}

std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points) {
    std::stable_sort(points.begin(), points.end(),
                     [](const ParetoPoint& a, const ParetoPoint& b) {
                         if (a.x != b.x) return a.x < b.x;
                         return a.y < b.y;
                     });
    std::vector<ParetoPoint> front;
    double best_y = std::numeric_limits<double>::infinity();
    for (const ParetoPoint& p : points) {
        if (p.y < best_y) {
            front.push_back(p);
            best_y = p.y;
        }
    }
    return front;
}

}  // namespace chiplet::explore
