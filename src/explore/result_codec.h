// Lossless binary serialisation of StudyResult for the on-disk cache
// (explore/cache_store.h).  The JSON result envelope of study_json.h is
// deliberately one-way — Monte-Carlo sample vectors are summarised and
// numbers render at 12 significant digits — so a persisted result that
// round-tripped through it would *not* be bit-identical to the
// in-memory original.  This codec is the lossless counterpart: every
// payload double is stored as its exact 8-byte pattern, every vector in
// full, so decode(encode(r)) reproduces `r` field for field and a
// warm-started cache serves the very bytes a cold evaluation produced.
//
// The format is positional and versioned only from the outside: the
// cache store's entry header carries the model fingerprint
// (core/version.h), which kModelSchemaVersion folds into — any codec
// change bumps the schema version and orphans old entries wholesale.
// decode_result never trusts the input: counts are bounded by the
// remaining bytes, enum values are range-checked, and any structural
// violation returns false instead of throwing or crashing.
#pragma once

#include <string>
#include <string_view>

#include "explore/study.h"

namespace chiplet::explore {

/// Serialises `result` (payload, run info, table, ledgers) losslessly.
[[nodiscard]] std::string encode_result(const StudyResult& result);

/// Inverse of encode_result.  Returns false on malformed or truncated
/// input (`out` is unspecified then); never throws, never over-reads.
[[nodiscard]] bool decode_result(std::string_view data, StudyResult& out);

}  // namespace chiplet::explore
