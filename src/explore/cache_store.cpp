#include "explore/cache_store.h"

#include <cstring>
#include <mutex>
#include <utility>

#include "core/version.h"
#include "explore/result_codec.h"
#include "explore/spec_hash.h"
#include "explore/study_cache.h"
#include "util/error.h"
#include "util/file.h"

namespace chiplet::explore {

namespace {

constexpr char kMagic[8] = {'C', 'A', 'C', 'S', '0', '0', '0', '1'};
constexpr std::size_t kMagicSize = sizeof(kMagic);
constexpr const char* kEntrySuffix = ".study";

void append_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
}

std::uint64_t read_u64(const char* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    }
    return v;
}

std::string hash_filename(std::uint64_t hash) {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string name(16, '0');
    for (int i = 15; i >= 0; --i) {
        name[static_cast<std::size_t>(i)] = kHex[hash & 0xf];
        hash >>= 4;
    }
    return name + kEntrySuffix;
}

}  // namespace

struct StudyCacheStore::Impl {
    Config config;
    mutable std::mutex mutex;  ///< counters only; file writes are atomic
    Stats counters;

    explicit Impl(Config c) : config(std::move(c)) {
        if (config.fingerprint == 0) {
            config.fingerprint = core::model_fingerprint();
        }
        if (!util::ensure_directory(config.dir)) {
            throw Error("cache-dir: cannot create directory '" + config.dir +
                        "'");
        }
    }
};

StudyCacheStore::StudyCacheStore(Config config)
    : impl_(new Impl(std::move(config))) {}

StudyCacheStore::~StudyCacheStore() { delete impl_; }

void StudyCacheStore::put(const std::string& canonical, std::uint64_t hash,
                          const StudyResult& result) {
    std::string blob;
    blob.reserve(canonical.size() + 256);
    blob.append(kMagic, kMagicSize);
    append_u64(blob, impl_->config.fingerprint);
    append_u64(blob, hash);
    append_u64(blob, canonical.size());
    blob.append(canonical);
    const std::string body = encode_result(result);
    append_u64(blob, body.size());
    blob.append(body);
    append_u64(blob, fnv1a64(blob));

    const bool ok = util::write_file_atomic(
        impl_->config.dir + "/" + hash_filename(hash), blob);
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (ok) {
        ++impl_->counters.writes;
    } else {
        ++impl_->counters.write_failures;
    }
}

void StudyCacheStore::load_into(StudyCache& cache) {
    std::uint64_t loaded = 0;
    std::uint64_t stale = 0;
    std::uint64_t corrupt = 0;

    for (const std::string& name :
         util::list_directory(impl_->config.dir, kEntrySuffix)) {
        std::string blob;
        if (!util::read_file(impl_->config.dir + "/" + name, blob)) {
            ++corrupt;
            continue;
        }
        // Fixed header + two length prefixes + trailing checksum is the
        // structural minimum; anything shorter is truncation.
        constexpr std::size_t kMinSize = kMagicSize + 8 * 4 + 8;
        if (blob.size() < kMinSize ||
            std::memcmp(blob.data(), kMagic, kMagicSize) != 0) {
            ++corrupt;
            continue;
        }
        // Checksum first: it vouches for every field examined below.
        const std::uint64_t checksum =
            read_u64(blob.data() + blob.size() - 8);
        if (fnv1a64(std::string_view(blob.data(), blob.size() - 8)) !=
            checksum) {
            ++corrupt;
            continue;
        }
        const char* p = blob.data() + kMagicSize;
        const std::uint64_t fingerprint = read_u64(p);
        const std::uint64_t hash = read_u64(p + 8);
        if (fingerprint != impl_->config.fingerprint) {
            // A different model wrote this entry; its numbers may be
            // ones the current equations would never produce.
            ++stale;
            continue;
        }
        const std::uint64_t canonical_size = read_u64(p + 16);
        const char* cursor = p + 24;
        const char* end = blob.data() + blob.size() - 8;
        if (canonical_size > static_cast<std::uint64_t>(end - cursor) - 8) {
            ++corrupt;
            continue;
        }
        std::string canonical(cursor, static_cast<std::size_t>(canonical_size));
        cursor += canonical_size;
        const std::uint64_t body_size = read_u64(cursor);
        cursor += 8;
        if (body_size != static_cast<std::uint64_t>(end - cursor) ||
            hash != fnv1a64(canonical)) {
            ++corrupt;
            continue;
        }
        StudyResult result;
        if (!decode_result(
                std::string_view(cursor, static_cast<std::size_t>(body_size)),
                result)) {
            ++corrupt;
            continue;
        }
        cache.insert(canonical, hash, result);
        ++loaded;
    }

    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->counters.loaded += loaded;
    impl_->counters.stale += stale;
    impl_->counters.corrupt += corrupt;
}

StudyCacheStore::Stats StudyCacheStore::stats() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->counters;
}

const std::string& StudyCacheStore::dir() const { return impl_->config.dir; }

std::uint64_t StudyCacheStore::fingerprint() const {
    return impl_->config.fingerprint;
}

}  // namespace chiplet::explore
