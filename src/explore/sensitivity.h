// Local sensitivity analysis: how strongly each calibration parameter
// drives a system's total cost.  Reported as elasticities
// (percent cost change per percent parameter change) so parameters of
// different units are comparable.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/actuary.h"
#include "explore/scenario_spec.h"

namespace chiplet::explore {

/// A perturbable model parameter: reads and writes one scalar on a
/// technology library.
struct ParameterHandle {
    std::string name;
    std::function<double(const tech::TechLibrary&)> get;
    std::function<void(tech::TechLibrary&, double)> set;
};

/// Sensitivity of total cost to one parameter.
struct SensitivityEntry {
    std::string parameter;
    double base_value = 0.0;
    double base_cost = 0.0;
    double perturbed_cost = 0.0;  ///< cost at (1 + rel_step) * base_value
    double elasticity = 0.0;      ///< (dC/C) / (dp/p), central difference
};

/// The default parameter set for a system at `node` with `packaging`:
/// defect density, wafer price, chip/substrate bond yields, D2D area
/// fraction (multi-die only), substrate cost.
[[nodiscard]] std::vector<ParameterHandle> default_parameters(
    const std::string& node, const std::string& packaging);

/// Central-difference elasticities of the per-unit total cost of
/// `system` with respect to each parameter.  `rel_step` is the relative
/// perturbation (default 1 %).
[[nodiscard]] std::vector<SensitivityEntry> sensitivity_analysis(
    const core::ChipletActuary& actuary, const design::System& system,
    const std::vector<ParameterHandle>& parameters, double rel_step = 0.01);

/// One bar of a tornado diagram: cost at the low and high ends of a
/// parameter's plausible range.
struct TornadoEntry {
    std::string parameter;
    double base_value = 0.0;
    double cost_low = 0.0;   ///< cost at (1 - rel_range) * base
    double cost_high = 0.0;  ///< cost at (1 + rel_range) * base
    /// |cost_high - cost_low|: the bar length; entries sort by this.
    [[nodiscard]] double swing() const;
};

/// Tornado-diagram data: evaluates each parameter at +/- `rel_range`
/// (default 20%) and returns entries sorted by descending swing — the
/// ranking of which calibration inputs matter most.
[[nodiscard]] std::vector<TornadoEntry> tornado_analysis(
    const core::ChipletActuary& actuary, const design::System& system,
    const std::vector<ParameterHandle>& parameters, double rel_range = 0.20);

/// Declarative forms: the scenario is materialised against the
/// actuary's library and perturbed through default_parameters(node,
/// packaging).  Bit-identical to the typed calls with the same inputs.
struct SensitivityStudyConfig {
    ScenarioSpec scenario;
    double rel_step = 0.01;
};

[[nodiscard]] std::vector<SensitivityEntry> run_sensitivity(
    const core::ChipletActuary& actuary, const SensitivityStudyConfig& config);

struct TornadoStudyConfig {
    ScenarioSpec scenario;
    double rel_range = 0.20;
};

[[nodiscard]] std::vector<TornadoEntry> run_tornado(
    const core::ChipletActuary& actuary, const TornadoStudyConfig& config);

}  // namespace chiplet::explore
