#include "explore/study_graph.h"

#include <unordered_map>
#include <utility>

#include "core/scenarios.h"
#include "explore/cell.h"
#include "explore/spec_hash.h"
#include "explore/study_cache.h"
#include "tech/json_io.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace chiplet::explore {

namespace {

/// Per-study enumeration budget.  A study whose evaluated-cell count
/// exceeds this runs opaque instead: the engine streams the space in
/// chunks exactly as it does standalone, and the compiler neither holds
/// the systems in memory nor shares them.  Sized so the enumerable
/// paper workloads (grids of hundreds, decision spaces of thousands)
/// fit with a wide margin while a million-candidate design_space does
/// not get materialised.
constexpr std::size_t kMaxCellsPerStudy = 32768;

/// Enumerates the exact cost cells `spec`'s engine will price on
/// `effective`, in the engine's own construction — any divergence is
/// harmless (the unpredicted evaluation misses the memo and the engine
/// prices it itself) but wastes the shared work.  Returns false when
/// the kind is opaque, the config is one the engine will reject, the
/// space exceeds the budget, or enumeration throws; the study then runs
/// without a memo.
bool enumerate_cells(const core::ChipletActuary& effective,
                     const StudySpec& spec, std::vector<Cell>& out) {
    try {
        switch (spec.kind()) {
            case StudyKind::re_sweep: {
                const auto& c = std::get<ReSweepConfig>(spec.config);
                if (c.nodes.empty() || c.areas_mm2.empty()) return false;
                // Normalisation baselines: one "soc" per node at the
                // normalisation area — the same cell a grid SoC entry at
                // that area produces (sweep.cpp names both "soc").
                for (const std::string& node : c.nodes) {
                    out.push_back({CellEval::re_only,
                                   core::monolithic_soc(
                                       "soc", node, c.normalization_area_mm2,
                                       1e6)});
                }
                for (const std::string& node : c.nodes) {
                    for (double area : c.areas_mm2) {
                        for (const std::string& packaging : c.packagings) {
                            const bool is_soc =
                                effective.library().packaging(packaging).type ==
                                tech::IntegrationType::soc;
                            const std::vector<unsigned> counts =
                                is_soc ? std::vector<unsigned>{1}
                                       : c.chiplet_counts;
                            for (unsigned k : counts) {
                                if (out.size() >= kMaxCellsPerStudy)
                                    return false;
                                out.push_back(
                                    {CellEval::re_only,
                                     sweep_cell_system(effective, node,
                                                       packaging, area, k,
                                                       c.d2d_fraction, 1e6)});
                            }
                        }
                    }
                }
                return true;
            }
            case StudyKind::quantity_sweep: {
                const auto& c = std::get<QuantitySweepConfig>(spec.config);
                if (c.packagings.empty() || c.quantities.empty()) return false;
                for (double quantity : c.quantities) {
                    for (const std::string& packaging : c.packagings) {
                        if (out.size() >= kMaxCellsPerStudy) return false;
                        out.push_back(
                            {CellEval::full,
                             sweep_cell_system(effective, c.node, packaging,
                                               c.module_area_mm2, c.chiplets,
                                               c.d2d_fraction, quantity)});
                    }
                }
                return true;
            }
            case StudyKind::recommend: {
                const auto& q = std::get<DecisionQuery>(spec.config);
                if (q.max_chiplets < 1 || q.packagings.empty()) return false;
                const DesignSpaceConfig space = decision_space(q);
                std::optional<std::vector<design::System>> systems =
                    design_space_systems(effective, space,
                                         kMaxCellsPerStudy - out.size());
                if (!systems) return false;
                for (design::System& system : *systems) {
                    out.push_back({CellEval::full, std::move(system)});
                }
                return true;
            }
            case StudyKind::design_space: {
                const auto& c = std::get<DesignSpaceConfig>(spec.config);
                std::optional<std::vector<design::System>> systems =
                    design_space_systems(effective, c,
                                         kMaxCellsPerStudy - out.size());
                if (!systems) return false;
                for (design::System& system : *systems) {
                    out.push_back({CellEval::full, std::move(system)});
                }
                return true;
            }
            // Opaque kinds: their evaluations depend on state the
            // compiler cannot replicate cheaply — perturbed or per-month
            // libraries (monte_carlo, sensitivity, tornado, timeline),
            // adaptive bisection probes (breakeven) — or there is no
            // cost model behind them at all (pareto).
            case StudyKind::monte_carlo:
            case StudyKind::sensitivity:
            case StudyKind::tornado:
            case StudyKind::breakeven:
            case StudyKind::pareto:
            case StudyKind::timeline:
                return false;
        }
    } catch (...) {
        // Invalid config (unknown packaging/node, empty axis, window out
        // of range...): the engine is the authority on the error — run
        // the study opaque and let it throw its own message.
    }
    return false;
}

/// One tech-override group: every member study shares this effective
/// actuary and cell table.
struct TechGroup {
    std::optional<core::ChipletActuary> patched;  ///< nullopt = base actuary
    CellTable table;
    /// FNV-1a of the canonical tech-override document — the group's
    /// identity inside a cross-study CellStore (the cell hash itself
    /// deliberately excludes tech identity; see explore/cell.h).
    std::uint64_t tech_hash = 0;
    bool failed = false;  ///< the override document does not apply
};

struct CompiledStudy {
    std::string canonical;
    std::uint64_t hash = 0;
    bool alias = false;        ///< byte-identical to an earlier spec
    std::size_t primary = 0;   ///< that spec's index, when alias
    bool cached = false;       ///< served by the StudyCache at compile time
    std::optional<StudyResult> cached_result;
    bool failed = false;       ///< tech overrides failed to apply
    std::exception_ptr error;
    std::size_t group = 0;     ///< TechGroup index, when !alias && !failed
    bool enumerable = false;
    std::uint64_t cell_refs = 0;
    std::uint64_t new_cells = 0;
};

struct CompiledBatch {
    std::vector<CompiledStudy> studies;  ///< slot per spec
    std::vector<TechGroup> groups;
    StudyGraphStats stats;
};

CompiledBatch compile(const core::ChipletActuary& actuary,
                      std::span<const StudySpec> specs, StudyCache* cache) {
    CompiledBatch batch;
    batch.studies.resize(specs.size());
    batch.stats.studies = specs.size();

    // Views into CompiledStudy::canonical; the studies vector is sized
    // up front, so the strings never move.
    std::unordered_map<std::string_view, std::size_t> by_canonical;
    std::unordered_map<std::string, std::size_t> group_ids;

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const StudySpec& spec = specs[i];
        CompiledStudy& cs = batch.studies[i];
        cs.canonical = canonical_spec_json(spec);
        cs.hash = fnv1a64(cs.canonical);

        // 1. Identical-spec dedup: byte equality of canonical forms is
        // spec equality, so the later spec is a pure copy of the
        // earlier one's result (name included — it is part of the spec).
        const auto [spec_it, first] = by_canonical.try_emplace(cs.canonical, i);
        if (!first) {
            cs.alias = true;
            cs.primary = spec_it->second;
            ++batch.stats.spec_dedups;
            continue;
        }

        // 2. Whole-result cache: a hit contributes no cells (and no
        // evaluation), exactly like the per-study cached path.
        if (cache != nullptr) {
            if (std::optional<StudyResult> hit =
                    cache->lookup(cs.canonical, cs.hash)) {
                cs.cached = true;
                cs.cached_result = std::move(hit);
                continue;
            }
        }

        // 3. Tech-override grouping: studies with the same canonical
        // override document share one patched actuary and cell table.
        const std::string group_key = canonicalize(spec.tech_overrides).dump();
        const auto [group_it, new_group] =
            group_ids.try_emplace(group_key, batch.groups.size());
        if (new_group) {
            batch.groups.emplace_back();
            TechGroup& group = batch.groups.back();
            group.tech_hash = fnv1a64(group_key);
            if (!spec.tech_overrides.is_null()) {
                try {
                    tech::TechLibrary lib = actuary.library();
                    tech::apply_overrides(lib, spec.tech_overrides,
                                          "study '" + spec.name + "': tech");
                    group.patched.emplace(std::move(lib),
                                          actuary.assumptions());
                } catch (const Error&) {
                    group.failed = true;
                }
            }
        }
        cs.group = group_it->second;
        TechGroup& group = batch.groups[cs.group];
        if (group.failed) {
            // Applying is deterministic over (library, overrides), but
            // the error message carries the study's name — re-apply
            // with this member's own context so the message matches an
            // independent run_study exactly.
            try {
                tech::TechLibrary lib = actuary.library();
                tech::apply_overrides(lib, spec.tech_overrides,
                                      "study '" + spec.name + "': tech");
                cs.error = std::make_exception_ptr(
                    Error("study '" + spec.name + "': tech overrides failed"));
            } catch (...) {
                cs.error = std::current_exception();
            }
            cs.failed = true;
            continue;
        }

        // 4. Cell enumeration + interning.
        const core::ChipletActuary& effective =
            group.patched ? *group.patched : actuary;
        std::vector<Cell> cells;
        if (enumerate_cells(effective, spec, cells)) {
            cs.enumerable = true;
            cs.cell_refs = cells.size();
            for (Cell& cell : cells) {
                if (group.table.intern(cell.eval, cell.system).inserted) {
                    ++cs.new_cells;
                }
            }
        }
    }

    batch.stats.tech_groups = batch.groups.size();
    for (const TechGroup& group : batch.groups) {
        batch.stats.unique_cells += group.table.size();
    }
    for (const CompiledStudy& cs : batch.studies) {
        batch.stats.cell_refs += cs.cell_refs;
    }
    batch.stats.deduped_cells =
        batch.stats.cell_refs - batch.stats.unique_cells;
    return batch;
}

}  // namespace

StudyPlan plan_studies(const core::ChipletActuary& actuary,
                       std::span<const StudySpec> specs,
                       const CellStore* cell_store) {
    const CompiledBatch batch = compile(actuary, specs, /*cache=*/nullptr);
    StudyPlan plan;
    plan.stats = batch.stats;
    if (cell_store != nullptr) {
        for (const TechGroup& group : batch.groups) {
            if (group.failed) continue;
            plan.stats.store_hits +=
                group.table.count_warm(*cell_store, group.tech_hash);
        }
        plan.stats.store_misses =
            plan.stats.unique_cells - plan.stats.store_hits;
    }
    plan.studies.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const CompiledStudy& cs = batch.studies[i];
        StudyPlanEntry entry;
        entry.index = i;
        entry.name = specs[i].name;
        entry.kind = specs[i].kind();
        entry.spec_hash = cs.hash;
        entry.duplicate_spec = cs.alias;
        entry.duplicate_of = cs.primary;
        entry.enumerable = cs.enumerable;
        entry.cell_refs = cs.cell_refs;
        entry.new_cells = cs.new_cells;
        plan.studies.push_back(std::move(entry));
    }
    return plan;
}

StudyGraphRun run_study_graph(const core::ChipletActuary& actuary,
                              std::span<const StudySpec> specs,
                              StudyCache* cache, CellStore* cell_store) {
    CompiledBatch batch = compile(actuary, specs, cache);

    // Phase 1: evaluate every group's unique cells, once, slot-ordered
    // on the global pool.  Groups run in first-appearance order; inside
    // a group the sweep is contiguous over the interned arrays.  A
    // cross-study store short-circuits cells earlier batches priced and
    // learns the ones this batch prices.
    for (TechGroup& group : batch.groups) {
        if (group.failed || group.table.size() == 0) continue;
        const core::ChipletActuary& effective =
            group.patched ? *group.patched : actuary;
        if (cell_store != nullptr) {
            const std::size_t warm =
                group.table.prefill_from(*cell_store, group.tech_hash);
            batch.stats.store_hits += warm;
            batch.stats.store_misses += group.table.size() - warm;
            group.table.evaluate_pending(effective);
            group.table.publish_to(*cell_store, group.tech_hash);
        } else {
            group.table.evaluate_all(effective);
        }
    }

    StudyGraphRun run;
    run.stats = batch.stats;
    run.results.resize(specs.size());
    run.errors.resize(specs.size());

    // Phase 2: per-study reductions.  Enumerable studies run their
    // ordinary engine against a private actuary copy carrying a memo
    // view of the group table — private, so hit/miss counters are exact
    // per study even when reductions fan out across the pool.
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const CompiledStudy& cs = batch.studies[i];
        if (cs.failed) {
            run.errors[i] = cs.error;
        } else if (!cs.alias && !cs.cached) {
            pending.push_back(i);
        }
    }
    const auto reduce_one = [&](std::size_t i) {
        const CompiledStudy& cs = batch.studies[i];
        const TechGroup& group = batch.groups[cs.group];
        const core::ChipletActuary& effective =
            group.patched ? *group.patched : actuary;
        try {
            if (cs.enumerable) {
                core::ChipletActuary local = effective;
                const CellMemoView memo(group.table);
                local.set_eval_memo(&memo);
                StudyResult result = run_study_on(local, specs[i]);
                result.run.cell_hits = memo.hits();
                result.run.cell_misses = memo.misses();
                run.results[i] = std::move(result);
            } else {
                run.results[i] = run_study_on(effective, specs[i]);
            }
        } catch (const ParseError&) {
            run.errors[i] = std::current_exception();
        } catch (const Error&) {
            run.errors[i] = std::current_exception();
        }
    };
    // Same fan-out policy as the historical run_studies: batches smaller
    // than the pool stay serial so the engines' inner loops (and the
    // cell sweep above) keep the pool busy instead.
    util::ThreadPool& pool = util::ThreadPool::global();
    if (pending.size() < pool.size()) {
        for (std::size_t i : pending) reduce_one(i);
    } else {
        pool.parallel_for(pending.size(),
                          [&](std::size_t k) { reduce_one(pending[k]); });
    }

    if (cache != nullptr) {
        for (std::size_t i : pending) {
            if (run.results[i]) {
                cache->insert(batch.studies[i].canonical, batch.studies[i].hash,
                              *run.results[i]);
            }
        }
    }

    // Phase 3: fan results out to cache hits and identical-spec aliases.
    for (std::size_t i = 0; i < specs.size(); ++i) {
        CompiledStudy& cs = batch.studies[i];
        if (cs.cached) {
            run.results[i] = std::move(cs.cached_result);
        } else if (cs.alias) {
            if (run.errors[cs.primary]) {
                run.errors[i] = run.errors[cs.primary];
            } else if (run.results[cs.primary]) {
                StudyResult copy = *run.results[cs.primary];
                copy.run.from_batch_dedup = true;
                run.results[i] = std::move(copy);
            }
        }
    }
    return run;
}

}  // namespace chiplet::explore
