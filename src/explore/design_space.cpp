#include "explore/design_space.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <map>
#include <utility>

#include "core/audit.h"
#include "design/partition.h"
#include "design/system.h"
#include "tech/tech_library.h"
#include "util/error.h"

namespace chiplet::explore {

namespace {

std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b) {
    CHIPLET_EXPECTS(a == 0 ||
                        b <= std::numeric_limits<std::uint64_t>::max() / a,
                    "design space too large: candidate count overflows");
    return a * b;
}

/// One contiguous index range sharing (packaging, chiplet count).  The
/// space is the concatenation of these blocks in enumeration order:
/// packagings in config order, counts in config order within each,
/// node assignments (lexicographic, chiplet 0 most significant) within
/// each count, quantities innermost.
struct Block {
    std::uint64_t base = 0;    ///< global index of the first candidate
    std::uint64_t combos = 1;  ///< node assignments in this block
    std::uint64_t size = 0;    ///< combos * |quantities|
    std::size_t packaging = 0;
    unsigned chiplets = 1;
    bool soc = false;
    std::size_t k_slot = 0;  ///< index into the per-count tables
};

/// Validated, immutable per-run state: block table plus per-chiplet-count
/// geometry tables so the pruning pass runs on plain array lookups.
class Space {
public:
    Space(const core::ChipletActuary& actuary, const DesignSpaceConfig& config)
        : config_(config), lib_(actuary.library()) {
        CHIPLET_EXPECTS(!config.packagings.empty(), "no packagings to explore");
        CHIPLET_EXPECTS(!config.nodes.empty(), "no candidate nodes to explore");
        CHIPLET_EXPECTS(!config.quantities.empty(), "no quantities to explore");
        CHIPLET_EXPECTS(!config.chiplet_counts.empty(),
                        "no chiplet counts to explore");
        for (unsigned k : config.chiplet_counts) {
            CHIPLET_EXPECTS(k > 0, "chiplet counts must be >= 1");
        }
        for (double q : config.quantities) {
            CHIPLET_EXPECTS(q > 0.0, "production quantities must be positive");
        }
        CHIPLET_EXPECTS(config.d2d_fraction >= 0.0 && config.d2d_fraction < 1.0,
                        "D2D fraction must lie in [0, 1)");
        modules_mode_ = !config.modules.empty();
        if (!modules_mode_) {
            CHIPLET_EXPECTS(config.module_area_mm2 > 0.0,
                            "module area must be positive");
        }
        reference_node_ = config.reference_node.empty() ? config.nodes.front()
                                                        : config.reference_node;
        node_refs_.reserve(config.nodes.size());
        for (const std::string& name : config.nodes) {
            node_refs_.push_back(&lib_.node(name));  // throws on unknown names
        }
        (void)lib_.node(reference_node_);  // validate before enumerating

        // ---- block table -----------------------------------------------------
        std::map<unsigned, std::size_t> k_slots;
        std::uint64_t base = 0;
        for (std::size_t p = 0; p < config.packagings.size(); ++p) {
            const bool soc = lib_.packaging(config.packagings[p]).type ==
                             tech::IntegrationType::soc;
            std::vector<unsigned> counts;
            if (soc) {
                counts = {1};  // one monolithic reference per node/quantity
            } else {
                for (unsigned k : config.chiplet_counts) {
                    if (modules_mode_ && k > config.modules.size()) continue;
                    counts.push_back(k);
                }
            }
            for (unsigned k : counts) {
                Block block;
                block.base = base;
                block.packaging = p;
                block.chiplets = k;
                block.soc = soc;
                block.combos = 1;
                const std::uint64_t digits =
                    (config.uniform_nodes || k == 1) ? 1 : k;
                for (std::uint64_t d = 0; d < digits; ++d) {
                    block.combos = checked_mul(block.combos, config.nodes.size());
                }
                block.size = checked_mul(block.combos, config.quantities.size());
                block.k_slot = k_slot(k, k_slots);
                base = block.base + block.size;  // checked_mul bounded both terms
                CHIPLET_EXPECTS(base >= block.base,
                                "design space too large: candidate count overflows");
                blocks_.push_back(block);
            }
        }
        total_ = base;
        CHIPLET_EXPECTS(total_ > 0, "design space is empty");
    }

    [[nodiscard]] std::uint64_t size() const { return total_; }

    struct Coords {
        const Block* block = nullptr;
        std::uint64_t combo = 0;
        std::size_t quantity = 0;
    };

    [[nodiscard]] Coords locate(std::uint64_t index) const {
        const auto it = std::upper_bound(
            blocks_.begin(), blocks_.end(), index,
            [](std::uint64_t i, const Block& b) { return i < b.base; });
        const Block& block = *std::prev(it);
        const std::uint64_t offset = index - block.base;
        Coords coords;
        coords.block = &block;
        coords.combo = offset / config_.quantities.size();
        coords.quantity = static_cast<std::size_t>(
            offset % config_.quantities.size());
        return coords;
    }

    /// Node index per chiplet for the coords' assignment ordinal.
    void node_indices(const Coords& coords, std::vector<std::size_t>& out) const {
        const unsigned k = coords.block->chiplets;
        out.resize(k);
        if (config_.uniform_nodes || k == 1) {
            std::fill(out.begin(), out.end(),
                      static_cast<std::size_t>(coords.combo));
            return;
        }
        std::uint64_t c = coords.combo;
        for (unsigned i = k; i-- > 0;) {
            out[i] = static_cast<std::size_t>(c % config_.nodes.size());
            c /= config_.nodes.size();
        }
    }

    /// Final die areas (incl. D2D allowance) from the precomputed module
    /// areas — the pruning pass never touches the cost engines.
    void die_areas(const Coords& coords, const std::vector<std::size_t>& nodes,
                   std::vector<double>& out) const {
        const PerCount& pk = per_count_[coords.block->k_slot];
        const double divisor =
            coords.block->soc ? 1.0 : 1.0 - config_.d2d_fraction;
        out.resize(nodes.size());
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            out[i] = pk.module_area[i][nodes[i]] / divisor;
        }
    }

    [[nodiscard]] DesignCandidate candidate(
        std::uint64_t index, const Coords& coords,
        const std::vector<std::size_t>& nodes,
        const std::vector<double>& areas) const {
        DesignCandidate c;
        c.index = index;
        c.packaging = config_.packagings[coords.block->packaging];
        c.chiplets = coords.block->chiplets;
        c.nodes.reserve(nodes.size());
        for (std::size_t n : nodes) c.nodes.push_back(config_.nodes[n]);
        c.die_areas_mm2 = areas;
        c.quantity = config_.quantities[coords.quantity];
        return c;
    }

    [[nodiscard]] design::System build_system(
        const Coords& coords, const std::vector<std::size_t>& nodes) const {
        const Block& block = *coords.block;
        const PerCount& pk = per_count_[block.k_slot];
        const double d2d = block.soc ? 0.0 : config_.d2d_fraction;
        std::vector<std::string> node_names;
        node_names.reserve(nodes.size());
        for (std::size_t n : nodes) node_names.push_back(config_.nodes[n]);
        std::vector<design::ChipPlacement> chips;
        chips.reserve(block.chiplets);
        for (design::Chip& chip :
             design::chips_from_partition(pk.partition, "ds", node_names, d2d)) {
            chips.push_back({std::move(chip), 1});
        }
        return design::System("ds", config_.packagings[block.packaging],
                              std::move(chips),
                              config_.quantities[coords.quantity]);
    }

private:
    /// Per-chiplet-count geometry shared by every block with that count:
    /// the k-way partition (balanced bins of the user's modules, or one
    /// synthetic equal-area slice per bin) and precomputed module areas.
    struct PerCount {
        design::Partition partition;
        /// module_area[chiplet][node index]: chiplet module area at that
        /// node, same arithmetic Chip::module_area performs at
        /// evaluation time.
        std::vector<std::vector<double>> module_area;
    };

    std::size_t k_slot(unsigned k, std::map<unsigned, std::size_t>& slots) {
        const auto it = slots.find(k);
        if (it != slots.end()) return it->second;

        PerCount pk;
        if (modules_mode_) {
            pk.partition = design::partition_modules(config_.modules, k);
        } else {
            // Equal-area split: one synthetic slice per bin, specified at
            // the reference node; names are unique per slice so family
            // NRE counts each slice's design once (split_homogeneous
            // semantics).
            const double slice =
                config_.module_area_mm2 / static_cast<double>(k);
            for (unsigned i = 1; i <= k; ++i) {
                const std::string name = "ds_" + std::to_string(i) + "of" +
                                         std::to_string(k) + "_logic";
                pk.partition.bins.push_back(
                    {design::Module{name, slice, reference_node_, true}});
            }
        }
        pk.module_area.resize(k);
        for (unsigned bin = 0; bin < k; ++bin) {
            pk.module_area[bin].reserve(node_refs_.size());
            for (const tech::ProcessNode* node : node_refs_) {
                double total = 0.0;
                for (const design::Module& m : pk.partition.bins[bin]) {
                    total += node->retarget_area(m.area_mm2, lib_.node(m.node),
                                                 m.scalable);
                }
                pk.module_area[bin].push_back(total);
            }
        }
        per_count_.push_back(std::move(pk));
        slots.emplace(k, per_count_.size() - 1);
        return per_count_.size() - 1;
    }

    const DesignSpaceConfig& config_;
    const tech::TechLibrary& lib_;
    bool modules_mode_ = false;
    std::string reference_node_;
    std::vector<const tech::ProcessNode*> node_refs_;
    std::vector<Block> blocks_;
    std::vector<PerCount> per_count_;
    std::uint64_t total_ = 0;
};

/// Strict weak order of the ranking: cheaper first, enumeration order on
/// exact ties — the invariant that makes the bounded heap reproduce a
/// full sort of the whole space.
bool cheaper(const DesignCandidate& a, const DesignCandidate& b) {
    const double ta = a.total_per_unit();
    const double tb = b.total_per_unit();
    if (ta != tb) return ta < tb;
    return a.index < b.index;
}

}  // namespace

std::uint64_t design_space_size(const core::ChipletActuary& actuary,
                                const DesignSpaceConfig& config) {
    return Space(actuary, config).size();
}

DesignSpaceResult explore_design_space(const core::ChipletActuary& actuary,
                                       const DesignSpaceConfig& config) {
    const Space space(actuary, config);
    const std::size_t chunk = std::max<std::size_t>(1, config.chunk);
    const std::size_t keep = config.top_k == 0
                                 ? std::numeric_limits<std::size_t>::max()
                                 : config.top_k;
    const core::AuditConfig audit{.reticle = config.reticle};

    // Enumeration window: a dispatcher shard scans [begin, end) of the
    // flat index space; the default (0, 0) is the whole space.
    const std::uint64_t begin = config.index_begin;
    const std::uint64_t end = config.index_end == 0 ? space.size()
                                                    : config.index_end;
    CHIPLET_EXPECTS(end <= space.size(),
                    "design space index_end is outside the space");
    CHIPLET_EXPECTS(begin <= end,
                    "design space index_begin exceeds index_end");

    DesignSpaceResult out;
    out.total_candidates = end - begin;
    out.windowed = config.index_begin > 0 || config.index_end > 0;

    // `kept` is a max-heap under `cheaper`: the worst retained candidate
    // sits on top and is evicted when a better one arrives.  Candidates
    // are folded in strictly ascending index order (chunks are evaluated
    // on the pool but consumed serially), so the heap's content — and
    // therefore the final ranking — is independent of the pool size.
    std::vector<DesignCandidate> kept;
    std::vector<design::System> systems;
    std::vector<DesignCandidate> pending;
    systems.reserve(chunk);
    pending.reserve(chunk);

    const auto fold = [&](DesignCandidate&& c) {
        if (kept.size() < keep) {
            kept.push_back(std::move(c));
            std::push_heap(kept.begin(), kept.end(), cheaper);
        } else if (cheaper(c, kept.front())) {
            std::pop_heap(kept.begin(), kept.end(), cheaper);
            kept.back() = std::move(c);
            std::push_heap(kept.begin(), kept.end(), cheaper);
        }
    };
    const auto flush = [&] {
        if (systems.empty()) return;
        const std::vector<core::SystemCost> costs =
            actuary.evaluate_batch(systems);
        for (std::size_t i = 0; i < costs.size(); ++i) {
            pending[i].re_per_unit = costs[i].re.total();
            pending[i].nre_per_unit = costs[i].nre.total();
            fold(std::move(pending[i]));
        }
        systems.clear();
        pending.clear();
    };

    std::vector<std::size_t> node_idx;
    std::vector<double> areas;
    for (std::uint64_t index = begin; index < end; ++index) {
        const Space::Coords coords = space.locate(index);
        space.node_indices(coords, node_idx);
        space.die_areas(coords, node_idx, areas);
        if (config.prune) {
            const bool oversized =
                config.max_die_area_mm2 > 0.0 &&
                std::any_of(areas.begin(), areas.end(), [&](double a) {
                    return a > config.max_die_area_mm2;
                });
            if (oversized || !core::audit_dies_feasible(areas, audit)) {
                ++out.pruned;
                continue;
            }
        }
        pending.push_back(space.candidate(index, coords, node_idx, areas));
        systems.push_back(space.build_system(coords, node_idx));
        if (systems.size() >= chunk) flush();
    }
    flush();

    out.evaluated = out.total_candidates - out.pruned;
    std::sort(kept.begin(), kept.end(), cheaper);
    out.best = std::move(kept);
    return out;
}

std::optional<std::vector<design::System>> design_space_systems(
    const core::ChipletActuary& actuary, const DesignSpaceConfig& config,
    std::size_t max_systems) {
    const Space space(actuary, config);
    const core::AuditConfig audit{.reticle = config.reticle};
    const std::uint64_t begin = config.index_begin;
    const std::uint64_t end = config.index_end == 0 ? space.size()
                                                    : config.index_end;
    CHIPLET_EXPECTS(end <= space.size(),
                    "design space index_end is outside the space");
    CHIPLET_EXPECTS(begin <= end,
                    "design space index_begin exceeds index_end");

    std::vector<design::System> out;
    std::vector<std::size_t> node_idx;
    std::vector<double> areas;
    for (std::uint64_t index = begin; index < end; ++index) {
        const Space::Coords coords = space.locate(index);
        space.node_indices(coords, node_idx);
        space.die_areas(coords, node_idx, areas);
        if (config.prune) {
            const bool oversized =
                config.max_die_area_mm2 > 0.0 &&
                std::any_of(areas.begin(), areas.end(), [&](double a) {
                    return a > config.max_die_area_mm2;
                });
            if (oversized || !core::audit_dies_feasible(areas, audit)) continue;
        }
        if (out.size() >= max_systems) return std::nullopt;
        out.push_back(space.build_system(coords, node_idx));
    }
    return out;
}

design::System design_space_candidate_system(const core::ChipletActuary& actuary,
                                             const DesignSpaceConfig& config,
                                             std::uint64_t index) {
    const Space space(actuary, config);
    CHIPLET_EXPECTS(index < space.size(),
                    "candidate index outside the design space");
    const Space::Coords coords = space.locate(index);
    std::vector<std::size_t> node_idx;
    space.node_indices(coords, node_idx);
    return space.build_system(coords, node_idx);
}

}  // namespace chiplet::explore
