#include "explore/design_space.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <map>
#include <optional>
#include <utility>

#include "core/audit.h"
#include "design/partition.h"
#include "design/system.h"
#include "kernels/die_batch.h"
#include "kernels/kernels.h"
#include "tech/tech_library.h"
#include "util/error.h"
#include "util/thread_pool.h"
#include "wafer/reticle.h"
#include "wafer/wafer_spec.h"
#include "yield/composite.h"
#include "yield/models.h"

namespace chiplet::explore {

namespace {

std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b) {
    CHIPLET_EXPECTS(a == 0 ||
                        b <= std::numeric_limits<std::uint64_t>::max() / a,
                    "design space too large: candidate count overflows");
    return a * b;
}

/// One contiguous index range sharing (packaging, chiplet count).  The
/// space is the concatenation of these blocks in enumeration order:
/// packagings in config order, counts in config order within each,
/// node assignments (lexicographic, chiplet 0 most significant) within
/// each count, quantities innermost.
struct Block {
    std::uint64_t base = 0;    ///< global index of the first candidate
    std::uint64_t combos = 1;  ///< node assignments in this block
    std::uint64_t size = 0;    ///< combos * |quantities|
    std::size_t packaging = 0;
    unsigned chiplets = 1;
    bool soc = false;
    std::size_t k_slot = 0;  ///< index into the per-count tables
};

/// Validated, immutable per-run state: block table plus per-chiplet-count
/// geometry tables so the pruning pass runs on plain array lookups.
class Space {
public:
    Space(const core::ChipletActuary& actuary, const DesignSpaceConfig& config)
        : config_(config), lib_(actuary.library()) {
        CHIPLET_EXPECTS(!config.packagings.empty(), "no packagings to explore");
        CHIPLET_EXPECTS(!config.nodes.empty(), "no candidate nodes to explore");
        CHIPLET_EXPECTS(!config.quantities.empty(), "no quantities to explore");
        CHIPLET_EXPECTS(!config.chiplet_counts.empty(),
                        "no chiplet counts to explore");
        for (unsigned k : config.chiplet_counts) {
            CHIPLET_EXPECTS(k > 0, "chiplet counts must be >= 1");
        }
        for (double q : config.quantities) {
            CHIPLET_EXPECTS(q > 0.0, "production quantities must be positive");
        }
        CHIPLET_EXPECTS(config.d2d_fraction >= 0.0 && config.d2d_fraction < 1.0,
                        "D2D fraction must lie in [0, 1)");
        modules_mode_ = !config.modules.empty();
        if (!modules_mode_) {
            CHIPLET_EXPECTS(config.module_area_mm2 > 0.0,
                            "module area must be positive");
        }
        reference_node_ = config.reference_node.empty() ? config.nodes.front()
                                                        : config.reference_node;
        node_refs_.reserve(config.nodes.size());
        for (const std::string& name : config.nodes) {
            node_refs_.push_back(&lib_.node(name));  // throws on unknown names
        }
        (void)lib_.node(reference_node_);  // validate before enumerating

        // ---- block table -----------------------------------------------------
        std::map<unsigned, std::size_t> k_slots;
        std::uint64_t base = 0;
        for (std::size_t p = 0; p < config.packagings.size(); ++p) {
            const bool soc = lib_.packaging(config.packagings[p]).type ==
                             tech::IntegrationType::soc;
            std::vector<unsigned> counts;
            if (soc) {
                counts = {1};  // one monolithic reference per node/quantity
            } else {
                for (unsigned k : config.chiplet_counts) {
                    if (modules_mode_ && k > config.modules.size()) continue;
                    counts.push_back(k);
                }
            }
            for (unsigned k : counts) {
                Block block;
                block.base = base;
                block.packaging = p;
                block.chiplets = k;
                block.soc = soc;
                block.combos = 1;
                const std::uint64_t digits =
                    (config.uniform_nodes || k == 1) ? 1 : k;
                for (std::uint64_t d = 0; d < digits; ++d) {
                    block.combos = checked_mul(block.combos, config.nodes.size());
                }
                block.size = checked_mul(block.combos, config.quantities.size());
                block.k_slot = k_slot(k, k_slots);
                base = block.base + block.size;  // checked_mul bounded both terms
                CHIPLET_EXPECTS(base >= block.base,
                                "design space too large: candidate count overflows");
                blocks_.push_back(block);
            }
        }
        total_ = base;
        CHIPLET_EXPECTS(total_ > 0, "design space is empty");
    }

    [[nodiscard]] std::uint64_t size() const { return total_; }

    struct Coords {
        const Block* block = nullptr;
        std::uint64_t combo = 0;
        std::size_t quantity = 0;
    };

    [[nodiscard]] Coords locate(std::uint64_t index) const {
        const auto it = std::upper_bound(
            blocks_.begin(), blocks_.end(), index,
            [](std::uint64_t i, const Block& b) { return i < b.base; });
        const Block& block = *std::prev(it);
        const std::uint64_t offset = index - block.base;
        Coords coords;
        coords.block = &block;
        coords.combo = offset / config_.quantities.size();
        coords.quantity = static_cast<std::size_t>(
            offset % config_.quantities.size());
        return coords;
    }

    /// Node index per chiplet for the coords' assignment ordinal.
    void node_indices(const Coords& coords, std::vector<std::size_t>& out) const {
        const unsigned k = coords.block->chiplets;
        out.resize(k);
        if (config_.uniform_nodes || k == 1) {
            std::fill(out.begin(), out.end(),
                      static_cast<std::size_t>(coords.combo));
            return;
        }
        std::uint64_t c = coords.combo;
        for (unsigned i = k; i-- > 0;) {
            out[i] = static_cast<std::size_t>(c % config_.nodes.size());
            c /= config_.nodes.size();
        }
    }

    /// Final die areas (incl. D2D allowance) from the precomputed module
    /// areas — the pruning pass never touches the cost engines.
    void die_areas(const Coords& coords, const std::vector<std::size_t>& nodes,
                   std::vector<double>& out) const {
        const PerCount& pk = per_count_[coords.block->k_slot];
        const double divisor =
            coords.block->soc ? 1.0 : 1.0 - config_.d2d_fraction;
        out.resize(nodes.size());
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            out[i] = pk.module_area[i][nodes[i]] / divisor;
        }
    }

    [[nodiscard]] DesignCandidate candidate(
        std::uint64_t index, const Coords& coords,
        const std::vector<std::size_t>& nodes,
        const std::vector<double>& areas) const {
        DesignCandidate c;
        c.index = index;
        c.packaging = config_.packagings[coords.block->packaging];
        c.chiplets = coords.block->chiplets;
        c.nodes.reserve(nodes.size());
        for (std::size_t n : nodes) c.nodes.push_back(config_.nodes[n]);
        c.die_areas_mm2 = areas;
        c.quantity = config_.quantities[coords.quantity];
        return c;
    }

    [[nodiscard]] design::System build_system(
        const Coords& coords, const std::vector<std::size_t>& nodes) const {
        const Block& block = *coords.block;
        const PerCount& pk = per_count_[block.k_slot];
        const double d2d = block.soc ? 0.0 : config_.d2d_fraction;
        std::vector<std::string> node_names;
        node_names.reserve(nodes.size());
        for (std::size_t n : nodes) node_names.push_back(config_.nodes[n]);
        std::vector<design::ChipPlacement> chips;
        chips.reserve(block.chiplets);
        for (design::Chip& chip :
             design::chips_from_partition(pk.partition, "ds", node_names, d2d)) {
            chips.push_back({std::move(chip), 1});
        }
        return design::System("ds", config_.packagings[block.packaging],
                              std::move(chips),
                              config_.quantities[coords.quantity]);
    }

    // ---- kernel fast-path surface ---------------------------------------
    [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }
    [[nodiscard]] const DesignSpaceConfig& config() const { return config_; }
    [[nodiscard]] const tech::TechLibrary& lib() const { return lib_; }
    [[nodiscard]] const std::vector<const tech::ProcessNode*>& node_refs()
        const {
        return node_refs_;
    }
    /// module_area[chiplet][node index] table of one chiplet count.
    [[nodiscard]] const std::vector<std::vector<double>>& module_areas(
        std::size_t k_slot) const {
        return per_count_[k_slot].module_area;
    }

private:
    /// Per-chiplet-count geometry shared by every block with that count:
    /// the k-way partition (balanced bins of the user's modules, or one
    /// synthetic equal-area slice per bin) and precomputed module areas.
    struct PerCount {
        design::Partition partition;
        /// module_area[chiplet][node index]: chiplet module area at that
        /// node, same arithmetic Chip::module_area performs at
        /// evaluation time.
        std::vector<std::vector<double>> module_area;
    };

    std::size_t k_slot(unsigned k, std::map<unsigned, std::size_t>& slots) {
        const auto it = slots.find(k);
        if (it != slots.end()) return it->second;

        PerCount pk;
        if (modules_mode_) {
            pk.partition = design::partition_modules(config_.modules, k);
        } else {
            // Equal-area split: one synthetic slice per bin, specified at
            // the reference node; names are unique per slice so family
            // NRE counts each slice's design once (split_homogeneous
            // semantics).
            const double slice =
                config_.module_area_mm2 / static_cast<double>(k);
            for (unsigned i = 1; i <= k; ++i) {
                const std::string name = "ds_" + std::to_string(i) + "of" +
                                         std::to_string(k) + "_logic";
                pk.partition.bins.push_back(
                    {design::Module{name, slice, reference_node_, true}});
            }
        }
        pk.module_area.resize(k);
        for (unsigned bin = 0; bin < k; ++bin) {
            pk.module_area[bin].reserve(node_refs_.size());
            for (const tech::ProcessNode* node : node_refs_) {
                double total = 0.0;
                for (const design::Module& m : pk.partition.bins[bin]) {
                    total += node->retarget_area(m.area_mm2, lib_.node(m.node),
                                                 m.scalable);
                }
                pk.module_area[bin].push_back(total);
            }
        }
        per_count_.push_back(std::move(pk));
        slots.emplace(k, per_count_.size() - 1);
        return per_count_.size() - 1;
    }

    const DesignSpaceConfig& config_;
    const tech::TechLibrary& lib_;
    bool modules_mode_ = false;
    std::string reference_node_;
    std::vector<const tech::ProcessNode*> node_refs_;
    std::vector<Block> blocks_;
    std::vector<PerCount> per_count_;
    std::uint64_t total_ = 0;
};

/// Strict weak order of the ranking: cheaper first, enumeration order on
/// exact ties — the invariant that makes the bounded heap reproduce a
/// full sort of the whole space.
bool cheaper(const DesignCandidate& a, const DesignCandidate& b) {
    const double ta = a.total_per_unit();
    const double tb = b.total_per_unit();
    if (ta != tb) return ta < tb;
    return a.index < b.index;
}

// ---- kernel fast path --------------------------------------------------
//
// explore_design_space_kernel runs the scan entirely on the SoA kernels:
// per block it hoists everything a candidate cannot change — die
// economics per (chiplet, node) cell, the Eq. 4 package scalars, the
// amortised NRE share tables — then decodes candidate waves, gathers
// their per-candidate terms into contiguous arrays, prices interposers
// and folds Eq. 3-5 with the active kernel table, and streams rows into
// the same bounded heap the reference keeps.  Every double is produced
// by either (a) a kernel bound by the bit-identity policy, (b) the very
// helper the scalar engine calls (yield::repeated_yield, scrap_factor,
// wafer::stitched_yield), or (c) a literal transcription of the scalar
// expression with only candidate-invariant subterms hoisted — so the
// result matches explore_design_space_reference bit for bit.
//
// Fallback contract: this path never raises a model diagnostic of its
// own.  Any situation where the scalar engine would throw (die or
// interposer does not fit, invalid node/yield parameters, degenerate
// assembly yields, zero-area prune probes) — and any throw from the
// helpers above — returns nullopt instead, and explore_design_space
// replays the whole space on the reference path, which raises the
// canonical error at the canonical (lowest) candidate index, or
// completes cleanly when the offending block was entirely pruned.

/// Economics of one (chiplet bin, node) die of a block, priced once.
struct DieCell {
    double area = 0.0;  ///< final die area incl. D2D share (Chip::area)
    bool fit = false;   ///< priced by the batch; false = scalar diagnoses
    // Planar / top-of-stack economics (price_die + kgd split).
    double raw = 0.0;
    double kgd = 0.0;
    double defect = 0.0;
    // Lower-die-in-stack economics: raw + tsv_cost * area, re-split.
    double raw_tsv = 0.0;
    double kgd_tsv = 0.0;
    double defect_tsv = 0.0;
    double chip_nre = 0.0;  ///< NreModel::chip_design_cost of this cell
};

/// Everything one block's candidates share, hoisted with the scalar
/// engine's own arithmetic (see build_block_ctx).
struct BlockCtx {
    unsigned k = 1;          ///< chiplets (== dies; placements count 1)
    std::size_t kd = 1;      ///< node digits (1 when uniform or k == 1)
    std::size_t n_nodes = 1;
    std::size_t nq = 1;
    std::vector<DieCell> cells;  ///< [bin * n_nodes + node]

    // Eq. 4 package scalars (ReModel::evaluate hoists).
    bool stacked = false;
    bool has_interposer = false;
    bool chip_first = false;
    bool stitching = false;
    double paf = 0.0;        ///< package_area_factor
    double sub_cost = 0.0;   ///< substrate_cost_per_mm2
    double layer = 0.0;      ///< substrate_layer_factor
    double bond_and_test = 0.0;
    double y2n = 0.0;
    double y3 = 0.0;
    double scrap_y2n_y3 = 0.0;
    double inv_y3_minus_1 = 0.0;
    double iaf = 0.0;  ///< interposer_area_factor
    double stitch_yield = 0.0;
    wafer::ReticleSpec stitch_reticle;

    // Interposer process setup (the DieBatch per-node hoist, inline,
    // because interposer areas vary per candidate).
    double i_usable_radius = 0.0;
    double i_scribe = 0.0;
    double i_price = 0.0;
    double i_extra = 0.0;  ///< bump + sort-test rate
    double i_bump = 0.0;   ///< second bump side (scale_add)
    double i_defects = 0.0;
    double i_param = 0.0;
    kernels::YieldKind i_kind = kernels::YieldKind::poisson;

    // Amortised NRE share tables (NreModel::evaluate for a one-member
    // family; shares are candidate-invariant given (cell, quantity)).
    double kp_paf = 0.0;     ///< package_nre_per_mm2 * package_area_factor
    double pkg_fixed = 0.0;  ///< package_fixed_nre_usd
    double pkg_imask = 0.0;  ///< interposer node mask set (added when present)
    std::vector<double> mod_share;   ///< [qi]: folded unique-module shares
    std::vector<double> chip_share;  ///< [(bin*n_nodes+node)*nq + qi]
    bool d2d = false;                ///< multi-die with d2d_fraction > 0
    std::vector<double> d2d_share;   ///< [(node*k + (cnt-1))*nq + qi]
};

/// Hoists one block.  Throws whenever anything the scalar engine would
/// diagnose per candidate fails here instead — the caller catches and
/// falls back wholesale, letting the reference path decide whether (and
/// where) the error actually surfaces.
BlockCtx build_block_ctx(const Space& space, const Block& block,
                         const core::ChipletActuary& actuary,
                         const kernels::KernelTable& table) {
    const DesignSpaceConfig& config = space.config();
    const tech::TechLibrary& lib = space.lib();
    const core::Assumptions& assumptions = actuary.assumptions();
    const tech::PackagingTech& pkg =
        lib.packaging(config.packagings[block.packaging]);

    BlockCtx ctx;
    ctx.k = block.chiplets;
    ctx.kd = (config.uniform_nodes || block.chiplets == 1) ? 1 : block.chiplets;
    ctx.n_nodes = config.nodes.size();
    ctx.nq = config.quantities.size();

    ctx.stacked = pkg.stacked();
    ctx.has_interposer = pkg.has_interposer();
    ctx.chip_first = assumptions.flow == tech::PackagingFlow::chip_first;
    ctx.paf = pkg.package_area_factor;
    ctx.sub_cost = pkg.substrate_cost_per_mm2;
    ctx.layer = pkg.substrate_layer_factor;
    // system.die_count() is k: every placement carries count 1.
    const double n_dies = static_cast<double>(block.chiplets);
    ctx.bond_and_test = pkg.bond_cost_per_chip_usd * n_dies +
                        pkg.package_test_cost_usd + pkg.package_base_cost_usd;
    const unsigned bond_steps =
        ctx.stacked ? block.chiplets - 1 : block.chiplets;
    ctx.y2n = yield::repeated_yield(pkg.chip_bond_yield, bond_steps);
    ctx.y3 = pkg.substrate_bond_yield;
    ctx.scrap_y2n_y3 = yield::scrap_factor(ctx.y2n * ctx.y3);
    ctx.inv_y3_minus_1 = 1.0 / ctx.y3 - 1.0;
    ctx.stitching = assumptions.apply_reticle_stitching &&
                    pkg.type == tech::IntegrationType::interposer;
    ctx.stitch_yield = assumptions.stitch_yield;
    ctx.stitch_reticle = assumptions.reticle;

    if (ctx.has_interposer) {
        ctx.iaf = pkg.interposer_area_factor;
        const tech::ProcessNode& inode = lib.node(pkg.interposer_node);
        const wafer::WaferSpec spec = inode.wafer_spec();
        spec.validate();
        const auto model =
            yield::make_yield_model(assumptions.yield_model, inode.cluster_param);
        (void)model->yield(inode.defect_density_cm2, 0.0);  // domain check
        ctx.i_usable_radius = spec.usable_radius_mm();
        ctx.i_scribe = spec.scribe_width_mm;
        ctx.i_price = spec.price_usd;
        ctx.i_extra = inode.bump_cost_per_mm2 + inode.test_cost_per_mm2;
        ctx.i_bump = inode.bump_cost_per_mm2;
        ctx.i_defects = inode.defect_density_cm2;
        ctx.i_param = inode.cluster_param;
        ctx.i_kind = kernels::yield_kind_from_name(assumptions.yield_model);
        ctx.pkg_imask = inode.mask_set_cost_usd;
    }

    // ---- die cells: k * |nodes| prices for the whole block ---------------
    const std::vector<std::vector<double>>& marea =
        space.module_areas(block.k_slot);
    const double divisor = block.soc ? 1.0 : 1.0 - config.d2d_fraction;
    const std::vector<const tech::ProcessNode*>& nodes = space.node_refs();
    ctx.cells.resize(static_cast<std::size_t>(ctx.k) * ctx.n_nodes);
    kernels::DieBatch dies(assumptions.yield_model);
    for (unsigned bin = 0; bin < ctx.k; ++bin) {
        for (std::size_t n = 0; n < ctx.n_nodes; ++n) {
            dies.add(*nodes[n], marea[bin][n] / divisor);
        }
    }
    dies.evaluate(table);
    for (unsigned bin = 0; bin < ctx.k; ++bin) {
        for (std::size_t n = 0; n < ctx.n_nodes; ++n) {
            DieCell& cell = ctx.cells[bin * ctx.n_nodes + n];
            cell.area = marea[bin][n] / divisor;
            if (const auto priced = dies.find(*nodes[n], cell.area)) {
                cell.fit = true;
                cell.raw = priced->raw_usd;
                cell.kgd = cell.raw / priced->yield;
                cell.defect = cell.kgd - cell.raw;
                if (ctx.stacked) {
                    // Lower dies in a stack: tsv_total / n with count 1
                    // is exactly + tsv_cost * area.
                    cell.raw_tsv =
                        cell.raw + pkg.tsv_cost_per_mm2 * cell.area;
                    cell.kgd_tsv = cell.raw_tsv / priced->yield;
                    cell.defect_tsv = cell.kgd_tsv - cell.raw_tsv;
                }
            }
            cell.chip_nre = nodes[n]->chip_nre_per_mm2 * cell.area +
                            nodes[n]->fixed_chip_nre_usd();
        }
    }

    // ---- NRE share tables -------------------------------------------------
    // A representative system (combo 0, first quantity) carries the
    // block's exact module/chip identity — the partition, module names
    // and module costs are combo-invariant.  Building it through the
    // same SystemFamily the engine uses validates consistency and gives
    // the canonical unique_modules() ordering for the fold.
    Space::Coords rep_coords;
    rep_coords.block = &block;
    rep_coords.combo = 0;
    rep_coords.quantity = 0;
    std::vector<std::size_t> rep_nodes;
    space.node_indices(rep_coords, rep_nodes);
    design::SystemFamily rep;
    rep.add(space.build_system(rep_coords, rep_nodes));
    const design::System& rep_system = rep.systems().front();

    ctx.mod_share.assign(ctx.nq, 0.0);
    for (const design::Module& m : rep.unique_modules()) {
        // module_design_cost uses the module's ORIGINAL node and area.
        const double cost = lib.node(m.node).module_nre_per_mm2 * m.area_mm2;
        double inst = 0.0;
        for (const design::ChipPlacement& p : rep_system.placements()) {
            for (const design::Module& cm : p.chip.modules()) {
                if (cm.name == m.name) inst += p.count;
            }
        }
        for (std::size_t qi = 0; qi < ctx.nq; ++qi) {
            // amortised_share: design_cost * instances / total_uses,
            // total_uses = 0.0 + quantity * instances (exact).
            const double uses = config.quantities[qi] * inst;
            ctx.mod_share[qi] += cost * inst / uses;
        }
    }

    // Chip shares: instances is exactly 1.0, so the amortised share
    // (cost * 1.0) / (0.0 + q * 1.0) is bitwise cost / q.
    ctx.chip_share.resize(ctx.cells.size() * ctx.nq);
    for (std::size_t c = 0; c < ctx.cells.size(); ++c) {
        for (std::size_t qi = 0; qi < ctx.nq; ++qi) {
            ctx.chip_share[c * ctx.nq + qi] =
                ctx.cells[c].chip_nre / config.quantities[qi];
        }
    }

    ctx.kp_paf = pkg.package_nre_per_mm2 * pkg.package_area_factor;
    ctx.pkg_fixed = pkg.package_fixed_nre_usd;

    // D2D interface shares: one design per distinct node with
    // d2d_fraction > 0; cnt bins at that node give instances == cnt and
    // total_uses == q * cnt (both exact integer sums).
    ctx.d2d = !block.soc && config.d2d_fraction > 0.0;
    if (ctx.d2d) {
        ctx.d2d_share.resize(ctx.n_nodes * ctx.k * ctx.nq);
        for (std::size_t n = 0; n < ctx.n_nodes; ++n) {
            const double cost = nodes[n]->d2d_nre_usd;
            for (unsigned cnt = 1; cnt <= ctx.k; ++cnt) {
                const double inst = static_cast<double>(cnt);
                for (std::size_t qi = 0; qi < ctx.nq; ++qi) {
                    const double uses = config.quantities[qi] * inst;
                    ctx.d2d_share[(n * ctx.k + (cnt - 1)) * ctx.nq + qi] =
                        cost * inst / uses;
                }
            }
        }
    }
    return ctx;
}

/// The SoA scan.  Returns nullopt whenever the space needs the scalar
/// engine (see the fallback contract above).
std::optional<DesignSpaceResult> explore_design_space_kernel(
    const core::ChipletActuary& actuary, const DesignSpaceConfig& config,
    const Space& space) try {
    const kernels::KernelTable& table = kernels::active_table();
    const std::size_t keep = config.top_k == 0
                                 ? std::numeric_limits<std::size_t>::max()
                                 : config.top_k;
    const core::AuditConfig audit{.reticle = config.reticle};
    const std::uint64_t begin = config.index_begin;
    const std::uint64_t end = config.index_end == 0 ? space.size()
                                                    : config.index_end;
    CHIPLET_EXPECTS(end <= space.size(),
                    "design space index_end is outside the space");
    CHIPLET_EXPECTS(begin <= end,
                    "design space index_begin exceeds index_end");

    DesignSpaceResult out;
    out.total_candidates = end - begin;
    out.windowed = config.index_begin > 0 || config.index_end > 0;

    // Candidate rows carry only what the ranking needs; the kept few are
    // materialised into full DesignCandidates at the end.
    struct Row {
        double re = 0.0;
        double nre = 0.0;
        std::uint64_t index = 0;
    };
    const auto row_cheaper = [](const Row& a, const Row& b) {
        const double ta = a.re + a.nre;  // == total_per_unit()
        const double tb = b.re + b.nre;
        if (ta != tb) return ta < tb;
        return a.index < b.index;
    };
    std::vector<Row> kept;
    const auto fold = [&](Row&& row) {
        if (kept.size() < keep) {
            kept.push_back(row);
            std::push_heap(kept.begin(), kept.end(), row_cheaper);
        } else if (row_cheaper(row, kept.front())) {
            std::pop_heap(kept.begin(), kept.end(), row_cheaper);
            kept.back() = row;
            std::push_heap(kept.begin(), kept.end(), row_cheaper);
        }
    };

    util::ThreadPool& pool = util::ThreadPool::global();
    const std::uint64_t nq = config.quantities.size();
    constexpr std::uint64_t kWave = 4096;  ///< combos per SoA wave

    // Wave buffers, reused across waves/blocks.
    std::vector<std::uint8_t> pruned_f, unfit_f;
    std::vector<std::uint32_t> digits;
    std::vector<double> raw_chips, chip_defects, kgd_total, design_area;
    std::vector<double> iarea, idpw, idefects, iyield, iraw0, iraw;
    std::vector<double> re_total;
    // D2D node-count scratch for the fold pass.
    std::vector<std::uint32_t> d2d_count(config.nodes.size(), 0);
    std::vector<std::uint32_t> d2d_order;

    for (const Block& block : space.blocks()) {
        const std::uint64_t bbegin = std::max(begin, block.base);
        const std::uint64_t bend = std::min(end, block.base + block.size);
        if (bbegin >= bend) continue;
        const std::uint64_t c0 = (bbegin - block.base) / nq;
        const std::uint64_t c1 = (bend - block.base + nq - 1) / nq;
        const BlockCtx ctx = build_block_ctx(space, block, actuary, table);
        const std::size_t kd = ctx.kd;
        const std::size_t n_nodes = ctx.n_nodes;

        for (std::uint64_t wave = c0; wave < c1; wave += kWave) {
            const std::size_t m =
                static_cast<std::size_t>(std::min(kWave, c1 - wave));
            pruned_f.resize(m);
            unfit_f.resize(m);
            digits.resize(m * kd);
            raw_chips.resize(m);
            chip_defects.resize(m);
            kgd_total.resize(m);
            design_area.resize(m);
            re_total.resize(m);
            if (ctx.has_interposer) {
                iarea.resize(m);
                idpw.resize(m);
                idefects.resize(m);
                iyield.resize(m);
                iraw0.resize(m);
                iraw.resize(m);
            }

            // ---- parallel gather: decode, prune, per-die sums ------------
            // Sharded over the pool; every combo owns its slots, so the
            // contents are schedule-independent.  Exceptions (the audit
            // probe rejecting a non-positive area) surface lowest-index
            // first via parallel_for and trip the wholesale fallback.
            const std::size_t shards = std::min<std::size_t>(
                m, static_cast<std::size_t>(pool.size()) * 4);
            pool.parallel_for(shards, [&](std::size_t s) {
                const std::size_t lo = m * s / shards;
                const std::size_t hi = m * (s + 1) / shards;
                if (lo >= hi) return;
                // Odometer over node digits (chiplet 0 most significant),
                // seeded by one div/mod decode, then incremented — the
                // exact sequence Space::node_indices enumerates.
                std::vector<std::uint32_t> dg(kd);
                std::uint64_t seed = wave + lo;
                for (std::size_t i = kd; i-- > 0;) {
                    dg[i] = static_cast<std::uint32_t>(seed % n_nodes);
                    seed /= n_nodes;
                }
                std::vector<double> areas(ctx.k);
                for (std::size_t j = lo; j < hi; ++j) {
                    const auto dig = [&](unsigned bin) {
                        return kd == 1 ? dg[0] : dg[bin];
                    };
                    for (std::size_t d = 0; d < kd; ++d) {
                        digits[j * kd + d] = dg[d];
                    }
                    for (unsigned bin = 0; bin < ctx.k; ++bin) {
                        areas[bin] =
                            ctx.cells[bin * n_nodes + dig(bin)].area;
                    }
                    bool pruned = false;
                    if (config.prune) {
                        const bool oversized =
                            config.max_die_area_mm2 > 0.0 &&
                            std::any_of(areas.begin(), areas.end(),
                                        [&](double a) {
                                            return a > config.max_die_area_mm2;
                                        });
                        pruned = oversized ||
                                 !core::audit_dies_feasible(areas, audit);
                    }
                    pruned_f[j] = pruned ? 1 : 0;
                    bool unfit = false;
                    double rc = 0.0;
                    double cd = 0.0;
                    double kt = 0.0;
                    double da = 0.0;
                    if (!pruned) {
                        // Die fold in pricing order: placements reversed,
                        // the stack's top die (last placement) TSV-free.
                        for (unsigned bin = ctx.k; bin-- > 0;) {
                            const DieCell& cell =
                                ctx.cells[bin * n_nodes + dig(bin)];
                            if (!cell.fit) {
                                unfit = true;
                                break;
                            }
                            const bool tsv =
                                ctx.stacked && bin + 1 != ctx.k;
                            rc += tsv ? cell.raw_tsv : cell.raw;
                            cd += tsv ? cell.defect_tsv : cell.defect;
                            kt += tsv ? cell.kgd_tsv : cell.kgd;
                        }
                        // package_sizing_area: footprint max for stacks,
                        // total_die_area (area * count, forward) else.
                        if (ctx.stacked) {
                            for (unsigned bin = 0; bin < ctx.k; ++bin) {
                                da = std::max(
                                    da, ctx.cells[bin * n_nodes + dig(bin)]
                                            .area);
                            }
                        } else {
                            for (unsigned bin = 0; bin < ctx.k; ++bin) {
                                da += ctx.cells[bin * n_nodes + dig(bin)]
                                          .area;
                            }
                        }
                    }
                    unfit_f[j] = unfit ? 1 : 0;
                    const bool live = !pruned && !unfit;
                    raw_chips[j] = live ? rc : 0.0;
                    chip_defects[j] = live ? cd : 0.0;
                    kgd_total[j] = live ? kt : 0.0;
                    design_area[j] = live ? da : 1.0;  // benign for dead slots
                    if (ctx.has_interposer) {
                        iarea[j] = ctx.iaf * design_area[j];
                    }
                    // Odometer increment (carry right to left).
                    for (std::size_t i = kd; i-- > 0;) {
                        if (++dg[i] < n_nodes) break;
                        dg[i] = 0;
                    }
                }
            });

            // ---- interposer pricing over the wave ------------------------
            if (ctx.has_interposer) {
                table.dpw_classical(ctx.i_usable_radius, ctx.i_scribe,
                                    iarea.data(), idpw.data(), m);
                table.expected_defects(ctx.i_defects, iarea.data(),
                                       idefects.data(), m);
                table.yield_from_defects(ctx.i_kind, ctx.i_param,
                                         idefects.data(), iyield.data(), m);
                table.die_raw_cost(ctx.i_price, ctx.i_extra, iarea.data(),
                                   idpw.data(), iraw0.data(), m);
                // Second bump side: interposer_raw = raw + bump * area.
                table.scale_add(ctx.i_bump, iarea.data(), iraw0.data(),
                                iraw.data(), m);
            }

            // ---- serial check pass, ascending: accounting + diagnostics --
            // Runs strictly in candidate order, so the first combo that
            // needs the scalar engine is also the reference path's first
            // error site — everything before it completed cleanly here.
            for (std::size_t j = 0; j < m; ++j) {
                const std::uint64_t first = block.base + (wave + j) * nq;
                const std::uint64_t qlo =
                    first < bbegin ? bbegin - first : 0;
                const std::uint64_t qhi = std::min(nq, bend - first);
                if (pruned_f[j]) {
                    out.pruned += qhi - qlo;
                    continue;
                }
                if (unfit_f[j]) return std::nullopt;
                if (ctx.has_interposer) {
                    if (!(idpw[j] > 0.0)) return std::nullopt;  // no fit
                    if (ctx.stitching) {
                        const unsigned stitches = wafer::stitch_count(
                            ctx.stitch_reticle, iarea[j]);
                        iyield[j] = wafer::stitched_yield(
                            iyield[j], stitches, ctx.stitch_yield);
                    }
                    // Chip-first KGD factor goes through scrap_factor's
                    // (0, 1] domain check in the scalar engine; the fold
                    // kernel computes it uncheckedly, so route the
                    // degenerate case (underflowed product) back.
                    if (ctx.chip_first &&
                        !(iyield[j] * ctx.y2n * ctx.y3 > 0.0)) {
                        return std::nullopt;
                    }
                }
            }

            // ---- Eq. 3-5 fold over the wave ------------------------------
            kernels::ReFoldTerms terms;
            terms.raw_chips = raw_chips.data();
            terms.chip_defects = chip_defects.data();
            terms.kgd_total = kgd_total.data();
            terms.design_area = design_area.data();
            terms.interposer_raw = ctx.has_interposer ? iraw.data() : nullptr;
            terms.interposer_yield =
                ctx.has_interposer ? iyield.data() : nullptr;
            terms.package_area_factor = ctx.paf;
            terms.substrate_cost_per_mm2 = ctx.sub_cost;
            terms.substrate_layer_factor = ctx.layer;
            terms.bond_and_test = ctx.bond_and_test;
            terms.y2n = ctx.y2n;
            terms.y3 = ctx.y3;
            terms.scrap_y2n_y3 = ctx.scrap_y2n_y3;
            terms.inv_y3_minus_1 = ctx.inv_y3_minus_1;
            terms.has_interposer = ctx.has_interposer;
            terms.chip_first = ctx.chip_first;
            terms.re_total = re_total.data();
            table.re_fold(terms, m);

            // ---- serial NRE + ranking fold, ascending --------------------
            for (std::size_t j = 0; j < m; ++j) {
                if (pruned_f[j]) continue;
                const std::uint64_t first = block.base + (wave + j) * nq;
                const std::uint64_t qlo =
                    first < bbegin ? bbegin - first : 0;
                const std::uint64_t qhi = std::min(nq, bend - first);
                const std::uint32_t* dg = &digits[j * kd];
                const auto dig = [&](unsigned bin) {
                    return kd == 1 ? dg[0] : dg[bin];
                };
                // D2D designs: distinct nodes in first-occurrence order
                // (unique_chips order == bin order), with bin counts.
                d2d_order.clear();
                if (ctx.d2d) {
                    for (unsigned bin = 0; bin < ctx.k; ++bin) {
                        const std::uint32_t n = dig(bin);
                        if (d2d_count[n]++ == 0) d2d_order.push_back(n);
                    }
                }
                const double re = re_total[j];
                for (std::uint64_t qi = qlo; qi < qhi; ++qi) {
                    // NreBreakdown::total(): modules + chips + packages
                    // + d2d, each field folded in the engine's order.
                    double chips = 0.0;
                    for (unsigned bin = 0; bin < ctx.k; ++bin) {
                        chips += ctx.chip_share[(bin * n_nodes + dig(bin)) *
                                                    ctx.nq +
                                                qi];
                    }
                    // package_design_cost: (Kp*paf)*area + fixed, plus
                    // the interposer mask set; share = cost / q.
                    double pcost =
                        ctx.kp_paf * design_area[j] + ctx.pkg_fixed;
                    if (ctx.has_interposer) pcost += ctx.pkg_imask;
                    const double packages =
                        pcost / config.quantities[qi];
                    double d2d = 0.0;
                    for (const std::uint32_t n : d2d_order) {
                        d2d += ctx.d2d_share[(n * ctx.k +
                                              (d2d_count[n] - 1)) *
                                                 ctx.nq +
                                             qi];
                    }
                    const double nre =
                        ctx.mod_share[qi] + chips + packages + d2d;
                    fold(Row{re, nre, first + qi});
                }
                for (const std::uint32_t n : d2d_order) d2d_count[n] = 0;
            }
        }
    }

    out.evaluated = out.total_candidates - out.pruned;
    std::sort(kept.begin(), kept.end(), row_cheaper);
    out.best.reserve(kept.size());
    std::vector<std::size_t> node_idx;
    std::vector<double> areas;
    for (const Row& row : kept) {
        const Space::Coords coords = space.locate(row.index);
        space.node_indices(coords, node_idx);
        space.die_areas(coords, node_idx, areas);
        DesignCandidate c = space.candidate(row.index, coords, node_idx, areas);
        c.re_per_unit = row.re;
        c.nre_per_unit = row.nre;
        out.best.push_back(std::move(c));
    }
    return out;
} catch (...) {
    // Wholesale fallback: the reference path re-raises the canonical
    // error at the canonical index — or completes, when the failing
    // block never actually evaluates a candidate.
    return std::nullopt;
}

}  // namespace

std::uint64_t design_space_size(const core::ChipletActuary& actuary,
                                const DesignSpaceConfig& config) {
    return Space(actuary, config).size();
}

DesignSpaceResult explore_design_space(const core::ChipletActuary& actuary,
                                       const DesignSpaceConfig& config) {
    // An attached evaluation memo must see every candidate as a lookup
    // (the study compiler's contract), so memoised runs keep the
    // reference scan; everything else takes the kernel path.
    if (actuary.eval_memo() == nullptr) {
        const Space space(actuary, config);
        if (auto fast = explore_design_space_kernel(actuary, config, space)) {
            return *std::move(fast);
        }
    }
    return explore_design_space_reference(actuary, config);
}

DesignSpaceResult explore_design_space_reference(
    const core::ChipletActuary& actuary, const DesignSpaceConfig& config) {
    const Space space(actuary, config);
    const std::size_t chunk = std::max<std::size_t>(1, config.chunk);
    const std::size_t keep = config.top_k == 0
                                 ? std::numeric_limits<std::size_t>::max()
                                 : config.top_k;
    const core::AuditConfig audit{.reticle = config.reticle};

    // Enumeration window: a dispatcher shard scans [begin, end) of the
    // flat index space; the default (0, 0) is the whole space.
    const std::uint64_t begin = config.index_begin;
    const std::uint64_t end = config.index_end == 0 ? space.size()
                                                    : config.index_end;
    CHIPLET_EXPECTS(end <= space.size(),
                    "design space index_end is outside the space");
    CHIPLET_EXPECTS(begin <= end,
                    "design space index_begin exceeds index_end");

    DesignSpaceResult out;
    out.total_candidates = end - begin;
    out.windowed = config.index_begin > 0 || config.index_end > 0;

    // `kept` is a max-heap under `cheaper`: the worst retained candidate
    // sits on top and is evicted when a better one arrives.  Candidates
    // are folded in strictly ascending index order (chunks are evaluated
    // on the pool but consumed serially), so the heap's content — and
    // therefore the final ranking — is independent of the pool size.
    std::vector<DesignCandidate> kept;
    std::vector<design::System> systems;
    std::vector<DesignCandidate> pending;
    systems.reserve(chunk);
    pending.reserve(chunk);

    const auto fold = [&](DesignCandidate&& c) {
        if (kept.size() < keep) {
            kept.push_back(std::move(c));
            std::push_heap(kept.begin(), kept.end(), cheaper);
        } else if (cheaper(c, kept.front())) {
            std::pop_heap(kept.begin(), kept.end(), cheaper);
            kept.back() = std::move(c);
            std::push_heap(kept.begin(), kept.end(), cheaper);
        }
    };
    const auto flush = [&] {
        if (systems.empty()) return;
        const std::vector<core::SystemCost> costs =
            actuary.evaluate_batch(systems);
        for (std::size_t i = 0; i < costs.size(); ++i) {
            pending[i].re_per_unit = costs[i].re.total();
            pending[i].nre_per_unit = costs[i].nre.total();
            fold(std::move(pending[i]));
        }
        systems.clear();
        pending.clear();
    };

    std::vector<std::size_t> node_idx;
    std::vector<double> areas;
    for (std::uint64_t index = begin; index < end; ++index) {
        const Space::Coords coords = space.locate(index);
        space.node_indices(coords, node_idx);
        space.die_areas(coords, node_idx, areas);
        if (config.prune) {
            const bool oversized =
                config.max_die_area_mm2 > 0.0 &&
                std::any_of(areas.begin(), areas.end(), [&](double a) {
                    return a > config.max_die_area_mm2;
                });
            if (oversized || !core::audit_dies_feasible(areas, audit)) {
                ++out.pruned;
                continue;
            }
        }
        pending.push_back(space.candidate(index, coords, node_idx, areas));
        systems.push_back(space.build_system(coords, node_idx));
        if (systems.size() >= chunk) flush();
    }
    flush();

    out.evaluated = out.total_candidates - out.pruned;
    std::sort(kept.begin(), kept.end(), cheaper);
    out.best = std::move(kept);
    return out;
}

std::optional<std::vector<design::System>> design_space_systems(
    const core::ChipletActuary& actuary, const DesignSpaceConfig& config,
    std::size_t max_systems) {
    const Space space(actuary, config);
    const core::AuditConfig audit{.reticle = config.reticle};
    const std::uint64_t begin = config.index_begin;
    const std::uint64_t end = config.index_end == 0 ? space.size()
                                                    : config.index_end;
    CHIPLET_EXPECTS(end <= space.size(),
                    "design space index_end is outside the space");
    CHIPLET_EXPECTS(begin <= end,
                    "design space index_begin exceeds index_end");

    std::vector<design::System> out;
    std::vector<std::size_t> node_idx;
    std::vector<double> areas;
    for (std::uint64_t index = begin; index < end; ++index) {
        const Space::Coords coords = space.locate(index);
        space.node_indices(coords, node_idx);
        space.die_areas(coords, node_idx, areas);
        if (config.prune) {
            const bool oversized =
                config.max_die_area_mm2 > 0.0 &&
                std::any_of(areas.begin(), areas.end(), [&](double a) {
                    return a > config.max_die_area_mm2;
                });
            if (oversized || !core::audit_dies_feasible(areas, audit)) continue;
        }
        if (out.size() >= max_systems) return std::nullopt;
        out.push_back(space.build_system(coords, node_idx));
    }
    return out;
}

design::System design_space_candidate_system(const core::ChipletActuary& actuary,
                                             const DesignSpaceConfig& config,
                                             std::uint64_t index) {
    const Space space(actuary, config);
    CHIPLET_EXPECTS(index < space.size(),
                    "candidate index outside the design space");
    const Space::Coords coords = space.locate(index);
    std::vector<std::size_t> node_idx;
    space.node_indices(coords, node_idx);
    return space.build_system(coords, node_idx);
}

}  // namespace chiplet::explore
