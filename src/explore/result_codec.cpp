#include "explore/result_codec.h"

#include <bit>
#include <cstring>
#include <utility>

namespace chiplet::explore {

namespace {

// One `io(Ar&, T&)` overload per struct describes the layout once; the
// writer streams fields out and the reader assigns them back through
// the same code path, so the two directions can never drift.

struct CodecError {};  ///< internal control flow; never escapes decode_result

struct Writer {
    static constexpr bool reading = false;
    std::string out;

    void u8(std::uint8_t& v) { out.push_back(static_cast<char>(v)); }
    void u64(std::uint64_t& v) {
        char bytes[8];
        for (int i = 0; i < 8; ++i) {
            bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
        }
        out.append(bytes, 8);
    }
    void real(double& v) {
        std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
        u64(bits);
    }
    void boolean(bool& v) {
        std::uint8_t b = v ? 1 : 0;
        u8(b);
    }
    void str(std::string& s) {
        std::uint64_t n = s.size();
        u64(n);
        out.append(s);
    }
    [[nodiscard]] std::uint64_t remaining() const { return ~0ull; }
};

struct Reader {
    static constexpr bool reading = true;
    const char* at;
    const char* end;

    [[nodiscard]] std::uint64_t remaining() const {
        return static_cast<std::uint64_t>(end - at);
    }
    void need(std::uint64_t n) {
        if (remaining() < n) throw CodecError{};
    }
    void u8(std::uint8_t& v) {
        need(1);
        v = static_cast<std::uint8_t>(*at++);
    }
    void u64(std::uint64_t& v) {
        need(8);
        v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(static_cast<unsigned char>(at[i]))
                 << (8 * i);
        }
        at += 8;
    }
    void real(double& v) {
        std::uint64_t bits = 0;
        u64(bits);
        v = std::bit_cast<double>(bits);
    }
    void boolean(bool& v) {
        std::uint8_t b = 0;
        u8(b);
        if (b > 1) throw CodecError{};
        v = b != 0;
    }
    void str(std::string& s) {
        std::uint64_t n = 0;
        u64(n);
        need(n);
        s.assign(at, static_cast<std::size_t>(n));
        at += n;
    }
};

// Width adapters for fields narrower than the wire's u64.
template <class Ar>
void io_unsigned(Ar& ar, unsigned& v) {
    std::uint64_t wide = v;
    ar.u64(wide);
    if constexpr (Ar::reading) {
        if (wide > ~0u) throw CodecError{};
        v = static_cast<unsigned>(wide);
    }
}

template <class Ar>
void io_size(Ar& ar, std::size_t& v) {
    std::uint64_t wide = v;
    ar.u64(wide);
    if constexpr (Ar::reading) v = static_cast<std::size_t>(wide);
}

template <class Ar, class T, class Fn>
void io_vector(Ar& ar, std::vector<T>& v, Fn item) {
    std::uint64_t n = v.size();
    ar.u64(n);
    if constexpr (Ar::reading) {
        // Every element consumes at least one byte, so a count beyond
        // the remaining bytes is structurally impossible — reject it
        // before resize() turns corrupt data into a huge allocation.
        if (n > ar.remaining()) throw CodecError{};
        v.clear();
        v.resize(static_cast<std::size_t>(n));
    }
    for (T& element : v) item(ar, element);
}

template <class Ar>
void io(Ar& ar, double& v) {
    ar.real(v);
}
template <class Ar>
void io(Ar& ar, std::string& v) {
    ar.str(v);
}

template <class Ar>
void io(Ar& ar, core::ReBreakdown& v) {
    ar.real(v.raw_chips);
    ar.real(v.chip_defects);
    ar.real(v.raw_package);
    ar.real(v.package_defects);
    ar.real(v.wasted_kgd);
}

template <class Ar>
void io(Ar& ar, core::NreBreakdown& v) {
    ar.real(v.modules);
    ar.real(v.chips);
    ar.real(v.packages);
    ar.real(v.d2d);
}

template <class Ar>
void io(Ar& ar, core::DieReport& v) {
    ar.str(v.chip_name);
    ar.str(v.node);
    io_unsigned(ar, v.count);
    ar.real(v.area_mm2);
    ar.real(v.d2d_area_mm2);
    ar.real(v.yield);
    ar.real(v.raw_cost_usd);
    ar.real(v.kgd_cost_usd);
}

template <class Ar>
void io(Ar& ar, core::CostTerm& v) {
    ar.str(v.id);
    ar.str(v.label);
    ar.str(v.paper_eq);
    std::uint8_t category = static_cast<std::uint8_t>(v.category);
    std::uint8_t scope = static_cast<std::uint8_t>(v.scope);
    ar.u8(category);
    ar.u8(scope);
    if constexpr (Ar::reading) {
        if (category > static_cast<std::uint8_t>(core::CostCategory::nre_d2d) ||
            scope > static_cast<std::uint8_t>(core::CostScope::per_design)) {
            throw CodecError{};
        }
        v.category = static_cast<core::CostCategory>(category);
        v.scope = static_cast<core::CostScope>(scope);
    }
    ar.real(v.quantity);
    ar.real(v.unit_cost_usd);
    ar.real(v.subtotal_usd);
}

template <class Ar>
void io(Ar& ar, core::CostLedger& v) {
    io_vector(ar, v.terms,
              [](Ar& a, core::CostTerm& term) { io(a, term); });
}

template <class Ar>
void io(Ar& ar, core::SystemCost& v) {
    ar.str(v.system_name);
    io(ar, v.re);
    io(ar, v.nre);
    io_vector(ar, v.dies, [](Ar& a, core::DieReport& die) { io(a, die); });
    io(ar, v.ledger);
    ar.real(v.package_design_area_mm2);
    ar.real(v.interposer_area_mm2);
    ar.real(v.quantity);
}

template <class Ar>
void io(Ar& ar, ReSweepPoint& v) {
    ar.str(v.node);
    ar.str(v.packaging);
    io_unsigned(ar, v.chiplets);
    ar.real(v.area_mm2);
    io(ar, v.re);
    ar.real(v.normalized);
}

template <class Ar>
void io(Ar& ar, QuantitySweepPoint& v) {
    ar.str(v.packaging);
    ar.real(v.quantity);
    io(ar, v.cost);
}

template <class Ar>
void io(Ar& ar, McStudyOutcome& v) {
    io_vector(ar, v.mc.samples, [](Ar& a, double& s) { a.real(s); });
    ar.real(v.mc.mean);
    ar.real(v.mc.stddev);
    ar.real(v.mc.p05);
    ar.real(v.mc.p50);
    ar.real(v.mc.p95);
    ar.boolean(v.has_compare);
    ar.real(v.win_rate);
}

template <class Ar>
void io(Ar& ar, SensitivityEntry& v) {
    ar.str(v.parameter);
    ar.real(v.base_value);
    ar.real(v.base_cost);
    ar.real(v.perturbed_cost);
    ar.real(v.elasticity);
}

template <class Ar>
void io(Ar& ar, TornadoEntry& v) {
    ar.str(v.parameter);
    ar.real(v.base_value);
    ar.real(v.cost_low);
    ar.real(v.cost_high);
}

template <class Ar>
void io(Ar& ar, Breakeven& v) {
    ar.boolean(v.found);
    ar.real(v.value);
    ar.real(v.soc_cost);
    ar.real(v.alt_cost);
}

template <class Ar>
void io(Ar& ar, ParetoPoint& v) {
    ar.real(v.x);
    ar.real(v.y);
    io_size(ar, v.index);
}

template <class Ar>
void io(Ar& ar, Recommendation& v) {
    io_vector(ar, v.options, [](Ar& a, DesignOption& option) {
        a.str(option.packaging);
        io_unsigned(a, option.chiplets);
        a.real(option.re_per_unit);
        a.real(option.nre_per_unit);
        a.u64(option.space_index);
    });
}

template <class Ar>
void io(Ar& ar, TimelineOutcome& v) {
    io_vector(ar, v.trajectory, [](Ar& a, TimelinePoint& point) {
        a.real(point.month);
        a.real(point.defect_density);
        a.real(point.unit_cost);
    });
    ar.boolean(v.has_compare);
    ar.real(v.crossover_month);
}

template <class Ar>
void io(Ar& ar, DesignSpaceResult& v) {
    io_vector(ar, v.best, [](Ar& a, DesignCandidate& c) {
        a.u64(c.index);
        a.str(c.packaging);
        io_unsigned(a, c.chiplets);
        io_vector(a, c.nodes, [](Ar& b, std::string& node) { b.str(node); });
        io_vector(a, c.die_areas_mm2, [](Ar& b, double& area) { b.real(area); });
        a.real(c.quantity);
        a.real(c.re_per_unit);
        a.real(c.nre_per_unit);
    });
    ar.u64(v.total_candidates);
    ar.u64(v.pruned);
    ar.u64(v.evaluated);
    ar.boolean(v.windowed);
}

template <class Ar>
void io(Ar& ar, StudyRunInfo& v) {
    ar.real(v.wall_seconds);
    io_unsigned(ar, v.threads);
    ar.u64(v.cache_hits);
    ar.u64(v.cache_misses);
    ar.boolean(v.from_cache);
    ar.boolean(v.with_ledgers);
    ar.u64(v.cell_hits);
    ar.u64(v.cell_misses);
    ar.boolean(v.from_batch_dedup);
}

template <class Ar>
void io(Ar& ar, StudyTable& v) {
    io_vector(ar, v.columns, [](Ar& a, std::string& c) { a.str(c); });
    io_vector(ar, v.rows, [](Ar& a, std::vector<std::string>& row) {
        io_vector(a, row, [](Ar& b, std::string& cell) { b.str(cell); });
    });
}

template <class Ar>
void io(Ar& ar, StudyLedger& v) {
    ar.str(v.label);
    io(ar, v.ledger);
}

/// Constructs the payload alternative for `kind` on read (writes are a
/// no-op: the payload already holds the right alternative) and streams
/// its fields.  The alternative order is the StudyKind order, pinned by
/// the StudyPayload variant declaration.
template <class Ar>
void io_payload(Ar& ar, StudyKind kind, StudyPayload& payload) {
    const auto with = [&]<class T>(std::in_place_type_t<T>) -> T& {
        if constexpr (Ar::reading) {
            return payload.template emplace<T>();
        } else {
            return std::get<T>(payload);
        }
    };
    switch (kind) {
        case StudyKind::re_sweep: {
            auto& v = with(std::in_place_type<std::vector<ReSweepPoint>>);
            io_vector(ar, v, [](Ar& a, ReSweepPoint& p) { io(a, p); });
            return;
        }
        case StudyKind::quantity_sweep: {
            auto& v = with(std::in_place_type<std::vector<QuantitySweepPoint>>);
            io_vector(ar, v, [](Ar& a, QuantitySweepPoint& p) { io(a, p); });
            return;
        }
        case StudyKind::monte_carlo:
            io(ar, with(std::in_place_type<McStudyOutcome>));
            return;
        case StudyKind::sensitivity: {
            auto& v = with(std::in_place_type<std::vector<SensitivityEntry>>);
            io_vector(ar, v, [](Ar& a, SensitivityEntry& p) { io(a, p); });
            return;
        }
        case StudyKind::tornado: {
            auto& v = with(std::in_place_type<std::vector<TornadoEntry>>);
            io_vector(ar, v, [](Ar& a, TornadoEntry& p) { io(a, p); });
            return;
        }
        case StudyKind::breakeven:
            io(ar, with(std::in_place_type<Breakeven>));
            return;
        case StudyKind::pareto: {
            auto& v = with(std::in_place_type<std::vector<ParetoPoint>>);
            io_vector(ar, v, [](Ar& a, ParetoPoint& p) { io(a, p); });
            return;
        }
        case StudyKind::recommend:
            io(ar, with(std::in_place_type<Recommendation>));
            return;
        case StudyKind::timeline:
            io(ar, with(std::in_place_type<TimelineOutcome>));
            return;
        case StudyKind::design_space:
            io(ar, with(std::in_place_type<DesignSpaceResult>));
            return;
    }
    throw CodecError{};  // unreachable for validated kinds
}

template <class Ar>
void io_result(Ar& ar, StudyResult& result) {
    ar.str(result.name);
    std::uint8_t kind = static_cast<std::uint8_t>(result.kind);
    ar.u8(kind);
    if constexpr (Ar::reading) {
        if (kind > static_cast<std::uint8_t>(StudyKind::design_space)) {
            throw CodecError{};
        }
        result.kind = static_cast<StudyKind>(kind);
    }
    io_payload(ar, result.kind, result.payload);
    io(ar, result.run);
    io(ar, result.table);
    io_vector(ar, result.ledgers,
              [](Ar& a, StudyLedger& ledger) { io(a, ledger); });
}

}  // namespace

std::string encode_result(const StudyResult& result) {
    Writer writer;
    // The writer only reads; the copy buys a mutable ref so both archive
    // directions share one io_result without const_cast trickery.
    StudyResult copy = result;
    io_result(writer, copy);
    return std::move(writer.out);
}

bool decode_result(std::string_view data, StudyResult& out) {
    Reader reader{data.data(), data.data() + data.size()};
    try {
        StudyResult result;
        io_result(reader, result);
        if (reader.at != reader.end) return false;  // trailing garbage
        out = std::move(result);
        return true;
    } catch (const CodecError&) {
        return false;
    } catch (const std::bad_alloc&) {
        return false;
    }
}

}  // namespace chiplet::explore
