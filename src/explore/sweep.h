// Parameter sweeps behind the paper's grid figures: RE cost over
// (node x integration x chiplet count x area), and total cost over
// production quantity.
#pragma once

#include <string>
#include <vector>

#include "core/actuary.h"

namespace chiplet::explore {

/// One cell of the Fig. 4 grid.
struct ReSweepPoint {
    std::string node;
    std::string packaging;     ///< "SoC", "MCM", "InFO", "2.5D"
    unsigned chiplets = 1;     ///< 1 for the SoC reference
    double area_mm2 = 0.0;     ///< total module area
    core::ReBreakdown re;      ///< absolute USD per unit
    double normalized = 0.0;   ///< re.total() / (100 mm^2 SoC at same node)
};

/// Sweep configuration; defaults reproduce the paper's Fig. 4 axes.
struct ReSweepConfig {
    std::vector<std::string> nodes = {"14nm", "7nm", "5nm"};
    std::vector<std::string> packagings = {"SoC", "MCM", "InFO", "2.5D"};
    std::vector<unsigned> chiplet_counts = {2, 3, 5};
    std::vector<double> areas_mm2 = {100, 200, 300, 400, 500, 600, 700, 800, 900};
    double d2d_fraction = 0.10;
    double normalization_area_mm2 = 100.0;  ///< paper: "normalized to the
                                            ///< 100 mm^2 area SoC"
};

/// The concrete system one sweep cell denotes: the monolithic SoC when
/// `packaging` resolves to an SoC-type integration in the actuary's
/// library, the equal k-way split otherwise.  Both sweeps build their
/// systems through this, and the explain pass reuses it so attached
/// ledgers itemise the very systems the sweeps priced.
[[nodiscard]] design::System sweep_cell_system(
    const core::ChipletActuary& actuary, const std::string& node,
    const std::string& packaging, double module_area_mm2, unsigned chiplets,
    double d2d_fraction, double quantity);

/// Runs the grid: for every (node, area) the SoC reference is evaluated
/// once (chiplets == 1); every multi-die packaging is evaluated for every
/// chiplet count.  Costs are normalised per node to the SoC of
/// `normalization_area_mm2`.
[[nodiscard]] std::vector<ReSweepPoint> sweep_re_grid(
    const core::ChipletActuary& actuary, const ReSweepConfig& config = {});

/// One point of a total-cost-vs-quantity sweep (Fig. 6 axes).
struct QuantitySweepPoint {
    std::string packaging;
    double quantity = 0.0;
    core::SystemCost cost;
};

/// Total-cost-vs-quantity sweep configuration; defaults reproduce the
/// paper's Fig. 6 axes (800 mm^2 of 5 nm logic, two chiplets).
struct QuantitySweepConfig {
    std::string node = "5nm";
    double module_area_mm2 = 800.0;
    unsigned chiplets = 2;  ///< applies to the multi-die schemes
    double d2d_fraction = 0.10;
    std::vector<std::string> packagings = {"SoC", "MCM", "InFO", "2.5D"};
    std::vector<double> quantities = {5e5, 2e6, 1e7};
};

/// Evaluates one module area at one node across packagings and
/// quantities.
[[nodiscard]] std::vector<QuantitySweepPoint> sweep_total_vs_quantity(
    const core::ChipletActuary& actuary, const QuantitySweepConfig& config);

/// Loose-argument convenience overload forwarding to the config form.
[[nodiscard]] std::vector<QuantitySweepPoint> sweep_total_vs_quantity(
    const core::ChipletActuary& actuary, const std::string& node,
    double module_area_mm2, unsigned chiplets, double d2d_fraction,
    const std::vector<std::string>& packagings,
    const std::vector<double>& quantities);

}  // namespace chiplet::explore
