#include "explore/study_json.h"

#include <cerrno>
#include <cstdlib>
#include <utility>

#include "design/json_io.h"
#include "util/error.h"

namespace chiplet::explore {

namespace {

// ---- shared fragments -------------------------------------------------------

JsonValue to_json(const core::ReBreakdown& re) {
    JsonValue v = JsonValue::object();
    v.set("raw_chips", re.raw_chips);
    v.set("chip_defects", re.chip_defects);
    v.set("raw_package", re.raw_package);
    v.set("package_defects", re.package_defects);
    v.set("wasted_kgd", re.wasted_kgd);
    v.set("total", re.total());
    return v;
}

JsonValue to_json(const core::NreBreakdown& nre) {
    JsonValue v = JsonValue::object();
    v.set("modules", nre.modules);
    v.set("chips", nre.chips);
    v.set("packages", nre.packages);
    v.set("d2d", nre.d2d);
    v.set("total", nre.total());
    return v;
}

JsonValue strings_to_json(const std::vector<std::string>& values) {
    JsonValue v = JsonValue::array();
    for (const std::string& s : values) v.push_back(s);
    return v;
}

JsonValue numbers_to_json(const std::vector<double>& values) {
    JsonValue v = JsonValue::array();
    for (double d : values) v.push_back(d);
    return v;
}

JsonValue counts_to_json(const std::vector<unsigned>& values) {
    JsonValue v = JsonValue::array();
    for (unsigned u : values) v.push_back(u);
    return v;
}

const char* axis_name(BreakevenQuery::Axis axis) {
    return axis == BreakevenQuery::Axis::quantity ? "quantity" : "area";
}

/// Reads a uint64 that may be stored as a number (<= 2^53) or as a
/// decimal string (the lossless form config_to_json emits above 2^53).
void read_seed(const JsonReader& r, const std::string& key, std::uint64_t& out) {
    if (!r.has(key)) return;
    const JsonValue& v = r.json().at(key);
    if (v.is_string()) {
        const std::string& s = v.as_string();
        if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
            r.fail(key, "expected a non-negative integer");
        }
        errno = 0;
        char* end = nullptr;
        const unsigned long long parsed = std::strtoull(s.c_str(), &end, 10);
        if (errno != 0 || end != s.c_str() + s.size()) {
            r.fail(key, "integer out of range");
        }
        out = parsed;
        return;
    }
    r.optional(key, out);
}

// ---- per-kind config serialisation ------------------------------------------

JsonValue config_to_json(const ReSweepConfig& c) {
    JsonValue v = JsonValue::object();
    v.set("nodes", strings_to_json(c.nodes));
    v.set("packagings", strings_to_json(c.packagings));
    v.set("chiplet_counts", counts_to_json(c.chiplet_counts));
    v.set("areas_mm2", numbers_to_json(c.areas_mm2));
    v.set("d2d_fraction", c.d2d_fraction);
    v.set("normalization_area_mm2", c.normalization_area_mm2);
    return v;
}

JsonValue config_to_json(const QuantitySweepConfig& c) {
    JsonValue v = JsonValue::object();
    v.set("node", c.node);
    v.set("module_area_mm2", c.module_area_mm2);
    v.set("chiplets", c.chiplets);
    v.set("d2d_fraction", c.d2d_fraction);
    v.set("packagings", strings_to_json(c.packagings));
    v.set("quantities", numbers_to_json(c.quantities));
    return v;
}

JsonValue config_to_json(const McStudyConfig& c) {
    JsonValue v = JsonValue::object();
    v.set("scenario", to_json(c.scenario));
    if (c.compare) v.set("compare", to_json(*c.compare));
    v.set("spread", c.spread);
    v.set("draws", c.draws);
    // Doubles hold integers exactly only up to 2^53; bigger seeds go
    // through a decimal string so the spec round-trip stays lossless.
    if (c.seed <= (1ull << 53)) {
        v.set("seed", static_cast<double>(c.seed));
    } else {
        v.set("seed", std::to_string(c.seed));
    }
    return v;
}

JsonValue config_to_json(const SensitivityStudyConfig& c) {
    JsonValue v = JsonValue::object();
    v.set("scenario", to_json(c.scenario));
    v.set("rel_step", c.rel_step);
    return v;
}

JsonValue config_to_json(const TornadoStudyConfig& c) {
    JsonValue v = JsonValue::object();
    v.set("scenario", to_json(c.scenario));
    v.set("rel_range", c.rel_range);
    return v;
}

JsonValue config_to_json(const BreakevenQuery& c) {
    JsonValue v = JsonValue::object();
    v.set("axis", axis_name(c.axis));
    v.set("node", c.node);
    v.set("module_area_mm2", c.module_area_mm2);
    v.set("chiplets", c.chiplets);
    v.set("packaging", c.packaging);
    v.set("d2d_fraction", c.d2d_fraction);
    v.set("lo", c.lo);
    v.set("hi", c.hi);
    return v;
}

JsonValue config_to_json(const ParetoConfig& c) {
    JsonValue points = JsonValue::array();
    for (const ParetoPoint& p : c.points) {
        JsonValue point = JsonValue::object();
        point.set("x", p.x);
        point.set("y", p.y);
        point.set("index", static_cast<double>(p.index));
        points.push_back(std::move(point));
    }
    JsonValue v = JsonValue::object();
    v.set("points", std::move(points));
    v.set("x_label", c.x_label);
    v.set("y_label", c.y_label);
    return v;
}

JsonValue config_to_json(const DecisionQuery& c) {
    JsonValue v = JsonValue::object();
    v.set("node", c.node);
    v.set("module_area_mm2", c.module_area_mm2);
    v.set("quantity", c.quantity);
    v.set("d2d_fraction", c.d2d_fraction);
    v.set("max_chiplets", c.max_chiplets);
    v.set("packagings", strings_to_json(c.packagings));
    return v;
}

JsonValue config_to_json(const TimelineStudyConfig& c) {
    JsonValue v = JsonValue::object();
    v.set("scenario", to_json(c.scenario));
    if (c.compare) v.set("compare", to_json(*c.compare));
    v.set("initial_defects_per_cm2", c.initial_defects_per_cm2);
    v.set("mature_defects_per_cm2", c.mature_defects_per_cm2);
    v.set("tau_months", c.tau_months);
    v.set("months", c.months);
    v.set("step_months", c.step_months);
    return v;
}

JsonValue config_to_json(const DesignSpaceConfig& c) {
    JsonValue v = JsonValue::object();
    if (!c.modules.empty()) {
        JsonValue modules = JsonValue::array();
        for (const design::Module& m : c.modules) {
            modules.push_back(design::to_json(m));
        }
        v.set("modules", std::move(modules));
    }
    v.set("module_area_mm2", c.module_area_mm2);
    v.set("reference_node", c.reference_node);
    v.set("chiplet_counts", counts_to_json(c.chiplet_counts));
    v.set("nodes", strings_to_json(c.nodes));
    v.set("uniform_nodes", c.uniform_nodes);
    v.set("packagings", strings_to_json(c.packagings));
    v.set("quantities", numbers_to_json(c.quantities));
    v.set("d2d_fraction", c.d2d_fraction);
    v.set("top_k", c.top_k);
    v.set("chunk", static_cast<double>(c.chunk));
    v.set("prune", c.prune);
    // Only emitted when a shard window is set: the canonical spec JSON —
    // and with it spec_hash — of whole-space studies stays byte-identical.
    if (c.index_begin != 0 || c.index_end != 0) {
        v.set("index_begin", static_cast<double>(c.index_begin));
        v.set("index_end", static_cast<double>(c.index_end));
    }
    JsonValue reticle = JsonValue::object();
    reticle.set("field_width_mm", c.reticle.field_width_mm);
    reticle.set("field_height_mm", c.reticle.field_height_mm);
    v.set("reticle", std::move(reticle));
    v.set("max_die_area_mm2", c.max_die_area_mm2);
    return v;
}

// ---- per-kind config parsing ------------------------------------------------

StudyConfig config_from_json(StudyKind kind, const JsonValue& v,
                             const std::string& context) {
    const JsonReader r(v, context);
    switch (kind) {
        case StudyKind::re_sweep: {
            ReSweepConfig c;
            r.optional("nodes", c.nodes);
            r.optional("packagings", c.packagings);
            r.optional("chiplet_counts", c.chiplet_counts);
            r.optional("areas_mm2", c.areas_mm2);
            r.optional("d2d_fraction", c.d2d_fraction);
            r.optional("normalization_area_mm2", c.normalization_area_mm2);
            return c;
        }
        case StudyKind::quantity_sweep: {
            QuantitySweepConfig c;
            r.optional("node", c.node);
            r.optional("module_area_mm2", c.module_area_mm2);
            r.optional("chiplets", c.chiplets);
            r.optional("d2d_fraction", c.d2d_fraction);
            r.optional("packagings", c.packagings);
            r.optional("quantities", c.quantities);
            return c;
        }
        case StudyKind::monte_carlo: {
            McStudyConfig c;
            if (r.has("scenario")) {
                c.scenario = scenario_from_json(r.require("scenario"),
                                                context + ".scenario");
            }
            if (r.has("compare")) {
                c.compare = scenario_from_json(r.require("compare"),
                                               context + ".compare");
            }
            r.optional("spread", c.spread);
            r.optional("draws", c.draws);
            read_seed(r, "seed", c.seed);
            return c;
        }
        case StudyKind::sensitivity: {
            SensitivityStudyConfig c;
            if (r.has("scenario")) {
                c.scenario = scenario_from_json(r.require("scenario"),
                                                context + ".scenario");
            }
            r.optional("rel_step", c.rel_step);
            return c;
        }
        case StudyKind::tornado: {
            TornadoStudyConfig c;
            if (r.has("scenario")) {
                c.scenario = scenario_from_json(r.require("scenario"),
                                                context + ".scenario");
            }
            r.optional("rel_range", c.rel_range);
            return c;
        }
        case StudyKind::breakeven: {
            BreakevenQuery c;
            if (r.has("axis")) {
                const std::string axis = r.require_string("axis");
                if (axis == "quantity") {
                    c.axis = BreakevenQuery::Axis::quantity;
                } else if (axis == "area") {
                    c.axis = BreakevenQuery::Axis::area;
                } else {
                    r.fail("axis", "expected 'quantity' or 'area', got '" +
                                       axis + "'");
                }
            }
            r.optional("node", c.node);
            r.optional("module_area_mm2", c.module_area_mm2);
            r.optional("chiplets", c.chiplets);
            r.optional("packaging", c.packaging);
            r.optional("d2d_fraction", c.d2d_fraction);
            r.optional("lo", c.lo);
            r.optional("hi", c.hi);
            return c;
        }
        case StudyKind::pareto: {
            ParetoConfig c;
            const JsonArray& points = r.require_array("points");
            for (std::size_t i = 0; i < points.size(); ++i) {
                const JsonReader p(points[i], r.element_context("points", i));
                ParetoPoint point;
                point.x = p.require_number("x");
                point.y = p.require_number("y");
                std::uint64_t index = i;
                p.optional("index", index);
                point.index = static_cast<std::size_t>(index);
                c.points.push_back(point);
            }
            r.optional("x_label", c.x_label);
            r.optional("y_label", c.y_label);
            return c;
        }
        case StudyKind::recommend: {
            DecisionQuery c;
            r.optional("node", c.node);
            r.optional("module_area_mm2", c.module_area_mm2);
            r.optional("quantity", c.quantity);
            r.optional("d2d_fraction", c.d2d_fraction);
            r.optional("max_chiplets", c.max_chiplets);
            r.optional("packagings", c.packagings);
            return c;
        }
        case StudyKind::timeline: {
            TimelineStudyConfig c;
            if (r.has("scenario")) {
                c.scenario = scenario_from_json(r.require("scenario"),
                                                context + ".scenario");
            }
            if (r.has("compare")) {
                c.compare = scenario_from_json(r.require("compare"),
                                               context + ".compare");
            }
            r.optional("initial_defects_per_cm2", c.initial_defects_per_cm2);
            r.optional("mature_defects_per_cm2", c.mature_defects_per_cm2);
            r.optional("tau_months", c.tau_months);
            r.optional("months", c.months);
            r.optional("step_months", c.step_months);
            return c;
        }
        case StudyKind::design_space: {
            DesignSpaceConfig c;
            if (r.has("modules")) {
                const JsonArray& modules = r.require_array("modules");
                for (std::size_t i = 0; i < modules.size(); ++i) {
                    c.modules.push_back(design::module_from_json(
                        modules[i], r.element_context("modules", i)));
                }
            }
            r.optional("module_area_mm2", c.module_area_mm2);
            r.optional("reference_node", c.reference_node);
            r.optional("chiplet_counts", c.chiplet_counts);
            r.optional("nodes", c.nodes);
            r.optional("uniform_nodes", c.uniform_nodes);
            r.optional("packagings", c.packagings);
            r.optional("quantities", c.quantities);
            r.optional("d2d_fraction", c.d2d_fraction);
            r.optional("top_k", c.top_k);
            std::uint64_t chunk = c.chunk;
            r.optional("chunk", chunk);
            c.chunk = static_cast<std::size_t>(chunk);
            r.optional("prune", c.prune);
            r.optional("index_begin", c.index_begin);
            r.optional("index_end", c.index_end);
            if (r.has("reticle")) {
                const JsonReader reticle(r.require("reticle"),
                                         context + ".reticle");
                reticle.optional("field_width_mm", c.reticle.field_width_mm);
                reticle.optional("field_height_mm", c.reticle.field_height_mm);
            }
            r.optional("max_die_area_mm2", c.max_die_area_mm2);
            return c;
        }
    }
    throw ParseError(context + ": unhandled study kind");
}

// ---- per-kind payload serialisation -----------------------------------------

JsonValue payload_to_json(const std::vector<ReSweepPoint>& points) {
    JsonValue v = JsonValue::array();
    for (const ReSweepPoint& p : points) {
        JsonValue point = JsonValue::object();
        point.set("node", p.node);
        point.set("packaging", p.packaging);
        point.set("chiplets", p.chiplets);
        point.set("area_mm2", p.area_mm2);
        point.set("re", to_json(p.re));
        point.set("normalized", p.normalized);
        v.push_back(std::move(point));
    }
    return v;
}

JsonValue payload_to_json(const std::vector<QuantitySweepPoint>& points) {
    JsonValue v = JsonValue::array();
    for (const QuantitySweepPoint& p : points) {
        JsonValue point = JsonValue::object();
        point.set("packaging", p.packaging);
        point.set("quantity", p.quantity);
        point.set("re", to_json(p.cost.re));
        point.set("nre", to_json(p.cost.nre));
        point.set("total_per_unit", p.cost.total_per_unit());
        v.push_back(std::move(point));
    }
    return v;
}

JsonValue payload_to_json(const McStudyOutcome& outcome) {
    JsonValue v = JsonValue::object();
    v.set("draws", static_cast<double>(outcome.mc.samples.size()));
    v.set("mean", outcome.mc.mean);
    v.set("stddev", outcome.mc.stddev);
    v.set("p05", outcome.mc.p05);
    v.set("p50", outcome.mc.p50);
    v.set("p95", outcome.mc.p95);
    if (outcome.has_compare) v.set("win_rate", outcome.win_rate);
    return v;
}

JsonValue payload_to_json(const std::vector<SensitivityEntry>& entries) {
    JsonValue v = JsonValue::array();
    for (const SensitivityEntry& e : entries) {
        JsonValue entry = JsonValue::object();
        entry.set("parameter", e.parameter);
        entry.set("base_value", e.base_value);
        entry.set("base_cost", e.base_cost);
        entry.set("perturbed_cost", e.perturbed_cost);
        entry.set("elasticity", e.elasticity);
        v.push_back(std::move(entry));
    }
    return v;
}

JsonValue payload_to_json(const std::vector<TornadoEntry>& entries) {
    JsonValue v = JsonValue::array();
    for (const TornadoEntry& e : entries) {
        JsonValue entry = JsonValue::object();
        entry.set("parameter", e.parameter);
        entry.set("base_value", e.base_value);
        entry.set("cost_low", e.cost_low);
        entry.set("cost_high", e.cost_high);
        entry.set("swing", e.swing());
        v.push_back(std::move(entry));
    }
    return v;
}

JsonValue payload_to_json(const Breakeven& b) {
    JsonValue v = JsonValue::object();
    v.set("found", b.found);
    v.set("value", b.value);
    v.set("soc_cost", b.soc_cost);
    v.set("alt_cost", b.alt_cost);
    return v;
}

JsonValue payload_to_json(const std::vector<ParetoPoint>& points) {
    JsonValue v = JsonValue::array();
    for (const ParetoPoint& p : points) {
        JsonValue point = JsonValue::object();
        point.set("x", p.x);
        point.set("y", p.y);
        point.set("index", static_cast<double>(p.index));
        v.push_back(std::move(point));
    }
    return v;
}

JsonValue payload_to_json(const Recommendation& rec) {
    JsonValue options = JsonValue::array();
    bool has_soc = false;
    for (const DesignOption& o : rec.options) {
        has_soc = has_soc || o.packaging == "SoC";
        JsonValue option = JsonValue::object();
        option.set("packaging", o.packaging);
        option.set("chiplets", o.chiplets);
        option.set("re_per_unit", o.re_per_unit);
        option.set("nre_per_unit", o.nre_per_unit);
        option.set("total_per_unit", o.total_per_unit());
        options.push_back(std::move(option));
    }
    JsonValue v = JsonValue::object();
    v.set("options", std::move(options));
    if (has_soc && !rec.options.empty()) {
        v.set("savings_vs_soc", rec.savings_vs_soc());
    }
    return v;
}

JsonValue payload_to_json(const DesignSpaceResult& result) {
    JsonValue best = JsonValue::array();
    for (const DesignCandidate& c : result.best) {
        JsonValue entry = JsonValue::object();
        entry.set("index", static_cast<double>(c.index));
        entry.set("packaging", c.packaging);
        entry.set("chiplets", c.chiplets);
        entry.set("nodes", strings_to_json(c.nodes));
        entry.set("die_areas_mm2", numbers_to_json(c.die_areas_mm2));
        entry.set("quantity", c.quantity);
        entry.set("re_per_unit", c.re_per_unit);
        entry.set("nre_per_unit", c.nre_per_unit);
        entry.set("total_per_unit", c.total_per_unit());
        best.push_back(std::move(entry));
    }
    JsonValue v = JsonValue::object();
    v.set("total_candidates", static_cast<double>(result.total_candidates));
    v.set("pruned", static_cast<double>(result.pruned));
    v.set("evaluated", static_cast<double>(result.evaluated));
    v.set("pruned_fraction", result.pruned_fraction());
    v.set("best", std::move(best));
    // Windowed (shard) runs only: lossless ordering keys, aligned with
    // "best".  The payload's total_per_unit is serialised at 12
    // significant digits, which can render two raw-distinct totals
    // identically — a merging dispatcher needs the exact doubles to
    // reproduce the single-process ranking.  Whole-space documents (and
    // the committed golden) keep their exact shape.
    if (result.windowed) {
        JsonValue keys = JsonValue::array();
        for (const DesignCandidate& c : result.best) {
            keys.push_back(exact_number_string(c.total_per_unit()));
        }
        v.set("order_keys", std::move(keys));
    }
    return v;
}

JsonValue payload_to_json(const TimelineOutcome& outcome) {
    JsonValue trajectory = JsonValue::array();
    for (const TimelinePoint& p : outcome.trajectory) {
        JsonValue point = JsonValue::object();
        point.set("month", p.month);
        point.set("defect_density", p.defect_density);
        point.set("unit_cost", p.unit_cost);
        trajectory.push_back(std::move(point));
    }
    JsonValue v = JsonValue::object();
    v.set("trajectory", std::move(trajectory));
    if (outcome.has_compare) v.set("crossover_month", outcome.crossover_month);
    return v;
}

}  // namespace

// ---- public surface ---------------------------------------------------------

JsonValue to_json(const core::CostTerm& term) {
    JsonValue v = JsonValue::object();
    v.set("id", term.id);
    v.set("label", term.label);
    v.set("paper_eq", term.paper_eq);
    v.set("category", core::to_string(term.category));
    v.set("scope", core::to_string(term.scope));
    v.set("quantity", term.quantity);
    v.set("unit_cost_usd", term.unit_cost_usd);
    v.set("subtotal_usd", term.subtotal_usd);
    return v;
}

core::CostTerm cost_term_from_json(const JsonValue& v,
                                   const std::string& context) {
    const JsonReader r(v, context);
    core::CostTerm term;
    term.id = r.require_string("id");
    term.label = r.require_string("label");
    term.paper_eq = r.require_string("paper_eq");
    try {
        term.category = core::cost_category_from_string(r.require_string("category"));
        term.scope = core::cost_scope_from_string(r.require_string("scope"));
    } catch (const ParseError& e) {
        throw ParseError(context + ": " + e.what());
    }
    term.quantity = r.require_number("quantity");
    term.unit_cost_usd = r.require_number("unit_cost_usd");
    term.subtotal_usd = r.require_number("subtotal_usd");
    return term;
}

JsonValue to_json(const core::CostLedger& ledger) {
    JsonValue terms = JsonValue::array();
    for (const core::CostTerm& term : ledger.terms) {
        terms.push_back(to_json(term));
    }
    JsonValue v = JsonValue::object();
    v.set("terms", std::move(terms));
    return v;
}

core::CostLedger ledger_from_json(const JsonValue& v,
                                  const std::string& context) {
    const JsonReader r(v, context);
    const JsonArray& terms = r.require_array("terms");
    core::CostLedger ledger;
    ledger.terms.reserve(terms.size());
    for (std::size_t i = 0; i < terms.size(); ++i) {
        ledger.terms.push_back(
            cost_term_from_json(terms[i], r.element_context("terms", i)));
    }
    return ledger;
}

JsonValue to_json(const ScenarioSpec& s) {
    JsonValue v = JsonValue::object();
    v.set("node", s.node);
    v.set("packaging", s.packaging);
    v.set("module_area_mm2", s.module_area_mm2);
    v.set("chiplets", s.chiplets);
    v.set("d2d_fraction", s.d2d_fraction);
    v.set("quantity", s.quantity);
    return v;
}

ScenarioSpec scenario_from_json(const JsonValue& v, const std::string& context) {
    const JsonReader r(v, context);
    ScenarioSpec s;
    r.optional("node", s.node);
    r.optional("packaging", s.packaging);
    r.optional("module_area_mm2", s.module_area_mm2);
    r.optional("chiplets", s.chiplets);
    r.optional("d2d_fraction", s.d2d_fraction);
    r.optional("quantity", s.quantity);
    return s;
}

JsonValue to_json(const StudySpec& spec) {
    JsonValue v = JsonValue::object();
    v.set("name", spec.name);
    v.set("kind", to_string(spec.kind()));
    if (!spec.tech_overrides.is_null()) v.set("tech", spec.tech_overrides);
    // Only emitted when set: the canonical spec JSON — and with it
    // spec_hash — of pre-ledger studies stays byte-identical.
    if (spec.explain) v.set("explain", true);
    v.set("config",
          std::visit([](const auto& c) { return config_to_json(c); }, spec.config));
    return v;
}

StudySpec study_spec_from_json(const JsonValue& v, const std::string& context) {
    const JsonReader r(v, context);
    StudySpec spec;
    spec.name = r.require_string("name");
    const std::string kind_name = r.require_string("kind");
    StudyKind kind = StudyKind::re_sweep;
    try {
        kind = study_kind_from_string(kind_name);
    } catch (const ParseError& e) {
        // study_kind_from_string knows nothing about where the string
        // came from; prefix the context here.
        throw ParseError(context + ": " + e.what());
    }
    if (r.has("tech")) {
        const JsonValue& tech = r.require("tech");
        if (!tech.is_object()) r.fail("tech", "expected object");
        spec.tech_overrides = tech;
    }
    r.optional("explain", spec.explain);
    const JsonValue empty = JsonValue::object();
    const JsonValue& config = r.has("config") ? r.require("config") : empty;
    spec.config = config_from_json(kind, config, context + ".config");
    return spec;
}

JsonValue to_json(const StudyResult& result) {
    JsonValue meta = JsonValue::object();
    meta.set("wall_seconds", result.run.wall_seconds);
    meta.set("threads", result.run.threads);
    meta.set("cache_hits", static_cast<double>(result.run.cache_hits));
    meta.set("cache_misses", static_cast<double>(result.run.cache_misses));
    meta.set("cache_hit_rate", result.run.cache_hit_rate());
    meta.set("from_cache", result.run.from_cache);
    meta.set("with_ledgers", result.run.with_ledgers);
    // Batch cell-memo counters of the study compiler
    // (explore/study_graph.h).  Measurement, like the fields above:
    // "meta" is excluded from golden comparisons.
    meta.set("cell_hits", static_cast<double>(result.run.cell_hits));
    meta.set("cell_misses", static_cast<double>(result.run.cell_misses));
    meta.set("from_batch_dedup", result.run.from_batch_dedup);

    JsonValue columns = JsonValue::array();
    for (const std::string& c : result.table.columns) columns.push_back(c);
    JsonValue rows = JsonValue::array();
    for (const auto& row : result.table.rows) {
        JsonValue cells = JsonValue::array();
        for (const std::string& cell : row) cells.push_back(cell);
        rows.push_back(std::move(cells));
    }
    JsonValue table = JsonValue::object();
    table.set("columns", std::move(columns));
    table.set("rows", std::move(rows));

    JsonValue v = JsonValue::object();
    v.set("name", result.name);
    v.set("kind", to_string(result.kind));
    v.set("meta", std::move(meta));
    v.set("table", std::move(table));
    v.set("result", std::visit([](const auto& p) { return payload_to_json(p); },
                               result.payload));
    // Only when present, so pre-ledger result documents (and the
    // committed golden) keep their exact shape.
    if (!result.ledgers.empty()) {
        JsonValue ledgers = JsonValue::array();
        for (const StudyLedger& entry : result.ledgers) {
            JsonValue item = JsonValue::object();
            item.set("label", entry.label);
            item.set("ledger", to_json(entry.ledger));
            ledgers.push_back(std::move(item));
        }
        v.set("ledgers", std::move(ledgers));
    }
    return v;
}

JsonValue studies_to_json(std::span<const StudySpec> specs) {
    JsonValue studies = JsonValue::array();
    for (const StudySpec& spec : specs) studies.push_back(to_json(spec));
    JsonValue v = JsonValue::object();
    v.set("studies", std::move(studies));
    return v;
}

std::vector<StudySpec> studies_from_json(const JsonValue& v,
                                         const std::string& context) {
    const JsonReader r(v, context);
    const JsonArray& entries = r.require_array("studies");
    std::vector<StudySpec> out;
    out.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        out.push_back(
            study_spec_from_json(entries[i], r.element_context("studies", i)));
    }
    return out;
}

std::vector<StudySpec> studies_from_json_collecting(
    const JsonValue& v, const std::string& context,
    std::vector<StudyFailure>& failures,
    std::vector<std::size_t>* kept_indices) {
    const JsonReader r(v, context);
    const JsonArray& entries = r.require_array("studies");
    std::vector<StudySpec> out;
    out.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const std::string element = r.element_context("studies", i);
        try {
            out.push_back(study_spec_from_json(entries[i], element));
            if (kept_indices) kept_indices->push_back(i);
        } catch (const Error& e) {
            // Name the study when the document got that far; fall back
            // to the JSON path for entries too broken to carry one.
            std::string name = element;
            if (entries[i].is_object() && entries[i].contains("name") &&
                entries[i].at("name").is_string()) {
                name = entries[i].at("name").as_string();
            }
            failures.push_back(
                StudyFailure{i, std::move(name), "parse", e.what()});
        }
    }
    return out;
}

std::vector<StudySpec> load_studies(const std::string& path) {
    return studies_from_json(JsonValue::load_file(path), path);
}

std::vector<StudySpec> load_studies_collecting(
    const std::string& path, std::vector<StudyFailure>& failures,
    std::vector<std::size_t>* kept_indices) {
    return studies_from_json_collecting(JsonValue::load_file(path), path,
                                        failures, kept_indices);
}

void save_studies(std::span<const StudySpec> specs, const std::string& path) {
    studies_to_json(specs).save_file(path);
}

JsonValue results_to_json(std::span<const StudyResult> results) {
    JsonValue entries = JsonValue::array();
    for (const StudyResult& result : results) entries.push_back(to_json(result));
    JsonValue v = JsonValue::object();
    v.set("results", std::move(entries));
    return v;
}

void save_results(std::span<const StudyResult> results, const std::string& path) {
    results_to_json(results).save_file(path);
}

}  // namespace chiplet::explore
