// Break-even solvers for the paper's decision questions: at what
// production quantity does a multi-chip architecture start to pay back
// (Sec. 4.2), and at what die area does it win on RE cost alone
// (Sec. 4.1 "turning point")?
#pragma once

#include <functional>
#include <string>

#include "core/actuary.h"

namespace chiplet::explore {

/// Root of f on [lo, hi] by bisection.  Requires f(lo) and f(hi) of
/// opposite sign; throws ParameterError otherwise.
[[nodiscard]] double solve_bisection(const std::function<double(double)>& f,
                                     double lo, double hi, double tolerance = 1e-6,
                                     unsigned max_iterations = 200);

/// Result of a break-even search.
struct Breakeven {
    bool found = false;    ///< false when no crossover exists in the range
    double value = 0.0;    ///< quantity or area at the crossover
    double soc_cost = 0.0; ///< per-unit SoC total cost at the crossover
    double alt_cost = 0.0; ///< per-unit multi-chip total cost there
};

/// Declarative break-even request covering both of the paper's decision
/// axes; `lo`/`hi` of 0 pick the axis defaults ([1e4, 1e9] units,
/// [50, 900] mm^2).
struct BreakevenQuery {
    enum class Axis { quantity, area };
    Axis axis = Axis::quantity;
    std::string node = "5nm";
    double module_area_mm2 = 800.0;  ///< quantity axis only
    unsigned chiplets = 2;
    std::string packaging = "MCM";
    double d2d_fraction = 0.10;
    double lo = 0.0;
    double hi = 0.0;
};

/// Dispatches to breakeven_quantity / breakeven_area per `query.axis`.
[[nodiscard]] Breakeven breakeven_search(const core::ChipletActuary& actuary,
                                         const BreakevenQuery& query);

/// The concrete system the quantity-axis solver prices for one side of
/// the comparison: the monolithic SoC for (chiplets == 1, "SoC"), the
/// equal split otherwise.  Exposed so an explain pass itemises the very
/// system whose cost the solver reports.
[[nodiscard]] design::System breakeven_candidate_system(
    const std::string& node, const std::string& packaging,
    double module_area_mm2, unsigned chiplets, double d2d_fraction,
    double quantity);

/// Production quantity at which splitting `module_area_mm2` at `node`
/// into `chiplets` dies on `packaging` matches the monolithic SoC's
/// per-unit total (RE + amortised NRE) cost.  Searches [qty_lo, qty_hi].
/// Paper Sec. 4.2: ~2M units for an 800 mm^2 5 nm two-chiplet system.
[[nodiscard]] Breakeven breakeven_quantity(const core::ChipletActuary& actuary,
                                           const std::string& node,
                                           double module_area_mm2,
                                           unsigned chiplets,
                                           const std::string& packaging,
                                           double d2d_fraction,
                                           double qty_lo = 1e4, double qty_hi = 1e9);

/// Module area at which the multi-chip RE cost (manufacturing only)
/// matches the SoC RE cost at the same node — the paper's "turning
/// point" where die-defect cost exceeds packaging overhead.  Searches
/// [area_lo, area_hi].
[[nodiscard]] Breakeven breakeven_area(const core::ChipletActuary& actuary,
                                       const std::string& node, unsigned chiplets,
                                       const std::string& packaging,
                                       double d2d_fraction, double area_lo = 50.0,
                                       double area_hi = 900.0);

}  // namespace chiplet::explore
