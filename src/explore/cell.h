// The cost-cell layer of the study compiler (explore/study_graph.h).
// A *cell* is one single-system evaluation an engine performs — the
// concrete design::System plus whether the engine wants the full
// RE + NRE picture or the RE-only one — and is the unit of cross-study
// work sharing: overlapping studies in one batch reference the same
// cell, which is evaluated exactly once.
//
// Identity is canonical in the spirit of explore/spec_hash.h: cell_hash
// streams every field that determines the evaluation result (and the
// result's embedded names) through 64-bit FNV-1a in a fixed order, so
// two independently constructed but equal systems hash identically on
// every platform.  FNV is not collision-free; the table verifies full
// design::System equality on every probe, so a collision degrades to a
// miss, never to a wrong result.
//
// Tech-library identity is deliberately *not* part of the hash: a
// CellTable belongs to one effective actuary (one tech-override group
// of the compiled batch), so every cell in it is priced under the same
// library.  The study graph keeps one table per group.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/actuary.h"
#include "design/system.h"

namespace chiplet::explore {

class CellStore;  // explore/cell_store.h

/// Which evaluate entry point the cell denotes.
enum class CellEval : std::uint8_t {
    full,     ///< ChipletActuary::evaluate — RE + amortised NRE
    re_only,  ///< ChipletActuary::evaluate_re_only — manufacturing only
};

/// One enumerated evaluation: the system an engine will price and how.
struct Cell {
    CellEval eval = CellEval::full;
    design::System system;
};

/// Canonical 64-bit FNV-1a over (eval, packaging, names, quantity,
/// placements, chips, modules) in a fixed field order with
/// length-prefixed strings and bit-cast doubles.  Deterministic across
/// platforms and process runs — a stable identity for caches and wire
/// formats, like spec_hash.
[[nodiscard]] std::uint64_t cell_hash(CellEval eval,
                                      const design::System& system);

/// Deduplicated cell store of one tech group: interned during compile,
/// evaluated once in contiguous per-eval arrays, then served read-only
/// to every study that references a cell.
///
/// The storage is two flat (systems[], costs[]) array pairs — one per
/// CellEval — kept in interning order.  Evaluation sweeps each array
/// contiguously on the global pool with slot ordering, which is also
/// the layout a batched SIMD pricing kernel would consume: unique
/// cells, densely packed, results in matching slots.
class CellTable {
public:
    CellTable() = default;
    CellTable(const CellTable&) = delete;
    CellTable& operator=(const CellTable&) = delete;
    CellTable(CellTable&&) = default;
    CellTable& operator=(CellTable&&) = default;

    /// Interns a cell during compilation: returns its table-wide id
    /// (dense, in first-appearance order) and whether it was new.
    /// Equal cells (same eval, equal system) share one id regardless of
    /// which study interned them first.  Not thread-safe; compilation
    /// is single-threaded.
    struct Interned {
        std::uint32_t id = 0;
        bool inserted = false;
    };
    Interned intern(CellEval eval, const design::System& system);

    [[nodiscard]] std::size_t size() const { return entries_.size(); }

    /// Evaluates every interned cell on `actuary` (the table's effective
    /// actuary, memo-free), filling the result arrays slot-ordered on
    /// the global pool.  A cell whose evaluation throws is left
    /// unfilled — lookups of it miss, so the owning study's engine
    /// re-evaluates and surfaces the authoritative error itself.
    void evaluate_all(const core::ChipletActuary& actuary);

    /// Cross-study warm start (explore/cell_store.h): fills every
    /// interned cell the store already holds under `tech_hash` (full
    /// System equality verified by the store) and returns the hit
    /// count.  Call before evaluate_pending; prefilled slots behave
    /// exactly like evaluated ones for find().
    std::size_t prefill_from(CellStore& store, std::uint64_t tech_hash);

    /// evaluate_all restricted to the cells prefill_from left cold: the
    /// pending subset is swept through the same fault-isolated batch
    /// entry point (per-system costs are batch-composition independent,
    /// so partial sweeps stay bit-identical to full ones).  Without a
    /// preceding prefill this is exactly evaluate_all.
    void evaluate_pending(const core::ChipletActuary& actuary);

    /// Publishes every cell this table evaluated itself (filled and not
    /// prefilled) into the store for future batches; returns the count.
    std::size_t publish_to(CellStore& store, std::uint64_t tech_hash) const;

    /// How many interned cells `store` already holds, without touching
    /// counters or LRU order — the planning surface's peek.
    [[nodiscard]] std::size_t count_warm(const CellStore& store,
                                         std::uint64_t tech_hash) const;

    /// Post-evaluation probe: the memoised cost of (eval, system), or
    /// nullptr when the cell is unknown or its evaluation failed.
    /// Thread-safe (the table is immutable after evaluate_all).
    [[nodiscard]] const core::SystemCost* find(
        CellEval eval, const design::System& system) const;

private:
    struct Entry {
        std::uint64_t hash = 0;
        CellEval eval = CellEval::full;
        std::uint32_t slot = 0;        ///< index into the per-eval arrays
        std::uint32_t bucket_next = 0;  ///< next entry index + 1; 0 = end
    };

    struct EvalArrays {
        std::vector<design::System> systems;  ///< contiguous, intern order
        /// Slot i prices systems[i].  Shared immutable objects: a
        /// prefilled slot aliases the CellStore's entry (no deep copy on
        /// a warm cell) and publish hands the store the same object.
        std::vector<std::shared_ptr<const core::SystemCost>> costs;
        std::vector<char> filled;             ///< 0 until evaluated OK
        std::vector<char> prefilled;          ///< 1 = served by a CellStore
    };

    /// Entry index of (hash, eval, system), or npos.
    [[nodiscard]] std::size_t probe(std::uint64_t hash, CellEval eval,
                                    const design::System& system) const;

    std::vector<Entry> entries_;
    std::vector<std::uint32_t> buckets_;  ///< head entry index + 1; 0 = empty
    std::size_t bucket_mask_ = 0;
    EvalArrays arrays_[2];  ///< indexed by CellEval
};

/// Per-study view of a shared CellTable, implementing core::EvalMemo:
/// the study's effective actuary carries one of these while its engine
/// runs, so every single-system evaluation first probes the memo.
/// Hit/miss counters are per view — each study gets exact numbers even
/// when the batch fans studies out across the pool.
class CellMemoView final : public core::EvalMemo {
public:
    explicit CellMemoView(const CellTable& table) : table_(&table) {}

    [[nodiscard]] bool lookup(const design::System& system, bool re_only,
                              core::SystemCost& out) const override;

    [[nodiscard]] std::uint64_t hits() const {
        return hits_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t misses() const {
        return misses_.load(std::memory_order_relaxed);
    }

private:
    const CellTable* table_;
    // Engines evaluate from pool workers; counters are the only mutable
    // state and ordering between them is irrelevant, so relaxed atomics.
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace chiplet::explore
