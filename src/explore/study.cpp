#include "explore/study.h"

#include <chrono>
#include <cstdio>
#include <optional>
#include <utility>

#include "core/scenarios.h"
#include "explore/study_graph.h"
#include "tech/json_io.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "wafer/die_cost_cache.h"

namespace chiplet::explore {

namespace {

constexpr const char* kKindNames[] = {
    "re_sweep", "quantity_sweep", "monte_carlo", "sensitivity",  "tornado",
    "breakeven", "pareto",        "recommend",   "timeline",     "design_space",
};

// ---- dispatch ---------------------------------------------------------------

StudyPayload dispatch(const core::ChipletActuary& a, const ReSweepConfig& c) {
    return sweep_re_grid(a, c);
}
StudyPayload dispatch(const core::ChipletActuary& a, const QuantitySweepConfig& c) {
    return sweep_total_vs_quantity(a, c);
}
StudyPayload dispatch(const core::ChipletActuary& a, const McStudyConfig& c) {
    return run_monte_carlo(a, c);
}
StudyPayload dispatch(const core::ChipletActuary& a,
                      const SensitivityStudyConfig& c) {
    return run_sensitivity(a, c);
}
StudyPayload dispatch(const core::ChipletActuary& a, const TornadoStudyConfig& c) {
    return run_tornado(a, c);
}
StudyPayload dispatch(const core::ChipletActuary& a, const BreakevenQuery& c) {
    return breakeven_search(a, c);
}
StudyPayload dispatch(const core::ChipletActuary&, const ParetoConfig& c) {
    return run_pareto(c);
}
StudyPayload dispatch(const core::ChipletActuary& a, const DecisionQuery& c) {
    return recommend(a, c);
}
StudyPayload dispatch(const core::ChipletActuary& a,
                      const TimelineStudyConfig& c) {
    return run_timeline(a, c);
}
StudyPayload dispatch(const core::ChipletActuary& a, const DesignSpaceConfig& c) {
    return explore_design_space(a, c);
}

// ---- tabular view -----------------------------------------------------------

std::string cell(double value) {
    // 9 significant digits: the quantisation step (~1e-8 relative) stays
    // well inside the golden-diff tolerance (1e-6), so cross-toolchain
    // FP noise cannot push a cell across a rounding boundary.
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    return buffer;
}

StudyTable make_table(const std::vector<ReSweepPoint>& points) {
    StudyTable t;
    t.columns = {"node", "packaging", "chiplets", "area_mm2", "re_total_usd",
                 "normalized"};
    for (const ReSweepPoint& p : points) {
        t.rows.push_back({p.node, p.packaging, std::to_string(p.chiplets),
                          cell(p.area_mm2), cell(p.re.total()),
                          cell(p.normalized)});
    }
    return t;
}

StudyTable make_table(const std::vector<QuantitySweepPoint>& points) {
    StudyTable t;
    t.columns = {"packaging", "quantity", "re_per_unit", "nre_per_unit",
                 "total_per_unit"};
    for (const QuantitySweepPoint& p : points) {
        t.rows.push_back({p.packaging, cell(p.quantity), cell(p.cost.re.total()),
                          cell(p.cost.nre.total()),
                          cell(p.cost.total_per_unit())});
    }
    return t;
}

StudyTable make_table(const McStudyOutcome& outcome) {
    StudyTable t;
    t.columns = {"metric", "value"};
    t.rows = {{"draws", std::to_string(outcome.mc.samples.size())},
              {"mean", cell(outcome.mc.mean)},
              {"stddev", cell(outcome.mc.stddev)},
              {"p05", cell(outcome.mc.p05)},
              {"p50", cell(outcome.mc.p50)},
              {"p95", cell(outcome.mc.p95)}};
    if (outcome.has_compare) {
        t.rows.push_back({"win_rate", cell(outcome.win_rate)});
    }
    return t;
}

StudyTable make_table(const std::vector<SensitivityEntry>& entries) {
    StudyTable t;
    t.columns = {"parameter", "base_value", "base_cost", "perturbed_cost",
                 "elasticity"};
    for (const SensitivityEntry& e : entries) {
        t.rows.push_back({e.parameter, cell(e.base_value), cell(e.base_cost),
                          cell(e.perturbed_cost), cell(e.elasticity)});
    }
    return t;
}

StudyTable make_table(const std::vector<TornadoEntry>& entries) {
    StudyTable t;
    t.columns = {"parameter", "base_value", "cost_low", "cost_high", "swing"};
    for (const TornadoEntry& e : entries) {
        t.rows.push_back({e.parameter, cell(e.base_value), cell(e.cost_low),
                          cell(e.cost_high), cell(e.swing())});
    }
    return t;
}

StudyTable make_table(const Breakeven& b) {
    StudyTable t;
    t.columns = {"metric", "value"};
    t.rows = {{"found", b.found ? "true" : "false"},
              {"value", cell(b.value)},
              {"soc_cost", cell(b.soc_cost)},
              {"alt_cost", cell(b.alt_cost)}};
    return t;
}

StudyTable make_table(const std::vector<ParetoPoint>& points,
                      const StudyConfig& config) {
    const auto* pareto = std::get_if<ParetoConfig>(&config);
    StudyTable t;
    t.columns = {pareto ? pareto->x_label : "x", pareto ? pareto->y_label : "y",
                 "index"};
    for (const ParetoPoint& p : points) {
        t.rows.push_back({cell(p.x), cell(p.y), std::to_string(p.index)});
    }
    return t;
}

StudyTable make_table(const Recommendation& rec) {
    StudyTable t;
    t.columns = {"packaging", "chiplets", "re_per_unit", "nre_per_unit",
                 "total_per_unit"};
    for (const DesignOption& o : rec.options) {
        t.rows.push_back({o.packaging, std::to_string(o.chiplets),
                          cell(o.re_per_unit), cell(o.nre_per_unit),
                          cell(o.total_per_unit())});
    }
    return t;
}

StudyTable make_table(const TimelineOutcome& outcome) {
    StudyTable t;
    t.columns = {"month", "defect_density", "unit_cost"};
    for (const TimelinePoint& p : outcome.trajectory) {
        t.rows.push_back(
            {cell(p.month), cell(p.defect_density), cell(p.unit_cost)});
    }
    return t;
}

StudyTable make_table(const DesignSpaceResult& result) {
    StudyTable t;
    t.columns = {"rank",     "packaging",   "chiplets",     "nodes",
                 "quantity", "re_per_unit", "nre_per_unit", "total_per_unit"};
    for (std::size_t i = 0; i < result.best.size(); ++i) {
        const DesignCandidate& c = result.best[i];
        t.rows.push_back({std::to_string(i + 1), c.packaging,
                          std::to_string(c.chiplets), join(c.nodes, "+"),
                          cell(c.quantity), cell(c.re_per_unit),
                          cell(c.nre_per_unit), cell(c.total_per_unit())});
    }
    return t;
}

StudyTable make_table(const StudyPayload& payload, const StudyConfig& config) {
    return std::visit(
        [&](const auto& typed) -> StudyTable {
            using T = std::decay_t<decltype(typed)>;
            if constexpr (std::is_same_v<T, std::vector<ParetoPoint>>) {
                return make_table(typed, config);
            } else {
                return make_table(typed);
            }
        },
        payload);
}

// ---- explain: itemised cost ledgers -----------------------------------------

void add_ledger(StudyResult& out, std::string label, core::SystemCost cost) {
    out.ledgers.push_back(StudyLedger{std::move(label), std::move(cost.ledger)});
}

/// Fills StudyResult::ledgers for the spec's kind.  Which systems are
/// itemised is kind-specific (documented in docs/studies.md#explain):
/// concrete scenarios are explained as-is, searches explain their
/// winner, grids their representative first cell; pareto has no cost
/// model behind it and attaches nothing.
void attach_ledgers(const core::ChipletActuary& a, const StudySpec& spec,
                    StudyResult& out) {
    switch (spec.kind()) {
        case StudyKind::re_sweep: {
            const auto& points = std::get<std::vector<ReSweepPoint>>(out.payload);
            if (points.empty()) break;
            const auto& config = std::get<ReSweepConfig>(spec.config);
            const ReSweepPoint& p = points.front();
            add_ledger(out,
                       "first cell: " + p.node + " " + p.packaging + " x" +
                           std::to_string(p.chiplets) + " @ " +
                           cell(p.area_mm2) + " mm2 (RE only)",
                       a.explain_re_only(sweep_cell_system(
                           a, p.node, p.packaging, p.area_mm2, p.chiplets,
                           config.d2d_fraction, 1e6)));
            break;
        }
        case StudyKind::quantity_sweep: {
            const auto& config = std::get<QuantitySweepConfig>(spec.config);
            const auto& points =
                std::get<std::vector<QuantitySweepPoint>>(out.payload);
            for (const QuantitySweepPoint& p : points) {
                add_ledger(out, p.packaging + " @ " + cell(p.quantity) + " units",
                           a.explain(sweep_cell_system(
                               a, config.node, p.packaging,
                               config.module_area_mm2, config.chiplets,
                               config.d2d_fraction, p.quantity)));
            }
            break;
        }
        case StudyKind::monte_carlo: {
            const auto& config = std::get<McStudyConfig>(spec.config);
            add_ledger(out, "scenario (nominal inputs)",
                       a.explain(config.scenario.build(a.library(), "scenario")));
            if (config.compare) {
                add_ledger(out, "compare (nominal inputs)",
                           a.explain(config.compare->build(a.library(), "compare")));
            }
            break;
        }
        case StudyKind::sensitivity: {
            const auto& config = std::get<SensitivityStudyConfig>(spec.config);
            add_ledger(out, "base scenario",
                       a.explain(config.scenario.build(a.library(), "scenario")));
            break;
        }
        case StudyKind::tornado: {
            const auto& config = std::get<TornadoStudyConfig>(spec.config);
            add_ledger(out, "base scenario",
                       a.explain(config.scenario.build(a.library(), "scenario")));
            break;
        }
        case StudyKind::breakeven: {
            const auto& config = std::get<BreakevenQuery>(spec.config);
            const auto& b = std::get<Breakeven>(out.payload);
            if (!b.found) break;
            if (config.axis == BreakevenQuery::Axis::quantity) {
                // breakeven_candidate_system is the solver's own
                // construction, so each ledger itemises the very system
                // whose cost the payload reports.
                add_ledger(out, "SoC @ break-even quantity " + cell(b.value),
                           a.explain(breakeven_candidate_system(
                               config.node, "SoC", config.module_area_mm2, 1,
                               config.d2d_fraction, b.value)));
                add_ledger(out,
                           config.packaging + " x" +
                               std::to_string(config.chiplets) +
                               " @ break-even quantity " + cell(b.value),
                           a.explain(breakeven_candidate_system(
                               config.node, config.packaging,
                               config.module_area_mm2, config.chiplets,
                               config.d2d_fraction, b.value)));
            } else {
                add_ledger(out,
                           "SoC @ turning-point area " + cell(b.value) +
                               " mm2 (RE only)",
                           a.explain_re_only(core::monolithic_soc(
                               "soc", config.node, b.value, 1e6)));
                add_ledger(out,
                           config.packaging + " x" +
                               std::to_string(config.chiplets) +
                               " @ turning-point area " + cell(b.value) +
                               " mm2 (RE only)",
                           a.explain_re_only(core::split_system(
                               "alt", config.node, config.packaging, b.value,
                               config.chiplets, config.d2d_fraction, 1e6)));
            }
            break;
        }
        case StudyKind::pareto:
            break;  // pure geometry over caller-supplied points
        case StudyKind::recommend: {
            const auto& config = std::get<DecisionQuery>(spec.config);
            const auto& rec = std::get<Recommendation>(out.payload);
            if (rec.options.empty()) break;
            const DesignOption& best = rec.best();
            add_ledger(out,
                       "best option: " + best.packaging + " x" +
                           std::to_string(best.chiplets),
                       a.explain(design_space_candidate_system(
                           a, decision_space(config), best.space_index)));
            break;
        }
        case StudyKind::timeline: {
            const auto& config = std::get<TimelineStudyConfig>(spec.config);
            add_ledger(out, "scenario (library defect density)",
                       a.explain(config.scenario.build(a.library(), "scenario")));
            if (config.compare) {
                add_ledger(out, "compare (library defect density)",
                           a.explain(config.compare->build(a.library(), "compare")));
            }
            break;
        }
        case StudyKind::design_space: {
            const auto& config = std::get<DesignSpaceConfig>(spec.config);
            const auto& result = std::get<DesignSpaceResult>(out.payload);
            if (result.best.empty()) break;
            const DesignCandidate& winner = result.best.front();
            add_ledger(out,
                       "rank 1: " + winner.packaging + " x" +
                           std::to_string(winner.chiplets) + " [" +
                           join(winner.nodes, "+") + "]",
                       a.explain(design_space_candidate_system(a, config,
                                                               winner.index)));
            break;
        }
    }
    out.run.with_ledgers = !out.ledgers.empty();
}

}  // namespace

std::string to_string(StudyKind kind) {
    return kKindNames[static_cast<std::size_t>(kind)];
}

StudyKind study_kind_from_string(const std::string& s) {
    for (std::size_t i = 0; i < std::size(kKindNames); ++i) {
        if (s == kKindNames[i]) return static_cast<StudyKind>(i);
    }
    std::string choices;
    for (const char* name : kKindNames) {
        if (!choices.empty()) choices += ", ";
        choices += name;
    }
    throw ParseError("unknown study kind: '" + s + "' (expected one of: " +
                     choices + ")");
}

StudyResult run_study_on(const core::ChipletActuary& effective,
                         const StudySpec& spec) {
    const auto start = std::chrono::steady_clock::now();
    const wafer::DieCostCache::Stats before =
        wafer::DieCostCache::global().stats();

    StudyResult out;
    out.name = spec.name;
    out.kind = spec.kind();
    out.payload = std::visit(
        [&](const auto& config) { return dispatch(effective, config); },
        spec.config);
    out.table = make_table(out.payload, spec.config);
    if (spec.explain) attach_ledgers(effective, spec, out);

    const wafer::DieCostCache::Stats after = wafer::DieCostCache::global().stats();
    out.run.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    out.run.threads = util::ThreadPool::global().size();
    out.run.cache_hits = after.hits - before.hits;
    out.run.cache_misses = after.misses - before.misses;
    return out;
}

StudyResult run_study(const core::ChipletActuary& actuary,
                      const StudySpec& spec) {
    // Tech overrides patch a copy; the caller's actuary is never mutated.
    std::optional<core::ChipletActuary> patched;
    if (!spec.tech_overrides.is_null()) {
        tech::TechLibrary lib = actuary.library();
        tech::apply_overrides(lib, spec.tech_overrides,
                              "study '" + spec.name + "': tech");
        patched.emplace(std::move(lib), actuary.assumptions());
    }
    return run_study_on(patched ? *patched : actuary, spec);
}

std::vector<StudyResult> run_studies(const core::ChipletActuary& actuary,
                                     std::span<const StudySpec> specs) {
    // The compiled execution graph (explore/study_graph.h) shares cost
    // cells across overlapping studies; payloads are bit-identical to a
    // serial run_study loop.  The historical contract throws the first
    // failing study's error in batch order.
    StudyGraphRun run = run_study_graph(actuary, specs);
    std::vector<StudyResult> out;
    out.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (run.errors[i]) std::rethrow_exception(run.errors[i]);
        out.push_back(*std::move(run.results[i]));
    }
    return out;
}

}  // namespace chiplet::explore
