#include "explore/spec_hash.h"

#include <algorithm>

#include "explore/study_json.h"

namespace chiplet::explore {

std::uint64_t fnv1a64(std::string_view bytes) {
    std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV offset basis
    for (const char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;  // FNV prime
    }
    return hash;
}

JsonValue canonicalize(const JsonValue& v) {
    if (v.is_object()) {
        std::vector<std::string> keys = v.keys();
        std::sort(keys.begin(), keys.end());
        JsonValue out = JsonValue::object();
        for (const std::string& key : keys) {
            out.set(key, canonicalize(v.at(key)));
        }
        return out;
    }
    if (v.is_array()) {
        JsonValue out = JsonValue::array();
        for (const JsonValue& element : v.as_array()) {
            out.push_back(canonicalize(element));
        }
        return out;
    }
    return v;
}

std::string canonical_spec_json(const StudySpec& spec) {
    return canonicalize(to_json(spec)).dump();
}

std::uint64_t spec_hash(const StudySpec& spec) {
    return fnv1a64(canonical_spec_json(spec));
}

}  // namespace chiplet::explore
