// Time-aware cost analysis: the paper notes the chiplet advantage it
// computed for Zen3-era defect densities "is further smaller" once 7 nm
// yields matured.  This module evaluates a system along a defect-density
// learning curve, producing cost trajectories and the month at which one
// architecture overtakes another.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/actuary.h"
#include "explore/scenario_spec.h"
#include "yield/learning.h"

namespace chiplet::explore {

/// One sample of a cost trajectory.
struct TimelinePoint {
    double month = 0.0;             ///< months since risk production
    double defect_density = 0.0;    ///< D(t) on the learning curve
    double unit_cost = 0.0;         ///< per-unit total cost at that D
};

/// Evaluates `system` monthly for `months` months, with `node`'s defect
/// density following `curve`.  Other parameters stay fixed.
[[nodiscard]] std::vector<TimelinePoint> cost_trajectory(
    const core::ChipletActuary& actuary, const design::System& system,
    const std::string& node, const yield::DefectLearningCurve& curve,
    double months, double step_months = 1.0);

/// First sampled month at which `a` becomes at least as cheap as `b`
/// (per unit, both re-evaluated under the same D(t)); negative when `a`
/// never catches up within the horizon.
[[nodiscard]] double crossover_month(const core::ChipletActuary& actuary,
                                     const design::System& a,
                                     const design::System& b,
                                     const std::string& node,
                                     const yield::DefectLearningCurve& curve,
                                     double months, double step_months = 1.0);

/// Declarative timeline request: the scenario's node follows the given
/// learning curve; an optional rival scenario adds the crossover month.
struct TimelineStudyConfig {
    ScenarioSpec scenario;
    std::optional<ScenarioSpec> compare;  ///< crossover vs this when set
    double initial_defects_per_cm2 = 0.2;
    double mature_defects_per_cm2 = 0.05;
    double tau_months = 12.0;
    double months = 36.0;
    double step_months = 1.0;
};

struct TimelineOutcome {
    std::vector<TimelinePoint> trajectory;  ///< of `scenario`
    bool has_compare = false;
    double crossover_month = -1.0;  ///< negative: never within the horizon
};

/// Runs the declarative form; bit-identical to the typed calls with the
/// same inputs.
[[nodiscard]] TimelineOutcome run_timeline(const core::ChipletActuary& actuary,
                                           const TimelineStudyConfig& config);

}  // namespace chiplet::explore
