// Deterministic random number generation for Monte-Carlo studies.
// Self-contained (xoshiro-class generator) so experiment outputs are
// reproducible across standard-library implementations.
#pragma once

#include <cstdint>

namespace chiplet::explore {

/// xorshift64* generator with distribution helpers.  Deterministic for a
/// given seed; not cryptographic.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /// Statistically independent stream number `index` of a master
    /// `seed` (splitmix64 over the pair).  Batch studies give each draw
    /// its own stream, so results do not depend on evaluation order —
    /// serial and parallel runs are bit-identical.
    [[nodiscard]] static Rng stream(std::uint64_t seed, std::uint64_t index);

    /// Next raw 64-bit value.
    [[nodiscard]] std::uint64_t next();

    /// Uniform in [0, 1).
    [[nodiscard]] double uniform();

    /// Uniform in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi);

    /// Standard normal via Box-Muller (one value per call).
    [[nodiscard]] double normal();

    /// Normal with the given mean and standard deviation.
    [[nodiscard]] double normal(double mean, double stddev);

    /// Triangular distribution on [lo, hi] with the given mode — the
    /// conventional shape for expert-estimated cost parameters.
    [[nodiscard]] double triangular(double lo, double mode, double hi);

    /// Log-normal such that the *median* of the distribution is `median`
    /// and the underlying normal has standard deviation `sigma_log`.
    [[nodiscard]] double lognormal(double median, double sigma_log);

private:
    std::uint64_t state_;
    bool have_spare_ = false;
    double spare_ = 0.0;
};

}  // namespace chiplet::explore
