#include "explore/scenario_spec.h"

#include "core/scenarios.h"

namespace chiplet::explore {

design::System ScenarioSpec::build(const tech::TechLibrary& lib,
                                   const std::string& name) const {
    const bool is_soc =
        lib.packaging(packaging).type == tech::IntegrationType::soc;
    return is_soc ? core::monolithic_soc(name, node, module_area_mm2, quantity)
                  : core::split_system(name, node, packaging, module_area_mm2,
                                       chiplets, d2d_fraction, quantity);
}

}  // namespace chiplet::explore
