// The unified Study API: one declarative request/response pair over the
// whole exploration layer.  A StudySpec is a tagged union carrying one
// of the ten per-study configs plus a shared header (name, optional
// tech-library overrides); a StudyResult is an envelope holding the
// typed result, run metadata, and a uniform tabular view any renderer
// can consume.  JSON round-trip lives in explore/study_json.h; this
// header is the in-memory surface:
//
//   explore::StudySpec spec;
//   spec.name = "decide_400mm2";
//   spec.config = explore::DecisionQuery{.node = "7nm"};
//   explore::StudyResult result = explore::run_study(actuary, spec);
//   std::cout << result.table.columns.size() << " columns, "
//             << result.table.rows.size() << " rows\n";
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/actuary.h"
#include "explore/breakeven.h"
#include "explore/design_space.h"
#include "explore/montecarlo.h"
#include "explore/optimizer.h"
#include "explore/pareto.h"
#include "explore/sensitivity.h"
#include "explore/sweep.h"
#include "explore/timeline.h"
#include "util/json.h"

namespace chiplet::explore {

/// One tag per exploration engine; names match the JSON "kind" strings.
enum class StudyKind {
    re_sweep,
    quantity_sweep,
    monte_carlo,
    sensitivity,
    tornado,
    breakeven,
    pareto,
    recommend,
    timeline,
    design_space,
};

[[nodiscard]] std::string to_string(StudyKind kind);

/// Throws ParseError for unknown kind strings.
[[nodiscard]] StudyKind study_kind_from_string(const std::string& s);

/// Tagged union of the per-study configs.  Alternative order matches
/// StudyKind, so kind() is the variant index.
using StudyConfig =
    std::variant<ReSweepConfig,          // re_sweep
                 QuantitySweepConfig,    // quantity_sweep
                 McStudyConfig,          // monte_carlo
                 SensitivityStudyConfig, // sensitivity
                 TornadoStudyConfig,     // tornado
                 BreakevenQuery,         // breakeven
                 ParetoConfig,           // pareto
                 DecisionQuery,          // recommend
                 TimelineStudyConfig,    // timeline
                 DesignSpaceConfig>;     // design_space

/// Declarative study request: header + per-kind config.
struct StudySpec {
    std::string name;          ///< label carried into results and reports
    JsonValue tech_overrides;  ///< partial tech document ({"nodes": [...],
                               ///< "packaging": [...]}) merged onto the
                               ///< actuary's library before the run;
                               ///< null = none
    /// Attach itemised cost ledgers (core/cost_ledger.h) to the result:
    /// the study's representative systems are re-evaluated through the
    /// explain entry points and StudyResult::ledgers is filled.  Off by
    /// default — the flag is serialised only when set, so the canonical
    /// spec JSON (and therefore spec_hash) of existing studies is
    /// byte-identical to before the ledger existed.
    bool explain = false;
    StudyConfig config;

    [[nodiscard]] StudyKind kind() const {
        return static_cast<StudyKind>(config.index());
    }
};

/// Tagged union of the typed results; alternative order matches StudyKind.
using StudyPayload =
    std::variant<std::vector<ReSweepPoint>,        // re_sweep
                 std::vector<QuantitySweepPoint>,  // quantity_sweep
                 McStudyOutcome,                   // monte_carlo
                 std::vector<SensitivityEntry>,    // sensitivity
                 std::vector<TornadoEntry>,        // tornado
                 Breakeven,                        // breakeven
                 std::vector<ParetoPoint>,         // pareto
                 Recommendation,                   // recommend
                 TimelineOutcome,                  // timeline
                 DesignSpaceResult>;               // design_space

/// Run metadata.  Wall time and cache counters are measurement, not
/// model output: they vary run to run and are excluded from the
/// bit-identical guarantee (and from golden-file comparisons).  Cache
/// counters are deltas of the process-global die-cost cache, so they
/// are only exact when one study runs at a time.
struct StudyRunInfo {
    double wall_seconds = 0.0;
    unsigned threads = 0;  ///< global pool size during the run
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    /// True when the whole result was served from a StudyCache
    /// (explore/study_cache.h) instead of being evaluated; the payload
    /// and table are still bit-identical to a fresh run_study.
    bool from_cache = false;
    /// True when this result carries itemised cost ledgers
    /// (StudySpec::explain was set and the kind produced at least one).
    bool with_ledgers = false;
    /// Batch cell-memo counters (explore/study_graph.h): single-system
    /// evaluations this study's engine asked for that were served from
    /// the compiled batch's shared cell store (`cell_hits`) versus
    /// priced by the engine itself (`cell_misses`).  Both stay zero for
    /// studies run outside a compiled batch or whose kind the compiler
    /// does not enumerate.
    std::uint64_t cell_hits = 0;
    std::uint64_t cell_misses = 0;
    /// True when this result was copied from a byte-identical spec
    /// earlier in the same batch instead of being evaluated again.
    bool from_batch_dedup = false;

    [[nodiscard]] double cache_hit_rate() const {
        const double total =
            static_cast<double>(cache_hits) + static_cast<double>(cache_misses);
        return total > 0.0 ? static_cast<double>(cache_hits) / total : 0.0;
    }
};

/// Uniform tabular view: every study kind flattens into columns + rows
/// of formatted cells, so one renderer handles all of them.
struct StudyTable {
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};

/// One labelled cost ledger attached to a study result — the itemised
/// provenance of a representative system the study evaluated (the base
/// scenario, the break-even pair, the winning candidate, ...).
struct StudyLedger {
    std::string label;
    core::CostLedger ledger;
};

/// Response envelope: typed payload + metadata + tabular view.
struct StudyResult {
    std::string name;
    StudyKind kind = StudyKind::re_sweep;
    StudyPayload payload;
    StudyRunInfo run;
    StudyTable table;
    /// Itemised cost-term provenance; empty unless the spec set
    /// `explain`.  Which systems are itemised is kind-specific — see
    /// docs/studies.md#explain.
    std::vector<StudyLedger> ledgers;
};

/// Runs one study: applies the spec's tech overrides to a copy of the
/// actuary's library when present, dispatches to the engine for the
/// spec's kind, and assembles the envelope.  The typed payload is
/// bit-identical to calling the engine directly with the same inputs.
[[nodiscard]] StudyResult run_study(const core::ChipletActuary& actuary,
                                    const StudySpec& spec);

/// run_study with the spec's tech overrides *already applied*:
/// `effective` must be the actuary the spec should be priced on.  This
/// is the reduction step of the study compiler (explore/study_graph.h),
/// which patches one actuary per tech-override group and runs every
/// member study on it; calling it with an unpatched actuary while the
/// spec carries overrides silently prices the wrong library.
[[nodiscard]] StudyResult run_study_on(const core::ChipletActuary& effective,
                                       const StudySpec& spec);

/// Runs a batch; result slot i belongs to spec i, and every payload is
/// bit-identical to a serial run_study loop regardless of pool size.
/// Batches with at least as many studies as pool workers fan out across
/// studies; smaller batches run studies in sequence so the engines'
/// inner loops keep the pool busy instead.
[[nodiscard]] std::vector<StudyResult> run_studies(
    const core::ChipletActuary& actuary, std::span<const StudySpec> specs);

class StudyCache;  // explore/study_cache.h
class CellStore;   // explore/cell_store.h

/// One study that could not be loaded or evaluated.  `index` is the
/// position in whatever batch the caller submitted (callers that
/// filtered a document before running remap it to the document index).
struct StudyFailure {
    std::size_t index = 0;
    std::string name;     ///< study name when known, else a JSON path
    std::string stage;    ///< "parse" (malformed spec/tech) or "model"
    std::string message;
};

/// Whole-batch accounting of the study compiler
/// (explore/study_graph.h): how much evaluation work the compiled
/// execution graph shared across the batch's studies.
struct StudyGraphStats {
    std::size_t studies = 0;      ///< specs submitted to the compiler
    std::size_t spec_dedups = 0;  ///< byte-identical specs served as copies
    std::size_t tech_groups = 0;  ///< distinct tech-override documents
    std::uint64_t cell_refs = 0;     ///< cell references enumerated
    std::uint64_t unique_cells = 0;  ///< distinct cells after interning
    std::uint64_t deduped_cells = 0; ///< cell_refs - unique_cells
    /// Cross-study memoisation (explore/cell_store.h): of the batch's
    /// unique cells, how many an earlier batch had already priced
    /// (store_hits) versus evaluated here (store_misses).  Both stay
    /// zero when no CellStore is attached.
    std::uint64_t store_hits = 0;
    std::uint64_t store_misses = 0;

    /// Fraction of enumerated cell references that another study (or an
    /// earlier reference in the same study) had already interned.
    [[nodiscard]] double dedup_ratio() const {
        return cell_refs > 0 ? static_cast<double>(deduped_cells) /
                                   static_cast<double>(cell_refs)
                             : 0.0;
    }

    /// Fraction of this batch's unique cells served by the cross-study
    /// store instead of evaluation.
    [[nodiscard]] double store_hit_rate() const {
        const double total = static_cast<double>(store_hits) +
                             static_cast<double>(store_misses);
        return total > 0.0 ? static_cast<double>(store_hits) / total : 0.0;
    }
};

/// Batch outcome when failures are collected instead of thrown.
/// `results[i]` holds the study at spec index `indices[i]`; failures are
/// ordered by index, so every spec appears in exactly one of the two.
struct StudyBatchOutcome {
    std::vector<StudyResult> results;
    std::vector<std::size_t> indices;
    std::vector<StudyFailure> failures;
    /// Compiler accounting for the batch (explore/study_graph.h).
    StudyGraphStats graph;
};

/// run_studies that records per-study errors instead of rethrowing the
/// first one: a batch with bad studies still evaluates every good one.
/// ParseError (bad tech override) reports stage "parse"; every other
/// chiplet::Error reports stage "model".  With a cache, hits skip
/// evaluation and are flagged via StudyRunInfo::from_cache; with a
/// cell store, cells priced by earlier batches prefill the compiled
/// graph (StudyGraphStats::store_hits).  Payloads stay bit-identical
/// to a serial cacheless run either way.
[[nodiscard]] StudyBatchOutcome run_studies_collecting(
    const core::ChipletActuary& actuary, std::span<const StudySpec> specs,
    StudyCache* cache = nullptr, CellStore* cell_store = nullptr);

/// Combines loader-stage and run-stage failures into one document-order
/// report: every run failure's batch index is remapped through
/// `kept_indices` (the loader's batch-position → document-position map)
/// and the merged list is sorted by index.  Shared by actuary_cli and
/// the serving layer so both surfaces report identically.
[[nodiscard]] std::vector<StudyFailure> merge_failures(
    std::vector<StudyFailure> parse_failures,
    std::vector<StudyFailure> run_failures,
    std::span<const std::size_t> kept_indices);

}  // namespace chiplet::explore
