#include "explore/sweep.h"

#include "core/scenarios.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace chiplet::explore {

design::System sweep_cell_system(const core::ChipletActuary& actuary,
                                 const std::string& node,
                                 const std::string& packaging,
                                 double module_area_mm2, unsigned chiplets,
                                 double d2d_fraction, double quantity) {
    const bool is_soc = actuary.library().packaging(packaging).type ==
                        tech::IntegrationType::soc;
    return is_soc ? core::monolithic_soc("soc", node, module_area_mm2, quantity)
                  : core::split_system("split", node, packaging,
                                       module_area_mm2, chiplets, d2d_fraction,
                                       quantity);
}

std::vector<ReSweepPoint> sweep_re_grid(const core::ChipletActuary& actuary,
                                        const ReSweepConfig& config) {
    CHIPLET_EXPECTS(!config.nodes.empty() && !config.areas_mm2.empty(),
                    "sweep axes must not be empty");
    util::ThreadPool& pool = util::ThreadPool::global();

    // Per-node normalisation baselines (one SoC evaluation each).  The
    // baseline system is named "soc" — the same name sweep_cell_system
    // gives grid SoC cells — so a grid that includes the normalisation
    // area shares the baseline's cost cell under the study compiler
    // (explore/study_graph.h).  Only re.total() is read, so the name is
    // unobservable in the payload.
    const std::vector<double> baselines = pool.parallel_map<double>(
        config.nodes.size(), [&](std::size_t i) {
            return actuary
                .evaluate_re_only(core::monolithic_soc(
                    "soc", config.nodes[i], config.normalization_area_mm2, 1e6))
                .re.total();
        });

    // Flatten the grid into cells in the serial loop order
    // (node > area > packaging > chiplets), then evaluate the batch; slot i
    // keeps cell i, so the output order matches the serial implementation.
    std::vector<design::System> systems;
    std::vector<std::size_t> node_indices;
    std::vector<ReSweepPoint> out;
    for (std::size_t ni = 0; ni < config.nodes.size(); ++ni) {
        const std::string& node = config.nodes[ni];
        for (double area : config.areas_mm2) {
            for (const std::string& packaging : config.packagings) {
                const bool is_soc =
                    actuary.library().packaging(packaging).type ==
                    tech::IntegrationType::soc;
                const std::vector<unsigned> counts =
                    is_soc ? std::vector<unsigned>{1} : config.chiplet_counts;
                for (unsigned k : counts) {
                    ReSweepPoint point;
                    point.node = node;
                    point.packaging = packaging;
                    point.chiplets = k;
                    point.area_mm2 = area;
                    systems.push_back(sweep_cell_system(
                        actuary, node, packaging, area, k,
                        config.d2d_fraction, 1e6));
                    node_indices.push_back(ni);
                    out.push_back(std::move(point));
                }
            }
        }
    }

    pool.parallel_for(systems.size(), [&](std::size_t i) {
        out[i].re = actuary.evaluate_re_only(systems[i]).re;
        out[i].normalized = out[i].re.total() / baselines[node_indices[i]];
    });
    return out;
}

std::vector<QuantitySweepPoint> sweep_total_vs_quantity(
    const core::ChipletActuary& actuary, const QuantitySweepConfig& config) {
    CHIPLET_EXPECTS(!config.packagings.empty() && !config.quantities.empty(),
                    "sweep axes must not be empty");
    std::vector<design::System> systems;
    std::vector<QuantitySweepPoint> out;
    for (double quantity : config.quantities) {
        for (const std::string& packaging : config.packagings) {
            systems.push_back(sweep_cell_system(
                actuary, config.node, packaging, config.module_area_mm2,
                config.chiplets, config.d2d_fraction, quantity));
            QuantitySweepPoint point;
            point.packaging = packaging;
            point.quantity = quantity;
            out.push_back(std::move(point));
        }
    }
    std::vector<core::SystemCost> costs = actuary.evaluate_batch(systems);
    for (std::size_t i = 0; i < out.size(); ++i) out[i].cost = std::move(costs[i]);
    return out;
}

std::vector<QuantitySweepPoint> sweep_total_vs_quantity(
    const core::ChipletActuary& actuary, const std::string& node,
    double module_area_mm2, unsigned chiplets, double d2d_fraction,
    const std::vector<std::string>& packagings,
    const std::vector<double>& quantities) {
    QuantitySweepConfig config;
    config.node = node;
    config.module_area_mm2 = module_area_mm2;
    config.chiplets = chiplets;
    config.d2d_fraction = d2d_fraction;
    config.packagings = packagings;
    config.quantities = quantities;
    return sweep_total_vs_quantity(actuary, config);
}

}  // namespace chiplet::explore
