#include "explore/sweep.h"

#include "core/scenarios.h"
#include "util/error.h"

namespace chiplet::explore {

std::vector<ReSweepPoint> sweep_re_grid(const core::ChipletActuary& actuary,
                                        const ReSweepConfig& config) {
    CHIPLET_EXPECTS(!config.nodes.empty() && !config.areas_mm2.empty(),
                    "sweep axes must not be empty");
    std::vector<ReSweepPoint> out;
    for (const std::string& node : config.nodes) {
        const double baseline =
            actuary
                .evaluate_re_only(core::monolithic_soc(
                    "norm", node, config.normalization_area_mm2, 1e6))
                .re.total();
        for (double area : config.areas_mm2) {
            for (const std::string& packaging : config.packagings) {
                const bool is_soc =
                    actuary.library().packaging(packaging).type ==
                    tech::IntegrationType::soc;
                const std::vector<unsigned> counts =
                    is_soc ? std::vector<unsigned>{1} : config.chiplet_counts;
                for (unsigned k : counts) {
                    ReSweepPoint point;
                    point.node = node;
                    point.packaging = packaging;
                    point.chiplets = k;
                    point.area_mm2 = area;
                    const design::System system =
                        is_soc ? core::monolithic_soc("soc", node, area, 1e6)
                               : core::split_system("split", node, packaging, area,
                                                    k, config.d2d_fraction, 1e6);
                    point.re = actuary.evaluate_re_only(system).re;
                    point.normalized = point.re.total() / baseline;
                    out.push_back(std::move(point));
                }
            }
        }
    }
    return out;
}

std::vector<QuantitySweepPoint> sweep_total_vs_quantity(
    const core::ChipletActuary& actuary, const std::string& node,
    double module_area_mm2, unsigned chiplets, double d2d_fraction,
    const std::vector<std::string>& packagings,
    const std::vector<double>& quantities) {
    CHIPLET_EXPECTS(!packagings.empty() && !quantities.empty(),
                    "sweep axes must not be empty");
    std::vector<QuantitySweepPoint> out;
    for (double quantity : quantities) {
        for (const std::string& packaging : packagings) {
            const bool is_soc = actuary.library().packaging(packaging).type ==
                                tech::IntegrationType::soc;
            const design::System system =
                is_soc ? core::monolithic_soc("soc", node, module_area_mm2, quantity)
                       : core::split_system("split", node, packaging,
                                            module_area_mm2, chiplets,
                                            d2d_fraction, quantity);
            QuantitySweepPoint point;
            point.packaging = packaging;
            point.quantity = quantity;
            point.cost = actuary.evaluate(system);
            out.push_back(std::move(point));
        }
    }
    return out;
}

}  // namespace chiplet::explore
