// JSON round-trip for the Study API, so every exploration study is
// reachable from one declarative file format (actuary_cli study).
//
// Study document:
//   {
//     "studies": [
//       { "name": "decide_400mm2",
//         "kind": "recommend",                     // any StudyKind string
//         "tech": { "nodes": [ ... ] },            // optional overrides
//         "config": { "node": "7nm", ... } }       // per-kind; every field
//     ]                                            // defaults except
//   }                                              // pareto's "points"
//
// Result document ({"results": [...]}): per study an envelope holding
// "kind", "meta" (wall time, threads, cache counters — measurement, not
// model output), "table" (the uniform columns + rows view) and "result"
// (the typed payload).  Specs round-trip losslessly; results serialise
// one-way (Monte-Carlo sample vectors are summarised, not embedded).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "explore/study.h"
#include "util/json.h"

namespace chiplet::explore {

[[nodiscard]] JsonValue to_json(const ScenarioSpec& scenario);
[[nodiscard]] ScenarioSpec scenario_from_json(
    const JsonValue& v, const std::string& context = "scenario");

/// Cost-ledger round-trip (core/cost_ledger.h).  The struct <-> JsonValue
/// mapping is lossless (doubles are stored as doubles); a text cycle
/// additionally carries the library-wide 12-significant-digit number
/// serialisation.
[[nodiscard]] JsonValue to_json(const core::CostTerm& term);
[[nodiscard]] core::CostTerm cost_term_from_json(
    const JsonValue& v, const std::string& context = "term");
[[nodiscard]] JsonValue to_json(const core::CostLedger& ledger);
[[nodiscard]] core::CostLedger ledger_from_json(
    const JsonValue& v, const std::string& context = "ledger");

/// Serialises one spec with every config field materialised, so
/// to_json(study_spec_from_json(v)) is canonical and stable.
[[nodiscard]] JsonValue to_json(const StudySpec& spec);
[[nodiscard]] StudySpec study_spec_from_json(const JsonValue& v,
                                             const std::string& context = "study");

/// Result envelope (one-way).
[[nodiscard]] JsonValue to_json(const StudyResult& result);

/// Whole-document helpers.
[[nodiscard]] JsonValue studies_to_json(std::span<const StudySpec> specs);
[[nodiscard]] std::vector<StudySpec> studies_from_json(
    const JsonValue& v, const std::string& context = "studies");
[[nodiscard]] std::vector<StudySpec> load_studies(const std::string& path);

/// Like studies_from_json, but a malformed study no longer aborts the
/// whole document: every bad entry is appended to `failures` (stage
/// "parse", index = position in the "studies" array, name when the
/// entry carries one) and every good entry is returned.  When
/// `kept_indices` is non-null it receives the document index of each
/// returned spec, so run-stage failures can be reported against the
/// original document.  Document-level problems (not an object, missing
/// "studies") still throw.
[[nodiscard]] std::vector<StudySpec> studies_from_json_collecting(
    const JsonValue& v, const std::string& context,
    std::vector<StudyFailure>& failures,
    std::vector<std::size_t>* kept_indices = nullptr);
[[nodiscard]] std::vector<StudySpec> load_studies_collecting(
    const std::string& path, std::vector<StudyFailure>& failures,
    std::vector<std::size_t>* kept_indices = nullptr);
void save_studies(std::span<const StudySpec> specs, const std::string& path);

[[nodiscard]] JsonValue results_to_json(std::span<const StudyResult> results);
void save_results(std::span<const StudyResult> results, const std::string& path);

}  // namespace chiplet::explore
