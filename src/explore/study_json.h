// JSON round-trip for the Study API, so every exploration study is
// reachable from one declarative file format (actuary_cli study).
//
// Study document:
//   {
//     "studies": [
//       { "name": "decide_400mm2",
//         "kind": "recommend",                     // any StudyKind string
//         "tech": { "nodes": [ ... ] },            // optional overrides
//         "config": { "node": "7nm", ... } }       // per-kind; every field
//     ]                                            // defaults except
//   }                                              // pareto's "points"
//
// Result document ({"results": [...]}): per study an envelope holding
// "kind", "meta" (wall time, threads, cache counters — measurement, not
// model output), "table" (the uniform columns + rows view) and "result"
// (the typed payload).  Specs round-trip losslessly; results serialise
// one-way (Monte-Carlo sample vectors are summarised, not embedded).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "explore/study.h"
#include "util/json.h"

namespace chiplet::explore {

[[nodiscard]] JsonValue to_json(const ScenarioSpec& scenario);
[[nodiscard]] ScenarioSpec scenario_from_json(
    const JsonValue& v, const std::string& context = "scenario");

/// Serialises one spec with every config field materialised, so
/// to_json(study_spec_from_json(v)) is canonical and stable.
[[nodiscard]] JsonValue to_json(const StudySpec& spec);
[[nodiscard]] StudySpec study_spec_from_json(const JsonValue& v,
                                             const std::string& context = "study");

/// Result envelope (one-way).
[[nodiscard]] JsonValue to_json(const StudyResult& result);

/// Whole-document helpers.
[[nodiscard]] JsonValue studies_to_json(std::span<const StudySpec> specs);
[[nodiscard]] std::vector<StudySpec> studies_from_json(
    const JsonValue& v, const std::string& context = "studies");
[[nodiscard]] std::vector<StudySpec> load_studies(const std::string& path);
void save_studies(std::span<const StudySpec> specs, const std::string& path);

[[nodiscard]] JsonValue results_to_json(std::span<const StudyResult> results);
void save_results(std::span<const StudyResult> results, const std::string& path);

}  // namespace chiplet::explore
