// Memoization of whole study evaluations, keyed by canonical spec
// identity (explore/spec_hash.h).  The serving layer (serve/server.h)
// answers repeated requests from this cache; batch runners can opt in
// through run_study_cached / run_studies_collecting.
//
// Guarantees:
//  - Exactness: a hit returns a StudyResult whose payload and table are
//    byte-identical to a fresh run_study of the same spec.  Keys are
//    verified by comparing the full canonical JSON on every hit, so an
//    FNV hash collision falls through to evaluation instead of serving
//    a wrong result (the `hash_bits` seam exists to force collisions in
//    tests).
//  - Thread safety: the table is sharded by hash, one mutex per shard;
//    concurrent lookups/inserts from server connection threads are safe.
//  - Bounded memory: each shard holds an LRU list and evicts from the
//    cold end until it is back under max_bytes / shards.  Entry size is
//    the canonical key plus an estimate of the result's resident
//    strings (name, table cells, payload proxy), so the bound tracks
//    payload weight without re-serialising on every insert.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "explore/study.h"

namespace chiplet::explore {

class StudyCacheStore;  // explore/cache_store.h

/// Sharded, thread-safe LRU cache of StudyResult keyed by spec hash.
class StudyCache {
public:
    struct Config {
        std::size_t max_bytes = 64ull << 20;  ///< total across all shards
        unsigned shards = 8;                  ///< clamped to >= 1
        /// Test seam: keys are truncated to the low `hash_bits` bits
        /// before use, so small values force distinct specs onto the
        /// same slot and exercise the collision fall-through.  64 (the
        /// default) keeps the full hash.
        unsigned hash_bits = 64;
    };

    StudyCache();  ///< default Config
    explicit StudyCache(Config config);
    ~StudyCache();

    StudyCache(const StudyCache&) = delete;
    StudyCache& operator=(const StudyCache&) = delete;

    /// Returns a copy of the cached result for `canonical` (with
    /// StudyRunInfo::from_cache set) or nullopt.  `hash` must be
    /// fnv1a64(canonical); a slot whose stored canonical differs is a
    /// collision: counted, and the lookup misses.
    [[nodiscard]] std::optional<StudyResult> lookup(const std::string& canonical,
                                                    std::uint64_t hash);

    /// Inserts (or refreshes) the result for `canonical`.  Entries
    /// larger than a whole shard's budget are rejected rather than
    /// cycling the shard empty.
    void insert(const std::string& canonical, std::uint64_t hash,
                const StudyResult& result);

    /// Convenience overloads computing canonical + hash from the spec.
    [[nodiscard]] std::optional<StudyResult> lookup(const StudySpec& spec);
    void insert(const StudySpec& spec, const StudyResult& result);

    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;       ///< includes collisions
        std::uint64_t collisions = 0;   ///< hash matched, canonical differed
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;    ///< entries dropped by the LRU bound
        std::uint64_t rejected = 0;     ///< single entries over a shard budget
        std::size_t entries = 0;
        std::size_t bytes = 0;          ///< current resident estimate
    };
    [[nodiscard]] Stats stats() const;

    /// Drops every entry (counters keep running).
    void clear();

    [[nodiscard]] std::size_t max_bytes() const;

    /// Attaches a persistent store (explore/cache_store.h): every
    /// subsequent insert is also written through to disk, outside the
    /// shard locks.  Attach AFTER StudyCacheStore::load_into so loading
    /// persisted entries does not rewrite their own files.  Pass nullptr
    /// to detach.  The store must outlive the cache (or the detach).
    void attach_store(StudyCacheStore* store);

private:
    struct Impl;
    Impl* impl_;
};

/// run_study through a cache: hit returns the cached result (payload
/// bit-identical to evaluating), miss evaluates and inserts.
[[nodiscard]] StudyResult run_study_cached(const core::ChipletActuary& actuary,
                                           const StudySpec& spec,
                                           StudyCache& cache);

}  // namespace chiplet::explore
